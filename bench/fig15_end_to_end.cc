// Figure 15: end-to-end decoder-layer latency speedup per model
// (sequence 4096; 2048 for OpenMoE-34B; batch 16 for Qwen2/DeepSeek, else
// 1; Flash-Attention2 enabled everywhere).
//
// Paper reference: Samoyeds up to 2.36x (1.42x average) over Transformers,
// up to 1.31x over MegaBlocks and 1.30x over vLLM-DS; MegaBlocks/vLLM-DS
// are NS on OpenMoE-34B and OOM on Mixtral-8x22B.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/frameworks/layer_cost.h"
#include "src/moe/memory_model.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

std::string Cell(MoeFramework fw, const MoeModelConfig& model, int64_t tokens,
                 const LayerCostOptions& opts, double base) {
  if (!FrameworkSupportsModel(fw, model)) {
    return "        NS";
  }
  // OOM check: frameworks whose footprint exceeds the card at this batch.
  const auto fp = EstimateFootprint(model, fw, opts.sparse_format, GetDevice(opts.device));
  if (fp.MaxBatch(opts.seq_len) < tokens / opts.seq_len) {
    return "       OOM";
  }
  const auto counts = UniformTokensPerExpert(model, tokens);
  const double ms = EstimateDecoderLayerCost(fw, model, counts, tokens, opts).total_ms;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%9.2fx", base / ms);
  return buf;
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 15 — Speedup in End-to-end Latency of MoE Models (decoder layer)");
  std::printf("%-14s %6s %6s %12s %12s %12s %12s\n", "model", "seq", "batch", "Transformers",
              "MegaBlocks", "vLLM-DS", "Samoyeds");
  double speedup_sum = 0.0;
  double speedup_max = 0.0;
  int count = 0;
  for (const auto& model : PaperModels()) {
    LayerCostOptions opts;
    opts.shared_experts_override = 0;
    opts.seq_len = model.default_seq;
    const int64_t tokens = static_cast<int64_t>(model.default_seq) * model.default_batch;
    const auto counts = UniformTokensPerExpert(model, tokens);
    const double base =
        EstimateDecoderLayerCost(MoeFramework::kTransformers, model, counts, tokens, opts)
            .total_ms;
    const double samoyeds_ms =
        EstimateDecoderLayerCost(MoeFramework::kSamoyeds, model, counts, tokens, opts).total_ms;
    speedup_sum += base / samoyeds_ms;
    speedup_max = std::max(speedup_max, base / samoyeds_ms);
    ++count;
    std::printf("%-14s %6d %6d %9.2fms %12s %12s %12s\n", model.name.c_str(), model.default_seq,
                model.default_batch, base,
                Cell(MoeFramework::kMegaBlocks, model, tokens, opts, base).c_str(),
                Cell(MoeFramework::kVllmDs, model, tokens, opts, base).c_str(),
                Cell(MoeFramework::kSamoyeds, model, tokens, opts, base).c_str());
  }
  PrintRule();
  std::printf("Samoyeds vs Transformers: average %.2fx, max %.2fx\n",
              speedup_sum / count, speedup_max);
  std::printf(
      "\nPaper reference: up to 2.36x (1.42x average) over Transformers; up to 1.31x\n"
      "over MegaBlocks and 1.30x over vLLM-DS; NS on OpenMoE, OOM on Mixtral-8x22B\n"
      "for both fused baselines.\n");
  return 0;
}
