// Ablation: tile-size and pipeline-depth trade-offs (§4.2's tiling
// discussion and §6.6's adaptation rules), plus what the autotuner picks.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/autotune.h"
#include "src/core/samoyeds_kernel.h"

namespace samoyeds {
namespace {

void TileSweep(const GemmShape& shape, const DeviceSpec& device) {
  const SamoyedsConfig fmt{1, 2, 32};
  std::printf("\n%s, shape %lld x %lld x %lld — simulated ms per (mb x nb), stages = 3:\n",
              device.name.c_str(), static_cast<long long>(shape.m),
              static_cast<long long>(shape.k), static_cast<long long>(shape.n));
  std::printf("%10s", "mb \\ nb");
  for (int nb : {16, 32, 64, 128}) {
    std::printf(" %9d", nb);
  }
  std::printf("\n");
  for (int mb : {32, 64, 128, 256}) {
    std::printf("%10d", mb);
    for (int nb : {16, 32, 64, 128}) {
      SsmmConfig cfg;
      cfg.mb = mb;
      cfg.nb = nb;
      cfg.mw = mb >= 64 ? mb / 2 : mb;
      cfg.nw = nb >= 16 ? nb / 2 : nb;
      if (cfg.mw % 16 != 0 || cfg.nw % 8 != 0) {
        std::printf(" %9s", "-");
        continue;
      }
      std::printf(" %9.3f",
                  TimingModel(device)
                      .Estimate(SamoyedsKernel::Analyze(shape, shape.n, fmt, cfg, device).traffic)
                      .total_ms);
    }
    std::printf("\n");
  }
  const AutotuneResult best = AutotuneSsmm(shape, shape.n, fmt, device);
  std::printf("autotuner: (mb=%d, nb=%d, stages=%d) -> %.3f ms (%.2fx over default)\n",
              best.config.mb, best.config.nb, best.config.stages, best.simulated_ms,
              best.speedup_over_default());
}

void StageSweep(const GemmShape& shape) {
  const SamoyedsConfig fmt{1, 2, 32};
  std::printf("\nPipeline depth sweep, shape %lld x %lld x %lld:\n",
              static_cast<long long>(shape.m), static_cast<long long>(shape.k),
              static_cast<long long>(shape.n));
  std::printf("%-28s", "device");
  for (int stages = 1; stages <= 4; ++stages) {
    std::printf("  stages=%d", stages);
  }
  std::printf("\n");
  for (DeviceModel dm : {DeviceModel::kRtx4070Super, DeviceModel::kRtx3090,
                         DeviceModel::kA100_40G}) {
    const DeviceSpec& device = GetDevice(dm);
    std::printf("%-28s", device.name.c_str());
    for (int stages = 1; stages <= 4; ++stages) {
      SsmmConfig cfg;
      cfg.stages = stages;
      std::printf(" %8.3f",
                  TimingModel(device)
                      .Estimate(SamoyedsKernel::Analyze(shape, shape.n, fmt, cfg, device).traffic)
                      .total_ms);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Ablation — tiling and pipeline-depth trade-offs");
  TileSweep({4096, 4096, 4096}, DefaultDevice());
  TileSweep({4096, 4096, 4096}, GetDevice(DeviceModel::kA100_40G));
  TileSweep({2048, 1408, 512}, DefaultDevice());
  StageSweep({4096, 4096, 4096});
  StageSweep({1024, 256, 1024});  // short reduction: fill/drain bites
  return 0;
}
