// Table 3: maximum supported batch sizes per framework on the 12 GB
// RTX 4070 Super (single decoder layer, sequence lengths as in Fig. 16).
//
// Paper reference: Samoyeds enlarges the maximum batch by 4.41x on average
// over the best baseline per row (1.04x MiniCPM ... 18.67x OpenMoE);
// MegaBlocks and vLLM-DS OOM at batch 1 on Mixtral-8x22B.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/moe/memory_model.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

std::string Cell(MoeFramework fw, const MoeModelConfig& model, int64_t seq) {
  if (!FrameworkSupportsModel(fw, model)) {
    return "-";
  }
  const auto fp = EstimateFootprint(model, fw, SamoyedsConfig{1, 2, 32}, DefaultDevice());
  return std::to_string(fp.MaxBatch(seq));
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Table 3 — Maximum Batch Sizes for MoE Models (RTX 4070 Super, 12 GB)");
  std::printf("%-14s %5s %13s %11s %8s %9s %12s\n", "model", "seq", "Transformers",
              "MegaBlocks", "vLLM-DS", "Samoyeds", "boost/best");
  double boost_sum = 0.0;
  int rows = 0;
  for (const auto& model : PaperModels()) {
    const int64_t seq = model.num_experts >= 32 && model.intermediate <= 4096 ? 4096 : 1024;
    const int64_t seq_eff = model.name == "OpenMoE-34B" ? 2048 : seq;
    const auto fp_s = EstimateFootprint(model, MoeFramework::kSamoyeds, SamoyedsConfig{1, 2, 32},
                                        DefaultDevice());
    const int64_t samoyeds = fp_s.MaxBatch(seq_eff);
    int64_t best_baseline = 0;
    for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                            MoeFramework::kVllmDs}) {
      if (!FrameworkSupportsModel(fw, model)) {
        continue;
      }
      const auto fp = EstimateFootprint(model, fw, SamoyedsConfig{1, 2, 32}, DefaultDevice());
      best_baseline = std::max(best_baseline, fp.MaxBatch(seq_eff));
    }
    const double boost =
        static_cast<double>(samoyeds) / static_cast<double>(std::max<int64_t>(1, best_baseline));
    boost_sum += boost;
    ++rows;
    std::printf("%-14s %5lld %13s %11s %8s %9lld %11.2fx\n", model.name.c_str(),
                static_cast<long long>(seq_eff),
                Cell(MoeFramework::kTransformers, model, seq_eff).c_str(),
                Cell(MoeFramework::kMegaBlocks, model, seq_eff).c_str(),
                Cell(MoeFramework::kVllmDs, model, seq_eff).c_str(),
                static_cast<long long>(samoyeds), boost);
  }
  PrintRule();
  std::printf("Average boost over the best baseline: %.2fx\n", boost_sum / rows);
  std::printf(
      "\nPaper reference (Table 3): Transformers 118/3/62/30/35/22; Samoyeds\n"
      "123/56/86/53/44/52; boosts 1.04x/18.67x/1.38x/1.77x/1.26x/2.36x (4.41x avg);\n"
      "MegaBlocks & vLLM-DS report 0 (OOM) for Mixtral-8x22B and '-' for OpenMoE.\n");
  return 0;
}
