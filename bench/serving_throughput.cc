// Serving engine sweep: offered load (arrival rate) x routing skew, a
// scheduler-policy comparison at fixed load, the paged-KV-cache admission
// comparison, a chunked-prefill sweep over a long-prompt trace (chunk size
// vs TTFT/turnaround, gated on bit-identity with one-shot prefill), and an
// expert-parallel shard sweep (shard count x routing skew x placement) that
// doubles as the CI gate for sharded-vs-unsharded bit identity (`--smoke`
// runs a reduced sweep; any bit divergence exits non-zero), a degraded-mode
// family (4 shards with one dying mid-run: every request must still finish,
// outputs must stay bit-identical to the healthy run, and the analytic
// compute cost must degrade gracefully), a tracing overhead gate (the
// chunked cell re-run with the flight recorder at full detail must stay
// within 5% tokens/s of untraced and bit-identical), an overlapped-execution
// gate (decode/prefill + all-to-all pipelining on the chunked 2-shard trace
// must stay bit-identical to serial with non-negative modeled savings and no
// modeled-throughput regression), and an open-loop async-serving family:
// wall-clock Poisson arrivals served live through the AsyncServer, reporting
// p95 TTFT and goodput for sync vs async vs async + decode-priority.
//
// `--json=PATH` emits every sweep cell as machine-readable JSON (the
// committed BENCH_serving.json is a pinned-seed full run), so the serving
// perf trajectory is tracked the same way BENCH_kernel.json tracks the
// kernel.
//
// Routing skew is induced physically: router gate rows are rescaled with a
// Zipf profile, so high-gain experts win top-k more often (larger logit
// variance -> heavier right tail). The achieved per-expert imbalance is
// measured from the engine's own expert-load histogram, not assumed.

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/moe/decoder_layer.h"
#include "src/obs/tracer.h"
#include "src/serving/engine.h"
#include "src/serving/scheduler.h"
#include "src/serving/server.h"
#include "src/serving/trace.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace {

constexpr int kHidden = 32;
constexpr int kInter = 64;
constexpr int kExperts = 8;
constexpr int kTopK = 2;
constexpr int kHeads = 4;
constexpr int kRequests = 24;

MoeModelConfig BenchModelConfig() {
  MoeModelConfig cfg;
  cfg.name = "serving-bench";
  cfg.num_experts = kExperts;
  cfg.hidden = kHidden;
  cfg.intermediate = kInter;
  cfg.top_k = kTopK;
  return cfg;
}

std::vector<SamoyedsDecoderLayerWeights> BuildModel(Rng& rng, double skew) {
  const MoeModelConfig cfg = BenchModelConfig();
  const SamoyedsConfig fmt{1, 2, 32};
  DecoderLayerWeights dense = DecoderLayerWeights::Random(rng, cfg);
  // Zipf gain profile over gate rows: expert e amplified by 1 + skew/(e+1).
  for (int e = 0; e < kExperts; ++e) {
    const float gain = static_cast<float>(1.0 + skew / (e + 1.0));
    for (int64_t c = 0; c < kHidden; ++c) {
      dense.moe.router_gate(e, c) *= gain;
    }
  }
  return {SamoyedsDecoderLayerWeights::Encode(dense, fmt)};
}

serving::ServingReport RunCell(uint64_t seed, double rate, double skew,
                               serving::SchedulerPolicy policy) {
  Rng rng(seed);
  serving::EngineConfig cfg;
  cfg.heads = kHeads;
  cfg.top_k = kTopK;
  cfg.threads = 2;
  cfg.scheduler.policy = policy;
  cfg.scheduler.token_budget = 48;
  cfg.scheduler.max_resident_tokens = 512;
  serving::ServingEngine engine(BuildModel(rng, skew), cfg);

  const auto entries = serving::SyntheticTrace(rng, kRequests, rate, /*prompt_lo=*/4,
                                               /*prompt_hi=*/16, /*decode_lo=*/2,
                                               /*decode_hi=*/8);
  for (size_t i = 0; i < entries.size(); ++i) {
    engine.Submit(serving::MakeRequest(rng, static_cast<int64_t>(i), entries[i], kHidden));
  }
  engine.RunUntilDrained(/*max_steps=*/100000);
  return engine.Report();
}

// Heavy-tailed workload for the KV-cache sweep: mostly short requests with
// every fifth one long, so resident footprints are skewed and a bounded page
// pool comes under real pressure.
std::vector<serving::TraceEntry> SkewedTrace(Rng& rng, int count, double rate) {
  auto entries = serving::SyntheticTrace(rng, count, rate, /*prompt_lo=*/3, /*prompt_hi=*/8,
                                         /*decode_lo=*/2, /*decode_hi=*/6);
  for (size_t i = 0; i < entries.size(); i += 5) {
    entries[i].prompt_len = 24 + rng.NextIndex(9);        // 24..32
    entries[i].max_new_tokens = 24 + rng.NextIndex(17);   // 24..40
  }
  return entries;
}

// One cell of the paged-vs-monolithic / preemption comparison. All modes see
// the same 128-token-slot memory budget: monolithic counts resident tokens,
// the paged modes count 8-token pages (16 pages).
serving::ServingReport RunKvCell(uint64_t seed, int64_t max_pages, bool preempt) {
  constexpr int64_t kPageTokens = 8;
  constexpr int64_t kSlots = 128;
  Rng rng(seed);
  serving::EngineConfig cfg;
  cfg.heads = kHeads;
  cfg.top_k = kTopK;
  cfg.threads = 2;
  cfg.scheduler.policy = serving::SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 48;
  cfg.scheduler.max_resident_tokens = max_pages > 0 ? (1 << 20) : kSlots;
  cfg.scheduler.page_tokens = kPageTokens;
  cfg.scheduler.max_pages = max_pages;
  cfg.scheduler.preempt = preempt;
  serving::ServingEngine engine(BuildModel(rng, /*skew=*/2.0), cfg);

  const auto entries = SkewedTrace(rng, kRequests, /*rate=*/4.0);
  for (size_t i = 0; i < entries.size(); ++i) {
    engine.Submit(serving::MakeRequest(rng, static_cast<int64_t>(i), entries[i], kHidden));
  }
  engine.RunUntilDrained(/*max_steps=*/100000);
  return engine.Report();
}

// One cell of the expert-parallel shard sweep: same model, trace and
// thread count at every shard count, so outputs must be bit-identical and
// only the analytic cluster estimate (max-over-shards compute + all-to-all)
// and the shard-load histogram may move.
struct ShardRun {
  serving::ServingReport report;
  std::vector<MatrixF> outputs;  // per request, submission order
};

// One cell of the chunked-prefill sweep: a long-prompt trace (every prompt
// far above the serving budget) served with chunk size `chunk_tokens` under
// `budget`. Outputs are recorded so every chunked cell can be gated
// bit-identical against the one-shot baseline (served under a budget large
// enough to prefill in one iteration).
struct ChunkRun {
  serving::ServingReport report;
  std::vector<MatrixF> outputs;  // per request, submission order
  int64_t finished = 0;
};

ChunkRun RunChunkCell(uint64_t seed, int64_t budget, int64_t chunk_tokens, int requests,
                      int shards = 1, bool overlap = false,
                      serving::ChunkPolicy chunk_policy = serving::ChunkPolicy::kFixed) {
  Rng rng(seed);
  serving::EngineConfig cfg;
  cfg.heads = kHeads;
  cfg.top_k = kTopK;
  cfg.threads = 2;
  cfg.shards = shards;
  cfg.overlap = overlap;
  cfg.scheduler.policy = serving::SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = budget;
  cfg.scheduler.chunk_tokens = chunk_tokens;
  cfg.scheduler.chunk_policy = chunk_policy;
  cfg.scheduler.max_resident_tokens = 4096;
  serving::ServingEngine engine(BuildModel(rng, /*skew=*/2.0), cfg);

  auto entries = serving::SyntheticTrace(rng, requests, /*rate=*/1.0, /*prompt_lo=*/48,
                                         /*prompt_hi=*/96, /*decode_lo=*/4, /*decode_hi=*/12);
  for (size_t i = 0; i < entries.size(); ++i) {
    engine.Submit(serving::MakeRequest(rng, static_cast<int64_t>(i), entries[i], kHidden));
  }
  engine.RunUntilDrained(/*max_steps=*/100000);

  ChunkRun run;
  run.report = engine.Report();
  for (size_t i = 0; i < entries.size(); ++i) {
    const serving::RequestResult* result = engine.Result(static_cast<int64_t>(i));
    const bool done = result != nullptr &&
                      result->status == serving::RequestStatus::kFinished;
    run.finished += done ? 1 : 0;
    run.outputs.push_back(done ? result->outputs : MatrixF(0, 0));
  }
  return run;
}

// One cell of the open-loop async-serving family: requests arrive on the wall
// clock (exponential inter-arrival gaps, Poisson process) through an
// AsyncServer driving the engine on its background thread, instead of being
// pre-loaded and drained. Goodput counts only tokens of requests that
// actually finished, over the measured wall time — an open-loop metric the
// pre-loaded sweeps cannot produce (they conflate queueing with service).
struct OpenLoopRun {
  serving::ServingReport report;
  double wall_ms = 0.0;
  int64_t finished = 0;
  double goodput_tokens_per_s = 0.0;
};

OpenLoopRun RunOpenLoopCell(uint64_t seed, bool async, bool overlap,
                            serving::ChunkPolicy chunk_policy, int requests,
                            double mean_gap_ms) {
  Rng rng(seed);
  serving::EngineConfig cfg;
  cfg.heads = kHeads;
  cfg.top_k = kTopK;
  cfg.threads = 2;
  cfg.shards = 2;
  cfg.overlap = overlap;
  cfg.scheduler.policy = serving::SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 32;
  cfg.scheduler.chunk_tokens = 8;
  cfg.scheduler.chunk_policy = chunk_policy;
  cfg.scheduler.max_resident_tokens = 4096;
  serving::ServingEngine engine(BuildModel(rng, /*skew=*/2.0), cfg);

  auto entries = serving::SyntheticTrace(rng, requests, /*rate=*/1.0, /*prompt_lo=*/24,
                                         /*prompt_hi=*/48, /*decode_lo=*/4, /*decode_hi=*/12);
  std::vector<serving::Request> reqs;
  std::vector<int64_t> tokens;
  for (size_t i = 0; i < entries.size(); ++i) {
    reqs.push_back(serving::MakeRequest(rng, static_cast<int64_t>(i), entries[i], kHidden));
    tokens.push_back(reqs.back().total_tokens());
  }
  // Pre-draw the arrival gaps so the Poisson process is identical across
  // modes (same seed -> same offered load); only service differs.
  std::vector<double> gaps_ms;
  for (int i = 0; i < requests; ++i) {
    gaps_ms.push_back(-mean_gap_ms * std::log(std::max(1e-12, rng.NextDouble())));
  }

  OpenLoopRun run;
  const auto start = std::chrono::steady_clock::now();
  if (async) {
    serving::ServerConfig scfg;
    scfg.clock = serving::ServerClock::kWall;
    serving::AsyncServer server(engine, scfg);
    server.Start();
    for (size_t i = 0; i < reqs.size(); ++i) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(gaps_ms[i]));
      server.Submit(std::move(reqs[i]));
    }
    server.Drain();
    for (int i = 0; i < requests; ++i) {
      const serving::ServerPollResult res = server.WaitTerminal(i);
      if (res.status == serving::RequestStatus::kFinished) {
        ++run.finished;
      }
    }
    server.Stop();
  } else {
    // Sync strawman: arrivals still pace on the wall clock, but the engine
    // only steps between arrivals on the client thread — the serial serve
    // loop an async front-end replaces.
    for (size_t i = 0; i < reqs.size(); ++i) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(gaps_ms[i]));
      engine.Submit(std::move(reqs[i]));
      engine.Step();
    }
    engine.RunUntilDrained(/*max_steps=*/100000);
    for (int i = 0; i < requests; ++i) {
      const serving::RequestResult* result = engine.Result(i);
      if (result != nullptr && result->status == serving::RequestStatus::kFinished) {
        ++run.finished;
      }
    }
  }
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start).count();
  run.report = engine.Report();
  int64_t finished_tokens = 0;
  for (int i = 0; i < requests; ++i) {
    const serving::RequestResult* result = engine.Result(i);
    if (result != nullptr && result->status == serving::RequestStatus::kFinished) {
      finished_tokens += tokens[static_cast<size_t>(i)];
    }
  }
  run.goodput_tokens_per_s =
      run.wall_ms > 0.0 ? 1000.0 * static_cast<double>(finished_tokens) / run.wall_ms : 0.0;
  return run;
}

// One cell of the prefix-sharing comparison: a multi-tenant trace where every
// request opens with the same 16-row "system prompt" block (stamped from the
// first request's inputs), so a radix prefix cache can serve that block from
// shared pages for every tenant after the first. The same trace is run with
// sharing off and on (and, under a tight page pool, with swap preemption),
// gated on bit-identity plus an actual hit rate and TTFT win.
struct PrefixRun {
  serving::ServingReport report;
  std::vector<MatrixF> outputs;  // per request, submission order
  int64_t finished = 0;
  // TTFT split by whether the admission reused cached prompt tokens.
  double hit_ttft_steps = 0.0;
  double miss_ttft_steps = 0.0;
  int64_t hit_sessions = 0;
};

PrefixRun RunPrefixCell(uint64_t seed, bool prefix_cache, bool preempt, bool swap,
                        int64_t max_pages, int requests) {
  constexpr int64_t kSystemRows = 16;
  Rng rng(seed);
  serving::EngineConfig cfg;
  cfg.heads = kHeads;
  cfg.top_k = kTopK;
  cfg.threads = 2;
  cfg.scheduler.policy = serving::SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 48;
  cfg.scheduler.chunk_tokens = 16;
  cfg.scheduler.max_resident_tokens = 4096;
  cfg.scheduler.page_tokens = 8;
  cfg.scheduler.max_pages = max_pages;
  cfg.scheduler.preempt = preempt;
  cfg.prefix_cache = prefix_cache;
  cfg.swap = swap;
  cfg.host_pages = 64;
  serving::ServingEngine engine(BuildModel(rng, /*skew=*/2.0), cfg);

  // Arrivals are spread out (mean gap 10 steps) so early tenants retire — and
  // donate their prefix — before later ones are admitted; a back-to-back
  // burst would admit everyone cold before the first donation exists.
  const auto entries = serving::SyntheticTrace(rng, requests, /*rate=*/0.1,
                                               /*prompt_lo=*/20, /*prompt_hi=*/32,
                                               /*decode_lo=*/4, /*decode_hi=*/8);
  std::vector<serving::Request> reqs;
  for (size_t i = 0; i < entries.size(); ++i) {
    reqs.push_back(serving::MakeRequest(rng, static_cast<int64_t>(i), entries[i], kHidden));
  }
  for (size_t i = 1; i < reqs.size(); ++i) {
    for (int64_t r = 0; r < kSystemRows; ++r) {
      for (int64_t c = 0; c < kHidden; ++c) {
        reqs[i].inputs(r, c) = reqs[0].inputs(r, c);
      }
    }
  }
  for (auto& r : reqs) {
    engine.Submit(std::move(r));
  }
  engine.RunUntilDrained(/*max_steps=*/100000);

  PrefixRun run;
  run.report = engine.Report();
  int64_t misses = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const serving::RequestResult* result = engine.Result(static_cast<int64_t>(i));
    const bool done = result != nullptr &&
                      result->status == serving::RequestStatus::kFinished;
    run.finished += done ? 1 : 0;
    run.outputs.push_back(done ? result->outputs : MatrixF(0, 0));
  }
  for (const auto& [id, m] : engine.metrics().requests()) {
    if (m.first_output_step < 0) {
      continue;
    }
    const double ttft = static_cast<double>(m.first_output_step - m.arrival_step);
    if (m.cached_prompt_tokens > 0) {
      run.hit_ttft_steps += ttft;
      ++run.hit_sessions;
    } else {
      run.miss_ttft_steps += ttft;
      ++misses;
    }
  }
  if (run.hit_sessions > 0) {
    run.hit_ttft_steps /= static_cast<double>(run.hit_sessions);
  }
  if (misses > 0) {
    run.miss_ttft_steps /= static_cast<double>(misses);
  }
  return run;
}

// Accumulates sweep cells as JSON objects (one per line) for --json=PATH.
class JsonCells {
 public:
  // `identical`: 1/0 for cells a bit-identity gate actually compared, -1 for
  // ungated cells (the field is omitted — absence means "not checked", so a
  // JSON consumer can tell verified cells from merely-emitted ones).
  void Add(const char* section, const std::string& params,
           const serving::ServingReport& rep, int identical = -1) {
    char gate[40] = "";
    if (identical >= 0) {
      std::snprintf(gate, sizeof(gate), ", \"bit_identical\": %s",
                    identical > 0 ? "true" : "false");
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"section\": \"%s\", %s, \"ttft_steps\": %.2f, "
                  "\"p95_ttft_steps\": %.2f, \"p95_turnaround_steps\": %.2f, "
                  "\"tokens_per_second\": %.1f, \"occupancy\": %.3f, \"steps\": %lld, "
                  "\"preemptions\": %lld, \"prefill_chunk_slices\": %lld, "
                  "\"est_compute_ms\": %.3f, \"est_alltoall_ms\": %.3f, "
                  "\"shard_imbalance\": %.3f%s}",
                  section, params.c_str(), rep.mean_ttft_steps, rep.p95_ttft_steps,
                  rep.p95_turnaround_steps, rep.tokens_per_second, rep.mean_occupancy,
                  static_cast<long long>(rep.steps), static_cast<long long>(rep.preemptions),
                  static_cast<long long>(rep.prefill_chunk_slices), rep.est_compute_ms,
                  rep.est_alltoall_ms, rep.shard_imbalance, gate);
    if (!cells_.empty()) {
      cells_ += ",\n";
    }
    cells_ += buf;
  }

  // Wraps the cells in the bench-level envelope and writes them. The
  // envelope carries a schema version and the fixed bench configuration so
  // an archived artifact is self-describing.
  bool Write(const std::string& path, bool smoke) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serving_throughput\",\n  \"schema_version\": 1,\n"
                 "  \"mode\": \"%s\",\n  \"seed\": 7,\n"
                 "  \"config\": {\"hidden\": %d, \"intermediate\": %d, \"experts\": %d, "
                 "\"top_k\": %d, \"heads\": %d, \"requests\": %d},\n"
                 "  \"cells\": [\n%s\n  ]\n}\n",
                 smoke ? "smoke" : "full", kHidden, kInter, kExperts, kTopK, kHeads,
                 kRequests, cells_.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string cells_;
};

std::string Params(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

// One cell of the degraded-mode family: the shard-sweep workload served
// either healthy or under a fault schedule (e.g. one shard dying mid-run).
// Outputs are recorded so the degraded run can be gated bit-identical
// against the healthy one — failover re-places the dead shard's experts but
// must never change what any request computes.
struct DegradedRun {
  serving::ServingReport report;
  std::vector<MatrixF> outputs;  // per request, submission order
  int64_t finished = 0;
};

DegradedRun RunDegradedCell(uint64_t seed, int shards, const std::string& fault_spec,
                            int requests) {
  Rng rng(seed);
  serving::EngineConfig cfg;
  cfg.heads = kHeads;
  cfg.top_k = kTopK;
  cfg.threads = 4;
  cfg.shards = shards;
  cfg.scheduler.policy = serving::SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 48;
  cfg.scheduler.max_resident_tokens = 512;
  if (!fault_spec.empty()) {
    std::string err;
    if (!serving::ParseFaultSchedule(fault_spec, &cfg.faults, &err)) {
      std::fprintf(stderr, "bad fault schedule '%s': %s\n", fault_spec.c_str(), err.c_str());
      std::exit(2);
    }
    cfg.fault_seed = 7;
  }
  serving::ServingEngine engine(BuildModel(rng, /*skew=*/2.0), cfg);

  const auto entries = serving::SyntheticTrace(rng, requests, /*rate=*/4.0, /*prompt_lo=*/4,
                                               /*prompt_hi=*/16, /*decode_lo=*/2,
                                               /*decode_hi=*/8);
  for (size_t i = 0; i < entries.size(); ++i) {
    engine.Submit(serving::MakeRequest(rng, static_cast<int64_t>(i), entries[i], kHidden));
  }
  engine.RunUntilDrained(/*max_steps=*/100000);

  DegradedRun run;
  run.report = engine.Report();
  for (size_t i = 0; i < entries.size(); ++i) {
    const serving::RequestResult* result = engine.Result(static_cast<int64_t>(i));
    const bool done = result != nullptr &&
                      result->status == serving::RequestStatus::kFinished;
    run.finished += done ? 1 : 0;
    run.outputs.push_back(done ? result->outputs : MatrixF(0, 0));
  }
  return run;
}

ShardRun RunShardCell(uint64_t seed, double skew, int shards,
                      serving::ShardPlacement placement, int requests) {
  Rng rng(seed);
  serving::EngineConfig cfg;
  cfg.heads = kHeads;
  cfg.top_k = kTopK;
  cfg.threads = 4;
  cfg.shards = shards;
  cfg.placement = placement;
  cfg.scheduler.policy = serving::SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 48;
  cfg.scheduler.max_resident_tokens = 512;
  serving::ServingEngine engine(BuildModel(rng, skew), cfg);

  const auto entries = serving::SyntheticTrace(rng, requests, /*rate=*/4.0, /*prompt_lo=*/4,
                                               /*prompt_hi=*/16, /*decode_lo=*/2,
                                               /*decode_hi=*/8);
  for (size_t i = 0; i < entries.size(); ++i) {
    engine.Submit(serving::MakeRequest(rng, static_cast<int64_t>(i), entries[i], kHidden));
  }
  engine.RunUntilDrained(/*max_steps=*/100000);

  ShardRun run;
  run.report = engine.Report();
  for (size_t i = 0; i < entries.size(); ++i) {
    const serving::RequestResult* result = engine.Result(static_cast<int64_t>(i));
    run.outputs.push_back(result != nullptr ? result->outputs : MatrixF(0, 0));
  }
  return run;
}

}  // namespace
}  // namespace samoyeds

int main(int argc, char** argv) {
  using namespace samoyeds;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument: %s (supported: --smoke --json=PATH)\n", argv[i]);
      return 2;
    }
  }
  JsonCells cells;

  if (!smoke) {
  PrintHeader("Serving throughput sweep: arrival rate x routing skew "
              "(token-budget policy, 24 requests, 1 decoder layer)");
  std::printf("%8s %6s %12s %12s %11s %11s %10s\n", "rate", "skew", "TTFT steps", "tokens/s",
              "occupancy", "imbalance", "steps");
  for (double rate : {0.25, 1.0, 4.0}) {
    for (double skew : {0.0, 2.0, 8.0}) {
      const auto rep = RunCell(/*seed=*/7, rate, skew, serving::SchedulerPolicy::kTokenBudget);
      cells.Add("throughput_sweep", Params("\"rate\": %.2f, \"skew\": %.1f", rate, skew), rep);
      std::printf("%8.2f %6.1f %12.1f %12.1f %10.0f%% %10.2fx %10lld\n", rate, skew,
                  rep.mean_ttft_steps, rep.tokens_per_second, 100.0 * rep.mean_occupancy,
                  rep.expert_imbalance, static_cast<long long>(rep.steps));
    }
  }

  PrintHeader("Scheduler policy comparison (rate 4.0, skew 2.0)");
  std::printf("%16s %12s %12s %11s %12s\n", "policy", "TTFT steps", "tokens/s", "occupancy",
              "peak concur");
  for (serving::SchedulerPolicy policy :
       {serving::SchedulerPolicy::kFcfs, serving::SchedulerPolicy::kSmallestFirst,
        serving::SchedulerPolicy::kTokenBudget}) {
    const auto rep = RunCell(7, 4.0, 2.0, policy);
    cells.Add("policy_comparison",
              Params("\"policy\": \"%s\"", serving::SchedulerPolicyName(policy)), rep);
    std::printf("%16s %12.1f %12.1f %10.0f%% %12lld\n", serving::SchedulerPolicyName(policy),
                rep.mean_ttft_steps, rep.tokens_per_second, 100.0 * rep.mean_occupancy,
                static_cast<long long>(rep.peak_sequences));
  }

  PrintHeader("Paged KV cache: admission accounting x preemption under a skewed trace "
              "(128 token slots of memory, 8-token pages, rate 4.0)");
  std::printf("%20s %10s %10s %10s %10s %9s %9s %9s\n", "mode", "TTFT mean", "TTFT p95",
              "turn p95", "tokens/s", "preempts", "util", "frag");
  struct KvMode {
    const char* name;
    int64_t max_pages;
    bool preempt;
  };
  for (const KvMode& mode : {KvMode{"monolithic-tokens", 0, false},
                             KvMode{"paged", 16, false},
                             KvMode{"paged+preempt", 16, true}}) {
    const auto rep = RunKvCell(/*seed=*/7, mode.max_pages, mode.preempt);
    cells.Add("kv_modes", Params("\"mode\": \"%s\"", mode.name), rep);
    std::printf("%20s %10.1f %10.1f %10.1f %10.1f %9lld %8.0f%% %9.1f\n", mode.name,
                rep.mean_ttft_steps, rep.p95_ttft_steps, rep.p95_turnaround_steps,
                rep.tokens_per_second, static_cast<long long>(rep.preemptions),
                100.0 * rep.mean_page_utilization, rep.mean_frag_tokens);
  }
  }  // !smoke

  // ---- Chunked prefill sweep (also a CI bit-identity gate) -----------------
  // Long-prompt trace: every prompt (48..96 rows) is far above the 32-row
  // serving budget, so without chunking all of them are rejected. The
  // one-shot baseline serves the same trace under a 128-row budget; every
  // chunked cell must reproduce it bit for bit.
  const int chunk_requests = smoke ? 6 : 16;
  int chunk_divergences = 0;
  PrintHeader("Chunked prefill: chunk size under a 32-row budget, 48..96-row prompts "
              "(one-shot baseline at budget 128; outputs must be bit-identical)");
  std::printf("%12s %9s %12s %12s %12s %12s %10s\n", "chunk", "finished", "TTFT steps",
              "turn p95", "tokens/s", "chunk slices", "identical");
  const ChunkRun baseline = RunChunkCell(/*seed=*/7, /*budget=*/128, /*chunk_tokens=*/0,
                                         chunk_requests);
  cells.Add("chunked_prefill", Params("\"budget\": 128, \"chunk_tokens\": 0"),
            baseline.report);
  std::printf("%12s %9lld %12.1f %12.1f %12.1f %12lld %10s\n", "one-shot",
              static_cast<long long>(baseline.finished), baseline.report.mean_ttft_steps,
              baseline.report.p95_turnaround_steps, baseline.report.tokens_per_second,
              static_cast<long long>(baseline.report.prefill_chunk_slices), "base");
  for (int64_t chunk : {int64_t{4}, int64_t{8}, int64_t{16}, int64_t{32}}) {
    const ChunkRun run = RunChunkCell(7, /*budget=*/32, chunk, chunk_requests);
    bool identical = run.finished == chunk_requests &&
                     baseline.finished == chunk_requests &&
                     run.outputs.size() == baseline.outputs.size();
    for (size_t i = 0; identical && i < run.outputs.size(); ++i) {
      identical = run.outputs[i] == baseline.outputs[i];
    }
    chunk_divergences += identical ? 0 : 1;
    cells.Add("chunked_prefill",
              Params("\"budget\": 32, \"chunk_tokens\": %lld", static_cast<long long>(chunk)),
              run.report, identical ? 1 : 0);
    std::printf("%12lld %9lld %12.1f %12.1f %12.1f %12lld %10s\n",
                static_cast<long long>(chunk), static_cast<long long>(run.finished),
                run.report.mean_ttft_steps, run.report.p95_turnaround_steps,
                run.report.tokens_per_second,
                static_cast<long long>(run.report.prefill_chunk_slices),
                identical ? "yes" : "NO");
  }

  // ---- Prefix sharing: shared-system-prompt multi-tenant trace -------------
  // Every tenant opens with the same 16-row system prompt; the cache must buy
  // an actual hit rate and a TTFT win while staying bit-identical to the
  // sharing-off run. A second pair re-runs the trace under a tight page pool
  // with preemption, where sharing-on also swaps victims instead of
  // recomputing them — still gated bit-identical.
  const int prefix_requests = smoke ? 8 : 20;
  int prefix_failures = 0;
  PrintHeader("Prefix sharing: 16-row shared system prompt, 20..32-row prompts "
              "(sharing on vs off must be bit-identical; hits must beat misses)");
  std::printf("%16s %9s %10s %9s %9s %9s %6s %7s %10s\n", "mode", "finished",
              "TTFT mean", "hit TTFT", "miss TTFT", "hit rate", "cow", "swaps",
              "identical");
  struct PrefixMode {
    const char* name;
    bool prefix;
    bool swap;
    int64_t max_pages;
    int baseline;  // index into runs[] to compare outputs against; -1 = is a baseline
  };
  const PrefixMode prefix_modes[] = {
      {"off", false, false, 64, -1},
      {"on", true, false, 64, 0},
      {"off+preempt", false, false /*recompute*/, 8, -1},
      {"on+swap", true, true, 8, 2},
  };
  std::vector<PrefixRun> prefix_runs;
  for (const PrefixMode& mode : prefix_modes) {
    // The tight-pool pair runs with preemption on either way; only the
    // readmission strategy differs (recompute vs swap restore).
    PrefixRun run = RunPrefixCell(/*seed=*/7, mode.prefix, /*preempt=*/mode.max_pages == 8,
                                  mode.swap, mode.max_pages, prefix_requests);
    int identical = -1;
    if (mode.baseline >= 0) {
      const PrefixRun& base = prefix_runs[static_cast<size_t>(mode.baseline)];
      bool same = run.finished == prefix_requests && base.finished == prefix_requests &&
                  run.outputs.size() == base.outputs.size();
      for (size_t i = 0; same && i < run.outputs.size(); ++i) {
        same = run.outputs[i] == base.outputs[i];
      }
      identical = same ? 1 : 0;
      prefix_failures += same ? 0 : 1;
      if (!same) {
        std::fprintf(stderr, "FAIL: prefix mode '%s' diverged bit-wise from '%s'\n",
                     mode.name, prefix_modes[mode.baseline].name);
      }
    }
    cells.Add("prefix_sharing",
              Params("\"mode\": \"%s\", \"hit_rate\": %.3f, \"hit_tokens\": %lld, "
                     "\"cow_splits\": %lld, \"swap_outs\": %lld",
                     mode.name, run.report.prefix_hit_rate,
                     static_cast<long long>(run.report.prefix_hit_tokens),
                     static_cast<long long>(run.report.cow_splits),
                     static_cast<long long>(run.report.swap_outs)),
              run.report, identical);
    std::printf("%16s %9lld %10.1f %9.1f %9.1f %8.0f%% %6lld %7lld %10s\n", mode.name,
                static_cast<long long>(run.finished), run.report.mean_ttft_steps,
                run.hit_ttft_steps, run.miss_ttft_steps, 100.0 * run.report.prefix_hit_rate,
                static_cast<long long>(run.report.cow_splits),
                static_cast<long long>(run.report.swap_outs),
                identical < 0 ? "base" : identical > 0 ? "yes" : "NO");
    prefix_runs.push_back(std::move(run));
  }
  {
    const PrefixRun& off = prefix_runs[0];
    const PrefixRun& on = prefix_runs[1];
    if (on.report.prefix_hit_tokens <= 0 || on.hit_sessions <= 0) {
      std::fprintf(stderr, "FAIL: sharing-on run produced no prefix hits\n");
      ++prefix_failures;
    }
    if (on.report.mean_ttft_steps >= off.report.mean_ttft_steps) {
      std::fprintf(stderr,
                   "FAIL: prefix sharing did not improve mean TTFT (%.2f vs %.2f steps)\n",
                   on.report.mean_ttft_steps, off.report.mean_ttft_steps);
      ++prefix_failures;
    }
    std::printf("prefix sharing: mean TTFT %.1f -> %.1f steps, hit rate %.0f%%\n",
                off.report.mean_ttft_steps, on.report.mean_ttft_steps,
                100.0 * on.report.prefix_hit_rate);
  }

  // ---- Expert-parallel shard sweep (also the CI bit-identity gate) ---------
  const int shard_requests = smoke ? 12 : 24;
  const std::vector<double> shard_skews = smoke ? std::vector<double>{8.0}
                                                : std::vector<double>{0.0, 8.0};
  PrintHeader("Expert-parallel shard sweep: shard count x routing skew x placement "
              "(4 threads; outputs must be bit-identical to 1 shard)");
  std::printf("%7s %6s %12s %11s %11s %10s %11s %10s\n", "shards", "skew", "placement",
              "est cmp ms", "est a2a ms", "a2a share", "shard imbal", "identical");
  int divergences = 0;
  for (double skew : shard_skews) {
    const ShardRun baseline = RunShardCell(/*seed=*/7, skew, /*shards=*/1,
                                           serving::ShardPlacement::kRoundRobin,
                                           shard_requests);
    cells.Add("shard_sweep",
              Params("\"shards\": 1, \"skew\": %.1f, \"placement\": \"-\"", skew),
              baseline.report);
    std::printf("%7d %6.1f %12s %11.3f %11.3f %9.0f%% %10.2fx %10s\n", 1, skew, "-",
                baseline.report.est_compute_ms, baseline.report.est_alltoall_ms,
                100.0 * baseline.report.est_alltoall_share, baseline.report.shard_imbalance,
                "base");
    for (int shards : {2, 4}) {
      for (serving::ShardPlacement placement :
           {serving::ShardPlacement::kRoundRobin, serving::ShardPlacement::kGateStats}) {
        const ShardRun run = RunShardCell(7, skew, shards, placement, shard_requests);
        bool identical = run.outputs.size() == baseline.outputs.size();
        for (size_t i = 0; identical && i < run.outputs.size(); ++i) {
          identical = run.outputs[i] == baseline.outputs[i];
        }
        divergences += identical ? 0 : 1;
        cells.Add("shard_sweep",
                  Params("\"shards\": %d, \"skew\": %.1f, \"placement\": \"%s\"", shards, skew,
                         serving::ShardPlacementName(placement)),
                  run.report, identical ? 1 : 0);
        std::printf("%7d %6.1f %12s %11.3f %11.3f %9.0f%% %10.2fx %10s\n", shards, skew,
                    serving::ShardPlacementName(placement), run.report.est_compute_ms,
                    run.report.est_alltoall_ms, 100.0 * run.report.est_alltoall_share,
                    run.report.shard_imbalance, identical ? "yes" : "NO");
      }
    }
  }

  // ---- Degraded mode: mid-run shard death (also a CI gate) -----------------
  // The same trace is served on 4 healthy shards and again with shard 1
  // dying at step 6 (its experts fail over to the 3 survivors). Gates: the
  // degraded run drains with every request finished, outputs bit-identical
  // to the healthy run, exactly one failover absorbed, and the throughput
  // cost stays graceful — the analytic max-over-shards compute may grow
  // (3 survivors carry 4 shards' experts) but must stay within 2x healthy,
  // i.e. degradation is proportional to the lost capacity, not a collapse.
  const int degraded_requests = smoke ? 12 : 24;
  int degraded_failures = 0;
  PrintHeader("Degraded mode: 4 shards, shard 1 dies at step 6 "
              "(all requests must finish; outputs must be bit-identical to healthy)");
  std::printf("%12s %9s %11s %11s %10s %8s %10s\n", "mode", "finished", "est cmp ms",
              "est a2a ms", "failovers", "steps", "identical");
  const DegradedRun healthy =
      RunDegradedCell(/*seed=*/7, /*shards=*/4, /*fault_spec=*/"", degraded_requests);
  cells.Add("degraded_mode",
            Params("\"mode\": \"healthy\", \"shards\": 4, \"failovers\": 0"),
            healthy.report);
  std::printf("%12s %9lld %11.3f %11.3f %10lld %8lld %10s\n", "healthy",
              static_cast<long long>(healthy.finished), healthy.report.est_compute_ms,
              healthy.report.est_alltoall_ms,
              static_cast<long long>(healthy.report.shard_failovers),
              static_cast<long long>(healthy.report.steps), "base");
  const DegradedRun degraded =
      RunDegradedCell(/*seed=*/7, /*shards=*/4, "shard-die@6:1", degraded_requests);
  bool degraded_identical = degraded.finished == degraded_requests &&
                            healthy.finished == degraded_requests &&
                            degraded.outputs.size() == healthy.outputs.size();
  for (size_t i = 0; degraded_identical && i < degraded.outputs.size(); ++i) {
    degraded_identical = degraded.outputs[i] == healthy.outputs[i];
  }
  cells.Add("degraded_mode",
            Params("\"mode\": \"one-dead-shard\", \"shards\": 4, \"failovers\": %lld",
                   static_cast<long long>(degraded.report.shard_failovers)),
            degraded.report, degraded_identical ? 1 : 0);
  std::printf("%12s %9lld %11.3f %11.3f %10lld %8lld %10s\n", "shard-die@6",
              static_cast<long long>(degraded.finished), degraded.report.est_compute_ms,
              degraded.report.est_alltoall_ms,
              static_cast<long long>(degraded.report.shard_failovers),
              static_cast<long long>(degraded.report.steps),
              degraded_identical ? "yes" : "NO");
  if (!degraded_identical) {
    std::fprintf(stderr,
                 "FAIL: degraded run (one dead shard) diverged from healthy or did not "
                 "finish every request (%lld/%d finished)\n",
                 static_cast<long long>(degraded.finished), degraded_requests);
    ++degraded_failures;
  }
  if (degraded.report.shard_failovers != 1) {
    std::fprintf(stderr, "FAIL: expected exactly 1 shard failover, saw %lld\n",
                 static_cast<long long>(degraded.report.shard_failovers));
    ++degraded_failures;
  }
  const double degradation =
      healthy.report.est_compute_ms > 0.0
          ? degraded.report.est_compute_ms / healthy.report.est_compute_ms
          : 0.0;
  if (degradation > 2.0) {
    std::fprintf(stderr,
                 "FAIL: losing 1 of 4 shards cost %.2fx est compute (graceful bound: 2x)\n",
                 degradation);
    ++degraded_failures;
  }
  std::printf("degraded mode: est compute %.3f -> %.3f ms (%.2fx), failovers %lld, "
              "bit-identity %s\n",
              healthy.report.est_compute_ms, degraded.report.est_compute_ms, degradation,
              static_cast<long long>(degraded.report.shard_failovers),
              degraded_identical ? "holds" : "BROKEN");

  // ---- Tracing overhead gate (also a CI gate) ------------------------------
  // The chunked cell (budget 32, chunk 8) is re-run untraced and traced at
  // full detail (every span and counter live, default per-thread rings).
  // Best-of-3 wall-clock tokens/s on each side absorbs scheduler noise; the
  // gate demands traced >= 95% of untraced AND bit-identical outputs, so the
  // instrumentation can never silently become a perf or correctness tax.
  const int trace_requests = smoke ? 6 : 16;
  PrintHeader("Tracing overhead: chunked serving (budget 32, chunk 8) untraced vs "
              "traced at full detail (best of 3; outputs must be bit-identical)");
  std::printf("%10s %12s %12s %12s %10s\n", "tracing", "tokens/s", "TTFT steps",
              "events", "identical");
  ChunkRun untraced;
  for (int rep = 0; rep < 3; ++rep) {
    ChunkRun run = RunChunkCell(/*seed=*/7, /*budget=*/32, /*chunk_tokens=*/8,
                                trace_requests);
    if (rep == 0 || run.report.tokens_per_second > untraced.report.tokens_per_second) {
      untraced = std::move(run);
    }
  }
  ChunkRun traced;
  int64_t trace_events = 0;
  int64_t trace_dropped = 0;
  for (int rep = 0; rep < 3; ++rep) {
    // Ring sized to the workload (verified: nothing is overwritten) so the
    // gate measures the steady-state emit path. The default 256K-slot rings
    // are one-time warmup allocation, which on a millisecond-scale cell
    // would swamp the per-event cost being gated here.
    obs::Tracer::Get().Start(obs::TraceDetail::kFull, /*ring_capacity=*/1 << 12);
    ChunkRun run = RunChunkCell(/*seed=*/7, /*budget=*/32, /*chunk_tokens=*/8,
                                trace_requests);
    obs::Tracer::Get().Stop();
    if (rep == 0 || run.report.tokens_per_second > traced.report.tokens_per_second) {
      traced = std::move(run);
      trace_events = obs::Tracer::Get().total_events();
    }
    trace_dropped += obs::Tracer::Get().dropped_events();
  }
  bool trace_identical = untraced.outputs.size() == traced.outputs.size();
  for (size_t i = 0; trace_identical && i < traced.outputs.size(); ++i) {
    trace_identical = traced.outputs[i] == untraced.outputs[i];
  }
  const double overhead_ratio =
      untraced.report.tokens_per_second > 0.0
          ? traced.report.tokens_per_second / untraced.report.tokens_per_second
          : 0.0;
  cells.Add("tracing_overhead", Params("\"tracing\": \"off\""), untraced.report);
  cells.Add("tracing_overhead",
            Params("\"tracing\": \"full\", \"overhead_ratio\": %.4f", overhead_ratio),
            traced.report, trace_identical ? 1 : 0);
  std::printf("%10s %12.1f %12.1f %12s %10s\n", "off",
              untraced.report.tokens_per_second, untraced.report.mean_ttft_steps, "-",
              "base");
  std::printf("%10s %12.1f %12.1f %12lld %10s\n", "full",
              traced.report.tokens_per_second, traced.report.mean_ttft_steps,
              static_cast<long long>(trace_events), trace_identical ? "yes" : "NO");
  std::printf("tracing overhead: traced runs at %.1f%% of untraced tokens/s "
              "(gate: >= 95%%)\n", 100.0 * overhead_ratio);
  int trace_failures = 0;
  if (trace_dropped > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld event(s) overwritten — ring too small for the gate cell, "
                 "Start cost would leak into the measurement\n",
                 static_cast<long long>(trace_dropped));
    ++trace_failures;
  }
  if (!trace_identical) {
    std::fprintf(stderr, "FAIL: traced run diverged bit-wise from the untraced run\n");
    ++trace_failures;
  }
  if (overhead_ratio < 0.95) {
    std::fprintf(stderr,
                 "FAIL: full-detail tracing costs %.1f%% tokens/s (budget: 5%%)\n",
                 100.0 * (1.0 - overhead_ratio));
    ++trace_failures;
  }

  // ---- Overlapped execution (also a CI gate) -------------------------------
  // The chunked long-prompt cell (budget 32, chunk 8) re-run on 2 shards:
  // serial vs overlapped decode/prefill + all-to-all pipelining, and
  // overlapped with the decode-priority chunk policy. Gates: both overlap
  // modes stay bit-identical to serial (execution overlap must be lossless),
  // the modeled savings are non-negative, and — for the plain overlap mode —
  // the modeled overlapped throughput (tokens over est compute + est
  // all-to-all − est saved) does not regress the serial modeled throughput.
  // Decode-priority is exempt from the throughput gate by design: it shrinks
  // prefill chunks to protect decode latency, trading modeled throughput
  // (more passes, more fixed overheads) for TTFT under load.
  const int overlap_requests = smoke ? 6 : 16;
  int overlap_failures = 0;
  PrintHeader("Overlapped execution: decode/prefill + all-to-all pipelining "
              "(budget 32, chunk 8, 2 shards; bit-identical, modeled throughput "
              "must not regress serial)");
  std::printf("%12s %9s %12s %12s %11s %14s %10s\n", "mode", "finished", "est serial",
              "est overlap", "saved ms", "modeled tok/s", "identical");
  const ChunkRun serial_run = RunChunkCell(/*seed=*/7, /*budget=*/32, /*chunk_tokens=*/8,
                                           overlap_requests, /*shards=*/2);
  const double serial_total_ms =
      serial_run.report.est_compute_ms + serial_run.report.est_alltoall_ms;
  const double serial_tokens = static_cast<double>(serial_run.report.prefill_rows +
                                                   serial_run.report.decode_rows);
  const double serial_modeled_tps =
      serial_total_ms > 0.0 ? 1000.0 * serial_tokens / serial_total_ms : 0.0;
  cells.Add("overlapped_execution",
            Params("\"mode\": \"serial\", \"est_overlap_saved_ms\": 0.000, "
                   "\"modeled_tokens_per_second\": %.1f", serial_modeled_tps),
            serial_run.report);
  std::printf("%12s %9lld %12.3f %12.3f %11.3f %14.1f %10s\n", "serial",
              static_cast<long long>(serial_run.finished), serial_total_ms, serial_total_ms,
              0.0, serial_modeled_tps, "base");
  struct OverlapMode {
    const char* name;
    serving::ChunkPolicy policy;
    bool gate_throughput;
  };
  for (const OverlapMode& mode :
       {OverlapMode{"overlap", serving::ChunkPolicy::kFixed, true},
        OverlapMode{"overlap+dp", serving::ChunkPolicy::kDecodePriority, false}}) {
    const ChunkRun run = RunChunkCell(/*seed=*/7, /*budget=*/32, /*chunk_tokens=*/8,
                                      overlap_requests, /*shards=*/2, /*overlap=*/true,
                                      mode.policy);
    bool identical = run.finished == overlap_requests &&
                     serial_run.finished == overlap_requests &&
                     run.outputs.size() == serial_run.outputs.size();
    for (size_t i = 0; identical && i < run.outputs.size(); ++i) {
      identical = run.outputs[i] == serial_run.outputs[i];
    }
    const double total_ms = run.report.est_compute_ms + run.report.est_alltoall_ms;
    const double saved_ms = run.report.est_overlap_saved_ms;
    const double overlapped_ms = total_ms - saved_ms;
    const double tokens =
        static_cast<double>(run.report.prefill_rows + run.report.decode_rows);
    const double modeled_tps = overlapped_ms > 0.0 ? 1000.0 * tokens / overlapped_ms : 0.0;
    if (!identical) {
      std::fprintf(stderr, "FAIL: overlap mode '%s' diverged bit-wise from serial\n",
                   mode.name);
      ++overlap_failures;
    }
    if (saved_ms < 0.0) {
      std::fprintf(stderr, "FAIL: overlap mode '%s' reports negative savings (%.3f ms)\n",
                   mode.name, saved_ms);
      ++overlap_failures;
    }
    if (mode.gate_throughput && modeled_tps < serial_modeled_tps) {
      std::fprintf(stderr,
                   "FAIL: overlap mode '%s' modeled throughput regressed serial "
                   "(%.1f vs %.1f tok/s)\n",
                   mode.name, modeled_tps, serial_modeled_tps);
      ++overlap_failures;
    }
    cells.Add("overlapped_execution",
              Params("\"mode\": \"%s\", \"est_overlap_saved_ms\": %.3f, "
                     "\"modeled_tokens_per_second\": %.1f",
                     mode.name, saved_ms, modeled_tps),
              run.report, identical ? 1 : 0);
    std::printf("%12s %9lld %12.3f %12.3f %11.3f %14.1f %10s\n", mode.name,
                static_cast<long long>(run.finished), total_ms, overlapped_ms, saved_ms,
                modeled_tps, identical ? "yes" : "NO");
  }

  // ---- Async serving: open-loop wall-clock Poisson arrivals ----------------
  // Requests arrive via a Poisson process (identical pre-drawn gaps across
  // modes) and are served live: the sync mode steps the engine between
  // arrivals on the client thread, the async modes run an AsyncServer whose
  // driver thread overlaps service with arrival gaps. Wall-clock numbers, so
  // these cells are reported but not gated.
  const int openloop_requests = smoke ? 8 : 20;
  const double mean_gap_ms = 2.0;
  PrintHeader("Async serving: open-loop Poisson arrivals (wall clock, mean gap 2 ms) — "
              "sync serve loop vs async server vs async + decode-priority");
  std::printf("%12s %9s %10s %13s %13s %15s %7s\n", "mode", "finished", "wall ms",
              "p95 TTFT ms", "p95 turn ms", "goodput tok/s", "steps");
  struct AsyncMode {
    const char* name;
    bool async;
    bool overlap;
    serving::ChunkPolicy policy;
  };
  for (const AsyncMode& mode :
       {AsyncMode{"sync", false, false, serving::ChunkPolicy::kFixed},
        AsyncMode{"async", true, true, serving::ChunkPolicy::kFixed},
        AsyncMode{"async+dp", true, true, serving::ChunkPolicy::kDecodePriority}}) {
    const OpenLoopRun run = RunOpenLoopCell(/*seed=*/7, mode.async, mode.overlap,
                                            mode.policy, openloop_requests, mean_gap_ms);
    cells.Add("async_open_loop",
              Params("\"mode\": \"%s\", \"wall_ms\": %.1f, \"goodput_tokens_per_second\": "
                     "%.1f, \"p95_ttft_ms\": %.3f",
                     mode.name, run.wall_ms, run.goodput_tokens_per_s,
                     run.report.p95_ttft_ms),
              run.report);
    std::printf("%12s %9lld %10.1f %13.3f %13.3f %15.1f %7lld\n", mode.name,
                static_cast<long long>(run.finished), run.wall_ms, run.report.p95_ttft_ms,
                run.report.p95_turnaround_ms, run.goodput_tokens_per_s,
                static_cast<long long>(run.report.steps));
  }

  if (!json_path.empty() && !cells.Write(json_path, smoke)) {
    return 2;
  }
  if (chunk_divergences > 0) {
    std::fprintf(stderr,
                 "FAIL: %d chunked-prefill run(s) diverged bit-wise from one-shot prefill\n",
                 chunk_divergences);
  }
  if (divergences > 0) {
    std::fprintf(stderr,
                 "FAIL: %d sharded run(s) diverged bit-wise from the unsharded baseline\n",
                 divergences);
  }
  if (overlap_failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d overlapped-execution gate(s) failed (bit identity, "
                 "non-negative savings, or modeled throughput)\n",
                 overlap_failures);
  }
  return (divergences > 0 || chunk_divergences > 0 || trace_failures > 0 ||
          prefix_failures > 0 || degraded_failures > 0 || overlap_failures > 0)
             ? 1
             : 0;
}
