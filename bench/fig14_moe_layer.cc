// Figure 14: MoE layer speedup over Transformers, with two isolated shared
// experts (left panel) and without shared experts (right panel); 4096
// tokens, model configurations of Table 2.
//
// Paper reference: with shared experts Samoyeds averages 1.46x (peak 1.73x)
// over Transformers and beats MegaBlocks / vLLM-DS by up to 1.66x / 1.53x;
// without shared experts 1.45x average (peak 1.68x). OpenMoE-34B is NS for
// MegaBlocks and vLLM-DS (incompatible activation kernels).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/frameworks/layer_cost.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

void Panel(int shared_experts) {
  std::printf("\nMoE layer, %s (speedup over Transformers; 4096 tokens):\n",
              shared_experts > 0 ? "with 2 shared experts" : "without shared experts");
  std::printf("%-14s %12s %12s %12s %12s\n", "model", "Transformers", "MegaBlocks", "vLLM-DS",
              "Samoyeds");
  for (const auto& model : PaperModels()) {
    const int64_t tokens = 4096;
    const auto counts = UniformTokensPerExpert(model, tokens);
    LayerCostOptions opts;
    opts.shared_experts_override = shared_experts;

    const double base =
        EstimateMoeLayerCost(MoeFramework::kTransformers, model, counts, tokens, opts).total_ms;
    auto cell = [&](MoeFramework fw) {
      if (!FrameworkSupportsModel(fw, model)) {
        return std::string("        NS");
      }
      const double ms = EstimateMoeLayerCost(fw, model, counts, tokens, opts).total_ms;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%9.2fx", base / ms);
      return std::string(buf);
    };
    std::printf("%-14s %9.2fms %12s %12s %12s\n", model.name.c_str(), base,
                cell(MoeFramework::kMegaBlocks).c_str(), cell(MoeFramework::kVllmDs).c_str(),
                cell(MoeFramework::kSamoyeds).c_str());
  }
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 14 — Execution Speedup for the MoE Layer");
  Panel(/*shared_experts=*/2);
  Panel(/*shared_experts=*/0);
  std::printf(
      "\nPaper reference: Samoyeds 1.46x avg (peak 1.73x) over Transformers with\n"
      "shared experts, 1.45x avg (peak 1.68x) without; up to 1.66x over MegaBlocks\n"
      "and 1.53x over vLLM-DS. OpenMoE-34B is NS for MegaBlocks/vLLM-DS.\n");
  return 0;
}
