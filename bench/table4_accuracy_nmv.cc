// Table 4: model quality across Samoyeds sparse configurations (N,M,V) at a
// uniform 75% sparsity. The paper prunes BERT-base/large with WoodFisher
// and reports F1 on SQuAD 1.1; this reproduction trains a compact MLP
// classifier on a synthetic task and reports accuracy retention after
// one-shot pruning + mask-preserving fine-tuning (substitution documented
// in DESIGN.md §1).
//
// Paper reference: all (N,M,V) configurations retain over 99.3% of the
// dense F1 on average (88.83 / 88.48 / 88.57 / 88.60 vs 89.50 dense for
// BERT-base).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/pruning/accuracy_eval.h"

namespace samoyeds {
namespace {

void RunModel(const char* label, const std::vector<int>& dims, uint64_t seed) {
  Rng rng(seed);
  const ClassificationDataset train = ClassificationDataset::Make(rng, 1536, dims.front(), 32, 1.6f);
  Rng test_rng(seed);  // identical clusters, fresh noise
  const ClassificationDataset test = ClassificationDataset::Make(test_rng, 1024, dims.front(), 32, 1.6f);

  std::vector<PruneSpec> specs;
  specs.push_back(PruneSpec{});  // dense
  for (const auto& cfg : {SamoyedsConfig{1, 2, 16}, SamoyedsConfig{1, 2, 32},
                          SamoyedsConfig{4, 8, 32}, SamoyedsConfig{8, 16, 32}}) {
    PruneSpec spec;
    spec.method = PruneMethod::kSamoyeds;
    spec.samoyeds_config = cfg;
    specs.push_back(spec);
  }
  PruneExperimentOptions options;
  options.pretrain_epochs = 30;
  options.finetune_epochs = 10;
  const auto results = RunAccuracyExperiment(rng, dims, train, test, specs, options);

  const double dense_acc = results[0].metric_after_finetune;
  std::printf("%-12s dense=%.2f%%  ", label, 100.0 * dense_acc);
  const char* names[] = {"(1,2,16)", "(1,2,32)", "(4,8,32)", "(8,16,32)"};
  for (size_t i = 1; i < results.size(); ++i) {
    std::printf("%s=%.2f%% (ret %.1f%%)  ", names[i - 1],
                100.0 * results[i].metric_after_finetune,
                100.0 * results[i].metric_after_finetune / dense_acc);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Table 4 — Quality across Samoyeds (N,M,V) configs at 75% sparsity");
  std::printf("Proxy task: 32-way noisy Gaussian-cluster classification; metric = accuracy.\n\n");
  RunModel("proxy-base", {64, 128, 128, 32}, 1234);
  RunModel("proxy-large", {64, 256, 256, 32}, 5678);
  std::printf(
      "\nPaper reference (F1 on SQuAD 1.1): BERT-base 89.50 dense vs 88.83/88.48/\n"
      "88.57/88.60 across configs — >99.3%% retention on average; the claim under\n"
      "test is that retention is high and insensitive to the (N,M,V) choice.\n");
  return 0;
}
