// Figure 13: throughput trend while one of m / k / n grows (others fixed at
// 4096). Paper reference: Samoyeds above all baselines at nearly all sizes
// (up to 2.77x/2.34x/2.58x over VENOM along m/k/n), linear ramp in m and n
// until peak, asymptotic ramp in k, and slight underperformance vs VENOM at
// m or n = 256 (limited parallelism).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/samoyeds_kernel.h"
#include "src/kernels/cusparselt_spmm.h"
#include "src/kernels/dense_gemm.h"
#include "src/kernels/sputnik_spmm.h"
#include "src/kernels/venom_spmm.h"

namespace samoyeds {
namespace {

void Sweep(char dim) {
  std::printf("\nSweep of %c (others = 4096). Simulated TFLOP/s (dense-equivalent):\n", dim);
  std::printf("%7s %9s %9s %9s %9s %9s %12s\n", dim == 'm' ? "m" : dim == 'k' ? "k" : "n",
              "cuBLAS", "cuSpLt", "Sputnik", "VENOM", "Samoyeds", "vs VENOM");
  const SamoyedsConfig fmt{1, 2, 32};
  const VenomConfig venom_fmt{64, 2, 4};
  for (int64_t size = 256; size <= 16384; size *= 2) {
    GemmShape s{4096, 4096, 4096};
    (dim == 'm' ? s.m : dim == 'k' ? s.k : s.n) = size;
    const double cublas = SimTflops(DenseGemmKernel::Analyze(s));
    const double cusp = SimTflops(CusparseltSpmmKernel::Analyze(s));
    const double sputnik = SimTflops(SputnikSpmmKernel::Analyze(s, fmt.density()));
    const double venom = SimTflops(VenomSpmmKernel::Analyze(s, venom_fmt));
    const double samoyeds =
        SimTflops(SamoyedsKernel::Analyze(s, s.n, fmt, SsmmConfig::Default()));
    std::printf("%7lld %9.1f %9.1f %9.1f %9.1f %9.1f %11.2fx\n", static_cast<long long>(size),
                cublas, cusp, sputnik, venom, samoyeds, samoyeds / venom);
  }
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 13 — Throughput Trend with Varying Operator Size");
  Sweep('m');
  Sweep('k');
  Sweep('n');
  std::printf(
      "\nPaper reference: Samoyeds leads at nearly all sizes (up to 2.77x / 2.34x /\n"
      "2.58x over VENOM along m / k / n); ramps linearly in m and n, asymptotically\n"
      "in k; slightly behind VENOM only at m or n = 256 (limited parallelism).\n");
  return 0;
}
