// Figure 19: comparison against the PIT compiler (dynamic-sparsity tile
// compaction, no SpTC use) on the MoE layer across batch sizes and expert
// counts. Paper reference: Samoyeds outperforms PIT by 1.15x to 1.27x
// depending on the configuration.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/frameworks/layer_cost.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

void Row(int num_experts, int64_t batch) {
  MoeModelConfig model;
  model.name = "synthetic";
  model.num_experts = num_experts;
  model.hidden = 4096;
  model.intermediate = 14336;
  model.top_k = 2;
  const int64_t tokens = batch * 1024;
  const auto counts = UniformTokensPerExpert(model, tokens);
  LayerCostOptions opts;
  opts.shared_experts_override = 0;
  const double pit =
      EstimateMoeLayerCost(MoeFramework::kPit, model, counts, tokens, opts).total_ms;
  const double samoyeds =
      EstimateMoeLayerCost(MoeFramework::kSamoyeds, model, counts, tokens, opts).total_ms;
  std::printf("%8d %7lld %11.2fms %11.2fms %9.2fx\n", num_experts,
              static_cast<long long>(batch), pit, samoyeds, pit / samoyeds);
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 19 — Comparison with PIT (MoE layer, seq 1024)");
  std::printf("%8s %7s %13s %13s %10s\n", "experts", "batch", "PIT", "Samoyeds", "speedup");
  for (int experts : {8, 16, 32}) {
    for (int64_t batch : {1, 4, 16}) {
      Row(experts, batch);
    }
  }
  std::printf(
      "\nPaper reference: Samoyeds outperforms PIT by 1.15x-1.27x depending on the\n"
      "configuration (PIT exploits only the activation-side dynamic sparsity and\n"
      "cannot use the SpTC).\n");
  return 0;
}
