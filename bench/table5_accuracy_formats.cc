// Table 5: model quality per sparse format at 75% sparsity. The paper
// prunes Tiny-LLaMA and Qwen2-1.5B and reports GSM8K perplexity; this
// reproduction uses the perplexity proxy (exp of mean cross-entropy) of a
// compact classifier on a synthetic task (substitution documented in
// DESIGN.md §1).
//
// Paper reference (perplexity, lower is better):
//   Tiny-LLaMA: dense 1.72, unstructured 1.94, VENOM 1.95, Samoyeds 1.82
//   Qwen2:      dense 1.92, unstructured 1.96, VENOM 2.26, Samoyeds 2.01
// i.e. Samoyeds lands between dense and the other formats and clearly
// beats VENOM (56% / 73% smaller perplexity increase).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/pruning/accuracy_eval.h"

namespace samoyeds {
namespace {

void RunModel(const char* label, uint64_t seed) {
  Rng rng(seed);
  const int features = 64;
  const ClassificationDataset train = ClassificationDataset::Make(rng, 1536, features, 32, 1.6f);
  Rng test_rng(seed);
  const ClassificationDataset test = ClassificationDataset::Make(test_rng, 1024, features, 32, 1.6f);

  std::vector<PruneSpec> specs(4);
  specs[0].method = PruneMethod::kDense;
  specs[1].method = PruneMethod::kUnstructured;
  specs[1].sparsity = 0.75;
  specs[2].method = PruneMethod::kVenom;
  specs[2].venom_config = VenomConfig{64, 2, 4};
  specs[3].method = PruneMethod::kSamoyeds;
  specs[3].samoyeds_config = SamoyedsConfig{1, 2, 16};

  PruneExperimentOptions options;
  options.pretrain_epochs = 30;
  options.finetune_epochs = 10;
  const auto results = RunPerplexityExperiment(rng, {features, 256, 256, 32}, train, test, specs,
                                               options);
  std::printf("%-12s", label);
  for (const auto& r : results) {
    std::printf("  %s=%.3f", PruneMethodName(r.spec.method), r.metric_after_finetune);
  }
  std::printf("\n    perplexity increase over dense:");
  for (size_t i = 1; i < results.size(); ++i) {
    std::printf("  %s=+%.3f", PruneMethodName(results[i].spec.method),
                results[i].metric_after_finetune - results[0].metric_after_finetune);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Table 5 — Perplexity proxy per sparse format (75% sparsity)");
  std::printf("Proxy task: 32-way noisy classification; metric = exp(mean cross-entropy).\n\n");
  RunModel("proxy-llama", 24680);
  RunModel("proxy-qwen2", 13579);
  std::printf(
      "\nPaper reference: Samoyeds' perplexity increase is far smaller than VENOM's\n"
      "(+0.10 vs +0.23 on Tiny-LLaMA; +0.09 vs +0.34 on Qwen2) and close to\n"
      "unstructured pruning. The claim under test: finer sub-row granularity\n"
      "preserves quality better than VENOM's column-vector granularity.\n");
  return 0;
}
