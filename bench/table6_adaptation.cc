// Table 6: performance portability under the suggested per-device
// adaptations. On the A100 (more SMs, smaller L2) the suggestion is a
// smaller tile size; on the RTX 3090 (slower tensor cores, more bandwidth)
// a deeper cp.async pipeline. The table reports the share of synthetic
// cases that improve / stay / degrade after the adaptation.
//
// Paper reference: tile-size reduction improves 55.9% of cases on the A100
// (5.5% unchanged, 38.6% degraded); extra pipeline stages improve 39.1% on
// the 3090 (49.6% unchanged, 11.3% degraded).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/samoyeds_kernel.h"

namespace samoyeds {
namespace {

std::vector<GemmShape> SyntheticSet() {
  std::vector<GemmShape> shapes;
  const int64_t dims[] = {256, 512, 1024, 2048, 4096, 8192, 16384};
  for (int64_t m : dims) {
    for (int64_t k : dims) {
      for (int64_t n : dims) {
        const double bytes = 2.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                                    static_cast<double>(m) * n);
        if (bytes <= 2.5e9 && 2.0 * m * k * n <= 1.6e12) {
          shapes.push_back({m, k, n});
        }
      }
    }
  }
  return shapes;
}

void Evaluate(const char* target_name, DeviceModel device_model, const char* adaptation,
              const SsmmConfig& adapted) {
  const DeviceSpec& device = GetDevice(device_model);
  const SamoyedsConfig fmt{1, 2, 32};
  int improved = 0;
  int unchanged = 0;
  int degraded = 0;
  const auto shapes = SyntheticSet();
  for (const auto& shape : shapes) {
    const double base =
        SimMs(SamoyedsKernel::Analyze(shape, shape.n, fmt, SsmmConfig::Default(), device),
              device);
    const double tuned = SimMs(SamoyedsKernel::Analyze(shape, shape.n, fmt, adapted, device),
                               device);
    const double delta = (base - tuned) / base;
    if (delta > 0.01) {
      ++improved;
    } else if (delta < -0.01) {
      ++degraded;
    } else {
      ++unchanged;
    }
  }
  const double total = static_cast<double>(shapes.size());
  std::printf("%-10s %-22s %10.1f%% %10.1f%% %10.1f%%\n", target_name, adaptation,
              100.0 * improved / total, 100.0 * unchanged / total, 100.0 * degraded / total);
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Table 6 — Performance Portability under Suggested Adaptations");
  std::printf("%-10s %-22s %11s %11s %11s\n", "target", "adaptation", "improved", "unchanged",
              "degraded");
  Evaluate("A100", DeviceModel::kA100_40G, "tile size down", SsmmConfig::SmallTile());
  Evaluate("3090", DeviceModel::kRtx3090, "stage num up", SsmmConfig::DeepPipeline());
  std::printf(
      "\nPaper reference: A100 + smaller tiles: 55.9%% improved / 5.5%% unchanged /\n"
      "38.6%% degraded; 3090 + more stages: 39.1%% / 49.6%% / 11.3%%.\n");
  return 0;
}
