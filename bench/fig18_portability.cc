// Figure 18: performance portability under direct porting. The 4070S-tuned
// Samoyeds and VENOM kernels run unchanged on the RTX 3090, RTX 4090 and
// A100; the metric is how much of the native relative speedup over
// cuSPARSELt (which re-tunes per device) each kernel retains.
//
// Paper reference: Samoyeds keeps 65.2% of its relative speedup on average
// (41.0% worst case); VENOM loses ~95% of its speedup on the A100 due to
// memory-compute imbalance.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/samoyeds_kernel.h"
#include "src/kernels/cusparselt_spmm.h"
#include "src/kernels/venom_spmm.h"

namespace samoyeds {
namespace {

std::vector<GemmShape> SyntheticSubset() {
  std::vector<GemmShape> shapes;
  const int64_t dims[] = {512, 1024, 2048, 4096, 8192};
  for (int64_t m : dims) {
    for (int64_t k : dims) {
      for (int64_t n : dims) {
        if (2.0 * m * k * n <= 1.0e12) {
          shapes.push_back({m, k, n});
        }
      }
    }
  }
  return shapes;
}

// Relative speedup of a kernel over cuSPARSELt on one device.
struct RelativeSpeedups {
  double samoyeds = 0.0;
  double venom = 0.0;
};

RelativeSpeedups MeasureOn(DeviceModel device_model, const std::vector<GemmShape>& shapes) {
  const DeviceSpec& device = GetDevice(device_model);
  std::vector<double> s_ratios, v_ratios;
  for (const auto& shape : shapes) {
    const double cusp = SimMs(CusparseltSpmmKernel::Analyze(shape), device);
    const double samoyeds = SimMs(
        SamoyedsKernel::Analyze(shape, shape.n, SamoyedsConfig{1, 2, 32}, SsmmConfig::Default(),
                                device),
        device);
    const double venom = SimMs(VenomSpmmKernel::Analyze(shape, VenomConfig{64, 2, 4}, device),
                               device);
    s_ratios.push_back(cusp / samoyeds);
    v_ratios.push_back(cusp / venom);
  }
  return {GeoMean(s_ratios), GeoMean(v_ratios)};
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 18 — Performance with Direct Porting (no re-tuning)");
  const auto shapes = SyntheticSubset();
  const RelativeSpeedups native = MeasureOn(DeviceModel::kRtx4070Super, shapes);
  std::printf("Synthetic subset: %zu problem sizes. Relative speedup over cuSPARSELt:\n\n",
              shapes.size());
  std::printf("%-22s %10s %10s %12s %12s\n", "device", "Samoyeds", "VENOM", "S retained",
              "V retained");
  for (DeviceModel dm : {DeviceModel::kRtx4070Super, DeviceModel::kRtx3070,
                         DeviceModel::kRtx3090, DeviceModel::kRtx4090,
                         DeviceModel::kA100_40G}) {
    const RelativeSpeedups r = MeasureOn(dm, shapes);
    // "Retained" = fraction of the native-excess speedup that survives.
    auto retained = [](double now, double was) {
      return was <= 1.0 ? 100.0 : 100.0 * std::max(0.0, now - 1.0) / (was - 1.0);
    };
    std::printf("%-22s %9.2fx %9.2fx %11.1f%% %11.1f%%\n", GetDevice(dm).name.c_str(),
                r.samoyeds, r.venom, retained(r.samoyeds, native.samoyeds),
                retained(r.venom, native.venom));
  }
  std::printf(
      "\nPaper reference: Samoyeds retains 65.2%% of its relative speedup on average\n"
      "(41.0%% worst case); VENOM loses ~95%% on the A100.\n");
  return 0;
}
