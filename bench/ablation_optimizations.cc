// Ablation: each kernel-level optimization of §4 toggled off individually
// (the cumulative view is Fig. 17 / bench/fig17_breakdown; this bench
// isolates per-optimization contributions at the kernel level).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/samoyeds_kernel.h"

namespace samoyeds {
namespace {

double Ms(const GemmShape& shape, int64_t selected, const SsmmConfig& cfg) {
  return SimMs(SamoyedsKernel::Analyze(shape, selected, SamoyedsConfig{1, 2, 32}, cfg));
}

void Row(const char* label, const GemmShape& shape, int64_t selected) {
  const SsmmConfig base;
  const double full = Ms(shape, selected, base);
  auto without = [&](auto mutate) {
    SsmmConfig c = base;
    mutate(c);
    return Ms(shape, selected, c) / full;
  };
  std::printf("%-26s %9.3f %10.2fx %10.2fx %10.2fx %10.2fx %10.2fx\n", label, full,
              without([](SsmmConfig& c) { c.input_selection = false; }),
              without([](SsmmConfig& c) { c.data_stationary = false; }),
              without([](SsmmConfig& c) { c.packed_metadata = false; }),
              without([](SsmmConfig& c) { c.compressed_output = false; }),
              without([](SsmmConfig& c) { c.permuted_smem = false; }));
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Ablation — per-optimization slowdown when disabled (kernel level)");
  std::printf("%-26s %9s %11s %11s %11s %11s %11s\n", "problem", "full(ms)", "-SEL(I)",
              "-station(S)", "-packing", "-cmpr.out", "-perm.smem");
  Row("Mixtral gate, 1/8 tokens", {14336, 4096, 4096}, 1024);
  Row("Mixtral gate, all tokens", {14336, 4096, 4096}, 4096);
  Row("Qwen2 gate, 1/15 tokens", {2048, 1408, 4096}, 273);
  Row("square 4096^3, half sel", {4096, 4096, 4096}, 2048);
  Row("small 512^3, half sel", {512, 512, 512}, 256);
  std::printf(
      "\nColumns are slowdown factors (>1 means the optimization matters for that\n"
      "problem). SEL dominates when few tokens are selected; the compressed output\n"
      "matters at high output sparsity; metadata packing and SMEM permutation are\n"
      "steady few-percent effects, data stationary grows with k/V window count.\n");
  return 0;
}
