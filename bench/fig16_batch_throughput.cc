// Figure 16: decoder-layer throughput (tokens/s) under growing batch size.
// Sequence length 4096 for the small-expert models (Qwen2-MoE,
// DeepSeek-MoE), 1024 for the rest. Frameworks stop at their maximum batch
// (memory model); OpenMoE is NS for MegaBlocks/vLLM-DS.
//
// Paper reference: Samoyeds' throughput climbs with batch size before
// plateauing (parallelism ramp, §6.1.2) and beats the best baseline by up
// to 1.31x / 2.23x / 1.58x / 1.09x / 1.04x / 1.11x per model.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/frameworks/layer_cost.h"
#include "src/moe/memory_model.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

void ModelSweep(const MoeModelConfig& model) {
  const int64_t seq = model.num_experts >= 32 && model.intermediate <= 4096 ? 4096 : 1024;
  std::printf("\n%s (seq %lld per batch). Throughput in Ktokens/s:\n", model.name.c_str(),
              static_cast<long long>(seq));
  std::printf("%7s %14s %14s %14s %14s\n", "batch", "Transformers", "MegaBlocks", "vLLM-DS",
              "Samoyeds");
  LayerCostOptions opts;
  opts.shared_experts_override = 0;
  opts.seq_len = seq;
  const MoeFramework fws[] = {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                              MoeFramework::kVllmDs, MoeFramework::kSamoyeds};
  for (int64_t batch = 1; batch <= 64; batch *= 2) {
    std::printf("%7lld", static_cast<long long>(batch));
    const int64_t tokens = seq * batch;
    const auto counts = UniformTokensPerExpert(model, tokens);
    for (MoeFramework fw : fws) {
      if (!FrameworkSupportsModel(fw, model)) {
        std::printf(" %14s", "NS");
        continue;
      }
      const auto fp = EstimateFootprint(model, fw, SamoyedsConfig{1, 2, 32}, DefaultDevice());
      if (fp.MaxBatch(seq) < batch) {
        std::printf(" %14s", "OOM");
        continue;
      }
      const double ms = EstimateDecoderLayerCost(fw, model, counts, tokens, opts).total_ms;
      std::printf(" %14.1f", static_cast<double>(tokens) / ms);  // tokens/ms = Ktokens/s
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 16 — Throughput under Different Batch Sizes");
  for (const auto& model : PaperModels()) {
    ModelSweep(model);
  }
  std::printf(
      "\nPaper reference: Samoyeds' throughput grows with batch before a stable\n"
      "peak; baselines fluctuate little; per-model peak advantage over the best\n"
      "baseline: 1.31x, 2.23x, 1.58x, 1.09x, 1.04x, 1.11x.\n");
  return 0;
}
