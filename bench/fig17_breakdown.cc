// Figure 17: breakdown analysis of the Samoyeds optimizations. Starting
// from the Vanilla Transformers flow, weight sparsity (W), input sparsity
// (I), layout/transpose fusion (T) and data stationary (S) are enabled
// cumulatively.
//
// Paper reference: +W averages 1.27x over Vanilla (peak 1.54x); +WI 1.39x
// average (up to 1.23x over +W, biggest for many-expert models); +WIT adds
// up to 1.08x on average; +WITS adds the final data-stationary gain.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/frameworks/layer_cost.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

void Row(const MoeModelConfig& model) {
  const int64_t tokens = 4096;
  const auto counts = UniformTokensPerExpert(model, tokens);
  LayerCostOptions opts;
  opts.shared_experts_override = 0;

  const double vanilla =
      EstimateMoeLayerCost(MoeFramework::kTransformers, model, counts, tokens, opts).total_ms;
  auto speedup = [&](SamoyedsVariant v) {
    opts.variant = v;
    return vanilla /
           EstimateMoeLayerCost(MoeFramework::kSamoyeds, model, counts, tokens, opts).total_ms;
  };
  std::printf("%-14s %9.2fms %8.2fx %8.2fx %8.2fx %8.2fx\n", model.name.c_str(), vanilla,
              speedup(SamoyedsVariant::kW), speedup(SamoyedsVariant::kWI),
              speedup(SamoyedsVariant::kWIT), speedup(SamoyedsVariant::kFull));
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 17 — Breakdown Analysis (speedup over Vanilla Transformers)");
  std::printf("%-14s %11s %9s %9s %9s %9s\n", "model", "Vanilla", "+W", "+WI", "+WIT", "+WITS");
  for (const auto& model : PaperModels()) {
    Row(model);
  }
  std::printf(
      "\nPaper reference: +W 1.27x avg (peak 1.54x); +WI 1.39x avg; +WIT up to\n"
      "1.08x further; +WITS completes the stack. Many-expert models (Qwen2,\n"
      "DeepSeek) gain the most from the I step.\n");
  return 0;
}
