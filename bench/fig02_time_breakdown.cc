// Figure 2: execution-time breakdown of a Transformers decoder layer, with
// and without Flash-Attention. Paper reference: the MoE layer takes over
// half the time in most models, and over 80% once Flash-Attention removes
// the attention bottleneck.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/frameworks/layer_cost.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

void Panel(bool flash) {
  std::printf("\n%s Flash-Attention:\n", flash ? "With" : "Without");
  std::printf("%-14s %10s %10s %10s %8s\n", "model", "attention", "MoE", "other", "MoE %");
  for (const auto& model : PaperModels()) {
    const int64_t tokens = 4096;
    const auto counts = UniformTokensPerExpert(model, tokens);
    LayerCostOptions opts;
    opts.shared_experts_override = 0;
    opts.flash_attention = flash;
    opts.seq_len = tokens;
    const DecoderLayerCost cost =
        EstimateDecoderLayerCost(MoeFramework::kTransformers, model, counts, tokens, opts);
    std::printf("%-14s %8.2fms %8.2fms %8.2fms %7.1f%%\n", model.name.c_str(),
                cost.attention_ms, cost.moe_ms, cost.norm_ms,
                100.0 * cost.moe_ms / cost.total_ms);
  }
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 2 — Time Breakdown of MoE Models (Transformers decoder layer)");
  Panel(/*flash=*/false);
  Panel(/*flash=*/true);
  std::printf(
      "\nPaper reference: MoE layer > 50%% of decoder time in most models without\n"
      "Flash-Attention, > 80%% with Flash-Attention enabled.\n");
  return 0;
}
