// Shared helpers for the benchmark harnesses: simulated-time wrappers and
// console table formatting. Every bench prints the rows/series of the paper
// artifact it regenerates (see DESIGN.md §4 for the experiment index).

#ifndef SAMOYEDS_BENCH_BENCH_UTIL_H_
#define SAMOYEDS_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/kernels/kernel_report.h"
#include "src/simgpu/device_spec.h"
#include "src/simgpu/timing_model.h"

namespace samoyeds {

inline double SimMs(const KernelProfile& profile, const DeviceSpec& device) {
  return TimingModel(device).Estimate(profile.traffic).total_ms;
}

inline double SimMs(const KernelProfile& profile) { return SimMs(profile, DefaultDevice()); }

inline double SimTflops(const KernelProfile& profile, const DeviceSpec& device) {
  return TimingModel(device).ThroughputTflops(profile.useful_flops, profile.traffic);
}

inline double SimTflops(const KernelProfile& profile) {
  return SimTflops(profile, DefaultDevice());
}

inline double GeoMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

inline double MaxOf(const std::vector<double>& values) {
  double best = 0.0;
  for (double v : values) {
    best = std::max(best, v);
  }
  return best;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace samoyeds

#endif  // SAMOYEDS_BENCH_BENCH_UTIL_H_
