// Extension bench (beyond the paper's prefill evaluation): autoregressive
// decode-step latency per framework. With one token per sequence the MoE
// layer is weight-bandwidth-bound, so Samoyeds' ~3.5x smaller expert
// weights translate into decode latency directly — the regime the paper's
// memory-efficiency results (Table 3) imply but do not time.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/frameworks/layer_cost.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

void ModelSweep(const MoeModelConfig& model) {
  std::printf("\n%s — decode step latency (ms), KV length 2048:\n", model.name.c_str());
  std::printf("%7s %14s %14s %14s %14s\n", "batch", "Transformers", "MegaBlocks", "vLLM-DS",
              "Samoyeds");
  LayerCostOptions opts;
  opts.shared_experts_override = 0;
  for (int64_t batch : {1, 8, 32, 128}) {
    std::printf("%7lld", static_cast<long long>(batch));
    for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                            MoeFramework::kVllmDs, MoeFramework::kSamoyeds}) {
      if (!FrameworkSupportsModel(fw, model)) {
        std::printf(" %14s", "NS");
        continue;
      }
      std::printf(" %14.3f", EstimateDecodeStepCost(fw, model, batch, 2048, opts).total_ms);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Extension — Decode-phase (autoregressive) step latency");
  for (const auto& model : PaperModels()) {
    ModelSweep(model);
  }
  std::printf(
      "\nNo paper counterpart: this extends the evaluation to the decode phase,\n"
      "where expert weights are streamed per step and the Samoyeds format's\n"
      "footprint advantage becomes a latency advantage.\n");
  return 0;
}
