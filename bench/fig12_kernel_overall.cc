// Figure 12: overall kernel performance on the synthetic benchmark
// (238 sizes, m/k/n in 256..16384) and the realistic benchmark (expert GEMM
// shapes of the Table 2 models, CFG#1..CFG#5).
//
// Reports simulated throughput per kernel and Samoyeds' speedup over each
// baseline. Paper reference points: synthetic speedup up to 1.99x over
// VENOM, 5.44x over cuBLAS, 3.18x over cuSPARSELt, 18.76x over Sputnik;
// realistic average 2.33x over VENOM, 3.95x/4.29x over
// cuBLAS/cuSPARSELt, 33.02x over Sputnik.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/samoyeds_kernel.h"
#include "src/kernels/cusparselt_spmm.h"
#include "src/kernels/dense_gemm.h"
#include "src/kernels/sputnik_spmm.h"
#include "src/kernels/venom_spmm.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

struct CaseResult {
  double cublas, cusparselt, sputnik, venom, samoyeds;  // simulated ms
};

CaseResult RunCase(const GemmShape& shape) {
  const SamoyedsConfig fmt{1, 2, 32};       // 75% sparsity
  const VenomConfig venom_fmt{64, 2, 4};    // 75% sparsity
  CaseResult r;
  r.cublas = SimMs(DenseGemmKernel::Analyze(shape));
  r.cusparselt = SimMs(CusparseltSpmmKernel::Analyze(shape));
  r.sputnik = SimMs(SputnikSpmmKernel::Analyze(shape, fmt.density()));
  r.venom = SimMs(VenomSpmmKernel::Analyze(shape, venom_fmt));
  r.samoyeds = SimMs(SamoyedsKernel::Analyze(shape, shape.n, fmt, SsmmConfig::Default()));
  return r;
}

// The synthetic set: the grid {256..16384}^3 filtered to problems whose
// operands fit a 12 GB card alongside workspace — 238 cases, matching the
// paper's count.
std::vector<GemmShape> SyntheticSet() {
  const int64_t dims[] = {256, 512, 1024, 2048, 4096, 8192, 16384};
  std::vector<GemmShape> shapes;
  for (int64_t m : dims) {
    for (int64_t k : dims) {
      for (int64_t n : dims) {
        const double bytes = 2.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                                    static_cast<double>(m) * n);
        const double work = 2.0 * m * k * n;
        if (bytes <= 2.5e9 && work <= 1.6e12) {
          shapes.push_back({m, k, n});
        }
      }
    }
  }
  return shapes;
}

void Summarize(const char* label, const std::vector<GemmShape>& shapes) {
  std::vector<double> vs_cublas, vs_cusparselt, vs_sputnik, vs_venom;
  for (const auto& s : shapes) {
    const CaseResult r = RunCase(s);
    vs_cublas.push_back(r.cublas / r.samoyeds);
    vs_cusparselt.push_back(r.cusparselt / r.samoyeds);
    vs_sputnik.push_back(r.sputnik / r.samoyeds);
    vs_venom.push_back(r.venom / r.samoyeds);
  }
  std::printf("%s (%zu cases)\n", label, shapes.size());
  std::printf("  Samoyeds speedup over:   geomean      max\n");
  std::printf("    cuBLAS-like dense     %8.2fx %8.2fx\n", GeoMean(vs_cublas), MaxOf(vs_cublas));
  std::printf("    cuSPARSELt-like 2:4   %8.2fx %8.2fx\n", GeoMean(vs_cusparselt),
              MaxOf(vs_cusparselt));
  std::printf("    Sputnik-like CSR      %8.2fx %8.2fx\n", GeoMean(vs_sputnik),
              MaxOf(vs_sputnik));
  std::printf("    VENOM-like V:N:M      %8.2fx %8.2fx\n", GeoMean(vs_venom), MaxOf(vs_venom));
}

void RunRealistic() {
  PrintRule();
  std::printf("Realistic benchmark (expert projection shapes, 4096 tokens)\n");
  std::printf("%-14s %-7s %22s %9s %9s %9s %9s %9s\n", "model", "cfg", "m x k x n (gate proj)",
              "cuBLAS", "cuSpLt", "Sputnik", "VENOM", "Samoyeds");
  std::vector<GemmShape> shapes;
  for (const auto& model : PaperModels()) {
    const GemmShape shape{model.intermediate, model.hidden, 4096};
    shapes.push_back(shape);
    const CaseResult r = RunCase(shape);
    std::printf("%-14s %-7s %6lld x %5lld x %5lld %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms\n",
                model.name.c_str(), model.cfg_group.c_str(), static_cast<long long>(shape.m),
                static_cast<long long>(shape.k), static_cast<long long>(shape.n), r.cublas,
                r.cusparselt, r.sputnik, r.venom, r.samoyeds);
  }
  PrintRule();
  Summarize("Realistic summary", shapes);
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 12 — Kernel Performance, Synthetic + Realistic Benchmarks");
  const auto synthetic = SyntheticSet();
  Summarize("Synthetic benchmark", synthetic);
  RunRealistic();
  std::printf(
      "\nPaper reference: synthetic up to 1.99x over VENOM, 5.44x/3.18x/18.76x over\n"
      "cuBLAS/cuSPARSELt/Sputnik; realistic avg 2.33x over VENOM (peak 2.49x),\n"
      "3.95x/4.29x over cuBLAS/cuSPARSELt, 33.02x over Sputnik.\n");
  return 0;
}
