// Figure 11(b): gain of the compressed output layout as the input (token)
// sparsity grows. In an E-expert top-k model the per-expert intermediate is
// row-sparse at ratio 1 - k/E; the compressed layout skips the zero
// transfers. Paper reference: ~1.05x speedup for low-sparsity
// configurations and up to 2.66x for high-sparsity (many-expert) ones.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/samoyeds_kernel.h"

namespace samoyeds {
namespace {

void Row(int num_experts, int top_k) {
  const int64_t tokens = 4096;
  const int64_t selected = tokens * top_k / num_experts;  // tokens per expert
  const GemmShape shape{14336, 4096, tokens};  // intermediate-sized output (gate/up proj)
  const SamoyedsConfig fmt{1, 2, 32};
  SsmmConfig compressed;
  SsmmConfig padded = compressed;
  padded.compressed_output = false;
  const double t_compressed = SimMs(SamoyedsKernel::Analyze(shape, selected, fmt, compressed));
  const double t_padded = SimMs(SamoyedsKernel::Analyze(shape, selected, fmt, padded));
  std::printf("%8d %6d %10.1f%% %12.3fms %12.3fms %9.2fx\n", num_experts, top_k,
              100.0 * (1.0 - static_cast<double>(top_k) / num_experts), t_padded, t_compressed,
              t_padded / t_compressed);
}

}  // namespace
}  // namespace samoyeds

int main() {
  using namespace samoyeds;
  PrintHeader("Figure 11(b) — Kernel Gain from the Compressed Output Layout");
  std::printf("%8s %6s %11s %14s %14s %10s\n", "experts", "top-k", "out sparsity",
              "padded out", "compressed", "speedup");
  Row(4, 2);
  Row(8, 2);
  Row(16, 2);
  Row(32, 2);
  Row(60, 4);
  Row(64, 6);
  Row(64, 2);
  std::printf(
      "\nPaper reference: ~1.05x average for low input sparsity, up to 2.66x for\n"
      "high-sparsity (many-expert) configurations.\n");
  return 0;
}
