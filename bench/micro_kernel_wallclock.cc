// Wall-clock micro-benchmarks (google-benchmark) of the functional CPU
// substrate: the SpTC fragment op, format encoders, and the Samoyeds SSMM
// execution path. These measure the *simulator's* own speed — useful for
// keeping the test/bench suite fast — not GPU performance (which is the
// domain of the fig*/table* harnesses).

#include <benchmark/benchmark.h>

#include "src/core/samoyeds_kernel.h"
#include "src/formats/nm24.h"
#include "src/formats/samoyeds_format.h"
#include "src/formats/venom.h"
#include "src/sptc/mma_sp.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace {

void BM_MmaSp(benchmark::State& state) {
  Rng rng(1);
  SparseAFragment a;
  for (int i = 0; i < kMmaM * kMmaKCompressed; ++i) {
    a.values[static_cast<size_t>(i)] = rng.NextGaussian();
    a.meta[static_cast<size_t>(i)] = static_cast<uint8_t>(i % 2 == 0 ? 0 : 2);
  }
  DenseBFragment b;
  for (auto& v : b.values) {
    v = rng.NextGaussian();
  }
  Accumulator c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MmaSp(a, b, c));
  }
  state.SetItemsProcessed(state.iterations() * kMmaM * kMmaN * kMmaK);
}
BENCHMARK(BM_MmaSp);

void BM_SamoyedsEncode(benchmark::State& state) {
  Rng rng(2);
  const int64_t dim = state.range(0);
  const MatrixF dense = rng.GaussianMatrix(dim, dim);
  const SamoyedsConfig cfg{1, 2, 32};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SamoyedsMatrix::Encode(dense, cfg));
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_SamoyedsEncode)->Arg(128)->Arg(512);

void BM_TwoFourEncode(benchmark::State& state) {
  Rng rng(3);
  const int64_t dim = state.range(0);
  const MatrixF dense = rng.GaussianMatrix(dim, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoFourMatrix::Encode(dense));
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_TwoFourEncode)->Arg(128)->Arg(512);

void BM_VenomEncode(benchmark::State& state) {
  Rng rng(4);
  const int64_t dim = state.range(0);
  const MatrixF dense = rng.GaussianMatrix(dim, dim);
  const VenomConfig cfg{64, 2, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(VenomMatrix::Encode(dense, cfg));
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_VenomEncode)->Arg(128)->Arg(512);

void BM_SamoyedsKernelRun(benchmark::State& state) {
  Rng rng(5);
  const int64_t dim = state.range(0);
  const MatrixF w = rng.GaussianMatrix(dim, dim);
  const MatrixF b = rng.GaussianMatrix(dim, dim / 2);
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, SamoyedsConfig{1, 2, 32});
  const Selection sel = Selection::All(dim / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SamoyedsKernel::Run(enc, b, sel));
  }
  state.SetItemsProcessed(state.iterations() * dim * dim * (dim / 2));
}
BENCHMARK(BM_SamoyedsKernelRun)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmRef(benchmark::State& state) {
  Rng rng(6);
  const int64_t dim = state.range(0);
  const MatrixF a = rng.GaussianMatrix(dim, dim);
  const MatrixF b = rng.GaussianMatrix(dim, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GemmRef(a, b));
  }
  state.SetItemsProcessed(state.iterations() * dim * dim * dim);
}
BENCHMARK(BM_GemmRef)->Arg(128)->Arg(256);

}  // namespace
}  // namespace samoyeds

BENCHMARK_MAIN();
