// Wall-clock micro-benchmarks of the functional CPU substrate: the SpTC
// fragment op, the SSMM execution paths (fragment-model reference vs the
// packed-panel optimized kernel), the workspace-driven expert/MoE forwards,
// and a steady-state serving decode step. These measure the *simulator's*
// own speed — not GPU performance (the domain of the fig*/table* harnesses).
//
// Self-contained harness (no google-benchmark) so it can also act as a CI
// gate:
//   * a global allocation counter (operator new override) reports
//     allocations per iteration for every benchmark, and the run FAILS if
//     the workspace-enabled MoE forward allocates in steady state;
//   * the run FAILS if the optimized kernel is not bit-identical to the
//     fragment-model reference;
//   * --json=PATH emits machine-readable results (tokens/s, GFLOP/s, alloc
//     counts) so the perf trajectory is tracked from PR 3 onward;
//   * --smoke shrinks every measurement for fast CI sanity runs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "src/core/samoyeds_kernel.h"
#include "src/core/ssmm_workspace.h"
#include "src/moe/decoder_layer.h"
#include "src/moe/moe_layer.h"
#include "src/moe/router.h"
#include "src/serving/engine.h"
#include "src/serving/expert_pool.h"
#include "src/sptc/mma_sp.h"
#include "src/tensor/rng.h"

// ---- global allocation counter ---------------------------------------------
// Every usual allocation form is replaced as a set (plain, nothrow, and
// aligned new; all delete flavors) so no allocation can arrive from a
// default operator new and be released into std::free — and none escapes
// the counter. (libstdc++ reaches the nothrow form from std::stable_sort's
// temporary-buffer acquisition, for example.)

static std::atomic<int64_t> g_allocs{0};

namespace {

void* CountedAlloc(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // Extended-alignment news only fire for align > default new alignment, so
  // align satisfies posix_memalign's power-of-two, >= sizeof(void*) rules.
  void* p = nullptr;
  if (posix_memalign(&p, align, size ? size : align) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace samoyeds {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchResult {
  std::string name;
  int64_t iters = 0;
  double ms_per_iter = 0.0;
  double tokens_per_s = 0.0;  // 0 when the benchmark has no token dimension
  double gflops = 0.0;        // useful-FLOP rate; 0 when not meaningful
  double allocs_per_iter = 0.0;
};

// Runs fn() for ~min_seconds after two warm-up calls; `tokens` and `flops`
// are per-iteration counts used for the derived rates.
template <typename Fn>
BenchResult Measure(const std::string& name, double min_seconds, int64_t tokens, double flops,
                    Fn&& fn) {
  fn();
  fn();  // warm-up: buffers reach steady-state shape, caches warm
  const int64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  int64_t iters = 0;
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed < min_seconds);
  const int64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;

  BenchResult r;
  r.name = name;
  r.iters = iters;
  r.ms_per_iter = elapsed * 1e3 / static_cast<double>(iters);
  r.tokens_per_s = tokens > 0 ? static_cast<double>(tokens * iters) / elapsed : 0.0;
  r.gflops = flops > 0.0 ? flops * static_cast<double>(iters) / elapsed * 1e-9 : 0.0;
  r.allocs_per_iter = static_cast<double>(allocs) / static_cast<double>(iters);
  return r;
}

// ULP distance between an fp32 result and the fp64 oracle value, measured
// after rounding the oracle to fp32 (ordered-integer trick: monotone map of
// the IEEE bit patterns, so adjacent floats differ by 1).
int64_t UlpDistance(float a, float b) {
  if (a == b) {
    return 0;  // covers +0 vs -0
  }
  auto ordered = [](float f) {
    int32_t i;
    std::memcpy(&i, &f, sizeof(i));
    return i < 0 ? static_cast<int64_t>(INT32_MIN) - i : static_cast<int64_t>(i);
  };
  return std::llabs(ordered(a) - ordered(b));
}

int64_t MaxUlpVsFp64(const MatrixF& out, const std::vector<double>& oracle) {
  int64_t max_ulp = 0;
  const float* p = out.data();
  for (size_t i = 0; i < oracle.size(); ++i) {
    max_ulp = std::max(max_ulp, UlpDistance(p[i], static_cast<float>(oracle[i])));
  }
  return max_ulp;
}

// Fused accumulation keeps the scalar association, so divergence from the
// fp64 oracle is fp32 rounding noise over ~k/2 summands — but cancellation
// among Gaussian terms leaves some outputs near zero, where a few absolute
// ULPs of noise is a triple-digit ULP distance (measured: ~128 at this
// shape, identically for scalar and SIMD since bf16 products are exact in
// fp32). The bound gives that headroom while still catching real bugs —
// a mis-gathered column or wrong output row lands millions of ULPs out.
constexpr int64_t kMaxUlpVsFp64 = 512;

void PrintResult(const BenchResult& r) {
  std::printf("%-28s %10.4f ms/iter %12.0f tokens/s %8.3f GFLOP/s %10.1f allocs/iter\n",
              r.name.c_str(), r.ms_per_iter, r.tokens_per_s, r.gflops, r.allocs_per_iter);
}

void AppendJson(std::string& out, const BenchResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"iters\": %lld, \"ms_per_iter\": %.6f, "
                "\"tokens_per_s\": %.1f, \"gflops\": %.4f, \"allocs_per_iter\": %.2f}",
                r.name.c_str(), static_cast<long long>(r.iters), r.ms_per_iter, r.tokens_per_s,
                r.gflops, r.allocs_per_iter);
  if (!out.empty()) {
    out += ",\n";
  }
  out += buf;
}

int RunBench(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  double seconds = 0.15;
  int threads = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::atof(arg.c_str() + std::strlen("--seconds="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + std::strlen("--threads="));
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_kernel_wallclock [--smoke] [--json=PATH] "
                   "[--seconds=S] [--threads=N]\n");
      return 2;
    }
  }
  if (smoke) {
    seconds = 0.01;
  }

  // The default MoE shape the acceptance numbers quote: a routed expert of
  // the bench model (hidden 128, intermediate 256), batch of 64 tokens,
  // top-2 of 8 experts => ~16 tokens per expert per projection.
  const int64_t hidden = 128;
  const int64_t inter = 256;
  const int64_t tokens = 64;
  const int num_experts = 8;
  const int top_k = 2;
  const SamoyedsConfig fmt{1, 2, 32};

  Rng rng(7);
  std::vector<BenchResult> results;
  bool failed = false;

  // --- SpTC fragment op ---------------------------------------------------
  {
    SparseAFragment a;
    for (int i = 0; i < kMmaM * kMmaKCompressed; ++i) {
      a.values[static_cast<size_t>(i)] = rng.NextGaussian();
      a.meta[static_cast<size_t>(i)] = static_cast<uint8_t>(i % 2 == 0 ? 0 : 2);
    }
    DenseBFragment b;
    for (auto& v : b.values) {
      v = rng.NextGaussian();
    }
    Accumulator c;
    results.push_back(Measure("mma_sp_fragment", seconds, 0,
                              2.0 * kMmaM * kMmaN * kMmaK, [&] {
                                c = MmaSp(a, b, c);
                                // keep the accumulator live
                                if (c.at(0, 0) > 1e30f) {
                                  std::abort();
                                }
                              }));
    PrintResult(results.back());
  }

  // --- SSMM kernel: fragment-model reference vs packed optimized path -----
  const MatrixF w_gate = rng.GaussianMatrix(inter, hidden);
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w_gate, fmt);
  const MatrixF b = rng.GaussianMatrix(hidden, tokens);
  Selection sel;
  sel.full_size = tokens;
  for (int64_t t = 0; t < tokens; t += 4) {
    sel.indices.push_back(static_cast<int32_t>(t));  // a quarter of the batch
  }
  const int64_t selected = sel.selected();
  const double kernel_flops = 2.0 * inter * hidden * static_cast<double>(selected);

  MatrixF ref_out;
  results.push_back(Measure("kernel_reference", seconds, selected, kernel_flops,
                            [&] { ref_out = SamoyedsKernel::RunReference(enc, b, sel); }));
  PrintResult(results.back());
  const double ref_tokens_per_s = results.back().tokens_per_s;

  SsmmWorkspace kernel_ws;
  MatrixF opt_out;
  results.push_back(Measure("kernel_optimized", seconds, selected, kernel_flops,
                            [&] { SamoyedsKernel::Run(enc, b, sel, kernel_ws, opt_out); }));
  PrintResult(results.back());
  const double opt_tokens_per_s = results.back().tokens_per_s;
  const double kernel_speedup =
      ref_tokens_per_s > 0.0 ? opt_tokens_per_s / ref_tokens_per_s : 0.0;

  const bool bit_identical = ref_out == opt_out;
  if (!bit_identical) {
    std::fprintf(stderr, "FAIL: optimized kernel is not bit-identical to the reference\n");
    failed = true;
  }
  std::printf("kernel speedup: %.2fx (optimized vs reference), bit-identical: %s\n",
              kernel_speedup, bit_identical ? "yes" : "NO");

  // --- kernel backend sweep -------------------------------------------------
  // Every backend this binary compiled AND this CPU can run, including in
  // --smoke mode (dispatch bugs should fail CI, not a weekly full run).
  // fp64 oracle: the packed-representation accumulation recomputed in
  // double — the ULP yardstick the SIMD accumulation contract is stated
  // against (kernel_backend.h).
  std::vector<double> fp64_oracle;
  {
    SsmmPackedA packed;
    SamoyedsKernel::PackWeights(enc, packed);
    MatrixF panel;
    SamoyedsKernel::PackSelectedColumns(b, sel, panel);
    const int64_t n_out = panel.cols();
    fp64_oracle.assign(static_cast<size_t>(enc.rows * n_out), 0.0);
    for (size_t g = 0; g < packed.rows.size(); ++g) {
      double* orow = fp64_oracle.data() + static_cast<int64_t>(packed.rows[g]) * n_out;
      for (int64_t e = packed.off[g]; e < packed.off[g + 1]; ++e) {
        const double av = packed.vals[static_cast<size_t>(e)];
        const float* brow =
            panel.data() + static_cast<int64_t>(packed.cols[static_cast<size_t>(e)]) * n_out;
        for (int64_t j = 0; j < n_out; ++j) {
          orow[j] += av * brow[j];
        }
      }
    }
  }

  struct BackendRow {
    KernelBackend backend;
    BenchResult bench;
    double speedup_vs_scalar = 0.0;
    int64_t max_ulp = 0;
    bool bit_identical_to_ref = false;
  };
  std::vector<BackendRow> backend_rows;
  double scalar_backend_tokens_per_s = 0.0;
  for (KernelBackend backend : {KernelBackend::kScalar, KernelBackend::kAvx2,
                                KernelBackend::kAvx512, KernelBackend::kNeon}) {
    if (!KernelBackendCompiled(backend)) {
      continue;
    }
    if (!KernelBackendSupported(backend)) {
      std::printf("kernel_backend_%-14s compiled but not runnable on this CPU, skipped\n",
                  KernelBackendName(backend));
      continue;
    }
    BackendRow row;
    row.backend = backend;
    MatrixF out;
    row.bench = Measure(std::string("kernel_backend_") + KernelBackendName(backend), seconds,
                        selected, kernel_flops,
                        [&] { SamoyedsKernel::Run(enc, b, sel, kernel_ws, out, backend); });
    row.bit_identical_to_ref = out == ref_out;
    row.max_ulp = MaxUlpVsFp64(out, fp64_oracle);
    if (backend == KernelBackend::kScalar) {
      scalar_backend_tokens_per_s = row.bench.tokens_per_s;
    }
    row.speedup_vs_scalar = scalar_backend_tokens_per_s > 0.0
                                ? row.bench.tokens_per_s / scalar_backend_tokens_per_s
                                : 0.0;
    results.push_back(row.bench);
    PrintResult(row.bench);
    std::printf("  %s: %.2fx vs scalar, max ULP vs fp64 %lld, bit-identical to ref: %s\n",
                KernelBackendName(backend), row.speedup_vs_scalar,
                static_cast<long long>(row.max_ulp), row.bit_identical_to_ref ? "yes" : "no");

    // Gates. Scalar is the oracle: any numeric drift is a regression. Every
    // backend runs out of the shared workspace, so steady state must not
    // touch the heap. SIMD stays within the fused-accumulation ULP bound.
    if (backend == KernelBackend::kScalar && !row.bit_identical_to_ref) {
      std::fprintf(stderr, "FAIL: scalar backend is not bit-identical to the reference\n");
      failed = true;
    }
    if (row.bench.allocs_per_iter > 0.0) {
      std::fprintf(stderr, "FAIL: %s backend allocated %.2f times/iter in steady state\n",
                   KernelBackendName(backend), row.bench.allocs_per_iter);
      failed = true;
    }
    if (row.max_ulp > kMaxUlpVsFp64) {
      std::fprintf(stderr, "FAIL: %s backend max ULP vs fp64 oracle is %lld (bound %lld)\n",
                   KernelBackendName(backend), static_cast<long long>(row.max_ulp),
                   static_cast<long long>(kMaxUlpVsFp64));
      failed = true;
    }
    backend_rows.push_back(std::move(row));
  }
  // Scalar-path perf regression gate: the explicit-scalar row and the
  // default-path kernel_optimized row run the same loop (when no env force
  // redirects the default), so a large gap means dispatch overhead crept
  // into the hot path.
  if (ActiveKernelBackend() == KernelBackend::kScalar && scalar_backend_tokens_per_s > 0.0 &&
      opt_tokens_per_s > 0.0 && scalar_backend_tokens_per_s < 0.5 * opt_tokens_per_s) {
    std::fprintf(stderr,
                 "FAIL: scalar backend regressed to %.0f tokens/s vs %.0f on the default path\n",
                 scalar_backend_tokens_per_s, opt_tokens_per_s);
    failed = true;
  }
  // The acceptance floor for the SIMD work: on an AVX2-capable machine the
  // avx2 backend must beat scalar by >= 1.5x.
  for (const BackendRow& row : backend_rows) {
    if (row.backend == KernelBackend::kAvx2 && row.speedup_vs_scalar < 1.5) {
      std::fprintf(stderr, "FAIL: avx2 backend speedup %.2fx vs scalar is below the 1.5x floor\n",
                   row.speedup_vs_scalar);
      failed = true;
    }
  }

  // --- MoE forward through the workspace API ------------------------------
  MoeModelConfig cfg;
  cfg.name = "bench";
  cfg.hidden = static_cast<int>(hidden);
  cfg.intermediate = static_cast<int>(inter);
  cfg.num_experts = num_experts;
  cfg.top_k = top_k;
  cfg.shared_experts = 1;
  const MoeLayerWeights dense = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sparse = SamoyedsMoeLayerWeights::Encode(dense, fmt);
  const MatrixF x = rng.GaussianMatrix(tokens, hidden);
  const RoutingPlan plan = Route(x, sparse.router_gate, top_k);

  MoeWorkspace moe_ws;
  MatrixF moe_out;
  const double moe_flops =
      2.0 * inter * hidden * 3.0 * static_cast<double>(tokens) * (top_k + 1);
  BenchResult moe_result =
      Measure("moe_forward_workspace", seconds, tokens, moe_flops,
              [&] { MoeForwardSamoyeds(x, sparse, plan, Activation::kSilu, moe_ws, moe_out); });
  results.push_back(moe_result);
  PrintResult(moe_result);
  const double moe_steady_allocs = moe_result.allocs_per_iter;
  if (moe_steady_allocs != 0.0) {
    std::fprintf(stderr,
                 "FAIL: workspace MoE forward allocated %.2f times/iter in steady state "
                 "(expected 0)\n",
                 moe_steady_allocs);
    failed = true;
  }

  // Tile-parallel executor (task submission allocates; the kernel path
  // itself runs out of per-slot workspaces).
  {
    serving::ExpertPool pool(threads);
    serving::ParallelMoeWorkspace par_ws;
    MatrixF par_out;
    results.push_back(Measure("moe_forward_parallel", seconds, tokens, moe_flops, [&] {
      serving::ParallelMoeForwardSamoyeds(pool, x, sparse, plan, Activation::kSilu, par_ws,
                                          par_out);
    }));
    PrintResult(results.back());
    if (!(par_out == moe_out)) {
      std::fprintf(stderr, "FAIL: tile-parallel MoE forward diverged from sequential\n");
      failed = true;
    }
  }

  // --- steady-state serving decode step -----------------------------------
  {
    Rng erng(11);
    std::vector<SamoyedsDecoderLayerWeights> layers;
    MoeModelConfig ecfg = cfg;
    layers.push_back(
        SamoyedsDecoderLayerWeights::Encode(DecoderLayerWeights::Random(erng, ecfg), fmt));
    serving::EngineConfig engine_cfg;
    engine_cfg.heads = 4;
    engine_cfg.top_k = top_k;
    engine_cfg.threads = 1;  // measure the single-thread workspace path
    engine_cfg.scheduler.token_budget = 256;
    const int64_t decode = smoke ? 512 : 8192;
    std::vector<MatrixF> request_inputs;
    for (int64_t id = 0; id < 4; ++id) {
      request_inputs.push_back(erng.GaussianMatrix(8 + decode, hidden));
    }
    // The engine is rebuilt and refilled whenever the workload drains, so
    // arbitrarily long --seconds runs keep measuring decode steps instead of
    // aborting (the occasional rebuild + prefill iteration is noise).
    std::unique_ptr<serving::ServingEngine> engine;
    auto refill = [&] {
      engine = std::make_unique<serving::ServingEngine>(layers, engine_cfg);
      for (int64_t id = 0; id < 4; ++id) {
        serving::Request r;
        r.id = id;
        r.arrival_step = 0;
        r.prompt_len = 8;
        r.max_new_tokens = decode;
        r.inputs = request_inputs[static_cast<size_t>(id)];
        engine->Submit(std::move(r));
      }
      engine->Step();  // prefill
    };
    refill();
    BenchResult step_result = Measure("engine_decode_step", seconds, 4, 0.0, [&] {
      if (!engine->Step()) {
        refill();
      }
    });
    results.push_back(step_result);
    PrintResult(step_result);
  }

  // --- JSON ---------------------------------------------------------------
  if (!json_path.empty()) {
    std::string items;
    for (const auto& r : results) {
      AppendJson(items, r);
    }
    // Per-backend sweep rows: throughput plus the accumulation-contract
    // telemetry (speedup vs scalar, max ULP against the fp64 oracle).
    std::string backend_items;
    for (const BackendRow& row : backend_rows) {
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "    {\"backend\": \"%s\", \"tokens_per_s\": %.1f, \"gflops\": %.4f, "
                    "\"speedup_vs_scalar\": %.3f, \"max_ulp_vs_fp64\": %lld, "
                    "\"allocs_per_iter\": %.2f, \"bit_identical_to_ref\": %s}",
                    KernelBackendName(row.backend), row.bench.tokens_per_s, row.bench.gflops,
                    row.speedup_vs_scalar, static_cast<long long>(row.max_ulp),
                    row.bench.allocs_per_iter, row.bit_identical_to_ref ? "true" : "false");
      if (!backend_items.empty()) {
        backend_items += ",\n";
      }
      backend_items += buf;
    }
    char head[512];
    std::snprintf(head, sizeof(head),
                  "{\n  \"bench\": \"micro_kernel_wallclock\",\n  \"schema_version\": 2,\n"
                  "  \"mode\": \"%s\",\n"
                  "  \"config\": {\"threads\": %d, \"seconds\": %.3f},\n"
                  "  \"shape\": {\"hidden\": %lld, \"intermediate\": %lld, \"tokens\": %lld, "
                  "\"experts\": %d, \"top_k\": %d, \"format\": [1, 2, 32]},\n"
                  "  \"kernel_speedup\": %.3f,\n  \"bit_identical\": %s,\n"
                  "  \"moe_workspace_steady_allocs\": %.2f,\n",
                  smoke ? "smoke" : "full", threads, seconds, static_cast<long long>(hidden),
                  static_cast<long long>(inter), static_cast<long long>(tokens), num_experts,
                  top_k, kernel_speedup, bit_identical ? "true" : "false", moe_steady_allocs);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fputs(head, f);
    std::fputs("  \"backends\": [\n", f);
    std::fputs(backend_items.c_str(), f);
    std::fputs("\n  ],\n  \"results\": [\n", f);
    std::fputs(items.c_str(), f);
    std::fputs("\n  ]\n}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  return failed ? 1 : 0;
}

}  // namespace
}  // namespace samoyeds

int main(int argc, char** argv) { return samoyeds::RunBench(argc, argv); }
