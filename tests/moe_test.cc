// MoE substrate: router invariants, expert forward equivalence (dense vs
// Samoyeds kernel path), full-layer equivalence, attention.

#include <gtest/gtest.h>

#include "src/moe/attention.h"
#include "src/moe/expert.h"
#include "src/moe/model_configs.h"
#include "src/moe/moe_layer.h"
#include "src/moe/router.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

TEST(ModelConfigTest, TableTwoContents) {
  const auto models = PaperModels();
  ASSERT_EQ(models.size(), 6u);
  EXPECT_EQ(models[0].name, "Qwen2-MoE");
  EXPECT_EQ(models[0].num_experts, 60);
  EXPECT_EQ(models[1].num_experts, 64);
  EXPECT_EQ(models[4].name, "Mixtral-8x7B");
  EXPECT_EQ(models[4].hidden, 4096);
  EXPECT_EQ(models[4].intermediate, 14336);
  EXPECT_EQ(models[5].hidden, 6144);
  // CFG groups per Table 2.
  EXPECT_EQ(models[0].cfg_group, models[1].cfg_group);
  EXPECT_EQ(models[3].cfg_group, "CFG#3");
}

TEST(ModelConfigTest, LookupByName) {
  const auto& m = ModelByName("Mixtral-8x7B");
  EXPECT_EQ(m.num_experts, 8);
  EXPECT_EQ(ModelByName("OpenMoE-34B").activation, Activation::kGeluTanh);
}

TEST(RouterTest, NumericRoutingIsConsistent) {
  Rng rng(71);
  const MatrixF x = rng.GaussianMatrix(40, 32);
  const MatrixF gate = rng.GaussianMatrix(8, 32);
  const RoutingPlan plan = Route(x, gate, 2);
  EXPECT_TRUE(plan.IsConsistent());
  EXPECT_EQ(plan.tokens, 40);
  EXPECT_EQ(plan.top_k, 2);
}

TEST(RouterTest, TopKPicksHighestLogits) {
  // One token engineered so expert 3 then expert 1 dominate.
  MatrixF x(1, 4);
  x(0, 0) = 1.0f;
  MatrixF gate(4, 4);
  gate(0, 0) = 0.1f;
  gate(1, 0) = 2.0f;
  gate(2, 0) = -1.0f;
  gate(3, 0) = 5.0f;
  const RoutingPlan plan = Route(x, gate, 2);
  const auto& a = plan.token_assignments[0];
  EXPECT_EQ(a[0].first, 3);
  EXPECT_EQ(a[1].first, 1);
  EXPECT_GT(a[0].second, a[1].second);  // softmax weight ordering
}

TEST(RouterTest, SyntheticPlanConsistent) {
  Rng rng(72);
  const RoutingPlan plan = MakeSyntheticPlan(rng, 512, 16, 2, 0.0);
  EXPECT_TRUE(plan.IsConsistent());
}

TEST(RouterTest, SkewConcentratesTokens) {
  Rng rng(73);
  const RoutingPlan uniform = MakeSyntheticPlan(rng, 4096, 16, 2, 0.0);
  const RoutingPlan skewed = MakeSyntheticPlan(rng, 4096, 16, 2, 1.2);
  EXPECT_GT(skewed.TokensForExpert(0), uniform.TokensForExpert(0) * 2);
  EXPECT_TRUE(skewed.IsConsistent());
}

TEST(RouterTest, SelectionForExpertIsValid) {
  Rng rng(74);
  const RoutingPlan plan = MakeSyntheticPlan(rng, 100, 4, 2, 0.5);
  for (int e = 0; e < 4; ++e) {
    const Selection sel = plan.SelectionForExpert(e);
    EXPECT_TRUE(sel.IsValid());
    EXPECT_EQ(sel.full_size, 100);
  }
}

TEST(ActivationTest, SiluValues) {
  EXPECT_NEAR(ApplyActivation(Activation::kSilu, 0.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(ApplyActivation(Activation::kSilu, 10.0f), 10.0f, 1e-3f);
  EXPECT_LT(ApplyActivation(Activation::kSilu, -1.0f), 0.0f);
}

TEST(ActivationTest, GeluValues) {
  EXPECT_NEAR(ApplyActivation(Activation::kGeluTanh, 0.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(ApplyActivation(Activation::kGeluTanh, 5.0f), 5.0f, 1e-3f);
}

TEST(ExpertTest, SamoyedsForwardMatchesMaskedDense) {
  Rng rng(75);
  const int hidden = 64;
  const int inter = 96;
  const SamoyedsConfig cfg{1, 2, 32};
  ExpertWeights w = ExpertWeights::Random(rng, hidden, inter);
  const SamoyedsExpertWeights sw = SamoyedsExpertWeights::Encode(w, cfg);
  w.ApplyMask(cfg);  // dense path must see the same surviving weights

  MatrixF x = RandomBf16Matrix(rng, 20, hidden);
  const Selection sel = RandomSelection(rng, 20, 12);

  const MatrixF dense_out = ExpertForwardDense(x, w, sel, Activation::kSilu);
  const MatrixF sparse_out = ExpertForwardSamoyeds(x, sw, sel, Activation::kSilu);
  ASSERT_EQ(dense_out.rows(), 12);
  ASSERT_EQ(sparse_out.rows(), 12);
  EXPECT_LT(RelativeError(sparse_out, dense_out), 2e-2);
}

TEST(ExpertTest, GeluVariantAlsoMatches) {
  Rng rng(76);
  const SamoyedsConfig cfg{2, 4, 32};
  ExpertWeights w = ExpertWeights::Random(rng, 32, 64);
  const SamoyedsExpertWeights sw = SamoyedsExpertWeights::Encode(w, cfg);
  w.ApplyMask(cfg);
  MatrixF x = RandomBf16Matrix(rng, 10, 32);
  const Selection sel = Selection::All(10);
  const MatrixF dense_out = ExpertForwardDense(x, w, sel, Activation::kGeluTanh);
  const MatrixF sparse_out = ExpertForwardSamoyeds(x, sw, sel, Activation::kGeluTanh);
  EXPECT_LT(RelativeError(sparse_out, dense_out), 2e-2);
}

// Full MoE layer: the Samoyeds dual-side execution must reproduce the
// Transformers-style reference on masked weights — the core end-to-end
// integration property of the system.
TEST(MoeLayerTest, SamoyedsForwardMatchesReference) {
  Rng rng(77);
  MoeModelConfig cfg;
  cfg.name = "test";
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  cfg.shared_experts = 0;
  const SamoyedsConfig fmt{1, 2, 32};

  MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw = SamoyedsMoeLayerWeights::Encode(w, fmt);
  w.ApplyMask(fmt);

  MatrixF x = RandomBf16Matrix(rng, 24, cfg.hidden);
  const RoutingPlan plan = Route(x, w.router_gate, cfg.top_k);
  ASSERT_TRUE(plan.IsConsistent());

  const MatrixF ref = MoeForwardReference(x, w, plan, Activation::kSilu);
  const MatrixF got = MoeForwardSamoyeds(x, sw, plan, Activation::kSilu);
  EXPECT_LT(RelativeError(got, ref), 2e-2);
}

TEST(MoeLayerTest, SharedExpertsContribute) {
  Rng rng(78);
  MoeModelConfig cfg;
  cfg.num_experts = 2;
  cfg.hidden = 32;
  cfg.intermediate = 32;
  cfg.top_k = 1;
  cfg.shared_experts = 2;
  const SamoyedsConfig fmt{1, 2, 32};

  MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  ASSERT_EQ(w.shared_experts.size(), 2u);
  const SamoyedsMoeLayerWeights sw = SamoyedsMoeLayerWeights::Encode(w, fmt);
  w.ApplyMask(fmt);

  MatrixF x = RandomBf16Matrix(rng, 16, cfg.hidden);
  const RoutingPlan plan = Route(x, w.router_gate, cfg.top_k);
  const MatrixF ref = MoeForwardReference(x, w, plan, Activation::kSilu);
  const MatrixF got = MoeForwardSamoyeds(x, sw, plan, Activation::kSilu);
  EXPECT_LT(RelativeError(got, ref), 2e-2);

  // Removing the shared experts must change the output.
  MoeLayerWeights no_shared = w;
  no_shared.shared_experts.clear();
  const MatrixF without = MoeForwardReference(x, no_shared, plan, Activation::kSilu);
  EXPECT_GT(MaxAbsDiff(without, ref), 1e-3f);
}

TEST(MoeLayerTest, OutputShapePreserved) {
  Rng rng(79);
  MoeModelConfig cfg;
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 32;
  cfg.top_k = 2;
  MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  const MatrixF x = RandomBf16Matrix(rng, 8, cfg.hidden);
  const RoutingPlan plan = Route(x, w.router_gate, cfg.top_k);
  const MatrixF out = MoeForwardReference(x, w, plan, Activation::kSilu);
  EXPECT_EQ(out.rows(), 8);
  EXPECT_EQ(out.cols(), 32);
}

TEST(AttentionTest, ForwardShapeAndCausality) {
  Rng rng(80);
  const AttentionWeights w = AttentionWeights::Random(rng, 32);
  MatrixF x = rng.GaussianMatrix(12, 32, 0.5f);
  const MatrixF out = AttentionForward(x, w, 4);
  EXPECT_EQ(out.rows(), 12);
  EXPECT_EQ(out.cols(), 32);

  // Causality: changing a later token must not affect earlier outputs.
  MatrixF x2 = x;
  x2(11, 0) += 10.0f;
  const MatrixF out2 = AttentionForward(x2, w, 4);
  for (int64_t c = 0; c < 32; ++c) {
    EXPECT_FLOAT_EQ(out(0, c), out2(0, c));
    EXPECT_FLOAT_EQ(out(10, c), out2(10, c));
  }
  // ... but it must affect its own row.
  EXPECT_GT(MaxAbsDiff(out, out2), 1e-4f);
}

TEST(AttentionTest, SingleHeadMatchesManual) {
  Rng rng(81);
  const int hidden = 8;
  AttentionWeights w = AttentionWeights::Random(rng, hidden);
  MatrixF x = rng.GaussianMatrix(1, hidden, 0.5f);
  // With one token, attention output = Wo * v = Wo * (Wv x).
  const MatrixF v = GemmRef(x, w.wv.Transposed());
  const MatrixF expect = GemmRef(v, w.wo.Transposed());
  const MatrixF out = AttentionForward(x, w, 1);
  EXPECT_LE(MaxAbsDiff(out, expect), 1e-4f);
}

TEST(AttentionProfileTest, FlashRemovesScoreTraffic) {
  const KernelProfile naive = AttentionProfile(4096, 1, 4096, 32, false);
  const KernelProfile flash = AttentionProfile(4096, 1, 4096, 32, true);
  // The projections dominate total reads; the score tensor shows up in the
  // compulsory footprint, which Flash-Attention never materializes.
  EXPECT_GT(naive.traffic.gmem_unique_bytes, flash.traffic.gmem_unique_bytes * 1.5);
  EXPECT_GT(naive.traffic.gmem_read_bytes, flash.traffic.gmem_read_bytes);
  EXPECT_DOUBLE_EQ(naive.useful_flops, flash.useful_flops);
}

}  // namespace
}  // namespace samoyeds
