// Radix-tree prefix cache: randomized property coverage against a naive
// shadow, plus host-swap round trips.
//
//   * Matching is exact: with no evictions, ProbeTokens/Acquire return the
//     maximum common prefix between the query and any donated chain; with
//     evictions the match can only shrink, never exceed the shadow.
//   * Reference counts are conserved: with no live sequences every used page
//     is held by exactly one tree node, and reclaimable_pages is exact.
//   * Copy-on-write never aliases: KV rows gathered through a matched path
//     and the replayed output rows are always the pure function of the prefix
//     they were donated as, no matter how many sequences diverged since.
//   * HostSwapTier round-trips are bit-exact even after the device pages are
//     recycled by other sequences in between.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/serving/kv_cache.h"
#include "src/serving/prefix_cache.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace serving {
namespace {

TEST(ChainedRowHashesTest, CommitsToTheWholePrefix) {
  Rng rng(7);
  MatrixF a(6, 3);
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      a(r, c) = rng.NextGaussian();
    }
  }
  MatrixF b = a;
  const auto ha = ChainedRowHashes(a, 6);
  ASSERT_EQ(ha.size(), 6u);
  EXPECT_EQ(ChainedRowHashes(b, 6), ha);  // bit-equal inputs, equal chain
  b(2, 1) += 1.0f;                        // early divergence poisons the rest
  const auto hb = ChainedRowHashes(b, 6);
  EXPECT_EQ(hb[0], ha[0]);
  EXPECT_EQ(hb[1], ha[1]);
  for (size_t i = 2; i < 6; ++i) {
    EXPECT_NE(hb[i], ha[i]) << "row " << i;
  }
}

// Pure functions of the prefix (via the chained hash, which commits to every
// earlier row): what a correct cache must reproduce bit-exactly on any hit.
float ExpectedKv(uint64_t prefix_hash, int64_t col) {
  return static_cast<float>((prefix_hash >> (8 * (col % 8))) & 0xff);
}
float ExpectedOut(uint64_t prefix_hash, int64_t col) {
  return static_cast<float>(((prefix_hash * 31) >> (8 * (col % 8))) & 0xff);
}

int64_t CommonPrefix(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) {
    ++i;
  }
  return static_cast<int64_t>(i);
}

TEST(PrefixCacheTest, RandomizedMatchesShadowAndNeverAliases) {
  constexpr int64_t kPageTokens = 4;
  constexpr int64_t kHidden = 3;
  constexpr int64_t kPool = 48;  // small enough that eviction really happens
  PagedKvCache cache(KvCacheConfig{kPageTokens, kPool}, /*layers=*/1, kHidden);
  KvPageAllocator& alloc = cache.mutable_allocator();
  PrefixCache pc(kPageTokens, kHidden);
  Rng rng(4242);

  // Prompt pool grown by forking prefixes, so prompts genuinely share.
  // Lengths are capped at 40 rows (10 pages) so a prompt always fits the pool
  // once tree-only pages are reclaimed.
  std::vector<MatrixF> prompts;
  std::vector<std::vector<uint64_t>> donated;  // shadow: full donated chains
  const auto make_prompt = [&]() {
    int64_t keep = 0;
    const MatrixF* base = nullptr;
    if (!prompts.empty() && rng.NextBounded(4) != 0) {
      base = &prompts[static_cast<size_t>(rng.NextIndex(
          static_cast<int64_t>(prompts.size())))];
      keep = rng.NextIndex(std::min<int64_t>(base->rows(), 28) + 1);
    }
    const int64_t extra = 1 + rng.NextIndex(12);
    MatrixF m(keep + extra, kHidden);
    for (int64_t r = 0; r < keep; ++r) {
      for (int64_t c = 0; c < kHidden; ++c) {
        m(r, c) = (*base)(r, c);
      }
    }
    for (int64_t r = keep; r < keep + extra; ++r) {
      for (int64_t c = 0; c < kHidden; ++c) {
        m(r, c) = rng.NextGaussian();
      }
    }
    prompts.push_back(std::move(m));
    return static_cast<int64_t>(prompts.size()) - 1;
  };

  int64_t next_seq = 1;
  int64_t full_hits = 0, partial_hits = 0, skipped = 0;
  for (int iter = 0; iter < 400; ++iter) {
    // Mostly fresh forks; sometimes resubmit an old prompt verbatim (the
    // shared-system-prompt case, which should fully hit unless evicted).
    const size_t index = (!prompts.empty() && rng.NextBounded(3) == 0)
                             ? static_cast<size_t>(rng.NextIndex(
                                   static_cast<int64_t>(prompts.size())))
                             : static_cast<size_t>(make_prompt());
    const MatrixF& inputs = prompts[index];
    const int64_t tokens = inputs.rows();
    const std::vector<uint64_t> hashes = ChainedRowHashes(inputs, tokens);

    int64_t expected = 0;
    for (const auto& chain : donated) {
      expected = std::max(expected, CommonPrefix(hashes, chain));
    }
    const int64_t probed = pc.ProbeTokens(inputs, tokens);
    ASSERT_LE(probed, expected);  // never invent a prefix
    if (pc.evictions() == 0) {
      ASSERT_EQ(probed, expected);  // exact while nothing was evicted
    }

    PrefixCache::Match match = pc.Acquire(inputs, tokens);
    ASSERT_EQ(match.tokens, probed);  // Probe and Acquire agree
    const int64_t seq = next_seq++;
    if (match.tokens > 0) {
      ASSERT_TRUE(cache.CreateMapped(seq, match.pages, match.tokens));
      // Replayed output rows are the pure function of the prefix — a COW or
      // eviction bug that aliased pages would surface as foreign bytes here.
      for (int64_t t = 0; t < match.tokens; ++t) {
        for (int64_t c = 0; c < kHidden; ++c) {
          ASSERT_EQ(match.out_rows[static_cast<size_t>(t * kHidden + c)],
                    ExpectedOut(hashes[static_cast<size_t>(t)], c))
              << "iter " << iter << " token " << t;
        }
      }
      std::vector<float> kv(static_cast<size_t>(match.tokens * kHidden));
      cache.GatherRows(seq, 0, match.tokens, kv.data());
      for (int64_t t = 0; t < match.tokens; ++t) {
        for (int64_t c = 0; c < kHidden; ++c) {
          ASSERT_EQ(kv[static_cast<size_t>(t * kHidden + c)],
                    ExpectedKv(hashes[static_cast<size_t>(t)], c))
              << "iter " << iter << " token " << t;
        }
      }
      ++(match.tokens == tokens ? full_hits : partial_hits);
    }
    // Grow to the full prompt (copy-on-write splits a shared tail page under
    // the hood), reclaiming tree-only pages under pressure like the engine.
    bool fits = true;
    while (!cache.Extend(seq, tokens - match.tokens)) {
      if (!pc.ReclaimOne(alloc)) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      if (match.tokens > 0) {
        ASSERT_TRUE(cache.Free(seq));
      }
      ++skipped;
      continue;
    }
    for (int64_t t = match.tokens; t < tokens; ++t) {
      for (int64_t c = 0; c < kHidden; ++c) {
        cache.Row(seq, 0, t)[c] = ExpectedKv(hashes[static_cast<size_t>(t)], c);
      }
    }
    std::vector<float> out(static_cast<size_t>(tokens * kHidden));
    for (int64_t t = 0; t < tokens; ++t) {
      for (int64_t c = 0; c < kHidden; ++c) {
        out[static_cast<size_t>(t * kHidden + c)] =
            ExpectedOut(hashes[static_cast<size_t>(t)], c);
      }
    }
    pc.Donate(seq, inputs, tokens, out, alloc);
    donated.push_back(hashes);
    ASSERT_TRUE(cache.Free(seq));

    // No sequence is live: every used page is held by exactly one tree node,
    // and all of them are reclaimable.
    ASSERT_EQ(alloc.used_pages(), pc.nodes());
    ASSERT_EQ(alloc.shared_pages(), 0);
    ASSERT_EQ(pc.reclaimable_pages(alloc), pc.nodes());
    // The chain just donated matches end to end.
    ASSERT_EQ(pc.ProbeTokens(inputs, tokens), tokens);
  }
  // The schedule exercised every interesting regime.
  EXPECT_GT(full_hits, 20);
  EXPECT_GT(partial_hits, 20);
  EXPECT_GT(pc.evictions(), 0);
  EXPECT_GT(cache.cow_splits(), 0);
  EXPECT_EQ(skipped, 0);  // reclaim always made room in this schedule

  // Drain the whole tree through ReclaimOne: every page comes back.
  while (pc.ReclaimOne(alloc)) {
  }
  EXPECT_EQ(pc.nodes(), 0);
  EXPECT_EQ(alloc.used_pages(), 0);
  EXPECT_EQ(alloc.free_pages(), kPool);
  EXPECT_EQ(pc.ProbeTokens(prompts[0], prompts[0].rows()), 0);
}

TEST(PrefixCacheTest, SharedPathPagesCountsOnlyLiveMappings) {
  constexpr int64_t kPageTokens = 4;
  constexpr int64_t kHidden = 2;
  PagedKvCache cache(KvCacheConfig{kPageTokens, 16}, /*layers=*/1, kHidden);
  KvPageAllocator& alloc = cache.mutable_allocator();
  PrefixCache pc(kPageTokens, kHidden);
  Rng rng(11);
  MatrixF inputs(10, kHidden);  // 2 full pages + a partial tail
  for (int64_t r = 0; r < inputs.rows(); ++r) {
    for (int64_t c = 0; c < kHidden; ++c) {
      inputs(r, c) = rng.NextGaussian();
    }
  }
  ASSERT_TRUE(cache.Extend(1, 10));
  const std::vector<float> out(10 * kHidden, 0.5f);
  pc.Donate(1, inputs, 10, out, alloc);
  ASSERT_TRUE(cache.Free(1));

  // Tree-only path: matching is full but no page is discountable — mapping
  // would pin otherwise-reclaimable pages.
  int64_t shared = -1;
  EXPECT_EQ(pc.ProbeTokens(inputs, 10, &alloc, &shared), 10);
  EXPECT_EQ(shared, 0);

  // A live sequence mapping the path makes every page discountable.
  PrefixCache::Match match = pc.Acquire(inputs, 10);
  ASSERT_EQ(match.tokens, 10);
  ASSERT_TRUE(cache.CreateMapped(2, match.pages, 10));
  EXPECT_EQ(pc.ProbeTokens(inputs, 10, &alloc, &shared), 10);
  EXPECT_EQ(shared, 3);
  ASSERT_TRUE(cache.Free(2));
  EXPECT_EQ(pc.ProbeTokens(inputs, 10, &alloc, &shared), 10);
  EXPECT_EQ(shared, 0);
}

TEST(HostSwapTierTest, RoundTripIsBitExactAfterPageRecycling) {
  constexpr int64_t kPageTokens = 4;
  constexpr int64_t kHidden = 3;
  constexpr int64_t kLayers = 2;
  constexpr int64_t kTokens = 10;
  PagedKvCache cache(KvCacheConfig{kPageTokens, 8}, kLayers, kHidden);
  HostSwapTier tier(kLayers, kHidden, kPageTokens, /*max_host_pages=*/3);
  Rng rng(99);

  ASSERT_TRUE(cache.Extend(1, kTokens));
  std::vector<float> golden(static_cast<size_t>(kLayers * kTokens * kHidden));
  for (auto& v : golden) {
    v = rng.NextGaussian();
  }
  for (int64_t layer = 0; layer < kLayers; ++layer) {
    cache.ScatterRows(1, layer, kTokens, golden.data() + layer * kTokens * kHidden);
  }

  ASSERT_TRUE(tier.CanHold(kTokens));  // 3 pages, budget 3
  tier.SwapOut(1, cache, kTokens);
  EXPECT_EQ(tier.used_pages(), 3);
  EXPECT_EQ(tier.Tokens(1), kTokens);
  EXPECT_FALSE(tier.CanHold(1));  // budget full
  EXPECT_EQ(tier.BytesForTokens(kTokens),
            kTokens * kHidden * kLayers * static_cast<int64_t>(sizeof(float)));
  ASSERT_TRUE(cache.Free(1));

  // Recycle the freed pages through an unrelated sequence to scramble the
  // arena, then drop it again.
  ASSERT_TRUE(cache.Extend(7, 2 * kPageTokens));
  for (int64_t layer = 0; layer < kLayers; ++layer) {
    for (int64_t t = 0; t < 2 * kPageTokens; ++t) {
      for (int64_t c = 0; c < kHidden; ++c) {
        cache.Row(7, layer, t)[c] = -7.0f;
      }
    }
  }
  ASSERT_TRUE(cache.Free(7));

  ASSERT_TRUE(cache.Extend(1, kTokens));
  tier.SwapIn(1, cache);
  EXPECT_EQ(tier.used_pages(), 0);
  EXPECT_EQ(tier.entries(), 0);
  EXPECT_FALSE(tier.Has(1));
  for (int64_t layer = 0; layer < kLayers; ++layer) {
    std::vector<float> got(static_cast<size_t>(kTokens * kHidden));
    cache.GatherRows(1, layer, kTokens, got.data());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], golden[static_cast<size_t>(layer * kTokens * kHidden) + i])
          << "layer " << layer << " flat " << i;
    }
  }

  // Drop is idempotent and Cancel-style discards release the budget.
  EXPECT_FALSE(tier.Drop(1));
  tier.SwapOut(1, cache, kTokens);
  EXPECT_TRUE(tier.Drop(1));
  EXPECT_FALSE(tier.Drop(1));
  EXPECT_EQ(tier.used_pages(), 0);
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
