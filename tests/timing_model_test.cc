// Behavioural tests for the GPU timing model: the qualitative mechanisms
// the paper's evaluation relies on must hold.

#include <gtest/gtest.h>

#include "src/simgpu/device_spec.h"
#include "src/simgpu/timing_model.h"

namespace samoyeds {
namespace {

TrafficReport ComputeBoundReport() {
  TrafficReport t;
  t.mma_flops = 1e12;
  t.gmem_read_bytes = 1e6;
  t.gmem_write_bytes = 1e6;
  t.gmem_unique_bytes = 2e6;
  t.thread_blocks = 4096;
  t.warps_per_block = 8;
  t.smem_bytes_per_block = 32 << 10;
  t.pipeline_stages = 3;
  return t;
}

TrafficReport MemoryBoundReport() {
  TrafficReport t;
  t.mma_flops = 1e9;
  t.gmem_read_bytes = 4e9;
  t.gmem_write_bytes = 1e9;
  t.gmem_unique_bytes = 5e9;
  t.thread_blocks = 4096;
  t.warps_per_block = 8;
  t.smem_bytes_per_block = 32 << 10;
  t.pipeline_stages = 3;
  return t;
}

TEST(TimingModelTest, ComputeBoundClassification) {
  const TimingModel model(DefaultDevice());
  const TimingEstimate e = model.Estimate(ComputeBoundReport());
  EXPECT_FALSE(e.memory_bound());
  EXPECT_GT(e.total_ms, 0.0);
}

TEST(TimingModelTest, MemoryBoundClassification) {
  const TimingModel model(DefaultDevice());
  const TimingEstimate e = model.Estimate(MemoryBoundReport());
  EXPECT_TRUE(e.memory_bound());
}

TEST(TimingModelTest, MoreFlopsTakesLonger) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = ComputeBoundReport();
  const double base = model.Estimate(t).total_ms;
  t.mma_flops *= 2.0;
  EXPECT_GT(model.Estimate(t).total_ms, base * 1.5);
}

TEST(TimingModelTest, MoreTrafficTakesLonger) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = MemoryBoundReport();
  const double base = model.Estimate(t).total_ms;
  t.gmem_read_bytes *= 2.0;
  t.gmem_unique_bytes *= 2.0;
  EXPECT_GT(model.Estimate(t).total_ms, base * 1.5);
}

TEST(TimingModelTest, UncoalescedAccessesArePenalized) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = MemoryBoundReport();
  const double base = model.Estimate(t).total_ms;
  t.gmem_uncoalesced_bytes = t.gmem_read_bytes;
  EXPECT_GT(model.Estimate(t).total_ms, base * 1.5);
}

TEST(TimingModelTest, PipelineOverlapHelps) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = MemoryBoundReport();
  t.mma_flops = 2e11;  // comparable compute and memory time
  t.pipeline_stages = 1;
  const double serial = model.Estimate(t).total_ms;
  t.pipeline_stages = 4;
  const double overlapped = model.Estimate(t).total_ms;
  EXPECT_LT(overlapped, serial);
}

TEST(TimingModelTest, LowParallelismHurtsThroughput) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = ComputeBoundReport();
  t.thread_blocks = 4;  // tiny grid: 32 warps on a 56-SM chip
  const TimingEstimate small = model.Estimate(t);
  EXPECT_LT(small.parallel_efficiency, 0.1);
}

TEST(TimingModelTest, LargeGridReachesFullEfficiency) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = ComputeBoundReport();
  t.thread_blocks = 1 << 16;
  const TimingEstimate e = model.Estimate(t);
  EXPECT_GT(e.parallel_efficiency, 0.9);
}

TEST(TimingModelTest, TailWaveQuantization) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = ComputeBoundReport();
  // Capacity: 2 blocks/SM (register-limited) x 56 SMs = 112 blocks.
  t.thread_blocks = 113;  // one extra block forces a nearly-empty second wave
  const TimingEstimate e = model.Estimate(t);
  EXPECT_LT(e.parallel_efficiency, 0.6);
}

TEST(TimingModelTest, L2CapturesReuseTraffic) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = MemoryBoundReport();
  // Small working set: all reuse traffic should hit in L2.
  t.gmem_unique_bytes = 1e6;
  const double hot = model.Estimate(t).total_ms;
  // Huge working set: reuse spills to DRAM.
  t.gmem_unique_bytes = 4e9;
  const double cold = model.Estimate(t).total_ms;
  EXPECT_LT(hot, cold);
}

TEST(TimingModelTest, BiggerL2DeviceServesReuseFaster) {
  // Two hypothetical devices identical except for L2 capacity.
  DeviceSpec small_l2 = DefaultDevice();
  small_l2.l2_bytes = 1 << 20;
  DeviceSpec big_l2 = DefaultDevice();
  big_l2.l2_bytes = 256 << 20;

  TrafficReport t = MemoryBoundReport();
  t.thread_blocks = 100;  // fits concurrently: active working set = footprint
  t.gmem_read_bytes = 20e9;  // heavy reuse over a 100 MB footprint
  t.gmem_unique_bytes = 100e6;
  const double slow = TimingModel(small_l2).Estimate(t).total_ms;
  const double fast = TimingModel(big_l2).Estimate(t).total_ms;
  EXPECT_LT(fast, slow * 0.6);
}

TEST(TimingModelTest, EfficiencyScalesTotalTime) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = ComputeBoundReport();
  t.efficiency = 1.0;
  const double fast = model.Estimate(t).total_ms;
  t.efficiency = 0.5;
  const double slow = model.Estimate(t).total_ms;
  EXPECT_NEAR(slow / fast, 2.0, 0.05);
}

TEST(TimingModelTest, FixedOverheadAdds) {
  const TimingModel model(DefaultDevice());
  TrafficReport t = ComputeBoundReport();
  const double base = model.Estimate(t).total_ms;
  t.fixed_overhead_us = 1000.0;
  EXPECT_NEAR(model.Estimate(t).total_ms, base + 1.0, 1e-6);
}

TEST(TimingModelTest, BankConflictsSlowSmemBoundKernels) {
  const TimingModel model(DefaultDevice());
  TrafficReport t;
  t.smem_bytes = 1e12;
  t.simd_flops = 1e9;
  t.thread_blocks = 4096;
  t.warps_per_block = 8;
  t.pipeline_stages = 2;
  const double base = model.Estimate(t).total_ms;
  t.bank_conflict_factor = 2.0;
  EXPECT_GT(model.Estimate(t).total_ms, base * 1.8);
}

TEST(TimingModelTest, ThroughputInverseOfTime) {
  const TimingModel model(DefaultDevice());
  const TrafficReport t = ComputeBoundReport();
  const double tput = model.ThroughputTflops(2e12, t);
  const TimingEstimate e = model.Estimate(t);
  EXPECT_NEAR(tput, 2e12 / (e.total_ms * 1e-3) / 1e12, 1e-9);
}

TEST(DeviceSpecTest, AllDevicesWellFormed) {
  for (DeviceModel m : AllDeviceModels()) {
    const DeviceSpec& d = GetDevice(m);
    EXPECT_FALSE(d.name.empty());
    EXPECT_GT(d.sm_count, 0);
    EXPECT_GT(d.tc_dense_tflops, 0.0);
    EXPECT_GT(d.dram_bandwidth_gbps, 0.0);
    EXPECT_GT(d.l2_bytes, 0);
    EXPECT_TRUE(d.has_sparse_alu());
  }
}

TEST(DeviceSpecTest, PaperDeviceContrasts) {
  const DeviceSpec& s4070 = GetDevice(DeviceModel::kRtx4070Super);
  const DeviceSpec& a100 = GetDevice(DeviceModel::kA100_40G);
  const DeviceSpec& r3090 = GetDevice(DeviceModel::kRtx3090);
  // Table 6: A100 has more SMs but less L2 than the 4070S.
  EXPECT_GT(a100.sm_count, s4070.sm_count);
  EXPECT_LT(a100.l2_bytes, s4070.l2_bytes);
  // Table 6: 3090 has slower tensor cores but more bandwidth.
  EXPECT_LT(r3090.tc_dense_tflops, s4070.tc_dense_tflops);
  EXPECT_GT(r3090.dram_bandwidth_gbps, s4070.dram_bandwidth_gbps);
}

}  // namespace
}  // namespace samoyeds
