// End-to-end integration tests: the whole pipeline from pruning through
// serialization through the dual-side kernel into a decoder layer, plus
// cross-experiment consistency checks between the analytic profiles used by
// different benches.

#include <sstream>

#include <gtest/gtest.h>

#include "src/core/autotune.h"
#include "src/core/samoyeds_kernel.h"
#include "src/formats/serialization.h"
#include "src/frameworks/layer_cost.h"
#include "src/kernels/dense_gemm.h"
#include "src/moe/attention.h"
#include "src/moe/memory_model.h"
#include "src/moe/moe_layer.h"
#include "src/pruning/pruners.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/gemm_ref.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

// Offline pipeline: prune a dense expert, serialize it, reload it on the
// "inference side", and verify the kernel produces the masked-dense result.
TEST(IntegrationTest, PruneSerializeExecute) {
  Rng rng(201);
  const SamoyedsConfig fmt{1, 2, 32};
  MatrixF w = RandomBf16Matrix(rng, 64, 128);

  // Offline: encode and ship.
  const SamoyedsMatrix encoded = SamoyedsMatrix::Encode(w, fmt);
  std::stringstream wire;
  ASSERT_TRUE(SaveSamoyedsMatrix(encoded, wire));

  // Online: load and execute.
  const auto loaded = LoadSamoyedsMatrix(wire);
  ASSERT_TRUE(loaded.has_value());
  const MatrixF x = RandomBf16Matrix(rng, 128, 32);
  const Selection sel = RandomSelection(rng, 32, 20);
  const MatrixF y = SamoyedsKernel::Run(*loaded, x, sel);

  MatrixF masked = w;
  ApplySamoyedsMask(masked, fmt);
  const MatrixF expect = GemmRef(masked, GatherColumns(x, sel));
  EXPECT_LE(MaxAbsDiff(y, expect), 2e-3f);
}

// Full functional decoder slice: attention + MoE layer, Samoyeds weights.
TEST(IntegrationTest, DecoderSliceFunctional) {
  Rng rng(202);
  MoeModelConfig cfg;
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  const SamoyedsConfig fmt{1, 2, 32};

  const AttentionWeights attn = AttentionWeights::Random(rng, cfg.hidden);
  MoeLayerWeights moe = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sparse_moe = SamoyedsMoeLayerWeights::Encode(moe, fmt);
  moe.ApplyMask(fmt);

  MatrixF x = RandomBf16Matrix(rng, 16, cfg.hidden, 0.5f);
  const MatrixF attn_out = AttentionForward(x, attn, 4);

  // Residual add, then MoE on both paths.
  MatrixF h(16, cfg.hidden);
  for (int64_t i = 0; i < h.size(); ++i) {
    h.flat()[static_cast<size_t>(i)] =
        x.flat()[static_cast<size_t>(i)] + attn_out.flat()[static_cast<size_t>(i)];
  }
  RoundMatrixToBf16(h);
  const RoutingPlan plan = Route(h, moe.router_gate, cfg.top_k);
  const MatrixF ref = MoeForwardReference(h, moe, plan, Activation::kSilu);
  const MatrixF got = MoeForwardSamoyeds(h, sparse_moe, plan, Activation::kSilu);
  EXPECT_LT(RelativeError(got, ref), 2e-2);
}

// Skewed routing must flow through the whole stack: plan -> SELs -> kernel.
TEST(IntegrationTest, SkewedRoutingFunctional) {
  Rng rng(203);
  MoeModelConfig cfg;
  cfg.num_experts = 8;
  cfg.hidden = 32;
  cfg.intermediate = 32;
  cfg.top_k = 2;
  const SamoyedsConfig fmt{1, 2, 32};
  MoeLayerWeights moe = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sparse_moe = SamoyedsMoeLayerWeights::Encode(moe, fmt);
  moe.ApplyMask(fmt);

  const RoutingPlan plan = MakeSyntheticPlan(rng, 64, cfg.num_experts, cfg.top_k, 1.5);
  ASSERT_TRUE(plan.IsConsistent());
  MatrixF x = RandomBf16Matrix(rng, 64, cfg.hidden, 0.5f);
  const MatrixF ref = MoeForwardReference(x, moe, plan, Activation::kSilu);
  const MatrixF got = MoeForwardSamoyeds(x, sparse_moe, plan, Activation::kSilu);
  EXPECT_LT(RelativeError(got, ref), 2e-2);
}

// Cross-bench consistency: the Fig.14 layer costs must decompose into the
// same kernel profiles Fig.12 uses — the Samoyeds gate_up phase of a
// one-expert layer should match two grouped SSMM launches.
TEST(IntegrationTest, LayerPhaseMatchesKernelProfile) {
  MoeModelConfig cfg;
  cfg.num_experts = 1;
  cfg.hidden = 4096;
  cfg.intermediate = 14336;
  cfg.top_k = 1;
  const int64_t tokens = 4096;
  LayerCostOptions opts;
  opts.shared_experts_override = 0;
  const MoeLayerCost layer = EstimateMoeLayerCost(
      MoeFramework::kSamoyeds, cfg, {tokens}, tokens, opts);

  const TimingModel model(DefaultDevice());
  const KernelProfile gate = SamoyedsKernel::Analyze({cfg.intermediate, cfg.hidden, tokens},
                                                     tokens, opts.sparse_format, opts.ssmm);
  TrafficReport two = gate.traffic;
  TrafficReport second = gate.traffic;
  second.fixed_overhead_us = 0.0;
  two += second;
  const double expect_ms = model.Estimate(two).total_ms;
  EXPECT_NEAR(layer.PhaseMs("gate_up"), expect_ms, expect_ms * 0.01);
}

// OOM/NS coherence between the memory model (Table 3) and the end-to-end
// bench (Fig. 15): any framework the memory model rejects at batch 1 must
// also be flagged by FrameworkSupportsModel or footprint, never silently
// priced.
TEST(IntegrationTest, MemoryAndSupportCoherent) {
  const SamoyedsConfig fmt{1, 2, 32};
  for (const auto& model : PaperModels()) {
    for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                            MoeFramework::kVllmDs, MoeFramework::kSamoyeds}) {
      if (!FrameworkSupportsModel(fw, model)) {
        continue;
      }
      const auto fp = EstimateFootprint(model, fw, fmt, DefaultDevice());
      // Samoyeds must never be the framework that OOMs first.
      if (fw == MoeFramework::kSamoyeds) {
        EXPECT_GT(fp.MaxBatch(1024), 0) << model.name;
      }
      EXPECT_GT(fp.weight_bytes, 0.0);
      EXPECT_GT(fp.bytes_per_token, 0.0);
    }
  }
}

// Autotuned configurations must keep functional correctness knobs intact
// (tile sizes do not change semantics) and legal tile constraints.
TEST(IntegrationTest, AutotunedConfigStillValidForKernel) {
  const SamoyedsConfig fmt{1, 2, 32};
  const AutotuneResult r = AutotuneSsmm({512, 512, 512}, 512, fmt, DefaultDevice());
  EXPECT_TRUE(r.config.input_selection);
  EXPECT_TRUE(r.config.data_stationary);
  EXPECT_EQ(fmt.v % r.config.kb, 0);
  // And the profile with the tuned config is still well-formed.
  const KernelProfile p = SamoyedsKernel::Analyze({512, 512, 512}, 512, fmt, r.config);
  EXPECT_GT(p.traffic.thread_blocks, 0);
}

// The whole simulated device list must run the realistic benchmark without
// pathological outputs (guards the portability bench).
TEST(IntegrationTest, AllDevicesPriceRealisticShapes) {
  const SamoyedsConfig fmt{1, 2, 32};
  for (DeviceModel dm : AllDeviceModels()) {
    const DeviceSpec& device = GetDevice(dm);
    const TimingModel model(device);
    for (const auto& m : PaperModels()) {
      const GemmShape shape{m.intermediate, m.hidden, 4096};
      const double samoyeds_ms =
          model.Estimate(SamoyedsKernel::Analyze(shape, shape.n, fmt, SsmmConfig::Default(),
                                                 device)
                             .traffic)
              .total_ms;
      const double dense_ms = model.Estimate(DenseGemmKernel::Analyze(shape).traffic).total_ms;
      EXPECT_GT(samoyeds_ms, 0.0) << device.name << " " << m.name;
      EXPECT_LT(samoyeds_ms, dense_ms) << device.name << " " << m.name;
    }
  }
}

}  // namespace
}  // namespace samoyeds
