// samoyeds_cli exit-code contract: 0 success, 1 runtime failure (filesystem,
// undrained engine), 2 usage error (unknown command/flag or bad value) — and
// usage errors name the offending flag on stderr.
//
// The binary path arrives via SAMOYEDS_CLI_PATH (set by CMake to the
// samoyeds_cli target's output file).

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "tests/test_util.h"

#ifndef SAMOYEDS_CLI_PATH
#define SAMOYEDS_CLI_PATH ""
#endif

namespace samoyeds {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

CliResult RunCli(const std::string& args) {
  CliResult result;
  const std::string cmd = std::string("\"") + SAMOYEDS_CLI_PATH + "\" " + args + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return result;
  }
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  const int rc = pclose(pipe);
  result.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return result;
}

bool CliAvailable() {
  const std::string path = SAMOYEDS_CLI_PATH;
  if (path.empty()) {
    return false;
  }
  std::ifstream f(path);
  return f.good();
}

#define REQUIRE_CLI()                                              \
  if (!CliAvailable()) {                                           \
    GTEST_SKIP() << "samoyeds_cli binary not found at '"           \
                 << SAMOYEDS_CLI_PATH << "'";                      \
  }

TEST(CliTest, UsageErrorsExitTwoAndNameTheOffendingFlag) {
  REQUIRE_CLI();

  const CliResult unknown_flag = RunCli("serve tiny synthetic:2 --bogus=3");
  EXPECT_EQ(unknown_flag.exit_code, 2) << unknown_flag.output;
  EXPECT_NE(unknown_flag.output.find("--bogus"), std::string::npos) << unknown_flag.output;

  const CliResult bad_value = RunCli("serve tiny synthetic:2 --deadline-steps=abc");
  EXPECT_EQ(bad_value.exit_code, 2) << bad_value.output;
  EXPECT_NE(bad_value.output.find("--deadline-steps"), std::string::npos) << bad_value.output;

  const CliResult bad_schedule = RunCli("serve tiny synthetic:2 --faults=bogus~0.5");
  EXPECT_EQ(bad_schedule.exit_code, 2) << bad_schedule.output;
  EXPECT_NE(bad_schedule.output.find("--faults"), std::string::npos) << bad_schedule.output;
  EXPECT_NE(bad_schedule.output.find("unknown fault point"), std::string::npos)
      << bad_schedule.output;

  const CliResult missing_args = RunCli("serve");
  EXPECT_EQ(missing_args.exit_code, 2) << missing_args.output;
  EXPECT_NE(missing_args.output.find("usage"), std::string::npos) << missing_args.output;

  const CliResult unknown_cmd = RunCli("frobnicate");
  EXPECT_EQ(unknown_cmd.exit_code, 2) << unknown_cmd.output;
  EXPECT_NE(unknown_cmd.output.find("unknown command"), std::string::npos)
      << unknown_cmd.output;
}

TEST(CliTest, KernelBackendFlagIsStrictlyParsed) {
  REQUIRE_CLI();

  const CliResult bad = RunCli("serve tiny synthetic:2 --kernel-backend=bogus");
  EXPECT_EQ(bad.exit_code, 2) << bad.output;
  EXPECT_NE(bad.output.find("--kernel-backend"), std::string::npos) << bad.output;

  // Case-sensitive on purpose: "AVX2" is not a backend name.
  const CliResult bad_case = RunCli("serve tiny synthetic:2 --kernel-backend=AVX2");
  EXPECT_EQ(bad_case.exit_code, 2) << bad_case.output;

  // scalar and auto are runnable everywhere; the run must succeed and the
  // report provenance must name the backend that actually executed.
  const CliResult scalar =
      RunCli("serve tiny synthetic:2 --rate=2 --budget=16 --kernel-backend=scalar");
  EXPECT_EQ(scalar.exit_code, 0) << scalar.output;
  EXPECT_NE(scalar.output.find("kernel backend: scalar"), std::string::npos)
      << scalar.output;

  const CliResult auto_backend =
      RunCli("serve tiny synthetic:2 --rate=2 --budget=16 --kernel-backend=auto");
  EXPECT_EQ(auto_backend.exit_code, 0) << auto_backend.output;
  EXPECT_NE(auto_backend.output.find("kernel backend: "), std::string::npos)
      << auto_backend.output;
}

TEST(CliTest, RuntimeFailuresExitOneNotTwo) {
  REQUIRE_CLI();
  // The flags are all valid; the filesystem is not. Exit 1, not 2.
  const CliResult result = RunCli(
      "serve tiny synthetic:2 --rate=2 --budget=16 "
      "--report-json=/nonexistent-dir-samoyeds-test/report.json");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("cannot write"), std::string::npos) << result.output;
}

TEST(CliTest, SuccessfulServeExitsZeroAndWritesWellFormedReport) {
  REQUIRE_CLI();
  const std::string report_path = ::testing::TempDir() + "samoyeds_cli_test_report.json";
  std::remove(report_path.c_str());

  const CliResult result =
      RunCli("serve tiny synthetic:3 --rate=2 --budget=16 --report-json=" + report_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("wrote " + report_path), std::string::npos) << result.output;

  std::ifstream f(report_path);
  ASSERT_TRUE(f.good()) << "report not written to " << report_path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string json = ss.str();
  EXPECT_TRUE(JsonParses(json));
  EXPECT_TRUE(HasJsonKey(json, "requests_finished"));
  EXPECT_TRUE(HasJsonKey(json, "injected_faults"));
  std::remove(report_path.c_str());
}

TEST(CliTest, ChaosFlagsRunEndToEnd) {
  REQUIRE_CLI();
  const std::string report_path = ::testing::TempDir() + "samoyeds_cli_chaos_report.json";
  std::remove(report_path.c_str());

  const CliResult result = RunCli(
      "serve tiny synthetic:8 --rate=4 --budget=24 --page-tokens=4 --max-pages=12 "
      "--preempt=1 --swap=1 --host-pages=32 "
      "--faults=kv-alloc~0.2,swap-corrupt~0.5 --fault-seed=5 "
      "--deadline-steps=200 --ingress-cap=16 --report-json=" + report_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;

  std::ifstream f(report_path);
  ASSERT_TRUE(f.good()) << "report not written to " << report_path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string json = ss.str();
  EXPECT_TRUE(JsonParses(json));
  double injected = 0.0;
  ASSERT_TRUE(FindJsonNumber(json, "injected_faults", &injected));
  EXPECT_GT(injected, 0.0);
  std::remove(report_path.c_str());
}

}  // namespace
}  // namespace samoyeds
