// The instrumented tiled executor must (1) agree numerically with the
// simple Run path and the dense reference, and (2) produce staging-byte
// counters that match SamoyedsKernel::Analyze's closed-form traffic.

#include <gtest/gtest.h>

#include "src/core/samoyeds_kernel.h"
#include "src/core/tiled_executor.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

SsmmConfig SmallExecCfg() {
  SsmmConfig cfg;
  cfg.mb = 64;
  cfg.nb = 32;
  cfg.kb = 32;
  cfg.mw = 32;  // 16 compressed rows at N/M = 1/2
  cfg.nw = 16;
  return cfg;
}

struct ExecCase {
  int64_t m, k, n, selected;
  int fn, fm, fv;
};

class TiledExecutorTest : public ::testing::TestWithParam<ExecCase> {};

TEST_P(TiledExecutorTest, MatchesSimpleRunExactly) {
  const ExecCase c = GetParam();
  Rng rng(301);
  const MatrixF w = RandomBf16Matrix(rng, c.m, c.k);
  const MatrixF b = RandomBf16Matrix(rng, c.k, c.n);
  const Selection sel = RandomSelection(rng, c.n, c.selected);
  const SamoyedsConfig fmt{c.fn, c.fm, c.fv};
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, fmt);

  SsmmConfig cfg = SmallExecCfg();
  if (fmt.n * cfg.mw % (fmt.m * 16) != 0) {
    cfg.mw = 16 * fmt.m / fmt.n;  // keep the warp tile mma-aligned
    cfg.mb = std::max(cfg.mb, cfg.mw);
  }
  TileTrace trace;
  const MatrixF tiled = TiledSsmmExecutor::Run(enc, b, sel, cfg, &trace);
  const MatrixF simple = SamoyedsKernel::Run(enc, b, sel);
  ASSERT_EQ(tiled.rows(), simple.rows());
  ASSERT_EQ(tiled.cols(), simple.cols());
  // Same MmaSp tiles in a different traversal order; fp32 accumulation of
  // identical partial sums per (window, row, col) — results match to
  // round-off of the per-window accumulation order, which is identical.
  EXPECT_LE(MaxAbsDiff(tiled, simple), 1e-4f);
  EXPECT_GT(trace.mma_calls, 0);
  EXPECT_GT(trace.window_shuffles, 0);
}

TEST_P(TiledExecutorTest, MatchesDenseReference) {
  const ExecCase c = GetParam();
  Rng rng(302);
  const MatrixF w = RandomBf16Matrix(rng, c.m, c.k);
  const MatrixF b = RandomBf16Matrix(rng, c.k, c.n);
  const Selection sel = RandomSelection(rng, c.n, c.selected);
  const SamoyedsConfig fmt{c.fn, c.fm, c.fv};
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, fmt);
  SsmmConfig cfg = SmallExecCfg();
  if (fmt.n * cfg.mw % (fmt.m * 16) != 0) {
    cfg.mw = 16 * fmt.m / fmt.n;
    cfg.mb = std::max(cfg.mb, cfg.mw);
  }
  const MatrixF got = TiledSsmmExecutor::Run(enc, b, sel, cfg, nullptr);
  const MatrixF expect = GemmRef(enc.ToDense(), GatherColumns(b, sel));
  EXPECT_LE(MaxAbsDiff(got, expect), 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TiledExecutorTest,
                         ::testing::Values(ExecCase{64, 64, 32, 32, 1, 2, 32},
                                           ExecCase{64, 128, 40, 24, 1, 2, 32},
                                           ExecCase{128, 96, 64, 33, 1, 2, 32},
                                           ExecCase{128, 128, 48, 17, 2, 4, 32},
                                           ExecCase{64, 128, 32, 9, 1, 2, 64},
                                           ExecCase{96, 64, 50, 50, 1, 2, 32}));

TEST(TiledExecutorTest2, PackedAndUnpackedMetadataAgree) {
  Rng rng(303);
  const SamoyedsConfig fmt{1, 2, 32};
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(RandomBf16Matrix(rng, 64, 128), fmt);
  const MatrixF b = RandomBf16Matrix(rng, 128, 24);
  const Selection sel = Selection::All(24);
  SsmmConfig packed = SmallExecCfg();
  SsmmConfig naive = packed;
  naive.packed_metadata = false;
  const MatrixF y_packed = TiledSsmmExecutor::Run(enc, b, sel, packed, nullptr);
  const MatrixF y_naive = TiledSsmmExecutor::Run(enc, b, sel, naive, nullptr);
  EXPECT_TRUE(y_packed == y_naive);  // layout is a pure permutation
}

// The staging counters must reproduce Analyze's closed-form A/B traffic on
// exactly tileable problems.
TEST(TiledExecutorTest2, TraceMatchesAnalyzeTraffic) {
  Rng rng(304);
  const SamoyedsConfig fmt{1, 2, 32};
  const SsmmConfig cfg = SmallExecCfg();
  const int64_t m = 128;   // 2 block rows of mb=64
  const int64_t k = 128;   // 4 k-steps
  const int64_t n = 64;    // 2 block cols of nb=32
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(RandomBf16Matrix(rng, m, k), fmt);
  const MatrixF b = RandomBf16Matrix(rng, k, n);
  const Selection sel = Selection::All(n);

  TileTrace trace;
  TiledSsmmExecutor::Run(enc, b, sel, cfg, &trace);
  const KernelProfile p = SamoyedsKernel::Analyze({m, k, n}, n, fmt, cfg);

  // A-side: data bytes and packed metadata bytes.
  const double a_rows = m * 0.5;
  EXPECT_DOUBLE_EQ(trace.a_data_bytes, a_rows * (k / 2.0) * 2.0 * (n / cfg.nb));
  EXPECT_DOUBLE_EQ(trace.meta_bytes, a_rows * (k / 2.0) * 0.25 * (n / cfg.nb));
  // B-side: one kb x nb panel per block per k-step.
  EXPECT_DOUBLE_EQ(trace.b_bytes, static_cast<double>(k) * n * 2.0 * (m / cfg.mb));
  // Output: one compressed mb x nb tile per block.
  EXPECT_DOUBLE_EQ(trace.c_write_bytes, static_cast<double>(m) * n * 2.0);
  // Cross-check against the closed-form Analyze (which uses the same
  // formulas plus index/SEL bytes).
  EXPECT_NEAR(trace.a_data_bytes + trace.meta_bytes,
              p.traffic.gmem_read_bytes -
                  (trace.b_bytes +
                   a_rows * (static_cast<double>(k) / fmt.v) * (n / cfg.nb) +  // indices
                   static_cast<double>(n) * 4.0 * (m / cfg.mb)),               // SEL words
              1e-6);
  EXPECT_DOUBLE_EQ(trace.c_write_bytes, p.traffic.gmem_write_bytes);
  // mma call count: every block runs (cr_per_block/16)*(nb/8) tiles per step.
  const int64_t blocks = (m / cfg.mb) * (n / cfg.nb);
  EXPECT_EQ(trace.mma_calls, blocks * (k / cfg.kb) * (cfg.mb / 2 / 16) * (cfg.nb / 8));
  EXPECT_EQ(trace.thread_blocks, blocks);
  // One shuffle per window per block.
  EXPECT_EQ(trace.window_shuffles, blocks * (k / fmt.v));
}

TEST(TiledExecutorTest2, WindowShufflesCountWindows) {
  Rng rng(305);
  const SamoyedsConfig fmt{1, 2, 64};  // 2 k-steps per window
  const SsmmConfig cfg = SmallExecCfg();
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(RandomBf16Matrix(rng, 64, 256), fmt);
  const MatrixF b = RandomBf16Matrix(rng, 256, 32);
  TileTrace trace;
  TiledSsmmExecutor::Run(enc, b, Selection::All(32), cfg, &trace);
  EXPECT_EQ(trace.window_shuffles, (256 / 64) * trace.thread_blocks);
}

}  // namespace
}  // namespace samoyeds
