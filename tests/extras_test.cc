// Tests for the extension features: generic N:M format, nmSPARSE-like
// baseline kernel, the SsmmConfig autotuner, and binary serialization.

#include <sstream>

#include <gtest/gtest.h>

#include "src/core/autotune.h"
#include "src/formats/nm24.h"
#include "src/formats/nm_generic.h"
#include "src/formats/serialization.h"
#include "src/kernels/nmsparse_spmm.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

int64_t CountNonZeros(const MatrixF& m) {
  int64_t nnz = 0;
  for (float v : m.flat()) {
    nnz += v != 0.0f;
  }
  return nnz;
}

// ------------------------------------------------------------- generic N:M

struct NmParam {
  int n, m;
};

class NmGenericTest : public ::testing::TestWithParam<NmParam> {};

TEST_P(NmGenericTest, RoundTripAndDensity) {
  const auto [n, m] = GetParam();
  const NmConfig cfg{n, m};
  ASSERT_TRUE(cfg.IsValid());
  Rng rng(101);
  const MatrixF dense = rng.GaussianMatrix(16, m * 8);
  const NmMatrix enc = NmMatrix::Encode(dense, cfg);
  EXPECT_TRUE(enc.OffsetsOrdered());
  const MatrixF back = enc.ToDense();
  EXPECT_NEAR(static_cast<double>(CountNonZeros(back)) / back.size(), cfg.density(), 1e-9);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      if (back(r, c) != 0.0f) {
        EXPECT_FLOAT_EQ(back(r, c), dense(r, c));
      }
    }
  }
}

TEST_P(NmGenericTest, MaskMatchesEncodeDecode) {
  const auto [n, m] = GetParam();
  const NmConfig cfg{n, m};
  Rng rng(102);
  MatrixF dense = rng.GaussianMatrix(8, m * 4);
  MatrixF masked = dense;
  ApplyNmMask(masked, cfg);
  EXPECT_TRUE(NmMatrix::Encode(dense, cfg).ToDense() == masked);
}

INSTANTIATE_TEST_SUITE_P(Ratios, NmGenericTest,
                         ::testing::Values(NmParam{1, 4}, NmParam{2, 4}, NmParam{2, 8},
                                           NmParam{1, 2}, NmParam{4, 8}, NmParam{3, 4}));

TEST(NmGenericTest2, TwoFourAgreesWithNm24) {
  // N:M with (2,4) must select exactly what the dedicated 2:4 encoder does.
  Rng rng(103);
  MatrixF dense = rng.GaussianMatrix(8, 32);
  MatrixF via_nm = dense;
  ApplyNmMask(via_nm, NmConfig{2, 4});
  const MatrixF via_24 = [&] {
    MatrixF m = dense;
    ApplyTwoFourMask(m);
    return m;
  }();
  EXPECT_TRUE(via_nm == via_24);
}

// ----------------------------------------------------------- nmSPARSE-like

TEST(NmSparseKernelTest, RunMatchesMaskedReference) {
  Rng rng(104);
  const NmConfig cfg{1, 4};
  const MatrixF w = rng.GaussianMatrix(24, 32);
  const MatrixF b = rng.GaussianMatrix(32, 12);
  const NmMatrix enc = NmMatrix::Encode(w, cfg);
  MatrixF masked = w;
  ApplyNmMask(masked, cfg);
  EXPECT_LE(MaxAbsDiff(NmSparseSpmmKernel::Run(enc, b), GemmRef(masked, b)), 1e-4f);
}

TEST(NmSparseKernelTest, CudaCoreOnly) {
  const KernelProfile p = NmSparseSpmmKernel::Analyze({2048, 2048, 2048}, NmConfig{1, 4});
  EXPECT_DOUBLE_EQ(p.traffic.mma_flops, 0.0);
  EXPECT_GT(p.traffic.simd_flops, 0.0);
  EXPECT_DOUBLE_EQ(p.traffic.gmem_uncoalesced_bytes, 0.0);  // aligned by design
}

TEST(NmSparseKernelTest, BeatsSputnikLosesToSamoyeds) {
  // §3.3's landscape: structured CUDA-core kernels beat unstructured ones
  // but lose to SpTC-based kernels. (Checked via simulated time elsewhere;
  // here: executed arithmetic ordering at equal sparsity.)
  const GemmShape shape{4096, 4096, 4096};
  const KernelProfile nm = NmSparseSpmmKernel::Analyze(shape, NmConfig{1, 4});
  EXPECT_NEAR(nm.traffic.simd_flops / (2.0 * 4096.0 * 4096.0 * 4096.0), 0.25, 0.01);
}

// ----------------------------------------------------------------- autotune

TEST(AutotuneTest, EnumerationRespectsConstraints) {
  const auto configs = EnumerateSsmmConfigs(DefaultDevice(), SamoyedsConfig{1, 2, 32});
  ASSERT_FALSE(configs.empty());
  for (const auto& c : configs) {
    EXPECT_EQ(c.mw % 16, 0);
    EXPECT_EQ(c.nw % 8, 0);
    EXPECT_EQ(c.mb % c.mw, 0);
    EXPECT_EQ(c.nb % c.nw, 0);
    EXPECT_GE(c.stages, 2);
    EXPECT_LE(c.stages, 4);
  }
}

TEST(AutotuneTest, NeverWorseThanDefault) {
  const SamoyedsConfig fmt{1, 2, 32};
  for (const GemmShape& shape :
       {GemmShape{512, 512, 512}, GemmShape{4096, 4096, 4096}, GemmShape{14336, 4096, 1024}}) {
    const AutotuneResult r = AutotuneSsmm(shape, shape.n, fmt, DefaultDevice());
    EXPECT_LE(r.simulated_ms, r.default_ms * 1.0001);
    EXPECT_GE(r.speedup_over_default(), 0.999);
  }
}

TEST(AutotuneTest, SmallProblemsPreferSmallTiles) {
  const SamoyedsConfig fmt{1, 2, 32};
  const AutotuneResult small = AutotuneSsmm({256, 1024, 256}, 256, fmt, DefaultDevice());
  // A 256x256 output with default 128x64 tiles has only 8 blocks; the tuner
  // must pick something finer-grained.
  EXPECT_LT(small.config.mb * small.config.nb, 128 * 64);
}

TEST(AutotuneTest, DeviceChangesChoice) {
  const SamoyedsConfig fmt{1, 2, 32};
  const GemmShape shape{4096, 4096, 4096};
  const AutotuneResult a100 = AutotuneSsmm(shape, shape.n, fmt, GetDevice(DeviceModel::kA100_40G));
  const AutotuneResult native = AutotuneSsmm(shape, shape.n, fmt, DefaultDevice());
  // Not asserting which specific config wins — only that tuning helps on
  // both and the tuner explores real alternatives.
  EXPECT_GT(a100.speedup_over_default(), 0.999);
  EXPECT_GT(native.speedup_over_default(), 0.999);
}

// ------------------------------------------------------------ serialization

TEST(SerializationTest, RoundTrip) {
  Rng rng(105);
  const MatrixF dense = rng.GaussianMatrix(64, 128);
  const SamoyedsMatrix original = SamoyedsMatrix::Encode(dense, SamoyedsConfig{2, 4, 32});
  std::stringstream stream;
  ASSERT_TRUE(SaveSamoyedsMatrix(original, stream));
  const auto loaded = LoadSamoyedsMatrix(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->data == original.data);
  EXPECT_TRUE(loaded->indices == original.indices);
  EXPECT_TRUE(loaded->meta == original.meta);
  EXPECT_TRUE(loaded->ToDense() == original.ToDense());
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream stream;
  stream << "not a samoyeds file";
  EXPECT_FALSE(LoadSamoyedsMatrix(stream).has_value());
}

TEST(SerializationTest, RejectsTruncated) {
  Rng rng(106);
  const MatrixF dense = rng.GaussianMatrix(32, 64);
  const SamoyedsMatrix original = SamoyedsMatrix::Encode(dense, SamoyedsConfig{1, 2, 32});
  std::stringstream full;
  ASSERT_TRUE(SaveSamoyedsMatrix(original, full));
  const std::string payload = full.str();
  std::stringstream truncated(payload.substr(0, payload.size() / 2));
  EXPECT_FALSE(LoadSamoyedsMatrix(truncated).has_value());
}

TEST(SerializationTest, RejectsCorruptedIndices) {
  Rng rng(107);
  const MatrixF dense = rng.GaussianMatrix(32, 64);
  SamoyedsMatrix original = SamoyedsMatrix::Encode(dense, SamoyedsConfig{1, 2, 32});
  original.indices(0, 0) = 99;  // out of range for M = 2
  std::stringstream stream;
  ASSERT_TRUE(SaveSamoyedsMatrix(original, stream));
  EXPECT_FALSE(LoadSamoyedsMatrix(stream).has_value());
}

TEST(SerializationTest, EmptyStreamFails) {
  std::stringstream stream;
  EXPECT_FALSE(LoadSamoyedsMatrix(stream).has_value());
}

}  // namespace
}  // namespace samoyeds
