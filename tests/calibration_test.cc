// Calibration regression tests: freeze the headline comparative ratios that
// EXPERIMENTS.md reports, so future changes to the traffic or timing models
// cannot silently drift the reproduced shapes. Bounds are deliberately
// loose — they encode "the paper's shape", not exact values.

#include <gtest/gtest.h>

#include "src/core/samoyeds_kernel.h"
#include "src/frameworks/layer_cost.h"
#include "src/kernels/cusparselt_spmm.h"
#include "src/kernels/dense_gemm.h"
#include "src/kernels/sputnik_spmm.h"
#include "src/kernels/venom_spmm.h"
#include "src/moe/memory_model.h"
#include "src/moe/model_configs.h"
#include "src/simgpu/timing_model.h"

namespace samoyeds {
namespace {

double Ms(const KernelProfile& p, const DeviceSpec& d = DefaultDevice()) {
  return TimingModel(d).Estimate(p.traffic).total_ms;
}

double SamoyedsMs(const GemmShape& s, int64_t sel, const DeviceSpec& d = DefaultDevice()) {
  return Ms(SamoyedsKernel::Analyze(s, sel, SamoyedsConfig{1, 2, 32}, SsmmConfig::Default(), d),
            d);
}

// Fig. 12 realistic: Samoyeds over VENOM between ~1.4x and ~2.6x, over
// Sputnik far above 20x, over cuBLAS/cuSPARSELt between 1.5x and 5x.
TEST(CalibrationTest, RealisticKernelRatios) {
  for (const auto& model : PaperModels()) {
    const GemmShape shape{model.intermediate, model.hidden, 4096};
    const double samoyeds = SamoyedsMs(shape, shape.n);
    const double venom = Ms(VenomSpmmKernel::Analyze(shape, VenomConfig{64, 2, 4}));
    const double dense = Ms(DenseGemmKernel::Analyze(shape));
    const double cusp = Ms(CusparseltSpmmKernel::Analyze(shape));
    const double sputnik = Ms(SputnikSpmmKernel::Analyze(shape, 0.25));
    EXPECT_GT(venom / samoyeds, 1.3) << model.name;
    EXPECT_LT(venom / samoyeds, 2.8) << model.name;
    EXPECT_GT(dense / samoyeds, 1.5) << model.name;
    EXPECT_LT(dense / samoyeds, 5.0) << model.name;
    EXPECT_GT(cusp / samoyeds, 1.5) << model.name;
    EXPECT_GT(sputnik / samoyeds, 20.0) << model.name;
  }
}

// Fig. 13 corner case: VENOM wins at m = 256.
TEST(CalibrationTest, VenomWinsAtTinyM) {
  const GemmShape shape{256, 4096, 4096};
  EXPECT_LT(Ms(VenomSpmmKernel::Analyze(shape, VenomConfig{64, 2, 4})),
            SamoyedsMs(shape, shape.n));
}

// Fig. 12: cuSPARSELt does not beat cuBLAS at LLM shapes (the paper's
// measured inversion of the nominal 2x).
TEST(CalibrationTest, CusparseltSlowerThanCublasAtLlmShapes) {
  for (const auto& model : PaperModels()) {
    const GemmShape shape{model.intermediate, model.hidden, 4096};
    EXPECT_GE(Ms(CusparseltSpmmKernel::Analyze(shape)),
              Ms(DenseGemmKernel::Analyze(shape)) * 0.95)
        << model.name;
  }
}

// Fig. 15: end-to-end speedup over Transformers within the reproduced band.
TEST(CalibrationTest, EndToEndSpeedupBand) {
  double sum = 0.0;
  int count = 0;
  for (const auto& model : PaperModels()) {
    const int64_t tokens = static_cast<int64_t>(model.default_seq) * model.default_batch;
    const auto counts = UniformTokensPerExpert(model, tokens);
    LayerCostOptions opts;
    opts.shared_experts_override = 0;
    opts.seq_len = model.default_seq;
    const double t =
        EstimateDecoderLayerCost(MoeFramework::kTransformers, model, counts, tokens, opts)
            .total_ms;
    const double s =
        EstimateDecoderLayerCost(MoeFramework::kSamoyeds, model, counts, tokens, opts).total_ms;
    sum += t / s;
    ++count;
  }
  const double avg = sum / count;
  EXPECT_GT(avg, 1.4);
  EXPECT_LT(avg, 3.0);
}

// Table 3: average max-batch boost near the paper's 4.41x, OOM structure.
TEST(CalibrationTest, MaxBatchBoostBand) {
  const SamoyedsConfig fmt{1, 2, 32};
  double boost_sum = 0.0;
  int rows = 0;
  for (const auto& model : PaperModels()) {
    const int64_t seq = model.name == "OpenMoE-34B" ? 2048
                        : model.num_experts >= 32 && model.intermediate <= 4096 ? 4096
                                                                                : 1024;
    int64_t best_baseline = 0;
    for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                            MoeFramework::kVllmDs}) {
      if (FrameworkSupportsModel(fw, model)) {
        best_baseline = std::max(
            best_baseline, EstimateFootprint(model, fw, fmt, DefaultDevice()).MaxBatch(seq));
      }
    }
    const int64_t samoyeds =
        EstimateFootprint(model, MoeFramework::kSamoyeds, fmt, DefaultDevice()).MaxBatch(seq);
    boost_sum += static_cast<double>(samoyeds) / std::max<int64_t>(1, best_baseline);
    ++rows;
  }
  const double avg = boost_sum / rows;
  EXPECT_GT(avg, 3.0);
  EXPECT_LT(avg, 7.0);
}

// Fig. 18: Samoyeds' porting retention stays far above VENOM's on every
// non-native device.
TEST(CalibrationTest, PortabilityRetentionOrdering) {
  const GemmShape shape{4096, 4096, 4096};
  const double native_s = Ms(CusparseltSpmmKernel::Analyze(shape)) / SamoyedsMs(shape, shape.n);
  const double native_v = Ms(CusparseltSpmmKernel::Analyze(shape)) /
                          Ms(VenomSpmmKernel::Analyze(shape, VenomConfig{64, 2, 4}));
  for (DeviceModel dm : {DeviceModel::kRtx3090, DeviceModel::kRtx4090, DeviceModel::kA100_40G}) {
    const DeviceSpec& d = GetDevice(dm);
    const double cusp = Ms(CusparseltSpmmKernel::Analyze(shape), d);
    const double s_ratio = cusp / SamoyedsMs(shape, shape.n, d);
    const double v_ratio = cusp / Ms(VenomSpmmKernel::Analyze(shape, VenomConfig{64, 2, 4}, d), d);
    const double s_ret = (s_ratio - 1.0) / (native_s - 1.0);
    const double v_ret = (v_ratio - 1.0) / (native_v - 1.0);
    EXPECT_GT(s_ret, v_ret + 0.2) << d.name;
    EXPECT_GT(s_ret, 0.3) << d.name;
  }
}

}  // namespace
}  // namespace samoyeds
