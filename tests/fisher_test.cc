// Diagonal-Fisher (WoodFisher-style) pruning scores and scored structural
// pruning, plus the decode-phase cost extension.

#include <gtest/gtest.h>

#include "src/frameworks/layer_cost.h"
#include "src/moe/model_configs.h"
#include "src/pruning/fisher.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

TEST(FisherTest, EstimateShapesMatchWeights) {
  Rng rng(801);
  const Mlp mlp(rng, {8, 16, 4});
  const ClassificationDataset data = ClassificationDataset::Make(rng, 128, 8, 4);
  const auto fisher = EstimateDiagonalFisher(mlp, data, 128);
  ASSERT_EQ(fisher.size(), 2u);
  EXPECT_EQ(fisher[0].rows(), 16);
  EXPECT_EQ(fisher[0].cols(), 8);
  EXPECT_EQ(fisher[1].rows(), 4);
  EXPECT_EQ(fisher[1].cols(), 16);
  for (const auto& f : fisher) {
    for (float v : f.flat()) {
      EXPECT_GE(v, 0.0f);  // squared gradients
    }
  }
}

TEST(FisherTest, FisherIsNonTrivial) {
  Rng rng(802);
  const Mlp mlp(rng, {8, 32, 4});
  const ClassificationDataset data = ClassificationDataset::Make(rng, 256, 8, 4, 0.4f);
  const auto fisher = EstimateDiagonalFisher(mlp, data, 256);
  double sum = 0.0;
  double max_v = 0.0;
  for (float v : fisher[0].flat()) {
    sum += v;
    max_v = std::max<double>(max_v, v);
  }
  EXPECT_GT(sum, 0.0);
  // Curvature concentrates: the max must dominate the mean.
  EXPECT_GT(max_v, sum / static_cast<double>(fisher[0].size()) * 4.0);
}

TEST(FisherTest, SaliencyCombinesWeightAndCurvature) {
  MatrixF w(1, 4);
  MatrixF f(1, 4);
  w(0, 0) = 2.0f;  f(0, 0) = 1.0f;   // score 4
  w(0, 1) = 10.0f; f(0, 1) = 0.0f;   // big weight, zero curvature -> 0
  w(0, 2) = 0.5f;  f(0, 2) = 100.0f; // small weight, hot curvature -> 25
  w(0, 3) = 0.0f;  f(0, 3) = 9.0f;   // zero weight -> 0
  const MatrixF s = FisherSaliency(w, f);
  EXPECT_FLOAT_EQ(s(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(s(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(s(0, 2), 25.0f);
  EXPECT_FLOAT_EQ(s(0, 3), 0.0f);
}

TEST(FisherTest, ScoredPruningKeepsHighScoreSurvivors) {
  Rng rng(803);
  MatrixF w = rng.GaussianMatrix(32, 64);
  // Scores favor the left half of every row.
  MatrixF scores(32, 64);
  for (int64_t r = 0; r < 32; ++r) {
    for (int64_t c = 0; c < 64; ++c) {
      scores(r, c) = c < 32 ? 10.0f : 0.1f;
    }
  }
  PruneSpec spec;
  spec.method = PruneMethod::kUnstructured;
  spec.sparsity = 0.5;
  ApplyScoredPruning(w, scores, spec);
  int64_t right_survivors = 0;
  for (int64_t r = 0; r < 32; ++r) {
    for (int64_t c = 32; c < 64; ++c) {
      right_survivors += w(r, c) != 0.0f;
    }
  }
  EXPECT_EQ(right_survivors, 0);
  EXPECT_NEAR(MeasuredSparsity(w), 0.5, 0.02);
}

TEST(FisherTest, ScoredStructuralPruningMatchesTargetSparsity) {
  Rng rng(804);
  for (PruneMethod method : {PruneMethod::kSamoyeds, PruneMethod::kVenom}) {
    MatrixF w = rng.GaussianMatrix(128, 128);
    const MatrixF scores = rng.UniformMatrix(128, 128, 0.0f, 1.0f);
    PruneSpec spec;
    spec.method = method;
    spec.samoyeds_config = SamoyedsConfig{1, 2, 32};
    spec.venom_config = VenomConfig{64, 2, 4};
    ApplyScoredPruning(w, scores, spec);
    EXPECT_NEAR(MeasuredSparsity(w), 0.75, 1e-3) << PruneMethodName(method);
  }
}

TEST(FisherTest, ScoredEqualsMagnitudeWhenScoresAreSquares) {
  // With scores = w^2 (uniform curvature), scored pruning must reproduce
  // plain magnitude pruning exactly.
  Rng rng(805);
  MatrixF w = rng.GaussianMatrix(64, 64);
  MatrixF magnitude_pruned = w;
  PruneSpec spec;
  spec.method = PruneMethod::kSamoyeds;
  spec.samoyeds_config = SamoyedsConfig{1, 2, 32};
  ApplyPruning(magnitude_pruned, spec);

  MatrixF scores(64, 64);
  for (int64_t i = 0; i < scores.size(); ++i) {
    const float v = w.flat()[static_cast<size_t>(i)];
    scores.flat()[static_cast<size_t>(i)] = v * v;
  }
  MatrixF scored = w;
  ApplyScoredPruning(scored, scores, spec);
  EXPECT_TRUE(scored == magnitude_pruned);
}

// --------------------------------------------------------- decode phase

TEST(DecodePhaseTest, SamoyedsFastestAtSmallBatch) {
  LayerCostOptions opts;
  opts.shared_experts_override = 0;
  const auto& model = ModelByName("Mixtral-8x7B");
  const double t =
      EstimateDecodeStepCost(MoeFramework::kTransformers, model, 8, 2048, opts).total_ms;
  const double s =
      EstimateDecodeStepCost(MoeFramework::kSamoyeds, model, 8, 2048, opts).total_ms;
  EXPECT_LT(s, t);
}

TEST(DecodePhaseTest, CostGrowsWithBatchAndKv) {
  LayerCostOptions opts;
  opts.shared_experts_override = 0;
  const auto& model = ModelByName("MiniCPM-MoE");
  const double base =
      EstimateDecodeStepCost(MoeFramework::kSamoyeds, model, 8, 1024, opts).total_ms;
  EXPECT_GT(EstimateDecodeStepCost(MoeFramework::kSamoyeds, model, 64, 1024, opts).total_ms,
            base);
  EXPECT_GT(EstimateDecodeStepCost(MoeFramework::kSamoyeds, model, 8, 16384, opts).attention_ms,
            EstimateDecodeStepCost(MoeFramework::kSamoyeds, model, 8, 1024, opts).attention_ms);
}

}  // namespace
}  // namespace samoyeds
