// Streaming session API + chunked prefill: the engine-level guarantees the
// redesigned request surface makes —
//
//   * prompts longer than the iteration token budget (rejected without
//     chunking) complete under chunk_tokens, with outputs bit-identical to
//     the one-shot prefill path for every chunk size x shard count x thread
//     count (causal prefix caching makes chunking lossless);
//   * rows streamed through the session surface (OnRows callback or the
//     NewRows polling cursor) reproduce RequestResult::outputs exactly, in
//     order, without duplication — including across preemption;
//   * Cancel() tears a session down at any lifecycle stage and returns every
//     KV page to the allocator's free list;
//   * max_new_tokens is a stop condition: surplus input rows are ignored.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "src/moe/decoder_layer.h"
#include "src/serving/engine.h"
#include "src/serving/scheduler.h"
#include "src/serving/trace.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace serving {
namespace {

MoeModelConfig TinyConfig() {
  MoeModelConfig cfg;
  cfg.name = "tiny";
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  cfg.shared_experts = 0;
  return cfg;
}

std::vector<SamoyedsDecoderLayerWeights> BuildTinyModel(Rng& rng, int layers,
                                                        const MoeModelConfig& cfg) {
  const SamoyedsConfig fmt{1, 2, 32};
  std::vector<SamoyedsDecoderLayerWeights> model;
  for (int l = 0; l < layers; ++l) {
    model.push_back(
        SamoyedsDecoderLayerWeights::Encode(DecoderLayerWeights::Random(rng, cfg), fmt));
  }
  return model;
}

Request MakeTestRequest(Rng& rng, int64_t id, int64_t arrival, int64_t prompt, int64_t decode,
                        int64_t hidden) {
  TraceEntry e{arrival, prompt, decode};
  return MakeRequest(rng, id, e, hidden);
}

EngineConfig StreamEngineConfig(int threads, int64_t budget, int64_t chunk_tokens,
                                int shards = 1) {
  EngineConfig cfg;
  cfg.heads = 4;
  cfg.top_k = 2;
  cfg.threads = threads;
  cfg.shards = shards;
  cfg.scheduler.policy = SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = budget;
  cfg.scheduler.chunk_tokens = chunk_tokens;
  cfg.scheduler.max_resident_tokens = 1 << 20;
  return cfg;
}

// Ordered record of one session's streamed deltas.
struct StreamLog {
  std::vector<int64_t> begins;
  std::vector<MatrixF> rows;
  int64_t finished_deltas = 0;
};

// Submits the shared 3-request workload (one long prompt + two short ones)
// under `cfg`, streaming through callbacks, and returns outputs in
// submission order plus the per-session logs.
struct WorkloadRun {
  std::vector<MatrixF> outputs;
  std::map<int64_t, StreamLog> streams;
};

WorkloadRun RunWorkload(const std::vector<SamoyedsDecoderLayerWeights>& model,
                        const EngineConfig& cfg, int64_t long_prompt) {
  ServingEngine engine(model, cfg);
  WorkloadRun run;
  OnRowsCallback on_rows = [&run](const StreamDelta& delta) {
    StreamLog& log = run.streams[delta.session_id];
    log.begins.push_back(delta.position_begin);
    log.rows.push_back(delta.rows);
    log.finished_deltas += delta.finished ? 1 : 0;
  };
  Rng rng(301);  // identical workload for every configuration
  EXPECT_TRUE(engine.Submit(
      MakeTestRequest(rng, 0, /*arrival=*/0, long_prompt, /*decode=*/5, engine.hidden()),
      on_rows));
  EXPECT_TRUE(engine.Submit(MakeTestRequest(rng, 1, 0, 6, 4, engine.hidden()), on_rows));
  EXPECT_TRUE(engine.Submit(MakeTestRequest(rng, 2, 2, 5, 3, engine.hidden()), on_rows));
  engine.RunUntilDrained(/*max_steps=*/10000);
  for (int64_t id = 0; id < 3; ++id) {
    EXPECT_EQ(engine.Status(id), RequestStatus::kFinished) << "request " << id;
    const RequestResult* result = engine.Result(id);
    EXPECT_NE(result, nullptr);
    run.outputs.push_back(result != nullptr ? result->outputs : MatrixF(0, 0));
  }
  return run;
}

// ---- Chunked prefill: long prompts, bit-identical outputs -------------------

TEST(ChunkedPrefillTest, LongPromptCompletesAndMatchesOneShotPrefillBitwise) {
  Rng seed_rng(303);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, /*layers=*/2, cfg);
  constexpr int64_t kBudget = 16;
  constexpr int64_t kLongPrompt = 40;  // 2.5x the chunked runs' budget

  // Without chunking, the long prompt cannot be served under kBudget.
  {
    ServingEngine engine(model, StreamEngineConfig(2, kBudget, /*chunk_tokens=*/0));
    Rng rng(301);
    ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 0, 0, kLongPrompt, 5, cfg.hidden)));
    engine.RunUntilDrained(1000);
    ASSERT_EQ(engine.Status(0), RequestStatus::kRejected);
    ASSERT_NE(engine.Result(0), nullptr);
    EXPECT_NE(engine.Result(0)->reason.find("token budget"), std::string::npos);
  }

  // One-shot baseline: a budget large enough to prefill in one iteration.
  const WorkloadRun baseline =
      RunWorkload(model, StreamEngineConfig(2, /*budget=*/64, /*chunk_tokens=*/0), kLongPrompt);
  ASSERT_EQ(baseline.outputs.size(), 3u);
  ASSERT_EQ(baseline.outputs[0].rows(), kLongPrompt + 5);

  // Chunked runs under the small budget: every chunk size x shard count x
  // thread count must reproduce the baseline bit for bit.
  for (int64_t chunk : {int64_t{1}, kBudget / 2, kBudget}) {
    for (int shards : {1, 2}) {
      for (int threads : {1, 8}) {
        const WorkloadRun run =
            RunWorkload(model, StreamEngineConfig(threads, kBudget, chunk, shards), kLongPrompt);
        ASSERT_EQ(run.outputs.size(), baseline.outputs.size());
        for (size_t i = 0; i < run.outputs.size(); ++i) {
          EXPECT_TRUE(run.outputs[i] == baseline.outputs[i])
              << "chunk=" << chunk << " shards=" << shards << " threads=" << threads
              << " request " << i;
        }
      }
    }
  }
}

TEST(ChunkedPrefillTest, ReportsChunkActivityAndPrefillSpansIterations) {
  Rng seed_rng(305);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 1, cfg);
  ServingEngine engine(model, StreamEngineConfig(2, /*budget=*/8, /*chunk_tokens=*/8));
  Rng rng(306);
  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 0, 0, /*prompt=*/30, /*decode=*/2,
                                            cfg.hidden)));
  engine.RunUntilDrained(1000);
  ASSERT_EQ(engine.Status(0), RequestStatus::kFinished);

  const ServingReport report = engine.Report();
  EXPECT_GT(report.prefill_chunk_slices, 0);
  EXPECT_EQ(report.chunked_prefill_requests, 1);
  const RequestMetrics rm = engine.metrics().requests().at(0);
  // 30 prompt rows in 8-row chunks: 4 prefill slices (8+8+8+6).
  EXPECT_EQ(rm.prefill_chunks, 4);
  // The first token is not ready until the final chunk lands: TTFT counts
  // the whole chunked prefill, measured from the streamed first row.
  EXPECT_GE(rm.first_output_step - rm.arrival_step + 1, 4);
  // Every step obeyed the tiny budget even while a 30-row prompt was in
  // flight.
  for (const StepMetrics& s : engine.metrics().steps()) {
    EXPECT_LE(s.batch_rows, 8);
  }
}

// ---- Streaming delivery -----------------------------------------------------

TEST(StreamingTest, CallbackDeltasReproduceResultOutputsExactly) {
  Rng seed_rng(307);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 2, cfg);
  const WorkloadRun run =
      RunWorkload(model, StreamEngineConfig(2, /*budget=*/16, /*chunk_tokens=*/4), /*long=*/24);

  for (int64_t id = 0; id < 3; ++id) {
    const auto it = run.streams.find(id);
    ASSERT_NE(it, run.streams.end()) << "session " << id << " never streamed";
    const StreamLog& log = it->second;
    EXPECT_EQ(log.finished_deltas, 1) << "exactly one terminal delta";

    // Deltas are contiguous from row 0 and concatenate to the result matrix
    // bit for bit.
    const MatrixF& expect = run.outputs[id];
    int64_t at = 0;
    for (size_t d = 0; d < log.rows.size(); ++d) {
      EXPECT_EQ(log.begins[d], at) << "session " << id << " delta " << d;
      for (int64_t r = 0; r < log.rows[d].rows(); ++r) {
        for (int64_t c = 0; c < expect.cols(); ++c) {
          ASSERT_EQ(log.rows[d](r, c), expect(at + r, c))
              << "session " << id << " row " << at + r;
        }
      }
      at += log.rows[d].rows();
    }
    EXPECT_EQ(at, expect.rows()) << "session " << id << " streamed everything";
  }
}

TEST(StreamingTest, NewRowsCursorDrainsIncrementally) {
  Rng seed_rng(309);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 1, cfg);
  ServingEngine engine(model, StreamEngineConfig(1, /*budget=*/8, /*chunk_tokens=*/4));
  Rng rng(310);
  SessionHandle session =
      engine.Submit(MakeTestRequest(rng, 0, 0, /*prompt=*/10, /*decode=*/3, cfg.hidden));
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.id(), 0);
  EXPECT_EQ(session.status(), RequestStatus::kQueued);
  EXPECT_EQ(session.available_rows(), 0);

  std::vector<float> streamed;
  int64_t drains_with_rows = 0;
  while (engine.Step()) {
    const int64_t avail = session.available_rows();
    const MatrixF rows = session.NewRows();
    ASSERT_EQ(rows.rows(), avail);
    drains_with_rows += rows.rows() > 0 ? 1 : 0;
    streamed.insert(streamed.end(), rows.data(), rows.data() + rows.size());
    EXPECT_EQ(session.available_rows(), 0);  // cursor advanced past everything
  }
  ASSERT_EQ(session.status(), RequestStatus::kFinished);
  // Rows arrived over several iterations, not in one terminal burst.
  EXPECT_GT(drains_with_rows, 2);

  const RequestResult* result = engine.Result(0);
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(static_cast<int64_t>(streamed.size()), result->outputs.size());
  const MatrixF streamed_matrix =
      MatrixF::FromRowMajor(result->outputs.rows(), result->outputs.cols(), streamed);
  EXPECT_TRUE(streamed_matrix == result->outputs);
  EXPECT_EQ(session.delivered_rows(), result->outputs.rows());
  // Nothing left after the terminal drain.
  EXPECT_EQ(session.NewRows().rows(), 0);
}

TEST(StreamingTest, StreamSurvivesPreemptionWithoutDuplicatingRows) {
  Rng seed_rng(311);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 2, cfg);
  EngineConfig engine_cfg = StreamEngineConfig(2, /*budget=*/40, /*chunk_tokens=*/0);
  engine_cfg.scheduler.page_tokens = 4;
  engine_cfg.scheduler.max_pages = 8;
  engine_cfg.scheduler.preempt = true;
  ServingEngine engine(model, engine_cfg);

  std::map<int64_t, StreamLog> streams;
  OnRowsCallback on_rows = [&streams](const StreamDelta& delta) {
    StreamLog& log = streams[delta.session_id];
    log.begins.push_back(delta.position_begin);
    log.rows.push_back(delta.rows);
    log.finished_deltas += delta.finished ? 1 : 0;
  };
  Rng rng(312);
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, i, 0, 8, 8, cfg.hidden), on_rows));
  }
  engine.RunUntilDrained(10000);
  ASSERT_FALSE(engine.metrics().preemption_log().empty()) << "workload must force evictions";

  for (int64_t id = 0; id < 4; ++id) {
    ASSERT_EQ(engine.Status(id), RequestStatus::kFinished) << "request " << id;
    const MatrixF& expect = engine.Result(id)->outputs;
    const StreamLog& log = streams.at(id);
    // Even across evict + recompute, positions advance contiguously — rows
    // delivered before the eviction are never re-streamed.
    int64_t at = 0;
    for (size_t d = 0; d < log.rows.size(); ++d) {
      ASSERT_EQ(log.begins[d], at) << "session " << id << " delta " << d;
      for (int64_t r = 0; r < log.rows[d].rows(); ++r) {
        for (int64_t c = 0; c < expect.cols(); ++c) {
          ASSERT_EQ(log.rows[d](r, c), expect(at + r, c))
              << "session " << id << " row " << at + r;
        }
      }
      at += log.rows[d].rows();
    }
    EXPECT_EQ(at, expect.rows());
    EXPECT_EQ(log.finished_deltas, 1);
  }
}

// ---- Cancellation -----------------------------------------------------------

TEST(CancelTest, MidPrefillCancelFreesEveryPage) {
  Rng seed_rng(313);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 1, cfg);
  EngineConfig engine_cfg = StreamEngineConfig(1, /*budget=*/8, /*chunk_tokens=*/4);
  engine_cfg.scheduler.page_tokens = 4;
  engine_cfg.scheduler.max_pages = 32;
  ServingEngine engine(model, engine_cfg);

  const KvPageAllocator& alloc = engine.kv_cache().allocator();
  const int64_t pages_before = alloc.used_pages();
  const int64_t free_before = alloc.free_pages();
  ASSERT_EQ(pages_before, 0);

  Rng rng(314);
  SessionHandle session =
      engine.Submit(MakeTestRequest(rng, 0, 0, /*prompt=*/24, /*decode=*/4, cfg.hidden));
  ASSERT_TRUE(session.ok());

  // Two 4-row chunks in: mid-prefill, pages held, no first token yet.
  ASSERT_TRUE(engine.Step());
  ASSERT_TRUE(engine.Step());
  ASSERT_EQ(session.status(), RequestStatus::kRunning);
  EXPECT_GT(alloc.used_pages(), 0);
  EXPECT_EQ(session.available_rows(), 8);

  ASSERT_TRUE(session.Cancel());
  EXPECT_EQ(session.status(), RequestStatus::kCancelled);
  // The allocator's free list is back to its pre-submit state.
  EXPECT_EQ(alloc.used_pages(), pages_before);
  EXPECT_EQ(alloc.free_pages(), free_before);
  EXPECT_EQ(alloc.num_sequences(), 0);

  // The partial rows survive as the terminal result and drain via the cursor.
  const RequestResult* result = engine.Result(0);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->status, RequestStatus::kCancelled);
  EXPECT_EQ(result->outputs.rows(), 8);
  EXPECT_EQ(session.NewRows().rows(), 8);

  // Terminal: a second cancel refuses, and the engine drains cleanly.
  EXPECT_FALSE(session.Cancel());
  engine.RunUntilDrained(100);
  EXPECT_EQ(engine.Report().requests_cancelled, 1);
  EXPECT_EQ(engine.Report().requests_finished, 0);
}

TEST(CancelTest, CancelFiresTheTerminalDeltaAndCallbacksMayReenterTheEngine) {
  Rng seed_rng(321);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 1, cfg);
  ServingEngine engine(model, StreamEngineConfig(1, /*budget=*/16, /*chunk_tokens=*/0));

  // Session 1's deltas, recorded by its own callback; the terminal one must
  // fire even though the session is cancelled, not finished.
  std::vector<int64_t> victim_rows;
  int victim_terminal = 0;
  OnRowsCallback victim_cb = [&](const StreamDelta& delta) {
    victim_rows.push_back(delta.rows.rows());
    victim_terminal += delta.finished ? 1 : 0;
  };
  // Session 0's callback reentrantly cancels session 1 from inside Step() —
  // while session 1's own slice of this iteration is still unscattered.
  bool cancelled = false;
  OnRowsCallback killer_cb = [&engine, &cancelled](const StreamDelta&) {
    if (!cancelled) {
      cancelled = true;
      EXPECT_TRUE(engine.Cancel(1));
    }
  };

  Rng rng(322);
  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 0, 0, 6, 4, cfg.hidden), killer_cb));
  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 1, 0, 6, 4, cfg.hidden), victim_cb));
  engine.RunUntilDrained(1000);

  EXPECT_EQ(engine.Status(0), RequestStatus::kFinished);
  EXPECT_EQ(engine.Status(1), RequestStatus::kCancelled);
  // The victim got exactly one delta: the empty terminal one fired by
  // Cancel (its rows from the in-flight iteration are dropped — the cancel
  // wins), and its pages went back to the pool.
  EXPECT_EQ(victim_terminal, 1);
  ASSERT_EQ(victim_rows.size(), 1u);
  EXPECT_EQ(victim_rows[0], 0);
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);

  // A queued-stage cancel also fires the (empty) terminal delta.
  int queued_terminal = 0;
  SessionHandle queued = engine.Submit(
      MakeTestRequest(rng, 2, /*arrival=*/1000, 4, 2, cfg.hidden),
      [&queued_terminal](const StreamDelta& delta) {
        queued_terminal += delta.finished ? 1 : 0;
        EXPECT_EQ(delta.rows.rows(), 0);
      });
  ASSERT_TRUE(queued.Cancel());
  EXPECT_EQ(queued_terminal, 1);
}

TEST(CancelTest, CancelWorksInEveryPreResidentLifecycleStage) {
  Rng seed_rng(315);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 1, cfg);
  ServingEngine engine(model, StreamEngineConfig(1, /*budget=*/8, /*chunk_tokens=*/0));
  Rng rng(316);

  // (a) Still in the ingress queue (arrival far in the future).
  SessionHandle queued =
      engine.Submit(MakeTestRequest(rng, 0, /*arrival=*/1000, 4, 2, cfg.hidden));
  ASSERT_TRUE(queued.ok());
  EXPECT_TRUE(queued.Cancel());
  EXPECT_EQ(queued.status(), RequestStatus::kCancelled);

  // (b) In the scheduler backlog: admission blocked by a budget-saturating
  // resident. Request 1 occupies the whole 8-row budget for several steps;
  // request 2 arrives and must wait.
  SessionHandle resident = engine.Submit(MakeTestRequest(rng, 1, 0, 8, 6, cfg.hidden));
  SessionHandle waiter = engine.Submit(MakeTestRequest(rng, 2, 0, 8, 2, cfg.hidden));
  ASSERT_TRUE(resident.ok());
  ASSERT_TRUE(waiter.ok());
  ASSERT_TRUE(engine.Step());  // request 1 prefills, request 2 waits
  ASSERT_EQ(resident.status(), RequestStatus::kRunning);
  ASSERT_EQ(waiter.status(), RequestStatus::kQueued);
  EXPECT_TRUE(waiter.Cancel());
  EXPECT_EQ(waiter.status(), RequestStatus::kCancelled);
  EXPECT_EQ(engine.queued(), 0);

  // (c) Unknown ids and terminal sessions refuse.
  EXPECT_FALSE(engine.Cancel(99));
  engine.RunUntilDrained(1000);
  ASSERT_EQ(resident.status(), RequestStatus::kFinished);
  EXPECT_FALSE(resident.Cancel());
  EXPECT_EQ(engine.Report().requests_cancelled, 2);
  EXPECT_EQ(engine.Report().requests_finished, 1);

  // A cancelled id stays claimed: resubmitting it is a duplicate.
  EXPECT_FALSE(engine.Submit(MakeTestRequest(rng, 0, 0, 4, 2, cfg.hidden)));
}

TEST(CancelTest, CancellingAPreemptedSessionKeepsItsStreamedRows) {
  // A preempted session's partial outputs are discarded for recompute, but
  // rows already streamed to the client are part of the record: cancelling
  // the session while it sits requeued must materialize them in the
  // terminal result instead of an empty matrix.
  Rng seed_rng(323);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 1, cfg);
  EngineConfig engine_cfg = StreamEngineConfig(2, /*budget=*/24, /*chunk_tokens=*/0);
  engine_cfg.scheduler.page_tokens = 4;
  engine_cfg.scheduler.max_pages = 4;
  engine_cfg.scheduler.preempt = true;
  ServingEngine engine(model, engine_cfg);

  // Two 4+8 sequences against a 4-page pool of 4-token pages: decode growth
  // evicts the lower-priority session 1 at the 8-token page boundary (the
  // deterministic victim — see EvictionRespectsRequestPriority).
  Rng rng(324);
  Request important = MakeTestRequest(rng, 0, 0, 4, 8, cfg.hidden);
  important.priority = 1;
  SessionHandle survivor = engine.Submit(important);
  SessionHandle victim = engine.Submit(MakeTestRequest(rng, 1, 0, 4, 8, cfg.hidden));
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE(victim.ok());

  // Step (draining the cursor as a client would) until the eviction lands.
  // The victim may already be readmitted for recompute in the same step
  // (optimistic admission only charges its prompt pages) — either way its
  // freshly restarted out_rows trail what was already streamed.
  std::vector<float> streamed;
  while (engine.metrics().preemption_log().empty()) {
    ASSERT_TRUE(engine.Step());
    const MatrixF rows = victim.NewRows();
    streamed.insert(streamed.end(), rows.data(), rows.data() + rows.size());
  }
  const int64_t delivered = victim.delivered_rows();
  ASSERT_GT(delivered, 0);

  ASSERT_TRUE(victim.Cancel());
  const RequestResult* result = engine.Result(1);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->status, RequestStatus::kCancelled);
  // The terminal result keeps at least every row the client already
  // received (more if the recompute had already re-produced beyond the
  // cursor), and the streamed prefix matches it bit for bit.
  ASSERT_GE(result->outputs.rows(), delivered);
  const int64_t hidden = engine.hidden();
  for (int64_t r = 0; r < delivered; ++r) {
    for (int64_t c = 0; c < hidden; ++c) {
      ASSERT_EQ(result->outputs(r, c), streamed[static_cast<size_t>(r * hidden + c)]);
    }
  }
  // The survivor is unaffected and still completes.
  engine.RunUntilDrained(1000);
  EXPECT_EQ(survivor.status(), RequestStatus::kFinished);
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);
}

TEST(CancelTest, CancellingASwappedOutVictimFreesBothTiersExactlyOnce) {
  // Swap-style preemption parks the victim's KV rows and outputs in the host
  // tier. Cancelling at the evicted-but-requeued stage must drop that shadow
  // exactly once, keep every already-streamed row in the terminal result
  // (the shadow holds *all* produced rows, not just the delivered ones), and
  // never resurrect the session at what would have been its readmission.
  Rng seed_rng(327);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 1, cfg);
  EngineConfig engine_cfg = StreamEngineConfig(2, /*budget=*/24, /*chunk_tokens=*/0);
  engine_cfg.scheduler.page_tokens = 4;
  engine_cfg.scheduler.max_pages = 4;
  engine_cfg.scheduler.preempt = true;
  engine_cfg.swap = true;
  engine_cfg.host_pages = 8;
  ServingEngine engine(model, engine_cfg);
  ASSERT_TRUE(engine.swap_enabled());

  // Same shape as the recompute variant: the lower-priority session 1 is
  // evicted at the 8-token boundary — but here its readmission needs all its
  // 2 swapped pages plus a decode-row page next to the surviving session's 3,
  // so it stays parked in the host tier until the survivor retires.
  Rng rng(328);
  Request important = MakeTestRequest(rng, 0, 0, 4, 8, cfg.hidden);
  important.priority = 1;
  SessionHandle survivor = engine.Submit(important);
  SessionHandle victim = engine.Submit(MakeTestRequest(rng, 1, 0, 4, 8, cfg.hidden));
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE(victim.ok());

  std::vector<float> streamed;
  while (engine.metrics().preemption_log().empty()) {
    ASSERT_TRUE(engine.Step());
    const MatrixF rows = victim.NewRows();
    streamed.insert(streamed.end(), rows.data(), rows.data() + rows.size());
  }
  const int64_t delivered = victim.delivered_rows();
  ASSERT_GT(delivered, 0);
  // The victim is parked in the host tier, awaiting readmission.
  ASSERT_TRUE(engine.swap_tier().Has(1));
  EXPECT_GT(engine.swap_tier().used_pages(), 0);
  EXPECT_EQ(victim.status(), RequestStatus::kQueued);

  ASSERT_TRUE(victim.Cancel());
  EXPECT_FALSE(victim.Cancel());  // terminal: the second cancel refuses
  const RequestResult* result = engine.Result(1);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->status, RequestStatus::kCancelled);
  // Host tier drained exactly once, device pages were already freed at the
  // eviction: nothing holds victim state anywhere.
  EXPECT_FALSE(engine.swap_tier().Has(1));
  EXPECT_EQ(engine.swap_tier().entries(), 0);
  EXPECT_EQ(engine.swap_tier().used_pages(), 0);

  // The shadow carried every produced row (the full 8-token prefix at the
  // eviction boundary), which can only extend the streamed record.
  ASSERT_GE(result->outputs.rows(), delivered);
  const int64_t hidden = engine.hidden();
  for (int64_t r = 0; r < delivered; ++r) {
    for (int64_t c = 0; c < hidden; ++c) {
      ASSERT_EQ(result->outputs(r, c), streamed[static_cast<size_t>(r * hidden + c)]);
    }
  }

  // No resurrection: the drain completes the survivor only, and the one
  // swap-out never got its swap-in.
  engine.RunUntilDrained(1000);
  EXPECT_EQ(survivor.status(), RequestStatus::kFinished);
  EXPECT_EQ(victim.status(), RequestStatus::kCancelled);
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);
  const ServingReport report = engine.Report();
  EXPECT_EQ(report.requests_cancelled, 1);
  EXPECT_EQ(report.requests_finished, 1);
  EXPECT_EQ(report.swap_outs, 1);
  EXPECT_EQ(report.swap_ins, 0);
}

// ---- Session handle & stop conditions ---------------------------------------

TEST(SessionApiTest, RejectedAndDuplicateSubmissionsYieldNotOkHandles) {
  Rng seed_rng(317);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 1, cfg);
  ServingEngine engine(model, StreamEngineConfig(1, 8, 0));
  Rng rng(318);

  // Malformed: wrong hidden width. Handle is !ok but still names the id, so
  // the caller can read the rejection reason.
  SessionHandle rejected = engine.Submit(MakeTestRequest(rng, 5, 0, 4, 2, cfg.hidden + 1));
  EXPECT_FALSE(rejected.ok());
  EXPECT_FALSE(rejected);
  EXPECT_EQ(rejected.status(), RequestStatus::kRejected);
  ASSERT_NE(engine.Result(5), nullptr);
  EXPECT_NE(engine.Result(5)->reason.find("malformed"), std::string::npos);
  EXPECT_EQ(rejected.NewRows().rows(), 0);
  EXPECT_FALSE(rejected.Cancel());  // already terminal

  // Default-constructed handle is inert.
  SessionHandle null_handle;
  EXPECT_FALSE(null_handle.ok());
  EXPECT_EQ(null_handle.NewRows().rows(), 0);
  EXPECT_FALSE(null_handle.Cancel());

  // Duplicate id: refused without clobbering the original session.
  SessionHandle original = engine.Submit(MakeTestRequest(rng, 7, 0, 4, 2, cfg.hidden));
  ASSERT_TRUE(original.ok());
  SessionHandle duplicate = engine.Submit(MakeTestRequest(rng, 7, 0, 6, 1, cfg.hidden));
  EXPECT_FALSE(duplicate.ok());
  engine.RunUntilDrained(100);
  EXPECT_EQ(original.status(), RequestStatus::kFinished);
}

TEST(SessionApiTest, MaxNewTokensIsAStopConditionOverSurplusInputRows) {
  Rng seed_rng(319);
  const MoeModelConfig cfg = TinyConfig();
  const auto model = BuildTinyModel(seed_rng, 1, cfg);
  ServingEngine engine(model, StreamEngineConfig(1, 16, 0));

  // 12 input rows but prompt 4 + max_new_tokens 3: the session must stop
  // after 7 rows and ignore the surplus.
  Rng rng(320);
  Request r = MakeTestRequest(rng, 0, 0, 4, 8, cfg.hidden);
  r.max_new_tokens = 3;
  ASSERT_TRUE(r.ShapeValid(cfg.hidden));
  SessionHandle session = engine.Submit(r);
  ASSERT_TRUE(session.ok());
  engine.RunUntilDrained(100);
  ASSERT_EQ(session.status(), RequestStatus::kFinished);
  EXPECT_EQ(engine.Result(0)->outputs.rows(), 7);

  // The stop condition consumed exactly prompt + 3 rows: a run with the
  // same inputs but the full decode horizon diverges after row 7.
  ServingEngine full(model, StreamEngineConfig(1, 16, 0));
  Rng rng2(320);
  ASSERT_TRUE(full.Submit(MakeTestRequest(rng2, 0, 0, 4, 8, cfg.hidden)));
  full.RunUntilDrained(100);
  const MatrixF& long_out = full.Result(0)->outputs;
  ASSERT_EQ(long_out.rows(), 12);
  const MatrixF& short_out = engine.Result(0)->outputs;
  for (int64_t r2 = 0; r2 < short_out.rows(); ++r2) {
    for (int64_t c = 0; c < short_out.cols(); ++c) {
      ASSERT_EQ(short_out(r2, c), long_out(r2, c)) << "row " << r2;
    }
  }
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
