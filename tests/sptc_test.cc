// Tests for the functional Sparse Tensor Core model: the mma.sp fragment op
// must agree exactly with a dense reference product of the expanded
// operands under bf16 rounding.

#include <gtest/gtest.h>

#include "src/formats/nm24.h"
#include "src/sptc/fragment.h"
#include "src/sptc/mma_sp.h"
#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

// Builds a random, valid SparseAFragment plus its dense 16x32 expansion.
void MakeRandomFragment(Rng& rng, SparseAFragment* frag, MatrixF* dense) {
  *dense = MatrixF(kMmaM, kMmaK);
  for (int r = 0; r < kMmaM; ++r) {
    for (int g = 0; g < kMmaK / kSparsityGroup; ++g) {
      // Random ascending pair of positions.
      int p0 = static_cast<int>(rng.NextBounded(3));      // 0..2
      int p1 = p0 + 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(3 - p0)));
      for (int t = 0; t < kKeptPerGroup; ++t) {
        const int pos = t == 0 ? p0 : p1;
        const float v = RoundToBf16(rng.NextGaussian());
        frag->values[r * kMmaKCompressed + g * kKeptPerGroup + t] = v;
        frag->meta[r * kMmaKCompressed + g * kKeptPerGroup + t] = static_cast<uint8_t>(pos);
        (*dense)(r, g * kSparsityGroup + pos) = v;
      }
    }
  }
}

DenseBFragment MakeRandomB(Rng& rng, MatrixF* dense) {
  DenseBFragment b;
  *dense = MatrixF(kMmaK, kMmaN);
  for (int r = 0; r < kMmaK; ++r) {
    for (int c = 0; c < kMmaN; ++c) {
      const float v = RoundToBf16(rng.NextGaussian());
      b.values[r * kMmaN + c] = v;
      (*dense)(r, c) = v;
    }
  }
  return b;
}

TEST(MmaSpTest, ZeroInputsGiveZero) {
  SparseAFragment a;
  for (int i = 0; i < kMmaM * kMmaKCompressed; ++i) {
    a.meta[static_cast<size_t>(i)] = static_cast<uint8_t>(i % 2 == 0 ? 0 : 1);
  }
  DenseBFragment b;
  Accumulator c;
  const Accumulator d = MmaSp(a, b, c);
  for (float v : d.values) {
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(MmaSpTest, AccumulatorPassesThrough) {
  SparseAFragment a;
  for (int i = 0; i < kMmaM * kMmaKCompressed; ++i) {
    a.meta[static_cast<size_t>(i)] = static_cast<uint8_t>(i % 2 == 0 ? 1 : 3);
  }
  DenseBFragment b;
  Accumulator c;
  for (int i = 0; i < kMmaM * kMmaN; ++i) {
    c.values[static_cast<size_t>(i)] = static_cast<float>(i);
  }
  const Accumulator d = MmaSp(a, b, c);
  for (int i = 0; i < kMmaM * kMmaN; ++i) {
    EXPECT_FLOAT_EQ(d.values[static_cast<size_t>(i)], static_cast<float>(i));
  }
}

TEST(MmaSpTest, MatchesDenseReference) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    SparseAFragment afrag;
    MatrixF a_dense;
    MakeRandomFragment(rng, &afrag, &a_dense);
    ASSERT_TRUE(MetadataIsValid(afrag));

    MatrixF b_dense;
    const DenseBFragment bfrag = MakeRandomB(rng, &b_dense);

    const Accumulator d = MmaSp(afrag, bfrag, Accumulator{});
    const MatrixF expect = GemmRef(a_dense, b_dense);
    for (int r = 0; r < kMmaM; ++r) {
      for (int c = 0; c < kMmaN; ++c) {
        EXPECT_NEAR(d.at(r, c), expect(r, c), 1e-4f) << "trial " << trial;
      }
    }
  }
}

TEST(MmaSpTest, ExpandSparseRowPlacesValuesAtMetadataPositions) {
  SparseAFragment a;
  // Row 0: group 0 keeps positions 1 and 3 with values 5 and 7.
  a.values[0] = 5.0f;
  a.values[1] = 7.0f;
  a.meta[0] = 1;
  a.meta[1] = 3;
  for (int j = 2; j < kMmaKCompressed; ++j) {
    a.meta[static_cast<size_t>(j)] = static_cast<uint8_t>(j % 2 == 0 ? 0 : 1);
  }
  float row[kMmaK];
  ExpandSparseRow(a, 0, row);
  EXPECT_FLOAT_EQ(row[0], 0.0f);
  EXPECT_FLOAT_EQ(row[1], 5.0f);
  EXPECT_FLOAT_EQ(row[2], 0.0f);
  EXPECT_FLOAT_EQ(row[3], 7.0f);
}

TEST(MmaSpTest, MetadataValidationRejectsDescendingPairs) {
  SparseAFragment a;
  for (int i = 0; i < kMmaM * kMmaKCompressed; ++i) {
    a.meta[static_cast<size_t>(i)] = static_cast<uint8_t>(i % 2 == 0 ? 0 : 1);
  }
  EXPECT_TRUE(MetadataIsValid(a));
  a.meta[0] = 2;
  a.meta[1] = 1;  // descending
  EXPECT_FALSE(MetadataIsValid(a));
  a.meta[0] = 1;
  a.meta[1] = 1;  // duplicate
  EXPECT_FALSE(MetadataIsValid(a));
  a.meta[0] = 0;
  a.meta[1] = 4;  // out of range
  EXPECT_FALSE(MetadataIsValid(a));
}

TEST(MmaSpTest, UsesBf16RoundedOperands) {
  // A value with mantissa bits beyond bf16 must behave as its rounded form.
  SparseAFragment a;
  for (int i = 0; i < kMmaM * kMmaKCompressed; ++i) {
    a.meta[static_cast<size_t>(i)] = static_cast<uint8_t>(i % 2 == 0 ? 0 : 1);
  }
  const float fine = 1.00390625f;  // 1 + 2^-8, not representable in bf16
  a.values[0] = fine;
  DenseBFragment b;
  b.values[0] = 1.0f;  // B(0,0) pairs with meta position 0
  const Accumulator d = MmaSp(a, b, Accumulator{});
  EXPECT_FLOAT_EQ(d.at(0, 0), RoundToBf16(fine));
}

}  // namespace
}  // namespace samoyeds
