// Tile-granular expert scheduling: bit-determinism across thread counts,
// tile splits, and expert-parallel shard counts (including pathologically
// skewed routing), workspace reuse, and the task-accounting invariants (a
// hot expert splits, a zero-token expert submits nothing, a shard whose
// experts are all idle receives no tasks).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/moe/moe_layer.h"
#include "src/moe/router.h"
#include "src/serving/expert_pool.h"
#include "src/serving/shard_plan.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace serving {
namespace {

MoeModelConfig SmallConfig(int experts, int shared) {
  MoeModelConfig cfg;
  cfg.name = "tile-test";
  cfg.num_experts = experts;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 1;
  cfg.shared_experts = shared;
  return cfg;
}

// All tokens routed to expert `hot` with unit weight; every other expert
// idle. expert_gate deliberately left empty on demand to exercise the
// token_assignments fallback.
RoutingPlan SkewedPlan(int64_t tokens, int num_experts, int hot, bool with_gate_vectors) {
  RoutingPlan plan;
  plan.num_experts = num_experts;
  plan.top_k = 1;
  plan.tokens = tokens;
  plan.expert_tokens.resize(static_cast<size_t>(num_experts));
  plan.token_assignments.resize(static_cast<size_t>(tokens));
  for (int64_t t = 0; t < tokens; ++t) {
    plan.expert_tokens[static_cast<size_t>(hot)].push_back(static_cast<int32_t>(t));
    plan.token_assignments[static_cast<size_t>(t)].emplace_back(hot, 1.0f);
  }
  if (with_gate_vectors) {
    plan.expert_gate.resize(static_cast<size_t>(num_experts));
    plan.expert_gate[static_cast<size_t>(hot)].assign(static_cast<size_t>(tokens), 1.0f);
  }
  EXPECT_TRUE(plan.IsConsistent());
  return plan;
}

TEST(ExpertPoolTilingTest, PathologicalSkewIsBitDeterministicAcrossThreadCounts) {
  Rng rng(901);
  const MoeModelConfig cfg = SmallConfig(4, 1);
  const MoeLayerWeights dense = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw =
      SamoyedsMoeLayerWeights::Encode(dense, SamoyedsConfig{1, 2, 32});
  const MatrixF x = RandomBf16Matrix(rng, 96, cfg.hidden);

  for (const bool with_gate_vectors : {true, false}) {
    const RoutingPlan plan = SkewedPlan(96, cfg.num_experts, /*hot=*/1, with_gate_vectors);
    const MatrixF sequential = MoeForwardSamoyeds(x, sw, plan, Activation::kSilu);
    for (int threads : {1, 2, 8}) {
      ExpertPool pool(threads);
      ParallelMoeWorkspace ws;
      MatrixF out;
      // Twice through the same workspace: reuse must not perturb results.
      for (int round = 0; round < 2; ++round) {
        ParallelMoeForwardSamoyeds(pool, x, sw, plan, Activation::kSilu, ws, out);
        ASSERT_TRUE(out == sequential)
            << "threads=" << threads << " round=" << round
            << " gate_vectors=" << with_gate_vectors;
      }
    }
  }
}

TEST(ExpertPoolTilingTest, HotExpertSplitsIntoMultipleTiles) {
  Rng rng(902);
  const MoeModelConfig cfg = SmallConfig(4, 0);
  const MoeLayerWeights dense = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw =
      SamoyedsMoeLayerWeights::Encode(dense, SamoyedsConfig{1, 2, 32});
  const MatrixF x = RandomBf16Matrix(rng, 128, cfg.hidden);
  const RoutingPlan plan = SkewedPlan(128, cfg.num_experts, /*hot=*/0, true);

  ExpertPool pool(4);
  ParallelMoeWorkspace ws;
  MatrixF out;
  const int64_t before = pool.submitted_total();
  ParallelMoeForwardSamoyeds(pool, x, sw, plan, Activation::kSilu, ws, out);
  const int64_t tasks = pool.submitted_total() - before;
  // One expert holds all 128 tokens: with 4 workers it must split into
  // several tiles (up to `threads`), not run as a single serializing task.
  EXPECT_GT(tasks, 1);
  EXPECT_LE(tasks, 4);
}

TEST(ExpertPoolTilingTest, ZeroTokenExpertSubmitsNoTasks) {
  Rng rng(903);
  const MoeModelConfig cfg = SmallConfig(3, 1);
  const MoeLayerWeights dense = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw =
      SamoyedsMoeLayerWeights::Encode(dense, SamoyedsConfig{1, 2, 32});
  const MatrixF x = RandomBf16Matrix(rng, 16, cfg.hidden);
  // Experts 0 and 2 idle, expert 1 takes all 16 tokens.
  const RoutingPlan plan = SkewedPlan(16, cfg.num_experts, /*hot=*/1, true);

  // Inline pool: exactly one tile per non-empty expert plus one per shared
  // expert. The two zero-token experts must contribute nothing.
  ExpertPool pool(1);
  ParallelMoeWorkspace ws;
  MatrixF out;
  const int64_t before = pool.submitted_total();
  ParallelMoeForwardSamoyeds(pool, x, sw, plan, Activation::kSilu, ws, out);
  EXPECT_EQ(pool.submitted_total() - before, 2);  // hot expert + shared expert
}

TEST(ExpertPoolTilingTest, WorkspaceForwardMatchesAllocatingForward) {
  Rng rng(904);
  const MoeModelConfig cfg = SmallConfig(6, 2);
  const MoeLayerWeights dense = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw =
      SamoyedsMoeLayerWeights::Encode(dense, SamoyedsConfig{1, 2, 32});
  const MatrixF x = RandomBf16Matrix(rng, 40, cfg.hidden);
  const RoutingPlan plan = Route(x, sw.router_gate, cfg.top_k);

  const MatrixF baseline = MoeForwardSamoyeds(x, sw, plan, Activation::kSilu);
  MoeWorkspace ws;
  MatrixF out;
  // Same workspace across two different shapes: run a smaller problem first
  // so buffer reuse with stale content is exercised.
  const MatrixF x_small = RandomBf16Matrix(rng, 8, cfg.hidden);
  const RoutingPlan plan_small = Route(x_small, sw.router_gate, cfg.top_k);
  MoeForwardSamoyeds(x_small, sw, plan_small, Activation::kSilu, ws, out);
  MoeForwardSamoyeds(x, sw, plan, Activation::kSilu, ws, out);
  EXPECT_TRUE(out == baseline);

  ExpertPool pool(3);
  const MatrixF parallel = ParallelMoeForwardSamoyeds(pool, x, sw, plan, Activation::kSilu);
  EXPECT_TRUE(parallel == baseline);
}

// ---- Expert-parallel sharding ----------------------------------------------

TEST(ShardedMoeForwardTest, BitIdenticalAcrossShardAndThreadCounts) {
  Rng rng(905);
  const MoeModelConfig cfg = SmallConfig(8, 1);
  const MoeLayerWeights dense = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw =
      SamoyedsMoeLayerWeights::Encode(dense, SamoyedsConfig{1, 2, 32});
  const MatrixF x = RandomBf16Matrix(rng, 96, cfg.hidden);
  const RoutingPlan plan = Route(x, sw.router_gate, /*top_k=*/2);
  const MatrixF sequential = MoeForwardSamoyeds(x, sw, plan, Activation::kSilu);

  for (int shards : {1, 2, 4}) {
    for (int threads : {1, 2, 8}) {
      const ExpertShardPlan placements[] = {
          ExpertShardPlan::RoundRobin(cfg.num_experts, shards),
          ExpertShardPlan::GateStatsAware(sw.router_gate, shards),
      };
      for (const ExpertShardPlan& placement : placements) {
        ExpertPool pool(threads, shards);
        ParallelMoeWorkspace ws;
        MatrixF out;
        // Twice through the same workspace: reuse must not perturb results.
        for (int round = 0; round < 2; ++round) {
          ParallelMoeForwardSamoyeds(pool, x, sw, plan, Activation::kSilu, placement, ws, out);
          ASSERT_TRUE(out == sequential)
              << "shards=" << shards << " threads=" << threads << " round=" << round;
        }
      }
    }
  }
}

TEST(ShardedMoeForwardTest, SkewedRoutingStaysBitIdenticalWhenSharded) {
  Rng rng(906);
  const MoeModelConfig cfg = SmallConfig(4, 0);
  const MoeLayerWeights dense = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw =
      SamoyedsMoeLayerWeights::Encode(dense, SamoyedsConfig{1, 2, 32});
  const MatrixF x = RandomBf16Matrix(rng, 128, cfg.hidden);
  // Everything on expert 1 — one shard does all the work, the rest idle.
  const RoutingPlan plan = SkewedPlan(128, cfg.num_experts, /*hot=*/1, true);
  const MatrixF sequential = MoeForwardSamoyeds(x, sw, plan, Activation::kSilu);

  for (int shards : {2, 4}) {
    ExpertPool pool(4, shards);
    const ExpertShardPlan placement = ExpertShardPlan::RoundRobin(cfg.num_experts, shards);
    ParallelMoeWorkspace ws;
    MatrixF out;
    ParallelMoeForwardSamoyeds(pool, x, sw, plan, Activation::kSilu, placement, ws, out);
    EXPECT_TRUE(out == sequential) << "shards=" << shards;
  }
}

TEST(ShardedMoeForwardTest, ZeroTokenShardReceivesNoTasks) {
  Rng rng(907);
  const MoeModelConfig cfg = SmallConfig(4, 0);  // no shared experts
  const MoeLayerWeights dense = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw =
      SamoyedsMoeLayerWeights::Encode(dense, SamoyedsConfig{1, 2, 32});
  const MatrixF x = RandomBf16Matrix(rng, 64, cfg.hidden);
  // All tokens to expert 1, which round-robin places on shard 1 of 2: shard
  // 0 (experts 0 and 2) must see zero submissions.
  const RoutingPlan plan = SkewedPlan(64, cfg.num_experts, /*hot=*/1, true);

  ExpertPool pool(4, /*shards=*/2);
  const ExpertShardPlan placement = ExpertShardPlan::RoundRobin(cfg.num_experts, 2);
  ParallelMoeWorkspace ws;
  MatrixF out;
  ParallelMoeForwardSamoyeds(pool, x, sw, plan, Activation::kSilu, placement, ws, out);
  EXPECT_EQ(pool.submitted_to_shard(0), 0);
  EXPECT_GT(pool.submitted_to_shard(1), 0);
  EXPECT_EQ(pool.submitted_total(), pool.submitted_to_shard(0) + pool.submitted_to_shard(1));
}

TEST(ShardedMoeForwardTest, SharedExpertsSplitAcrossShardHomeRanges) {
  Rng rng(908);
  const MoeModelConfig cfg = SmallConfig(2, 1);  // one shared expert
  const MoeLayerWeights dense = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw =
      SamoyedsMoeLayerWeights::Encode(dense, SamoyedsConfig{1, 2, 32});
  const MatrixF x = RandomBf16Matrix(rng, 64, cfg.hidden);
  const RoutingPlan plan = SkewedPlan(64, cfg.num_experts, /*hot=*/0, true);
  const MatrixF sequential = MoeForwardSamoyeds(x, sw, plan, Activation::kSilu);

  // The shared expert covers every token, so with 2 shards *both* queues
  // receive work even though all routed tokens sit on shard 0.
  ExpertPool pool(2, /*shards=*/2);
  const ExpertShardPlan placement = ExpertShardPlan::RoundRobin(cfg.num_experts, 2);
  ParallelMoeWorkspace ws;
  MatrixF out;
  ParallelMoeForwardSamoyeds(pool, x, sw, plan, Activation::kSilu, placement, ws, out);
  EXPECT_TRUE(out == sequential);
  EXPECT_GT(pool.submitted_to_shard(0), 0);
  EXPECT_GT(pool.submitted_to_shard(1), 0);
}

TEST(ExpertPoolShardingTest, ShardWorkersCoverEveryQueue) {
  // threads >= shards: dedicated workers, split as evenly as possible.
  {
    ExpertPool pool(5, 2);
    EXPECT_EQ(pool.ShardWorkers(0) + pool.ShardWorkers(1), 5);
    EXPECT_GE(pool.ShardWorkers(0), 2);
    EXPECT_GE(pool.ShardWorkers(1), 2);
  }
  // threads < shards: every shard still has a (shared) server.
  {
    ExpertPool pool(2, 4);
    for (int s = 0; s < 4; ++s) {
      EXPECT_GE(pool.ShardWorkers(s), 1);
    }
  }
  // Inline mode: the submitting thread serves everything.
  {
    ExpertPool pool(1, 4);
    EXPECT_EQ(pool.threads(), 0);
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(pool.ShardWorkers(s), 1);
    }
  }
}

TEST(ExpertPoolShardingTest, TasksRunOnEveryShardQueue) {
  for (int threads : {1, 2, 8}) {
    ExpertPool pool(threads, /*shards=*/3);
    std::vector<int> counts(3 * 64, 0);
    for (int round = 0; round < 4; ++round) {
      for (int s = 0; s < 3; ++s) {
        for (int i = 0; i < 64; ++i) {
          pool.SubmitToShard(s, [&counts, s, i] { counts[static_cast<size_t>(s * 64 + i)]++; });
        }
      }
      pool.WaitIdle();
    }
    for (int v : counts) {
      EXPECT_EQ(v, 4) << "threads=" << threads;
    }
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(pool.submitted_to_shard(s), 4 * 64);
    }
    EXPECT_EQ(pool.submitted_total(), 3 * 4 * 64);
  }
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
