// Pruning substrate: mask correctness, MLP training machinery, and the
// accuracy-proxy experiment pipeline.

#include <gtest/gtest.h>

#include "src/pruning/accuracy_eval.h"
#include "src/pruning/mlp.h"
#include "src/pruning/pruners.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace {

TEST(PrunersTest, MagnitudeHitsExactSparsity) {
  Rng rng(91);
  MatrixF w = rng.GaussianMatrix(64, 64);
  ApplyMagnitudeMask(w, 0.75);
  EXPECT_NEAR(MeasuredSparsity(w), 0.75, 1e-3);
}

TEST(PrunersTest, MagnitudeKeepsLargest) {
  auto w = MatrixF::FromRowMajor(1, 4, {0.1f, -5.0f, 0.2f, 3.0f});
  ApplyMagnitudeMask(w, 0.5);
  EXPECT_FLOAT_EQ(w(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(w(0, 1), -5.0f);
  EXPECT_FLOAT_EQ(w(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(w(0, 3), 3.0f);
}

TEST(PrunersTest, EverySpecLandsAtTargetSparsity) {
  Rng rng(92);
  for (PruneMethod m : {PruneMethod::kUnstructured, PruneMethod::kVenom, PruneMethod::kSamoyeds}) {
    MatrixF w = rng.GaussianMatrix(128, 128);
    PruneSpec spec;
    spec.method = m;
    spec.sparsity = 0.75;
    spec.venom_config = VenomConfig{64, 2, 4};      // 75%
    spec.samoyeds_config = SamoyedsConfig{1, 2, 32};  // 75%
    ApplyPruning(w, spec);
    EXPECT_NEAR(MeasuredSparsity(w), 0.75, 1e-3) << PruneMethodName(m);
  }
}

TEST(PrunersTest, DenseIsNoOp) {
  Rng rng(93);
  MatrixF w = rng.GaussianMatrix(16, 16);
  const MatrixF before = w;
  ApplyPruning(w, PruneSpec{});
  EXPECT_TRUE(w == before);
}

TEST(PrunersTest, TwoFourGivesHalfSparsity) {
  Rng rng(94);
  MatrixF w = rng.GaussianMatrix(32, 64);
  PruneSpec spec;
  spec.method = PruneMethod::kTwoFour;
  ApplyPruning(w, spec);
  EXPECT_NEAR(MeasuredSparsity(w), 0.5, 1e-6);
}

TEST(MlpTest, ForwardShape) {
  Rng rng(95);
  const Mlp mlp(rng, {8, 16, 4});
  const MatrixF x = rng.GaussianMatrix(5, 8);
  const MatrixF out = mlp.Forward(x);
  EXPECT_EQ(out.rows(), 5);
  EXPECT_EQ(out.cols(), 4);
}

TEST(MlpTest, MseTrainingReducesLoss) {
  Rng rng(96);
  Mlp mlp(rng, {4, 32, 2});
  const RegressionDataset data = RegressionDataset::Make(rng, 128, 4, 2);
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 300; ++step) {
    const float loss = mlp.TrainStepMse(data.x, data.y, 0.02f);
    if (step == 0) {
      first = loss;
    }
    last = loss;
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(MlpTest, CrossEntropyTrainingLearnsClusters) {
  Rng rng(97);
  const ClassificationDataset data = ClassificationDataset::Make(rng, 256, 8, 4, 0.3f);
  Mlp mlp(rng, {8, 32, 4});
  for (int step = 0; step < 200; ++step) {
    mlp.TrainStepCrossEntropy(data.x, data.labels, 0.05f);
  }
  EXPECT_GT(EvaluateAccuracy(mlp, data), 0.9);
}

TEST(MlpTest, MaskSurvivesTraining) {
  Rng rng(98);
  Mlp mlp(rng, {8, 32, 32, 4});
  const ClassificationDataset data = ClassificationDataset::Make(rng, 128, 8, 4);
  PruneSpec spec;
  spec.method = PruneMethod::kSamoyeds;
  spec.samoyeds_config = SamoyedsConfig{1, 2, 16};
  ApplyPruning(mlp.weight(1), spec);
  mlp.SnapshotMasks();
  const double sparsity_before = MeasuredSparsity(mlp.weight(1));
  EXPECT_NEAR(sparsity_before, 0.75, 1e-6);
  for (int step = 0; step < 50; ++step) {
    mlp.TrainStepCrossEntropy(data.x, data.labels, 0.05f);
  }
  EXPECT_NEAR(MeasuredSparsity(mlp.weight(1)), sparsity_before, 1e-6);
}

TEST(AccuracyEvalTest, PerplexityBoundedBelowByOne) {
  Rng rng(99);
  const ClassificationDataset data = ClassificationDataset::Make(rng, 64, 8, 4);
  const Mlp mlp(rng, {8, 16, 4});
  EXPECT_GE(EvaluatePerplexity(mlp, data), 1.0);
}

TEST(AccuracyEvalTest, FinetuneRecoversAccuracy) {
  // The paper's central accuracy claim in miniature: after pruning at 75%
  // with the Samoyeds format and fine-tuning, most accuracy returns.
  Rng rng(100);
  const ClassificationDataset train = ClassificationDataset::Make(rng, 512, 32, 8, 0.5f);
  Rng test_rng(100);  // same clusters: regenerate with identical seed
  const ClassificationDataset test = ClassificationDataset::Make(test_rng, 512, 32, 8, 0.5f);

  PruneSpec samoyeds;
  samoyeds.method = PruneMethod::kSamoyeds;
  samoyeds.samoyeds_config = SamoyedsConfig{1, 2, 16};
  PruneExperimentOptions options;
  options.pretrain_epochs = 30;
  options.finetune_epochs = 10;

  const auto results =
      RunAccuracyExperiment(rng, {32, 64, 64, 8}, train, test, {PruneSpec{}, samoyeds}, options);
  ASSERT_EQ(results.size(), 2u);
  const double dense_acc = results[0].metric_after_finetune;
  const double pruned_acc = results[1].metric_after_finetune;
  EXPECT_GT(dense_acc, 0.8);
  EXPECT_GT(pruned_acc, dense_acc * 0.9);  // >= 90% retention
  EXPECT_GE(results[1].metric_after_finetune, results[1].metric_before_finetune - 1e-9);
  EXPECT_NEAR(results[1].measured_sparsity, 0.75, 0.02);
}

}  // namespace
}  // namespace samoyeds
