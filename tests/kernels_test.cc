// Baseline kernels: numeric equivalence against references and sanity of
// the analytic profiles.

#include <gtest/gtest.h>

#include "src/formats/csr.h"
#include "src/formats/nm24.h"
#include "src/formats/venom.h"
#include "src/kernels/cusparselt_spmm.h"
#include "src/kernels/dense_gemm.h"
#include "src/kernels/sputnik_spmm.h"
#include "src/kernels/tuning.h"
#include "src/kernels/venom_spmm.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

TEST(DenseGemmTest, RunMatchesReference) {
  Rng rng(51);
  const MatrixF a = RandomBf16Matrix(rng, 48, 64);
  const MatrixF b = RandomBf16Matrix(rng, 64, 32);
  EXPECT_LE(MaxAbsDiff(DenseGemmKernel::Run(a, b), GemmRef(a, b)), 1e-4f);
}

TEST(DenseGemmTest, AnalyzeCountsPaddedTiles) {
  const KernelProfile p = DenseGemmKernel::Analyze({100, 200, 300});
  // 100 -> 1 tile of 128, 300 -> 3 tiles of 128.
  EXPECT_EQ(p.traffic.thread_blocks, 1 * 3);
  EXPECT_DOUBLE_EQ(p.useful_flops, 2.0 * 100 * 200 * 300);
  EXPECT_GT(p.traffic.mma_flops, p.useful_flops);  // padding overhead
  EXPECT_FALSE(p.traffic.uses_sparse_alu);
}

TEST(CusparseltTest, RunMatchesMaskedReference) {
  Rng rng(52);
  const MatrixF w = RandomBf16Matrix(rng, 32, 64);
  const MatrixF b = RandomBf16Matrix(rng, 64, 24);
  const TwoFourMatrix w24 = TwoFourMatrix::Encode(w);
  MatrixF masked = w;
  ApplyTwoFourMask(masked);
  EXPECT_LE(MaxAbsDiff(CusparseltSpmmKernel::Run(w24, b), GemmRef(masked, b)), 1e-4f);
}

TEST(CusparseltTest, ExecutesHalfTheDenseFlops) {
  const GemmShape shape{1024, 1024, 1024};
  const KernelProfile dense = DenseGemmKernel::Analyze(shape);
  const KernelProfile sparse = CusparseltSpmmKernel::Analyze(shape);
  EXPECT_NEAR(sparse.traffic.mma_flops / dense.traffic.mma_flops, 0.5, 1e-9);
  EXPECT_TRUE(sparse.traffic.uses_sparse_alu);
}

TEST(SputnikTest, RunMatchesReference) {
  Rng rng(53);
  MatrixF w = rng.GaussianMatrix(40, 48);
  for (auto& v : w.flat()) {
    if (rng.NextFloat() < 0.75f) {
      v = 0.0f;
    }
  }
  const MatrixF b = rng.GaussianMatrix(48, 16);
  const CsrMatrix csr = CsrMatrix::FromDense(w);
  EXPECT_LE(MaxAbsDiff(SputnikSpmmKernel::Run(csr, b), GemmRef(w, b)), 1e-4f);
}

TEST(SputnikTest, NoTensorCoreUse) {
  const KernelProfile p = SputnikSpmmKernel::Analyze({2048, 2048, 2048}, 0.25);
  EXPECT_DOUBLE_EQ(p.traffic.mma_flops, 0.0);
  EXPECT_GT(p.traffic.simd_flops, 0.0);
  EXPECT_GT(p.traffic.gmem_uncoalesced_bytes, 0.0);
}

TEST(VenomKernelTest, RunMatchesMaskedReference) {
  Rng rng(54);
  const VenomConfig cfg{16, 2, 4};
  const MatrixF w = RandomBf16Matrix(rng, 32, 32);
  const MatrixF b = RandomBf16Matrix(rng, 32, 16);
  const VenomMatrix enc = VenomMatrix::Encode(w, cfg);
  MatrixF masked = w;
  ApplyVenomMask(masked, cfg);
  EXPECT_LE(MaxAbsDiff(VenomSpmmKernel::Run(enc, b), GemmRef(masked, b)), 1e-4f);
}

TEST(VenomKernelTest, FlopsScaleWithDensity) {
  const GemmShape shape{2048, 2048, 2048};
  const VenomConfig half{64, 2, 2};    // 50% column density -> 25% total
  const VenomConfig quarter{64, 1, 2}; // 25% column density -> 12.5% total
  const KernelProfile p1 = VenomSpmmKernel::Analyze(shape, half);
  const KernelProfile p2 = VenomSpmmKernel::Analyze(shape, quarter);
  EXPECT_NEAR(p2.traffic.mma_flops / p1.traffic.mma_flops, 0.5, 1e-9);
}

TEST(VenomKernelTest, PortingDegradesEfficiency) {
  const GemmShape shape{4096, 4096, 4096};
  const VenomConfig cfg{64, 2, 4};
  const KernelProfile native = VenomSpmmKernel::Analyze(shape, cfg, DefaultDevice());
  const KernelProfile ported =
      VenomSpmmKernel::Analyze(shape, cfg, GetDevice(DeviceModel::kA100_40G));
  EXPECT_LT(ported.traffic.efficiency, native.traffic.efficiency * 0.75);
}

TEST(TuningTest, NativeDeviceIsNeutral) {
  EXPECT_DOUBLE_EQ(PortabilityFactor(DefaultDevice(), DefaultDevice(), 5.0), 1.0);
}

TEST(TuningTest, ZeroSensitivityIsNeutral) {
  EXPECT_DOUBLE_EQ(
      PortabilityFactor(DefaultDevice(), GetDevice(DeviceModel::kA100_40G), 0.0), 1.0);
}

TEST(TuningTest, HigherSensitivityLosesMore) {
  const DeviceSpec& native = DefaultDevice();
  const DeviceSpec& target = GetDevice(DeviceModel::kA100_40G);
  EXPECT_LT(PortabilityFactor(native, target, 3.0), PortabilityFactor(native, target, 0.5));
}

TEST(TuningTest, FactorBounded) {
  const DeviceSpec& native = DefaultDevice();
  for (DeviceModel m : AllDeviceModels()) {
    const double f = PortabilityFactor(native, GetDevice(m), 10.0);
    EXPECT_GE(f, 0.25);
    EXPECT_LE(f, 1.0);
  }
}

// ---- Cross-kernel performance ordering on the native device --------------

double SimulatedMs(const KernelProfile& p) {
  return TimingModel(DefaultDevice()).Estimate(p.traffic).total_ms;
}

TEST(KernelOrderingTest, RealisticShapeOrdering) {
  // CFG#4-like expert GEMM: intermediate x hidden x tokens.
  const GemmShape shape{14336, 4096, 4096};
  const double dense = SimulatedMs(DenseGemmKernel::Analyze(shape));
  const double cusp = SimulatedMs(CusparseltSpmmKernel::Analyze(shape));
  const double venom = SimulatedMs(VenomSpmmKernel::Analyze(shape, VenomConfig{64, 2, 4}));
  const double sputnik = SimulatedMs(SputnikSpmmKernel::Analyze(shape, 0.25));
  // The paper's measured ordering: VENOM < dense ~ cuSPARSELt << Sputnik.
  EXPECT_LT(venom, dense);
  EXPECT_LT(venom, cusp);
  EXPECT_GT(sputnik, dense * 4.0);
}

}  // namespace
}  // namespace samoyeds
