// Round-trip, invariant and property tests for every sparse format.

#include <gtest/gtest.h>

#include "src/formats/block_sparse.h"
#include "src/formats/coo.h"
#include "src/formats/csr.h"
#include "src/formats/metadata_layout.h"
#include "src/formats/nm24.h"
#include "src/formats/samoyeds_format.h"
#include "src/formats/sel.h"
#include "src/formats/venom.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

int64_t CountNonZeros(const MatrixF& m) {
  int64_t nnz = 0;
  for (float v : m.flat()) {
    nnz += v != 0.0f;
  }
  return nnz;
}

// ---------------------------------------------------------------- COO / CSR

TEST(CooTest, RoundTrip) {
  Rng rng(21);
  MatrixF dense = rng.GaussianMatrix(13, 17);
  for (auto& v : dense.flat()) {
    if (rng.NextFloat() < 0.7f) {
      v = 0.0f;
    }
  }
  const CooMatrix coo = CooMatrix::FromDense(dense);
  EXPECT_EQ(coo.nnz(), CountNonZeros(dense));
  EXPECT_TRUE(coo.ToDense() == dense);
}

TEST(CsrTest, RoundTrip) {
  Rng rng(22);
  MatrixF dense = rng.GaussianMatrix(9, 31);
  for (auto& v : dense.flat()) {
    if (rng.NextFloat() < 0.8f) {
      v = 0.0f;
    }
  }
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr.nnz(), CountNonZeros(dense));
  EXPECT_TRUE(csr.ToDense() == dense);
}

TEST(CsrTest, MultiplyMatchesReference) {
  Rng rng(23);
  MatrixF dense = rng.GaussianMatrix(16, 24);
  for (auto& v : dense.flat()) {
    if (rng.NextFloat() < 0.75f) {
      v = 0.0f;
    }
  }
  const MatrixF b = rng.GaussianMatrix(24, 10);
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_LE(MaxAbsDiff(csr.Multiply(b), GemmRef(dense, b)), 1e-4f);
}

TEST(CsrTest, EmptyMatrix) {
  const MatrixF dense(4, 8);
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_TRUE(csr.ToDense() == dense);
}

// -------------------------------------------------------------------- 2:4

TEST(TwoFourTest, RoundTripPreservesKeptValues) {
  Rng rng(24);
  const MatrixF dense = rng.GaussianMatrix(8, 32);
  const TwoFourMatrix enc = TwoFourMatrix::Encode(dense);
  EXPECT_TRUE(enc.MetadataOrdered());
  const MatrixF back = enc.ToDense();
  // Every surviving element matches the original; survivors are exactly
  // half.
  EXPECT_EQ(CountNonZeros(back), dense.size() / 2);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      if (back(r, c) != 0.0f) {
        EXPECT_FLOAT_EQ(back(r, c), dense(r, c));
      }
    }
  }
}

TEST(TwoFourTest, KeepsLargestMagnitudePerGroup) {
  auto dense = MatrixF::FromRowMajor(1, 8, {1, -9, 2, 8, 0.5f, 0.1f, -0.2f, 0.3f});
  const TwoFourMatrix enc = TwoFourMatrix::Encode(dense);
  const MatrixF back = enc.ToDense();
  EXPECT_FLOAT_EQ(back(0, 1), -9.0f);
  EXPECT_FLOAT_EQ(back(0, 3), 8.0f);
  EXPECT_FLOAT_EQ(back(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(back(0, 2), 0.0f);
  // Second group keeps 0.5 and 0.3.
  EXPECT_FLOAT_EQ(back(0, 4), 0.5f);
  EXPECT_FLOAT_EQ(back(0, 7), 0.3f);
}

TEST(TwoFourTest, MaskMatchesEncodeDecode) {
  Rng rng(25);
  MatrixF dense = rng.GaussianMatrix(12, 64);
  MatrixF masked = dense;
  ApplyTwoFourMask(masked);
  EXPECT_TRUE(TwoFourMatrix::Encode(dense).ToDense() == masked);
}

TEST(TwoFourTest, AlreadySparseRowsSurvive) {
  MatrixF dense(1, 4);
  dense(0, 2) = 3.0f;  // only one non-zero
  const TwoFourMatrix enc = TwoFourMatrix::Encode(dense);
  const MatrixF back = enc.ToDense();
  EXPECT_FLOAT_EQ(back(0, 2), 3.0f);
  EXPECT_EQ(CountNonZeros(back), 1);
}

// --------------------------------------------------------------- Samoyeds

struct SamoyedsParam {
  int n, m, v;
};

class SamoyedsFormatTest : public ::testing::TestWithParam<SamoyedsParam> {};

TEST_P(SamoyedsFormatTest, RoundTripIsIdempotentMask) {
  const auto [n, m, v] = GetParam();
  const SamoyedsConfig cfg{n, m, v};
  ASSERT_TRUE(cfg.IsValid());
  Rng rng(26);
  const MatrixF dense = rng.GaussianMatrix(m * 8, v * 4);
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(dense, cfg);
  EXPECT_TRUE(enc.IsWellFormed());
  const MatrixF masked = enc.ToDense();
  // Re-encoding the masked matrix must reproduce it exactly (idempotence).
  const SamoyedsMatrix enc2 = SamoyedsMatrix::Encode(masked, cfg);
  EXPECT_TRUE(enc2.ToDense() == masked);
}

TEST_P(SamoyedsFormatTest, DensityMatchesConfig) {
  const auto [n, m, v] = GetParam();
  const SamoyedsConfig cfg{n, m, v};
  Rng rng(27);
  const MatrixF dense = rng.GaussianMatrix(m * 16, v * 8);
  const MatrixF masked = SamoyedsMatrix::Encode(dense, cfg).ToDense();
  const double got = static_cast<double>(CountNonZeros(masked)) / masked.size();
  // Gaussian data has no exact zeros, so the measured density equals the
  // structural density.
  EXPECT_NEAR(got, cfg.density(), 1e-9);
}

TEST_P(SamoyedsFormatTest, SurvivorsAreOriginalValues) {
  const auto [n, m, v] = GetParam();
  const SamoyedsConfig cfg{n, m, v};
  Rng rng(28);
  const MatrixF dense = rng.GaussianMatrix(m * 4, v * 2);
  const MatrixF masked = SamoyedsMatrix::Encode(dense, cfg).ToDense();
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      if (masked(r, c) != 0.0f) {
        EXPECT_FLOAT_EQ(masked(r, c), dense(r, c));
      }
    }
  }
}

TEST_P(SamoyedsFormatTest, StorageSmallerThanDense) {
  const auto [n, m, v] = GetParam();
  const SamoyedsConfig cfg{n, m, v};
  Rng rng(29);
  const MatrixF dense = rng.GaussianMatrix(m * 8, v * 4);
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(dense, cfg);
  EXPECT_LT(enc.StorageBytes(), dense.size() * 2);  // vs bf16 dense
}

INSTANTIATE_TEST_SUITE_P(Configs, SamoyedsFormatTest,
                         ::testing::Values(SamoyedsParam{1, 2, 16}, SamoyedsParam{1, 2, 32},
                                           SamoyedsParam{4, 8, 32}, SamoyedsParam{8, 16, 32},
                                           SamoyedsParam{2, 4, 32}, SamoyedsParam{1, 2, 64},
                                           SamoyedsParam{2, 2, 32}));

TEST(SamoyedsFormatBasicTest, KeepsHighestNormSubRows) {
  // Block of M=2 sub-rows: second sub-row has much larger norm.
  const SamoyedsConfig cfg{1, 2, 16};
  MatrixF dense(2, 16);
  for (int c = 0; c < 16; ++c) {
    dense(0, c) = 0.01f;
    dense(1, c) = 5.0f + c;
  }
  const MatrixF masked = SamoyedsMatrix::Encode(dense, cfg).ToDense();
  for (int c = 0; c < 16; ++c) {
    EXPECT_FLOAT_EQ(masked(0, c), 0.0f);
  }
  EXPECT_GT(CountNonZeros(masked), 0);
}

TEST(SamoyedsFormatBasicTest, SubRowSelectionIsPerBlockColumn) {
  // Sub-row 0 dominates in the first V window, sub-row 1 in the second; the
  // format must keep different sub-rows per window.
  const SamoyedsConfig cfg{1, 2, 16};
  MatrixF dense(2, 32);
  for (int c = 0; c < 16; ++c) {
    dense(0, c) = 10.0f;
    dense(1, c) = 0.1f;
    dense(0, 16 + c) = 0.1f;
    dense(1, 16 + c) = 10.0f;
  }
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(dense, cfg);
  EXPECT_EQ(enc.indices(0, 0), 0);
  EXPECT_EQ(enc.indices(0, 1), 1);
}

TEST(SamoyedsFormatBasicTest, MalformedIndicesDetected) {
  const SamoyedsConfig cfg{2, 4, 32};
  Rng rng(31);
  const MatrixF dense = rng.GaussianMatrix(8, 64);
  SamoyedsMatrix enc = SamoyedsMatrix::Encode(dense, cfg);
  ASSERT_TRUE(enc.IsWellFormed());
  enc.indices(0, 0) = 7;  // out of range for M=4
  EXPECT_FALSE(enc.IsWellFormed());
}

// ------------------------------------------------------------------ VENOM

TEST(VenomTest, RoundTripAndDensity) {
  const VenomConfig cfg{16, 2, 4};
  Rng rng(32);
  const MatrixF dense = rng.GaussianMatrix(32, 32);
  const VenomMatrix enc = VenomMatrix::Encode(dense, cfg);
  const MatrixF masked = enc.ToDense();
  EXPECT_NEAR(static_cast<double>(CountNonZeros(masked)) / masked.size(), cfg.density(), 1e-9);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      if (masked(r, c) != 0.0f) {
        EXPECT_FLOAT_EQ(masked(r, c), dense(r, c));
      }
    }
  }
}

TEST(VenomTest, KeepsHighestNormColumns) {
  // 4 of 8 columns kept: a multiple of 4 as the second-level 2:4 encode
  // requires (the encoder asserts kept % 4 == 0 in debug builds).
  const VenomConfig cfg{4, 4, 8};
  MatrixF dense(4, 8);
  for (int r = 0; r < 4; ++r) {
    dense(r, 2) = 100.0f;  // column 2 dominates
    for (int c = 5; c < 8; ++c) {
      dense(r, c) = 0.5f + 0.1f * static_cast<float>(c);
    }
  }
  const VenomMatrix enc = VenomMatrix::Encode(dense, cfg);
  // Kept columns are {2, 5, 6, 7}, reported in ascending order.
  EXPECT_EQ(enc.col_indices(0, 0), 2);
  EXPECT_EQ(enc.col_indices(0, 1), 5);
}

TEST(VenomTest, MaskMatchesEncodeDecode) {
  const VenomConfig cfg{8, 2, 4};
  Rng rng(33);
  MatrixF dense = rng.GaussianMatrix(16, 16);
  MatrixF masked = dense;
  ApplyVenomMask(masked, cfg);
  EXPECT_TRUE(VenomMatrix::Encode(dense, cfg).ToDense() == masked);
}

// ----------------------------------------------------------- block sparse

TEST(BlockSparseTest, RoundTrip) {
  Rng rng(34);
  MatrixF dense(64, 96);
  // Populate only two blocks.
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      dense(r, c) = rng.NextGaussian();
      dense(32 + r, 64 + c) = rng.NextGaussian();
    }
  }
  const BlockSparseMatrix bs = BlockSparseMatrix::FromDense(dense, 32);
  EXPECT_EQ(bs.present_blocks(), 2);
  EXPECT_TRUE(bs.ToDense() == dense);
}

TEST(BlockSparseTest, MultiplyMatchesReference) {
  Rng rng(35);
  MatrixF dense(64, 64);
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 32; ++c) {
      dense(r, c) = rng.NextGaussian();
    }
  }
  const MatrixF b = rng.GaussianMatrix(64, 16);
  const BlockSparseMatrix bs = BlockSparseMatrix::FromDense(dense, 32);
  EXPECT_LE(MaxAbsDiff(bs.Multiply(b), GemmRef(dense, b)), 1e-4f);
}

TEST(BlockSparseTest, NonMultipleDimensions) {
  Rng rng(36);
  const MatrixF dense = rng.GaussianMatrix(50, 70);
  const BlockSparseMatrix bs = BlockSparseMatrix::FromDense(dense, 32);
  EXPECT_TRUE(bs.ToDense() == dense);
}

// ------------------------------------------------------- metadata layout

TEST(MetadataLayoutTest, MappingIsBijective) {
  bool seen[16][16] = {};
  for (int r = 0; r < kMetaTileDim; ++r) {
    for (int c = 0; c < kMetaTileDim; ++c) {
      const auto [dr, dc] = MetadataDeviceLocation(r, c);
      ASSERT_GE(dr, 0);
      ASSERT_LT(dr, 16);
      ASSERT_GE(dc, 0);
      ASSERT_LT(dc, 16);
      EXPECT_FALSE(seen[dr][dc]) << "collision at " << r << "," << c;
      seen[dr][dc] = true;
      const auto [br, bc] = MetadataLogicalLocation(dr, dc);
      EXPECT_EQ(br, r);
      EXPECT_EQ(bc, c);
    }
  }
}

TEST(MetadataLayoutTest, PackUnpackRoundTripNaive) {
  Rng rng(37);
  Matrix<uint8_t> meta(32, 48);
  for (auto& v : meta.flat()) {
    v = static_cast<uint8_t>(rng.NextBounded(4));
  }
  const auto words = PackMetadata(meta, /*reorganized=*/false);
  const auto back = UnpackMetadata(words, 32, 48, /*reorganized=*/false);
  EXPECT_TRUE(back == meta);
}

TEST(MetadataLayoutTest, PackUnpackRoundTripReorganized) {
  Rng rng(38);
  Matrix<uint8_t> meta(48, 32);
  for (auto& v : meta.flat()) {
    v = static_cast<uint8_t>(rng.NextBounded(4));
  }
  const auto words = PackMetadata(meta, /*reorganized=*/true);
  const auto back = UnpackMetadata(words, 48, 32, /*reorganized=*/true);
  EXPECT_TRUE(back == meta);
}

TEST(MetadataLayoutTest, ReorganizedDiffersFromNaive) {
  Matrix<uint8_t> meta(16, 16);
  meta(1, 0) = 3;  // off-diagonal marker
  const auto naive = PackMetadata(meta, false);
  const auto reorg = PackMetadata(meta, true);
  EXPECT_NE(naive, reorg);
}

TEST(MetadataLayoutTest, NonTileMultipleShapes) {
  Rng rng(39);
  Matrix<uint8_t> meta(20, 24);  // not multiples of 16
  for (auto& v : meta.flat()) {
    v = static_cast<uint8_t>(rng.NextBounded(4));
  }
  const auto words = PackMetadata(meta, true);
  const auto back = UnpackMetadata(words, 20, 24, true);
  EXPECT_TRUE(back == meta);
}

// -------------------------------------------------------------------- SEL

TEST(SelectionTest, AllSelectsEverything) {
  const Selection s = Selection::All(5);
  EXPECT_EQ(s.selected(), 5);
  EXPECT_TRUE(s.IsValid());
  EXPECT_DOUBLE_EQ(s.density(), 1.0);
}

TEST(SelectionTest, GatherScatterRoundTrip) {
  Rng rng(40);
  const MatrixF b = rng.GaussianMatrix(6, 10);
  Selection sel;
  sel.full_size = 10;
  sel.indices = {1, 4, 7, 8};
  ASSERT_TRUE(sel.IsValid());
  const MatrixF gathered = GatherColumns(b, sel);
  EXPECT_EQ(gathered.cols(), 4);
  EXPECT_FLOAT_EQ(gathered(2, 1), b(2, 4));
  const MatrixF scattered = ScatterColumns(gathered, sel);
  EXPECT_EQ(scattered.cols(), 10);
  EXPECT_FLOAT_EQ(scattered(3, 7), b(3, 7));
  EXPECT_FLOAT_EQ(scattered(3, 0), 0.0f);
}

TEST(SelectionTest, ValidationCatchesDisorder) {
  Selection sel;
  sel.full_size = 10;
  sel.indices = {3, 3};
  EXPECT_FALSE(sel.IsValid());
  sel.indices = {5, 2};
  EXPECT_FALSE(sel.IsValid());
  sel.indices = {5, 11};
  EXPECT_FALSE(sel.IsValid());
}

}  // namespace
}  // namespace samoyeds
