// AsyncServer front-end: the synchronous engine is the bit-exact oracle for
// the async driver loop (virtual clock, submit-before-Start) at every
// thread/shard/chunk/overlap combination; mailbox backpressure composes with
// priority shedding; Cancel distinguishes unknown ids; decode-priority
// chunking and decode/prefill overlap stay bit-lossless; and a multi-client
// randomized chaos run (faults on) leaves every session in exactly one
// terminal state with zero page leaks.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/moe/decoder_layer.h"
#include "src/serving/engine.h"
#include "src/serving/faults.h"
#include "src/serving/scheduler.h"
#include "src/serving/server.h"
#include "src/serving/trace.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace serving {
namespace {

MoeModelConfig TinyConfig() {
  MoeModelConfig cfg;
  cfg.name = "tiny";
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  cfg.shared_experts = 0;
  return cfg;
}

std::vector<SamoyedsDecoderLayerWeights> BuildTinyModel(Rng& rng, int layers,
                                                        const MoeModelConfig& cfg) {
  const SamoyedsConfig fmt{1, 2, 32};
  std::vector<SamoyedsDecoderLayerWeights> model;
  for (int l = 0; l < layers; ++l) {
    model.push_back(SamoyedsDecoderLayerWeights::Encode(DecoderLayerWeights::Random(rng, cfg), fmt));
  }
  return model;
}

Request MakeTestRequest(Rng& rng, int64_t id, int64_t arrival, int64_t prompt, int64_t decode,
                        int64_t hidden) {
  TraceEntry e{arrival, prompt, decode};
  return MakeRequest(rng, id, e, hidden);
}

EngineConfig BaseEngineConfig() {
  EngineConfig cfg;
  cfg.heads = 4;
  cfg.top_k = 2;
  cfg.threads = 2;
  cfg.scheduler.policy = SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 24;
  cfg.scheduler.max_resident_tokens = 64;
  return cfg;
}

// Mixed-phase workload: short and long prompts, arrivals spread so decode
// and prefill coexist. Prompts stay <= token_budget so the chunking-off
// combinations admit everything.
std::vector<Request> MixedWorkload(int64_t hidden) {
  Rng rng(614);
  std::vector<Request> requests;
  const int64_t prompts[] = {6, 3, 8, 5, 7, 4};
  const int64_t decodes[] = {4, 6, 2, 5, 3, 6};
  const int64_t arrivals[] = {0, 0, 1, 2, 4, 5};
  for (int64_t i = 0; i < 6; ++i) {
    requests.push_back(MakeTestRequest(rng, i, arrivals[i], prompts[i], decodes[i], hidden));
  }
  return requests;
}

bool SameMatrix(const MatrixF& a, const MatrixF& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

std::map<int64_t, MatrixF> RunSync(const std::vector<SamoyedsDecoderLayerWeights>& model,
                                   const EngineConfig& cfg, const std::vector<Request>& requests) {
  ServingEngine engine(model, cfg);
  for (const Request& r : requests) {
    EXPECT_TRUE(engine.Submit(r));
  }
  engine.RunUntilDrained();
  std::map<int64_t, MatrixF> outputs;
  for (const Request& r : requests) {
    const RequestResult* res = engine.Result(r.id);
    EXPECT_NE(res, nullptr) << "session " << r.id;
    if (res == nullptr) {
      continue;
    }
    EXPECT_EQ(res->status, RequestStatus::kFinished) << "session " << r.id;
    outputs.emplace(r.id, res->outputs);
  }
  return outputs;
}

// ---- Timing-model overlap primitive ----------------------------------------

TEST(OverlappedPhaseMsTest, BoundsClampsAndCommutes) {
  // Perfect overlap hides the shorter phase entirely; zero overlap is serial.
  EXPECT_DOUBLE_EQ(TimingModel::OverlappedPhaseMs(3.0, 2.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(TimingModel::OverlappedPhaseMs(3.0, 2.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(TimingModel::OverlappedPhaseMs(3.0, 2.0, 0.5), 4.0);

  // max(a, b) <= result <= a + b for any efficiency in [0, 1].
  for (double eff : {0.0, 0.25, 0.85, 1.0}) {
    const double r = TimingModel::OverlappedPhaseMs(4.0, 1.5, eff);
    EXPECT_GE(r, 4.0);
    EXPECT_LE(r, 5.5);
    // Commutative: which phase is "compute" vs "transfer" cannot matter.
    EXPECT_DOUBLE_EQ(r, TimingModel::OverlappedPhaseMs(1.5, 4.0, eff));
  }

  // Out-of-range efficiency and negative durations clamp instead of
  // producing negative or super-serial times.
  EXPECT_DOUBLE_EQ(TimingModel::OverlappedPhaseMs(3.0, 2.0, 1.5), 3.0);
  EXPECT_DOUBLE_EQ(TimingModel::OverlappedPhaseMs(3.0, 2.0, -1.0), 5.0);
  EXPECT_DOUBLE_EQ(TimingModel::OverlappedPhaseMs(-1.0, 2.0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(TimingModel::OverlappedPhaseMs(0.0, 0.0, 0.5), 0.0);
}

// ---- TryCancel outcomes -----------------------------------------------------

TEST(TryCancelTest, DistinguishesUnknownCancelledAndTerminal) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(11);
  ServingEngine engine(BuildTinyModel(rng, 1, cfg), BaseEngineConfig());

  // Never submitted: a distinct verdict, not a silent no-op.
  EXPECT_EQ(engine.TryCancel(42), CancelOutcome::kUnknownId);

  Rng req_rng(12);
  ASSERT_TRUE(engine.Submit(MakeTestRequest(req_rng, 1, 0, 4, 2, cfg.hidden)));
  EXPECT_EQ(engine.TryCancel(1), CancelOutcome::kCancelled);
  // Retired (cancelled) ids are known forever: cancelling again is
  // already-terminal, not unknown.
  EXPECT_EQ(engine.TryCancel(1), CancelOutcome::kAlreadyTerminal);
  engine.RunUntilDrained();
  EXPECT_EQ(engine.TryCancel(1), CancelOutcome::kAlreadyTerminal);
  EXPECT_EQ(engine.TryCancel(42), CancelOutcome::kUnknownId);

  EXPECT_STREQ(CancelOutcomeName(CancelOutcome::kCancelled), "cancelled");
  EXPECT_STREQ(CancelOutcomeName(CancelOutcome::kUnknownId), "unknown-id");
  EXPECT_STREQ(CancelOutcomeName(CancelOutcome::kAlreadyTerminal), "already-terminal");
}

// ---- Async vs sync bit-identity ---------------------------------------------

// The determinism tentpole: with the virtual clock and every submission
// enqueued before Start(), the async server must reproduce the synchronous
// engine bit-for-bit at every thread/shard/chunk/overlap combination.
TEST(AsyncServerTest, MatchesSyncOracleAtEveryCombination) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(21);
  const auto model = BuildTinyModel(rng, 2, cfg);
  const std::vector<Request> requests = MixedWorkload(cfg.hidden);

  for (int threads : {1, 2}) {
    for (int shards : {1, 2}) {
      for (int64_t chunk : {int64_t{0}, int64_t{4}}) {
        for (bool overlap : {false, true}) {
          EngineConfig engine_cfg = BaseEngineConfig();
          engine_cfg.threads = threads;
          engine_cfg.shards = shards;
          engine_cfg.scheduler.chunk_tokens = chunk;
          engine_cfg.overlap = overlap;
          const std::string combo = "threads=" + std::to_string(threads) +
                                    " shards=" + std::to_string(shards) +
                                    " chunk=" + std::to_string(chunk) +
                                    " overlap=" + std::to_string(overlap);

          const std::map<int64_t, MatrixF> oracle = RunSync(model, engine_cfg, requests);

          ServingEngine engine(model, engine_cfg);
          AsyncServer server(engine, ServerConfig{});  // virtual clock
          for (const Request& r : requests) {
            EXPECT_TRUE(server.Submit(r)) << combo;
          }
          server.Start();
          server.Drain();
          // Streamed rows match the oracle row-for-row...
          for (const Request& r : requests) {
            const ServerPollResult result = server.WaitTerminal(r.id);
            ASSERT_TRUE(result.known) << combo;
            EXPECT_EQ(result.status, RequestStatus::kFinished) << combo;
            EXPECT_EQ(result.delivered_rows, r.total_tokens()) << combo;
            EXPECT_TRUE(SameMatrix(result.new_rows, oracle.at(r.id)))
                << combo << " session " << r.id;
          }
          server.Stop();
          // ...and so does the engine-side result surface.
          for (const Request& r : requests) {
            const RequestResult* res = engine.Result(r.id);
            ASSERT_NE(res, nullptr) << combo;
            EXPECT_TRUE(SameMatrix(res->outputs, oracle.at(r.id)))
                << combo << " session " << r.id;
          }
        }
      }
    }
  }
}

// ---- Decode-priority chunking -----------------------------------------------

TEST(ChunkPolicyTest, DecodePriorityShrinksChunkCap) {
  SchedulerConfig cfg;
  cfg.chunk_tokens = 4;
  cfg.chunk_policy = ChunkPolicy::kDecodePriority;
  // No decode rows resident: exactly kFixed.
  EXPECT_EQ(PrefillChunkRows(10, 100, cfg, 0), 4);
  // Resident decode shrinks the cap...
  EXPECT_EQ(PrefillChunkRows(10, 100, cfg, 3), 1);
  // ...but never below one row (prefill must keep making progress).
  EXPECT_EQ(PrefillChunkRows(10, 100, cfg, 7), 1);
  EXPECT_EQ(FirstChunkRows(10, cfg, 2), 2);

  cfg.chunk_policy = ChunkPolicy::kFixed;
  EXPECT_EQ(PrefillChunkRows(10, 100, cfg, 7), 4);

  ChunkPolicy parsed = ChunkPolicy::kFixed;
  EXPECT_TRUE(ParseChunkPolicy("decode-priority", &parsed));
  EXPECT_EQ(parsed, ChunkPolicy::kDecodePriority);
  EXPECT_TRUE(ParseChunkPolicy("fixed", &parsed));
  EXPECT_EQ(parsed, ChunkPolicy::kFixed);
  EXPECT_FALSE(ParseChunkPolicy("bogus", &parsed));
}

TEST(ChunkPolicyTest, DecodePriorityIsBitLosslessAndYieldsToDecode) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(31);
  const auto model = BuildTinyModel(rng, 2, cfg);

  // A decoding resident plus a long late prompt: under decode-priority the
  // prompt's chunks shrink while decode rows are in the batch, stretching
  // its prefill over more steps.
  Rng req_rng(32);
  std::vector<Request> requests;
  requests.push_back(MakeTestRequest(req_rng, 0, 0, 4, 8, cfg.hidden));
  requests.push_back(MakeTestRequest(req_rng, 1, 2, 20, 6, cfg.hidden));

  EngineConfig fixed_cfg = BaseEngineConfig();
  fixed_cfg.scheduler.token_budget = 8;
  fixed_cfg.scheduler.chunk_tokens = 4;

  EngineConfig dp_cfg = fixed_cfg;
  dp_cfg.scheduler.chunk_policy = ChunkPolicy::kDecodePriority;

  ServingEngine fixed_engine(model, fixed_cfg);
  ServingEngine dp_engine(model, dp_cfg);
  for (const Request& r : requests) {
    ASSERT_TRUE(fixed_engine.Submit(r));
    ASSERT_TRUE(dp_engine.Submit(r));
  }
  const int64_t fixed_steps = fixed_engine.RunUntilDrained();
  const int64_t dp_steps = dp_engine.RunUntilDrained();

  // Chunk sizing is schedule policy, not math: outputs stay bit-identical.
  for (const Request& r : requests) {
    EXPECT_TRUE(SameMatrix(fixed_engine.Result(r.id)->outputs, dp_engine.Result(r.id)->outputs))
        << "session " << r.id;
  }
  // Smaller prompt chunks while decode is resident means the prefill takes
  // strictly more steps than fixed-cap chunking.
  EXPECT_GT(dp_steps, fixed_steps);
}

// ---- Decode/prefill overlap -------------------------------------------------

TEST(OverlapTest, BitLosslessWithNonNegativeModeledSavings) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(41);
  const auto model = BuildTinyModel(rng, 2, cfg);
  const std::vector<Request> requests = MixedWorkload(cfg.hidden);

  EngineConfig serial_cfg = BaseEngineConfig();
  serial_cfg.shards = 2;
  serial_cfg.scheduler.chunk_tokens = 4;

  EngineConfig overlap_cfg = serial_cfg;
  overlap_cfg.overlap = true;

  ServingEngine serial_engine(model, serial_cfg);
  ServingEngine overlap_engine(model, overlap_cfg);
  for (const Request& r : requests) {
    ASSERT_TRUE(serial_engine.Submit(r));
    ASSERT_TRUE(overlap_engine.Submit(r));
  }
  serial_engine.RunUntilDrained();
  overlap_engine.RunUntilDrained();

  for (const Request& r : requests) {
    EXPECT_TRUE(
        SameMatrix(serial_engine.Result(r.id)->outputs, overlap_engine.Result(r.id)->outputs))
        << "session " << r.id;
  }

  const ServingReport serial_report = serial_engine.Report();
  const ServingReport overlap_report = overlap_engine.Report();
  // Overlap changes modeled wall time only: savings are non-negative by
  // construction (OverlappedPhaseMs <= the serial sum), and with mixed
  // decode + prefill batches on 2 shards some step genuinely overlapped.
  EXPECT_DOUBLE_EQ(serial_report.est_overlap_saved_ms, 0.0);
  EXPECT_GT(overlap_report.est_overlap_saved_ms, 0.0);
  EXPECT_GT(overlap_report.est_compute_ms, 0.0);
  EXPECT_LE(overlap_report.est_overlap_saved_ms,
            overlap_report.est_compute_ms + overlap_report.est_alltoall_ms);
}

// ---- Server surface ---------------------------------------------------------

TEST(AsyncServerTest, PollAndCancelContracts) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(51);
  ServingEngine engine(BuildTinyModel(rng, 1, cfg), BaseEngineConfig());
  AsyncServer server(engine);

  // Unknown ids: Poll is non-blocking and distinct, Cancel names the
  // verdict; both work with the driver stopped.
  EXPECT_FALSE(server.Poll(7).known);
  EXPECT_FALSE(server.WaitTerminal(7).known);
  EXPECT_EQ(server.Cancel(7), CancelOutcome::kUnknownId);

  Rng req_rng(52);
  Request r = MakeTestRequest(req_rng, 7, 0, 4, 3, cfg.hidden);
  EXPECT_TRUE(server.Submit(r));
  EXPECT_FALSE(server.Submit(r)) << "duplicate id";

  // Still buffered in the mailbox (driver not started): queued, zero rows.
  ServerPollResult queued = server.Poll(7);
  EXPECT_TRUE(queued.known);
  EXPECT_FALSE(queued.terminal);
  EXPECT_EQ(queued.status, RequestStatus::kQueued);
  EXPECT_EQ(queued.delivered_rows, 0);

  server.Start();
  const ServerPollResult done = server.WaitTerminal(7);
  EXPECT_TRUE(done.terminal);
  EXPECT_EQ(done.status, RequestStatus::kFinished);
  EXPECT_EQ(done.delivered_rows, 7);
  EXPECT_EQ(done.new_rows.rows(), 7);

  // The poll cursor advanced past the delivered rows; re-polling is empty
  // but still terminal. Cancelling a finished session is already-terminal.
  const ServerPollResult again = server.Poll(7);
  EXPECT_TRUE(again.terminal);
  EXPECT_EQ(again.new_rows.rows(), 0);
  EXPECT_EQ(again.delivered_rows, 7);
  EXPECT_EQ(server.Cancel(7), CancelOutcome::kAlreadyTerminal);
  EXPECT_EQ(server.Cancel(99), CancelOutcome::kUnknownId);
  server.Drain();
  server.Stop();
  EXPECT_GT(server.steps(), 0);
}

TEST(AsyncServerTest, CancelCatchesMailboxPendingSubmission) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(61);
  ServingEngine engine(BuildTinyModel(rng, 1, cfg), BaseEngineConfig());
  AsyncServer server(engine);

  Rng req_rng(62);
  EXPECT_TRUE(server.Submit(MakeTestRequest(req_rng, 1, 0, 4, 2, cfg.hidden)));
  // Driver not started: the submission is still in the mailbox and cancels
  // without the engine ever seeing the id.
  EXPECT_EQ(server.Cancel(1), CancelOutcome::kCancelled);
  EXPECT_EQ(server.Cancel(1), CancelOutcome::kAlreadyTerminal);
  const ServerPollResult polled = server.Poll(1);
  EXPECT_TRUE(polled.terminal);
  EXPECT_EQ(polled.status, RequestStatus::kCancelled);

  server.Start();
  server.Drain();
  server.Stop();
  EXPECT_EQ(engine.TryCancel(1), CancelOutcome::kUnknownId) << "engine never saw the id";
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);
}

TEST(AsyncServerTest, MailboxBackpressureShedsLowestPriorityBelowArrival) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(71);
  ServingEngine engine(BuildTinyModel(rng, 1, cfg), BaseEngineConfig());
  ServerConfig server_cfg;
  server_cfg.mailbox_capacity = 2;
  AsyncServer server(engine, server_cfg);

  Rng req_rng(72);
  auto make = [&](int64_t id, int priority) {
    Request r = MakeTestRequest(req_rng, id, 0, 4, 2, cfg.hidden);
    r.priority = priority;
    return r;
  };

  EXPECT_TRUE(server.Submit(make(0, 0)));
  EXPECT_TRUE(server.Submit(make(1, 1)));
  // Mailbox full and nothing strictly below priority 0: the arrival itself
  // sheds. Its session still exists, already terminal.
  EXPECT_FALSE(server.Submit(make(2, 0)));
  const ServerPollResult shed_arrival = server.Poll(2);
  EXPECT_TRUE(shed_arrival.terminal);
  EXPECT_EQ(shed_arrival.status, RequestStatus::kShedded);
  // A priority-2 arrival displaces the lowest class pending (id 0).
  EXPECT_TRUE(server.Submit(make(3, 2)));
  const ServerPollResult displaced = server.Poll(0);
  EXPECT_TRUE(displaced.terminal);
  EXPECT_EQ(displaced.status, RequestStatus::kShedded);
  EXPECT_EQ(server.shed_submits(), 2);

  server.Start();
  server.Drain();
  // The survivors finish; the shed sessions stay shed.
  EXPECT_EQ(server.WaitTerminal(1).status, RequestStatus::kFinished);
  EXPECT_EQ(server.WaitTerminal(3).status, RequestStatus::kFinished);
  EXPECT_EQ(server.WaitTerminal(0).status, RequestStatus::kShedded);
  EXPECT_EQ(server.WaitTerminal(2).status, RequestStatus::kShedded);
  server.Stop();
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);
}

TEST(AsyncServerTest, WallClockStampsArrivalsAtDrainTime) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(81);
  ServingEngine engine(BuildTinyModel(rng, 1, cfg), BaseEngineConfig());
  ServerConfig server_cfg;
  server_cfg.clock = ServerClock::kWall;
  AsyncServer server(engine, server_cfg);

  // A far-future virtual arrival step is overridden by the wall clock: the
  // request is schedulable the moment the driver drains it.
  Rng req_rng(82);
  Request r = MakeTestRequest(req_rng, 1, /*arrival=*/100000, 4, 2, cfg.hidden);
  EXPECT_TRUE(server.Submit(r));
  server.Start();
  const ServerPollResult done = server.WaitTerminal(1);
  EXPECT_EQ(done.status, RequestStatus::kFinished);
  server.Drain();
  server.Stop();
  EXPECT_LT(server.steps(), 1000);
}

// ---- Multi-client chaos -----------------------------------------------------

// N client threads hammer Submit/Poll/Cancel against a faulty engine while
// the driver steps. Gates: every session reaches exactly one terminal
// status, terminal results are frozen, and the paged KV cache plus the host
// swap tier end empty.
TEST(AsyncServerTest, ConcurrentClientsChaosEverySessionTerminalNoLeaks) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(91);
  const auto model = BuildTinyModel(rng, 2, cfg);

  EngineConfig engine_cfg = BaseEngineConfig();
  engine_cfg.shards = 2;
  engine_cfg.scheduler.page_tokens = 4;
  engine_cfg.scheduler.max_pages = 10;
  engine_cfg.scheduler.preempt = true;
  engine_cfg.scheduler.chunk_tokens = 4;
  engine_cfg.scheduler.chunk_policy = ChunkPolicy::kDecodePriority;
  engine_cfg.overlap = true;
  engine_cfg.swap = true;
  engine_cfg.host_pages = 64;
  {
    std::string error;
    ASSERT_TRUE(ParseFaultSchedule("kv-alloc~0.1,swap-out~0.2,swap-in~0.2,swap-corrupt~0.5",
                                   &engine_cfg.faults, &error))
        << error;
  }
  engine_cfg.fault_seed = 7;

  ServingEngine engine(model, engine_cfg);
  ServerConfig server_cfg;
  server_cfg.clock = ServerClock::kWall;
  AsyncServer server(engine, server_cfg);
  server.Start();

  constexpr int kClients = 4;
  constexpr int64_t kPerClient = 6;
  std::atomic<int> submit_failures{0};
  std::atomic<int> unknown_cancels{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng thread_rng(1000 + c);
      for (int64_t i = 0; i < kPerClient; ++i) {
        const int64_t id = c * kPerClient + i;
        // Cancel targets (id % 5 == 0) get long decodes so they cannot
        // finish before the cancel lands — the cancelled-status gate below
        // stays deterministic under any scheduler interleaving.
        const int64_t decode = id % 5 == 0 ? 24 : 1 + (id % 5);
        Request r = MakeTestRequest(thread_rng, id, 0, 3 + (id % 6), decode, cfg.hidden);
        r.priority = static_cast<int>(id % 3);
        if (id % 7 == 0 && id % 5 != 0) {
          r.deadline_steps = 3 + id % 4;
        }
        if (!server.Submit(std::move(r))) {
          submit_failures.fetch_add(1);
          continue;
        }
        // Interleave polls (and the occasional cancel) with the driver.
        const ServerPollResult polled = server.Poll(id);
        EXPECT_TRUE(polled.known);
        if (id % 5 == 0) {
          // Submitted through this server: the verdict can be cancelled or
          // already-terminal, never unknown.
          if (server.Cancel(id) == CancelOutcome::kUnknownId) {
            unknown_cancels.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(submit_failures.load(), 0);
  EXPECT_EQ(unknown_cancels.load(), 0);

  server.Drain();
  // Every session is terminal with a frozen status, and cancelled sessions
  // really report cancelled.
  std::map<RequestStatus, int> by_status;
  for (int64_t id = 0; id < kClients * kPerClient; ++id) {
    const ServerPollResult first = server.WaitTerminal(id);
    ASSERT_TRUE(first.known) << "session " << id;
    ASSERT_TRUE(first.terminal) << "session " << id;
    const ServerPollResult second = server.Poll(id);
    EXPECT_EQ(second.status, first.status) << "terminal status changed for session " << id;
    EXPECT_EQ(second.new_rows.rows(), 0) << "rows after terminal drain for session " << id;
    by_status[first.status]++;
  }
  server.Stop();

  // The workload exercised more than one terminal path.
  EXPECT_GT(by_status[RequestStatus::kFinished], 0);
  EXPECT_GT(by_status[RequestStatus::kCancelled], 0);

  // Zero page leaks, device and host tier.
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);
  EXPECT_EQ(engine.swap_tier().used_pages(), 0);
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
