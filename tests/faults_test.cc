// Fault injection & serving hardening: injector determinism, schedule
// parsing, per-request deadlines, overload shedding, shard failover,
// corrupted-swap recovery, the liveness watchdog — and the chaos gates:
// every session reaches exactly one terminal status with exactly one
// reason, no page leaks, survivors bit-identical to a fault-free run, and
// the same schedule + seed reproducing byte-identical reports.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/moe/decoder_layer.h"
#include "src/serving/engine.h"
#include "src/serving/faults.h"
#include "src/serving/scheduler.h"
#include "src/serving/trace.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace serving {
namespace {

MoeModelConfig TinyConfig() {
  MoeModelConfig cfg;
  cfg.name = "tiny";
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  cfg.shared_experts = 0;
  return cfg;
}

struct TinyModel {
  std::vector<DecoderLayerWeights> dense;
  std::vector<SamoyedsDecoderLayerWeights> sparse;
};

TinyModel BuildTinyModel(Rng& rng, int layers, const MoeModelConfig& cfg) {
  const SamoyedsConfig fmt{1, 2, 32};
  TinyModel model;
  for (int l = 0; l < layers; ++l) {
    DecoderLayerWeights w = DecoderLayerWeights::Random(rng, cfg);
    model.sparse.push_back(SamoyedsDecoderLayerWeights::Encode(w, fmt));
    for (auto& e : w.moe.experts) {
      e.ApplyMask(fmt);
    }
    for (auto& e : w.moe.shared_experts) {
      e.ApplyMask(fmt);
    }
    model.dense.push_back(std::move(w));
  }
  return model;
}

Request MakeTestRequest(Rng& rng, int64_t id, int64_t arrival, int64_t prompt, int64_t decode,
                        int64_t hidden) {
  TraceEntry e{arrival, prompt, decode};
  return MakeRequest(rng, id, e, hidden);
}

EngineConfig TinyEngineConfig(int threads = 2) {
  EngineConfig cfg;
  cfg.heads = 4;
  cfg.top_k = 2;
  cfg.threads = threads;
  cfg.scheduler.policy = SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 24;
  cfg.scheduler.max_resident_tokens = 64;
  return cfg;
}

std::vector<FaultRule> MustParse(const std::string& spec) {
  std::vector<FaultRule> rules;
  std::string error;
  EXPECT_TRUE(ParseFaultSchedule(spec, &rules, &error)) << spec << ": " << error;
  return rules;
}

// ---- Schedule grammar -------------------------------------------------------

TEST(FaultScheduleTest, ParsesRulesTriggersArgsAndBudgets) {
  const std::vector<FaultRule> rules =
      MustParse("kv-alloc~0.05,shard-die@40:1,swap-corrupt@12x2,link-degrade~0.5");
  ASSERT_EQ(rules.size(), 4u);

  EXPECT_EQ(rules[0].point, FaultPoint::kKvAlloc);
  EXPECT_DOUBLE_EQ(rules[0].probability, 0.05);
  EXPECT_EQ(rules[0].at_step, -1);
  EXPECT_EQ(rules[0].max_fires, -1);

  EXPECT_EQ(rules[1].point, FaultPoint::kShardDeath);
  EXPECT_EQ(rules[1].at_step, 40);
  EXPECT_EQ(rules[1].arg, 1);
  // Step-triggered topology faults default to firing once, not per-probe.
  EXPECT_EQ(rules[1].max_fires, 1);

  EXPECT_EQ(rules[2].point, FaultPoint::kSwapCorrupt);
  EXPECT_EQ(rules[2].at_step, 12);
  EXPECT_EQ(rules[2].max_fires, 2);

  EXPECT_EQ(rules[3].point, FaultPoint::kLinkDegrade);
  EXPECT_DOUBLE_EQ(rules[3].probability, 0.5);
  EXPECT_EQ(rules[3].arg, 2);  // default bandwidth divisor

  // An empty spec is an empty (fault-free) schedule, not an error.
  EXPECT_TRUE(MustParse("").empty());
}

TEST(FaultScheduleTest, RejectsMalformedRulesWithNamedErrors) {
  const std::pair<const char*, const char*> bad[] = {
      {"bogus~0.5", "unknown fault point"},
      {"kv-alloc", "lacks"},
      {"kv-alloc~1.5", "bad probability"},
      {"kv-alloc@-3", "bad step"},
      {"kv-alloc@5x0", "bad fire budget"},
      {"shard-die@4:z", "bad arg"},
      {"kv-alloc~0.1,,swap-in~0.2", "empty fault rule"},
  };
  for (const auto& [spec, needle] : bad) {
    std::vector<FaultRule> rules;
    std::string error;
    EXPECT_FALSE(ParseFaultSchedule(spec, &rules, &error)) << spec;
    EXPECT_NE(error.find(needle), std::string::npos) << spec << " -> " << error;
    EXPECT_TRUE(rules.empty()) << spec;  // untouched on failure
  }
}

// ---- Injector determinism ---------------------------------------------------

std::vector<int> ProbeTrace(uint64_t seed, int64_t* swap_in_fires) {
  FaultInjector inj;
  inj.Configure(MustParse("kv-alloc~0.3,swap-in~0.5x4,swap-out~0.2"), seed);
  std::vector<int> fires;
  for (int64_t step = 0; step < 40; ++step) {
    inj.BeginStep(step);
    for (FaultPoint p :
         {FaultPoint::kKvAlloc, FaultPoint::kSwapIn, FaultPoint::kSwapOut}) {
      for (int k = 0; k < 3; ++k) {
        fires.push_back(inj.Probe(p).fire ? 1 : 0);
      }
    }
  }
  if (swap_in_fires != nullptr) {
    *swap_in_fires = inj.fires(FaultPoint::kSwapIn);
  }
  return fires;
}

TEST(FaultInjectorTest, SameSeedReplaysBitExactlyAndBudgetsCapFires) {
  int64_t swap_in_fires = 0;
  const std::vector<int> a = ProbeTrace(7, &swap_in_fires);
  const std::vector<int> b = ProbeTrace(7, nullptr);
  EXPECT_EQ(a, b);
  // The x4 lifetime budget on swap-in held across 120 probes of the point.
  EXPECT_LE(swap_in_fires, 4);
  EXPECT_GT(swap_in_fires, 0);
  // 360 independent draws: two seeds never produce the same trace.
  EXPECT_NE(a, ProbeTrace(8, nullptr));
}

TEST(FaultInjectorTest, AtStepRuleFiresOnEveryProbeOfExactlyThatStep) {
  FaultInjector inj;
  inj.Configure(MustParse("kv-alloc@5"), 0);
  for (int64_t step = 0; step < 10; ++step) {
    inj.BeginStep(step);
    int fired = 0;
    for (int k = 0; k < 4; ++k) {
      fired += inj.ShouldFail(FaultPoint::kKvAlloc) ? 1 : 0;
    }
    EXPECT_EQ(fired, step == 5 ? 4 : 0) << "step " << step;
  }
  EXPECT_EQ(inj.total_fires(), 4);
  EXPECT_EQ(inj.fires(FaultPoint::kKvAlloc), 4);

  FaultInjector capped;
  capped.Configure(MustParse("kv-alloc@5x2"), 0);
  for (int64_t step = 0; step < 10; ++step) {
    capped.BeginStep(step);
    for (int k = 0; k < 4; ++k) {
      capped.ShouldFail(FaultPoint::kKvAlloc);
    }
  }
  EXPECT_EQ(capped.total_fires(), 2);
}

// ---- Deadlines --------------------------------------------------------------

TEST(ServingFaultsTest, DeadlineExpiryTerminatesWithTimedOutStatus) {
  Rng rng(151);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 1, cfg);
  ServingEngine engine(model.sparse, TinyEngineConfig());

  Request doomed = MakeTestRequest(rng, 0, 0, 4, 30, cfg.hidden);
  doomed.deadline_steps = 5;  // 34 tokens can never finish in 5 steps
  Request fine = MakeTestRequest(rng, 1, 0, 4, 2, cfg.hidden);
  ASSERT_TRUE(engine.Submit(doomed));
  ASSERT_TRUE(engine.Submit(fine));
  engine.RunUntilDrained(200);

  ASSERT_EQ(engine.Status(0), RequestStatus::kTimedOut);
  const RequestResult* result = engine.Result(0);
  ASSERT_NE(result, nullptr);
  EXPECT_NE(result->reason.find("deadline exceeded (5 steps)"), std::string::npos)
      << result->reason;
  // The partial prefix produced before expiry is delivered, not discarded.
  EXPECT_GE(result->outputs.rows(), 1);
  EXPECT_LT(result->outputs.rows(), doomed.total_tokens());

  EXPECT_EQ(engine.Status(1), RequestStatus::kFinished);
  EXPECT_EQ(engine.Report().requests_timed_out, 1);
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);
}

TEST(ServingFaultsTest, VictimSelectionEvictsMostSlackFirst) {
  // Same priority class: the no-deadline resident (infinite slack) is evicted
  // before the near-deadline one; higher priority outranks both.
  std::vector<VictimCandidate> residents;
  residents.push_back(VictimCandidate{1, 0, 0, 3});
  residents.push_back(VictimCandidate{2, 0, 1, INT64_MAX});
  residents.push_back(VictimCandidate{3, 1, 2, 1});
  EXPECT_EQ(Scheduler::PickVictim(residents), 1u);
}

// ---- Overload shedding ------------------------------------------------------

TEST(ServingFaultsTest, BoundedIngressShedsLowestPriorityYoungestFirst) {
  Rng rng(153);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 1, cfg);
  EngineConfig engine_cfg = TinyEngineConfig();
  engine_cfg.ingress_capacity = 2;
  ServingEngine engine(model.sparse, engine_cfg);

  // Arrival step 1 keeps everything parked in the ingress queue at submit
  // time, so the capacity gate is what decides.
  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 0, 1, 4, 2, cfg.hidden)));
  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 1, 1, 4, 2, cfg.hidden)));

  // A higher-priority arrival displaces the youngest bottom-class entry.
  Request vip = MakeTestRequest(rng, 2, 1, 4, 2, cfg.hidden);
  vip.priority = 1;
  ASSERT_TRUE(engine.Submit(vip));
  ASSERT_EQ(engine.Status(1), RequestStatus::kShedded);
  const RequestResult* displaced = engine.Result(1);
  ASSERT_NE(displaced, nullptr);
  EXPECT_NE(displaced->reason.find("displaced by a higher-priority arrival"),
            std::string::npos)
      << displaced->reason;

  // A bottom-class arrival with no victim below it is itself shed.
  EXPECT_FALSE(engine.Submit(MakeTestRequest(rng, 3, 1, 4, 2, cfg.hidden)));
  ASSERT_EQ(engine.Status(3), RequestStatus::kShedded);
  const RequestResult* refused = engine.Result(3);
  ASSERT_NE(refused, nullptr);
  EXPECT_NE(refused->reason.find("ingress queue full"), std::string::npos)
      << refused->reason;

  engine.RunUntilDrained(200);
  EXPECT_EQ(engine.Status(0), RequestStatus::kFinished);
  EXPECT_EQ(engine.Status(2), RequestStatus::kFinished);
  EXPECT_EQ(engine.Report().requests_shed, 2);
}

// ---- Shard failover ---------------------------------------------------------

// Runs `requests` to drain and returns each finished request's outputs keyed
// by id (every request is expected to finish).
std::map<int64_t, MatrixF> RunAllFinished(const TinyModel& model, const EngineConfig& cfg,
                                          const std::vector<Request>& requests,
                                          std::unique_ptr<ServingEngine>* keep = nullptr) {
  auto engine = std::make_unique<ServingEngine>(model.sparse, cfg);
  for (const Request& r : requests) {
    EXPECT_TRUE(engine->Submit(r));
  }
  engine->RunUntilDrained(20000);
  std::map<int64_t, MatrixF> outputs;
  for (const Request& r : requests) {
    const RequestResult* result = engine->Result(r.id);
    EXPECT_NE(result, nullptr);
    if (result != nullptr) {
      EXPECT_EQ(result->status, RequestStatus::kFinished) << "request " << r.id;
      outputs.emplace(r.id, result->outputs);
    }
  }
  if (keep != nullptr) {
    *keep = std::move(engine);
  }
  return outputs;
}

std::vector<Request> FailoverWorkload(int64_t hidden) {
  Rng rng(161);
  std::vector<Request> requests;
  const int64_t prompts[] = {4, 6, 8, 5, 7, 4};
  const int64_t decodes[] = {3, 5, 2, 4, 6, 3};
  const int64_t arrivals[] = {0, 0, 2, 4, 6, 8};
  for (int64_t i = 0; i < 6; ++i) {
    requests.push_back(MakeTestRequest(rng, i, arrivals[i], prompts[i], decodes[i], hidden));
  }
  return requests;
}

TEST(ServingFaultsTest, ShardDeathFailsOverBitIdentically) {
  Rng seed_rng(163);
  MoeModelConfig cfg = TinyConfig();
  cfg.num_experts = 8;
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);
  const std::vector<Request> requests = FailoverWorkload(cfg.hidden);

  const std::map<int64_t, MatrixF> baseline =
      RunAllFinished(model, TinyEngineConfig(2), requests);

  EngineConfig engine_cfg = TinyEngineConfig(2);
  engine_cfg.shards = 4;
  engine_cfg.faults = MustParse("shard-die@3:1");
  engine_cfg.fault_seed = 1;
  std::unique_ptr<ServingEngine> engine;
  const std::map<int64_t, MatrixF> degraded =
      RunAllFinished(model, engine_cfg, requests, &engine);

  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->shard_failovers(), 1);
  ASSERT_EQ(engine->live_shards().size(), 3u);
  EXPECT_EQ(engine->live_shards(), (std::vector<int>{0, 2, 3}));

  // The dead shard's experts were re-placed mid-run and every request still
  // reproduces the unsharded outputs bit-for-bit.
  ASSERT_EQ(degraded.size(), baseline.size());
  for (const auto& [id, out] : degraded) {
    EXPECT_TRUE(out == baseline.at(id)) << "request " << id;
  }

  const ServingReport report = engine->Report();
  EXPECT_EQ(report.shard_failovers, 1);
  EXPECT_EQ(report.injected_faults, 1);
  const std::string json = report.ToJson();
  EXPECT_TRUE(JsonParses(json));
  double failovers = 0.0;
  ASSERT_TRUE(FindJsonNumber(json, "shard_failovers", &failovers));
  EXPECT_EQ(failovers, 1.0);
}

TEST(ServingFaultsTest, DirectFailShardMidRunAndLastShardRefuses) {
  Rng seed_rng(165);
  MoeModelConfig cfg = TinyConfig();
  cfg.num_experts = 8;
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);
  const std::vector<Request> requests = FailoverWorkload(cfg.hidden);
  const std::map<int64_t, MatrixF> baseline =
      RunAllFinished(model, TinyEngineConfig(2), requests);

  EngineConfig engine_cfg = TinyEngineConfig(2);
  engine_cfg.shards = 2;
  ServingEngine engine(model.sparse, engine_cfg);
  for (const Request& r : requests) {
    ASSERT_TRUE(engine.Submit(r));
  }
  engine.Step();
  engine.Step();
  EXPECT_TRUE(engine.FailShard(1));
  EXPECT_FALSE(engine.FailShard(1));  // already dead
  EXPECT_FALSE(engine.FailShard(0));  // the last survivor keeps serving
  EXPECT_EQ(engine.live_shards(), (std::vector<int>{0}));
  engine.RunUntilDrained(20000);

  for (const Request& r : requests) {
    ASSERT_EQ(engine.Status(r.id), RequestStatus::kFinished) << "request " << r.id;
    EXPECT_TRUE(engine.Result(r.id)->outputs == baseline.at(r.id)) << "request " << r.id;
  }
  EXPECT_EQ(engine.shard_failovers(), 1);
}

// ---- Swap-path faults -------------------------------------------------------

// Four 8+8 requests against an 8-page pool of 4-token pages: decode growth
// must evict, and with swap enabled the evictions go through the host tier.
std::vector<Request> SwapPressureWorkload(int64_t hidden) {
  Rng rng(167);
  std::vector<Request> requests;
  for (int64_t i = 0; i < 4; ++i) {
    requests.push_back(MakeTestRequest(rng, i, 0, 8, 8, hidden));
  }
  return requests;
}

EngineConfig SwapEngineConfig() {
  EngineConfig cfg = TinyEngineConfig();
  cfg.scheduler.token_budget = 40;
  cfg.scheduler.page_tokens = 4;
  cfg.scheduler.max_pages = 8;
  cfg.scheduler.preempt = true;
  cfg.swap = true;
  cfg.host_pages = 64;
  return cfg;
}

TEST(ServingFaultsTest, CorruptedSwapPagesAreDetectedAndRecomputed) {
  Rng seed_rng(169);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);
  const std::vector<Request> requests = SwapPressureWorkload(cfg.hidden);

  std::unique_ptr<ServingEngine> clean_engine;
  const std::map<int64_t, MatrixF> clean =
      RunAllFinished(model, SwapEngineConfig(), requests, &clean_engine);
  ASSERT_NE(clean_engine, nullptr);
  ASSERT_GT(clean_engine->Report().swap_outs, 0) << "workload must exercise swap";

  EngineConfig engine_cfg = SwapEngineConfig();
  engine_cfg.faults = MustParse("swap-corrupt~1.0");  // flip a bit in every stash
  engine_cfg.fault_seed = 3;
  std::unique_ptr<ServingEngine> engine;
  const std::map<int64_t, MatrixF> recovered =
      RunAllFinished(model, engine_cfg, requests, &engine);

  // Every swap-in hit a checksum mismatch, fell back to recompute, and still
  // produced bit-identical outputs.
  ASSERT_NE(engine, nullptr);
  EXPECT_GT(engine->swap_tier().corruptions_detected(), 0);
  EXPECT_EQ(engine->Report().swap_corruptions, engine->swap_tier().corruptions_detected());
  ASSERT_EQ(recovered.size(), clean.size());
  for (const auto& [id, out] : recovered) {
    EXPECT_TRUE(out == clean.at(id)) << "request " << id;
  }
  EXPECT_EQ(engine->kv_cache().allocator().used_pages(), 0);
  EXPECT_EQ(engine->swap_tier().used_pages(), 0);
}

TEST(ServingFaultsTest, TransientAllocAndSwapFaultsRetryToCompletion) {
  Rng seed_rng(171);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);
  const std::vector<Request> requests = SwapPressureWorkload(cfg.hidden);
  const std::map<int64_t, MatrixF> clean =
      RunAllFinished(model, SwapEngineConfig(), requests);

  EngineConfig engine_cfg = SwapEngineConfig();
  engine_cfg.faults = MustParse("kv-alloc~0.2,swap-out~0.3,swap-in~0.3");
  engine_cfg.fault_seed = 11;
  std::unique_ptr<ServingEngine> engine;
  const std::map<int64_t, MatrixF> faulty =
      RunAllFinished(model, engine_cfg, requests, &engine);

  ASSERT_NE(engine, nullptr);
  const ServingReport report = engine->Report();
  EXPECT_GT(report.injected_faults, 0);
  EXPECT_GT(report.fault_retries, 0);
  EXPECT_EQ(report.fault_retries, engine->fault_retries());
  EXPECT_GT(report.fault_backoff_ms, 0.0);
  ASSERT_EQ(faulty.size(), clean.size());
  for (const auto& [id, out] : faulty) {
    EXPECT_TRUE(out == clean.at(id)) << "request " << id;
  }
  EXPECT_EQ(engine->kv_cache().allocator().used_pages(), 0);
  EXPECT_EQ(engine->swap_tier().used_pages(), 0);
}

// ---- Liveness watchdog ------------------------------------------------------

TEST(ServingFaultsTest, WatchdogTripsOncePerBacklogStarvationEpisode) {
  Rng rng(173);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 1, cfg);

  // 6-page pool of 8-token pages, preemption off: the 40-token resident
  // reserves 5 pages, so the 24-token follower (3 pages) starves in the
  // backlog until the resident retires ~33 steps later.
  EngineConfig engine_cfg = TinyEngineConfig();
  engine_cfg.scheduler.page_tokens = 8;
  engine_cfg.scheduler.max_pages = 6;
  engine_cfg.scheduler.preempt = false;
  engine_cfg.watchdog_steps = 10;
  std::vector<std::pair<int64_t, int64_t>> trips;
  engine_cfg.watchdog_hook = [&trips](int64_t id, int64_t step) {
    trips.emplace_back(id, step);
  };
  ServingEngine engine(model.sparse, engine_cfg);

  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 0, 0, 8, 32, cfg.hidden)));
  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 1, 0, 8, 16, cfg.hidden)));
  engine.RunUntilDrained(500);

  // The stall was detected exactly once (one episode), attributed to the
  // starved session, and the trip was a diagnostic — not a kill: the starved
  // session still finished once capacity freed up.
  EXPECT_EQ(engine.Status(0), RequestStatus::kFinished);
  EXPECT_EQ(engine.Status(1), RequestStatus::kFinished);
  EXPECT_EQ(engine.watchdog_trips(), 1);
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0].first, 1);
  EXPECT_GE(trips[0].second, 10);
  EXPECT_EQ(engine.Report().watchdog_trips, 1);
}

// ---- The chaos gate ---------------------------------------------------------

// Deterministic 10-request workload with mixed priorities and deadlines:
// id 3's deadline is unmeetable (guaranteed expiry, faults or not), id 8's is
// generous (set but met).
std::vector<Request> ChaosWorkload(int64_t hidden) {
  Rng rng(175);
  std::vector<Request> requests;
  const int64_t prompts[] = {6, 4, 8, 5, 7, 4, 6, 8, 5, 4};
  const int64_t decodes[] = {4, 6, 2, 5, 3, 6, 4, 2, 5, 3};
  const int64_t arrivals[] = {0, 0, 1, 2, 3, 4, 5, 6, 7, 8};
  const int priorities[] = {0, 1, 0, 0, 2, 0, 1, 0, 0, 1};
  for (int64_t i = 0; i < 10; ++i) {
    Request r = MakeTestRequest(rng, i, arrivals[i], prompts[i], decodes[i], hidden);
    r.priority = priorities[i];
    if (i == 3) {
      r.deadline_steps = 2;
    } else if (i == 8) {
      r.deadline_steps = 80;
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

EngineConfig ChaosEngineConfig(bool faults) {
  EngineConfig cfg = TinyEngineConfig(2);
  cfg.shards = 2;
  cfg.scheduler.page_tokens = 4;
  cfg.scheduler.max_pages = 10;
  cfg.scheduler.preempt = true;
  cfg.scheduler.chunk_tokens = 4;
  cfg.swap = true;
  cfg.host_pages = 64;
  if (faults) {
    cfg.faults =
        MustParse("kv-alloc~0.1,swap-out~0.2,swap-in~0.2,swap-corrupt~0.5,shard-die@6:1");
    cfg.fault_seed = 7;
  }
  return cfg;
}

struct ChaosRun {
  std::vector<RequestStatus> statuses;
  std::map<int64_t, MatrixF> outputs;  // all sessions, partial or complete
  std::string report_json;             // wall-clock-stripped
  int64_t shard_failovers = 0;
  int64_t injected_faults = 0;
  int64_t timed_out = 0;
};

ChaosRun RunChaos(const TinyModel& model, const EngineConfig& cfg,
                  const std::vector<Request>& requests) {
  ServingEngine engine(model.sparse, cfg);
  for (const Request& r : requests) {
    EXPECT_TRUE(engine.Submit(r));
  }
  engine.RunUntilDrained(20000);

  ChaosRun run;
  for (const Request& r : requests) {
    const RequestStatus status = engine.Status(r.id);
    EXPECT_TRUE(IsTerminal(status)) << "request " << r.id << " not terminal";
    run.statuses.push_back(status);
    const RequestResult* result = engine.Result(r.id);
    EXPECT_NE(result, nullptr);
    if (result != nullptr) {
      // Exactly-one-reason invariant: finished sessions carry the full output
      // matrix and no reason; every other terminal carries a reason.
      if (status == RequestStatus::kFinished) {
        EXPECT_TRUE(result->reason.empty()) << "request " << r.id;
        EXPECT_EQ(result->outputs.rows(), r.total_tokens()) << "request " << r.id;
      } else {
        EXPECT_FALSE(result->reason.empty()) << "request " << r.id;
      }
      run.outputs.emplace(r.id, result->outputs);
    }
  }

  // Zero leaked pages, balanced allocator accounting, an empty host tier.
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);
  EXPECT_EQ(engine.kv_cache().allocator().free_pages(),
            engine.kv_cache().allocator().total_pages());
  EXPECT_EQ(engine.swap_tier().used_pages(), 0);

  ServingReport report = engine.Report();
  run.shard_failovers = report.shard_failovers;
  run.injected_faults = report.injected_faults;
  run.timed_out = report.requests_timed_out;
  report.StripWallClock();
  run.report_json = report.ToJson();
  return run;
}

TEST(ServingFaultsTest, ChaosScheduleDrainsCleanlyAndSurvivorsMatchFaultFree) {
  Rng seed_rng(177);
  MoeModelConfig cfg = TinyConfig();
  cfg.num_experts = 8;
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);
  const std::vector<Request> requests = ChaosWorkload(cfg.hidden);

  const ChaosRun clean = RunChaos(model, ChaosEngineConfig(/*faults=*/false), requests);
  const ChaosRun chaos = RunChaos(model, ChaosEngineConfig(/*faults=*/true), requests);

  // The schedule really injected chaos: faults fired, the shard died, and
  // the unmeetable deadline expired.
  EXPECT_GT(chaos.injected_faults, 0);
  EXPECT_EQ(chaos.shard_failovers, 1);
  EXPECT_GE(chaos.timed_out, 1);
  EXPECT_EQ(chaos.statuses[3], RequestStatus::kTimedOut);

  // Most of the workload survives the chaos.
  int64_t finished = 0;
  for (const RequestStatus s : chaos.statuses) {
    finished += s == RequestStatus::kFinished ? 1 : 0;
  }
  EXPECT_GE(finished, 6);

  // Surviving sessions are bit-identical to the fault-free run.
  for (size_t i = 0; i < requests.size(); ++i) {
    const int64_t id = requests[i].id;
    if (chaos.statuses[i] == RequestStatus::kFinished &&
        clean.statuses[i] == RequestStatus::kFinished) {
      EXPECT_TRUE(chaos.outputs.at(id) == clean.outputs.at(id)) << "request " << id;
    }
  }
  EXPECT_TRUE(JsonParses(chaos.report_json));
}

TEST(ServingFaultsTest, SameScheduleAndSeedReproduceByteIdenticalReports) {
  Rng seed_rng(179);
  MoeModelConfig cfg = TinyConfig();
  cfg.num_experts = 8;
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);
  const std::vector<Request> requests = ChaosWorkload(cfg.hidden);

  const ChaosRun first = RunChaos(model, ChaosEngineConfig(/*faults=*/true), requests);
  const ChaosRun second = RunChaos(model, ChaosEngineConfig(/*faults=*/true), requests);

  EXPECT_EQ(first.statuses, second.statuses);
  for (const auto& [id, out] : first.outputs) {
    EXPECT_TRUE(out == second.outputs.at(id)) << "request " << id;
  }
  // The whole wall-clock-stripped report — counters, fault telemetry, and
  // per-request timelines — replays byte-for-byte.
  EXPECT_EQ(first.report_json, second.report_json);
}

// ---- Terminal-status exhaustiveness (cancel x preempt x fault) --------------

TEST(ServingFaultsTest, EveryTerminalPathSetsExactlyOneStatusAndReason) {
  Rng seed_rng(181);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);

  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    EngineConfig engine_cfg = ChaosEngineConfig(/*faults=*/false);
    engine_cfg.shards = 1;
    engine_cfg.ingress_capacity = 3;
    engine_cfg.faults = MustParse("kv-alloc~0.15,swap-out~0.25,swap-in~0.25,swap-corrupt~0.5");
    engine_cfg.fault_seed = seed;
    ServingEngine engine(model.sparse, engine_cfg);

    Rng rng(200 + static_cast<uint64_t>(seed));
    const int64_t kRequests = 10;
    std::vector<Request> requests;
    for (int64_t i = 0; i < kRequests; ++i) {
      Request r = MakeTestRequest(rng, i, i, 4 + i % 5, 2 + i % 4, cfg.hidden);
      r.priority = static_cast<int>(i % 3);
      if (i % 4 == 1) {
        r.deadline_steps = 6;
      }
      requests.push_back(std::move(r));
      engine.Submit(requests.back());  // sheds allowed: result still recorded
    }

    // Randomized-schedule soak with cancels landing mid-flight.
    for (int64_t step = 0; step < 2000; ++step) {
      if (step == 4) {
        engine.Cancel(2);
      }
      if (step == 6) {
        engine.Cancel(7);
      }
      if (!engine.Step()) {
        break;
      }
    }

    std::map<RequestStatus, int64_t> by_status;
    for (const Request& r : requests) {
      const RequestStatus status = engine.Status(r.id);
      ASSERT_TRUE(IsTerminal(status)) << "seed " << seed << " request " << r.id;
      ++by_status[status];
      const RequestResult* result = engine.Result(r.id);
      ASSERT_NE(result, nullptr) << "seed " << seed << " request " << r.id;
      EXPECT_EQ(result->status, status);
      if (status == RequestStatus::kFinished) {
        EXPECT_TRUE(result->reason.empty())
            << "seed " << seed << " request " << r.id << ": " << result->reason;
        EXPECT_EQ(result->outputs.rows(), r.total_tokens())
            << "seed " << seed << " request " << r.id;
      } else {
        EXPECT_FALSE(result->reason.empty())
            << "seed " << seed << " request " << r.id << " status "
            << RequestStatusName(status);
      }
    }
    int64_t total = 0;
    for (const auto& [status, count] : by_status) {
      total += count;
    }
    EXPECT_EQ(total, kRequests) << "seed " << seed;
    EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0) << "seed " << seed;
    EXPECT_EQ(engine.swap_tier().used_pages(), 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
