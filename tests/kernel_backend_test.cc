// Kernel backend dispatch and equivalence: cpuid-consistent feature
// detection, flag parsing, randomized SIMD-vs-reference agreement across
// formats and ragged shapes, the cache-aware autotuner's LLC-fitting
// preference, and the engine-level guarantee that switching backends does
// not change serving behavior.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/autotune.h"
#include "src/core/kernel_backend.h"
#include "src/core/samoyeds_kernel.h"
#include "src/core/ssmm_workspace.h"
#include "src/moe/decoder_layer.h"
#include "src/serving/engine.h"
#include "src/serving/trace.h"
#include "src/simgpu/device_spec.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

// Ordered-int ULP distance between two finite floats (0 when bit-equal).
int64_t UlpDistance(float a, float b) {
  if (a == b) {
    return 0;
  }
  int32_t ia;
  int32_t ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) {
    ia = std::numeric_limits<int32_t>::min() - ia;
  }
  if (ib < 0) {
    ib = std::numeric_limits<int32_t>::min() - ib;
  }
  const int64_t d = static_cast<int64_t>(ia) - static_cast<int64_t>(ib);
  return d < 0 ? -d : d;
}

int64_t MaxUlp(const MatrixF& got, const MatrixF& want) {
  EXPECT_EQ(got.rows(), want.rows());
  EXPECT_EQ(got.cols(), want.cols());
  int64_t max_ulp = 0;
  for (int64_t r = 0; r < got.rows(); ++r) {
    for (int64_t c = 0; c < got.cols(); ++c) {
      max_ulp = std::max(max_ulp, UlpDistance(got(r, c), want(r, c)));
    }
  }
  return max_ulp;
}

const KernelBackend kAllRunnable[] = {KernelBackend::kScalar, KernelBackend::kAvx2,
                                      KernelBackend::kAvx512, KernelBackend::kNeon};

// ---- Parsing ----------------------------------------------------------------

TEST(KernelBackendTest, ParseRoundTripsEveryName) {
  const KernelBackend all[] = {KernelBackend::kScalar, KernelBackend::kAvx2,
                               KernelBackend::kAvx512, KernelBackend::kNeon,
                               KernelBackend::kAuto};
  for (KernelBackend b : all) {
    KernelBackend parsed = KernelBackend::kAuto;
    ASSERT_TRUE(ParseKernelBackend(KernelBackendName(b), &parsed))
        << KernelBackendName(b);
    EXPECT_EQ(parsed, b) << KernelBackendName(b);
  }
}

TEST(KernelBackendTest, ParseRejectsGarbageAndLeavesOutUntouched) {
  for (const char* bad : {"", "AVX2", "avx", "sse42", "scalar ", "auto2", "neon64"}) {
    KernelBackend out = KernelBackend::kAvx512;  // sentinel
    EXPECT_FALSE(ParseKernelBackend(bad, &out)) << "'" << bad << "'";
    EXPECT_EQ(out, KernelBackend::kAvx512) << "'" << bad << "'";
  }
}

// ---- Dispatch agrees with cpuid --------------------------------------------

TEST(KernelBackendTest, SupportMatchesCpuFeatures) {
  EXPECT_TRUE(KernelBackendSupported(KernelBackend::kScalar));
  EXPECT_FALSE(KernelBackendSupported(KernelBackend::kAuto));
  EXPECT_EQ(KernelBackendSupported(KernelBackend::kAvx2),
            KernelBackendCompiled(KernelBackend::kAvx2) && CpuHasAvx2());
  EXPECT_EQ(KernelBackendSupported(KernelBackend::kAvx512),
            KernelBackendCompiled(KernelBackend::kAvx512) && CpuHasAvx512());
  EXPECT_EQ(KernelBackendSupported(KernelBackend::kNeon),
            KernelBackendCompiled(KernelBackend::kNeon) && CpuHasNeon());
}

TEST(KernelBackendTest, AutoResolvesToWidestSupportedBackend) {
  KernelBackend expected = KernelBackend::kScalar;
  if (KernelBackendSupported(KernelBackend::kNeon)) {
    expected = KernelBackend::kNeon;
  }
  if (KernelBackendSupported(KernelBackend::kAvx2)) {
    expected = KernelBackend::kAvx2;
  }
  if (KernelBackendSupported(KernelBackend::kAvx512)) {
    expected = KernelBackend::kAvx512;
  }
  KernelBackend resolved = KernelBackend::kAuto;
  ASSERT_TRUE(ResolveKernelBackend(KernelBackend::kAuto, &resolved));
  EXPECT_EQ(resolved, expected);
}

TEST(KernelBackendTest, ResolveSpecificBackendMatchesSupport) {
  for (KernelBackend b : kAllRunnable) {
    KernelBackend resolved = KernelBackend::kAuto;
    const bool ok = ResolveKernelBackend(b, &resolved);
    EXPECT_EQ(ok, KernelBackendSupported(b)) << KernelBackendName(b);
    if (ok) {
      EXPECT_EQ(resolved, b) << KernelBackendName(b);
    }
  }
}

TEST(KernelBackendTest, PanelKernelPresenceMatchesCompilation) {
  // Scalar and auto use the built-in loop, never a function pointer.
  EXPECT_EQ(GetPanelKernel(KernelBackend::kScalar), nullptr);
  EXPECT_EQ(GetPanelKernel(KernelBackend::kAuto), nullptr);
  for (KernelBackend b :
       {KernelBackend::kAvx2, KernelBackend::kAvx512, KernelBackend::kNeon}) {
    EXPECT_EQ(GetPanelKernel(b) != nullptr, KernelBackendCompiled(b))
        << KernelBackendName(b);
  }
}

TEST(KernelBackendTest, VectorWidthsFeedLanePadding) {
  EXPECT_EQ(KernelBackendVectorWidth(KernelBackend::kScalar), 1);
  EXPECT_EQ(KernelBackendVectorWidth(KernelBackend::kAvx2), 8);
  EXPECT_EQ(KernelBackendVectorWidth(KernelBackend::kAvx512), 16);
  EXPECT_EQ(KernelBackendVectorWidth(KernelBackend::kNeon), 4);
}

TEST(KernelBackendTest, SetInstallsProcessWideDefault) {
  const KernelBackend prior = ActiveKernelBackend();
  // SAMOYEDS_FORCE_BACKEND (the CI sanitizer pin) overrides Set requests,
  // so assert only the Set/Active agreement, not the requested value.
  const KernelBackend installed = SetKernelBackend(KernelBackend::kScalar);
  EXPECT_TRUE(KernelBackendSupported(installed));
  EXPECT_EQ(ActiveKernelBackend(), installed);
  SetKernelBackend(prior);
}

// ---- Randomized backend-vs-reference equivalence ---------------------------

TEST(KernelBackendEquivalenceTest, RandomizedBackendsMatchReference) {
  Rng rng(911);
  const SamoyedsConfig fmts[] = {{1, 2, 32}, {2, 4, 32}, {4, 8, 32},
                                 {8, 16, 32}, {1, 2, 64}, {1, 4, 32}};
  // One workspace reused across every backend and shape: stale packed data
  // must never leak between dispatch paths.
  SsmmWorkspace ws;
  MatrixF out;
  for (int trial = 0; trial < 48; ++trial) {
    const SamoyedsConfig fmt = fmts[trial % 6];
    const int64_t m = fmt.m * (1 + rng.NextIndex(12));
    const int64_t k = fmt.v * (1 + rng.NextIndex(4));
    // Ragged panel widths on purpose: n is rarely a multiple of any vector
    // width, so the masked/peeled tails of every SIMD variant get hit.
    const int64_t n = 1 + rng.NextIndex(40);
    // Every third trial is a zero-token expert (empty selection).
    const int64_t selected = (trial % 3 == 0) ? 0 : rng.NextIndex(n + 1);
    // bf16-grid operands: bf16 x bf16 products are exact in fp32, so the
    // fused multiply-adds of the SIMD paths introduce no rounding and all
    // backends should land within a couple ULP of the scalar oracle.
    const MatrixF w = RandomBf16Matrix(rng, m, k);
    const MatrixF b = RandomBf16Matrix(rng, k, n);
    const Selection sel = RandomSelection(rng, n, selected);
    const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, fmt);

    const MatrixF expect = SamoyedsKernel::RunReference(enc, b, sel);
    for (KernelBackend backend : kAllRunnable) {
      if (!KernelBackendSupported(backend)) {
        continue;
      }
      SamoyedsKernel::Run(enc, b, sel, ws, out, backend);
      if (backend == KernelBackend::kScalar) {
        // Contract: the scalar backend is the bit-exact oracle.
        ASSERT_TRUE(out == expect)
            << "scalar diverged at trial " << trial << " (m=" << m << " k=" << k
            << " n=" << n << " selected=" << selected << ")";
      } else {
        // Contract: SIMD backends are ULP-bounded, not bit-exact. The bound
        // here is deliberately tight (bf16 operands make FMA exact); a real
        // dispatch or tail bug lands thousands of ULPs out.
        const int64_t ulp = MaxUlp(out, expect);
        ASSERT_LE(ulp, 4) << KernelBackendName(backend) << " diverged at trial "
                          << trial << " (m=" << m << " k=" << k << " n=" << n
                          << " selected=" << selected << ")";
      }
      // Allocating overload takes the same dispatch path.
      const MatrixF direct = SamoyedsKernel::Run(enc, b, sel, backend);
      ASSERT_TRUE(direct == out)
          << KernelBackendName(backend) << " allocating overload diverged at trial "
          << trial;
    }
  }
}

TEST(KernelBackendEquivalenceTest, TinyTailWidthsAllBackends) {
  // n_out in 1..3: narrower than every vector width, pure-tail execution.
  Rng rng(913);
  const SamoyedsConfig fmt{1, 2, 32};
  const MatrixF w = RandomBf16Matrix(rng, 32, 64);
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, fmt);
  SsmmWorkspace ws;
  MatrixF out;
  for (int64_t n = 1; n <= 3; ++n) {
    const MatrixF b = RandomBf16Matrix(rng, 64, n);
    const Selection sel = Selection::All(n);
    const MatrixF expect = SamoyedsKernel::RunReference(enc, b, sel);
    for (KernelBackend backend : kAllRunnable) {
      if (!KernelBackendSupported(backend)) {
        continue;
      }
      SamoyedsKernel::Run(enc, b, sel, ws, out, backend);
      EXPECT_LE(MaxUlp(out, expect), 4)
          << KernelBackendName(backend) << " n_out=" << n;
    }
  }
}

// ---- Cache-aware autotuning -------------------------------------------------

TEST(KernelBackendAutotuneTest, NeverPicksSpillingConfigWhenFitExists) {
  const SamoyedsConfig fmt{1, 2, 32};
  for (DeviceModel model : AllDeviceModels()) {
    const DeviceSpec& dev = GetDevice(model);
    for (const GemmShape shape :
         {GemmShape{512, 1024, 256}, GemmShape{2048, 4096, 64}, GemmShape{128, 256, 16}}) {
      const int64_t selected = shape.n / 2;
      for (KernelBackend backend : {KernelBackend::kScalar, KernelBackend::kAvx512}) {
        const AutotuneResult r = AutotuneSsmm(shape, selected, fmt, dev, backend);
        EXPECT_GT(r.working_set_bytes, 0.0) << dev.name;
        EXPECT_EQ(r.fits_llc, r.working_set_bytes <= static_cast<double>(dev.l2_bytes))
            << dev.name;
        // The acceptance property: if any legal config's modeled working set
        // fits the LLC, the tuner must not return one that spills.
        bool any_fits = false;
        for (const SsmmConfig& cfg : EnumerateSsmmConfigs(dev, fmt)) {
          any_fits = any_fits ||
                     SsmmActiveWorkingSetBytes(shape, selected, fmt, cfg, dev) <=
                         static_cast<double>(dev.l2_bytes);
        }
        if (any_fits) {
          EXPECT_TRUE(r.fits_llc)
              << dev.name << " backend=" << KernelBackendName(backend) << " m=" << shape.m;
        }
        EXPECT_EQ(r.backend, backend);
        EXPECT_GE(r.residency_ms, 0.0);
      }
    }
  }
}

TEST(KernelBackendAutotuneTest, BackCompatOverloadIsScalar) {
  const GemmShape shape{512, 1024, 128};
  const AutotuneResult r = AutotuneSsmm(shape, 64, SamoyedsConfig{1, 2, 32}, DefaultDevice());
  EXPECT_EQ(r.backend, KernelBackend::kScalar);
  const AutotuneResult explicit_scalar =
      AutotuneSsmm(shape, 64, SamoyedsConfig{1, 2, 32}, DefaultDevice(),
                   KernelBackend::kScalar);
  EXPECT_EQ(r.config.mb, explicit_scalar.config.mb);
  EXPECT_EQ(r.simulated_ms, explicit_scalar.simulated_ms);
}

// ---- Engine: backends do not change serving behavior ------------------------

MoeModelConfig TinyConfig() {
  MoeModelConfig cfg;
  cfg.name = "tiny";
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  cfg.shared_experts = 0;
  return cfg;
}

TEST(KernelBackendEngineTest, ScalarAndSimdServingAgree) {
  if (std::getenv("SAMOYEDS_FORCE_BACKEND") != nullptr) {
    // The force pin overrides EngineConfig-installed backends by design, so
    // both engines here would run the same path and prove nothing.
    GTEST_SKIP() << "SAMOYEDS_FORCE_BACKEND pins the engine's backend";
  }
  KernelBackend simd = KernelBackend::kScalar;
  if (KernelBackendSupported(KernelBackend::kAvx512)) {
    simd = KernelBackend::kAvx512;
  } else if (KernelBackendSupported(KernelBackend::kAvx2)) {
    simd = KernelBackend::kAvx2;
  } else if (KernelBackendSupported(KernelBackend::kNeon)) {
    simd = KernelBackend::kNeon;
  }
  if (simd == KernelBackend::kScalar) {
    GTEST_SKIP() << "no SIMD backend runnable on this machine";
  }
  const KernelBackend prior = ActiveKernelBackend();

  Rng seed_rng(77);
  const MoeModelConfig cfg = TinyConfig();
  std::vector<SamoyedsDecoderLayerWeights> sparse;
  const SamoyedsConfig fmt{1, 2, 32};
  for (int l = 0; l < 2; ++l) {
    DecoderLayerWeights w = DecoderLayerWeights::Random(seed_rng, cfg);
    sparse.push_back(SamoyedsDecoderLayerWeights::Encode(w, fmt));
  }

  // Identical workload against a scalar engine and a SIMD engine. The
  // backend is process-global, so the engines run sequentially.
  std::vector<std::vector<serving::RequestStatus>> statuses;
  std::vector<MatrixF> outputs;
  std::vector<std::string> provenance;
  for (KernelBackend backend : {KernelBackend::kScalar, simd}) {
    serving::EngineConfig engine_cfg;
    engine_cfg.heads = 4;
    engine_cfg.top_k = 2;
    engine_cfg.threads = 2;
    engine_cfg.scheduler.policy = serving::SchedulerPolicy::kTokenBudget;
    engine_cfg.scheduler.token_budget = 24;
    engine_cfg.scheduler.max_resident_tokens = 64;
    engine_cfg.autotune = true;
    engine_cfg.kernel_backend = backend;
    serving::ServingEngine engine(sparse, engine_cfg);

    Rng rng(78);  // identical requests per run
    for (int64_t i = 0; i < 4; ++i) {
      serving::TraceEntry e{i / 2, 5 + i, 3};
      ASSERT_TRUE(engine.Submit(serving::MakeRequest(rng, i, e, cfg.hidden)));
    }
    engine.RunUntilDrained(1000);

    std::vector<serving::RequestStatus> st;
    MatrixF all(0, 0);
    for (int64_t i = 0; i < 4; ++i) {
      st.push_back(engine.Status(i));
      const serving::RequestResult* result = engine.Result(i);
      ASSERT_NE(result, nullptr);
      if (all.empty()) {
        all = result->outputs;
      } else {
        MatrixF merged(all.rows() + result->outputs.rows(), all.cols());
        for (int64_t r = 0; r < all.rows(); ++r) {
          for (int64_t c = 0; c < all.cols(); ++c) {
            merged(r, c) = all(r, c);
          }
        }
        for (int64_t r = 0; r < result->outputs.rows(); ++r) {
          for (int64_t c = 0; c < all.cols(); ++c) {
            merged(all.rows() + r, c) = result->outputs(r, c);
          }
        }
        all = std::move(merged);
      }
    }
    EXPECT_GT(engine.autotune_cache_size(), 0);
    statuses.push_back(std::move(st));
    outputs.push_back(std::move(all));
    provenance.push_back(engine.Report().ToJson());
  }
  SetKernelBackend(prior);

  // Same terminal status per request, tolerance-equal outputs.
  ASSERT_EQ(statuses[0].size(), statuses[1].size());
  for (size_t i = 0; i < statuses[0].size(); ++i) {
    EXPECT_EQ(statuses[0][i], statuses[1][i]) << "request " << i;
  }
  EXPECT_LT(RelativeError(outputs[1], outputs[0]), 1e-4);
  // Provenance records which backend produced each report.
  EXPECT_NE(provenance[0].find("\"kernel_backend\": \"scalar\""), std::string::npos);
  EXPECT_NE(provenance[1].find(std::string("\"kernel_backend\": \"") +
                               KernelBackendName(simd) + "\""),
            std::string::npos);
  EXPECT_NE(provenance[0].find("\"llc_bytes\""), std::string::npos);
  EXPECT_NE(provenance[0].find("\"llc_bandwidth_gbps\""), std::string::npos);
  EXPECT_NE(provenance[0].find("\"dram_bandwidth_gbps\""), std::string::npos);
}

}  // namespace
}  // namespace samoyeds
