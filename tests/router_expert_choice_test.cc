// Edge cases for expert-choice routing (RouteExpertChoice /
// IsBalancedConsistent) and zero-token experts under top-k routing — the
// load-balance properties the serving engine's scheduling story leans on.

#include <gtest/gtest.h>

#include "src/moe/moe_layer.h"
#include "src/moe/router.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

TEST(ExpertChoiceTest, PerfectBalanceOnUniformInput) {
  Rng rng(91);
  const MatrixF x = rng.GaussianMatrix(64, 16);
  const MatrixF gate = rng.GaussianMatrix(8, 16);
  const RoutingPlan plan = RouteExpertChoice(x, gate, /*top_k_equiv=*/2);
  EXPECT_TRUE(IsBalancedConsistent(plan));
  // capacity = 64 * 2 / 8 = 16, exactly, for every expert.
  for (int e = 0; e < 8; ++e) {
    EXPECT_EQ(plan.TokensForExpert(e), 16);
    EXPECT_TRUE(plan.SelectionForExpert(e).IsValid());
  }
  EXPECT_EQ(plan.MaxTokensPerExpert(), 16);
}

TEST(ExpertChoiceTest, CapacityRoundingDropsRemainderTokens) {
  Rng rng(92);
  // 5 tokens, 4 experts, k=1: capacity = floor(5/4) = 1, so exactly 4
  // assignment slots exist and at least one token is chosen by no expert.
  const MatrixF x = rng.GaussianMatrix(5, 8);
  const MatrixF gate = rng.GaussianMatrix(4, 8);
  const RoutingPlan plan = RouteExpertChoice(x, gate, 1);
  EXPECT_TRUE(IsBalancedConsistent(plan));
  int64_t assigned = 0;
  int64_t dropped = 0;
  for (const auto& a : plan.token_assignments) {
    assigned += static_cast<int64_t>(a.size());
    dropped += a.empty() ? 1 : 0;
  }
  EXPECT_EQ(assigned, 4);
  EXPECT_GE(dropped, 1);
}

TEST(ExpertChoiceTest, CapacityFloorsAtOneWhenExpertsOutnumberTokens) {
  Rng rng(93);
  // 2 tokens, 8 experts, k=1: tokens * k / experts = 0, floored to 1 — every
  // expert still picks one token, so tokens collect many experts each.
  const MatrixF x = rng.GaussianMatrix(2, 8);
  const MatrixF gate = rng.GaussianMatrix(8, 8);
  const RoutingPlan plan = RouteExpertChoice(x, gate, 1);
  EXPECT_TRUE(IsBalancedConsistent(plan));
  int64_t assigned = 0;
  for (const auto& a : plan.token_assignments) {
    assigned += static_cast<int64_t>(a.size());
    float sum = 0.0f;
    for (const auto& [e, w] : a) {
      sum += w;
    }
    if (!a.empty()) {
      EXPECT_NEAR(sum, 1.0f, 1e-4f);  // softmax-normalized per token
    }
  }
  EXPECT_EQ(assigned, 8);
}

TEST(ExpertChoiceTest, ExpertsPickHighestAffinityTokens) {
  // 4 one-hot tokens, 2 experts, capacity 2. Expert 0's gate row scores
  // tokens 1 and 3 highest; expert 1 prefers tokens 0 and 2.
  MatrixF x(4, 4);
  for (int t = 0; t < 4; ++t) {
    x(t, t) = 1.0f;
  }
  MatrixF gate(2, 4);
  gate(0, 0) = 0.0f;
  gate(0, 1) = 5.0f;
  gate(0, 2) = 1.0f;
  gate(0, 3) = 4.0f;
  gate(1, 0) = 6.0f;
  gate(1, 1) = 0.5f;
  gate(1, 2) = 7.0f;
  gate(1, 3) = 0.0f;

  const RoutingPlan plan = RouteExpertChoice(x, gate, 1);
  ASSERT_TRUE(IsBalancedConsistent(plan));
  EXPECT_EQ(plan.expert_tokens[0], (std::vector<int32_t>{1, 3}));
  EXPECT_EQ(plan.expert_tokens[1], (std::vector<int32_t>{0, 2}));
}

TEST(BalancedConsistencyTest, DetectsTamperedPlans) {
  Rng rng(94);
  const MatrixF x = rng.GaussianMatrix(16, 8);
  const MatrixF gate = rng.GaussianMatrix(4, 8);
  const RoutingPlan good = RouteExpertChoice(x, gate, 1);
  ASSERT_TRUE(IsBalancedConsistent(good));

  // Capacity violation: expert loses a token.
  RoutingPlan capacity = good;
  capacity.expert_tokens[0].pop_back();
  EXPECT_FALSE(IsBalancedConsistent(capacity));

  // Ordering violation: descending token list.
  RoutingPlan order = good;
  std::swap(order.expert_tokens[1][0], order.expert_tokens[1][1]);
  EXPECT_FALSE(IsBalancedConsistent(order));

  // Weight violation: un-normalized gate weight.
  RoutingPlan weights = good;
  for (auto& a : weights.token_assignments) {
    if (!a.empty()) {
      a.front().second += 0.5f;
      break;
    }
  }
  EXPECT_FALSE(IsBalancedConsistent(weights));

  // Out-of-range token index.
  RoutingPlan range = good;
  range.expert_tokens[2].back() = static_cast<int32_t>(range.tokens);
  EXPECT_FALSE(IsBalancedConsistent(range));
}

TEST(TopKRoutingTest, ZeroTokenExpertsAreLegalAndExecutable) {
  Rng rng(95);
  // All-positive activations and strictly ordered gate rows: experts 2 then
  // 1 dominate every token, experts 0 and 3 get zero tokens.
  const MatrixF x = rng.UniformMatrix(12, 32, 0.1f, 1.0f);
  MatrixF gate(4, 32);
  for (int64_t c = 0; c < 32; ++c) {
    gate(0, c) = 1.0f;
    gate(1, c) = 2.0f;
    gate(2, c) = 3.0f;
    gate(3, c) = -1.0f;
  }
  const RoutingPlan plan = Route(x, gate, /*top_k=*/2);
  ASSERT_TRUE(plan.IsConsistent());
  EXPECT_EQ(plan.TokensForExpert(0), 0);
  EXPECT_EQ(plan.TokensForExpert(3), 0);
  EXPECT_EQ(plan.TokensForExpert(1), 12);
  EXPECT_EQ(plan.TokensForExpert(2), 12);
  EXPECT_TRUE(plan.SelectionForExpert(0).IsValid());  // empty but valid

  // The MoE layer must execute a plan with idle experts on both paths.
  MoeModelConfig cfg;
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  const SamoyedsConfig fmt{1, 2, 32};
  MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  w.router_gate = gate;
  const SamoyedsMoeLayerWeights sw = SamoyedsMoeLayerWeights::Encode(w, fmt);
  w.ApplyMask(fmt);
  MatrixF xb = x;
  RoundMatrixToBf16(xb);
  const MatrixF ref = MoeForwardReference(xb, w, plan, Activation::kSilu);
  const MatrixF got = MoeForwardSamoyeds(xb, sw, plan, Activation::kSilu);
  EXPECT_LT(RelativeError(got, ref), 2e-2);
}

}  // namespace
}  // namespace samoyeds
