// Framework cost simulator: the comparative behaviours the paper reports
// must emerge from the model (Samoyeds fastest, breakdown monotone, padding
// sensitivity, OOM/NS handling).

#include <gtest/gtest.h>

#include "src/frameworks/layer_cost.h"
#include "src/moe/memory_model.h"
#include "src/moe/model_configs.h"

namespace samoyeds {
namespace {

LayerCostOptions DefaultOptions() {
  LayerCostOptions o;
  o.shared_experts_override = 0;
  return o;
}

TEST(LayerCostTest, UniformCountsSumToAssignments) {
  const auto& model = ModelByName("Qwen2-MoE");
  const auto counts = UniformTokensPerExpert(model, 4096);
  int64_t total = 0;
  for (int64_t c : counts) {
    total += c;
  }
  EXPECT_EQ(total, 4096 * model.top_k);
  EXPECT_EQ(static_cast<int>(counts.size()), model.num_experts);
}

TEST(LayerCostTest, SamoyedsBeatsAllBaselinesOnMoeLayer) {
  for (const auto& model : PaperModels()) {
    const auto counts = UniformTokensPerExpert(model, 4096);
    const LayerCostOptions opts = DefaultOptions();
    const double samoyeds =
        EstimateMoeLayerCost(MoeFramework::kSamoyeds, model, counts, 4096, opts).total_ms;
    const double transformers =
        EstimateMoeLayerCost(MoeFramework::kTransformers, model, counts, 4096, opts).total_ms;
    EXPECT_LT(samoyeds, transformers) << model.name;
    if (FrameworkSupportsModel(MoeFramework::kVllmDs, model)) {
      const double vllm =
          EstimateMoeLayerCost(MoeFramework::kVllmDs, model, counts, 4096, opts).total_ms;
      EXPECT_LT(samoyeds, vllm) << model.name;
    }
    if (FrameworkSupportsModel(MoeFramework::kMegaBlocks, model)) {
      const double mb =
          EstimateMoeLayerCost(MoeFramework::kMegaBlocks, model, counts, 4096, opts).total_ms;
      EXPECT_LT(samoyeds, mb) << model.name;
    }
  }
}

TEST(LayerCostTest, BreakdownIsMonotone) {
  // Fig. 17: each added optimization must not slow the layer down.
  const auto& model = ModelByName("Mixtral-8x7B");
  const auto counts = UniformTokensPerExpert(model, 4096);
  LayerCostOptions opts = DefaultOptions();

  auto cost_of = [&](SamoyedsVariant v) {
    opts.variant = v;
    return EstimateMoeLayerCost(MoeFramework::kSamoyeds, model, counts, 4096, opts).total_ms;
  };
  const double w = cost_of(SamoyedsVariant::kW);
  const double wi = cost_of(SamoyedsVariant::kWI);
  const double wit = cost_of(SamoyedsVariant::kWIT);
  const double full = cost_of(SamoyedsVariant::kFull);
  EXPECT_LT(wi, w);
  EXPECT_LT(wit, wi);
  EXPECT_LT(full, wit);

  // And even W alone must beat vanilla Transformers (§6.4: 1.27x average).
  const double vanilla =
      EstimateMoeLayerCost(MoeFramework::kTransformers, model, counts, 4096,
                           DefaultOptions())
          .total_ms;
  EXPECT_LT(w, vanilla);
}

TEST(LayerCostTest, SharedExpertsAddTime) {
  const auto& model = ModelByName("Mixtral-8x7B");
  const auto counts = UniformTokensPerExpert(model, 4096);
  LayerCostOptions opts = DefaultOptions();
  const double without =
      EstimateMoeLayerCost(MoeFramework::kSamoyeds, model, counts, 4096, opts).total_ms;
  opts.shared_experts_override = 2;
  const double with_shared =
      EstimateMoeLayerCost(MoeFramework::kSamoyeds, model, counts, 4096, opts).total_ms;
  EXPECT_GT(with_shared, without * 1.3);
}

TEST(LayerCostTest, MoreTokensCostMore) {
  const auto& model = ModelByName("MiniCPM-MoE");
  const LayerCostOptions opts = DefaultOptions();
  for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kVllmDs,
                          MoeFramework::kMegaBlocks, MoeFramework::kSamoyeds}) {
    const double small =
        EstimateMoeLayerCost(fw, model, UniformTokensPerExpert(model, 1024), 1024, opts).total_ms;
    const double large =
        EstimateMoeLayerCost(fw, model, UniformTokensPerExpert(model, 8192), 8192, opts).total_ms;
    EXPECT_GT(large, small * 2.0) << FrameworkName(fw);
  }
}

TEST(LayerCostTest, PhasesArePopulated) {
  const auto& model = ModelByName("Mixtral-8x7B");
  const auto counts = UniformTokensPerExpert(model, 4096);
  const MoeLayerCost cost = EstimateMoeLayerCost(MoeFramework::kTransformers, model, counts,
                                                 4096, DefaultOptions());
  EXPECT_GT(cost.PhaseMs("experts"), 0.0);
  EXPECT_GT(cost.PhaseMs("permute"), 0.0);
  EXPECT_GT(cost.PhaseMs("unpermute"), 0.0);
  EXPECT_GT(cost.useful_flops, 0.0);
  double phase_sum = 0.0;
  for (const auto& p : cost.phases) {
    phase_sum += p.ms;
  }
  EXPECT_NEAR(phase_sum, cost.total_ms, 1e-9);
}

TEST(LayerCostTest, SamoyedsFullSkipsPermutePhases) {
  const auto& model = ModelByName("Mixtral-8x7B");
  const auto counts = UniformTokensPerExpert(model, 4096);
  const MoeLayerCost cost =
      EstimateMoeLayerCost(MoeFramework::kSamoyeds, model, counts, 4096, DefaultOptions());
  EXPECT_DOUBLE_EQ(cost.PhaseMs("permute"), 0.0);
  EXPECT_GT(cost.PhaseMs("gate_up"), 0.0);
  EXPECT_GT(cost.PhaseMs("down"), 0.0);
}

TEST(DecoderCostTest, MoeDominatesWithFlashAttention) {
  // Fig. 2: with Flash-Attention the MoE layer accounts for most of the
  // decoder time in the Transformers baseline.
  for (const char* name : {"Mixtral-8x7B", "Qwen2-MoE"}) {
    const auto& model = ModelByName(name);
    const auto counts = UniformTokensPerExpert(model, 4096);
    const DecoderLayerCost cost = EstimateDecoderLayerCost(
        MoeFramework::kTransformers, model, counts, 4096, DefaultOptions());
    EXPECT_GT(cost.moe_ms / cost.total_ms, 0.5) << name;
  }
}

TEST(DecoderCostTest, FlashAttentionFasterThanNaive) {
  const auto& model = ModelByName("Mixtral-8x7B");
  const auto counts = UniformTokensPerExpert(model, 4096);
  LayerCostOptions opts = DefaultOptions();
  opts.flash_attention = false;
  const double naive = EstimateDecoderLayerCost(MoeFramework::kTransformers, model, counts,
                                                4096, opts)
                           .attention_ms;
  opts.flash_attention = true;
  const double flash = EstimateDecoderLayerCost(MoeFramework::kTransformers, model, counts,
                                                4096, opts)
                           .attention_ms;
  EXPECT_LT(flash, naive);
}

TEST(DecoderCostTest, EndToEndSamoyedsSpeedupInPaperRange) {
  // Fig. 15: end-to-end speedup vs Transformers between roughly 1.1x and
  // 2.6x across models.
  for (const auto& model : PaperModels()) {
    const int64_t tokens = model.default_seq * model.default_batch;
    const auto counts = UniformTokensPerExpert(model, tokens);
    const LayerCostOptions opts = DefaultOptions();
    const double t = EstimateDecoderLayerCost(MoeFramework::kTransformers, model, counts, tokens,
                                              opts)
                         .total_ms;
    const double s =
        EstimateDecoderLayerCost(MoeFramework::kSamoyeds, model, counts, tokens, opts).total_ms;
    const double speedup = t / s;
    EXPECT_GT(speedup, 1.05) << model.name;
    EXPECT_LT(speedup, 4.5) << model.name;
  }
}

// ------------------------------------------------------------ memory model

TEST(MemoryModelTest, FrameworkSupportMatrix) {
  const auto& openmoe = ModelByName("OpenMoE-34B");
  EXPECT_FALSE(FrameworkSupportsModel(MoeFramework::kMegaBlocks, openmoe));
  EXPECT_FALSE(FrameworkSupportsModel(MoeFramework::kVllmDs, openmoe));
  EXPECT_TRUE(FrameworkSupportsModel(MoeFramework::kTransformers, openmoe));
  EXPECT_TRUE(FrameworkSupportsModel(MoeFramework::kSamoyeds, openmoe));
  EXPECT_TRUE(FrameworkSupportsModel(MoeFramework::kVllmDs, ModelByName("Mixtral-8x7B")));
}

TEST(MemoryModelTest, SamoyedsBytesPerParam) {
  // (1,2,32) at 75%: 0.5*(1 + 0.125) + 0.5/32 = 0.578 bytes/param.
  EXPECT_NEAR(SamoyedsBytesPerParam(SamoyedsConfig{1, 2, 32}), 0.578, 1e-3);
  // Denser config stores more.
  EXPECT_GT(SamoyedsBytesPerParam(SamoyedsConfig{2, 2, 32}),
            SamoyedsBytesPerParam(SamoyedsConfig{1, 2, 32}));
}

TEST(MemoryModelTest, SamoyedsSupportsLargerBatches) {
  const SamoyedsConfig fmt{1, 2, 32};
  const DeviceSpec& dev = DefaultDevice();
  for (const auto& model : PaperModels()) {
    const auto t = EstimateFootprint(model, MoeFramework::kTransformers, fmt, dev);
    const auto s = EstimateFootprint(model, MoeFramework::kSamoyeds, fmt, dev);
    EXPECT_GT(s.MaxBatch(model.default_seq), t.MaxBatch(model.default_seq)) << model.name;
    EXPECT_LT(s.weight_bytes, t.weight_bytes) << model.name;
  }
}

TEST(MemoryModelTest, Mixtral22BOomForFusedBaselines) {
  // Table 3: MegaBlocks and vLLM-DS cannot run Mixtral-8x22B at batch 1.
  const auto& model = ModelByName("Mixtral-8x22B");
  const SamoyedsConfig fmt{1, 2, 32};
  const DeviceSpec& dev = DefaultDevice();
  EXPECT_EQ(EstimateFootprint(model, MoeFramework::kMegaBlocks, fmt, dev).MaxBatch(1024), 0);
  EXPECT_EQ(EstimateFootprint(model, MoeFramework::kVllmDs, fmt, dev).MaxBatch(1024), 0);
  EXPECT_GT(EstimateFootprint(model, MoeFramework::kSamoyeds, fmt, dev).MaxBatch(1024), 30);
}

TEST(MemoryModelTest, OpenMoeTransformersCollapses) {
  // Table 3: OpenMoE's HF path supports only ~3 batches while Samoyeds
  // reaches dozens (the 18.67x outlier).
  const auto& model = ModelByName("OpenMoE-34B");
  const SamoyedsConfig fmt{1, 2, 32};
  const DeviceSpec& dev = DefaultDevice();
  const int64_t t = EstimateFootprint(model, MoeFramework::kTransformers, fmt, dev).MaxBatch(2048);
  const int64_t s = EstimateFootprint(model, MoeFramework::kSamoyeds, fmt, dev).MaxBatch(2048);
  EXPECT_LE(t, 5);
  EXPECT_GE(s, 20);
  EXPECT_GT(static_cast<double>(s) / std::max<int64_t>(t, 1), 8.0);
}

TEST(MemoryModelTest, BiggerDeviceFitsMore) {
  const auto& model = ModelByName("Mixtral-8x7B");
  const SamoyedsConfig fmt{1, 2, 32};
  const auto small = EstimateFootprint(model, MoeFramework::kTransformers, fmt, DefaultDevice());
  const auto big = EstimateFootprint(model, MoeFramework::kTransformers, fmt,
                                     GetDevice(DeviceModel::kA100_40G));
  EXPECT_GT(big.MaxBatch(1024), small.MaxBatch(1024) * 2);
}

}  // namespace
}  // namespace samoyeds
