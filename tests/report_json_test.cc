// ServingReport::ToJson: the machine-readable report artifact --report-json
// and the bench emitters build on. Pins down —
//
//   * well-formedness and key coverage (provenance header first, every
//     latency/throughput/expert field present) on a real engine run;
//   * numeric round-trip: values read back out of the JSON equal the struct
//     fields that went in;
//   * the empty-run edge: a freshly-constructed EngineMetrics summarizes and
//     serializes to valid JSON full of zeros, not NaNs ("nan" is not JSON);
//   * provenance strings are escaped, so a hostile trace path ("ba\"d.txt")
//     cannot corrupt the artifact.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/moe/decoder_layer.h"
#include "src/serving/engine.h"
#include "src/serving/metrics.h"
#include "src/serving/scheduler.h"
#include "src/serving/trace.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace serving {
namespace {

MoeModelConfig TinyConfig() {
  MoeModelConfig cfg;
  cfg.name = "tiny";
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  cfg.shared_experts = 0;
  return cfg;
}

ServingReport RunTinyWorkload() {
  Rng rng(201);
  const MoeModelConfig cfg = TinyConfig();
  const SamoyedsConfig fmt{1, 2, 32};
  std::vector<SamoyedsDecoderLayerWeights> model{
      SamoyedsDecoderLayerWeights::Encode(DecoderLayerWeights::Random(rng, cfg), fmt)};
  EngineConfig engine_cfg;
  engine_cfg.heads = 4;
  engine_cfg.top_k = 2;
  engine_cfg.threads = 2;
  engine_cfg.scheduler.policy = SchedulerPolicy::kTokenBudget;
  engine_cfg.scheduler.token_budget = 16;
  engine_cfg.scheduler.max_resident_tokens = 1 << 20;
  ServingEngine engine(model, engine_cfg);
  for (int64_t i = 0; i < 3; ++i) {
    TraceEntry e{/*arrival_step=*/0, /*prompt_len=*/5, /*max_new_tokens=*/3};
    EXPECT_TRUE(engine.Submit(MakeRequest(rng, i, e, cfg.hidden)));
  }
  engine.RunUntilDrained(1000);
  return engine.Report();
}

TEST(ReportJsonTest, KeyCoverageOnARealRun) {
  const ServingReport rep = RunTinyWorkload();
  const std::string json = rep.ToJson();
  ASSERT_TRUE(JsonParses(json)) << json;

  // The provenance header leads the object so artifacts are self-describing
  // from the first lines.
  EXPECT_LT(json.find("\"schema_version\""), json.find("\"requests_finished\""));
  EXPECT_LT(json.find("\"config\""), json.find("\"requests_finished\""));

  for (const char* key :
       {"schema_version", "config", "placement", "routing", "policy", "token_budget",
        "requests_finished", "requests_rejected", "requests_cancelled", "steps",
        "prefill_rows", "decode_rows", "prefill_chunk_slices", "streamed_rows",
        "wall_ms", "mean_ttft_steps", "p95_ttft_steps", "mean_turnaround_steps",
        "p95_turnaround_steps", "mean_ttft_ms", "p95_ttft_ms", "mean_turnaround_ms",
        "p95_turnaround_ms", "mean_step_ms", "tokens_per_second", "mean_occupancy",
        "peak_sequences", "preemptions", "expert_tokens", "expert_imbalance",
        "shard_tokens", "est_compute_ms", "est_alltoall_ms", "request_timelines"}) {
    EXPECT_TRUE(HasJsonKey(json, key)) << "missing key: " << key;
  }
}

TEST(ReportJsonTest, RequestTimelinesMirrorTheRun) {
  const ServingReport rep = RunTinyWorkload();
  ASSERT_EQ(rep.request_timelines.size(), 3u);
  int64_t prev_id = -1;
  for (const RequestTimeline& tl : rep.request_timelines) {
    EXPECT_GT(tl.id, prev_id);  // ascending id
    prev_id = tl.id;
    EXPECT_EQ(tl.prompt_len, 5);
    EXPECT_GE(tl.admit_step, tl.arrival_step);
    EXPECT_GE(tl.first_output_step, tl.admit_step);
    EXPECT_GE(tl.finish_step, tl.first_output_step);
    EXPECT_EQ(tl.cancel_step, -1);
    EXPECT_GT(tl.ttft_ms, 0.0);
    EXPECT_GE(tl.turnaround_ms, tl.ttft_ms);
  }
  const std::string json = rep.ToJson();
  ASSERT_TRUE(JsonParses(json)) << json;
  for (const char* key : {"arrival_step", "admit_step", "first_output_step",
                          "finish_step", "prefill_chunks", "turnaround_ms"}) {
    EXPECT_TRUE(HasJsonKey(json, key)) << "missing timeline key: " << key;
  }
}

TEST(ReportJsonTest, NumbersRoundTrip) {
  const ServingReport rep = RunTinyWorkload();
  const std::string json = rep.ToJson();
  ASSERT_TRUE(JsonParses(json));

  double v = 0.0;
  ASSERT_TRUE(FindJsonNumber(json, "requests_finished", &v));
  EXPECT_EQ(static_cast<int64_t>(v), rep.requests_finished);
  EXPECT_EQ(rep.requests_finished, 3);
  ASSERT_TRUE(FindJsonNumber(json, "steps", &v));
  EXPECT_EQ(static_cast<int64_t>(v), rep.steps);
  ASSERT_TRUE(FindJsonNumber(json, "schema_version", &v));
  EXPECT_EQ(static_cast<int64_t>(v), rep.provenance.schema_version);
  ASSERT_TRUE(FindJsonNumber(json, "token_budget", &v));
  EXPECT_EQ(static_cast<int64_t>(v), 16);
  // Doubles are printed with enough digits to survive a parse round-trip at
  // report precision.
  ASSERT_TRUE(FindJsonNumber(json, "mean_ttft_steps", &v));
  EXPECT_NEAR(v, rep.mean_ttft_steps, 1e-4);
  ASSERT_TRUE(FindJsonNumber(json, "p95_turnaround_ms", &v));
  EXPECT_NEAR(v, rep.p95_turnaround_ms, 1e-4);
  EXPECT_GT(rep.p95_turnaround_ms, 0.0);  // wall-clock p95s actually populate
  ASSERT_TRUE(FindJsonNumber(json, "tokens_per_second", &v));
  EXPECT_NEAR(v, rep.tokens_per_second, rep.tokens_per_second * 1e-5 + 1e-4);
}

TEST(ReportJsonTest, EmptyRunSerializesToZeros) {
  EngineMetrics metrics;
  const ServingReport rep = metrics.Summarize(/*token_budget=*/0);
  const std::string json = rep.ToJson();
  ASSERT_TRUE(JsonParses(json)) << json;  // rejects "nan" / "inf" spellings

  double v = 1.0;
  ASSERT_TRUE(FindJsonNumber(json, "requests_finished", &v));
  EXPECT_EQ(v, 0.0);
  ASSERT_TRUE(FindJsonNumber(json, "mean_ttft_steps", &v));
  EXPECT_EQ(v, 0.0);
  ASSERT_TRUE(FindJsonNumber(json, "p95_ttft_ms", &v));
  EXPECT_EQ(v, 0.0);
  ASSERT_TRUE(FindJsonNumber(json, "tokens_per_second", &v));
  EXPECT_EQ(v, 0.0);
  ASSERT_TRUE(FindJsonNumber(json, "mean_occupancy", &v));
  EXPECT_EQ(v, 0.0);
}

TEST(ReportJsonTest, ProvenanceStringsAreEscaped) {
  ServingReport rep;
  rep.provenance.model = "tiny \"quoted\" model";
  rep.provenance.trace = "path\\with\\backslashes\nand a newline";
  rep.provenance.placement = "round-robin";
  const std::string json = rep.ToJson();
  ASSERT_TRUE(JsonParses(json)) << json;
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\u000a"), std::string::npos);  // control chars as \uXXXX
  EXPECT_EQ(json.find("backslashes\nand"), std::string::npos);  // never raw
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
