// Cross-cutting property tests: algebraic invariants of the functional
// kernel path and structural invariants of the analytic profiles, swept
// over parameter grids.

#include <gtest/gtest.h>

#include "src/core/samoyeds_kernel.h"
#include "src/kernels/cusparselt_spmm.h"
#include "src/kernels/dense_gemm.h"
#include "src/kernels/nmsparse_spmm.h"
#include "src/kernels/sputnik_spmm.h"
#include "src/kernels/venom_spmm.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

// Small-integer matrix: all arithmetic below stays exact in fp32 and on the
// bf16 grid, so algebraic identities hold with zero tolerance.
MatrixF SmallIntMatrix(Rng& rng, int64_t rows, int64_t cols) {
  MatrixF m(rows, cols);
  for (auto& v : m.flat()) {
    v = static_cast<float>(static_cast<int64_t>(rng.NextBounded(5)) - 2);
  }
  return m;
}

// ---------------------------------------------------- functional identities

TEST(KernelAlgebraTest, RunIsLinearInB) {
  Rng rng(111);
  const SamoyedsConfig fmt{1, 2, 32};
  const SamoyedsMatrix a = SamoyedsMatrix::Encode(SmallIntMatrix(rng, 32, 64), fmt);
  const MatrixF b1 = SmallIntMatrix(rng, 64, 16);
  const MatrixF b2 = SmallIntMatrix(rng, 64, 16);
  MatrixF sum(64, 16);
  for (int64_t i = 0; i < sum.size(); ++i) {
    sum.flat()[static_cast<size_t>(i)] =
        b1.flat()[static_cast<size_t>(i)] + b2.flat()[static_cast<size_t>(i)];
  }
  const Selection sel = Selection::All(16);
  const MatrixF y1 = SamoyedsKernel::Run(a, b1, sel);
  const MatrixF y2 = SamoyedsKernel::Run(a, b2, sel);
  const MatrixF ysum = SamoyedsKernel::Run(a, sum, sel);
  for (int64_t i = 0; i < ysum.size(); ++i) {
    EXPECT_FLOAT_EQ(ysum.flat()[static_cast<size_t>(i)],
                    y1.flat()[static_cast<size_t>(i)] + y2.flat()[static_cast<size_t>(i)]);
  }
}

TEST(KernelAlgebraTest, RunScalesWithB) {
  Rng rng(112);
  const SamoyedsConfig fmt{2, 4, 32};
  const SamoyedsMatrix a = SamoyedsMatrix::Encode(SmallIntMatrix(rng, 16, 64), fmt);
  MatrixF b = SmallIntMatrix(rng, 64, 8);
  const Selection sel = Selection::All(8);
  const MatrixF y = SamoyedsKernel::Run(a, b, sel);
  for (auto& v : b.flat()) {
    v *= 4.0f;  // power of two: exact under bf16
  }
  const MatrixF y4 = SamoyedsKernel::Run(a, b, sel);
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(y4.flat()[static_cast<size_t>(i)], 4.0f * y.flat()[static_cast<size_t>(i)]);
  }
}

TEST(KernelAlgebraTest, OutputColumnsIndependent) {
  // Column j of the compressed output must depend only on the j-th selected
  // input column.
  Rng rng(113);
  const SamoyedsConfig fmt{1, 2, 32};
  const SamoyedsMatrix a = SamoyedsMatrix::Encode(SmallIntMatrix(rng, 32, 64), fmt);
  MatrixF b = SmallIntMatrix(rng, 64, 12);
  Selection sel;
  sel.full_size = 12;
  sel.indices = {2, 5, 9};
  const MatrixF y = SamoyedsKernel::Run(a, b, sel);
  // Perturb a non-selected column: nothing changes.
  b(0, 3) += 100.0f;
  const MatrixF y2 = SamoyedsKernel::Run(a, b, sel);
  EXPECT_LE(MaxAbsDiff(y, y2), 0.0f);
  // Perturb selected column 5 (output column 1): only that column changes.
  b(0, 5) += 64.0f;
  const MatrixF y3 = SamoyedsKernel::Run(a, b, sel);
  for (int64_t r = 0; r < y.rows(); ++r) {
    EXPECT_FLOAT_EQ(y3(r, 0), y(r, 0));
    EXPECT_FLOAT_EQ(y3(r, 2), y(r, 2));
  }
  EXPECT_GT(MaxAbsDiff(y3, y), 0.0f);
}

TEST(KernelAlgebraTest, SelectionOrderingPreserved) {
  Rng rng(114);
  const SamoyedsConfig fmt{1, 2, 32};
  const SamoyedsMatrix a = SamoyedsMatrix::Encode(SmallIntMatrix(rng, 16, 32), fmt);
  const MatrixF b = SmallIntMatrix(rng, 32, 10);
  Selection sel;
  sel.full_size = 10;
  sel.indices = {1, 4, 7};
  const MatrixF y = SamoyedsKernel::Run(a, b, sel);
  // Each output column equals the single-column run of its source.
  for (size_t j = 0; j < sel.indices.size(); ++j) {
    Selection single;
    single.full_size = 10;
    single.indices = {sel.indices[j]};
    const MatrixF yj = SamoyedsKernel::Run(a, b, single);
    for (int64_t r = 0; r < y.rows(); ++r) {
      EXPECT_FLOAT_EQ(y(r, static_cast<int64_t>(j)), yj(r, 0));
    }
  }
}

TEST(KernelAlgebraTest, DeterministicAcrossRuns) {
  Rng rng(115);
  const SamoyedsConfig fmt{4, 8, 32};
  const SamoyedsMatrix a = SamoyedsMatrix::Encode(rng.GaussianMatrix(64, 96), fmt);
  const MatrixF b = rng.GaussianMatrix(96, 24);
  const Selection sel = RandomSelection(rng, 24, 11);
  const MatrixF y1 = SamoyedsKernel::Run(a, b, sel);
  const MatrixF y2 = SamoyedsKernel::Run(a, b, sel);
  EXPECT_TRUE(y1 == y2);
}

// ----------------------------------------------------- profile invariants

struct ShapeParam {
  int64_t m, k, n;
};

class ProfileInvariantTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ProfileInvariantTest, AllProfilesWellFormed) {
  const auto [m, k, n] = GetParam();
  const GemmShape shape{m, k, n};
  const std::vector<KernelProfile> profiles = {
      DenseGemmKernel::Analyze(shape),
      CusparseltSpmmKernel::Analyze(shape),
      SputnikSpmmKernel::Analyze(shape, 0.25),
      VenomSpmmKernel::Analyze(shape, VenomConfig{64, 2, 4}),
      NmSparseSpmmKernel::Analyze(shape, NmConfig{1, 4}),
      SamoyedsKernel::Analyze(shape, n, SamoyedsConfig{1, 2, 32}, SsmmConfig::Default()),
  };
  const TimingModel model(DefaultDevice());
  for (const auto& p : profiles) {
    EXPECT_GT(p.useful_flops, 0.0) << p.kernel_name;
    EXPECT_GT(p.traffic.thread_blocks, 0) << p.kernel_name;
    EXPECT_GE(p.traffic.gmem_read_bytes, 0.0) << p.kernel_name;
    EXPECT_GT(p.traffic.mma_flops + p.traffic.simd_flops, 0.0) << p.kernel_name;
    EXPECT_LE(p.traffic.gmem_uncoalesced_bytes, p.traffic.gmem_read_bytes + 1.0)
        << p.kernel_name;
    EXPECT_GE(p.traffic.efficiency, 0.05) << p.kernel_name;
    EXPECT_LE(p.traffic.efficiency, 1.0) << p.kernel_name;
    const TimingEstimate e = model.Estimate(p.traffic);
    EXPECT_GT(e.total_ms, 0.0) << p.kernel_name;
    EXPECT_TRUE(std::isfinite(e.total_ms)) << p.kernel_name;
  }
}

TEST_P(ProfileInvariantTest, TimeMonotoneInEachDimension) {
  const auto [m, k, n] = GetParam();
  const TimingModel model(DefaultDevice());
  auto samoyeds_ms = [&](int64_t mm, int64_t kk, int64_t nn) {
    return model
        .Estimate(SamoyedsKernel::Analyze({mm, kk, nn}, nn, SamoyedsConfig{1, 2, 32},
                                          SsmmConfig::Default())
                      .traffic)
        .total_ms;
  };
  const double base = samoyeds_ms(m, k, n);
  EXPECT_GE(samoyeds_ms(m * 2, k, n), base * 0.99);
  EXPECT_GE(samoyeds_ms(m, k * 2, n), base * 0.99);
  EXPECT_GE(samoyeds_ms(m, k, n * 2), base * 0.99);
}

TEST_P(ProfileInvariantTest, SparsitySavesArithmetic) {
  const auto [m, k, n] = GetParam();
  const GemmShape shape{m, k, n};
  const double dense = DenseGemmKernel::Analyze(shape).traffic.mma_flops;
  const double half = CusparseltSpmmKernel::Analyze(shape).traffic.mma_flops;
  const double quarter =
      SamoyedsKernel::Analyze(shape, n, SamoyedsConfig{1, 2, 32}, SsmmConfig::Default())
          .traffic.mma_flops;
  EXPECT_LT(half, dense);
  EXPECT_LT(quarter, half * 0.75);
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, ProfileInvariantTest,
                         ::testing::Values(ShapeParam{256, 256, 256},
                                           ShapeParam{512, 2048, 1024},
                                           ShapeParam{2048, 512, 4096},
                                           ShapeParam{4096, 4096, 4096},
                                           ShapeParam{14336, 4096, 1024},
                                           ShapeParam{1408, 2048, 8192}));

// ----------------------------------------------- timing model fuzz checks

TEST(TimingFuzzTest, EstimatesAlwaysFiniteAndPositive) {
  Rng rng(116);
  const TimingModel model(DefaultDevice());
  for (int trial = 0; trial < 500; ++trial) {
    TrafficReport t;
    t.gmem_read_bytes = rng.NextDouble() * 1e10;
    t.gmem_write_bytes = rng.NextDouble() * 1e9;
    t.gmem_unique_bytes = rng.NextDouble() * (t.gmem_read_bytes + t.gmem_write_bytes);
    t.gmem_uncoalesced_bytes = rng.NextDouble() * t.gmem_read_bytes;
    t.smem_bytes = rng.NextDouble() * 1e10;
    t.mma_flops = rng.NextDouble() * 1e13;
    t.simd_flops = rng.NextDouble() * 1e11;
    t.thread_blocks = 1 + static_cast<int64_t>(rng.NextBounded(1 << 20));
    t.warps_per_block = 1 + static_cast<int>(rng.NextBounded(16));
    t.smem_bytes_per_block = static_cast<int64_t>(rng.NextBounded(100 << 10));
    t.pipeline_stages = 1 + static_cast<int>(rng.NextBounded(4));
    t.mainloop_iterations = static_cast<int64_t>(rng.NextBounded(512));
    t.bank_conflict_factor = 1.0 + rng.NextDouble();
    t.efficiency = 0.1 + 0.9 * rng.NextDouble();
    const TimingEstimate e = model.Estimate(t);
    ASSERT_TRUE(std::isfinite(e.total_ms));
    ASSERT_GT(e.total_ms, 0.0);
    ASSERT_GE(e.parallel_efficiency, 0.0);
    ASSERT_LE(e.parallel_efficiency, 1.0 + 1e-9);
  }
}

TEST(TimingFuzzTest, DevicesPreserveOrderingOfDominatedReports) {
  // If report B strictly dominates report A in every cost dimension, B must
  // not be faster on any device.
  Rng rng(117);
  for (int trial = 0; trial < 100; ++trial) {
    TrafficReport a;
    a.gmem_read_bytes = rng.NextDouble() * 1e9;
    a.gmem_write_bytes = rng.NextDouble() * 1e8;
    a.gmem_unique_bytes = a.gmem_read_bytes * 0.5;
    a.smem_bytes = rng.NextDouble() * 1e9;
    a.mma_flops = rng.NextDouble() * 1e12;
    a.simd_flops = rng.NextDouble() * 1e10;
    a.thread_blocks = 4096;
    a.warps_per_block = 8;
    a.pipeline_stages = 3;
    TrafficReport b = a;
    const double factor = 1.1 + rng.NextDouble();
    b.gmem_read_bytes *= factor;
    b.gmem_write_bytes *= factor;
    b.gmem_unique_bytes *= factor;
    b.smem_bytes *= factor;
    b.mma_flops *= factor;
    b.simd_flops *= factor;
    for (DeviceModel dm : AllDeviceModels()) {
      const TimingModel model(GetDevice(dm));
      ASSERT_GE(model.Estimate(b).total_ms, model.Estimate(a).total_ms * 0.999);
    }
  }
}

}  // namespace
}  // namespace samoyeds
