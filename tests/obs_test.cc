// Observability layer: the flight-recorder tracer and the log-bucketed
// metric sketches —
//
//   * Histogram percentiles are *exact* (digit-for-digit with a sort-based
//     nearest-rank oracle) in the linear region where every step-count
//     latency lives, and within the documented 2/kSubBuckets relative error
//     everywhere else;
//   * a disabled tracer records nothing; detail levels nest (a kFull event
//     never leaks into a kStep capture);
//   * rings wrap flight-recorder style: the newest `capacity` events
//     survive, the overwritten count is exact, snapshots come out
//     oldest-first with monotonic timestamps;
//   * ToChromeJson emits well-formed JSON with the trace-event envelope;
//   * a sharded + chunked + genuinely-preempting engine run produces a
//     request timeline that reconciles event-for-event with EngineMetrics
//     (same admit/first-output/finish steps, same preemption count), and
//     tracing does not perturb outputs (bit-identical traced vs untraced).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/moe/decoder_layer.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/serving/engine.h"
#include "src/serving/scheduler.h"
#include "src/serving/trace.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace obs {
namespace {

// ---- Histogram --------------------------------------------------------------

// Sort-based nearest-rank oracle the old metrics.cc percentile path used.
double OraclePercentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(
                                                                  samples.size())))));
  return samples[rank - 1];
}

TEST(HistogramTest, ExactInTheLinearRegion) {
  // Step-count latencies: small integers, all below kSubBuckets units.
  Rng rng(11);
  Histogram h(1.0);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    const double v = static_cast<double>(rng.NextIndex(Histogram::kSubBuckets));
    samples.push_back(v);
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 500);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), OraclePercentile(samples, q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_DOUBLE_EQ(h.max(), *std::max_element(samples.begin(), samples.end()));
}

TEST(HistogramTest, LogRegionRelativeErrorIsBounded) {
  Rng rng(13);
  Histogram h(1.0);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) {
    // Log-uniform over ~6 octaves above the linear region.
    const double v = 256.0 * std::pow(2.0, 6.0 * rng.NextDouble());
    samples.push_back(v);
    h.Record(v);
  }
  const double bound = 2.0 / static_cast<double>(Histogram::kSubBuckets);
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = OraclePercentile(samples, q);
    const double approx = h.Percentile(q);
    EXPECT_GE(approx, exact) << "q=" << q;  // upper bounds never undershoot
    EXPECT_LE((approx - exact) / exact, bound) << "q=" << q;
  }
  // The true max is reported exactly regardless of bucketing.
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), h.max());
}

TEST(HistogramTest, ScaleEmptyAndClamps) {
  Histogram empty(1000.0);
  EXPECT_EQ(empty.count(), 0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.95), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);

  // Milliseconds at scale 1000: microsecond resolution keeps sub-unit
  // samples distinguishable.
  Histogram ms(1000.0);
  ms.Record(0.125);
  ms.Record(0.25);
  ms.Record(-3.0);  // clamps to 0
  EXPECT_EQ(ms.count(), 3);
  EXPECT_DOUBLE_EQ(ms.Percentile(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ms.min(), 0.0);

  Histogram sat(1.0);
  sat.Record(1e30);  // saturates, must not crash or wrap
  EXPECT_EQ(sat.count(), 1);
  EXPECT_GT(sat.Percentile(1.0), 0.0);
}

TEST(MetricRegistryTest, CountersHistogramsAndJson) {
  MetricRegistry reg;
  reg.GetCounter("steps").Add(3);
  reg.GetCounter("steps").Add();
  EXPECT_EQ(reg.GetCounter("steps").value(), 4);
  reg.GetHistogram("ttft_ms", 1000.0).Record(1.5);
  reg.GetHistogram("ttft_ms").Record(2.5);  // scale sticks from first creation
  EXPECT_EQ(reg.GetHistogram("ttft_ms").count(), 2);

  const std::string json = reg.ToJson();
  EXPECT_TRUE(JsonParses(json)) << json;
  EXPECT_TRUE(HasJsonKey(json, "counters"));
  double v = 0.0;
  ASSERT_TRUE(FindJsonNumber(json, "steps", &v));
  EXPECT_DOUBLE_EQ(v, 4.0);
}

// ---- Tracer -----------------------------------------------------------------

// Every tracer test owns the process-wide singleton for its duration and
// stops it on exit so engine tests stay untraced.
class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Get().Stop(); }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::Get();
  tracer.Stop();
  EXPECT_FALSE(tracer.enabled());
  TraceInstant("test", "ignored", TraceDetail::kStep);
  TraceCounter("test", "ignored", TraceDetail::kStep, 7);
  { ScopedSpan span("test", "ignored", TraceDetail::kStep); }
  EXPECT_EQ(tracer.total_events(), 0);
}

TEST_F(TracerTest, DetailLevelsNest) {
  Tracer& tracer = Tracer::Get();
  tracer.Start(TraceDetail::kStep);
  EXPECT_TRUE(tracer.enabled(TraceDetail::kStep));
  EXPECT_FALSE(tracer.enabled(TraceDetail::kRequest));
  EXPECT_FALSE(tracer.enabled(TraceDetail::kFull));
  TraceInstant("test", "step", TraceDetail::kStep);
  TraceAsyncBegin("test", "request", TraceDetail::kRequest, 1);
  TraceInstant("test", "full", TraceDetail::kFull);
  EXPECT_EQ(tracer.total_events(), 1);

  tracer.Start(TraceDetail::kRequest);  // fresh capture, prior events gone
  TraceInstant("test", "step", TraceDetail::kStep);
  TraceAsyncBegin("test", "request", TraceDetail::kRequest, 1);
  TraceInstant("test", "full", TraceDetail::kFull);
  EXPECT_EQ(tracer.total_events(), 2);
}

TEST_F(TracerTest, SpansNestAndTimestampsAreMonotonic) {
  SetThreadName("obs-test");
  Tracer& tracer = Tracer::Get();
  tracer.Start(TraceDetail::kFull);
  {
    ScopedSpan outer("test", "outer", TraceDetail::kStep, 41);
    ScopedSpan inner("test", "inner", TraceDetail::kFull, 42);
    TraceInstant("test", "mark", TraceDetail::kStep, 43);
  }
  const std::vector<TraceThread> threads = tracer.Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].name, "obs-test");
  EXPECT_EQ(threads[0].dropped, 0);
  const std::vector<TraceEvent>& ev = threads[0].events;
  ASSERT_EQ(ev.size(), 5u);  // B B i E E
  EXPECT_EQ(ev[0].type, EventType::kBegin);
  EXPECT_EQ(std::string(ev[0].name), "outer");
  EXPECT_EQ(ev[0].value, 41);
  EXPECT_EQ(ev[1].type, EventType::kBegin);
  EXPECT_EQ(ev[2].type, EventType::kInstant);
  EXPECT_EQ(ev[3].type, EventType::kEnd);
  EXPECT_EQ(std::string(ev[3].name), "inner");  // LIFO close order
  EXPECT_EQ(ev[4].type, EventType::kEnd);
  EXPECT_EQ(std::string(ev[4].name), "outer");
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i].ts_ns, ev[i - 1].ts_ns);
  }
}

TEST_F(TracerTest, RingWrapsKeepingTheNewestEvents) {
  Tracer& tracer = Tracer::Get();
  tracer.Start(TraceDetail::kStep, /*ring_capacity=*/16);
  for (int64_t i = 0; i < 100; ++i) {
    TraceCounter("test", "i", TraceDetail::kStep, i);
  }
  EXPECT_EQ(tracer.total_events(), 100);
  EXPECT_EQ(tracer.dropped_events(), 84);
  const std::vector<TraceThread> threads = tracer.Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].dropped, 84);
  ASSERT_EQ(threads[0].events.size(), 16u);
  for (size_t i = 0; i < 16; ++i) {  // oldest-first unroll of 84..99
    EXPECT_EQ(threads[0].events[i].value, 84 + static_cast<int64_t>(i));
  }
}

TEST_F(TracerTest, ChromeJsonIsWellFormed) {
  Tracer& tracer = Tracer::Get();
  tracer.Start(TraceDetail::kFull);
  {
    ScopedSpan span("engine", "step", TraceDetail::kStep, 1);
    TraceCounter("kv", "used_pages", TraceDetail::kStep, 5);
  }
  TraceAsyncBegin("request", "session", TraceDetail::kRequest, 42, 0);
  TraceAsyncInstant("request", "admit", TraceDetail::kRequest, 42, 1);
  TraceAsyncEnd("request", "session", TraceDetail::kRequest, 42, 3);
  tracer.Stop();

  const std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonParses(json)) << json;
  EXPECT_TRUE(HasJsonKey(json, "traceEvents"));
  EXPECT_TRUE(HasJsonKey(json, "displayTimeUnit"));
  // One thread-name metadata record, the async span keyed by a hex id, and
  // the counter carrying its sample in args.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x2a\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

// ---- Engine integration: trace <-> metrics reconciliation --------------------

MoeModelConfig TinyConfig() {
  MoeModelConfig cfg;
  cfg.name = "tiny";
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  cfg.shared_experts = 0;
  return cfg;
}

std::vector<SamoyedsDecoderLayerWeights> BuildTinyModel(Rng& rng, int layers,
                                                        const MoeModelConfig& cfg) {
  const SamoyedsConfig fmt{1, 2, 32};
  std::vector<SamoyedsDecoderLayerWeights> model;
  for (int l = 0; l < layers; ++l) {
    model.push_back(
        SamoyedsDecoderLayerWeights::Encode(DecoderLayerWeights::Random(rng, cfg), fmt));
  }
  return model;
}

// Sharded + chunked + page-starved: 4 requests of 8 prompt + 8 decode against
// an 8-page pool of 4-token pages forces decode-time evictions (the same
// shape serving_test's preemption suite pins down).
serving::EngineConfig PreemptingShardedConfig() {
  serving::EngineConfig cfg;
  cfg.heads = 4;
  cfg.top_k = 2;
  cfg.threads = 2;
  cfg.shards = 2;
  cfg.scheduler.policy = serving::SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 40;
  cfg.scheduler.chunk_tokens = 4;
  cfg.scheduler.max_resident_tokens = 1 << 20;
  cfg.scheduler.page_tokens = 4;
  cfg.scheduler.max_pages = 8;
  cfg.scheduler.preempt = true;
  return cfg;
}

struct EngineRun {
  std::vector<MatrixF> outputs;  // submission order
  std::map<int64_t, serving::RequestMetrics> requests;
  int64_t preemptions = 0;
};

EngineRun RunPreemptingWorkload(const std::vector<SamoyedsDecoderLayerWeights>& model) {
  serving::ServingEngine engine(model, PreemptingShardedConfig());
  Rng rng(96);  // identical workload every run
  for (int64_t i = 0; i < 4; ++i) {
    serving::TraceEntry e{/*arrival_step=*/0, /*prompt_len=*/8, /*max_new_tokens=*/8};
    EXPECT_TRUE(engine.Submit(serving::MakeRequest(rng, i, e, 32)));
  }
  engine.RunUntilDrained(/*max_steps=*/10000);
  EngineRun run;
  for (int64_t i = 0; i < 4; ++i) {
    const serving::RequestResult* result = engine.Result(i);
    run.outputs.push_back(result != nullptr ? result->outputs : MatrixF(0, 0));
  }
  run.requests = engine.metrics().requests();
  run.preemptions = static_cast<int64_t>(engine.metrics().preemption_log().size());
  return run;
}

// Per-request view of the "request" async track, rebuilt from a snapshot.
struct RequestTrack {
  int64_t begin_step = -1;   // "session" b value (arrival)
  int64_t admit_step = -1;   // latest "admit" n value
  int64_t first_output_step = -1;
  int64_t end_step = -1;     // "session" e value (finish)
  int64_t preempts = 0;
  int64_t prefill_chunks = 0;  // max "prefill_chunk" n value
};

std::map<int64_t, RequestTrack> CollectRequestTracks(const Tracer& tracer) {
  std::map<int64_t, RequestTrack> tracks;
  for (const TraceThread& thread : tracer.Snapshot()) {
    EXPECT_EQ(thread.dropped, 0) << "ring too small for the test workload";
    for (const TraceEvent& ev : thread.events) {
      if (std::string(ev.category) != "request") {
        continue;
      }
      RequestTrack& track = tracks[ev.id];
      const std::string name = ev.name;
      if (name == "session" && ev.type == EventType::kAsyncBegin) {
        track.begin_step = ev.value;
      } else if (name == "session" && ev.type == EventType::kAsyncEnd) {
        track.end_step = ev.value;
      } else if (name == "admit") {
        track.admit_step = ev.value;
      } else if (name == "first_output" && track.first_output_step < 0) {
        track.first_output_step = ev.value;
      } else if (name == "preempt") {
        ++track.preempts;
      } else if (name == "prefill_chunk") {
        track.prefill_chunks = std::max(track.prefill_chunks, ev.value);
      }
    }
  }
  return tracks;
}

TEST_F(TracerTest, RequestTimelineReconcilesWithEngineMetricsUnderPreemption) {
  Rng seed_rng(95);
  const auto model = BuildTinyModel(seed_rng, /*layers=*/2, TinyConfig());

  Tracer& tracer = Tracer::Get();
  tracer.Start(TraceDetail::kFull);
  const EngineRun traced = RunPreemptingWorkload(model);
  tracer.Stop();

  // The workload genuinely exercised every lifecycle edge being reconciled.
  ASSERT_GT(traced.preemptions, 0);
  ASSERT_EQ(traced.requests.size(), 4u);

  const std::map<int64_t, RequestTrack> tracks = CollectRequestTracks(tracer);
  ASSERT_EQ(tracks.size(), 4u);
  int64_t traced_preempts = 0;
  for (const auto& [id, rm] : traced.requests) {
    ASSERT_TRUE(tracks.count(id)) << "request " << id << " missing from the trace";
    const RequestTrack& track = tracks.at(id);
    EXPECT_EQ(track.begin_step, rm.arrival_step) << "request " << id;
    EXPECT_EQ(track.admit_step, rm.admit_step) << "request " << id;
    EXPECT_EQ(track.first_output_step, rm.first_output_step) << "request " << id;
    EXPECT_EQ(track.end_step, rm.finish_step) << "request " << id;
    EXPECT_EQ(track.preempts, rm.preemptions) << "request " << id;
    EXPECT_EQ(track.prefill_chunks, rm.prefill_chunks) << "request " << id;
    traced_preempts += track.preempts;
  }
  EXPECT_EQ(traced_preempts, traced.preemptions);

  // The whole capture exports as valid Chrome trace JSON.
  EXPECT_TRUE(JsonParses(tracer.ToChromeJson()));

  // Tracing must not perturb the computation: re-run untraced, bit-identical.
  const EngineRun untraced = RunPreemptingWorkload(model);
  ASSERT_EQ(untraced.outputs.size(), traced.outputs.size());
  for (size_t i = 0; i < traced.outputs.size(); ++i) {
    EXPECT_TRUE(traced.outputs[i] == untraced.outputs[i]) << "request " << i;
  }
  EXPECT_EQ(untraced.preemptions, traced.preemptions);
}

}  // namespace
}  // namespace obs
}  // namespace samoyeds
