// Serving engine: batching invariants, scheduler policies, admission
// control, thread-pool determinism, and the end-to-end property that the
// continuous-batching incremental execution matches a full-sequence
// DecoderStackForwardReference call at bf16 tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "src/moe/decoder_layer.h"
#include "src/serving/batch_assembler.h"
#include "src/serving/engine.h"
#include "src/serving/expert_pool.h"
#include "src/serving/request_queue.h"
#include "src/serving/scheduler.h"
#include "src/serving/trace.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace serving {
namespace {

MoeModelConfig TinyConfig() {
  MoeModelConfig cfg;
  cfg.name = "tiny";
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  cfg.shared_experts = 0;
  return cfg;
}

struct TinyModel {
  std::vector<DecoderLayerWeights> dense;      // masked, the reference
  std::vector<SamoyedsDecoderLayerWeights> sparse;
};

TinyModel BuildTinyModel(Rng& rng, int layers, const MoeModelConfig& cfg) {
  const SamoyedsConfig fmt{1, 2, 32};
  TinyModel model;
  for (int l = 0; l < layers; ++l) {
    DecoderLayerWeights w = DecoderLayerWeights::Random(rng, cfg);
    model.sparse.push_back(SamoyedsDecoderLayerWeights::Encode(w, fmt));
    for (auto& e : w.moe.experts) {
      e.ApplyMask(fmt);
    }
    for (auto& e : w.moe.shared_experts) {
      e.ApplyMask(fmt);
    }
    model.dense.push_back(std::move(w));
  }
  return model;
}

Request MakeTestRequest(Rng& rng, int64_t id, int64_t arrival, int64_t prompt, int64_t decode,
                        int64_t hidden) {
  TraceEntry e{arrival, prompt, decode};
  return MakeRequest(rng, id, e, hidden);
}

// ---- RequestQueue -----------------------------------------------------------

TEST(RequestQueueTest, DrainsByArrivalStep) {
  RequestQueue q;
  Request a;
  a.id = 1;
  a.arrival_step = 5;
  Request b;
  b.id = 2;
  b.arrival_step = 0;
  q.Push(a);
  q.Push(b);  // pushed out of order

  EXPECT_EQ(q.NextArrivalStep(), 0);
  auto now = q.DrainArrived(0);
  ASSERT_EQ(now.size(), 1u);
  EXPECT_EQ(now[0].id, 2);
  EXPECT_EQ(q.NextArrivalStep(), 5);
  EXPECT_TRUE(q.DrainArrived(4).empty());
  auto later = q.DrainArrived(5);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].id, 1);
  EXPECT_TRUE(q.empty());
}

// ---- BatchAssembler ---------------------------------------------------------

TEST(BatchAssemblerTest, AssembleSplitRoundTrip) {
  Rng rng(11);
  const MatrixF a = rng.GaussianMatrix(6, 8);
  const MatrixF b = rng.GaussianMatrix(4, 8);

  std::vector<BatchAssembler::Contribution> parts;
  parts.push_back({10, &a, 0, 3, true});   // a rows 0..2
  parts.push_back({20, &b, 2, 1, false});  // b row 2
  parts.push_back({10, &a, 3, 2, false});  // a rows 3..4

  const AssembledBatch batch = BatchAssembler::Assemble(parts, 8);
  ASSERT_EQ(batch.total_rows(), 6);
  ASSERT_EQ(batch.slices.size(), 3u);
  EXPECT_EQ(batch.slices[1].row_begin, 3);
  EXPECT_EQ(batch.slices[1].request_id, 20);
  EXPECT_TRUE(batch.slices[0].is_prefill);
  EXPECT_EQ(batch.slices[2].position_begin, 3);

  // Batch rows are exact copies of the source rows.
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_EQ(batch.rows(3, c), b(2, c));
    EXPECT_EQ(batch.rows(5, c), a(4, c));
  }

  const auto split = BatchAssembler::Split(batch.rows, batch.slices);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(split[0].rows(), 3);
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_EQ(split[1](0, c), b(2, c));
    EXPECT_EQ(split[2](1, c), a(4, c));
  }
}

// ---- Scheduler --------------------------------------------------------------

Request Sized(int64_t id, int64_t prompt, int64_t decode) {
  Request r;
  r.id = id;
  r.prompt_len = prompt;
  r.max_new_tokens = decode;
  return r;
}

TEST(SchedulerTest, FcfsAdmitsInArrivalOrderWithHeadOfLineBlocking) {
  SchedulerConfig cfg;
  cfg.policy = SchedulerPolicy::kFcfs;
  cfg.token_budget = 16;
  cfg.max_resident_tokens = 24;
  Scheduler sched(cfg);
  sched.Enqueue(Sized(1, 8, 8));   // total 16: blocked by resident cap below
  sched.Enqueue(Sized(2, 2, 2));   // total 4: would fit, but FCFS must not overtake

  ResidentSnapshot resident{1, 16};  // one 16-token sequence already running
  const auto decision = sched.Admit(/*decode_rows=*/1, resident);
  EXPECT_TRUE(decision.admitted.empty());
  EXPECT_TRUE(decision.rejected.empty());
  EXPECT_EQ(sched.pending(), 2);

  // Once the resident sequence retires, both fit, in arrival order.
  const auto next = sched.Admit(0, ResidentSnapshot{0, 0});
  ASSERT_EQ(next.admitted.size(), 2u);
  EXPECT_EQ(next.admitted[0].id, 1);
  EXPECT_EQ(next.admitted[1].id, 2);
}

TEST(SchedulerTest, TokenBudgetPolicyFillsLeftoverBudget) {
  SchedulerConfig cfg;
  cfg.policy = SchedulerPolicy::kTokenBudget;
  cfg.token_budget = 16;
  cfg.max_resident_tokens = 24;
  Scheduler sched(cfg);
  sched.Enqueue(Sized(1, 8, 8));  // blocked by resident cap
  sched.Enqueue(Sized(2, 2, 2));  // overtakes under token-budget packing

  const auto decision = sched.Admit(1, ResidentSnapshot{1, 16});
  ASSERT_EQ(decision.admitted.size(), 1u);
  EXPECT_EQ(decision.admitted[0].id, 2);
  EXPECT_EQ(sched.pending(), 1);
}

TEST(SchedulerTest, SmallestFirstPrefersShortRequests) {
  SchedulerConfig cfg;
  cfg.policy = SchedulerPolicy::kSmallestFirst;
  cfg.token_budget = 8;
  cfg.max_resident_tokens = 64;
  Scheduler sched(cfg);
  sched.Enqueue(Sized(1, 6, 10));  // longest, arrived first
  sched.Enqueue(Sized(2, 4, 2));
  sched.Enqueue(Sized(3, 2, 2));

  // Budget 8 rows: smallest-first packs ids 3 (2 rows) and 2 (4 rows).
  const auto decision = sched.Admit(0, ResidentSnapshot{0, 0});
  ASSERT_EQ(decision.admitted.size(), 2u);
  // Admitted set preserves arrival order internally.
  EXPECT_EQ(decision.admitted[0].id, 2);
  EXPECT_EQ(decision.admitted[1].id, 3);
  EXPECT_EQ(sched.pending(), 1);
}

TEST(SchedulerTest, RejectsRequestsThatCanNeverFit) {
  SchedulerConfig cfg;
  cfg.token_budget = 16;
  cfg.max_resident_tokens = 32;
  Scheduler sched(cfg);
  sched.Enqueue(Sized(1, 20, 0));  // prompt exceeds the per-iteration budget
  sched.Enqueue(Sized(2, 8, 40));  // total exceeds resident capacity
  sched.Enqueue(Sized(3, 4, 4));

  const auto decision = sched.Admit(0, ResidentSnapshot{0, 0});
  ASSERT_EQ(decision.rejected.size(), 2u);
  EXPECT_EQ(decision.rejected[0].request.id, 1);
  EXPECT_NE(std::strstr(decision.rejected[0].reason, "token budget"), nullptr);
  EXPECT_EQ(decision.rejected[1].request.id, 2);
  EXPECT_NE(std::strstr(decision.rejected[1].reason, "resident capacity"), nullptr);
  ASSERT_EQ(decision.admitted.size(), 1u);
  EXPECT_EQ(decision.admitted[0].id, 3);
}

// ---- Scheduler: paged admission ---------------------------------------------

SchedulerConfig PagedConfig(int64_t page_tokens, int64_t max_pages, bool preempt) {
  SchedulerConfig cfg;
  cfg.policy = SchedulerPolicy::kFcfs;
  cfg.token_budget = 64;
  cfg.page_tokens = page_tokens;
  cfg.max_pages = max_pages;
  cfg.preempt = preempt;
  return cfg;
}

TEST(SchedulerTest, PagedAdmissionPacksToExactlyFullCapacity) {
  // Conservative accounting (preempt off): the full prompt+decode lifetime
  // must fit next to the residents' reserved pages.
  Scheduler sched(PagedConfig(/*page_tokens=*/4, /*max_pages=*/4, /*preempt=*/false));
  sched.Enqueue(Sized(1, 4, 4));  // 8 tokens = 2 pages
  sched.Enqueue(Sized(2, 5, 3));  // 8 tokens = 2 pages -> pool exactly full
  sched.Enqueue(Sized(3, 1, 0));  // 1 token = 1 page: must wait, not reject

  auto decision = sched.Admit(0, ResidentSnapshot{});
  ASSERT_EQ(decision.admitted.size(), 2u);
  EXPECT_TRUE(decision.rejected.empty());
  EXPECT_EQ(sched.pending(), 1);

  // With the pool exactly full nothing more fits...
  ResidentSnapshot resident;
  resident.sequences = 2;
  resident.tokens = 16;
  resident.reserved_pages = 4;
  resident.used_pages = 4;
  EXPECT_TRUE(sched.Admit(2, resident).admitted.empty());
  // ...and after the residents retire, the waiter is admitted.
  EXPECT_EQ(sched.Admit(0, ResidentSnapshot{}).admitted.size(), 1u);
}

TEST(SchedulerTest, RejectsLifetimesBeyondThePageBudgetUpFront) {
  Scheduler sched(PagedConfig(4, 4, /*preempt=*/true));
  sched.Enqueue(Sized(1, 10, 8));  // 18 tokens = 5 pages > 4-page pool
  sched.Enqueue(Sized(2, 4, 4));

  const auto decision = sched.Admit(0, ResidentSnapshot{});
  ASSERT_EQ(decision.rejected.size(), 1u);
  EXPECT_EQ(decision.rejected[0].request.id, 1);
  EXPECT_NE(std::strstr(decision.rejected[0].reason, "page budget"), nullptr);
  ASSERT_EQ(decision.admitted.size(), 1u);
  EXPECT_EQ(decision.admitted[0].id, 2);
}

TEST(SchedulerTest, PreemptiveAdmissionOnlyChargesThePrompt) {
  // Optimistic accounting (preempt on): a request whose prompt fits right now
  // is admitted even though its full lifetime would not fit conservatively.
  Scheduler sched(PagedConfig(4, 4, /*preempt=*/true));
  sched.Enqueue(Sized(1, 4, 11));  // lifetime 15 tokens = 4 pages, prompt = 1 page

  ResidentSnapshot resident;
  resident.sequences = 1;
  resident.tokens = 8;
  resident.used_pages = 2;      // what is held right now
  resident.reserved_pages = 4;  // what conservative accounting would charge
  const auto decision = sched.Admit(1, resident);
  ASSERT_EQ(decision.admitted.size(), 1u);

  Scheduler conservative(PagedConfig(4, 4, /*preempt=*/false));
  conservative.Enqueue(Sized(1, 4, 11));
  EXPECT_TRUE(conservative.Admit(1, resident).admitted.empty());
}

// ---- Scheduler: chunked prefill ---------------------------------------------

TEST(SchedulerTest, ChunkedAdmissionChargesTheFirstChunkNotTheWholePrompt) {
  SchedulerConfig cfg;
  cfg.policy = SchedulerPolicy::kFcfs;
  cfg.token_budget = 16;
  cfg.chunk_tokens = 4;
  Scheduler sched(cfg);
  // 40-row prompt: rejected outright without chunking, admitted with it —
  // only its 4-row first chunk counts against the iteration budget.
  sched.Enqueue(Sized(1, 40, 4));
  sched.Enqueue(Sized(2, 8, 2));

  const auto decision = sched.Admit(0, ResidentSnapshot{});
  EXPECT_TRUE(decision.rejected.empty());
  ASSERT_EQ(decision.admitted.size(), 2u);
  EXPECT_EQ(decision.admitted[0].id, 1);
  EXPECT_EQ(decision.admitted[1].id, 2);

  Scheduler unchunked(SchedulerConfig{.policy = SchedulerPolicy::kFcfs, .token_budget = 16});
  unchunked.Enqueue(Sized(1, 40, 4));
  const auto rejected = unchunked.Admit(0, ResidentSnapshot{});
  ASSERT_EQ(rejected.rejected.size(), 1u);
  EXPECT_NE(std::strstr(rejected.rejected[0].reason, "token budget"), nullptr);
}

TEST(SchedulerTest, ChunkSizingHelpersRespectBudgetAndRemainder) {
  SchedulerConfig cfg;
  cfg.token_budget = 16;
  cfg.chunk_tokens = 6;
  EXPECT_EQ(FirstChunkRows(40, cfg), 6);   // full chunk
  EXPECT_EQ(FirstChunkRows(4, cfg), 4);    // short prompt: one whole chunk
  EXPECT_EQ(PrefillChunkRows(40, 16, cfg), 6);
  EXPECT_EQ(PrefillChunkRows(40, 3, cfg), 3);   // trimmed to leftover budget
  EXPECT_EQ(PrefillChunkRows(5, 16, cfg), 5);   // final partial chunk
  EXPECT_EQ(PrefillChunkRows(40, 0, cfg), 0);   // starved: sits out
  cfg.chunk_tokens = 64;  // cap larger than the budget still admits
  EXPECT_EQ(FirstChunkRows(100, cfg), 16);
  cfg.chunk_tokens = 0;   // chunking off: the whole remaining prompt
  EXPECT_EQ(PrefillChunkRows(12, 3, cfg), 12);
  EXPECT_EQ(FirstChunkRows(12, cfg), 12);
}

TEST(SchedulerTest, ChunkedPagedAdmissionChargesOnlyTheFirstChunkWhenPreemptive) {
  // Optimistic paged accounting + chunking: only the first chunk's pages
  // must fit right now; later chunks are iteration growth handled by the
  // eviction loop. Conservative accounting still reserves the full lifetime.
  SchedulerConfig cfg = PagedConfig(/*page_tokens=*/4, /*max_pages=*/8, /*preempt=*/true);
  cfg.chunk_tokens = 4;
  Scheduler sched(cfg);
  sched.Enqueue(Sized(1, 16, 8));  // lifetime 24 tokens = 6 pages, chunk = 1 page

  ResidentSnapshot resident;
  resident.sequences = 1;
  resident.used_pages = 7;      // room for exactly one more page
  resident.reserved_pages = 8;
  const auto decision = sched.Admit(1, resident);
  ASSERT_EQ(decision.admitted.size(), 1u);

  SchedulerConfig conservative_cfg = PagedConfig(4, 8, /*preempt=*/false);
  conservative_cfg.chunk_tokens = 4;
  Scheduler conservative(conservative_cfg);
  conservative.Enqueue(Sized(1, 16, 8));
  EXPECT_TRUE(conservative.Admit(1, resident).admitted.empty());
}

TEST(SchedulerTest, PageCapacityRejectionNeverBlamesTheTokenBudget) {
  // A request that overflows BOTH the iteration token budget and the KV page
  // pool is impossible to serve because of the pages — chunked prefill could
  // fix the budget half, more pages could not be conjured. The reason string
  // must say so, not mislead the operator into enabling chunking.
  SchedulerConfig cfg = PagedConfig(/*page_tokens=*/4, /*max_pages=*/4, /*preempt=*/true);
  cfg.token_budget = 16;
  Scheduler sched(cfg);
  sched.Enqueue(Sized(1, 20, 8));  // prompt 20 > budget 16, 28 tokens = 7 pages > 4

  const auto decision = sched.Admit(0, ResidentSnapshot{});
  ASSERT_EQ(decision.rejected.size(), 1u);
  EXPECT_NE(std::strstr(decision.rejected[0].reason, "page budget"), nullptr)
      << decision.rejected[0].reason;
  EXPECT_EQ(std::strstr(decision.rejected[0].reason, "token budget"), nullptr)
      << decision.rejected[0].reason;

  // With chunking on, the token-budget half really is curable — the page
  // verdict must be identical so the operator sees the incurable one.
  cfg.chunk_tokens = 4;
  Scheduler chunked(cfg);
  chunked.Enqueue(Sized(1, 20, 8));
  const auto chunked_decision = chunked.Admit(0, ResidentSnapshot{});
  ASSERT_EQ(chunked_decision.rejected.size(), 1u);
  EXPECT_NE(std::strstr(chunked_decision.rejected[0].reason, "page budget"), nullptr);
}

TEST(SchedulerTest, CancelRemovesAPendingRequest) {
  SchedulerConfig cfg;
  cfg.token_budget = 16;
  Scheduler sched(cfg);
  sched.Enqueue(Sized(1, 4, 4));
  sched.Enqueue(Sized(2, 4, 4));
  EXPECT_TRUE(sched.Cancel(1));
  EXPECT_FALSE(sched.Cancel(1));  // already gone
  EXPECT_FALSE(sched.Cancel(7));  // never enqueued
  const auto decision = sched.Admit(0, ResidentSnapshot{});
  ASSERT_EQ(decision.admitted.size(), 1u);
  EXPECT_EQ(decision.admitted[0].id, 2);
}

TEST(SchedulerTest, PickVictimPrefersLowPriorityThenYoungest) {
  const std::vector<VictimCandidate> residents = {
      {10, /*priority=*/1, /*admit_seq=*/0},
      {11, /*priority=*/0, /*admit_seq=*/1},
      {12, /*priority=*/0, /*admit_seq=*/3},
      {13, /*priority=*/2, /*admit_seq=*/4},
  };
  // Lowest priority class is {11, 12}; the youngest of those is 12.
  EXPECT_EQ(residents[Scheduler::PickVictim(residents)].id, 12);
  // Ties on priority and admit_seq fall back to the largest id.
  const std::vector<VictimCandidate> tied = {{5, 0, 7}, {9, 0, 7}, {2, 0, 7}};
  EXPECT_EQ(tied[Scheduler::PickVictim(tied)].id, 9);
}

TEST(SchedulerTest, MemoryModelCapacityIsPositiveAndFrameworkOrdered) {
  const MoeModelConfig model = ModelByName("Mixtral-8x7B");
  const SamoyedsConfig fmt{1, 2, 32};
  const int64_t samoyeds_cap =
      TokenCapacity(model, MoeFramework::kSamoyeds, fmt, DefaultDevice());
  const int64_t dense_cap =
      TokenCapacity(model, MoeFramework::kTransformers, fmt, DefaultDevice());
  EXPECT_GT(samoyeds_cap, 0);
  // The sparse format frees weight memory for serving capacity (Table 3).
  EXPECT_GT(samoyeds_cap, dense_cap);

  // The paged admission budget is the same capacity in whole pages.
  const int64_t pages =
      PageCapacity(model, MoeFramework::kSamoyeds, fmt, DefaultDevice(), /*page_tokens=*/16);
  EXPECT_EQ(pages, samoyeds_cap / 16);
  EXPECT_GT(pages, 0);
}

// ---- ExpertPool -------------------------------------------------------------

TEST(ExpertPoolTest, ParallelMoeMatchesSequentialBitwise) {
  Rng rng(21);
  MoeModelConfig cfg = TinyConfig();
  cfg.shared_experts = 1;
  const SamoyedsConfig fmt{1, 2, 32};
  MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw = SamoyedsMoeLayerWeights::Encode(w, fmt);

  const MatrixF x = RandomBf16Matrix(rng, 24, cfg.hidden);
  const RoutingPlan plan = Route(x, w.router_gate, cfg.top_k);
  const MatrixF sequential = MoeForwardSamoyeds(x, sw, plan, Activation::kSilu);

  for (int threads : {1, 2, 4}) {
    ExpertPool pool(threads);
    const MatrixF parallel = ParallelMoeForwardSamoyeds(pool, x, sw, plan, Activation::kSilu);
    EXPECT_TRUE(parallel == sequential) << "threads=" << threads;
  }
}

TEST(ExpertPoolTest, RunsManyTasksToCompletion) {
  ExpertPool pool(4);
  std::vector<int> results(256, 0);
  for (int round = 0; round < 4; ++round) {
    for (size_t i = 0; i < results.size(); ++i) {
      pool.Submit([&results, i] { results[i] += static_cast<int>(i); });
    }
    pool.WaitIdle();
  }
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], 4 * static_cast<int>(i));
  }
}

// ---- Engine -----------------------------------------------------------------

EngineConfig TinyEngineConfig(int threads = 2) {
  EngineConfig cfg;
  cfg.heads = 4;
  cfg.top_k = 2;
  cfg.threads = threads;
  cfg.scheduler.policy = SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 24;
  cfg.scheduler.max_resident_tokens = 64;
  return cfg;
}

TEST(ServingEngineTest, BatchedIncrementalMatchesFullSequenceReference) {
  Rng rng(31);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, /*layers=*/2, cfg);

  ServingEngine engine(model.sparse, TinyEngineConfig());
  std::vector<Request> requests;
  const int64_t prompts[] = {6, 4, 10, 5, 8, 4};
  const int64_t decodes[] = {3, 5, 2, 4, 2, 6};
  const int64_t arrivals[] = {0, 0, 1, 2, 4, 6};
  for (int64_t i = 0; i < 6; ++i) {
    requests.push_back(
        MakeTestRequest(rng, i, arrivals[i], prompts[i], decodes[i], cfg.hidden));
    ASSERT_TRUE(engine.Submit(requests.back()));
  }
  engine.RunUntilDrained(/*max_steps=*/1000);

  for (const Request& r : requests) {
    ASSERT_EQ(engine.Status(r.id), RequestStatus::kFinished) << "request " << r.id;
    const RequestResult* result = engine.Result(r.id);
    ASSERT_NE(result, nullptr);
    ASSERT_EQ(result->outputs.rows(), r.total_tokens());

    const MatrixF ref = DecoderStackForwardReference(r.inputs, model.dense, /*heads=*/4,
                                                     /*top_k=*/2, Activation::kSilu);
    EXPECT_LT(RelativeError(result->outputs, ref), 2e-2) << "request " << r.id;
  }

  // Continuous batching really happened: some iteration mixed prefill rows
  // of a late arrival with decode rows of resident sequences.
  bool mixed = false;
  for (const auto& s : engine.metrics().steps()) {
    EXPECT_LE(s.batch_rows, engine.config().scheduler.token_budget);
    mixed = mixed || (s.prefill_rows > 0 && s.decode_rows > 0);
  }
  EXPECT_TRUE(mixed);
}

TEST(ServingEngineTest, ThreadPoolCountDoesNotChangeOutputs) {
  Rng seed_rng(41);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);

  std::vector<MatrixF> outputs_by_threads;
  for (int threads : {1, 4}) {
    Rng rng(42);  // identical workload per run
    ServingEngine engine(model.sparse, TinyEngineConfig(threads));
    for (int64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, i, i / 2, 5 + i, 3, cfg.hidden)));
    }
    engine.RunUntilDrained(1000);
    MatrixF all(0, 0);
    for (int64_t i = 0; i < 4; ++i) {
      const RequestResult* result = engine.Result(i);
      ASSERT_NE(result, nullptr);
      ASSERT_EQ(result->status, RequestStatus::kFinished);
      if (all.empty()) {
        all = result->outputs;
      } else {
        MatrixF merged(all.rows() + result->outputs.rows(), all.cols());
        for (int64_t r = 0; r < all.rows(); ++r) {
          for (int64_t c = 0; c < all.cols(); ++c) {
            merged(r, c) = all(r, c);
          }
        }
        for (int64_t r = 0; r < result->outputs.rows(); ++r) {
          for (int64_t c = 0; c < all.cols(); ++c) {
            merged(all.rows() + r, c) = result->outputs(r, c);
          }
        }
        all = std::move(merged);
      }
    }
    outputs_by_threads.push_back(std::move(all));
  }
  // Bit-identical across thread counts: fixed-order accumulation works.
  EXPECT_TRUE(outputs_by_threads[0] == outputs_by_threads[1]);
}

TEST(ServingEngineTest, AutotuneDoesNotChangeOutputsAndCachesShapes) {
  Rng seed_rng(43);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);

  std::vector<MatrixF> outputs_by_mode;
  int64_t cache_size = 0;
  ServingReport tuned_report;
  for (const bool autotune : {false, true}) {
    Rng rng(44);  // identical workload per run
    EngineConfig engine_cfg = TinyEngineConfig(/*threads=*/2);
    engine_cfg.autotune = autotune;
    ServingEngine engine(model.sparse, engine_cfg);
    for (int64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, i, i, 4 + i, 3, cfg.hidden)));
    }
    engine.RunUntilDrained(1000);
    MatrixF all(0, 0);
    for (int64_t i = 0; i < 4; ++i) {
      const RequestResult* result = engine.Result(i);
      ASSERT_NE(result, nullptr);
      ASSERT_EQ(result->status, RequestStatus::kFinished);
      MatrixF merged(all.rows() + result->outputs.rows(), result->outputs.cols());
      for (int64_t r = 0; r < all.rows(); ++r) {
        for (int64_t c = 0; c < all.cols(); ++c) {
          merged(r, c) = all(r, c);
        }
      }
      for (int64_t r = 0; r < result->outputs.rows(); ++r) {
        for (int64_t c = 0; c < merged.cols(); ++c) {
          merged(all.rows() + r, c) = result->outputs(r, c);
        }
      }
      all = std::move(merged);
    }
    outputs_by_mode.push_back(std::move(all));
    if (autotune) {
      cache_size = engine.autotune_cache_size();
      tuned_report = engine.Report();
    } else {
      EXPECT_EQ(engine.autotune_cache_size(), 0);
      EXPECT_EQ(engine.Report().autotune_lookups, 0);
    }
  }
  // Autotuning resolves tile configs for the analytic model only — the
  // functional outputs are bit-identical with it on or off.
  EXPECT_TRUE(outputs_by_mode[0] == outputs_by_mode[1]);
  // Every (rows, max-tokens) shape was resolved once and then served from
  // the cache: one lookup per layer per step, strictly fewer misses.
  EXPECT_GT(cache_size, 0);
  EXPECT_GT(tuned_report.autotune_lookups, cache_size);
  EXPECT_EQ(tuned_report.autotune_lookups - tuned_report.autotune_cache_hits, cache_size);
  EXPECT_GE(tuned_report.autotune_speedup, 1.0);
}

TEST(ServingEngineTest, RejectsOversizedAndMalformedRequests) {
  Rng rng(51);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 1, cfg);
  ServingEngine engine(model.sparse, TinyEngineConfig());

  // Prompt larger than the iteration token budget: admission rejection.
  Request oversized = MakeTestRequest(rng, 7, 0, 40, 2, cfg.hidden);
  ASSERT_TRUE(engine.Submit(oversized));

  // Wrong hidden size: rejected at submit.
  Request malformed = MakeTestRequest(rng, 8, 0, 4, 2, cfg.hidden + 1);
  EXPECT_FALSE(engine.Submit(malformed));
  EXPECT_EQ(engine.Status(8), RequestStatus::kRejected);

  // A well-formed request still completes alongside the rejections.
  Request good = MakeTestRequest(rng, 9, 0, 4, 2, cfg.hidden);
  ASSERT_TRUE(engine.Submit(good));

  engine.RunUntilDrained(1000);
  EXPECT_EQ(engine.Status(7), RequestStatus::kRejected);
  ASSERT_NE(engine.Result(7), nullptr);
  EXPECT_NE(engine.Result(7)->reason.find("token budget"), std::string::npos);
  ASSERT_NE(engine.Result(8), nullptr);
  EXPECT_NE(engine.Result(8)->reason.find("malformed"), std::string::npos);
  EXPECT_EQ(engine.Status(9), RequestStatus::kFinished);

  const ServingReport report = engine.Report();
  EXPECT_EQ(report.requests_finished, 1);
  EXPECT_EQ(report.requests_rejected, 2);
}

TEST(ServingEngineTest, DuplicateIdsAreRefusedWithoutClobberingTheOriginal) {
  Rng rng(55);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 1, cfg);
  ServingEngine engine(model.sparse, TinyEngineConfig());

  const Request original = MakeTestRequest(rng, 5, 0, 4, 2, cfg.hidden);
  ASSERT_TRUE(engine.Submit(original));
  // Duplicate while the original is still queued: refused, queue untouched.
  EXPECT_FALSE(engine.Submit(MakeTestRequest(rng, 5, 0, 6, 1, cfg.hidden)));

  engine.RunUntilDrained(1000);
  ASSERT_EQ(engine.Status(5), RequestStatus::kFinished);
  const RequestResult* result = engine.Result(5);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->outputs.rows(), original.total_tokens());

  // Duplicate after completion: refused, the finished result survives.
  EXPECT_FALSE(engine.Submit(MakeTestRequest(rng, 5, 0, 4, 2, cfg.hidden)));
  EXPECT_EQ(engine.Status(5), RequestStatus::kFinished);
  EXPECT_EQ(engine.Report().requests_finished, 1);
  EXPECT_EQ(engine.Report().requests_rejected, 0);
}

TEST(ServingEngineTest, MetricsTrackLoadAndLatency) {
  Rng rng(61);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 2, cfg);
  ServingEngine engine(model.sparse, TinyEngineConfig());

  int64_t total_rows = 0;
  for (int64_t i = 0; i < 3; ++i) {
    Request r = MakeTestRequest(rng, i, 0, 6, 4, cfg.hidden);
    total_rows += r.total_tokens();
    ASSERT_TRUE(engine.Submit(r));
  }
  engine.RunUntilDrained(1000);

  const ServingReport report = engine.Report();
  EXPECT_EQ(report.requests_finished, 3);
  EXPECT_EQ(report.prefill_rows + report.decode_rows, total_rows);
  EXPECT_GE(report.mean_ttft_steps, 1.0);
  EXPECT_GT(report.tokens_per_second, 0.0);
  EXPECT_GT(report.mean_occupancy, 0.0);

  // Every routed token hits top_k experts in each of the 2 layers.
  int64_t routed = 0;
  for (int64_t t : report.expert_tokens) {
    routed += t;
  }
  EXPECT_EQ(routed, total_rows * 2 /*top_k*/ * 2 /*layers*/);
  EXPECT_GE(report.expert_imbalance, 1.0);
}

TEST(ServingEngineTest, IdleStepsFastForwardToNextArrival) {
  Rng rng(71);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 1, cfg);
  ServingEngine engine(model.sparse, TinyEngineConfig());

  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 0, /*arrival=*/100, 4, 1, cfg.hidden)));
  engine.RunUntilDrained(1000);
  EXPECT_EQ(engine.Status(0), RequestStatus::kFinished);
  // The engine skipped the empty steps instead of burning 100 iterations.
  EXPECT_LE(engine.Report().steps, 3);
  EXPECT_GE(engine.current_step(), 100);
}

// ---- Engine: paged KV cache + preemption ------------------------------------

EngineConfig PagedEngineConfig(int64_t page_tokens, int64_t max_pages, bool preempt) {
  EngineConfig cfg = TinyEngineConfig();
  cfg.scheduler.page_tokens = page_tokens;
  cfg.scheduler.max_pages = max_pages;
  cfg.scheduler.preempt = preempt;
  return cfg;
}

TEST(ServingEngineTest, ZeroDecodeRequestFinishesAfterPrefillUnderPaging) {
  Rng rng(91);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 1, cfg);
  ServingEngine engine(model.sparse, PagedEngineConfig(4, 8, /*preempt=*/true));

  const Request r = MakeTestRequest(rng, 0, 0, 6, 0, cfg.hidden);
  ASSERT_TRUE(engine.Submit(r));
  engine.RunUntilDrained(100);

  ASSERT_EQ(engine.Status(0), RequestStatus::kFinished);
  const RequestResult* result = engine.Result(0);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->outputs.rows(), 6);
  // The retired sequence released its pages.
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);
  const MatrixF ref = DecoderStackForwardReference(r.inputs, model.dense, 4, 2,
                                                   Activation::kSilu);
  EXPECT_LT(RelativeError(result->outputs, ref), 2e-2);
}

TEST(ServingEngineTest, SchedulerRejectionReasonSurfacesInResult) {
  Rng rng(93);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 1, cfg);
  ServingEngine engine(model.sparse, PagedEngineConfig(4, 4, /*preempt=*/true));

  // 4 + 20 = 24 tokens = 6 pages > the 4-page pool: rejected up front.
  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 1, 0, 4, 20, cfg.hidden)));
  engine.RunUntilDrained(100);
  ASSERT_EQ(engine.Status(1), RequestStatus::kRejected);
  const RequestResult* result = engine.Result(1);
  ASSERT_NE(result, nullptr);
  EXPECT_NE(result->reason.find("page budget"), std::string::npos) << result->reason;
}

// Shared workload for the preemption tests: four 8+8 requests against an
// 8-page pool of 4-token pages (32 slots for 64 tokens of demand), so decode
// growth must evict residents.
std::vector<Request> SubmitPreemptionWorkload(Rng& rng, ServingEngine& engine,
                                              int64_t hidden) {
  std::vector<Request> requests;
  for (int64_t i = 0; i < 4; ++i) {
    requests.push_back(MakeTestRequest(rng, i, /*arrival=*/0, /*prompt=*/8, /*decode=*/8,
                                       hidden));
    EXPECT_TRUE(engine.Submit(requests.back()));
  }
  return requests;
}

TEST(ServingEngineTest, PreemptedRequestsFinishAndMatchTheReference) {
  Rng rng(95);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, /*layers=*/2, cfg);
  EngineConfig engine_cfg = PagedEngineConfig(/*page_tokens=*/4, /*max_pages=*/8,
                                              /*preempt=*/true);
  engine_cfg.scheduler.token_budget = 40;
  ServingEngine engine(model.sparse, engine_cfg);

  Rng req_rng(96);
  const std::vector<Request> requests = SubmitPreemptionWorkload(req_rng, engine, cfg.hidden);
  engine.RunUntilDrained(/*max_steps=*/10000);

  // Capacity really was forced low enough to evict.
  EXPECT_FALSE(engine.metrics().preemption_log().empty());
  EXPECT_GT(engine.Report().preemptions, 0);

  // Every request — including every preempted one — finished and reproduces
  // the full-sequence reference at the usual bf16 tolerance.
  for (const Request& r : requests) {
    ASSERT_EQ(engine.Status(r.id), RequestStatus::kFinished) << "request " << r.id;
    const RequestResult* result = engine.Result(r.id);
    ASSERT_NE(result, nullptr);
    ASSERT_EQ(result->outputs.rows(), r.total_tokens());
    const MatrixF ref = DecoderStackForwardReference(r.inputs, model.dense, /*heads=*/4,
                                                     /*top_k=*/2, Activation::kSilu);
    EXPECT_LT(RelativeError(result->outputs, ref), 2e-2) << "request " << r.id;
  }
  EXPECT_EQ(engine.kv_cache().allocator().used_pages(), 0);
  // A preempted request's recompute was charged to its metrics.
  int64_t preempted_requests = 0;
  for (const auto& [id, rm] : engine.metrics().requests()) {
    preempted_requests += rm.preemptions > 0 ? 1 : 0;
  }
  EXPECT_GT(preempted_requests, 0);
}

TEST(ServingEngineTest, EvictionOrderIsDeterministicAcrossRuns) {
  Rng seed_rng(97);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);

  std::vector<std::vector<std::pair<int64_t, int64_t>>> logs;
  for (int run = 0; run < 2; ++run) {
    EngineConfig engine_cfg = PagedEngineConfig(4, 8, /*preempt=*/true);
    engine_cfg.scheduler.token_budget = 40;
    engine_cfg.threads = run == 0 ? 1 : 4;  // thread count must not matter
    ServingEngine engine(model.sparse, engine_cfg);
    Rng req_rng(98);  // identical workload per run
    SubmitPreemptionWorkload(req_rng, engine, cfg.hidden);
    engine.RunUntilDrained(10000);
    logs.push_back(engine.metrics().preemption_log());
  }
  ASSERT_FALSE(logs[0].empty());
  EXPECT_EQ(logs[0], logs[1]);
}

TEST(ServingEngineTest, EvictionRespectsRequestPriority) {
  Rng rng(99);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(rng, 1, cfg);
  // 4-page pool of 4-token pages; two 4+8 sequences prefill into one page
  // each, then decode growth forces an eviction at the 8-token boundary.
  ServingEngine engine(model.sparse, PagedEngineConfig(4, 4, /*preempt=*/true));

  Request important = MakeTestRequest(rng, 0, 0, 4, 8, cfg.hidden);
  important.priority = 1;
  Request best_effort = MakeTestRequest(rng, 1, 0, 4, 8, cfg.hidden);
  ASSERT_TRUE(engine.Submit(important));
  ASSERT_TRUE(engine.Submit(best_effort));
  engine.RunUntilDrained(10000);

  ASSERT_EQ(engine.Status(0), RequestStatus::kFinished);
  ASSERT_EQ(engine.Status(1), RequestStatus::kFinished);
  const auto& log = engine.metrics().preemption_log();
  ASSERT_FALSE(log.empty());
  for (const auto& [victim, step] : log) {
    EXPECT_EQ(victim, 1) << "high-priority request evicted at step " << step;
  }
}

// ---- Engine: expert-parallel sharding ---------------------------------------

// Runs the shared workload on `cfg` and returns every request's outputs in
// submission order (all must finish).
std::vector<MatrixF> RunShardedWorkload(const TinyModel& model, EngineConfig cfg,
                                        int requests = 5) {
  Rng rng(101);  // identical workload for every caller
  ServingEngine engine(model.sparse, cfg);
  for (int64_t i = 0; i < requests; ++i) {
    EXPECT_TRUE(engine.Submit(MakeTestRequest(rng, i, i / 2, 4 + i, 3, engine.hidden())));
  }
  engine.RunUntilDrained(1000);
  std::vector<MatrixF> outputs;
  for (int64_t i = 0; i < requests; ++i) {
    const RequestResult* result = engine.Result(i);
    EXPECT_NE(result, nullptr);
    if (result != nullptr) {
      EXPECT_EQ(result->status, RequestStatus::kFinished) << "request " << i;
      outputs.push_back(result->outputs);
    }
  }
  return outputs;
}

TEST(ShardedEngineTest, OutputsBitIdenticalAcrossShardThreadAndPlacement) {
  Rng seed_rng(103);
  MoeModelConfig cfg = TinyConfig();
  cfg.num_experts = 8;
  cfg.shared_experts = 1;
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);

  const std::vector<MatrixF> baseline = RunShardedWorkload(model, TinyEngineConfig(2));
  ASSERT_FALSE(baseline.empty());
  for (int shards : {1, 2, 4}) {
    for (int threads : {1, 2, 8}) {
      for (ShardPlacement placement : {ShardPlacement::kRoundRobin,
                                       ShardPlacement::kCapacityBalanced,
                                       ShardPlacement::kGateStats}) {
        EngineConfig engine_cfg = TinyEngineConfig(threads);
        engine_cfg.shards = shards;
        engine_cfg.placement = placement;
        const std::vector<MatrixF> outputs = RunShardedWorkload(model, engine_cfg);
        ASSERT_EQ(outputs.size(), baseline.size());
        for (size_t i = 0; i < outputs.size(); ++i) {
          EXPECT_TRUE(outputs[i] == baseline[i])
              << "shards=" << shards << " threads=" << threads
              << " placement=" << ShardPlacementName(placement) << " request " << i;
        }
      }
    }
  }
}

TEST(ShardedEngineTest, MetricsReportShardLoadAndAnalyticEstimate) {
  Rng seed_rng(105);
  MoeModelConfig cfg = TinyConfig();
  cfg.num_experts = 8;
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);

  EngineConfig engine_cfg = TinyEngineConfig(2);
  engine_cfg.shards = 4;
  ServingEngine engine(model.sparse, engine_cfg);
  Rng rng(106);
  int64_t total_rows = 0;
  for (int64_t i = 0; i < 4; ++i) {
    Request r = MakeTestRequest(rng, i, 0, 6, 4, cfg.hidden);
    total_rows += r.total_tokens();
    ASSERT_TRUE(engine.Submit(r));
  }
  engine.RunUntilDrained(1000);

  const ServingReport report = engine.Report();
  // Per-shard routed token counts cover every (token, expert, layer) visit.
  ASSERT_EQ(report.shard_tokens.size(), 4u);
  int64_t routed = 0;
  for (int64_t t : report.shard_tokens) {
    routed += t;
  }
  EXPECT_EQ(routed, total_rows * 2 /*top_k*/ * 2 /*layers*/);
  EXPECT_GE(report.shard_imbalance, 1.0);

  // The analytic estimate carries compute, all-to-all and KV-page terms.
  EXPECT_GT(report.est_compute_ms, 0.0);
  EXPECT_GT(report.est_alltoall_ms, 0.0);
  EXPECT_GT(report.est_alltoall_share, 0.0);
  EXPECT_LT(report.est_alltoall_share, 1.0);
  EXPECT_GT(report.alltoall_bytes, 0.0);
  EXPECT_GT(report.kv_traffic_bytes, 0.0);
  // Per-step breakdown is populated too.
  for (const StepMetrics& s : engine.metrics().steps()) {
    EXPECT_GT(s.est_compute_ms, 0.0);
    EXPECT_GT(s.kv_write_bytes, 0.0);
    EXPECT_DOUBLE_EQ(s.est_total_ms(), s.est_compute_ms + s.est_alltoall_ms);
  }

  // Single-shard run: no interconnect terms, but compute + KV still charged.
  ServingEngine single(model.sparse, TinyEngineConfig(2));
  Rng rng2(106);
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(single.Submit(MakeTestRequest(rng2, i, 0, 6, 4, cfg.hidden)));
  }
  single.RunUntilDrained(1000);
  const ServingReport single_report = single.Report();
  EXPECT_EQ(single_report.est_alltoall_ms, 0.0);
  EXPECT_EQ(single_report.alltoall_bytes, 0.0);
  EXPECT_GT(single_report.est_compute_ms, 0.0);
  EXPECT_GT(single_report.kv_traffic_bytes, 0.0);
}

TEST(ShardedEngineTest, AutotunedTileConfigFeedsTheAnalyticEstimate) {
  Rng seed_rng(107);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 1, cfg);

  double est_by_mode[2] = {0.0, 0.0};
  for (const bool autotune : {false, true}) {
    EngineConfig engine_cfg = TinyEngineConfig(1);
    engine_cfg.autotune = autotune;
    ServingEngine engine(model.sparse, engine_cfg);
    Rng rng(108);
    for (int64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, i, 0, 8, 4, cfg.hidden)));
    }
    engine.RunUntilDrained(1000);
    est_by_mode[autotune ? 1 : 0] = engine.Report().est_compute_ms;
  }
  // The tuned tile config is what the estimate runs with: since the default
  // configuration is part of the autotuner's candidate set, the tuned
  // estimate can never be slower than the default-config estimate.
  EXPECT_GT(est_by_mode[0], 0.0);
  EXPECT_GT(est_by_mode[1], 0.0);
  EXPECT_LE(est_by_mode[1], est_by_mode[0] * (1.0 + 1e-9));
}

// ---- Engine: prefix sharing + swap preemption -------------------------------

// Multi-tenant workload with a genuinely shared prompt prefix: every tenant's
// first `shared_rows` input rows are bit-copies of tenant 0's.
std::vector<Request> SharedPrefixWorkload(Rng& rng, int64_t hidden, int64_t tenants,
                                          int64_t shared_rows, int64_t prompt,
                                          int64_t decode, int64_t arrival_gap) {
  std::vector<Request> requests;
  for (int64_t i = 0; i < tenants; ++i) {
    Request r = MakeTestRequest(rng, i, i * arrival_gap, prompt, decode, hidden);
    for (int64_t row = 0; i > 0 && row < shared_rows; ++row) {
      for (int64_t c = 0; c < hidden; ++c) {
        r.inputs(row, c) = requests[0].inputs(row, c);
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

// Runs `requests` through an engine built from `cfg` and returns the outputs
// in submission order, asserting every request finished.
std::vector<MatrixF> RunToOutputs(const TinyModel& model, const EngineConfig& cfg,
                                  const std::vector<Request>& requests,
                                  ServingReport* report = nullptr) {
  ServingEngine engine(model.sparse, cfg);
  for (const Request& r : requests) {
    EXPECT_TRUE(engine.Submit(r));
  }
  engine.RunUntilDrained(10000);
  std::vector<MatrixF> outputs;
  for (const Request& r : requests) {
    const RequestResult* result = engine.Result(r.id);
    EXPECT_NE(result, nullptr);
    if (result != nullptr) {
      EXPECT_EQ(result->status, RequestStatus::kFinished) << "request " << r.id;
      outputs.push_back(result->outputs);
    }
  }
  if (report != nullptr) {
    *report = engine.Report();
  }
  return outputs;
}

TEST(PrefixCacheEngineTest, SharingIsBitIdenticalAcrossChunkShardsAndThreads) {
  Rng seed_rng(121);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, /*layers=*/2, cfg);
  Rng req_rng(122);
  // Tenants arrive far enough apart that earlier sessions have donated their
  // prefixes by the time later ones are admitted.
  const std::vector<Request> requests =
      SharedPrefixWorkload(req_rng, cfg.hidden, /*tenants=*/4, /*shared_rows=*/6,
                           /*prompt=*/8, /*decode=*/3, /*arrival_gap=*/8);

  for (const int64_t chunk : {int64_t{0}, int64_t{1}, int64_t{8}}) {
    for (const int shards : {1, 2}) {
      for (const int threads : {1, 8}) {
        EngineConfig engine_cfg = TinyEngineConfig(threads);
        engine_cfg.shards = shards;
        engine_cfg.scheduler.chunk_tokens = chunk;
        engine_cfg.scheduler.page_tokens = 4;
        engine_cfg.scheduler.max_pages = 64;
        const std::vector<MatrixF> baseline = RunToOutputs(model, engine_cfg, requests);

        engine_cfg.prefix_cache = true;
        ServingReport report;
        const std::vector<MatrixF> shared = RunToOutputs(model, engine_cfg, requests, &report);
        ASSERT_EQ(shared.size(), baseline.size());
        for (size_t i = 0; i < shared.size(); ++i) {
          EXPECT_TRUE(shared[i] == baseline[i])
              << "chunk=" << chunk << " shards=" << shards << " threads=" << threads
              << " request " << i;
        }
        // Sharing really engaged: later tenants reused the common prefix, the
        // partial shared tail page split on divergence, pages were co-mapped.
        EXPECT_GT(report.prefix_hit_tokens, 0)
            << "chunk=" << chunk << " shards=" << shards << " threads=" << threads;
        EXPECT_GT(report.prefix_hit_requests, 0);
        EXPECT_GT(report.prefix_hit_rate, 0.0);
        EXPECT_GT(report.cow_splits, 0);
        EXPECT_GT(report.peak_shared_pages, 0);
      }
    }
  }
}

TEST(PrefixCacheEngineTest, SharingStaysBitIdenticalUnderPreemption) {
  Rng seed_rng(123);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);
  Rng req_rng(124);
  // Four 8+8 tenants with a shared 6-row prefix against 32 KV slots: decode
  // growth forces evictions while prefixes are being shared and re-matched.
  const std::vector<Request> requests =
      SharedPrefixWorkload(req_rng, cfg.hidden, 4, /*shared_rows=*/6, /*prompt=*/8,
                           /*decode=*/8, /*arrival_gap=*/1);

  EngineConfig engine_cfg = PagedEngineConfig(/*page_tokens=*/4, /*max_pages=*/8,
                                              /*preempt=*/true);
  engine_cfg.scheduler.token_budget = 40;
  ServingReport baseline_report;
  const std::vector<MatrixF> baseline =
      RunToOutputs(model, engine_cfg, requests, &baseline_report);
  EXPECT_GT(baseline_report.preemptions, 0);

  engine_cfg.prefix_cache = true;
  ServingReport report;
  const std::vector<MatrixF> shared = RunToOutputs(model, engine_cfg, requests, &report);
  ASSERT_EQ(shared.size(), baseline.size());
  for (size_t i = 0; i < shared.size(); ++i) {
    EXPECT_TRUE(shared[i] == baseline[i]) << "request " << i;
  }
  // Preempted victims donate their prefix and re-match it on readmission, so
  // eviction pressure itself produces hits.
  EXPECT_GT(report.prefix_hit_tokens, 0);
}

TEST(PrefixCacheEngineTest, FullPrefixHitSkipsPrefillAndImprovesTtft) {
  Rng seed_rng(125);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 1, cfg);

  EngineConfig engine_cfg = TinyEngineConfig(2);
  engine_cfg.scheduler.chunk_tokens = 8;  // 20-row prompt prefills in 3 chunks
  engine_cfg.scheduler.page_tokens = 4;
  engine_cfg.scheduler.max_pages = 64;
  engine_cfg.prefix_cache = true;
  ServingEngine engine(model.sparse, engine_cfg);

  Rng rng(126);
  const Request a = MakeTestRequest(rng, 0, /*arrival=*/0, /*prompt=*/20, /*decode=*/3,
                                    cfg.hidden);
  Request b = MakeTestRequest(rng, 1, /*arrival=*/40, 20, 3, cfg.hidden);
  for (int64_t row = 0; row < a.prompt_len; ++row) {  // identical prompt, own decode
    for (int64_t c = 0; c < cfg.hidden; ++c) {
      b.inputs(row, c) = a.inputs(row, c);
    }
  }
  ASSERT_TRUE(engine.Submit(a));
  ASSERT_TRUE(engine.Submit(b));
  engine.RunUntilDrained(10000);

  ASSERT_EQ(engine.Status(0), RequestStatus::kFinished);
  ASSERT_EQ(engine.Status(1), RequestStatus::kFinished);
  const RequestMetrics ma = engine.metrics().requests().at(0);
  const RequestMetrics mb = engine.metrics().requests().at(1);
  EXPECT_EQ(ma.cached_prompt_tokens, 0);
  EXPECT_EQ(mb.cached_prompt_tokens, 20);  // the whole prompt came from the tree
  const int64_t ttft_a = ma.first_output_step - ma.arrival_step;
  const int64_t ttft_b = mb.first_output_step - mb.arrival_step;
  EXPECT_GE(ttft_a, 2);  // three chunks: at least two extra steps
  EXPECT_LT(ttft_b, ttft_a);
  EXPECT_EQ(engine.metrics().requests().at(1).prefill_chunks, 0);

  // The replayed prompt rows are bit-identical to the computed ones.
  const MatrixF& oa = engine.Result(0)->outputs;
  const MatrixF& ob = engine.Result(1)->outputs;
  for (int64_t r = 0; r < a.prompt_len; ++r) {
    for (int64_t c = 0; c < cfg.hidden; ++c) {
      ASSERT_EQ(oa(r, c), ob(r, c)) << "row " << r;
    }
  }
}

TEST(PrefixCacheEngineTest, ExpertChoiceRoutingSuppressesTheCache) {
  // Expert-choice routing is batch-composition-dependent, so replaying cached
  // rows would not be bit-lossless; the engine must silently decline.
  Rng seed_rng(127);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 1, cfg);
  EngineConfig engine_cfg = TinyEngineConfig(2);
  engine_cfg.prefix_cache = true;
  engine_cfg.routing = RoutingAlgo::kExpertChoice;
  ServingEngine engine(model.sparse, engine_cfg);
  EXPECT_EQ(engine.prefix_cache(), nullptr);

  Rng rng(128);
  ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, 0, 0, 6, 2, cfg.hidden)));
  engine.RunUntilDrained(1000);
  EXPECT_EQ(engine.Status(0), RequestStatus::kFinished);
  EXPECT_EQ(engine.Report().prefix_hit_tokens, 0);
  EXPECT_FALSE(engine.Report().provenance.prefix_cache);
}

TEST(SwapPreemptionEngineTest, SwapMatchesRecomputeBitExactly) {
  Rng seed_rng(131);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, /*layers=*/2, cfg);
  Rng req_rng(132);
  std::vector<Request> requests;
  for (int64_t i = 0; i < 4; ++i) {
    requests.push_back(MakeTestRequest(req_rng, i, 0, /*prompt=*/8, /*decode=*/8,
                                       cfg.hidden));
  }

  EngineConfig engine_cfg = PagedEngineConfig(/*page_tokens=*/4, /*max_pages=*/8,
                                              /*preempt=*/true);
  engine_cfg.scheduler.token_budget = 40;
  ServingReport recompute_report;
  const std::vector<MatrixF> recompute =
      RunToOutputs(model, engine_cfg, requests, &recompute_report);
  EXPECT_GT(recompute_report.preemptions, 0);
  EXPECT_EQ(recompute_report.swap_outs, 0);

  engine_cfg.swap = true;
  engine_cfg.host_pages = 64;
  ServingReport swap_report;
  const std::vector<MatrixF> swapped =
      RunToOutputs(model, engine_cfg, requests, &swap_report);
  ASSERT_EQ(swapped.size(), recompute.size());
  for (size_t i = 0; i < swapped.size(); ++i) {
    EXPECT_TRUE(swapped[i] == recompute[i]) << "request " << i;
  }
  // Victims really took the host-tier path, and the modeled transfer cost is
  // tied to the bytes that moved.
  EXPECT_GT(swap_report.preemptions, 0);
  EXPECT_GT(swap_report.swap_outs, 0);
  EXPECT_EQ(swap_report.swap_ins, swap_report.swap_outs);  // all drained back
  EXPECT_GT(swap_report.swap_out_bytes, 0.0);
  EXPECT_EQ(swap_report.swap_out_bytes, swap_report.swap_in_bytes);
  EXPECT_GT(swap_report.est_swap_ms, 0.0);
  EXPECT_TRUE(swap_report.provenance.swap);

  // A swapped victim's resume costs no recomputed prefill rows, so the swap
  // run prefills strictly less than the recompute run.
  EXPECT_LT(swap_report.prefill_rows, recompute_report.prefill_rows);
}

TEST(SwapPreemptionEngineTest, CappedHostTierFallsBackToRecompute) {
  Rng seed_rng(133);
  const MoeModelConfig cfg = TinyConfig();
  const TinyModel model = BuildTinyModel(seed_rng, 2, cfg);
  Rng req_rng(134);
  std::vector<Request> requests;
  for (int64_t i = 0; i < 4; ++i) {
    requests.push_back(MakeTestRequest(req_rng, i, 0, 8, 8, cfg.hidden));
  }
  EngineConfig engine_cfg = PagedEngineConfig(4, 8, /*preempt=*/true);
  engine_cfg.scheduler.token_budget = 40;
  engine_cfg.swap = true;
  engine_cfg.host_pages = 1;  // one 4-token page: no 8+ token victim ever fits

  ServingReport report;
  const std::vector<MatrixF> outputs = RunToOutputs(model, engine_cfg, requests, &report);
  ASSERT_EQ(outputs.size(), requests.size());
  EXPECT_GT(report.preemptions, 0);
  EXPECT_EQ(report.swap_outs, 0);  // every eviction fell back to recompute
  EXPECT_EQ(report.peak_host_pages, 0);
}

// ---- Engine: expert-choice routing ------------------------------------------

TEST(ExpertChoiceServingTest, SkewedTraceBalancesExpertsAndTailLatency) {
  // Physically skewed router: expert 0's gate row massively amplified, so
  // top-k routing piles tokens onto it while expert choice (experts pick
  // tokens, fixed capacity) stays perfectly balanced per layer.
  Rng seed_rng(109);
  MoeModelConfig cfg = TinyConfig();
  cfg.num_experts = 4;
  TinyModel model = BuildTinyModel(seed_rng, 1, cfg);
  for (auto& layer : model.sparse) {
    for (int64_t c = 0; c < layer.moe.router_gate.cols(); ++c) {
      layer.moe.router_gate(0, c) *= 8.0f;
    }
  }

  ServingReport reports[2];
  for (const RoutingAlgo routing : {RoutingAlgo::kTopK, RoutingAlgo::kExpertChoice}) {
    EngineConfig engine_cfg = TinyEngineConfig(2);
    engine_cfg.routing = routing;
    engine_cfg.shards = 2;
    ServingEngine engine(model.sparse, engine_cfg);
    Rng rng(110);  // identical skewed workload per mode
    for (int64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(engine.Submit(MakeTestRequest(rng, i, i / 3, 5 + (i % 3), 4, cfg.hidden)));
    }
    engine.RunUntilDrained(1000);
    for (int64_t i = 0; i < 6; ++i) {
      ASSERT_EQ(engine.Status(i), RequestStatus::kFinished)
          << RoutingAlgoName(routing) << " request " << i;
    }
    reports[routing == RoutingAlgo::kExpertChoice ? 1 : 0] = engine.Report();
  }
  const ServingReport& topk = reports[0];
  const ServingReport& expert_choice = reports[1];

  // Expert choice guarantees exact per-layer balance; the skewed top-k run
  // must show real imbalance for the comparison to mean anything.
  EXPECT_GT(topk.expert_imbalance, 1.05);
  EXPECT_NEAR(expert_choice.expert_imbalance, 1.0, 1e-9);
  // ...and the balance carries through to the simulated devices.
  EXPECT_LT(expert_choice.shard_imbalance, topk.shard_imbalance);

  // Tail latency: scheduling is routing-independent in steps, so the
  // deterministic wall-clock comparison is the analytic cluster estimate —
  // balanced experts can only shrink the max-over-shards term (at miniature
  // tile-quantized shapes the two may tie, never invert).
  EXPECT_LE(expert_choice.p95_turnaround_steps, topk.p95_turnaround_steps);
  EXPECT_LE(expert_choice.est_compute_ms, topk.est_compute_ms * (1.0 + 1e-9));
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
