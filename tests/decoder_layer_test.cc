// Functional decoder layer / stack: RMSNorm properties, layer equivalence
// between the dense-masked reference and the Samoyeds dual-side path, and
// multi-layer stacking.

#include <cmath>

#include <gtest/gtest.h>

#include "src/moe/decoder_layer.h"
#include "src/tensor/gemm_ref.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

MoeModelConfig TinyConfig() {
  MoeModelConfig cfg;
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  return cfg;
}

TEST(RmsNormTest, UnitGammaNormalizesRms) {
  Rng rng(901);
  const MatrixF x = rng.GaussianMatrix(8, 16, 3.0f);
  const std::vector<float> gamma(16, 1.0f);
  const MatrixF y = RmsNorm(x, gamma);
  for (int64_t r = 0; r < y.rows(); ++r) {
    double sum_sq = 0.0;
    for (int64_t c = 0; c < y.cols(); ++c) {
      sum_sq += static_cast<double>(y(r, c)) * y(r, c);
    }
    EXPECT_NEAR(std::sqrt(sum_sq / 16.0), 1.0, 1e-3);
  }
}

TEST(RmsNormTest, GammaScalesPerChannel) {
  Rng rng(902);
  const MatrixF x = rng.GaussianMatrix(4, 8);
  std::vector<float> gamma(8, 1.0f);
  gamma[3] = 2.0f;
  const MatrixF y1 = RmsNorm(x, std::vector<float>(8, 1.0f));
  const MatrixF y2 = RmsNorm(x, gamma);
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(y2(r, 3), 2.0f * y1(r, 3), 1e-5f);
    EXPECT_NEAR(y2(r, 0), y1(r, 0), 1e-6f);
  }
}

TEST(RmsNormTest, ScaleInvariance) {
  // RMSNorm(a*x) == RMSNorm(x) for a > 0 (up to eps effects).
  Rng rng(903);
  MatrixF x = rng.GaussianMatrix(4, 16);
  const std::vector<float> gamma(16, 1.0f);
  const MatrixF y = RmsNorm(x, gamma);
  for (auto& v : x.flat()) {
    v *= 8.0f;
  }
  const MatrixF y8 = RmsNorm(x, gamma);
  EXPECT_LE(MaxAbsDiff(y, y8), 1e-4f);
}

TEST(DecoderLayerTest, SamoyedsMatchesMaskedReference) {
  const MoeModelConfig cfg = TinyConfig();
  const SamoyedsConfig fmt{1, 2, 32};
  Rng rng(904);
  DecoderLayerWeights w = DecoderLayerWeights::Random(rng, cfg);
  const SamoyedsDecoderLayerWeights sw = SamoyedsDecoderLayerWeights::Encode(w, fmt);
  w.moe.ApplyMask(fmt);

  const MatrixF x = RandomBf16Matrix(rng, 16, cfg.hidden, 0.5f);
  const MatrixF ref = DecoderLayerForwardReference(x, w, 4, cfg.top_k, Activation::kSilu);
  const MatrixF got = DecoderLayerForwardSamoyeds(x, sw, 4, cfg.top_k, Activation::kSilu);
  ASSERT_EQ(got.rows(), 16);
  ASSERT_EQ(got.cols(), cfg.hidden);
  EXPECT_LT(RelativeError(got, ref), 2e-2);
}

TEST(DecoderLayerTest, ResidualPathPreservesInputScale) {
  // The layer output must contain the residual: zeroing the input must
  // change the output (no accidental pass-through of zeros only).
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(905);
  const DecoderLayerWeights w = DecoderLayerWeights::Random(rng, cfg);
  const MatrixF x = RandomBf16Matrix(rng, 8, cfg.hidden, 0.5f);
  const MatrixF y = DecoderLayerForwardReference(x, w, 4, cfg.top_k, Activation::kSilu);
  // Residual: output correlates with input strongly.
  double dot = 0.0;
  double nx = 0.0;
  double ny = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    dot += static_cast<double>(x.flat()[static_cast<size_t>(i)]) *
           y.flat()[static_cast<size_t>(i)];
    nx += static_cast<double>(x.flat()[static_cast<size_t>(i)]) *
          x.flat()[static_cast<size_t>(i)];
    ny += static_cast<double>(y.flat()[static_cast<size_t>(i)]) *
          y.flat()[static_cast<size_t>(i)];
  }
  EXPECT_GT(dot / std::sqrt(nx * ny), 0.1);
}

TEST(DecoderLayerTest, CausalityHoldsThroughTheFullLayer) {
  const MoeModelConfig cfg = TinyConfig();
  Rng rng(906);
  const DecoderLayerWeights w = DecoderLayerWeights::Random(rng, cfg);
  MatrixF x = RandomBf16Matrix(rng, 10, cfg.hidden, 0.5f);
  const MatrixF y = DecoderLayerForwardReference(x, w, 4, cfg.top_k, Activation::kSilu);
  x(9, 0) += 4.0f;  // perturb the last token
  const MatrixF y2 = DecoderLayerForwardReference(x, w, 4, cfg.top_k, Activation::kSilu);
  for (int64_t c = 0; c < cfg.hidden; ++c) {
    EXPECT_FLOAT_EQ(y(0, c), y2(0, c));
    EXPECT_FLOAT_EQ(y(5, c), y2(5, c));
  }
  EXPECT_GT(MaxAbsDiff(y, y2), 1e-4f);
}

TEST(DecoderStackTest, TwoLayerStackMatches) {
  const MoeModelConfig cfg = TinyConfig();
  const SamoyedsConfig fmt{1, 2, 32};
  Rng rng(907);
  std::vector<DecoderLayerWeights> layers;
  std::vector<SamoyedsDecoderLayerWeights> sparse_layers;
  for (int l = 0; l < 2; ++l) {
    DecoderLayerWeights w = DecoderLayerWeights::Random(rng, cfg);
    sparse_layers.push_back(SamoyedsDecoderLayerWeights::Encode(w, fmt));
    w.moe.ApplyMask(fmt);
    layers.push_back(std::move(w));
  }
  const MatrixF x = RandomBf16Matrix(rng, 12, cfg.hidden, 0.5f);
  const MatrixF ref = DecoderStackForwardReference(x, layers, 4, cfg.top_k, Activation::kSilu);
  const MatrixF got =
      DecoderStackForwardSamoyeds(x, sparse_layers, 4, cfg.top_k, Activation::kSilu);
  // Discrete routing could amplify tiny numeric differences across layers;
  // with well-separated router logits it stays small.
  EXPECT_LT(RelativeError(got, ref), 5e-2);
}

}  // namespace
}  // namespace samoyeds
