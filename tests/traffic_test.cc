// Coverage for the TrafficReport combination semantics and remaining
// simulator corners: phase addition, launch-shape blending, metadata word
// counts, and profile composition used by the framework layer costs.

#include <gtest/gtest.h>

#include "src/formats/metadata_layout.h"
#include "src/kernels/dense_gemm.h"
#include "src/simgpu/timing_model.h"
#include "src/simgpu/traffic.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace {

TrafficReport SimpleReport(double bytes, double flops, int warps, int stages) {
  TrafficReport t;
  t.gmem_read_bytes = bytes;
  t.gmem_unique_bytes = bytes;
  t.mma_flops = flops;
  t.thread_blocks = 1024;
  t.warps_per_block = warps;
  t.pipeline_stages = stages;
  return t;
}

TEST(TrafficCombineTest, BytesAndFlopsAdd) {
  TrafficReport a = SimpleReport(1e9, 1e12, 8, 3);
  const TrafficReport b = SimpleReport(2e9, 3e12, 8, 3);
  a += b;
  EXPECT_DOUBLE_EQ(a.gmem_read_bytes, 3e9);
  EXPECT_DOUBLE_EQ(a.mma_flops, 4e12);
  EXPECT_EQ(a.thread_blocks, 2048);
}

TEST(TrafficCombineTest, LaunchShapeBlendsTowardHeavierPhase) {
  TrafficReport light = SimpleReport(1e6, 1e9, 4, 1);
  const TrafficReport heavy = SimpleReport(1e10, 1e13, 8, 3);
  light += heavy;
  // The combined launch shape must be dominated by the heavy phase.
  EXPECT_EQ(light.warps_per_block, 8);
  EXPECT_EQ(light.pipeline_stages, 3);
}

TEST(TrafficCombineTest, SparseAluFlagSticks) {
  TrafficReport a = SimpleReport(1e6, 1e9, 4, 1);
  TrafficReport b = SimpleReport(1e6, 1e9, 4, 1);
  b.uses_sparse_alu = true;
  a += b;
  EXPECT_TRUE(a.uses_sparse_alu);
}

TEST(TrafficCombineTest, OverheadAccumulates) {
  TrafficReport a = SimpleReport(1e6, 1e9, 4, 1);
  a.fixed_overhead_us = 5.0;
  TrafficReport b = a;
  a += b;
  EXPECT_DOUBLE_EQ(a.fixed_overhead_us, 10.0);
}

TEST(TrafficCombineTest, PlusOperatorEquivalent) {
  const TrafficReport a = SimpleReport(1e9, 1e12, 8, 3);
  const TrafficReport b = SimpleReport(5e8, 2e12, 8, 3);
  TrafficReport c = a;
  c += b;
  const TrafficReport d = a + b;
  EXPECT_DOUBLE_EQ(c.gmem_read_bytes, d.gmem_read_bytes);
  EXPECT_DOUBLE_EQ(c.mma_flops, d.mma_flops);
}

TEST(TrafficCombineTest, CombinedEstimateBetweenSequentialAndParallel) {
  // Estimating the sum of two phases must never be slower than estimating
  // them sequentially (the combined launch exposes at least as much
  // parallelism).
  const TimingModel model(DefaultDevice());
  const TrafficReport a = SimpleReport(4e9, 5e12, 8, 3);
  const TrafficReport b = SimpleReport(1e9, 2e13, 8, 3);
  const double separate = model.Estimate(a).total_ms + model.Estimate(b).total_ms;
  const double combined = model.Estimate(a + b).total_ms;
  EXPECT_LE(combined, separate * 1.01);
}

// ------------------------------------------------------- metadata words

TEST(MetadataWordsTest, WordCountMatchesPaddedTiles) {
  Rng rng(1001);
  Matrix<uint8_t> meta(20, 40);  // pads to 32 x 48
  for (auto& v : meta.flat()) {
    v = static_cast<uint8_t>(rng.NextBounded(4));
  }
  const auto words = PackMetadata(meta, true);
  EXPECT_EQ(words.size(), static_cast<size_t>(32 * 48 / 16));
}

TEST(MetadataWordsTest, ZeroMatrixPacksToZeroWords) {
  const Matrix<uint8_t> meta(16, 16);
  for (uint32_t w : PackMetadata(meta, true)) {
    EXPECT_EQ(w, 0u);
  }
}

TEST(MetadataWordsTest, SingleEntryLandsInPredictedWord) {
  Matrix<uint8_t> meta(16, 16);
  meta(3, 5) = 3;
  const auto [dr, dc] = MetadataDeviceLocation(3, 5);
  const auto words = PackMetadata(meta, true);
  const int64_t linear = dr * 16 + dc;
  EXPECT_EQ((words[static_cast<size_t>(linear / 16)] >> (linear % 16 * 2)) & 0x3u, 3u);
}

// ---------------------------------------------------- profile composition

TEST(ProfileCompositionTest, FourProjectionsCostFourTimesOne) {
  const GemmShape shape{2048, 2048, 2048};
  KernelProfile one = DenseGemmKernel::Analyze(shape);
  TrafficReport four = one.traffic;
  for (int i = 0; i < 3; ++i) {
    TrafficReport t = one.traffic;
    t.fixed_overhead_us = 0.0;
    four += t;
  }
  const TimingModel model(DefaultDevice());
  const double t1 = model.Estimate(one.traffic).total_ms;
  const double t4 = model.Estimate(four).total_ms;
  // Large grids: 4x the work at the same shape is ~4x the time.
  EXPECT_NEAR(t4 / t1, 4.0, 0.5);
}

}  // namespace
}  // namespace samoyeds
