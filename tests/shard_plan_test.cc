// Expert-parallel sharding layer: placement strategies (round-robin,
// capacity-balanced, gate-statistics-aware LPT), token home-range
// partitioning, all-to-all traffic accounting (crossing-shard pairs only),
// the interconnect roofline, and the routing-plan shard buckets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/moe/router.h"
#include "src/serving/shard_plan.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace serving {
namespace {

// All tokens to expert `hot` (unit weights); used to pin traffic shapes.
RoutingPlan SingleExpertPlan(int64_t tokens, int num_experts, int hot) {
  RoutingPlan plan;
  plan.num_experts = num_experts;
  plan.top_k = 1;
  plan.tokens = tokens;
  plan.expert_tokens.resize(static_cast<size_t>(num_experts));
  plan.token_assignments.resize(static_cast<size_t>(tokens));
  for (int64_t t = 0; t < tokens; ++t) {
    plan.expert_tokens[static_cast<size_t>(hot)].push_back(static_cast<int32_t>(t));
    plan.token_assignments[static_cast<size_t>(t)].emplace_back(hot, 1.0f);
  }
  return plan;
}

double MaxShardLoad(const ExpertShardPlan& plan, const std::vector<double>& loads) {
  double max_load = 0.0;
  for (int s = 0; s < plan.num_shards(); ++s) {
    double load = 0.0;
    for (int e : plan.experts_on(s)) {
      load += loads[static_cast<size_t>(e)];
    }
    max_load = std::max(max_load, load);
  }
  return max_load;
}

// ---- Placement strategies ---------------------------------------------------

TEST(ExpertShardPlanTest, RoundRobinCyclesAndIsValid) {
  const ExpertShardPlan plan = ExpertShardPlan::RoundRobin(10, 4);
  ASSERT_TRUE(plan.IsValid());
  EXPECT_EQ(plan.num_shards(), 4);
  EXPECT_EQ(plan.num_experts(), 10);
  for (int e = 0; e < 10; ++e) {
    EXPECT_EQ(plan.shard_of(e), e % 4);
  }
  // 10 experts over 4 shards: shards 0/1 get 3, shards 2/3 get 2.
  EXPECT_EQ(plan.experts_on(0), (std::vector<int>{0, 4, 8}));
  EXPECT_EQ(plan.experts_on(3), (std::vector<int>{3, 7}));
}

TEST(ExpertShardPlanTest, MoreShardsThanExpertsLeavesEmptyShards) {
  const ExpertShardPlan plan = ExpertShardPlan::RoundRobin(2, 4);
  ASSERT_TRUE(plan.IsValid());
  EXPECT_TRUE(plan.experts_on(2).empty());
  EXPECT_TRUE(plan.experts_on(3).empty());
}

TEST(ExpertShardPlanTest, CapacityBalancedSeparatesHeavyExperts) {
  // Two huge experts among six small ones: round-robin (ids 0 and 1 land on
  // shards 0 and 1) happens to split them here, so craft the adversarial
  // layout — both heavies on the same round-robin shard.
  const std::vector<int64_t> bytes = {1000, 10, 990, 10, 10, 10, 10, 10};
  const ExpertShardPlan plan = ExpertShardPlan::CapacityBalanced(bytes, 2);
  ASSERT_TRUE(plan.IsValid());
  EXPECT_NE(plan.shard_of(0), plan.shard_of(2)) << "heaviest experts must not share a shard";

  std::vector<double> loads(bytes.begin(), bytes.end());
  // LPT is within 4/3 of the optimal max load; optimal here is ~1030.
  EXPECT_LE(MaxShardLoad(plan, loads), 4.0 / 3.0 * 1030.0);
}

TEST(ExpertShardPlanTest, FromLoadsBeatsRoundRobinOnSkewedLoads) {
  // Zipf-ish loads where round-robin stacks the two heaviest on shard 0
  // (ids 0 and 4 with 4 shards... use 2 shards: ids 0,2,4,6 together).
  const std::vector<double> loads = {100.0, 1.0, 80.0, 1.0, 60.0, 1.0, 40.0, 1.0};
  const ExpertShardPlan lpt = ExpertShardPlan::FromLoads(loads, 2);
  const ExpertShardPlan rr = ExpertShardPlan::RoundRobin(8, 2);
  ASSERT_TRUE(lpt.IsValid());
  EXPECT_LT(MaxShardLoad(lpt, loads), MaxShardLoad(rr, loads));
  // Deterministic: same inputs, same plan.
  EXPECT_EQ(ExpertShardPlan::FromLoads(loads, 2).shard_of_expert(), lpt.shard_of_expert());
}

TEST(ExpertShardPlanTest, GateStatsSpreadsRouterFavoredExperts) {
  // Router gate with two high-gain rows (0 and 1): gate-stats placement must
  // put them on different shards; 2 shards, 4 experts.
  Rng rng(17);
  MatrixF gate = rng.GaussianMatrix(4, 32);
  for (int64_t c = 0; c < gate.cols(); ++c) {
    gate(0, c) *= 10.0f;
    gate(1, c) *= 8.0f;
  }
  const ExpertShardPlan plan = ExpertShardPlan::GateStatsAware(gate, 2);
  ASSERT_TRUE(plan.IsValid());
  EXPECT_NE(plan.shard_of(0), plan.shard_of(1));
}

// ---- Token home ranges ------------------------------------------------------

TEST(TokenHomeTest, RangesPartitionTokensEvenly) {
  const std::vector<std::pair<int64_t, int>> cases = {{10, 4}, {7, 3}, {4, 4}, {3, 4}, {128, 1}};
  for (const auto& [tokens, shards] : cases) {
    std::vector<int> home;
    FillTokenHomeShards(tokens, shards, home);
    ASSERT_EQ(static_cast<int64_t>(home.size()), tokens);
    // Home ids are nondecreasing and agree with the advertised ranges.
    for (int s = 0; s < shards; ++s) {
      const int64_t begin = ShardHomeBegin(s, tokens, shards);
      const int64_t end = ShardHomeBegin(s + 1, tokens, shards);
      EXPECT_LE(end - begin, tokens / shards + 1);
      for (int64_t t = begin; t < end; ++t) {
        EXPECT_EQ(home[static_cast<size_t>(t)], s);
      }
    }
    EXPECT_EQ(ShardHomeBegin(shards, tokens, shards), tokens);
  }
}

// ---- All-to-all traffic -----------------------------------------------------

TEST(AllToAllTrafficTest, SingleShardIsFree) {
  const RoutingPlan plan = SingleExpertPlan(32, 4, /*hot=*/2);
  const ExpertShardPlan placement = ExpertShardPlan::RoundRobin(4, 1);
  const AllToAllTraffic t = ComputeAllToAllTraffic(plan, placement, /*hidden=*/64);
  EXPECT_EQ(t.dispatch_bytes, 0.0);
  EXPECT_EQ(t.combine_bytes, 0.0);
  EXPECT_EQ(t.max_shard_dispatch_bytes, 0.0);
}

TEST(AllToAllTrafficTest, ChargesCrossingPairsOnly) {
  // 4 tokens over 2 shards: homes are {0, 0, 1, 1}. Expert 0 lives on shard
  // 0 (round-robin) and receives every token, so exactly tokens 2 and 3
  // cross: 2 rows of hidden x bf16 each way.
  const int64_t hidden = 64;
  const RoutingPlan plan = SingleExpertPlan(4, 2, /*hot=*/0);
  const ExpertShardPlan placement = ExpertShardPlan::RoundRobin(2, 2);
  const AllToAllTraffic t = ComputeAllToAllTraffic(plan, placement, hidden);
  const double row_bytes = static_cast<double>(hidden) * 2.0;
  EXPECT_DOUBLE_EQ(t.dispatch_bytes, 2.0 * row_bytes);
  EXPECT_DOUBLE_EQ(t.combine_bytes, t.dispatch_bytes);
  // Shard 1 sends both rows, shard 0 receives both: the busiest link moves
  // both rows in one direction.
  EXPECT_DOUBLE_EQ(t.max_shard_dispatch_bytes, 2.0 * row_bytes);
  EXPECT_DOUBLE_EQ(t.max_shard_combine_bytes, t.max_shard_dispatch_bytes);
}

TEST(AllToAllTrafficTest, BalancedRoutingStillPaysForRemoteExperts) {
  // Every expert gets one token, experts round-robin over 2 shards, tokens
  // home-split in halves: expert e on shard e % 2, token e homed at e / 2.
  // Crossing pairs: (t0,e0): home 0, shard 0 — free. (t1,e1): home 0, shard
  // 1 — crosses. (t2,e2): home 1, shard 0 — crosses. (t3,e3): home 1,
  // shard 1 — free.
  RoutingPlan plan;
  plan.num_experts = 4;
  plan.top_k = 1;
  plan.tokens = 4;
  plan.expert_tokens = {{0}, {1}, {2}, {3}};
  plan.token_assignments.resize(4);
  for (int t = 0; t < 4; ++t) {
    plan.token_assignments[static_cast<size_t>(t)].emplace_back(t, 1.0f);
  }
  const ExpertShardPlan placement = ExpertShardPlan::RoundRobin(4, 2);
  const AllToAllTraffic t = ComputeAllToAllTraffic(plan, placement, /*hidden=*/32);
  const double row_bytes = 32.0 * 2.0;
  EXPECT_DOUBLE_EQ(t.dispatch_bytes, 2.0 * row_bytes);
  // Each shard sends one row and receives one: per-link volume is one row.
  EXPECT_DOUBLE_EQ(t.max_shard_dispatch_bytes, row_bytes);
}

// ---- Routing-plan shard buckets ---------------------------------------------

TEST(RoutingPlanBucketsTest, TokensPerBucketMatchesManualCount) {
  Rng rng(23);
  const RoutingPlan plan = MakeSyntheticPlan(rng, /*tokens=*/64, /*num_experts=*/6,
                                             /*top_k=*/2, /*skew=*/1.5);
  const ExpertShardPlan placement = ExpertShardPlan::RoundRobin(6, 3);
  const std::vector<int64_t> buckets = plan.TokensPerBucket(placement.shard_of_expert(), 3);
  ASSERT_EQ(buckets.size(), 3u);
  int64_t total = 0;
  for (int s = 0; s < 3; ++s) {
    int64_t expected = 0;
    for (int e : placement.experts_on(s)) {
      expected += plan.TokensForExpert(e);
    }
    EXPECT_EQ(buckets[static_cast<size_t>(s)], expected);
    total += buckets[static_cast<size_t>(s)];
  }
  EXPECT_EQ(total, 64 * 2);

  // The accumulate form folds on top of existing counts.
  std::vector<int64_t> acc(3, 100);
  plan.AccumulateTokensPerBucket(placement.shard_of_expert(), acc);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(acc[static_cast<size_t>(s)], 100 + buckets[static_cast<size_t>(s)]);
  }
}

// ---- SimCluster + interconnect roofline -------------------------------------

TEST(SimClusterTest, HomogeneousReplicatesTheDevice) {
  const SimCluster cluster = SimCluster::Homogeneous(DefaultDevice(), 4);
  ASSERT_EQ(cluster.num_shards(), 4);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster.device(s).name, DefaultDevice().name);
    EXPECT_GT(cluster.device(s).link_bandwidth_gbps, 0.0);
  }
}

TEST(InterconnectRooflineTest, LatencyFloorAndBandwidthAsymptote) {
  DeviceSpec d = DefaultDevice();
  d.link_bandwidth_gbps = 100.0;
  d.link_latency_us = 4.0;
  const TimingModel model(d);
  EXPECT_EQ(model.InterconnectPhaseMs(0.0), 0.0);
  // Tiny transfer: latency-dominated.
  EXPECT_NEAR(model.InterconnectPhaseMs(64.0), 4e-3, 1e-4);
  // Large transfer: serialization-dominated. 100 MB at 100 GB/s = 1 ms.
  EXPECT_NEAR(model.InterconnectPhaseMs(1e8), 1.0 + 4e-3, 2e-2);
  // No interconnect -> no time, however large the volume.
  DeviceSpec isolated = d;
  isolated.link_bandwidth_gbps = 0.0;
  EXPECT_EQ(TimingModel(isolated).InterconnectPhaseMs(1e9), 0.0);
}

TEST(InterconnectRooflineTest, AllToAllMsUsesReportVolumes) {
  DeviceSpec d = DefaultDevice();
  d.link_bandwidth_gbps = 50.0;
  d.link_latency_us = 2.0;
  const TimingModel model(d);
  TrafficReport r;
  r.alltoall_dispatch_bytes = 4e8;  // spread over 4 shards: 1e8 per link
  r.alltoall_combine_bytes = 4e8;
  EXPECT_EQ(model.AllToAllMs(r, 1), 0.0);
  const double phase_ms = 2e-3 + 1e8 / (50.0 * 1e9) * 1e3;
  EXPECT_NEAR(model.AllToAllMs(r, 4), 2.0 * phase_ms, 1e-6);

  // The volumes survive report addition (step aggregation).
  TrafficReport sum = r + r;
  EXPECT_DOUBLE_EQ(sum.alltoall_dispatch_bytes, 8e8);
  EXPECT_DOUBLE_EQ(sum.alltoall_combine_bytes, 8e8);
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
