// Trace parsing and synthesis (src/serving/trace.cc): the file format's
// whole failure surface — malformed lines, wrong column counts, optional
// priority / pinned-id columns, whitespace and CRLF tolerance, duplicate
// ids — plus synthetic-trace shape properties and id assignment.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/serving/trace.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace serving {
namespace {

// Writes `content` to a fresh temp trace file and parses it.
std::vector<TraceEntry> Parse(const std::string& content, std::string* error) {
  static int counter = 0;
  const std::string path =
      ::testing::TempDir() + "/trace_test_" + std::to_string(counter++) + ".txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
  error->clear();
  return ParseTraceFile(path, error);
}

TEST(TraceTest, ParsesThreeToFiveColumnLines) {
  std::string error;
  const auto entries = Parse(
      "# step prompt decode [priority [id]]\n"
      "0 8 4\n"
      "2 16 8  # inline comment\n"
      "\n"
      "5 4 0\n"
      "6 4 2 3\n"
      "7 4 2 1 42\n",
      &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[1].arrival_step, 2);
  EXPECT_EQ(entries[1].prompt_len, 16);
  EXPECT_EQ(entries[2].max_new_tokens, 0);
  EXPECT_EQ(entries[2].priority, 0);  // omitted priority defaults to 0
  EXPECT_EQ(entries[2].id, -1);       // omitted id: assigned later
  EXPECT_EQ(entries[3].priority, 3);  // optional fourth column
  EXPECT_EQ(entries[4].priority, 1);
  EXPECT_EQ(entries[4].id, 42);       // optional fifth column pins the id
}

TEST(TraceTest, ToleratesWhitespaceAndCrlf) {
  std::string error;
  // Leading/trailing blanks, tabs between fields, and Windows line endings
  // must all parse — a trace copied through a DOS editor still replays.
  const auto entries = Parse("  0\t8  4 \r\n\t\n1 6 2 0 9\r\n   2  5   1\t\r\n", &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].prompt_len, 8);
  EXPECT_EQ(entries[1].id, 9);
  EXPECT_EQ(entries[2].arrival_step, 2);
  EXPECT_EQ(entries[2].max_new_tokens, 1);
}

TEST(TraceTest, RejectsMalformedLines) {
  std::string error;

  // Missing columns.
  EXPECT_TRUE(Parse("0 8\n", &error).empty());
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find(":1:"), std::string::npos) << error;

  // Garbage must be an error, not silently skipped as a comment.
  EXPECT_TRUE(Parse("0 8 4\nnot a line\n", &error).empty());
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;

  // Six fields (anything after the optional id) is an error.
  EXPECT_TRUE(Parse("0 8 4 1 9 7\n", &error).empty());
  EXPECT_FALSE(error.empty());

  // Non-numeric field in an otherwise plausible position.
  EXPECT_TRUE(Parse("0 eight 4\n", &error).empty());
  EXPECT_FALSE(error.empty());

  // Trailing junk glued to a number.
  EXPECT_TRUE(Parse("0 8 4x\n", &error).empty());
  EXPECT_FALSE(error.empty());

  // Domain violations: negative arrival, zero-length prompt, negative
  // decode, negative pinned id.
  EXPECT_TRUE(Parse("-1 8 4\n", &error).empty());
  EXPECT_TRUE(Parse("0 0 4\n", &error).empty());
  EXPECT_TRUE(Parse("0 8 -2\n", &error).empty());
  EXPECT_TRUE(Parse("0 8 4 0 -5\n", &error).empty());
  EXPECT_FALSE(error.empty());

  // Empty / comment-only files are an error, not an empty success.
  EXPECT_TRUE(Parse("# nothing here\n\n", &error).empty());
  EXPECT_NE(error.find("no requests"), std::string::npos) << error;

  // Unreadable path.
  error.clear();
  EXPECT_TRUE(ParseTraceFile("/nonexistent/trace.txt", &error).empty());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TraceTest, RejectsDuplicatePinnedIds) {
  std::string error;
  EXPECT_TRUE(Parse("0 8 4 0 7\n1 6 2 0 7\n", &error).empty());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;

  // Same id at different priorities is still a duplicate.
  EXPECT_TRUE(Parse("0 8 4 1 3\n0 8 4 2 3\n", &error).empty());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(TraceTest, AssignTraceIdsSkipsPinnedOnes) {
  std::string error;
  const auto entries = Parse("0 8 4\n1 6 2 0 1\n2 5 1\n3 5 1 0 0\n4 5 1\n", &error);
  ASSERT_EQ(entries.size(), 5u) << error;
  const std::vector<int64_t> ids = AssignTraceIds(entries);
  // Unpinned entries take the smallest unused ids (0 and 1 are pinned).
  EXPECT_EQ(ids, (std::vector<int64_t>{2, 1, 3, 0, 4}));

  // All-unpinned traces get sequential ids.
  const auto plain = Parse("0 8 4\n1 6 2\n", &error);
  EXPECT_EQ(AssignTraceIds(plain), (std::vector<int64_t>{0, 1}));
}

TEST(TraceTest, SyntheticTraceShapesAndArrivalMonotonicity) {
  Rng rng(81);
  const auto entries = SyntheticTrace(rng, 40, 0.5, 4, 16, 1, 8);
  ASSERT_EQ(entries.size(), 40u);
  int64_t prev = 0;
  for (const auto& e : entries) {
    EXPECT_GE(e.arrival_step, prev);
    EXPECT_GE(e.prompt_len, 4);
    EXPECT_LE(e.prompt_len, 16);
    EXPECT_GE(e.max_new_tokens, 1);
    EXPECT_LE(e.max_new_tokens, 8);
    EXPECT_EQ(e.id, -1);  // synthetic traces never pin ids
    prev = e.arrival_step;
  }
}

TEST(TraceTest, MakeRequestMaterializesTheStopConditionShape) {
  Rng rng(83);
  TraceEntry e;
  e.arrival_step = 3;
  e.prompt_len = 5;
  e.max_new_tokens = 2;
  e.priority = 1;
  const Request r = MakeRequest(rng, 11, e, /*hidden=*/32);
  EXPECT_EQ(r.id, 11);
  EXPECT_EQ(r.arrival_step, 3);
  EXPECT_EQ(r.priority, 1);
  EXPECT_EQ(r.inputs.rows(), r.total_tokens());
  EXPECT_EQ(r.inputs.cols(), 32);
  EXPECT_TRUE(r.ShapeValid(32));
  EXPECT_FALSE(r.ShapeValid(64));
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
