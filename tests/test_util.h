// Shared helpers for the test suite.

#ifndef SAMOYEDS_TESTS_TEST_UTIL_H_
#define SAMOYEDS_TESTS_TEST_UTIL_H_

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "src/formats/samoyeds_format.h"
#include "src/formats/sel.h"
#include "src/tensor/bf16.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

// Gaussian matrix already rounded to the bf16 grid, so reference products
// computed in fp32 match the SpTC's bf16-operand semantics bit-for-bit.
inline MatrixF RandomBf16Matrix(Rng& rng, int64_t rows, int64_t cols, float stddev = 1.0f) {
  MatrixF m = rng.GaussianMatrix(rows, cols, stddev);
  RoundMatrixToBf16(m);
  return m;
}

// Random strictly-increasing selection of `count` columns out of `full`.
inline Selection RandomSelection(Rng& rng, int64_t full, int64_t count) {
  Selection sel;
  sel.full_size = full;
  std::vector<int32_t> all(static_cast<size_t>(full));
  for (int64_t i = 0; i < full; ++i) {
    all[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  rng.Shuffle(all);
  all.resize(static_cast<size_t>(count));
  std::sort(all.begin(), all.end());
  sel.indices = std::move(all);
  return sel;
}

// ---- Minimal JSON checks for emitted artifacts ------------------------------
// Strict recursive-descent validation of the JSON this repo writes (reports,
// bench envelopes, traces): objects, arrays, escaped strings, RFC-8259
// numbers, true/false/null. Deliberately rejects NaN/Infinity — a printf'd
// "nan" in a report is exactly the corruption these checks exist to catch.

namespace json_detail {

inline void SkipWs(const std::string& s, size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
    ++i;
  }
}

inline bool ParseString(const std::string& s, size_t& i) {
  if (i >= s.size() || s[i] != '"') {
    return false;
  }
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;  // escape: skip the escaped character blindly
    } else if (s[i] == '"') {
      ++i;
      return true;
    }
  }
  return false;  // unterminated
}

inline bool ParseNumber(const std::string& s, size_t& i) {
  if (i < s.size() && s[i] == '-') {
    ++i;
  }
  size_t digits = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
    ++digits;
  }
  if (digits == 0) {
    return false;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    size_t frac = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++frac;
    }
    if (frac == 0) {
      return false;
    }
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
      ++i;
    }
    size_t exp = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++exp;
    }
    if (exp == 0) {
      return false;
    }
  }
  return true;
}

inline bool ParseValue(const std::string& s, size_t& i);

inline bool ParseObject(const std::string& s, size_t& i) {
  ++i;  // '{'
  SkipWs(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return true;
  }
  while (true) {
    SkipWs(s, i);
    if (!ParseString(s, i)) {
      return false;
    }
    SkipWs(s, i);
    if (i >= s.size() || s[i] != ':') {
      return false;
    }
    ++i;
    if (!ParseValue(s, i)) {
      return false;
    }
    SkipWs(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    return false;
  }
}

inline bool ParseArray(const std::string& s, size_t& i) {
  ++i;  // '['
  SkipWs(s, i);
  if (i < s.size() && s[i] == ']') {
    ++i;
    return true;
  }
  while (true) {
    if (!ParseValue(s, i)) {
      return false;
    }
    SkipWs(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    return false;
  }
}

inline bool ParseValue(const std::string& s, size_t& i) {
  SkipWs(s, i);
  if (i >= s.size()) {
    return false;
  }
  switch (s[i]) {
    case '{':
      return ParseObject(s, i);
    case '[':
      return ParseArray(s, i);
    case '"':
      return ParseString(s, i);
    case 't':
      if (s.compare(i, 4, "true") != 0) return false;
      i += 4;
      return true;
    case 'f':
      if (s.compare(i, 5, "false") != 0) return false;
      i += 5;
      return true;
    case 'n':
      if (s.compare(i, 4, "null") != 0) return false;
      i += 4;
      return true;
    default:
      return ParseNumber(s, i);
  }
}

}  // namespace json_detail

// True iff `text` is one complete well-formed JSON value.
inline bool JsonParses(const std::string& text) {
  size_t i = 0;
  if (!json_detail::ParseValue(text, i)) {
    return false;
  }
  json_detail::SkipWs(text, i);
  return i == text.size();
}

inline bool HasJsonKey(const std::string& json, const std::string& key) {
  return json.find("\"" + key + "\"") != std::string::npos;
}

// First numeric value following `"key":` anywhere in `json`. False when the
// key is absent or its value is not a number — the numeric round-trip check.
inline bool FindJsonNumber(const std::string& json, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  pos += needle.size();
  json_detail::SkipWs(json, pos);
  if (pos >= json.size() || json[pos] != ':') {
    return false;
  }
  ++pos;
  json_detail::SkipWs(json, pos);
  // Reject non-JSON spellings strtod would happily accept ("nan", "inf").
  if (pos >= json.size() ||
      (json[pos] != '-' && !std::isdigit(static_cast<unsigned char>(json[pos])))) {
    return false;
  }
  const char* begin = json.c_str() + pos;
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace samoyeds

#endif  // SAMOYEDS_TESTS_TEST_UTIL_H_
