// Shared helpers for the test suite.

#ifndef SAMOYEDS_TESTS_TEST_UTIL_H_
#define SAMOYEDS_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "src/formats/samoyeds_format.h"
#include "src/formats/sel.h"
#include "src/tensor/bf16.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

// Gaussian matrix already rounded to the bf16 grid, so reference products
// computed in fp32 match the SpTC's bf16-operand semantics bit-for-bit.
inline MatrixF RandomBf16Matrix(Rng& rng, int64_t rows, int64_t cols, float stddev = 1.0f) {
  MatrixF m = rng.GaussianMatrix(rows, cols, stddev);
  RoundMatrixToBf16(m);
  return m;
}

// Random strictly-increasing selection of `count` columns out of `full`.
inline Selection RandomSelection(Rng& rng, int64_t full, int64_t count) {
  Selection sel;
  sel.full_size = full;
  std::vector<int32_t> all(static_cast<size_t>(full));
  for (int64_t i = 0; i < full; ++i) {
    all[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  rng.Shuffle(all);
  all.resize(static_cast<size_t>(count));
  std::sort(all.begin(), all.end());
  sel.indices = std::move(all);
  return sel;
}

}  // namespace samoyeds

#endif  // SAMOYEDS_TESTS_TEST_UTIL_H_
