// The baseline execution strategies (MegaBlocks block-diagonal grouped
// GEMM, vLLM fused tiles, PIT micro-tile compaction) differ in execution
// structure but must be semantically identical to the Transformers-style
// reference data flow.

#include <gtest/gtest.h>

#include "src/moe/baseline_forward.h"
#include "src/tensor/gemm_ref.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

struct LayerCase {
  int experts, hidden, inter, top_k, shared;
  Activation act;
};

class BaselineForwardTest : public ::testing::TestWithParam<LayerCase> {
 protected:
  void Build(uint64_t seed) {
    const LayerCase c = GetParam();
    cfg_.num_experts = c.experts;
    cfg_.hidden = c.hidden;
    cfg_.intermediate = c.inter;
    cfg_.top_k = c.top_k;
    cfg_.shared_experts = c.shared;
    Rng rng(seed);
    weights_ = MoeLayerWeights::Random(rng, cfg_);
    x_ = RandomBf16Matrix(rng, 40, c.hidden, 0.5f);
    plan_ = Route(x_, weights_.router_gate, c.top_k);
    reference_ = MoeForwardReference(x_, weights_, plan_, c.act);
  }

  MoeModelConfig cfg_;
  MoeLayerWeights weights_;
  MatrixF x_;
  RoutingPlan plan_;
  MatrixF reference_;
};

TEST_P(BaselineForwardTest, MegaBlocksMatchesReference) {
  Build(401);
  const MatrixF got = MoeForwardMegaBlocks(x_, weights_, plan_, GetParam().act, 32);
  EXPECT_LE(MaxAbsDiff(got, reference_), 1e-4f);
}

TEST_P(BaselineForwardTest, VllmFusedMatchesReference) {
  Build(402);
  const MatrixF got = MoeForwardVllmFused(x_, weights_, plan_, GetParam().act, 16);
  EXPECT_LE(MaxAbsDiff(got, reference_), 1e-4f);
}

TEST_P(BaselineForwardTest, PitMatchesReference) {
  Build(403);
  const MatrixF got = MoeForwardPit(x_, weights_, plan_, GetParam().act, 8);
  EXPECT_LE(MaxAbsDiff(got, reference_), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Layers, BaselineForwardTest,
    ::testing::Values(LayerCase{4, 32, 64, 2, 0, Activation::kSilu},
                      LayerCase{8, 64, 32, 2, 0, Activation::kSilu},
                      LayerCase{4, 32, 32, 1, 0, Activation::kGeluTanh},
                      LayerCase{6, 32, 64, 3, 0, Activation::kSilu},
                      LayerCase{4, 32, 64, 2, 2, Activation::kSilu}));

TEST(BaselineForwardTest2, TileSizeDoesNotChangeVllmResult) {
  MoeModelConfig cfg;
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 32;
  cfg.top_k = 2;
  Rng rng(404);
  const MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  const MatrixF x = RandomBf16Matrix(rng, 30, cfg.hidden, 0.5f);
  const RoutingPlan plan = Route(x, w.router_gate, cfg.top_k);
  const MatrixF t4 = MoeForwardVllmFused(x, w, plan, Activation::kSilu, 4);
  const MatrixF t16 = MoeForwardVllmFused(x, w, plan, Activation::kSilu, 16);
  const MatrixF t64 = MoeForwardVllmFused(x, w, plan, Activation::kSilu, 64);
  EXPECT_LE(MaxAbsDiff(t4, t16), 1e-5f);
  EXPECT_LE(MaxAbsDiff(t16, t64), 1e-5f);
}

TEST(BaselineForwardTest2, PitMicroTileInvariance) {
  // The permutation-invariant property: micro-tile granularity never
  // changes the result.
  MoeModelConfig cfg;
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 32;
  cfg.top_k = 2;
  Rng rng(405);
  const MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  const MatrixF x = RandomBf16Matrix(rng, 24, cfg.hidden, 0.5f);
  const RoutingPlan plan = Route(x, w.router_gate, cfg.top_k);
  const MatrixF m2 = MoeForwardPit(x, w, plan, Activation::kSilu, 2);
  const MatrixF m8 = MoeForwardPit(x, w, plan, Activation::kSilu, 8);
  EXPECT_LE(MaxAbsDiff(m2, m8), 1e-5f);
}

TEST(BaselineForwardTest2, MegaBlocksTopologyIsBlockDiagonal) {
  // The staged operand's block map must only populate each token-block's
  // own expert stripe — the no-padding property MegaBlocks advertises.
  MoeModelConfig cfg;
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 32;
  cfg.top_k = 1;
  Rng rng(406);
  const MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  const MatrixF x = RandomBf16Matrix(rng, 32, cfg.hidden, 0.5f);
  const RoutingPlan plan = Route(x, w.router_gate, cfg.top_k);
  // Indirectly validated by numerics; here just confirm the forward runs
  // with a block size equal to the hidden dim (one block per stripe).
  const MatrixF got = MoeForwardMegaBlocks(x, w, plan, Activation::kSilu, 32);
  const MatrixF ref = MoeForwardReference(x, w, plan, Activation::kSilu);
  EXPECT_LE(MaxAbsDiff(got, ref), 1e-4f);
}

}  // namespace
}  // namespace samoyeds
