// The Samoyeds SSMM kernel: functional equivalence with the reference
// product of the decoded weight and the SEL-gathered input, plus traffic
// behaviour of every optimization toggle.

#include <gtest/gtest.h>

#include "src/core/samoyeds_kernel.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

struct RunCase {
  int64_t m, k, n, selected;
  int fn, fm, fv;  // format (N, M, V)
};

class SamoyedsKernelRunTest : public ::testing::TestWithParam<RunCase> {};

TEST_P(SamoyedsKernelRunTest, MatchesGatheredReference) {
  const RunCase c = GetParam();
  Rng rng(61);
  const MatrixF w = RandomBf16Matrix(rng, c.m, c.k);
  const MatrixF b = RandomBf16Matrix(rng, c.k, c.n);
  const Selection sel = RandomSelection(rng, c.n, c.selected);
  const SamoyedsConfig fmt{c.fn, c.fm, c.fv};
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, fmt);

  const MatrixF got = SamoyedsKernel::Run(enc, b, sel);
  const MatrixF expect = GemmRef(enc.ToDense(), GatherColumns(b, sel));
  ASSERT_EQ(got.rows(), c.m);
  ASSERT_EQ(got.cols(), c.selected);
  EXPECT_LE(MaxAbsDiff(got, expect), 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SamoyedsKernelRunTest,
    ::testing::Values(RunCase{32, 64, 16, 16, 1, 2, 32},   // full selection
                      RunCase{32, 64, 24, 8, 1, 2, 32},    // partial selection
                      RunCase{64, 128, 40, 17, 1, 2, 32},  // odd selection count
                      RunCase{64, 128, 40, 17, 2, 4, 32},
                      RunCase{128, 96, 33, 9, 4, 8, 32},
                      RunCase{128, 256, 64, 32, 8, 16, 32},
                      RunCase{48, 64, 20, 5, 1, 2, 64},    // V = 64: window spans 2 mma steps
                      RunCase{16, 32, 8, 8, 1, 2, 32},     // single block
                      RunCase{50, 64, 12, 6, 1, 2, 32}));  // m not multiple of 16

TEST(SamoyedsKernelTest, EmptySelectionGivesEmptyOutput) {
  Rng rng(62);
  const MatrixF w = RandomBf16Matrix(rng, 16, 32);
  const MatrixF b = RandomBf16Matrix(rng, 32, 8);
  Selection sel;
  sel.full_size = 8;
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, SamoyedsConfig{1, 2, 32});
  const MatrixF out = SamoyedsKernel::Run(enc, b, sel);
  EXPECT_EQ(out.cols(), 0);
  EXPECT_EQ(out.rows(), 16);
}

TEST(SamoyedsKernelTest, RunLinearMatchesXWt) {
  Rng rng(63);
  const int64_t tokens = 24;
  const int64_t hidden = 64;
  const int64_t out_f = 32;
  const MatrixF x = RandomBf16Matrix(rng, tokens, hidden);
  const MatrixF w = RandomBf16Matrix(rng, out_f, hidden);
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, SamoyedsConfig{1, 2, 32});
  const Selection sel = RandomSelection(rng, tokens, 10);

  const MatrixF got = SamoyedsKernel::RunLinear(x, enc, sel);
  // Reference: gather the selected token rows, multiply by decoded W^T.
  const MatrixF xt = x.Transposed();
  const MatrixF expect = GemmRef(enc.ToDense(), GatherColumns(xt, sel)).Transposed();
  ASSERT_EQ(got.rows(), 10);
  ASSERT_EQ(got.cols(), out_f);
  EXPECT_LE(MaxAbsDiff(got, expect), 2e-3f);
}

// ----------------------------------------------- bit-identity (optimized path)

// The optimized packed-panel Run must be *bit-identical* to the fragment-
// model RunReference: same bf16 roundings, same zero-skip, same fp32
// accumulation association (per-window partials folded in window order).
TEST(SamoyedsKernelBitIdentityTest, RandomizedRunMatchesReferenceExactly) {
  Rng rng(771);
  const SamoyedsConfig fmts[] = {{1, 2, 32}, {2, 4, 32}, {4, 8, 32},
                                 {8, 16, 32}, {1, 2, 64}, {1, 4, 32}};
  // One workspace reused across every shape: stale packed data or wrongly
  // sized buffers from a previous call must never leak into the next.
  SsmmWorkspace ws;
  MatrixF out;
  for (int trial = 0; trial < 72; ++trial) {
    const SamoyedsConfig fmt = fmts[trial % 6];
    // Shapes only need m % M == 0 and k % V == 0 — deliberately including
    // compressed row counts that are not multiples of the 16-row mma tile
    // and ragged selection widths (the peeled-edge cases).
    const int64_t m = fmt.m * (1 + rng.NextIndex(12));
    const int64_t k = fmt.v * (1 + rng.NextIndex(4));
    const int64_t n = 1 + rng.NextIndex(40);
    const int64_t selected = rng.NextIndex(n + 1);
    const MatrixF w = rng.GaussianMatrix(m, k);
    const MatrixF b = rng.GaussianMatrix(k, n);
    const Selection sel = RandomSelection(rng, n, selected);
    const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, fmt);

    const MatrixF expect = SamoyedsKernel::RunReference(enc, b, sel);
    SamoyedsKernel::Run(enc, b, sel, ws, out);
    ASSERT_TRUE(out == expect)
        << "workspace Run diverged at trial " << trial << " (m=" << m << " k=" << k
        << " n=" << n << " selected=" << selected << " fmt=" << fmt.n << "," << fmt.m << ","
        << fmt.v << ")";
    ASSERT_TRUE(SamoyedsKernel::Run(enc, b, sel) == expect)
        << "allocating Run diverged at trial " << trial;
  }
}

TEST(SamoyedsKernelBitIdentityTest, RunLinearMatchesReferenceComposition) {
  Rng rng(772);
  for (int trial = 0; trial < 12; ++trial) {
    const int64_t tokens = 1 + rng.NextIndex(30);
    const int64_t hidden = 32 * (1 + rng.NextIndex(3));
    const int64_t out_f = 16 * (1 + rng.NextIndex(4));
    const MatrixF x = rng.GaussianMatrix(tokens, hidden);
    const MatrixF w = rng.GaussianMatrix(out_f, hidden);
    const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, SamoyedsConfig{1, 2, 32});
    const Selection sel = RandomSelection(rng, tokens, rng.NextIndex(tokens + 1));

    // The pre-optimization RunLinear: materialized x^T, fragment-path Run,
    // transposed result.
    const MatrixF expect = SamoyedsKernel::RunReference(enc, x.Transposed(), sel).Transposed();
    ASSERT_TRUE(SamoyedsKernel::RunLinear(x, enc, sel) == expect) << "trial " << trial;
  }
}

TEST(SamoyedsKernelBitIdentityTest, EmptyAndFullSelectionsAgree) {
  Rng rng(773);
  const MatrixF w = rng.GaussianMatrix(48, 64);
  const MatrixF b = rng.GaussianMatrix(64, 24);
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(w, SamoyedsConfig{1, 2, 32});
  Selection empty;
  empty.full_size = 24;
  EXPECT_TRUE(SamoyedsKernel::Run(enc, b, empty) ==
              SamoyedsKernel::RunReference(enc, b, empty));
  const Selection all = Selection::All(24);
  EXPECT_TRUE(SamoyedsKernel::Run(enc, b, all) == SamoyedsKernel::RunReference(enc, b, all));
}

// ---------------------------------------------------------------- Analyze

GemmShape TestShape() { return GemmShape{2048, 2048, 4096}; }
SamoyedsConfig TestFormat() { return SamoyedsConfig{1, 2, 32}; }

TEST(SamoyedsAnalyzeTest, ExecutedFlopsMatchDensity) {
  const SsmmConfig cfg;
  const KernelProfile p = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), cfg);
  // 75% sparsity: a quarter of the dense MACs execute.
  EXPECT_NEAR(p.traffic.mma_flops / (2.0 * 2048 * 2048 * 4096), 0.25, 1e-9);
  EXPECT_TRUE(p.traffic.uses_sparse_alu);
}

TEST(SamoyedsAnalyzeTest, InputSelectionShrinksProblem) {
  const SsmmConfig cfg;
  const KernelProfile full = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), cfg);
  const KernelProfile quarter = SamoyedsKernel::Analyze(TestShape(), 1024, TestFormat(), cfg);
  EXPECT_LT(quarter.traffic.mma_flops, full.traffic.mma_flops * 0.3);
  EXPECT_LT(quarter.traffic.gmem_read_bytes, full.traffic.gmem_read_bytes * 0.5);
}

TEST(SamoyedsAnalyzeTest, SelectionIgnoredWhenToggleOff) {
  SsmmConfig cfg;
  cfg.input_selection = false;
  const KernelProfile p1 = SamoyedsKernel::Analyze(TestShape(), 1024, TestFormat(), cfg);
  const KernelProfile p2 = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), cfg);
  EXPECT_DOUBLE_EQ(p1.traffic.mma_flops, p2.traffic.mma_flops);
}

TEST(SamoyedsAnalyzeTest, DataStationaryOffSpillsToLocalMemory) {
  SsmmConfig on;
  SsmmConfig off = on;
  off.data_stationary = false;
  const KernelProfile pon = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), on);
  const KernelProfile poff = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), off);
  // The fragment round-trips through L1-backed local memory and the
  // pipeline loses issue efficiency.
  EXPECT_GT(poff.traffic.smem_bytes, pon.traffic.smem_bytes);
  EXPECT_LT(poff.traffic.efficiency, pon.traffic.efficiency);
  const TimingModel model(DefaultDevice());
  EXPECT_GT(model.Estimate(poff.traffic).total_ms, model.Estimate(pon.traffic).total_ms);
}

TEST(SamoyedsAnalyzeTest, UnpackedMetadataCostsMore) {
  SsmmConfig on;
  SsmmConfig off = on;
  off.packed_metadata = false;
  const KernelProfile pon = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), on);
  const KernelProfile poff = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), off);
  EXPECT_GT(poff.traffic.gmem_uncoalesced_bytes, pon.traffic.gmem_uncoalesced_bytes);
  const TimingModel model(DefaultDevice());
  EXPECT_GT(model.Estimate(poff.traffic).total_ms, model.Estimate(pon.traffic).total_ms);
}

TEST(SamoyedsAnalyzeTest, UnfusedTransposePaysRoundTrips) {
  SsmmConfig on;
  SsmmConfig off = on;
  off.fused_transpose = false;
  const KernelProfile pon = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), on);
  const KernelProfile poff = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), off);
  EXPECT_GT(poff.traffic.gmem_read_bytes, pon.traffic.gmem_read_bytes);
  EXPECT_GT(poff.traffic.gmem_write_bytes, pon.traffic.gmem_write_bytes);
}

TEST(SamoyedsAnalyzeTest, UncompressedOutputWritesFullWidth) {
  SsmmConfig on;
  SsmmConfig off = on;
  off.compressed_output = false;
  const KernelProfile pon = SamoyedsKernel::Analyze(TestShape(), 512, TestFormat(), on);
  const KernelProfile poff = SamoyedsKernel::Analyze(TestShape(), 512, TestFormat(), off);
  EXPECT_GT(poff.traffic.gmem_write_bytes, pon.traffic.gmem_write_bytes * 4.0);
}

TEST(SamoyedsAnalyzeTest, BankConflictToggle) {
  SsmmConfig on;
  SsmmConfig off = on;
  off.permuted_smem = false;
  const KernelProfile pon = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), on);
  const KernelProfile poff = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), off);
  EXPECT_GT(poff.traffic.bank_conflict_factor, pon.traffic.bank_conflict_factor);
}

TEST(SamoyedsAnalyzeTest, SmallTileIncreasesParallelism) {
  const KernelProfile big =
      SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), SsmmConfig::Default());
  const KernelProfile small =
      SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), SsmmConfig::SmallTile());
  EXPECT_GT(small.traffic.thread_blocks, big.traffic.thread_blocks * 3);
}

TEST(SamoyedsAnalyzeTest, PortingRetainsMostEfficiency) {
  const SsmmConfig cfg;
  const KernelProfile native = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), cfg);
  const KernelProfile ported = SamoyedsKernel::Analyze(TestShape(), 4096, TestFormat(), cfg,
                                                       GetDevice(DeviceModel::kA100_40G));
  // Samoyeds' low tuning sensitivity: most of the efficiency survives.
  EXPECT_GT(ported.traffic.efficiency, native.traffic.efficiency * 0.55);
}

}  // namespace
}  // namespace samoyeds
