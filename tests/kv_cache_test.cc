// Paged KV-cache allocator: unit coverage of the page math and storage
// round-trips, plus a randomized property test driving thousands of
// alloc/grow/free/reset operations against a shadow model and asserting the
// allocator's core invariants after every operation:
//
//   * free + used == total pages (conservation),
//   * per-sequence page counts match ceil(tokens / page_tokens),
//   * no page is held by two sequences and no page id appears twice
//     (double-free / double-acquire detection),
//   * all-or-nothing Extend (a failed grow changes nothing),
//   * Reset returns the allocator to a fully reusable initial state.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/serving/kv_cache.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace serving {
namespace {

TEST(PagesForTokensTest, CeilingDivisionEdgeCases) {
  EXPECT_EQ(PagesForTokens(0, 4), 0);
  EXPECT_EQ(PagesForTokens(1, 4), 1);
  EXPECT_EQ(PagesForTokens(4, 4), 1);
  EXPECT_EQ(PagesForTokens(5, 4), 2);
  EXPECT_EQ(PagesForTokens(8, 4), 2);
  EXPECT_EQ(PagesForTokens(7, 1), 7);
}

TEST(KvPageAllocatorTest, ExtendAcquiresPagesAtBoundariesOnly) {
  KvPageAllocator alloc(KvCacheConfig{4, 8});
  EXPECT_TRUE(alloc.Extend(1, 3));  // 3 tokens -> 1 page
  EXPECT_EQ(alloc.used_pages(), 1);
  EXPECT_EQ(alloc.PagesToExtend(1, 1), 0);  // 4th token fits the tail page
  EXPECT_TRUE(alloc.Extend(1, 1));
  EXPECT_EQ(alloc.used_pages(), 1);
  EXPECT_EQ(alloc.PagesToExtend(1, 1), 1);  // 5th token opens a page
  EXPECT_TRUE(alloc.Extend(1, 1));
  EXPECT_EQ(alloc.used_pages(), 2);
  EXPECT_EQ(alloc.SequenceTokens(1), 5);
  EXPECT_EQ(alloc.SequencePages(1).size(), 2u);
  EXPECT_EQ(alloc.FragmentationWaste(), 3);  // 8 slots held, 5 filled
}

TEST(KvPageAllocatorTest, FailedExtendIsAllOrNothing) {
  KvPageAllocator alloc(KvCacheConfig{4, 3});
  ASSERT_TRUE(alloc.Extend(1, 8));  // 2 pages
  EXPECT_FALSE(alloc.Extend(2, 8));  // needs 2, only 1 left
  EXPECT_EQ(alloc.used_pages(), 2);
  EXPECT_EQ(alloc.free_pages(), 1);
  EXPECT_EQ(alloc.SequenceTokens(2), 0);
  EXPECT_FALSE(alloc.Has(2));  // the failed grow left no sequence behind...
  EXPECT_TRUE(alloc.Extend(2, 4));  // ...and a fitting retry succeeds
  EXPECT_EQ(alloc.free_pages(), 0);
  // Growing an existing sequence past the pool also changes nothing.
  const int64_t tokens_before = alloc.SequenceTokens(2);
  EXPECT_FALSE(alloc.Extend(2, 1));
  EXPECT_EQ(alloc.SequenceTokens(2), tokens_before);
  EXPECT_EQ(alloc.used_pages(), 3);
}

TEST(KvPageAllocatorTest, FreeIsIdempotentAndReusesPagesDeterministically) {
  KvPageAllocator alloc(KvCacheConfig{4, 4});
  ASSERT_TRUE(alloc.Extend(1, 8));
  const std::vector<int32_t> first_pages = alloc.SequencePages(1);
  EXPECT_TRUE(alloc.Free(1));
  EXPECT_EQ(alloc.used_pages(), 0);
  EXPECT_EQ(alloc.free_pages(), 4);
  EXPECT_FALSE(alloc.Free(1));   // double free: defined no-op, reported
  EXPECT_FALSE(alloc.Free(99));  // unknown id: defined no-op, reported
  EXPECT_EQ(alloc.used_pages() + alloc.free_pages(), alloc.total_pages());

  // LIFO free list: the next sequence gets the same page ids back in order.
  ASSERT_TRUE(alloc.Extend(2, 8));
  EXPECT_EQ(alloc.SequencePages(2), first_pages);
}

TEST(KvPageAllocatorTest, UnboundedPoolMintsOnDemandAndRecycles) {
  KvPageAllocator alloc(KvCacheConfig{4, 0});
  EXPECT_FALSE(alloc.bounded());
  ASSERT_TRUE(alloc.Extend(1, 100));  // 25 pages minted
  EXPECT_EQ(alloc.total_pages(), 25);
  EXPECT_EQ(alloc.used_pages() + alloc.free_pages(), alloc.total_pages());
  alloc.Free(1);
  ASSERT_TRUE(alloc.Extend(2, 60));  // refilled from the free list, no minting
  EXPECT_EQ(alloc.total_pages(), 25);
  EXPECT_EQ(alloc.used_pages(), 15);
}

TEST(PagedKvCacheTest, RowsSurviveAcrossPageBoundariesPerLayer) {
  const int64_t kHidden = 4;
  PagedKvCache cache(KvCacheConfig{3, 0}, /*layers=*/2, kHidden);
  ASSERT_TRUE(cache.Extend(7, 8));  // 8 tokens over 3-token pages -> 3 pages
  for (int64_t layer = 0; layer < 2; ++layer) {
    for (int64_t t = 0; t < 8; ++t) {
      float* row = cache.Row(7, layer, t);
      for (int64_t c = 0; c < kHidden; ++c) {
        row[c] = static_cast<float>(100 * layer + 10 * t + c);
      }
    }
  }
  // A second sequence must not disturb the first (disjoint pages), even when
  // its growth mints new pages and regrows the arenas.
  ASSERT_TRUE(cache.Extend(8, 50));
  for (int64_t t = 0; t < 50; ++t) {
    cache.Row(8, 0, t)[0] = -1.0f;
  }

  std::vector<float> gathered(8 * kHidden);
  for (int64_t layer = 0; layer < 2; ++layer) {
    cache.GatherRows(7, layer, 8, gathered.data());
    for (int64_t t = 0; t < 8; ++t) {
      for (int64_t c = 0; c < kHidden; ++c) {
        EXPECT_EQ(gathered[static_cast<size_t>(t * kHidden + c)],
                  static_cast<float>(100 * layer + 10 * t + c))
            << "layer " << layer << " token " << t;
      }
    }
  }
}

TEST(PagedKvCacheTest, HugePageBudgetDoesNotPreallocateStorage) {
  // A memory-model-derived budget can be hundreds of thousands of pages
  // (--max-pages=auto); backing arenas must track pages actually minted, not
  // the configured bound, or the first Extend allocates gigabytes.
  PagedKvCache cache(KvCacheConfig{16, 1'000'000'000}, /*layers=*/2, /*hidden=*/64);
  ASSERT_TRUE(cache.Extend(1, 40));
  EXPECT_EQ(cache.allocator().minted_pages(), 3);
  EXPECT_EQ(cache.allocator().free_pages(), 1'000'000'000 - 3);
  cache.Row(1, 1, 39)[0] = 1.0f;  // last slot is addressable
}

// ---- Randomized property test ----------------------------------------------

struct ShadowModel {
  std::map<int64_t, int64_t> tokens;  // live sequence -> token count
};

void CheckInvariants(const KvPageAllocator& alloc, const ShadowModel& shadow,
                     const KvCacheConfig& cfg) {
  ASSERT_EQ(alloc.used_pages() + alloc.free_pages(), alloc.total_pages());
  ASSERT_EQ(alloc.num_sequences(), static_cast<int64_t>(shadow.tokens.size()));

  int64_t expect_used = 0;
  int64_t expect_tokens = 0;
  std::set<int32_t> seen_pages;
  for (const auto& [id, tokens] : shadow.tokens) {
    ASSERT_TRUE(alloc.Has(id));
    ASSERT_EQ(alloc.SequenceTokens(id), tokens);
    const std::vector<int32_t>& pages = alloc.SequencePages(id);
    ASSERT_EQ(static_cast<int64_t>(pages.size()), PagesForTokens(tokens, cfg.page_tokens));
    for (int32_t page : pages) {
      ASSERT_GE(page, 0);
      ASSERT_LT(page, alloc.total_pages());
      // No page is owned by two sequences or listed twice.
      ASSERT_TRUE(seen_pages.insert(page).second) << "page " << page << " double-owned";
    }
    expect_used += static_cast<int64_t>(pages.size());
    expect_tokens += tokens;
  }
  ASSERT_EQ(alloc.used_pages(), expect_used);
  ASSERT_EQ(alloc.cached_tokens(), expect_tokens);
  ASSERT_EQ(alloc.FragmentationWaste(), expect_used * cfg.page_tokens - expect_tokens);
}

TEST(KvPageAllocatorTest, RandomizedLifecycleKeepsInvariants) {
  const KvCacheConfig cfg{4, 13};
  KvPageAllocator alloc(cfg);
  ShadowModel shadow;
  Rng rng(1234);
  int64_t next_id = 0;
  int64_t failed_extends = 0;
  int64_t resets = 0;

  for (int op = 0; op < 4000; ++op) {
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 40) {  // grow an existing sequence (or create one)
      int64_t id;
      if (shadow.tokens.empty() || rng.NextBounded(4) == 0) {
        id = next_id++;
      } else {
        auto it = shadow.tokens.begin();
        std::advance(it, static_cast<int64_t>(rng.NextBounded(shadow.tokens.size())));
        id = it->first;
      }
      const int64_t grow = static_cast<int64_t>(rng.NextBounded(9));  // 0..8 tokens
      const int64_t need = alloc.PagesToExtend(id, grow);
      const bool expect_ok = need <= alloc.free_pages();
      ASSERT_EQ(alloc.Extend(id, grow), expect_ok);
      if (expect_ok) {
        shadow.tokens[id] += grow;
      } else {
        ++failed_extends;
      }
    } else if (dice < 70) {  // fresh sequence with a sized first allocation
      const int64_t id = next_id++;
      const int64_t tokens = static_cast<int64_t>(rng.NextBounded(20));
      const bool expect_ok = PagesForTokens(tokens, cfg.page_tokens) <= alloc.free_pages();
      ASSERT_EQ(alloc.Extend(id, tokens), expect_ok);
      if (expect_ok) {
        shadow.tokens[id] += tokens;
      } else {
        ++failed_extends;
      }
    } else if (dice < 97) {  // free a random live sequence (or a bogus id)
      if (shadow.tokens.empty() || rng.NextBounded(8) == 0) {
        ASSERT_FALSE(alloc.Free(next_id + 1000));  // unknown id: reported no-op
      } else {
        auto it = shadow.tokens.begin();
        std::advance(it, static_cast<int64_t>(rng.NextBounded(shadow.tokens.size())));
        const int64_t id = it->first;
        ASSERT_TRUE(alloc.Free(id));
        ASSERT_FALSE(alloc.Free(id));  // double-free injection: reported no-op
        shadow.tokens.erase(it);
      }
    } else {  // reset: allocator must come back fully reusable
      alloc.Reset();
      shadow.tokens.clear();
      ++resets;
      ASSERT_EQ(alloc.used_pages(), 0);
      ASSERT_EQ(alloc.free_pages(), cfg.total_pages);
    }
    CheckInvariants(alloc, shadow, cfg);
  }
  // The schedule actually exercised contention and reuse.
  EXPECT_GT(failed_extends, 0);
  EXPECT_GT(resets, 0);
  EXPECT_GT(next_id, 100);
}

// ---- Sharing / refcount property test ---------------------------------------
//
// Drives Extend / CreateMapped / CowSplit / Retain / Release / Free against a
// shadow that tracks every holder of every page (sequence page tables plus
// tree-style bare retains) and asserts after each op:
//   * every page's refcount equals the shadow's holder count,
//   * used == pages with holders, shared == pages with >= 2 holders,
//   * conservation: used + free == total,
//   * CowSplit rebinds exactly the split sequence and never disturbs others.
struct SharingShadow {
  std::map<int64_t, std::vector<int32_t>> seq_pages;
  std::map<int64_t, int64_t> seq_tokens;
  std::vector<int32_t> bare_retains;  // radix-node-style extra references

  std::map<int32_t, int> Refs() const {
    std::map<int32_t, int> refs;
    for (const auto& [id, pages] : seq_pages) {
      for (int32_t p : pages) {
        ++refs[p];
      }
    }
    for (int32_t p : bare_retains) {
      ++refs[p];
    }
    return refs;
  }
};

void CheckSharingInvariants(const KvPageAllocator& alloc, const SharingShadow& shadow) {
  ASSERT_EQ(alloc.used_pages() + alloc.free_pages(), alloc.total_pages());
  const std::map<int32_t, int> refs = shadow.Refs();
  int64_t shared = 0;
  for (const auto& [page, count] : refs) {
    ASSERT_EQ(alloc.refcount(page), count) << "page " << page;
    if (count >= 2) {
      ++shared;
    }
  }
  ASSERT_EQ(alloc.used_pages(), static_cast<int64_t>(refs.size()));
  ASSERT_EQ(alloc.shared_pages(), shared);
  for (const auto& [id, tokens] : shadow.seq_tokens) {
    ASSERT_EQ(alloc.SequenceTokens(id), tokens);
    ASSERT_EQ(alloc.SequencePages(id), shadow.seq_pages.at(id));
  }
}

TEST(KvPageAllocatorTest, RandomizedSharingKeepsRefcountsConserved) {
  const KvCacheConfig cfg{4, 24};
  KvPageAllocator alloc(cfg);
  SharingShadow shadow;
  Rng rng(99);
  int64_t next_id = 0;
  int64_t mapped = 0, cow_splits = 0, cow_denied = 0;

  const auto random_seq = [&](uint64_t bias) -> int64_t {
    if (shadow.seq_tokens.empty() || rng.NextBounded(bias) == 0) {
      return next_id++;
    }
    auto it = shadow.seq_tokens.begin();
    std::advance(it, static_cast<int64_t>(rng.NextBounded(shadow.seq_tokens.size())));
    return it->first;
  };

  for (int op = 0; op < 4000; ++op) {
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 30) {  // grow (allocator-level Extend never COWs)
      const int64_t id = random_seq(4);
      const int64_t grow = static_cast<int64_t>(rng.NextBounded(7));
      const int64_t need = alloc.PagesToExtend(id, grow);
      const bool expect_ok = need <= alloc.free_pages();
      ASSERT_EQ(alloc.Extend(id, grow), expect_ok);
      if (expect_ok) {
        shadow.seq_tokens[id] += grow;
        const std::vector<int32_t>& pages = alloc.SequencePages(id);
        shadow.seq_pages[id] = pages;
        ASSERT_EQ(static_cast<int64_t>(pages.size()),
                  PagesForTokens(shadow.seq_tokens[id], cfg.page_tokens));
      }
    } else if (dice < 55 && !shadow.seq_tokens.empty()) {  // map a shared prefix
      auto it = shadow.seq_tokens.begin();
      std::advance(it, static_cast<int64_t>(rng.NextBounded(shadow.seq_tokens.size())));
      const int64_t donor = it->first;
      if (it->second > 0) {
        const int64_t tokens = 1 + static_cast<int64_t>(rng.NextBounded(
                                       static_cast<uint64_t>(it->second)));
        const int64_t pages = PagesForTokens(tokens, cfg.page_tokens);
        const std::vector<int32_t>& donor_pages = shadow.seq_pages.at(donor);
        const std::vector<int32_t> prefix(donor_pages.begin(), donor_pages.begin() + pages);
        const int64_t id = next_id++;
        ASSERT_TRUE(alloc.CreateMapped(id, prefix, tokens));
        ASSERT_FALSE(alloc.CreateMapped(id, prefix, tokens));  // id exists now
        shadow.seq_pages[id] = prefix;
        shadow.seq_tokens[id] = tokens;
        ++mapped;
      }
    } else if (dice < 70) {  // copy-on-write split of a shared page
      // Find a (seq, index) whose page is shared, deterministically.
      bool done = false;
      for (const auto& [id, pages] : shadow.seq_pages) {
        for (size_t i = 0; i < pages.size() && !done; ++i) {
          if (alloc.refcount(pages[i]) >= 2) {
            const int32_t old_page = pages[i];
            const int32_t new_page = alloc.CowSplit(id, i);
            if (alloc.free_pages() > 0 || new_page >= 0) {
              ASSERT_GE(new_page, 0);
              ASSERT_NE(new_page, old_page);
              shadow.seq_pages[id][i] = new_page;
              ++cow_splits;
            } else {
              ASSERT_EQ(new_page, -1);  // bounded pool exhausted: no change
              ++cow_denied;
            }
            done = true;
          }
        }
        if (done) {
          break;
        }
      }
    } else if (dice < 80 && alloc.used_pages() > 0) {  // tree-style bare retain
      // Retain a random live page (as a radix node would).
      const std::map<int32_t, int> refs = shadow.Refs();
      auto it = refs.begin();
      std::advance(it, static_cast<int64_t>(rng.NextBounded(refs.size())));
      alloc.Retain(it->first);
      shadow.bare_retains.push_back(it->first);
    } else if (dice < 88 && !shadow.bare_retains.empty()) {  // release a retain
      const size_t i = static_cast<size_t>(rng.NextBounded(shadow.bare_retains.size()));
      alloc.Release(shadow.bare_retains[i]);
      shadow.bare_retains.erase(shadow.bare_retains.begin() +
                                static_cast<std::ptrdiff_t>(i));
    } else {  // free a sequence (or inject double/unknown frees)
      if (shadow.seq_tokens.empty() || rng.NextBounded(8) == 0) {
        ASSERT_FALSE(alloc.Free(next_id + 1000));
      } else {
        auto it = shadow.seq_tokens.begin();
        std::advance(it, static_cast<int64_t>(rng.NextBounded(shadow.seq_tokens.size())));
        const int64_t id = it->first;
        ASSERT_TRUE(alloc.Free(id));
        ASSERT_FALSE(alloc.Free(id));
        shadow.seq_tokens.erase(id);
        shadow.seq_pages.erase(id);
      }
    }
    CheckSharingInvariants(alloc, shadow);
  }
  EXPECT_GT(mapped, 50);      // sharing actually happened
  EXPECT_GT(cow_splits, 20);  // and diverged
}

TEST(PagedKvCacheTest, CowSplitPreservesContentAndUnshares) {
  const int64_t kHidden = 4;
  PagedKvCache cache(KvCacheConfig{4, 8}, /*layers=*/2, kHidden);
  // Donor writes 6 tokens (2 pages, second partially filled).
  ASSERT_TRUE(cache.Extend(1, 6));
  for (int64_t layer = 0; layer < 2; ++layer) {
    for (int64_t t = 0; t < 6; ++t) {
      for (int64_t c = 0; c < kHidden; ++c) {
        cache.Row(1, layer, t)[c] = static_cast<float>(100 * layer + 10 * t + c);
      }
    }
  }
  // A second sequence maps the same 6 tokens (both pages shared), then grows:
  // the partial tail page must copy-on-write before the first new row lands.
  ASSERT_TRUE(cache.CreateMapped(2, cache.allocator().SequencePages(1), 6));
  EXPECT_EQ(cache.allocator().shared_pages(), 2);
  ASSERT_TRUE(cache.Extend(2, 1));
  EXPECT_EQ(cache.cow_splits(), 1);
  EXPECT_EQ(cache.allocator().shared_pages(), 1);  // tail diverged, head still shared
  EXPECT_NE(cache.allocator().SequencePages(1)[1], cache.allocator().SequencePages(2)[1]);
  cache.Row(2, 0, 6)[0] = -1.0f;
  for (int64_t layer = 0; layer < 2; ++layer) {
    cache.Row(2, layer, 5)[0] = 999.0f;  // write into the copied page
    EXPECT_EQ(cache.Row(1, layer, 5)[0], static_cast<float>(100 * layer + 50))
        << "donor row disturbed by a post-split write";
    // The copy carried the pre-split rows over bit-exactly.
    EXPECT_EQ(cache.Row(2, layer, 4)[1], static_cast<float>(100 * layer + 40 + 1));
  }
}

}  // namespace
}  // namespace serving
}  // namespace samoyeds
