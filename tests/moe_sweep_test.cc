// Broad parameterized sweeps over MoE layer structure: every combination of
// expert count, top-k, activation and Samoyeds format must keep the
// dual-side sparse execution numerically faithful to the reference, and the
// expert-choice routing extension must compose with the same machinery.

#include <gtest/gtest.h>

#include "src/moe/baseline_forward.h"
#include "src/moe/moe_layer.h"
#include "src/moe/router.h"
#include "src/tensor/gemm_ref.h"
#include "tests/test_util.h"

namespace samoyeds {
namespace {

struct SweepCase {
  int experts;
  int top_k;
  Activation act;
  int fn, fm, fv;
};

class MoeSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MoeSweepTest, DualSideMatchesReference) {
  const SweepCase c = GetParam();
  MoeModelConfig cfg;
  cfg.num_experts = c.experts;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = c.top_k;
  const SamoyedsConfig fmt{c.fn, c.fm, c.fv};

  Rng rng(501 + static_cast<uint64_t>(c.experts * 100 + c.top_k));
  MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw = SamoyedsMoeLayerWeights::Encode(w, fmt);
  w.ApplyMask(fmt);

  MatrixF x = RandomBf16Matrix(rng, 32, cfg.hidden, 0.5f);
  const RoutingPlan plan = Route(x, w.router_gate, cfg.top_k);
  ASSERT_TRUE(plan.IsConsistent());
  const MatrixF ref = MoeForwardReference(x, w, plan, c.act);
  const MatrixF got = MoeForwardSamoyeds(x, sw, plan, c.act);
  EXPECT_LT(RelativeError(got, ref), 2e-2);
}

TEST_P(MoeSweepTest, BaselinesAgreeOnDenseWeights) {
  const SweepCase c = GetParam();
  MoeModelConfig cfg;
  cfg.num_experts = c.experts;
  cfg.hidden = 32;
  cfg.intermediate = 32;
  cfg.top_k = c.top_k;
  Rng rng(601 + static_cast<uint64_t>(c.experts * 100 + c.top_k));
  const MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  const MatrixF x = RandomBf16Matrix(rng, 24, cfg.hidden, 0.5f);
  const RoutingPlan plan = Route(x, w.router_gate, cfg.top_k);
  const MatrixF ref = MoeForwardReference(x, w, plan, c.act);
  EXPECT_LE(MaxAbsDiff(MoeForwardVllmFused(x, w, plan, c.act), ref), 1e-4f);
  EXPECT_LE(MaxAbsDiff(MoeForwardPit(x, w, plan, c.act), ref), 1e-4f);
  EXPECT_LE(MaxAbsDiff(MoeForwardMegaBlocks(x, w, plan, c.act, 32), ref), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MoeSweepTest,
    ::testing::Values(SweepCase{2, 1, Activation::kSilu, 1, 2, 32},
                      SweepCase{4, 2, Activation::kSilu, 1, 2, 32},
                      SweepCase{8, 2, Activation::kGeluTanh, 1, 2, 32},
                      SweepCase{8, 4, Activation::kSilu, 2, 4, 32},
                      SweepCase{16, 2, Activation::kSilu, 1, 2, 32},
                      SweepCase{16, 6, Activation::kSilu, 4, 8, 32},
                      SweepCase{6, 3, Activation::kGeluTanh, 1, 2, 32}));

// ------------------------------------------------------- expert choice

TEST(ExpertChoiceTest, PlanIsBalanced) {
  Rng rng(701);
  const MatrixF x = rng.GaussianMatrix(64, 32);
  const MatrixF gate = rng.GaussianMatrix(8, 32);
  const RoutingPlan plan = RouteExpertChoice(x, gate, 2);
  EXPECT_TRUE(IsBalancedConsistent(plan));
  // Exactly tokens * k / E tokens per expert, for every expert.
  for (int e = 0; e < 8; ++e) {
    EXPECT_EQ(plan.TokensForExpert(e), 64 * 2 / 8);
  }
}

TEST(ExpertChoiceTest, TokenLoadVariesButExpertLoadDoesNot) {
  Rng rng(702);
  const MatrixF x = rng.GaussianMatrix(128, 16);
  const MatrixF gate = rng.GaussianMatrix(4, 16);
  const RoutingPlan ec = RouteExpertChoice(x, gate, 2);
  // Token-choice: every token has exactly 2 experts. Expert-choice: some
  // tokens get more, some fewer — verify the distribution is non-degenerate.
  int64_t with_zero = 0;
  int64_t with_many = 0;
  for (const auto& a : ec.token_assignments) {
    with_zero += a.empty();
    with_many += a.size() > 2;
  }
  EXPECT_GT(with_many + with_zero, 0);  // differs from token-choice routing
  EXPECT_TRUE(IsBalancedConsistent(ec));
}

TEST(ExpertChoiceTest, ExpertsPickHighestAffinityTokens) {
  // One token engineered to dominate expert 0's affinity.
  MatrixF x(4, 4);
  x(2, 0) = 100.0f;
  MatrixF gate(2, 4);
  gate(0, 0) = 1.0f;   // expert 0 keys on feature 0
  gate(1, 1) = 1.0f;
  const RoutingPlan plan = RouteExpertChoice(x, gate, 1);
  const auto& chosen = plan.expert_tokens[0];
  EXPECT_TRUE(std::find(chosen.begin(), chosen.end(), 2) != chosen.end());
}

TEST(ExpertChoiceTest, ForwardRunsThroughBothPaths) {
  // The dual-side sparse path must accept expert-choice plans unmodified
  // (SEL arrays and weighted accumulation are routing-agnostic).
  MoeModelConfig cfg;
  cfg.num_experts = 4;
  cfg.hidden = 32;
  cfg.intermediate = 64;
  cfg.top_k = 2;
  const SamoyedsConfig fmt{1, 2, 32};
  Rng rng(703);
  MoeLayerWeights w = MoeLayerWeights::Random(rng, cfg);
  const SamoyedsMoeLayerWeights sw = SamoyedsMoeLayerWeights::Encode(w, fmt);
  w.ApplyMask(fmt);
  const MatrixF x = RandomBf16Matrix(rng, 32, cfg.hidden, 0.5f);
  const RoutingPlan plan = RouteExpertChoice(x, w.router_gate, cfg.top_k);
  ASSERT_TRUE(IsBalancedConsistent(plan));
  const MatrixF ref = MoeForwardReference(x, w, plan, Activation::kSilu);
  const MatrixF got = MoeForwardSamoyeds(x, sw, plan, Activation::kSilu);
  EXPECT_LT(RelativeError(got, ref), 2e-2);
}

// --------------------------------------------------------- router edges

TEST(RouterEdgeTest, TopKEqualsExpertCount) {
  Rng rng(704);
  const MatrixF x = rng.GaussianMatrix(10, 8);
  const MatrixF gate = rng.GaussianMatrix(4, 8);
  const RoutingPlan plan = Route(x, gate, 4);
  EXPECT_TRUE(plan.IsConsistent());
  for (int e = 0; e < 4; ++e) {
    EXPECT_EQ(plan.TokensForExpert(e), 10);  // everyone everywhere
  }
}

TEST(RouterEdgeTest, SingleToken) {
  Rng rng(705);
  const MatrixF x = rng.GaussianMatrix(1, 8);
  const MatrixF gate = rng.GaussianMatrix(6, 8);
  const RoutingPlan plan = Route(x, gate, 2);
  EXPECT_TRUE(plan.IsConsistent());
  EXPECT_EQ(plan.MaxTokensPerExpert(), 1);
}

TEST(RouterEdgeTest, GateWeightsDescendWithLogits) {
  Rng rng(706);
  const MatrixF x = rng.GaussianMatrix(20, 8);
  const MatrixF gate = rng.GaussianMatrix(8, 8);
  const RoutingPlan plan = Route(x, gate, 3);
  for (const auto& assignment : plan.token_assignments) {
    for (size_t i = 1; i < assignment.size(); ++i) {
      EXPECT_GE(assignment[i - 1].second, assignment[i].second);
    }
  }
}

}  // namespace
}  // namespace samoyeds
