#include <cmath>

#include <gtest/gtest.h>

#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace {

TEST(MatrixTest, ConstructAndIndex) {
  MatrixF m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  EXPECT_FLOAT_EQ(m(2, 3), 1.5f);
  m(1, 2) = -7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), -7.0f);
}

TEST(MatrixTest, FromRowMajor) {
  auto m = MatrixF::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(m(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(m(1, 2), 6.0f);
}

TEST(MatrixTest, RowSpanIsContiguous) {
  MatrixF m(2, 4);
  m(1, 0) = 1.0f;
  m(1, 3) = 4.0f;
  auto row = m.row(1);
  EXPECT_EQ(row.size(), 4u);
  EXPECT_FLOAT_EQ(row[0], 1.0f);
  EXPECT_FLOAT_EQ(row[3], 4.0f);
}

TEST(MatrixTest, TransposedRoundTrip) {
  Rng rng(1);
  const MatrixF m = rng.GaussianMatrix(5, 7);
  const MatrixF t = m.Transposed();
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 5);
  EXPECT_TRUE(t.Transposed() == m);
}

TEST(MatrixTest, EqualityComparesShapeAndData) {
  MatrixF a(2, 2, 1.0f);
  MatrixF b(2, 2, 1.0f);
  EXPECT_TRUE(a == b);
  b(0, 0) = 2.0f;
  EXPECT_FALSE(a == b);
  MatrixF c(4, 1, 1.0f);
  EXPECT_FALSE(a == c);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  }
}

TEST(Bf16Test, ExactValuesPreserved) {
  EXPECT_FLOAT_EQ(RoundToBf16(1.0f), 1.0f);
  EXPECT_FLOAT_EQ(RoundToBf16(-2.5f), -2.5f);
  EXPECT_FLOAT_EQ(RoundToBf16(0.0f), 0.0f);
}

TEST(Bf16Test, RoundingIsIdempotent) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.NextGaussian() * 100.0f;
    const float r = RoundToBf16(x);
    EXPECT_FLOAT_EQ(RoundToBf16(r), r);
  }
}

TEST(Bf16Test, RelativeErrorBounded) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.NextGaussian() * 10.0f + 0.1f;
    const float r = RoundToBf16(x);
    EXPECT_LE(std::fabs(r - x), std::fabs(x) * (1.0f / 128.0f));  // 8-bit mantissa
  }
}

TEST(Bf16Test, NanStaysNan) {
  EXPECT_TRUE(std::isnan(RoundToBf16(std::nanf(""))));
}

TEST(Bf16Test, InfinityPreserved) {
  EXPECT_TRUE(std::isinf(RoundToBf16(INFINITY)));
  EXPECT_TRUE(std::isinf(RoundToBf16(-INFINITY)));
}

TEST(GemmRefTest, SmallKnownProduct) {
  auto a = MatrixF::FromRowMajor(2, 2, {1, 2, 3, 4});
  auto b = MatrixF::FromRowMajor(2, 2, {5, 6, 7, 8});
  const MatrixF c = GemmRef(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(GemmRefTest, IdentityIsNeutral) {
  Rng rng(5);
  const MatrixF a = rng.GaussianMatrix(8, 8);
  MatrixF eye(8, 8);
  for (int i = 0; i < 8; ++i) {
    eye(i, i) = 1.0f;
  }
  EXPECT_LE(MaxAbsDiff(GemmRef(a, eye), a), 1e-6f);
  EXPECT_LE(MaxAbsDiff(GemmRef(eye, a), a), 1e-6f);
}

TEST(GemmRefTest, AccumulateAddsIntoC) {
  Rng rng(6);
  const MatrixF a = rng.GaussianMatrix(4, 6);
  const MatrixF b = rng.GaussianMatrix(6, 5);
  MatrixF c(4, 5, 1.0f);
  GemmAccumulateRef(a, b, c);
  const MatrixF expect = GemmRef(a, b);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(c(i, j), expect(i, j) + 1.0f, 1e-5f);
    }
  }
}

TEST(GemmRefTest, RelativeErrorAndNorm) {
  MatrixF a(2, 2);
  a(0, 0) = 3.0f;
  a(1, 1) = 4.0f;
  EXPECT_NEAR(FrobeniusNorm(a), 5.0, 1e-9);
  EXPECT_NEAR(RelativeError(a, a), 0.0, 1e-12);
  MatrixF zero(2, 2);
  EXPECT_NEAR(RelativeError(zero, zero), 0.0, 1e-12);
  EXPECT_NEAR(RelativeError(a, zero), 1.0, 1e-12);
}

}  // namespace
}  // namespace samoyeds
