// WoodFisher-style second-order pruning scores (§6.5 uses WoodFisher via
// SparseML). The full WoodFisher inverts a blockwise Fisher; the standard
// diagonal approximation scores each weight by w^2 * F_jj, where F_jj is
// the empirical squared gradient. Structured masks (unstructured / VENOM /
// Samoyeds) are then selected on the *scores* instead of magnitudes, while
// the surviving values stay the original weights.

#ifndef SAMOYEDS_SRC_PRUNING_FISHER_H_
#define SAMOYEDS_SRC_PRUNING_FISHER_H_

#include <vector>

#include "src/pruning/accuracy_eval.h"
#include "src/pruning/mlp.h"
#include "src/pruning/pruners.h"

namespace samoyeds {

// Empirical diagonal Fisher of the model's weights on (a subset of) the
// dataset: mean squared gradient per weight, one matrix per layer.
std::vector<MatrixF> EstimateDiagonalFisher(const Mlp& model, const ClassificationDataset& data,
                                            int64_t max_samples = 512);

// WoodFisher-diagonal saliency: score_j = w_j^2 * F_jj (the loss increase
// of zeroing w_j under a quadratic model with diagonal curvature).
MatrixF FisherSaliency(const MatrixF& weights, const MatrixF& fisher_diag);

// Prunes `w` in place using the structural pattern of `spec`, but selecting
// survivors by `scores` instead of magnitude. Survivors keep their original
// values.
void ApplyScoredPruning(MatrixF& w, const MatrixF& scores, const PruneSpec& spec);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_PRUNING_FISHER_H_
