// End-to-end accuracy-proxy experiments: train a model, one-shot prune it
// with each format, fine-tune under the mask, evaluate (§6.5).

#ifndef SAMOYEDS_SRC_PRUNING_ACCURACY_EVAL_H_
#define SAMOYEDS_SRC_PRUNING_ACCURACY_EVAL_H_

#include <cstdint>
#include <vector>

#include "src/pruning/mlp.h"
#include "src/pruning/pruners.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

struct ClassificationDataset {
  MatrixF x;                // samples x features
  std::vector<int> labels;  // class index per sample
  int num_classes = 0;

  // Gaussian-cluster classification task (deterministic given the seed).
  static ClassificationDataset Make(Rng& rng, int64_t samples, int features, int classes,
                                    float noise = 0.6f);
};

struct RegressionDataset {
  MatrixF x;
  MatrixF y;

  // Teacher-network regression task: y = teacher(x) for a random frozen MLP.
  static RegressionDataset Make(Rng& rng, int64_t samples, int features, int outputs);
};

// Classification accuracy in [0, 1].
double EvaluateAccuracy(const Mlp& model, const ClassificationDataset& data);
// Perplexity = exp(mean cross-entropy) — the proxy for Table 5.
double EvaluatePerplexity(const Mlp& model, const ClassificationDataset& data);
// Mean squared error.
double EvaluateMse(const Mlp& model, const RegressionDataset& data);

struct PruneExperimentResult {
  PruneSpec spec;
  double metric_before_finetune = 0.0;
  double metric_after_finetune = 0.0;
  double measured_sparsity = 0.0;  // over hidden-layer weights
};

struct PruneExperimentOptions {
  int pretrain_epochs = 60;
  int finetune_epochs = 20;
  int batch = 128;
  float lr = 0.05f;
  float finetune_lr = 0.01f;
};

// Trains a dense model on `train`, then for each spec: copy, prune the
// hidden layers (input/output layers stay dense, mirroring how LLM
// embedding/head layers are kept dense), fine-tune, evaluate perplexity on
// `test`. The dense baseline appears as a kDense entry.
std::vector<PruneExperimentResult> RunPerplexityExperiment(
    Rng& rng, const std::vector<int>& dims, const ClassificationDataset& train,
    const ClassificationDataset& test, const std::vector<PruneSpec>& specs,
    const PruneExperimentOptions& options);

// Same pipeline but reporting classification accuracy (Table 4's F1 proxy).
std::vector<PruneExperimentResult> RunAccuracyExperiment(
    Rng& rng, const std::vector<int>& dims, const ClassificationDataset& train,
    const ClassificationDataset& test, const std::vector<PruneSpec>& specs,
    const PruneExperimentOptions& options);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_PRUNING_ACCURACY_EVAL_H_
