// A small trainable MLP — the proxy model for the accuracy assessment.
//
// The paper prunes BERT / Tiny-LLaMA / Qwen2-1.5B and measures F1 /
// perplexity; without those checkpoints we train a compact MLP on synthetic
// tasks and compare the *same pruning formats at the same sparsity*. The
// ranking between formats is a property of each pattern's expressiveness at
// matched sparsity, which this proxy preserves (see DESIGN.md §1).
//
// Supports masked training: after every SGD step the pruning mask is
// re-applied, i.e. one-shot pruning followed by mask-preserving fine-tuning
// (the standard recipe of WoodFisher/SparseGPT-style pipelines).

#ifndef SAMOYEDS_SRC_PRUNING_MLP_H_
#define SAMOYEDS_SRC_PRUNING_MLP_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

class Mlp {
 public:
  // dims = {in, h1, ..., out}. Hidden activations are SiLU; output linear.
  Mlp(Rng& rng, const std::vector<int>& dims);

  int input_dim() const { return dims_.front(); }
  int output_dim() const { return dims_.back(); }
  int layer_count() const { return static_cast<int>(weights_.size()); }

  MatrixF& weight(int layer) { return weights_[static_cast<size_t>(layer)]; }
  const MatrixF& weight(int layer) const { return weights_[static_cast<size_t>(layer)]; }

  // Forward pass: x is (batch x in), result (batch x out).
  MatrixF Forward(const MatrixF& x) const;

  // One SGD step on the mean-squared-error loss against `target`
  // (batch x out). Returns the pre-step loss.
  float TrainStepMse(const MatrixF& x, const MatrixF& target, float lr);

  // One SGD step on softmax cross-entropy against integer labels. Returns
  // the pre-step mean cross-entropy (nats).
  float TrainStepCrossEntropy(const MatrixF& x, const std::vector<int>& labels, float lr);

  // Re-applies binary masks captured by SnapshotMasks (zero stays zero).
  void SnapshotMasks();
  void ReapplyMasks();
  bool has_masks() const { return !masks_.empty(); }

  // Accumulates per-weight squared gradients of the cross-entropy loss into
  // `accum` (one matrix per layer, shaped like the weights) without
  // updating any parameters — the empirical diagonal Fisher estimate used
  // by WoodFisher-style pruning scores.
  void AccumulateSquaredGradients(const MatrixF& x, const std::vector<int>& labels,
                                  std::vector<MatrixF>* accum) const;

 private:
  struct ForwardCache {
    std::vector<MatrixF> pre;   // pre-activation per layer
    std::vector<MatrixF> post;  // post-activation per layer (post[0] = input)
  };

  MatrixF ForwardCached(const MatrixF& x, ForwardCache& cache) const;
  void Backward(const ForwardCache& cache, const MatrixF& dloss_dout, float lr);

  std::vector<int> dims_;
  std::vector<MatrixF> weights_;           // layer l: (dims[l+1] x dims[l])
  std::vector<std::vector<float>> biases_;
  std::vector<Matrix<uint8_t>> masks_;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_PRUNING_MLP_H_
