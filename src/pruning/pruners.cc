#include "src/pruning/pruners.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/formats/nm24.h"

namespace samoyeds {

const char* PruneMethodName(PruneMethod m) {
  switch (m) {
    case PruneMethod::kDense:
      return "Dense";
    case PruneMethod::kUnstructured:
      return "Unstructured";
    case PruneMethod::kTwoFour:
      return "2:4";
    case PruneMethod::kVenom:
      return "VENOM";
    case PruneMethod::kSamoyeds:
      return "Samoyeds";
  }
  return "?";
}

void ApplyMagnitudeMask(MatrixF& w, double sparsity) {
  const int64_t total = w.size();
  const int64_t to_prune = static_cast<int64_t>(static_cast<double>(total) * sparsity);
  if (to_prune <= 0) {
    return;
  }
  std::vector<float> mags;
  mags.reserve(static_cast<size_t>(total));
  for (float v : w.flat()) {
    mags.push_back(std::fabs(v));
  }
  std::nth_element(mags.begin(), mags.begin() + (to_prune - 1), mags.end());
  const float threshold = mags[static_cast<size_t>(to_prune - 1)];
  int64_t pruned = 0;
  for (auto& v : w.flat()) {
    if (pruned < to_prune && std::fabs(v) <= threshold) {
      v = 0.0f;
      ++pruned;
    }
  }
}

void ApplyPruning(MatrixF& w, const PruneSpec& spec) {
  switch (spec.method) {
    case PruneMethod::kDense:
      return;
    case PruneMethod::kUnstructured:
      ApplyMagnitudeMask(w, spec.sparsity);
      return;
    case PruneMethod::kTwoFour:
      ApplyTwoFourMask(w);
      return;
    case PruneMethod::kVenom:
      ApplyVenomMask(w, spec.venom_config);
      return;
    case PruneMethod::kSamoyeds:
      ApplySamoyedsMask(w, spec.samoyeds_config);
      return;
  }
}

double MeasuredSparsity(const MatrixF& w) {
  if (w.size() == 0) {
    return 0.0;
  }
  int64_t zeros = 0;
  for (float v : w.flat()) {
    zeros += v == 0.0f;
  }
  return static_cast<double>(zeros) / static_cast<double>(w.size());
}

}  // namespace samoyeds
