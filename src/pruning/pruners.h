// Pruning front-ends for the accuracy assessment (§6.5, Tables 4 & 5).
//
// Each method zeroes weights in place according to its structural
// constraint, at a common target sparsity (the paper uses a uniform 75%):
//
//   kUnstructured — global magnitude threshold (free pattern)
//   kTwoFour      — element-wise 2:4 (fixed 50%; cuSPARSELt's limit)
//   kVenom        — V:N:M column-vector + 2:4 (VENOM's format)
//   kSamoyeds     — sub-row vector + 2:4 (the Samoyeds format)

#ifndef SAMOYEDS_SRC_PRUNING_PRUNERS_H_
#define SAMOYEDS_SRC_PRUNING_PRUNERS_H_

#include "src/formats/samoyeds_format.h"
#include "src/formats/venom.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

enum class PruneMethod {
  kDense,         // no pruning (baseline)
  kUnstructured,  // magnitude
  kTwoFour,
  kVenom,
  kSamoyeds,
};

const char* PruneMethodName(PruneMethod m);

struct PruneSpec {
  PruneMethod method = PruneMethod::kDense;
  double sparsity = 0.75;                 // for kUnstructured
  SamoyedsConfig samoyeds_config{1, 2, 32};
  VenomConfig venom_config{64, 2, 4};
};

// Zeroes pruned weights in place. The matrix keeps its dense shape so
// training code is oblivious to the format.
void ApplyPruning(MatrixF& w, const PruneSpec& spec);

// Unstructured magnitude pruning to an exact target sparsity.
void ApplyMagnitudeMask(MatrixF& w, double sparsity);

// Fraction of zero entries.
double MeasuredSparsity(const MatrixF& w);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_PRUNING_PRUNERS_H_
