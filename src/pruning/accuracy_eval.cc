#include "src/pruning/accuracy_eval.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace samoyeds {

namespace {

// Mini-batch epoch over a classification dataset; returns mean loss.
float TrainEpoch(Mlp& model, const ClassificationDataset& data, int batch, float lr, Rng& rng) {
  std::vector<int64_t> order(static_cast<size_t>(data.x.rows()));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  float loss_sum = 0.0f;
  int batches = 0;
  for (int64_t start = 0; start + batch <= data.x.rows(); start += batch) {
    MatrixF xb(batch, data.x.cols());
    std::vector<int> yb(static_cast<size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      const int64_t src = order[static_cast<size_t>(start + i)];
      for (int64_t c = 0; c < data.x.cols(); ++c) {
        xb(i, c) = data.x(src, c);
      }
      yb[static_cast<size_t>(i)] = data.labels[static_cast<size_t>(src)];
    }
    loss_sum += model.TrainStepCrossEntropy(xb, yb, lr);
    ++batches;
  }
  return batches > 0 ? loss_sum / static_cast<float>(batches) : 0.0f;
}

// Prunes the middle layers of the model (first and last stay dense, as LLM
// embedding / head layers do in the paper's pipeline).
void PruneHiddenLayers(Mlp& model, const PruneSpec& spec) {
  for (int l = 1; l + 1 < model.layer_count(); ++l) {
    ApplyPruning(model.weight(l), spec);
  }
  model.SnapshotMasks();
}

double HiddenSparsity(const Mlp& model) {
  double zeros = 0.0;
  double total = 0.0;
  for (int l = 1; l + 1 < model.layer_count(); ++l) {
    const MatrixF& w = model.weight(l);
    zeros += MeasuredSparsity(w) * static_cast<double>(w.size());
    total += static_cast<double>(w.size());
  }
  return total > 0.0 ? zeros / total : 0.0;
}

template <typename MetricFn>
std::vector<PruneExperimentResult> RunExperiment(Rng& rng, const std::vector<int>& dims,
                                                 const ClassificationDataset& train,
                                                 const ClassificationDataset& test,
                                                 const std::vector<PruneSpec>& specs,
                                                 const PruneExperimentOptions& options,
                                                 MetricFn metric) {
  Mlp dense(rng, dims);
  for (int epoch = 0; epoch < options.pretrain_epochs; ++epoch) {
    TrainEpoch(dense, train, options.batch, options.lr, rng);
  }

  std::vector<PruneExperimentResult> results;
  for (const PruneSpec& spec : specs) {
    Mlp pruned = dense;  // copy of the converged dense model
    PruneExperimentResult r;
    r.spec = spec;
    if (spec.method != PruneMethod::kDense) {
      PruneHiddenLayers(pruned, spec);
    }
    r.metric_before_finetune = metric(pruned, test);
    for (int epoch = 0; epoch < options.finetune_epochs; ++epoch) {
      TrainEpoch(pruned, train, options.batch, options.finetune_lr, rng);
    }
    r.metric_after_finetune = metric(pruned, test);
    r.measured_sparsity = HiddenSparsity(pruned);
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace

ClassificationDataset ClassificationDataset::Make(Rng& rng, int64_t samples, int features,
                                                  int classes, float noise) {
  ClassificationDataset d;
  d.num_classes = classes;
  d.x = MatrixF(samples, features);
  d.labels.resize(static_cast<size_t>(samples));
  MatrixF centers = rng.GaussianMatrix(classes, features, 1.0f);
  for (int64_t i = 0; i < samples; ++i) {
    const int label = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(classes)));
    d.labels[static_cast<size_t>(i)] = label;
    for (int64_t c = 0; c < features; ++c) {
      d.x(i, c) = centers(label, c) + noise * rng.NextGaussian();
    }
  }
  return d;
}

RegressionDataset RegressionDataset::Make(Rng& rng, int64_t samples, int features, int outputs) {
  RegressionDataset d;
  d.x = rng.GaussianMatrix(samples, features);
  Rng teacher_rng(rng.NextU64());
  const Mlp teacher(teacher_rng, {features, 2 * features, outputs});
  d.y = teacher.Forward(d.x);
  return d;
}

double EvaluateAccuracy(const Mlp& model, const ClassificationDataset& data) {
  const MatrixF out = model.Forward(data.x);
  int64_t correct = 0;
  for (int64_t r = 0; r < out.rows(); ++r) {
    int64_t best = 0;
    for (int64_t c = 1; c < out.cols(); ++c) {
      if (out(r, c) > out(r, best)) {
        best = c;
      }
    }
    correct += best == data.labels[static_cast<size_t>(r)];
  }
  return static_cast<double>(correct) / static_cast<double>(out.rows());
}

double EvaluatePerplexity(const Mlp& model, const ClassificationDataset& data) {
  const MatrixF out = model.Forward(data.x);
  double ce = 0.0;
  for (int64_t r = 0; r < out.rows(); ++r) {
    double max_logit = out(r, 0);
    for (int64_t c = 1; c < out.cols(); ++c) {
      max_logit = std::max(max_logit, static_cast<double>(out(r, c)));
    }
    double denom = 0.0;
    for (int64_t c = 0; c < out.cols(); ++c) {
      denom += std::exp(out(r, c) - max_logit);
    }
    const int label = data.labels[static_cast<size_t>(r)];
    ce -= out(r, label) - max_logit - std::log(denom);
  }
  return std::exp(ce / static_cast<double>(out.rows()));
}

double EvaluateMse(const Mlp& model, const RegressionDataset& data) {
  const MatrixF out = model.Forward(data.x);
  double mse = 0.0;
  for (int64_t r = 0; r < out.rows(); ++r) {
    for (int64_t c = 0; c < out.cols(); ++c) {
      const double d = out(r, c) - data.y(r, c);
      mse += d * d;
    }
  }
  return mse / static_cast<double>(out.size());
}

std::vector<PruneExperimentResult> RunPerplexityExperiment(
    Rng& rng, const std::vector<int>& dims, const ClassificationDataset& train,
    const ClassificationDataset& test, const std::vector<PruneSpec>& specs,
    const PruneExperimentOptions& options) {
  return RunExperiment(rng, dims, train, test, specs, options,
                       [](const Mlp& m, const ClassificationDataset& d) {
                         return EvaluatePerplexity(m, d);
                       });
}

std::vector<PruneExperimentResult> RunAccuracyExperiment(
    Rng& rng, const std::vector<int>& dims, const ClassificationDataset& train,
    const ClassificationDataset& test, const std::vector<PruneSpec>& specs,
    const PruneExperimentOptions& options) {
  return RunExperiment(rng, dims, train, test, specs, options,
                       [](const Mlp& m, const ClassificationDataset& d) {
                         return EvaluateAccuracy(m, d);
                       });
}

}  // namespace samoyeds
