#include "src/pruning/fisher.h"

#include <cassert>
#include <cmath>

namespace samoyeds {

std::vector<MatrixF> EstimateDiagonalFisher(const Mlp& model, const ClassificationDataset& data,
                                            int64_t max_samples) {
  std::vector<MatrixF> fisher;
  const int64_t samples = std::min<int64_t>(max_samples, data.x.rows());
  constexpr int64_t kChunk = 64;
  for (int64_t start = 0; start < samples; start += kChunk) {
    const int64_t count = std::min<int64_t>(kChunk, samples - start);
    MatrixF xb(count, data.x.cols());
    std::vector<int> yb(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      for (int64_t c = 0; c < data.x.cols(); ++c) {
        xb(i, c) = data.x(start + i, c);
      }
      yb[static_cast<size_t>(i)] = data.labels[static_cast<size_t>(start + i)];
    }
    model.AccumulateSquaredGradients(xb, yb, &fisher);
  }
  const float inv_batches = 1.0f / std::max<float>(1.0f, std::ceil(static_cast<float>(samples) /
                                                                   kChunk));
  for (auto& f : fisher) {
    for (auto& v : f.flat()) {
      v *= inv_batches;
    }
  }
  return fisher;
}

MatrixF FisherSaliency(const MatrixF& weights, const MatrixF& fisher_diag) {
  assert(weights.rows() == fisher_diag.rows() && weights.cols() == fisher_diag.cols());
  MatrixF scores(weights.rows(), weights.cols());
  for (int64_t r = 0; r < weights.rows(); ++r) {
    for (int64_t c = 0; c < weights.cols(); ++c) {
      scores(r, c) = weights(r, c) * weights(r, c) * fisher_diag(r, c);
    }
  }
  return scores;
}

void ApplyScoredPruning(MatrixF& w, const MatrixF& scores, const PruneSpec& spec) {
  assert(w.rows() == scores.rows() && w.cols() == scores.cols());
  // Run the structural selector on a surrogate matrix whose magnitudes are
  // the scores; its surviving positions become the mask for `w`. sqrt keeps
  // the selector's squared-norm criteria ordered identically to the scores.
  MatrixF surrogate(scores.rows(), scores.cols());
  for (int64_t r = 0; r < scores.rows(); ++r) {
    for (int64_t c = 0; c < scores.cols(); ++c) {
      surrogate(r, c) = std::sqrt(std::max(0.0f, scores(r, c))) + 1e-30f;
    }
  }
  ApplyPruning(surrogate, spec);
  for (int64_t r = 0; r < w.rows(); ++r) {
    for (int64_t c = 0; c < w.cols(); ++c) {
      if (surrogate(r, c) == 0.0f) {
        w(r, c) = 0.0f;
      }
    }
  }
}

}  // namespace samoyeds
