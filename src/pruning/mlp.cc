#include "src/pruning/mlp.h"

#include <cassert>
#include <cmath>

#include "src/tensor/gemm_ref.h"

namespace samoyeds {

namespace {

float Silu(float x) { return x / (1.0f + std::exp(-x)); }

float SiluGrad(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return s * (1.0f + x * (1.0f - s));
}

}  // namespace

Mlp::Mlp(Rng& rng, const std::vector<int>& dims) : dims_(dims) {
  assert(dims.size() >= 2);
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    const int fan_in = dims[l];
    const int fan_out = dims[l + 1];
    const float scale = std::sqrt(2.0f / static_cast<float>(fan_in));
    weights_.push_back(rng.GaussianMatrix(fan_out, fan_in, scale));
    biases_.emplace_back(static_cast<size_t>(fan_out), 0.0f);
  }
}

MatrixF Mlp::ForwardCached(const MatrixF& x, ForwardCache& cache) const {
  assert(x.cols() == input_dim());
  cache.pre.clear();
  cache.post.clear();
  cache.post.push_back(x);
  MatrixF h = x;
  for (int l = 0; l < layer_count(); ++l) {
    MatrixF z = GemmRef(h, weights_[static_cast<size_t>(l)].Transposed());
    for (int64_t r = 0; r < z.rows(); ++r) {
      for (int64_t c = 0; c < z.cols(); ++c) {
        z(r, c) += biases_[static_cast<size_t>(l)][static_cast<size_t>(c)];
      }
    }
    cache.pre.push_back(z);
    if (l + 1 < layer_count()) {
      for (auto& v : z.flat()) {
        v = Silu(v);
      }
    }
    cache.post.push_back(z);
    h = std::move(z);
  }
  return h;
}

MatrixF Mlp::Forward(const MatrixF& x) const {
  ForwardCache cache;
  return ForwardCached(x, cache);
}

void Mlp::Backward(const ForwardCache& cache, const MatrixF& dloss_dout, float lr) {
  MatrixF grad = dloss_dout;  // dL/d(pre-activation of last layer)
  for (int l = layer_count() - 1; l >= 0; --l) {
    const MatrixF& input = cache.post[static_cast<size_t>(l)];
    // Weight gradient: grad^T * input; apply SGD immediately.
    MatrixF& w = weights_[static_cast<size_t>(l)];
    const MatrixF wg = GemmRef(grad.Transposed(), input);
    for (int64_t r = 0; r < w.rows(); ++r) {
      for (int64_t c = 0; c < w.cols(); ++c) {
        w(r, c) -= lr * wg(r, c);
      }
    }
    auto& bias = biases_[static_cast<size_t>(l)];
    for (int64_t c = 0; c < grad.cols(); ++c) {
      float g = 0.0f;
      for (int64_t r = 0; r < grad.rows(); ++r) {
        g += grad(r, c);
      }
      bias[static_cast<size_t>(c)] -= lr * g;
    }
    if (l > 0) {
      // Propagate through the (pre-update would be more exact, but the
      // shared-step approximation is standard for plain SGD) weights and the
      // SiLU of the previous layer.
      MatrixF prev = GemmRef(grad, w);
      const MatrixF& pre = cache.pre[static_cast<size_t>(l - 1)];
      for (int64_t r = 0; r < prev.rows(); ++r) {
        for (int64_t c = 0; c < prev.cols(); ++c) {
          prev(r, c) *= SiluGrad(pre(r, c));
        }
      }
      grad = std::move(prev);
    }
  }
  ReapplyMasks();
}

float Mlp::TrainStepMse(const MatrixF& x, const MatrixF& target, float lr) {
  assert(target.rows() == x.rows() && target.cols() == output_dim());
  ForwardCache cache;
  const MatrixF out = ForwardCached(x, cache);
  const float inv_n = 1.0f / static_cast<float>(out.rows());
  MatrixF grad(out.rows(), out.cols());
  float loss = 0.0f;
  for (int64_t r = 0; r < out.rows(); ++r) {
    for (int64_t c = 0; c < out.cols(); ++c) {
      const float d = out(r, c) - target(r, c);
      loss += d * d;
      grad(r, c) = 2.0f * d * inv_n / static_cast<float>(out.cols());
    }
  }
  loss *= inv_n / static_cast<float>(out.cols());
  Backward(cache, grad, lr);
  return loss;
}

float Mlp::TrainStepCrossEntropy(const MatrixF& x, const std::vector<int>& labels, float lr) {
  assert(static_cast<int64_t>(labels.size()) == x.rows());
  ForwardCache cache;
  const MatrixF out = ForwardCached(x, cache);
  const float inv_n = 1.0f / static_cast<float>(out.rows());
  MatrixF grad(out.rows(), out.cols());
  float loss = 0.0f;
  for (int64_t r = 0; r < out.rows(); ++r) {
    float max_logit = out(r, 0);
    for (int64_t c = 1; c < out.cols(); ++c) {
      max_logit = std::max(max_logit, out(r, c));
    }
    float denom = 0.0f;
    for (int64_t c = 0; c < out.cols(); ++c) {
      denom += std::exp(out(r, c) - max_logit);
    }
    const int label = labels[static_cast<size_t>(r)];
    loss -= (out(r, label) - max_logit - std::log(denom));
    for (int64_t c = 0; c < out.cols(); ++c) {
      const float p = std::exp(out(r, c) - max_logit) / denom;
      grad(r, c) = (p - (c == label ? 1.0f : 0.0f)) * inv_n;
    }
  }
  loss *= inv_n;
  Backward(cache, grad, lr);
  return loss;
}

void Mlp::AccumulateSquaredGradients(const MatrixF& x, const std::vector<int>& labels,
                                     std::vector<MatrixF>* accum) const {
  assert(static_cast<int64_t>(labels.size()) == x.rows());
  assert(accum != nullptr);
  if (accum->empty()) {
    for (const auto& w : weights_) {
      accum->emplace_back(w.rows(), w.cols());
    }
  }
  ForwardCache cache;
  const MatrixF out = ForwardCached(x, cache);
  const float inv_n = 1.0f / static_cast<float>(out.rows());
  MatrixF grad(out.rows(), out.cols());
  for (int64_t r = 0; r < out.rows(); ++r) {
    float max_logit = out(r, 0);
    for (int64_t c = 1; c < out.cols(); ++c) {
      max_logit = std::max(max_logit, out(r, c));
    }
    float denom = 0.0f;
    for (int64_t c = 0; c < out.cols(); ++c) {
      denom += std::exp(out(r, c) - max_logit);
    }
    const int label = labels[static_cast<size_t>(r)];
    for (int64_t c = 0; c < out.cols(); ++c) {
      const float p = std::exp(out(r, c) - max_logit) / denom;
      grad(r, c) = (p - (c == label ? 1.0f : 0.0f)) * inv_n;
    }
  }
  // Backward pass accumulating squared weight gradients only.
  for (int l = layer_count() - 1; l >= 0; --l) {
    const MatrixF& input = cache.post[static_cast<size_t>(l)];
    const MatrixF wg = GemmRef(grad.Transposed(), input);
    MatrixF& acc = (*accum)[static_cast<size_t>(l)];
    for (int64_t r = 0; r < wg.rows(); ++r) {
      for (int64_t c = 0; c < wg.cols(); ++c) {
        acc(r, c) += wg(r, c) * wg(r, c);
      }
    }
    if (l > 0) {
      MatrixF prev = GemmRef(grad, weights_[static_cast<size_t>(l)]);
      const MatrixF& pre = cache.pre[static_cast<size_t>(l - 1)];
      for (int64_t r = 0; r < prev.rows(); ++r) {
        for (int64_t c = 0; c < prev.cols(); ++c) {
          prev(r, c) *= SiluGrad(pre(r, c));
        }
      }
      grad = std::move(prev);
    }
  }
}

void Mlp::SnapshotMasks() {
  masks_.clear();
  for (const auto& w : weights_) {
    Matrix<uint8_t> mask(w.rows(), w.cols());
    for (int64_t r = 0; r < w.rows(); ++r) {
      for (int64_t c = 0; c < w.cols(); ++c) {
        mask(r, c) = w(r, c) != 0.0f ? 1 : 0;
      }
    }
    masks_.push_back(std::move(mask));
  }
}

void Mlp::ReapplyMasks() {
  if (masks_.empty()) {
    return;
  }
  for (size_t l = 0; l < weights_.size(); ++l) {
    MatrixF& w = weights_[l];
    const auto& mask = masks_[l];
    for (int64_t r = 0; r < w.rows(); ++r) {
      for (int64_t c = 0; c < w.cols(); ++c) {
        if (!mask(r, c)) {
          w(r, c) = 0.0f;
        }
      }
    }
  }
}

}  // namespace samoyeds
