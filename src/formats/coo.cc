#include "src/formats/coo.h"

namespace samoyeds {

CooMatrix CooMatrix::FromDense(const MatrixF& dense) {
  CooMatrix m;
  m.rows = dense.rows();
  m.cols = dense.cols();
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      const float v = dense(r, c);
      if (v != 0.0f) {
        m.row_idx.push_back(static_cast<int32_t>(r));
        m.col_idx.push_back(static_cast<int32_t>(c));
        m.values.push_back(v);
      }
    }
  }
  return m;
}

MatrixF CooMatrix::ToDense() const {
  MatrixF dense(rows, cols);
  for (int64_t i = 0; i < nnz(); ++i) {
    dense(row_idx[static_cast<size_t>(i)], col_idx[static_cast<size_t>(i)]) =
        values[static_cast<size_t>(i)];
  }
  return dense;
}

}  // namespace samoyeds
