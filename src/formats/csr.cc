#include "src/formats/csr.h"

#include <cassert>

namespace samoyeds {

CsrMatrix CsrMatrix::FromDense(const MatrixF& dense) {
  CsrMatrix m;
  m.rows = dense.rows();
  m.cols = dense.cols();
  m.row_ptr.reserve(static_cast<size_t>(dense.rows()) + 1);
  m.row_ptr.push_back(0);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      const float v = dense(r, c);
      if (v != 0.0f) {
        m.col_idx.push_back(static_cast<int32_t>(c));
        m.values.push_back(v);
      }
    }
    m.row_ptr.push_back(static_cast<int64_t>(m.values.size()));
  }
  return m;
}

MatrixF CsrMatrix::ToDense() const {
  MatrixF dense(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t i = row_ptr[static_cast<size_t>(r)]; i < row_ptr[static_cast<size_t>(r) + 1]; ++i) {
      dense(r, col_idx[static_cast<size_t>(i)]) = values[static_cast<size_t>(i)];
    }
  }
  return dense;
}

MatrixF CsrMatrix::Multiply(const MatrixF& b) const {
  assert(b.rows() == cols);
  MatrixF c(rows, b.cols());
  for (int64_t r = 0; r < rows; ++r) {
    float* crow = &c(r, 0);
    for (int64_t i = row_ptr[static_cast<size_t>(r)]; i < row_ptr[static_cast<size_t>(r) + 1]; ++i) {
      const float av = values[static_cast<size_t>(i)];
      const float* brow = &b(col_idx[static_cast<size_t>(i)], 0);
      for (int64_t j = 0; j < b.cols(); ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

}  // namespace samoyeds
