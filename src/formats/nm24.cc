#include "src/formats/nm24.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

namespace samoyeds {

namespace {

// Returns the positions (ascending) of the 2 largest-magnitude elements of a
// 4-element group; ties resolved toward lower index for determinism.
std::array<int, 2> TopTwoPositions(const float* group) {
  std::array<int, 4> order = {0, 1, 2, 3};
  std::stable_sort(order.begin(), order.end(), [group](int a, int b) {
    return std::fabs(group[a]) > std::fabs(group[b]);
  });
  std::array<int, 2> kept = {order[0], order[1]};
  if (kept[0] > kept[1]) {
    std::swap(kept[0], kept[1]);
  }
  return kept;
}

}  // namespace

TwoFourMatrix TwoFourMatrix::Encode(const MatrixF& dense) {
  assert(dense.cols() % 4 == 0);
  TwoFourMatrix out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.data = MatrixF(dense.rows(), dense.cols() / 2);
  out.meta = Matrix<uint8_t>(dense.rows(), dense.cols() / 2);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t g = 0; g < dense.cols() / 4; ++g) {
      const float* group = &dense(r, g * 4);
      const auto kept = TopTwoPositions(group);
      for (int t = 0; t < 2; ++t) {
        out.data(r, g * 2 + t) = group[kept[static_cast<size_t>(t)]];
        out.meta(r, g * 2 + t) = static_cast<uint8_t>(kept[static_cast<size_t>(t)]);
      }
    }
  }
  return out;
}

MatrixF TwoFourMatrix::ToDense() const {
  MatrixF dense(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t g = 0; g < cols / 4; ++g) {
      for (int t = 0; t < 2; ++t) {
        dense(r, g * 4 + meta(r, g * 2 + t)) = data(r, g * 2 + t);
      }
    }
  }
  return dense;
}

bool TwoFourMatrix::MetadataOrdered() const {
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t g = 0; g < cols / 4; ++g) {
      const uint8_t p0 = meta(r, g * 2);
      const uint8_t p1 = meta(r, g * 2 + 1);
      if (p0 >= 4 || p1 >= 4 || p0 >= p1) {
        return false;
      }
    }
  }
  return true;
}

void ApplyTwoFourMask(MatrixF& dense) {
  assert(dense.cols() % 4 == 0);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t g = 0; g < dense.cols() / 4; ++g) {
      float* group = &dense(r, g * 4);
      const auto kept = TopTwoPositions(group);
      for (int p = 0; p < 4; ++p) {
        if (p != kept[0] && p != kept[1]) {
          group[p] = 0.0f;
        }
      }
    }
  }
}

}  // namespace samoyeds
