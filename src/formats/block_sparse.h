// Block-sparse format — the representation behind the MegaBlocks-like
// baseline (§3.3). Non-zero blocks of a fixed size are stored densely with
// a bitmap describing the block topology; in MoE execution the topology
// encodes which (token-block, expert) pairs participate, letting variable
// per-expert token counts run without padding.

#ifndef SAMOYEDS_SRC_FORMATS_BLOCK_SPARSE_H_
#define SAMOYEDS_SRC_FORMATS_BLOCK_SPARSE_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"

namespace samoyeds {

struct BlockSparseMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  int block_size = 128;
  // Row-major over the block grid; true = block present.
  std::vector<bool> block_map;
  // Dense storage of present blocks, in block-map order.
  std::vector<MatrixF> blocks;

  int64_t grid_rows() const { return (rows + block_size - 1) / block_size; }
  int64_t grid_cols() const { return (cols + block_size - 1) / block_size; }
  int64_t present_blocks() const { return static_cast<int64_t>(blocks.size()); }
  double block_density() const {
    const int64_t total = grid_rows() * grid_cols();
    return total == 0 ? 0.0 : static_cast<double>(present_blocks()) / static_cast<double>(total);
  }

  // Builds from dense, keeping blocks that contain any non-zero.
  static BlockSparseMatrix FromDense(const MatrixF& dense, int block_size);
  MatrixF ToDense() const;

  // C = this * B.
  MatrixF Multiply(const MatrixF& b) const;

  int64_t StorageBytes() const {
    return present_blocks() * block_size * block_size * 2 + grid_rows() * grid_cols() / 8;
  }
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_BLOCK_SPARSE_H_
