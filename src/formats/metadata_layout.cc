#include "src/formats/metadata_layout.h"

#include <cassert>

namespace samoyeds {

namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

std::vector<uint32_t> PackMetadata(const Matrix<uint8_t>& meta, bool reorganized) {
  const int64_t tile_rows = CeilDiv(meta.rows(), kMetaTileDim);
  const int64_t tile_cols = CeilDiv(meta.cols(), kMetaTileDim);
  const int64_t padded_rows = tile_rows * kMetaTileDim;
  const int64_t padded_cols = tile_cols * kMetaTileDim;
  const int64_t total_entries = padded_rows * padded_cols;
  assert(total_entries % 16 == 0);
  std::vector<uint32_t> words(static_cast<size_t>(total_entries / 16), 0);

  for (int64_t r = 0; r < meta.rows(); ++r) {
    for (int64_t c = 0; c < meta.cols(); ++c) {
      const uint8_t value = meta(r, c);
      assert(value < 4);
      int64_t out_r = r;
      int64_t out_c = c;
      if (reorganized) {
        const auto [dr, dc] = MetadataDeviceLocation(static_cast<int>(r % kMetaTileDim),
                                                     static_cast<int>(c % kMetaTileDim));
        out_r = r / kMetaTileDim * kMetaTileDim + dr;
        out_c = c / kMetaTileDim * kMetaTileDim + dc;
      }
      const int64_t linear = out_r * padded_cols + out_c;
      const int64_t word = linear / 16;
      const int shift = static_cast<int>(linear % 16) * 2;
      words[static_cast<size_t>(word)] |= static_cast<uint32_t>(value) << shift;
    }
  }
  return words;
}

Matrix<uint8_t> UnpackMetadata(const std::vector<uint32_t>& words, int64_t rows, int64_t cols,
                               bool reorganized) {
  const int64_t tile_cols = CeilDiv(cols, kMetaTileDim);
  const int64_t padded_cols = tile_cols * kMetaTileDim;
  Matrix<uint8_t> meta(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      int64_t in_r = r;
      int64_t in_c = c;
      if (reorganized) {
        const auto [dr, dc] = MetadataDeviceLocation(static_cast<int>(r % kMetaTileDim),
                                                     static_cast<int>(c % kMetaTileDim));
        in_r = r / kMetaTileDim * kMetaTileDim + dr;
        in_c = c / kMetaTileDim * kMetaTileDim + dc;
      }
      const int64_t linear = in_r * padded_cols + in_c;
      const int64_t word = linear / 16;
      const int shift = static_cast<int>(linear % 16) * 2;
      meta(r, c) = static_cast<uint8_t>((words[static_cast<size_t>(word)] >> shift) & 0x3u);
    }
  }
  return meta;
}

}  // namespace samoyeds
