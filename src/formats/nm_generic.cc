#include "src/formats/nm_generic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace samoyeds {

namespace {

// Ascending positions of the `n` largest-|.| elements of an m-wide group.
std::vector<int> TopPositions(const float* group, int n, int m) {
  std::vector<int> order(static_cast<size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [group](int a, int b) {
    return std::fabs(group[a]) > std::fabs(group[b]);
  });
  order.resize(static_cast<size_t>(n));
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

NmMatrix NmMatrix::Encode(const MatrixF& dense, const NmConfig& config) {
  assert(config.IsValid());
  assert(dense.cols() % config.m == 0);
  NmMatrix out;
  out.config = config;
  out.rows = dense.rows();
  out.cols = dense.cols();
  const int64_t kept_cols = dense.cols() / config.m * config.n;
  out.data = MatrixF(dense.rows(), kept_cols);
  out.offsets = Matrix<uint8_t>(dense.rows(), kept_cols);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t g = 0; g < dense.cols() / config.m; ++g) {
      const float* group = &dense(r, g * config.m);
      const auto kept = TopPositions(group, config.n, config.m);
      for (int t = 0; t < config.n; ++t) {
        out.data(r, g * config.n + t) = group[kept[static_cast<size_t>(t)]];
        out.offsets(r, g * config.n + t) = static_cast<uint8_t>(kept[static_cast<size_t>(t)]);
      }
    }
  }
  return out;
}

MatrixF NmMatrix::ToDense() const {
  MatrixF dense(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t g = 0; g < cols / config.m; ++g) {
      for (int t = 0; t < config.n; ++t) {
        dense(r, g * config.m + offsets(r, g * config.n + t)) = data(r, g * config.n + t);
      }
    }
  }
  return dense;
}

bool NmMatrix::OffsetsOrdered() const {
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t g = 0; g < cols / config.m; ++g) {
      int prev = -1;
      for (int t = 0; t < config.n; ++t) {
        const int pos = offsets(r, g * config.n + t);
        if (pos >= config.m || pos <= prev) {
          return false;
        }
        prev = pos;
      }
    }
  }
  return true;
}

void ApplyNmMask(MatrixF& dense, const NmConfig& config) {
  assert(dense.cols() % config.m == 0);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t g = 0; g < dense.cols() / config.m; ++g) {
      float* group = &dense(r, g * config.m);
      const auto kept = TopPositions(group, config.n, config.m);
      size_t next = 0;
      for (int p = 0; p < config.m; ++p) {
        if (next < kept.size() && kept[next] == p) {
          ++next;
        } else {
          group[p] = 0.0f;
        }
      }
    }
  }
}

}  // namespace samoyeds
