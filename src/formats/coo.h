// Coordinate-list (COO) unstructured sparse format (§2.2, Fig. 3).

#ifndef SAMOYEDS_SRC_FORMATS_COO_H_
#define SAMOYEDS_SRC_FORMATS_COO_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"

namespace samoyeds {

struct CooMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int32_t> row_idx;
  std::vector<int32_t> col_idx;
  std::vector<float> values;

  int64_t nnz() const { return static_cast<int64_t>(values.size()); }
  double density() const {
    return rows * cols == 0 ? 0.0 : static_cast<double>(nnz()) / static_cast<double>(rows * cols);
  }

  static CooMatrix FromDense(const MatrixF& dense);
  MatrixF ToDense() const;
  // Storage footprint in bytes (fp32 value + two int32 coordinates).
  int64_t StorageBytes() const { return nnz() * (4 + 4 + 4); }
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_COO_H_
