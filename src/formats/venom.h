// V:N:M format (VENOM, Castro et al., SC'23) — the strongest structured
// sparse baseline in the paper's evaluation.
//
// The matrix is divided into stripes of V rows. Within each stripe, columns
// are grouped into panels of M; N columns of every panel are kept (vector
// granularity V along the row axis), and the kept columns are additionally
// pruned 2:4 element-wise along rows so the result maps onto the SpTC.
// Density = (N/M) * 1/2; the paper's accuracy comparison uses 75% total
// sparsity, i.e. N:M = 2:4 with the default V = 64.
//
// Structural contrast with the Samoyeds format: VENOM selects *column*
// vectors (input-channel granularity) while Samoyeds selects *sub-rows*
// (output-neuron granularity per V-wide input slice) with a much shorter
// vector length — the finer granularity is what preserves accuracy (§6.5).

#ifndef SAMOYEDS_SRC_FORMATS_VENOM_H_
#define SAMOYEDS_SRC_FORMATS_VENOM_H_

#include <cstdint>

#include "src/tensor/matrix.h"

namespace samoyeds {

struct VenomConfig {
  int v = 64;  // stripe height (vector length)
  int n = 2;   // columns kept per panel
  int m = 4;   // columns per panel

  bool IsValid() const { return v >= 1 && n >= 1 && n <= m; }
  double density() const { return static_cast<double>(n) / m * 0.5; }
  double sparsity() const { return 1.0 - density(); }
};

struct VenomMatrix {
  VenomConfig config;
  int64_t rows = 0;
  int64_t cols = 0;

  // Kept values after both pruning levels, compressed along columns:
  // rows x (cols * N/M / 2).
  MatrixF data;
  // Kept-column index within each panel: (rows/V) x (cols/M * N).
  Matrix<uint8_t> col_indices;
  // 2-bit positions for the second-level 2:4: rows x (cols * N/M / 2).
  Matrix<uint8_t> meta;

  int64_t stripe_count() const { return rows / config.v; }
  int64_t panels() const { return cols / config.m; }
  int64_t kept_cols() const { return panels() * config.n; }

  static VenomMatrix Encode(const MatrixF& dense, const VenomConfig& config);
  MatrixF ToDense() const;

  int64_t StorageBytes() const {
    const int64_t data_elems = rows * kept_cols() / 2;
    return data_elems * 2 + data_elems / 4 + stripe_count() * kept_cols();
  }
};

// Mask-only application for pruning studies.
void ApplyVenomMask(MatrixF& dense, const VenomConfig& config);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_VENOM_H_
