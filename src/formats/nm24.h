// 2:4 element-wise structured sparse format (§2.3, Fig. 4) — the encoding
// consumed directly by the Sparse Tensor Core and by the cuSPARSELt-like
// baseline.
//
// A dense m x k matrix is pruned so that every contiguous group of 4
// elements along a row keeps at most 2 non-zeros, then compressed into a
// m x k/2 value matrix plus a 2-bit-per-kept-element metadata matrix
// recording each kept element's position inside its group.

#ifndef SAMOYEDS_SRC_FORMATS_NM24_H_
#define SAMOYEDS_SRC_FORMATS_NM24_H_

#include <cstdint>

#include "src/tensor/matrix.h"

namespace samoyeds {

struct TwoFourMatrix {
  int64_t rows = 0;
  int64_t cols = 0;                 // original (uncompressed) column count
  MatrixF data;                     // rows x cols/2 kept values
  Matrix<uint8_t> meta;             // rows x cols/2 positions in [0, 4)

  int64_t compressed_cols() const { return cols / 2; }

  // Prunes (magnitude, keep-2-largest-per-group) and encodes. `dense.cols()`
  // must be a multiple of 4.
  static TwoFourMatrix Encode(const MatrixF& dense);

  MatrixF ToDense() const;

  // True if metadata positions are strictly ascending within each group, as
  // the hardware requires.
  bool MetadataOrdered() const;

  // Bytes of device storage: bf16 values + packed 2-bit metadata.
  int64_t StorageBytes() const { return compressed_cols() * rows * 2 + compressed_cols() * rows / 4; }
};

// Applies the 2:4 magnitude mask in place without compressing (utility for
// pruning studies): zeroes all but the 2 largest-|.| elements of each
// 4-group along rows.
void ApplyTwoFourMask(MatrixF& dense);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_NM24_H_
