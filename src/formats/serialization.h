// Binary serialization of the Samoyeds sparse format — the deployment path
// between the offline pruning stage (§6.5) and the inference runtime.
//
// Layout: magic, version, config, shape, then the three component matrices
// in row-major order. All integers little-endian fixed width; values fp32.

#ifndef SAMOYEDS_SRC_FORMATS_SERIALIZATION_H_
#define SAMOYEDS_SRC_FORMATS_SERIALIZATION_H_

#include <iosfwd>
#include <optional>

#include "src/formats/samoyeds_format.h"

namespace samoyeds {

inline constexpr uint32_t kSamoyedsMagic = 0x534d4f59;  // "SMOY"
inline constexpr uint32_t kSamoyedsVersion = 1;

// Writes the matrix; returns false on stream failure.
bool SaveSamoyedsMatrix(const SamoyedsMatrix& m, std::ostream& out);

// Reads a matrix; returns nullopt on malformed input (bad magic/version,
// inconsistent shapes, truncated payload, out-of-range indices/metadata).
std::optional<SamoyedsMatrix> LoadSamoyedsMatrix(std::istream& in);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_SERIALIZATION_H_
