#include "src/formats/block_sparse.h"

#include <cassert>

namespace samoyeds {

BlockSparseMatrix BlockSparseMatrix::FromDense(const MatrixF& dense, int block_size) {
  BlockSparseMatrix out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.block_size = block_size;
  const int64_t gr = out.grid_rows();
  const int64_t gc = out.grid_cols();
  out.block_map.assign(static_cast<size_t>(gr * gc), false);

  for (int64_t br = 0; br < gr; ++br) {
    for (int64_t bc = 0; bc < gc; ++bc) {
      const int64_t r0 = br * block_size;
      const int64_t c0 = bc * block_size;
      const int64_t r1 = std::min<int64_t>(r0 + block_size, dense.rows());
      const int64_t c1 = std::min<int64_t>(c0 + block_size, dense.cols());
      bool any = false;
      for (int64_t r = r0; r < r1 && !any; ++r) {
        for (int64_t c = c0; c < c1; ++c) {
          if (dense(r, c) != 0.0f) {
            any = true;
            break;
          }
        }
      }
      if (any) {
        out.block_map[static_cast<size_t>(br * gc + bc)] = true;
        MatrixF block(block_size, block_size);
        for (int64_t r = r0; r < r1; ++r) {
          for (int64_t c = c0; c < c1; ++c) {
            block(r - r0, c - c0) = dense(r, c);
          }
        }
        out.blocks.push_back(std::move(block));
      }
    }
  }
  return out;
}

MatrixF BlockSparseMatrix::ToDense() const {
  MatrixF dense(rows, cols);
  size_t next = 0;
  for (int64_t br = 0; br < grid_rows(); ++br) {
    for (int64_t bc = 0; bc < grid_cols(); ++bc) {
      if (!block_map[static_cast<size_t>(br * grid_cols() + bc)]) {
        continue;
      }
      const MatrixF& block = blocks[next++];
      const int64_t r0 = br * block_size;
      const int64_t c0 = bc * block_size;
      for (int64_t r = 0; r < block_size && r0 + r < rows; ++r) {
        for (int64_t c = 0; c < block_size && c0 + c < cols; ++c) {
          dense(r0 + r, c0 + c) = block(r, c);
        }
      }
    }
  }
  return dense;
}

MatrixF BlockSparseMatrix::Multiply(const MatrixF& b) const {
  assert(b.rows() == cols);
  MatrixF c(rows, b.cols());
  size_t next = 0;
  for (int64_t br = 0; br < grid_rows(); ++br) {
    for (int64_t bc = 0; bc < grid_cols(); ++bc) {
      if (!block_map[static_cast<size_t>(br * grid_cols() + bc)]) {
        continue;
      }
      const MatrixF& block = blocks[next++];
      const int64_t r0 = br * block_size;
      const int64_t c0 = bc * block_size;
      for (int64_t r = 0; r < block_size && r0 + r < rows; ++r) {
        for (int64_t k = 0; k < block_size && c0 + k < cols; ++k) {
          const float av = block(r, k);
          if (av == 0.0f) {
            continue;
          }
          for (int64_t j = 0; j < b.cols(); ++j) {
            c(r0 + r, j) += av * b(c0 + k, j);
          }
        }
      }
    }
  }
  return c;
}

}  // namespace samoyeds
