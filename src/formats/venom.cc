#include "src/formats/venom.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "src/formats/nm24.h"

namespace samoyeds {

namespace {

// Ascending indices of the n columns with largest L2 norm inside one
// V-row x M-column panel.
std::vector<int> TopColumns(const MatrixF& dense, int64_t stripe, int64_t panel,
                            const VenomConfig& cfg) {
  std::vector<double> norms(static_cast<size_t>(cfg.m), 0.0);
  for (int c = 0; c < cfg.m; ++c) {
    double sum = 0.0;
    for (int r = 0; r < cfg.v; ++r) {
      const double x = dense(stripe * cfg.v + r, panel * cfg.m + c);
      sum += x * x;
    }
    norms[static_cast<size_t>(c)] = sum;
  }
  std::vector<int> order(static_cast<size_t>(cfg.m));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&norms](int a, int b) { return norms[static_cast<size_t>(a)] > norms[static_cast<size_t>(b)]; });
  order.resize(static_cast<size_t>(cfg.n));
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

VenomMatrix VenomMatrix::Encode(const MatrixF& dense, const VenomConfig& config) {
  assert(config.IsValid());
  assert(dense.rows() % config.v == 0);
  assert(dense.cols() % config.m == 0);

  VenomMatrix out;
  out.config = config;
  out.rows = dense.rows();
  out.cols = dense.cols();
  const int64_t kept = out.kept_cols();
  assert(kept % 4 == 0);

  out.col_indices = Matrix<uint8_t>(out.stripe_count(), kept);

  // First level: gather kept columns per stripe into a compacted matrix.
  MatrixF compacted(dense.rows(), kept);
  for (int64_t s = 0; s < out.stripe_count(); ++s) {
    for (int64_t p = 0; p < out.panels(); ++p) {
      const auto cols_kept = TopColumns(dense, s, p, config);
      for (int t = 0; t < config.n; ++t) {
        const int64_t kc = p * config.n + t;
        out.col_indices(s, kc) = static_cast<uint8_t>(cols_kept[static_cast<size_t>(t)]);
        for (int r = 0; r < config.v; ++r) {
          compacted(s * config.v + r, kc) =
              dense(s * config.v + r, p * config.m + cols_kept[static_cast<size_t>(t)]);
        }
      }
    }
  }

  // Second level: 2:4 along rows of the compacted matrix.
  const TwoFourMatrix enc = TwoFourMatrix::Encode(compacted);
  out.data = enc.data;
  out.meta = enc.meta;
  return out;
}

MatrixF VenomMatrix::ToDense() const {
  // Undo the 2:4 level first.
  TwoFourMatrix tf;
  tf.rows = rows;
  tf.cols = kept_cols();
  tf.data = data;
  tf.meta = meta;
  const MatrixF compacted = tf.ToDense();

  MatrixF dense(rows, cols);
  for (int64_t s = 0; s < stripe_count(); ++s) {
    for (int64_t p = 0; p < panels(); ++p) {
      for (int t = 0; t < config.n; ++t) {
        const int64_t kc = p * config.n + t;
        const int orig_col = col_indices(s, kc);
        for (int r = 0; r < config.v; ++r) {
          dense(s * config.v + r, p * config.m + orig_col) = compacted(s * config.v + r, kc);
        }
      }
    }
  }
  return dense;
}

void ApplyVenomMask(MatrixF& dense, const VenomConfig& config) {
  const VenomMatrix enc = VenomMatrix::Encode(dense, config);
  dense = enc.ToDense();
}

}  // namespace samoyeds
