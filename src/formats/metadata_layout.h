// Reorganized metadata packing (§4.4, Fig. 10).
//
// SpTC metadata is a 2-bit matrix. For the mma.sp.m16n8k32 instruction each
// thread must assemble a 32-bit register holding 16 2-bit entries, but the
// natural row-major layout makes those entries non-contiguous in device
// memory. Samoyeds permutes each 16x16 2-bit tile so that every thread's
// metadata becomes one aligned 32-bit word:
//
//   [row, col]  ->  [row % 8 * 2 + col / 8,  col % 8 + row / 8 * 8]
//
// This header provides the mapping, its inverse, and pack/unpack helpers
// between the unpacked (one byte per 2-bit entry) representation used by the
// functional model and the bit-packed device representation used for
// traffic accounting.

#ifndef SAMOYEDS_SRC_FORMATS_METADATA_LAYOUT_H_
#define SAMOYEDS_SRC_FORMATS_METADATA_LAYOUT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/tensor/matrix.h"

namespace samoyeds {

inline constexpr int kMetaTileDim = 16;  // the permutation operates on 16x16 tiles

// Forward mapping within one 16x16 tile.
inline std::pair<int, int> MetadataDeviceLocation(int row, int col) {
  return {row % 8 * 2 + col / 8, col % 8 + row / 8 * 8};
}

// Inverse mapping (device -> logical).
inline std::pair<int, int> MetadataLogicalLocation(int dev_row, int dev_col) {
  const int row = dev_col / 8 * 8 + dev_row / 2;
  const int col = dev_row % 2 * 8 + dev_col % 8;
  return {row, col};
}

// Packs an unpacked 2-bit matrix (one uint8 per entry, values < 4) into
// 32-bit words. With `reorganized` the Fig. 10 permutation is applied per
// 16x16 tile first (tiles are padded conceptually with zeros if the matrix
// is not a multiple of 16). Words are emitted row-major over the (possibly
// permuted) layout, 16 entries per word, low bits first.
std::vector<uint32_t> PackMetadata(const Matrix<uint8_t>& meta, bool reorganized);

// Inverse of PackMetadata; `rows`/`cols` give the unpacked shape.
Matrix<uint8_t> UnpackMetadata(const std::vector<uint32_t>& words, int64_t rows, int64_t cols,
                               bool reorganized);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_METADATA_LAYOUT_H_
