#include "src/formats/serialization.h"

#include <cstdint>
#include <istream>
#include <ostream>

namespace samoyeds {

namespace {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteMatrix(std::ostream& out, const Matrix<T>& m) {
  WritePod(out, static_cast<int64_t>(m.rows()));
  WritePod(out, static_cast<int64_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(T)));
}

template <typename T>
bool ReadMatrix(std::istream& in, Matrix<T>* m, int64_t expect_rows, int64_t expect_cols) {
  int64_t rows = 0;
  int64_t cols = 0;
  if (!ReadPod(in, &rows) || !ReadPod(in, &cols)) {
    return false;
  }
  if (rows != expect_rows || cols != expect_cols || rows < 0 || cols < 0) {
    return false;
  }
  *m = Matrix<T>(rows, cols);
  in.read(reinterpret_cast<char*>(m->data()),
          static_cast<std::streamsize>(m->size() * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

bool SaveSamoyedsMatrix(const SamoyedsMatrix& m, std::ostream& out) {
  WritePod(out, kSamoyedsMagic);
  WritePod(out, kSamoyedsVersion);
  WritePod(out, static_cast<int32_t>(m.config.n));
  WritePod(out, static_cast<int32_t>(m.config.m));
  WritePod(out, static_cast<int32_t>(m.config.v));
  WritePod(out, m.rows);
  WritePod(out, m.cols);
  WriteMatrix(out, m.data);
  WriteMatrix(out, m.indices);
  WriteMatrix(out, m.meta);
  return static_cast<bool>(out);
}

std::optional<SamoyedsMatrix> LoadSamoyedsMatrix(std::istream& in) {
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadPod(in, &magic) || magic != kSamoyedsMagic || !ReadPod(in, &version) ||
      version != kSamoyedsVersion) {
    return std::nullopt;
  }
  SamoyedsMatrix m;
  int32_t n = 0;
  int32_t mm = 0;
  int32_t v = 0;
  if (!ReadPod(in, &n) || !ReadPod(in, &mm) || !ReadPod(in, &v)) {
    return std::nullopt;
  }
  m.config = SamoyedsConfig{n, mm, v};
  if (!m.config.IsValid()) {
    return std::nullopt;
  }
  if (!ReadPod(in, &m.rows) || !ReadPod(in, &m.cols) || m.rows < 0 || m.cols < 0 ||
      m.rows % m.config.m != 0 || m.cols % m.config.v != 0) {
    return std::nullopt;
  }
  if (!ReadMatrix(in, &m.data, m.compressed_rows(), m.compressed_cols()) ||
      !ReadMatrix(in, &m.indices, m.compressed_rows(), m.block_cols()) ||
      !ReadMatrix(in, &m.meta, m.compressed_rows(), m.compressed_cols())) {
    return std::nullopt;
  }
  if (!m.IsWellFormed()) {
    return std::nullopt;
  }
  return m;
}

}  // namespace samoyeds
