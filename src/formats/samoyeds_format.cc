#include "src/formats/samoyeds_format.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/formats/nm24.h"

namespace samoyeds {

namespace {

// Indices (ascending) of the `n` sub-rows with largest L2 norm within one
// M x V block. `norms` has M entries.
std::vector<int> TopSubRows(const std::vector<double>& norms, int n) {
  std::vector<int> order(norms.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&norms](int a, int b) { return norms[static_cast<size_t>(a)] > norms[static_cast<size_t>(b)]; });
  order.resize(static_cast<size_t>(n));
  std::sort(order.begin(), order.end());
  return order;
}

std::vector<double> BlockSubRowNorms(const MatrixF& dense, int64_t block_row, int64_t block_col,
                                     const SamoyedsConfig& cfg) {
  std::vector<double> norms(static_cast<size_t>(cfg.m), 0.0);
  for (int sr = 0; sr < cfg.m; ++sr) {
    double sum = 0.0;
    const int64_t r = block_row * cfg.m + sr;
    for (int c = 0; c < cfg.v; ++c) {
      const double x = dense(r, block_col * cfg.v + c);
      sum += x * x;
    }
    norms[static_cast<size_t>(sr)] = sum;
  }
  return norms;
}

}  // namespace

SamoyedsMatrix SamoyedsMatrix::Encode(const MatrixF& dense, const SamoyedsConfig& config) {
  assert(config.IsValid());
  assert(dense.rows() % config.m == 0);
  assert(dense.cols() % config.v == 0);

  SamoyedsMatrix out;
  out.config = config;
  out.rows = dense.rows();
  out.cols = dense.cols();
  const int64_t c_rows = out.compressed_rows();
  out.data = MatrixF(c_rows, out.compressed_cols());
  out.indices = Matrix<uint8_t>(c_rows, out.block_cols());
  out.meta = Matrix<uint8_t>(c_rows, out.compressed_cols());

  const int64_t n_block_rows = dense.rows() / config.m;
  const int64_t n_block_cols = out.block_cols();

  // Scratch: one kept sub-row in dense form, then 2:4-encoded.
  MatrixF subrow(1, config.v);
  for (int64_t br = 0; br < n_block_rows; ++br) {
    for (int64_t bc = 0; bc < n_block_cols; ++bc) {
      const auto norms = BlockSubRowNorms(dense, br, bc, config);
      const auto kept = TopSubRows(norms, config.n);
      for (int t = 0; t < config.n; ++t) {
        const int orig_sr = kept[static_cast<size_t>(t)];
        const int64_t cr = br * config.n + t;  // compressed row
        out.indices(cr, bc) = static_cast<uint8_t>(orig_sr);
        for (int c = 0; c < config.v; ++c) {
          subrow(0, c) = dense(br * config.m + orig_sr, bc * config.v + c);
        }
        const TwoFourMatrix enc = TwoFourMatrix::Encode(subrow);
        for (int c = 0; c < config.v / 2; ++c) {
          out.data(cr, bc * (config.v / 2) + c) = enc.data(0, c);
          out.meta(cr, bc * (config.v / 2) + c) = enc.meta(0, c);
        }
      }
    }
  }
  return out;
}

MatrixF SamoyedsMatrix::ToDense() const {
  MatrixF dense(rows, cols);
  const int64_t n_block_rows = rows / config.m;
  for (int64_t br = 0; br < n_block_rows; ++br) {
    for (int64_t bc = 0; bc < block_cols(); ++bc) {
      for (int t = 0; t < config.n; ++t) {
        const int64_t cr = br * config.n + t;
        const int orig_sr = indices(cr, bc);
        for (int g = 0; g < config.v / 4; ++g) {
          for (int e = 0; e < 2; ++e) {
            const int64_t cc = bc * (config.v / 2) + g * 2 + e;
            const int pos = meta(cr, cc);
            dense(br * config.m + orig_sr, bc * config.v + g * 4 + pos) = data(cr, cc);
          }
        }
      }
    }
  }
  return dense;
}

bool SamoyedsMatrix::IsWellFormed() const {
  if (!config.IsValid() || rows % config.m != 0 || cols % config.v != 0) {
    return false;
  }
  const int64_t n_block_rows = rows / config.m;
  for (int64_t br = 0; br < n_block_rows; ++br) {
    for (int64_t bc = 0; bc < block_cols(); ++bc) {
      int prev = -1;
      for (int t = 0; t < config.n; ++t) {
        const int idx = indices(br * config.n + t, bc);
        if (idx >= config.m || idx <= prev) {
          return false;  // out of range or not strictly ascending
        }
        prev = idx;
      }
    }
  }
  for (int64_t r = 0; r < compressed_rows(); ++r) {
    for (int64_t g = 0; g < compressed_cols() / 2; ++g) {
      const uint8_t p0 = meta(r, g * 2);
      const uint8_t p1 = meta(r, g * 2 + 1);
      if (p0 >= 4 || p1 >= 4 || p0 >= p1) {
        return false;
      }
    }
  }
  return true;
}

void ApplySamoyedsMask(MatrixF& dense, const SamoyedsConfig& config) {
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(dense, config);
  dense = enc.ToDense();
}

}  // namespace samoyeds
