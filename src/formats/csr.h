// Compressed Sparse Row (CSR) unstructured format (§2.2) — the
// representation used by the Sputnik-like baseline kernel.

#ifndef SAMOYEDS_SRC_FORMATS_CSR_H_
#define SAMOYEDS_SRC_FORMATS_CSR_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"

namespace samoyeds {

struct CsrMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int64_t> row_ptr;  // size rows + 1
  std::vector<int32_t> col_idx;
  std::vector<float> values;

  int64_t nnz() const { return static_cast<int64_t>(values.size()); }
  double density() const {
    return rows * cols == 0 ? 0.0 : static_cast<double>(nnz()) / static_cast<double>(rows * cols);
  }

  static CsrMatrix FromDense(const MatrixF& dense);
  MatrixF ToDense() const;

  // C = this * B, dense B. Reference semantics for the Sputnik baseline.
  MatrixF Multiply(const MatrixF& b) const;

  int64_t StorageBytes() const {
    return static_cast<int64_t>(row_ptr.size()) * 8 + nnz() * (4 + 4);
  }
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_CSR_H_
