// The Samoyeds dual-side sparse data format — weight side (§4.1, Fig. 7).
//
// A dense m x k weight matrix is segmented into structured sparse blocks of
// M sub-rows x V columns. Within each block only N sub-rows (1 x V vectors)
// are retained — *independently per block column* — and the retained
// sub-rows are further pruned 2:4 element-wise to satisfy the SpTC ISA.
//
// The encoding produces three components:
//   data    (m/M*N) x (k/2)  kept values, compressed along both axes
//   indices (m/M*N) x (k/V)  original sub-row index of each compressed row,
//                            per block column
//   meta    (m/M*N) x (k/2)  2-bit in-group positions for the SpTC
//
// Overall sparsity = (1 - N/M) + (N/M) * 1/2. The paper's configurations
// (N,M,V) = (1,2,16), (1,2,32), (4,8,32), (8,16,32) all give 75%.
//
// The input side of the dual-side format (the SEL selection array) lives in
// src/formats/sel.h.

#ifndef SAMOYEDS_SRC_FORMATS_SAMOYEDS_FORMAT_H_
#define SAMOYEDS_SRC_FORMATS_SAMOYEDS_FORMAT_H_

#include <cstdint>

#include "src/tensor/matrix.h"

namespace samoyeds {

struct SamoyedsConfig {
  int n = 1;   // sub-rows kept per block
  int m = 2;   // sub-rows per block
  int v = 32;  // sub-row (vector) length; multiple of 4

  bool IsValid() const { return n >= 1 && n <= m && v >= 4 && v % 4 == 0; }

  // Fraction of weights that survive pruning.
  double density() const { return static_cast<double>(n) / m * 0.5; }
  double sparsity() const { return 1.0 - density(); }
};

struct SamoyedsMatrix {
  SamoyedsConfig config;
  int64_t rows = 0;  // original m
  int64_t cols = 0;  // original k

  MatrixF data;             // (rows/M*N) x (cols/2)
  Matrix<uint8_t> indices;  // (rows/M*N) x (cols/V), values in [0, M)
  Matrix<uint8_t> meta;     // (rows/M*N) x (cols/2), values in [0, 4)

  int64_t compressed_rows() const { return rows / config.m * config.n; }
  int64_t compressed_cols() const { return cols / 2; }
  int64_t block_cols() const { return cols / config.v; }

  // Magnitude-based encode: per (block-row, block-column), keep the N
  // sub-rows with the largest L2 norm (ascending original order), then 2:4
  // keep-largest within each 4-group. Requires rows % M == 0, cols % V == 0.
  static SamoyedsMatrix Encode(const MatrixF& dense, const SamoyedsConfig& config);

  MatrixF ToDense() const;

  // Internal consistency: index ranges, ascending kept sub-rows per block,
  // ordered 2:4 metadata.
  bool IsWellFormed() const;

  // Device storage: bf16 data + packed 2-bit metadata + uint8 indices.
  int64_t StorageBytes() const {
    return compressed_rows() * compressed_cols() * 2 +  // bf16 data
           compressed_rows() * compressed_cols() / 4 +  // 2-bit metadata
           compressed_rows() * block_cols();            // uint8 indices
  }
};

// Zeroes everything the Samoyeds encoding would drop, without compressing
// (mask-application utility for the accuracy studies of §6.5).
void ApplySamoyedsMask(MatrixF& dense, const SamoyedsConfig& config);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_SAMOYEDS_FORMAT_H_
