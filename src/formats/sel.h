// Selection array (SEL) — the input-side half of the Samoyeds dual-side
// format (§4.1, right of Fig. 7).
//
// In MoE execution, the tokens routed to one expert form a subset of the
// activation matrix's columns (after the in-kernel transposition of §4.5).
// A Selection records which columns participate, in the order the kernel
// will produce them in the compressed output layout.

#ifndef SAMOYEDS_SRC_FORMATS_SEL_H_
#define SAMOYEDS_SRC_FORMATS_SEL_H_

#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

#include "src/tensor/matrix.h"

namespace samoyeds {

struct Selection {
  // Column indices into the full activation matrix, strictly increasing.
  std::vector<int32_t> indices;
  // Number of columns in the full matrix.
  int64_t full_size = 0;

  int64_t selected() const { return static_cast<int64_t>(indices.size()); }

  double density() const {
    return full_size == 0 ? 0.0 : static_cast<double>(selected()) / static_cast<double>(full_size);
  }

  static Selection All(int64_t n) {
    Selection s;
    s.full_size = n;
    s.indices.resize(static_cast<size_t>(n));
    std::iota(s.indices.begin(), s.indices.end(), 0);
    return s;
  }

  bool IsValid() const {
    int32_t prev = -1;
    for (int32_t i : indices) {
      if (i <= prev || i >= full_size) {
        return false;
      }
      prev = i;
    }
    return true;
  }
};

// Gathers the selected columns of `b` into a dense (b.rows() x sel.selected())
// matrix — the reference semantics of the kernel's SEL-driven loads.
inline MatrixF GatherColumns(const MatrixF& b, const Selection& sel) {
  assert(sel.full_size == b.cols());
  MatrixF out(b.rows(), sel.selected());
  for (int64_t r = 0; r < b.rows(); ++r) {
    for (int64_t j = 0; j < sel.selected(); ++j) {
      out(r, j) = b(r, sel.indices[static_cast<size_t>(j)]);
    }
  }
  return out;
}

// Scatters compressed output columns back into full width (zero elsewhere) —
// the reference semantics of the *uncompressed* output layout.
inline MatrixF ScatterColumns(const MatrixF& compressed, const Selection& sel) {
  assert(compressed.cols() == sel.selected());
  MatrixF out(compressed.rows(), sel.full_size);
  for (int64_t r = 0; r < compressed.rows(); ++r) {
    for (int64_t j = 0; j < sel.selected(); ++j) {
      out(r, sel.indices[static_cast<size_t>(j)]) = compressed(r, j);
    }
  }
  return out;
}

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_SEL_H_
