// Generic element-wise N:M structured sparsity (§2.2): keep N of every M
// contiguous elements along rows. Generalizes the 2:4 format of nm24.h to
// the flexible ratios used by nmSPARSE-style CUDA-core kernels (e.g. 1:4
// for 75%, 2:8, ...).

#ifndef SAMOYEDS_SRC_FORMATS_NM_GENERIC_H_
#define SAMOYEDS_SRC_FORMATS_NM_GENERIC_H_

#include <cstdint>

#include "src/tensor/matrix.h"

namespace samoyeds {

struct NmConfig {
  int n = 1;
  int m = 4;

  bool IsValid() const { return n >= 1 && n <= m && m >= 1; }
  double density() const { return static_cast<double>(n) / m; }
  double sparsity() const { return 1.0 - density(); }
};

struct NmMatrix {
  NmConfig config;
  int64_t rows = 0;
  int64_t cols = 0;
  MatrixF data;             // rows x cols*N/M kept values
  Matrix<uint8_t> offsets;  // in-group positions, same shape as data

  static NmMatrix Encode(const MatrixF& dense, const NmConfig& config);
  MatrixF ToDense() const;
  bool OffsetsOrdered() const;

  int64_t StorageBytes() const {
    // fp16 values + one byte offset per kept element (nmSPARSE-style).
    return data.size() * 2 + offsets.size();
  }
};

// Keeps the N largest-magnitude elements of every M-group, in place.
void ApplyNmMask(MatrixF& dense, const NmConfig& config);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FORMATS_NM_GENERIC_H_
