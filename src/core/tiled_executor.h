// Instrumented tiled executor for the Samoyeds SSMM kernel.
//
// SamoyedsKernel::Run computes correct numerics with the simplest loop
// structure; this executor instead walks the *exact* execution hierarchy of
// §4.2 — thread-block tiles (mb x nb), kb reduction steps with staged
// "shared memory" copies, warp tiles (mw x nw), and m16n8k32 SpTC tiles —
// consuming the metadata from its bit-packed Fig. 10 device layout and
// performing the C_IR accumulator shuffle at sub-row window boundaries.
//
// Two guarantees are enforced by tests:
//   1. numerics identical to SamoyedsKernel::Run (same MmaSp results,
//      different traversal order over exactly representable inputs);
//   2. the byte counters it accumulates while staging tiles agree with the
//      closed-form traffic of SamoyedsKernel::Analyze.

#ifndef SAMOYEDS_SRC_CORE_TILED_EXECUTOR_H_
#define SAMOYEDS_SRC_CORE_TILED_EXECUTOR_H_

#include <cstdint>

#include "src/core/ssmm_config.h"
#include "src/formats/samoyeds_format.h"
#include "src/formats/sel.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

// Bytes staged from "global memory" per operand, and execution-shape
// counters, accumulated over the whole launch.
struct TileTrace {
  double a_data_bytes = 0.0;   // compressed weight values (bf16)
  double b_bytes = 0.0;        // selected activation panel (bf16)
  double meta_bytes = 0.0;     // packed 2-bit metadata words
  double index_bytes = 0.0;    // sub-row indices (uint8)
  double c_write_bytes = 0.0;  // compressed output (bf16)
  int64_t thread_blocks = 0;
  int64_t mma_calls = 0;
  int64_t window_shuffles = 0;  // C_IR shuffles executed
};

class TiledSsmmExecutor {
 public:
  // Requirements beyond SamoyedsKernel::Run: cfg.kb == 32, the warp tile
  // must cover whole mma tiles in compressed space ((mw * N/M) % 16 == 0,
  // nw % 8 == 0), and V % kb == 0.
  static MatrixF Run(const SamoyedsMatrix& a, const MatrixF& b, const Selection& sel,
                     const SsmmConfig& cfg, TileTrace* trace);
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_CORE_TILED_EXECUTOR_H_
