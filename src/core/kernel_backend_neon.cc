// NEON variant of the SSMM panel-group kernel, compile-time gated: NEON is
// baseline on aarch64, so no extra flags are needed — the guard simply
// turns the unit into a stub on non-ARM builds.
//
// Same accumulation contract as the other SIMD variants: fused
// multiply-adds (vfmaq), scalar entry order per output element, scalar tail
// through fmaf, ULP-gated against fp64.

#include "src/core/kernel_backend.h"

#if defined(__ARM_NEON) || defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

namespace samoyeds {

extern const bool kPanelKernelNeonCompiled = true;

void PanelKernelNeon(const PanelGroupTask& t) {
  const int64_t n_out = t.n_out;
  for (int64_t g = 0; g < t.n_groups; ++g) {
    const int64_t begin = t.a_off[g];
    const int64_t end = t.a_off[g + 1];
    if (begin == end) {
      continue;  // all-zero group contributes an exact +0
    }
    float* const orow = t.out + static_cast<int64_t>(t.group_rows[g]) * n_out;
    int64_t j = 0;
    for (; j + 4 <= n_out; j += 4) {
      float32x4_t acc = vdupq_n_f32(0.0f);
      for (int64_t e = begin; e < end; ++e) {
        const float* brow = t.panel + static_cast<int64_t>(t.a_cols[e]) * n_out + j;
        acc = vfmaq_n_f32(acc, vld1q_f32(brow), t.a_vals[e]);
      }
      vst1q_f32(orow + j, vaddq_f32(vld1q_f32(orow + j), acc));
    }
    for (; j < n_out; ++j) {
      float acc = 0.0f;
      for (int64_t e = begin; e < end; ++e) {
        acc = std::fmaf(t.a_vals[e], t.panel[static_cast<int64_t>(t.a_cols[e]) * n_out + j],
                        acc);
      }
      orow[j] += acc;
    }
  }
}

}  // namespace samoyeds

#else  // !ARM

namespace samoyeds {

extern const bool kPanelKernelNeonCompiled = false;

void PanelKernelNeon(const PanelGroupTask&) {}  // unreachable: dispatch guards

}  // namespace samoyeds

#endif
