// AVX-512F variant of the SSMM panel-group kernel. Compiled with -mavx512f
// on x86 builds (see CMakeLists); elsewhere this unit is a stub.
//
// Same accumulation contract as the AVX2 variant (fused multiply-adds,
// scalar order per output element, ULP-gated against fp64). Ragged edges
// are handled with opmask loads/stores, so the tail columns go through the
// identical fused path as the full vectors.

#include "src/core/kernel_backend.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace samoyeds {

extern const bool kPanelKernelAvx512Compiled = true;

void PanelKernelAvx512(const PanelGroupTask& t) {
  const int64_t n_out = t.n_out;
  for (int64_t g = 0; g < t.n_groups; ++g) {
    const int64_t begin = t.a_off[g];
    const int64_t end = t.a_off[g + 1];
    if (begin == end) {
      continue;  // all-zero group contributes an exact +0
    }
    float* const orow = t.out + static_cast<int64_t>(t.group_rows[g]) * n_out;
    for (int64_t j = 0; j < n_out; j += 16) {
      const int64_t remaining = n_out - j;
      const __mmask16 mask =
          remaining >= 16 ? static_cast<__mmask16>(0xFFFF)
                          : static_cast<__mmask16>((1u << remaining) - 1u);
      __m512 acc = _mm512_setzero_ps();
      for (int64_t e = begin; e < end; ++e) {
        const float* brow = t.panel + static_cast<int64_t>(t.a_cols[e]) * n_out + j;
        acc = _mm512_fmadd_ps(_mm512_set1_ps(t.a_vals[e]),
                              _mm512_maskz_loadu_ps(mask, brow), acc);
      }
      _mm512_mask_storeu_ps(orow + j, mask,
                            _mm512_add_ps(_mm512_maskz_loadu_ps(mask, orow + j), acc));
    }
  }
}

}  // namespace samoyeds

#else  // !__AVX512F__

namespace samoyeds {

extern const bool kPanelKernelAvx512Compiled = false;

void PanelKernelAvx512(const PanelGroupTask&) {}  // unreachable: dispatch guards

}  // namespace samoyeds

#endif
