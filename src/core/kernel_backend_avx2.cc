// AVX2+FMA variant of the SSMM panel-group kernel. Compiled with
// -mavx2 -mfma on x86 builds (see CMakeLists); on other targets this unit
// compiles to a stub and the dispatcher reports the backend as absent.
//
// Vectorization is across the panel-column (token) dimension: each output
// element still accumulates its packed entries in exactly the scalar order,
// but through fused multiply-adds (products are not rounded before the
// add), so the backend is ULP-gated against an fp64 reference rather than
// bit-gated against RunReference. The scalar tail uses std::fmaf so every
// lane of this backend — vector or remainder — obeys the same fused
// contract.

#include "src/core/kernel_backend.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace samoyeds {

extern const bool kPanelKernelAvx2Compiled = true;

void PanelKernelAvx2(const PanelGroupTask& t) {
  const int64_t n_out = t.n_out;
  for (int64_t g = 0; g < t.n_groups; ++g) {
    const int64_t begin = t.a_off[g];
    const int64_t end = t.a_off[g + 1];
    if (begin == end) {
      continue;  // all-zero group contributes an exact +0
    }
    float* const orow = t.out + static_cast<int64_t>(t.group_rows[g]) * n_out;
    int64_t j = 0;
    // Two 8-lane accumulators per pass amortize the per-entry broadcast and
    // column load across 16 output columns.
    for (; j + 16 <= n_out; j += 16) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (int64_t e = begin; e < end; ++e) {
        const __m256 av = _mm256_set1_ps(t.a_vals[e]);
        const float* brow = t.panel + static_cast<int64_t>(t.a_cols[e]) * n_out + j;
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
      }
      _mm256_storeu_ps(orow + j, _mm256_add_ps(_mm256_loadu_ps(orow + j), acc0));
      _mm256_storeu_ps(orow + j + 8, _mm256_add_ps(_mm256_loadu_ps(orow + j + 8), acc1));
    }
    for (; j + 8 <= n_out; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (int64_t e = begin; e < end; ++e) {
        const float* brow = t.panel + static_cast<int64_t>(t.a_cols[e]) * n_out + j;
        acc = _mm256_fmadd_ps(_mm256_set1_ps(t.a_vals[e]), _mm256_loadu_ps(brow), acc);
      }
      _mm256_storeu_ps(orow + j, _mm256_add_ps(_mm256_loadu_ps(orow + j), acc));
    }
    for (; j < n_out; ++j) {
      float acc = 0.0f;
      for (int64_t e = begin; e < end; ++e) {
        acc = std::fmaf(t.a_vals[e], t.panel[static_cast<int64_t>(t.a_cols[e]) * n_out + j],
                        acc);
      }
      orow[j] += acc;
    }
  }
}

}  // namespace samoyeds

#else  // !(__AVX2__ && __FMA__)

namespace samoyeds {

extern const bool kPanelKernelAvx2Compiled = false;

void PanelKernelAvx2(const PanelGroupTask&) {}  // unreachable: dispatch guards

}  // namespace samoyeds

#endif
