#include "src/core/samoyeds_kernel.h"

#include <algorithm>
#include <cassert>

#include "src/kernels/tuning.h"
#include "src/sptc/fragment.h"
#include "src/sptc/mma_sp.h"
#include "src/tensor/bf16.h"

namespace samoyeds {

KernelProfile SamoyedsKernel::Analyze(const GemmShape& shape, int64_t selected,
                                      const SamoyedsConfig& format, const SsmmConfig& cfg,
                                      const DeviceSpec& target) {
  KernelProfile p;
  p.kernel_name = "Samoyeds SSMM";
  const int64_t n_eff = cfg.input_selection ? selected : shape.n;
  // Useful work: the dense-equivalent of the *selected* problem; when input
  // selection is off the kernel still performs (and is credited for) the
  // full-width problem, matching how the baselines are scored.
  p.useful_flops = 2.0 * shape.m * shape.k * static_cast<double>(n_eff);

  const double row_frac = static_cast<double>(format.n) / format.m;
  const double density = format.density();
  const int64_t mp = RoundUp(shape.m, cfg.mb);
  const int64_t np = RoundUp(std::max<int64_t>(n_eff, 1), cfg.nb);
  const int64_t kp = RoundUp(shape.k, cfg.kb);
  const int64_t blocks = (mp / cfg.mb) * (np / cfg.nb);

  TrafficReport& t = p.traffic;
  t.thread_blocks = blocks;
  t.warps_per_block = cfg.warps_per_block();
  t.pipeline_stages = cfg.stages;
  t.smem_bytes_per_block =
      static_cast<int64_t>(cfg.stages) *
          (static_cast<int64_t>(cfg.mb * row_frac) * cfg.kb + cfg.kb * cfg.nb) * 2 +
      cfg.nb * 4;  // SEL slice
  t.regs_per_thread = 184;
  t.mainloop_iterations = kp / cfg.kb;
  t.efficiency = kEfficiency * PortabilityFactor(DefaultDevice(), target, kPortSensitivity);

  // --- A-side traffic (compressed data + indices + metadata) --------------
  const double a_rows = static_cast<double>(mp) * row_frac;
  const double col_iters = static_cast<double>(np) / cfg.nb;  // panel re-reads
  const double a_bytes = a_rows * (kp / 2.0) * 2.0 * col_iters;
  const double idx_bytes = a_rows * (static_cast<double>(kp) / format.v) * 1.0 * col_iters;
  double meta_payload = a_rows * (kp / 2.0) * 0.25 * col_iters;
  double meta_uncoalesced = 0.0;
  double meta_unpack_flops = 0.0;
  if (!cfg.packed_metadata) {
    // Element-wise metadata: each 2-bit entry costs a scattered 32-bit
    // access plus shift/mask work (§4.4).
    meta_payload *= 4.0;
    meta_uncoalesced = meta_payload;
    meta_unpack_flops = meta_payload * 2.0;
  }

  // --- B-side traffic ------------------------------------------------------
  // SEL-driven loads are coalesced: B is packed transposed in GMEM, so each
  // selected token contributes one contiguous row (§4.4).
  const double row_iters = static_cast<double>(mp) / cfg.mb;
  const double b_bytes = static_cast<double>(kp) * np * 2.0 * row_iters;
  const double sel_bytes = static_cast<double>(np) * 4.0 * row_iters;

  t.gmem_read_bytes = a_bytes + idx_bytes + meta_payload + b_bytes + sel_bytes;
  t.gmem_uncoalesced_bytes = meta_uncoalesced;

  // --- Output traffic -------------------------------------------------------
  if (cfg.compressed_output) {
    t.gmem_write_bytes = static_cast<double>(mp) * np * 2.0;
  } else {
    // Full-width zero-padded output: write the entire m x n surface, with a
    // scattered access pattern where selected columns interleave with
    // skipped ones (Fig. 11).
    t.gmem_write_bytes = static_cast<double>(mp) * RoundUp(shape.n, cfg.nb) * 2.0;
    t.gmem_uncoalesced_bytes += 0.25 * t.gmem_write_bytes;
  }

  // --- Data stationary ------------------------------------------------------
  if (cfg.data_stationary) {
    // Register shuffle through C_IR at every sub-row window shift: pure
    // in-core work, a couple of ops per accumulator element per shift.
    t.simd_flops += static_cast<double>(mp) * np * (static_cast<double>(kp) / format.v) * 0.5;
  } else {
    // Without the shuffle the indexed accumulators fall back to *local*
    // memory (§4.3): at every window shift the C fragments whose sub-row
    // mapping changes move through the L1-backed local space, disrupting
    // the pipeline. The L1 absorbs most of it; the residual shows up as
    // on-chip traffic plus a small issue-efficiency loss. (Fig. 17 shows
    // the S optimization is worth a few percent on top of WIT.)
    const double shifts = std::max<double>(1.0, static_cast<double>(kp) / format.v - 1.0);
    const double local_bytes = static_cast<double>(blocks) * (cfg.mb * row_frac) * cfg.nb * 4.0 *
                               2.0 * shifts * 0.125;
    t.smem_bytes += local_bytes;
    t.simd_flops += static_cast<double>(mp) * np * (static_cast<double>(kp) / format.v) * 1.0;
    t.efficiency *= 0.97;
  }

  // --- Transpose fusion (layout optimization) -------------------------------
  if (!cfg.fused_transpose) {
    // Separate transpose passes over the input activations and the output:
    // one GMEM round-trip each, half-scattered.
    const double in_xpose = 2.0 * static_cast<double>(shape.k) * shape.n * 2.0;
    const double out_xpose = 2.0 * static_cast<double>(shape.m) * n_eff * 2.0;
    t.gmem_read_bytes += (in_xpose + out_xpose) / 2.0;
    t.gmem_write_bytes += (in_xpose + out_xpose) / 2.0;
    t.gmem_uncoalesced_bytes += 0.5 * (in_xpose + out_xpose);
  }

  t.gmem_unique_bytes =
      static_cast<double>(shape.m) * shape.k * density * 2.0 +          // data
      static_cast<double>(shape.m) / format.m * format.n *
          (static_cast<double>(shape.k) / format.v + shape.k / 8.0) +   // indices + packed meta
      static_cast<double>(shape.k) * n_eff * 2.0 +                      // selected B columns
      static_cast<double>(shape.m) * n_eff * 2.0;                       // output
  if (!cfg.compressed_output) {
    // The zero-padded full-width output surface is part of the compulsory
    // footprint (Fig. 11's redundant transfers).
    t.gmem_unique_bytes +=
        static_cast<double>(mp) * (RoundUp(shape.n, cfg.nb) - n_eff) * 2.0;
  }

  t.smem_bytes += (a_bytes + b_bytes) * 3.0;
  t.bank_conflict_factor = cfg.permuted_smem ? 1.0 : 1.6;

  // Executed FLOPs: only kept sub-rows, only kept 2:4 elements, only
  // selected columns.
  t.mma_flops = 2.0 * mp * kp * density * np;
  t.uses_sparse_alu = true;
  // Fused epilogue (activation + weighted accumulation, §4.3).
  t.simd_flops += static_cast<double>(mp) * np * 4.0 + meta_unpack_flops;
  t.fixed_overhead_us = 5.0;
  return p;
}

KernelProfile SamoyedsKernel::Analyze(const GemmShape& shape, int64_t selected,
                                      const SamoyedsConfig& format, const SsmmConfig& cfg) {
  return Analyze(shape, selected, format, cfg, DefaultDevice());
}

MatrixF SamoyedsKernel::RunReference(const SamoyedsMatrix& a, const MatrixF& b,
                                     const Selection& sel) {
  assert(a.cols == b.rows());
  assert(sel.full_size == b.cols());
  assert(sel.IsValid());
  assert(a.config.v % kMmaK == 0 && "one mma.sp step must not straddle a sub-row window");

  const int64_t c_rows = a.compressed_rows();
  const int64_t n_out = sel.selected();
  const int64_t n_windows = a.cols / a.config.v;
  const int mma_per_window = a.config.v / kMmaK;
  MatrixF out(a.rows, n_out);

  // Iterate sub-row windows (block columns). Within a window the compressed
  // row -> original row mapping is constant, so accumulators can stay in
  // "registers" (the Accumulator struct); the scatter at the end of each
  // window is the C_IR shuffle of §4.3.
  for (int64_t w = 0; w < n_windows; ++w) {
    for (int64_t cr0 = 0; cr0 < c_rows; cr0 += kMmaM) {
      for (int64_t nc0 = 0; nc0 < n_out; nc0 += kMmaN) {
        Accumulator acc{};
        for (int step = 0; step < mma_per_window; ++step) {
          const int64_t k0 = w * a.config.v + static_cast<int64_t>(step) * kMmaK;  // dense col base
          SparseAFragment afrag;
          for (int i = 0; i < kMmaM; ++i) {
            const int64_t cr = cr0 + i;
            for (int j = 0; j < kMmaKCompressed; ++j) {
              if (cr < c_rows) {
                const int64_t cc = k0 / 2 + j;
                afrag.values[i * kMmaKCompressed + j] = a.data(cr, cc);
                afrag.meta[i * kMmaKCompressed + j] = a.meta(cr, cc);
              } else {
                // Padded rows: zero values with canonical ordered metadata.
                afrag.values[i * kMmaKCompressed + j] = 0.0f;
                afrag.meta[i * kMmaKCompressed + j] = static_cast<uint8_t>(j % 2 == 0 ? 0 : 1);
              }
            }
          }
          DenseBFragment bfrag;
          for (int r = 0; r < kMmaK; ++r) {
            for (int c = 0; c < kMmaN; ++c) {
              const int64_t col = nc0 + c;
              bfrag.values[r * kMmaN + c] =
                  col < n_out ? b(k0 + r, sel.indices[static_cast<size_t>(col)]) : 0.0f;
            }
          }
          acc = MmaSp(afrag, bfrag, acc);
        }
        // Window writeback: map compressed rows to original rows via the
        // indices matrix and accumulate.
        for (int i = 0; i < kMmaM; ++i) {
          const int64_t cr = cr0 + i;
          if (cr >= c_rows) {
            break;
          }
          const int64_t block_row = cr / a.config.n;
          const int64_t orig_row = block_row * a.config.m + a.indices(cr, w);
          for (int c = 0; c < kMmaN && nc0 + c < n_out; ++c) {
            out(orig_row, nc0 + c) += acc.at(i, c);
          }
        }
      }
    }
  }
  return out;
}

namespace {

// Packs A's kept values per (window, compressed row) group: bf16-rounded
// non-zero values with their absolute dense-k columns, ascending — exactly
// the order (and the zero-skip) of the fragment path's expanded iteration.
// Zero-valued entries are dropped at pack time: MmaSp skips them, and a
// rounded zero can never flip the sign of an fp32 partial that starts at +0.
// Each group's output row (the C_IR shuffle target) is resolved here too,
// so the inner loops — scalar or SIMD — never touch the indices matrix.
void PackAInto(const SamoyedsMatrix& a, std::vector<float>& out_vals,
               std::vector<int32_t>& out_cols, std::vector<int64_t>& out_off,
               std::vector<int32_t>& out_rows) {
  const int64_t c_rows = a.compressed_rows();
  const int64_t c_cols = a.compressed_cols();
  const int64_t n_windows = a.cols / a.config.v;
  const int64_t packed_per_window = a.config.v / 2;

  out_off.resize(static_cast<size_t>(n_windows * c_rows + 1));
  out_rows.resize(static_cast<size_t>(n_windows * c_rows));
  out_vals.resize(static_cast<size_t>(c_rows * c_cols));  // nnz upper bound
  out_cols.resize(static_cast<size_t>(c_rows * c_cols));
  float* const vals = out_vals.data();
  int32_t* const cols = out_cols.data();

  int64_t group = 0;
  int64_t cursor = 0;
  out_off[0] = 0;
  for (int64_t w = 0; w < n_windows; ++w) {
    const int64_t pc0 = w * packed_per_window;
    for (int64_t cr = 0; cr < c_rows; ++cr) {
      const float* arow = a.data.data() + cr * c_cols;
      const uint8_t* mrow = a.meta.data() + cr * c_cols;
      for (int64_t pc = pc0; pc < pc0 + packed_per_window; ++pc) {
        const float v = RoundToBf16(arow[pc]);
        if (v == 0.0f) {
          continue;
        }
        // Packed column pc holds kept element meta(cr, pc) of 4-wide group
        // pc / 2; ordered metadata makes this ascending within a group.
        vals[cursor] = v;
        cols[cursor] = static_cast<int32_t>((pc / 2) * 4 + mrow[pc]);
        ++cursor;
      }
      out_rows[static_cast<size_t>(group)] =
          static_cast<int32_t>((cr / a.config.n) * a.config.m + a.indices(cr, w));
      out_off[static_cast<size_t>(++group)] = cursor;
    }
  }
}

// Window-major traversal, same as the fragment path: each (window, row)
// group accumulates its fp32 partial over ascending columns, then folds
// into the output row named by the per-window sub-row index — the C_IR
// shuffle of §4.3, with identical floating-point association. SIMD backends
// run the same group order through their ISA's panel kernel (see
// kernel_backend.h for the per-backend accumulation contract); an
// unavailable backend falls back to the scalar oracle loop.
void RunPanelImpl(const SamoyedsMatrix& a, const float* a_vals, const int32_t* a_cols,
                  const int64_t* a_off, const int32_t* a_rows, const MatrixF& panel,
                  SsmmWorkspace& ws, MatrixF& out, KernelBackend backend) {
  const int64_t c_rows = a.compressed_rows();
  const int64_t n_out = panel.cols();
  const int64_t n_windows = a.cols / a.config.v;

  if (backend != KernelBackend::kScalar) {
    if (PanelKernelFn fn = GetPanelKernel(backend)) {
      PanelGroupTask task;
      task.a_vals = a_vals;
      task.a_cols = a_cols;
      task.a_off = a_off;
      task.group_rows = a_rows;
      task.n_groups = n_windows * c_rows;
      task.panel = panel.data();
      task.n_out = n_out;
      task.out = out.data();
      fn(task);
      return;
    }
  }

  ws.partial.resize(static_cast<size_t>(n_out));
  float* const partial = ws.partial.data();
  const float* const pdata = panel.data();

  int64_t group = 0;
  for (int64_t w = 0; w < n_windows; ++w) {
    for (int64_t cr = 0; cr < c_rows; ++cr, ++group) {
      const int64_t begin = a_off[group];
      const int64_t end = a_off[group + 1];
      if (begin == end) {
        continue;  // all-zero group contributes an exact +0
      }
      std::fill_n(partial, n_out, 0.0f);
      for (int64_t e = begin; e < end; ++e) {
        const float av = a_vals[e];
        const float* brow = pdata + static_cast<int64_t>(a_cols[e]) * n_out;
        for (int64_t j = 0; j < n_out; ++j) {
          partial[j] += av * brow[j];
        }
      }
      float* orow = out.data() + static_cast<int64_t>(a_rows[group]) * n_out;
      for (int64_t j = 0; j < n_out; ++j) {
        orow[j] += partial[j];
      }
    }
  }
}

}  // namespace

void SamoyedsKernel::PackWeights(const SamoyedsMatrix& a, SsmmPackedA& packed) {
  PackAInto(a, packed.vals, packed.cols, packed.off, packed.rows);
}

void SamoyedsKernel::RunPanel(const SamoyedsMatrix& a, const MatrixF& panel, SsmmWorkspace& ws,
                              MatrixF& out, KernelBackend backend) {
  assert(a.cols == panel.rows());
  assert(a.config.v % kMmaK == 0 && "one mma.sp step must not straddle a sub-row window");

  out.Reshape(a.rows, panel.cols());
  out.Fill(0.0f);
  if (panel.cols() == 0 || a.compressed_rows() == 0) {
    return;
  }
  PackAInto(a, ws.a_vals, ws.a_cols, ws.a_off, ws.a_rows);
  RunPanelImpl(a, ws.a_vals.data(), ws.a_cols.data(), ws.a_off.data(), ws.a_rows.data(),
               panel, ws, out, backend);
}

void SamoyedsKernel::RunPanel(const SamoyedsMatrix& a, const SsmmPackedA& packed,
                              const MatrixF& panel, SsmmWorkspace& ws, MatrixF& out,
                              KernelBackend backend) {
  assert(a.cols == panel.rows());
  assert(a.config.v % kMmaK == 0 && "one mma.sp step must not straddle a sub-row window");
  assert(!packed.empty());
  assert(static_cast<int64_t>(packed.off.size()) ==
         (a.cols / a.config.v) * a.compressed_rows() + 1);
  assert(static_cast<int64_t>(packed.rows.size()) ==
         (a.cols / a.config.v) * a.compressed_rows());

  out.Reshape(a.rows, panel.cols());
  out.Fill(0.0f);
  if (panel.cols() == 0 || a.compressed_rows() == 0) {
    return;
  }
  RunPanelImpl(a, packed.vals.data(), packed.cols.data(), packed.off.data(),
               packed.rows.data(), panel, ws, out, backend);
}

void SamoyedsKernel::PackSelectedColumns(const MatrixF& b, const Selection& sel,
                                         MatrixF& panel) {
  assert(sel.full_size == b.cols());
  assert(sel.IsValid());
  const int64_t n_out = sel.selected();
  panel.Reshape(b.rows(), n_out);
  for (int64_t k = 0; k < b.rows(); ++k) {
    const float* brow = b.data() + k * b.cols();
    float* prow = panel.data() + k * n_out;
    for (int64_t j = 0; j < n_out; ++j) {
      prow[j] = RoundToBf16(brow[sel.indices[static_cast<size_t>(j)]]);
    }
  }
}

void SamoyedsKernel::PackSelectedTokens(const MatrixF& x, const Selection& sel,
                                        MatrixF& panel) {
  assert(sel.full_size == x.rows());
  assert(sel.IsValid());
  const int64_t n_out = sel.selected();
  const int64_t k = x.cols();
  panel.Reshape(k, n_out);
  for (int64_t j = 0; j < n_out; ++j) {
    const float* xrow = x.data() + sel.indices[static_cast<size_t>(j)] * k;
    float* pcol = panel.data() + j;
    for (int64_t kk = 0; kk < k; ++kk) {
      pcol[kk * n_out] = RoundToBf16(xrow[kk]);
    }
  }
}

void SamoyedsKernel::Run(const SamoyedsMatrix& a, const MatrixF& b, const Selection& sel,
                         SsmmWorkspace& ws, MatrixF& out, KernelBackend backend) {
  assert(a.cols == b.rows());
  PackSelectedColumns(b, sel, ws.panel);
  RunPanel(a, ws.panel, ws, out, backend);
}

MatrixF SamoyedsKernel::Run(const SamoyedsMatrix& a, const MatrixF& b, const Selection& sel,
                            KernelBackend backend) {
  SsmmWorkspace ws;
  MatrixF out;
  Run(a, b, sel, ws, out, backend);
  return out;
}

MatrixF SamoyedsKernel::RunLinear(const MatrixF& x, const SamoyedsMatrix& w,
                                  const Selection& sel) {
  assert(x.cols() == w.cols);
  // (W^T x^T)^T: the kernel consumes x^T (k x tokens) with SEL choosing
  // token columns; the transpose, gather and rounding fuse into one panel
  // pack (§4.5) instead of materializing x^T.
  SsmmWorkspace ws;
  SamoyedsKernel::PackSelectedTokens(x, sel, ws.panel);
  MatrixF ct;
  RunPanel(w, ws.panel, ws, ct);  // (m x selected)
  return ct.Transposed();         // (selected x m)
}

}  // namespace samoyeds
