// The Samoyeds dual-side sparse-sparse matrix multiplication kernel (§4).
//
// Computes C = A x B_sel where A is a weight matrix in the Samoyeds format
// (sub-row vector sparsity + 2:4, §4.1) and B_sel is the subset of input
// columns named by a SEL selection array (the token-routing sparsity of the
// MoE layer).
//
// Two functional paths produce bit-identical results:
//
//   * RunReference — routes every inner product through the SpTC model
//     (mma.sp.m16n8k32 fragments) including the compressed-row accumulation
//     and the C_IR shuffle at sub-row window boundaries, so format or
//     metadata bugs produce wrong numbers exactly as they would on hardware.
//     It re-gathers B fragments per row tile, the way a naive kernel would.
//   * Run — the optimized execution path. The SEL gather, the input
//     transpose and the bf16 rounding of B are hoisted into one packed
//     (k x selected) panel per call (the code-level analogue of §4.5's
//     fused-transpose GMEM->SMEM staging); A's kept values are packed per
//     (window, compressed row) with absolute column positions so the inner
//     loops are branch-free contiguous axpys; per-window fp32 partial sums
//     accumulate in the same order as the fragment path, making the result
//     bit-identical (asserted by the randomized equivalence suite).
//
// The analytic path (Analyze) produces the TrafficReport the timing model
// consumes; each SsmmConfig toggle changes the traffic in the way §4.2-4.5
// describe.

#ifndef SAMOYEDS_SRC_CORE_SAMOYEDS_KERNEL_H_
#define SAMOYEDS_SRC_CORE_SAMOYEDS_KERNEL_H_

#include "src/core/kernel_backend.h"
#include "src/core/ssmm_config.h"
#include "src/core/ssmm_workspace.h"
#include "src/formats/samoyeds_format.h"
#include "src/formats/sel.h"
#include "src/kernels/kernel_report.h"
#include "src/simgpu/device_spec.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

// Packed execution form of a Samoyeds weight matrix's kept values: per
// (sub-row window, compressed row) group, the non-zero bf16-rounded values
// and their absolute dense-k columns in ascending order — exactly the order
// (and zero-skip) of the SpTC fragment path's expanded iteration. Depends
// only on the weight matrix, so it is built once (at expert Encode time, or
// lazily per call into an SsmmWorkspace) and reused by every Run.
struct SsmmPackedA {
  std::vector<float> vals;
  std::vector<int32_t> cols;
  std::vector<int64_t> off;   // group start offsets, n_windows * c_rows + 1
  std::vector<int32_t> rows;  // output row per group (the C_IR shuffle target)

  bool empty() const { return off.empty(); }
};

class SamoyedsKernel {
 public:
  // Traffic profile for C(m x len_d) = A(m x k, Samoyeds fmt) * B(k x n)[SEL].
  // `selected` is the SEL length (ignored when cfg.input_selection is off,
  // in which case the kernel runs over all n columns).
  static KernelProfile Analyze(const GemmShape& shape, int64_t selected,
                               const SamoyedsConfig& format, const SsmmConfig& cfg,
                               const DeviceSpec& target);
  static KernelProfile Analyze(const GemmShape& shape, int64_t selected,
                               const SamoyedsConfig& format, const SsmmConfig& cfg);

  // Functional execution (optimized path). Returns the compressed output
  // (rows() x sel.selected()); use ScatterColumns for the full-width layout.
  // Requires format.v % 32 == 0 (one mma.sp step never straddles a sub-row
  // window).
  //
  // Every execution entry point takes a KernelBackend selecting the inner-
  // loop implementation (default: the process-wide active backend, itself
  // defaulting to the bit-exact scalar path — see kernel_backend.h for the
  // per-backend accumulation contract).
  static MatrixF Run(const SamoyedsMatrix& a, const MatrixF& b, const Selection& sel,
                     KernelBackend backend = ActiveKernelBackend());

  // Zero-allocation variant: stages operands in `ws` and writes the result
  // into `out` (reshaped in place). Steady-state calls at a fixed shape do
  // not touch the heap.
  static void Run(const SamoyedsMatrix& a, const MatrixF& b, const Selection& sel,
                  SsmmWorkspace& ws, MatrixF& out,
                  KernelBackend backend = ActiveKernelBackend());

  // The original scalar fragment-by-fragment loop, kept as the bit-exact
  // oracle for the optimized path (see SamoyedsKernelBitIdentityTest).
  static MatrixF RunReference(const SamoyedsMatrix& a, const MatrixF& b, const Selection& sel);

  // Builds the reusable packed form of `a`'s kept values (see SsmmPackedA).
  static void PackWeights(const SamoyedsMatrix& a, SsmmPackedA& packed);

  // Core of the optimized path: multiplies A by an already packed panel
  // (k x n, SEL-gathered and bf16-rounded — see PackSelectedColumns /
  // PackSelectedTokens). `out` is reshaped to (a.rows x panel.cols()) and
  // overwritten. Exposed so the expert forward chain can feed one kernel's
  // feature-major output straight into the next without transposing.
  // The first overload packs A per call into `ws`; the second consumes a
  // prebuilt pack (the steady-state serving path — weights are immutable,
  // so experts pack once at Encode time).
  static void RunPanel(const SamoyedsMatrix& a, const MatrixF& panel, SsmmWorkspace& ws,
                       MatrixF& out, KernelBackend backend = ActiveKernelBackend());
  static void RunPanel(const SamoyedsMatrix& a, const SsmmPackedA& packed,
                       const MatrixF& panel, SsmmWorkspace& ws, MatrixF& out,
                       KernelBackend backend = ActiveKernelBackend());

  // Panel staging helpers (the fused transpose + SEL gather + rounding).
  // PackSelectedColumns: panel(k, j) = bf16(b(k, sel[j])) from a (k x n) B.
  // PackSelectedTokens:  panel(k, j) = bf16(x(sel[j], k)) from a (tokens x k)
  // activation matrix — the (W^T x^T)^T restructuring of §4.5 done once.
  static void PackSelectedColumns(const MatrixF& b, const Selection& sel, MatrixF& panel);
  static void PackSelectedTokens(const MatrixF& x, const Selection& sel, MatrixF& panel);

  // Convenience: linear layer semantics y = x * W^T with x (tokens x k) and
  // W (m x k) in Samoyeds format; rows of x are gathered by `sel` (token
  // routing). Output is (sel.selected() x m).
  static MatrixF RunLinear(const MatrixF& x, const SamoyedsMatrix& w, const Selection& sel);

  static constexpr double kEfficiency = 0.60;
  static constexpr double kPortSensitivity = 0.35;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_CORE_SAMOYEDS_KERNEL_H_
