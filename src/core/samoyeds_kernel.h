// The Samoyeds dual-side sparse-sparse matrix multiplication kernel (§4).
//
// Computes C = A x B_sel where A is a weight matrix in the Samoyeds format
// (sub-row vector sparsity + 2:4, §4.1) and B_sel is the subset of input
// columns named by a SEL selection array (the token-routing sparsity of the
// MoE layer). The functional path routes every inner product through the
// SpTC model (mma.sp.m16n8k32 fragments) including the compressed-row
// accumulation and the C_IR shuffle at sub-row window boundaries, so format
// or metadata bugs produce wrong numbers exactly as they would on hardware.
//
// The analytic path (Analyze) produces the TrafficReport the timing model
// consumes; each SsmmConfig toggle changes the traffic in the way §4.2-4.5
// describe.

#ifndef SAMOYEDS_SRC_CORE_SAMOYEDS_KERNEL_H_
#define SAMOYEDS_SRC_CORE_SAMOYEDS_KERNEL_H_

#include "src/core/ssmm_config.h"
#include "src/formats/samoyeds_format.h"
#include "src/formats/sel.h"
#include "src/kernels/kernel_report.h"
#include "src/simgpu/device_spec.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

class SamoyedsKernel {
 public:
  // Traffic profile for C(m x len_d) = A(m x k, Samoyeds fmt) * B(k x n)[SEL].
  // `selected` is the SEL length (ignored when cfg.input_selection is off,
  // in which case the kernel runs over all n columns).
  static KernelProfile Analyze(const GemmShape& shape, int64_t selected,
                               const SamoyedsConfig& format, const SsmmConfig& cfg,
                               const DeviceSpec& target);
  static KernelProfile Analyze(const GemmShape& shape, int64_t selected,
                               const SamoyedsConfig& format, const SsmmConfig& cfg);

  // Functional execution. Returns the compressed output (rows() x
  // sel.selected()); use ScatterColumns for the full-width layout. Requires
  // format.v % 32 == 0 (one mma.sp step never straddles a sub-row window).
  static MatrixF Run(const SamoyedsMatrix& a, const MatrixF& b, const Selection& sel);

  // Convenience: linear layer semantics y = x * W^T with x (tokens x k) and
  // W (m x k) in Samoyeds format; rows of x are gathered by `sel` (token
  // routing). Internally performs the (W^T x^T)^T restructuring of §4.5.
  static MatrixF RunLinear(const MatrixF& x, const SamoyedsMatrix& w, const Selection& sel);

  static constexpr double kEfficiency = 0.60;
  static constexpr double kPortSensitivity = 0.35;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_CORE_SAMOYEDS_KERNEL_H_
