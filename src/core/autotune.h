// Tile-size / pipeline-depth autotuner for the Samoyeds kernel.
//
// §6.6 shows the kernel's optimal configuration shifts with the device
// (smaller tiles for many-SM/small-L2 parts, deeper pipelines for
// bandwidth-rich parts). This module enumerates the legal configuration
// space and picks the fastest under the timing model — the programmatic
// version of Table 6's "suggested adaptations".

#ifndef SAMOYEDS_SRC_CORE_AUTOTUNE_H_
#define SAMOYEDS_SRC_CORE_AUTOTUNE_H_

#include <vector>

#include "src/core/kernel_backend.h"
#include "src/core/ssmm_config.h"
#include "src/formats/samoyeds_format.h"
#include "src/kernels/kernel_report.h"
#include "src/simgpu/device_spec.h"

namespace samoyeds {

struct AutotuneResult {
  SsmmConfig config;
  double simulated_ms = 0.0;
  // Simulated time of the default configuration, for speedup reporting.
  double default_ms = 0.0;

  // -- Cache model (see SsmmActiveWorkingSetBytes) --------------------------
  // Modeled active working set of the chosen config — the per-block staged
  // panels plus output tile, times the blocks concurrently resident — and
  // whether it fits the device's LLC. The tuner prefers LLC-resident
  // configs lexicographically: a config whose working set spills is never
  // chosen while a fitting candidate exists.
  double working_set_bytes = 0.0;
  bool fits_llc = true;
  // Modeled cost of serving the config's repeat traffic from the level the
  // working set resides in (TimingModel::ResidencyMs); part of the ranking
  // objective, reported for provenance.
  double residency_ms = 0.0;
  // Backend the search was run for (lane padding makes it shape the
  // ranking; it is also part of the serving engine's memo key).
  KernelBackend backend = KernelBackend::kScalar;

  double speedup_over_default() const {
    return simulated_ms > 0.0 ? default_ms / simulated_ms : 0.0;
  }
};

// Candidate configurations: every combination of block tile, warp tile and
// pipeline depth that satisfies the SpTC tile constraints (mw % 16 == 0,
// nw % 8 == 0) and fits the device's shared memory.
std::vector<SsmmConfig> EnumerateSsmmConfigs(const DeviceSpec& device,
                                             const SamoyedsConfig& format);

// Modeled active working set of one tile configuration at a given problem
// shape: the multi-stage packed-A and gathered-B panels plus the fp32
// output tile per thread block, times the number of blocks concurrently
// resident on the device (capped by the grid). This is the footprint the
// LLC must hold for the config's repeat traffic to be cache-served.
double SsmmActiveWorkingSetBytes(const GemmShape& shape, int64_t selected,
                                 const SamoyedsConfig& format, const SsmmConfig& cfg,
                                 const DeviceSpec& device);

// Exhaustive search over EnumerateSsmmConfigs under the timing model plus
// the cache-residency term. `backend` shapes the search two ways: SEL
// widths are padded to the backend's vector width (tail lanes are occupied
// but wasted, so wider backends see wider effective tiles), and the result
// is stamped with the backend so memo caches can key on it. Configs whose
// modeled working set fits the LLC are preferred lexicographically over
// ones that spill; ties rank by simulated time + residency cost.
AutotuneResult AutotuneSsmm(const GemmShape& shape, int64_t selected,
                            const SamoyedsConfig& format, const DeviceSpec& device,
                            KernelBackend backend);
// Back-compat overload: scalar backend.
AutotuneResult AutotuneSsmm(const GemmShape& shape, int64_t selected,
                            const SamoyedsConfig& format, const DeviceSpec& device);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_CORE_AUTOTUNE_H_
