// Tile-size / pipeline-depth autotuner for the Samoyeds kernel.
//
// §6.6 shows the kernel's optimal configuration shifts with the device
// (smaller tiles for many-SM/small-L2 parts, deeper pipelines for
// bandwidth-rich parts). This module enumerates the legal configuration
// space and picks the fastest under the timing model — the programmatic
// version of Table 6's "suggested adaptations".

#ifndef SAMOYEDS_SRC_CORE_AUTOTUNE_H_
#define SAMOYEDS_SRC_CORE_AUTOTUNE_H_

#include <vector>

#include "src/core/ssmm_config.h"
#include "src/formats/samoyeds_format.h"
#include "src/kernels/kernel_report.h"
#include "src/simgpu/device_spec.h"

namespace samoyeds {

struct AutotuneResult {
  SsmmConfig config;
  double simulated_ms = 0.0;
  // Simulated time of the default configuration, for speedup reporting.
  double default_ms = 0.0;

  double speedup_over_default() const {
    return simulated_ms > 0.0 ? default_ms / simulated_ms : 0.0;
  }
};

// Candidate configurations: every combination of block tile, warp tile and
// pipeline depth that satisfies the SpTC tile constraints (mw % 16 == 0,
// nw % 8 == 0) and fits the device's shared memory.
std::vector<SsmmConfig> EnumerateSsmmConfigs(const DeviceSpec& device,
                                             const SamoyedsConfig& format);

// Exhaustive search over EnumerateSsmmConfigs under the timing model.
AutotuneResult AutotuneSsmm(const GemmShape& shape, int64_t selected,
                            const SamoyedsConfig& format, const DeviceSpec& device);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_CORE_AUTOTUNE_H_
