// Execution configuration for the Samoyeds sparse-sparse matmul kernel.
//
// Tile sizes map to the three-step tiling of §4.2; the boolean toggles
// correspond one-to-one to the optimizations ablated in the breakdown
// analysis of §6.4 (Fig. 17) and the layout study of §4.5 (Fig. 11).

#ifndef SAMOYEDS_SRC_CORE_SSMM_CONFIG_H_
#define SAMOYEDS_SRC_CORE_SSMM_CONFIG_H_

namespace samoyeds {

struct SsmmConfig {
  // Thread-block tile (step 1). kb is the reduction step and must divide
  // the format's sub-row length V.
  int mb = 128;
  int nb = 64;
  int kb = 32;
  // Warp tile (step 2); the SpTC tile (step 3) is fixed at 16x8x32.
  int mw = 64;
  int nw = 32;
  // cp.async pipeline depth (Alg. 1's num_pipe).
  int stages = 3;

  // W — weight-side structured sparsity (always on for this kernel).
  // I — input-side sparsity: honor the SEL array instead of a dense input.
  bool input_selection = true;
  // T — layout optimization: fuse the input/output transposes into the
  // kernel's GMEM<->SMEM transfers instead of separate passes (§4.5).
  bool fused_transpose = true;
  // S — data stationary: keep C in registers and shuffle through C_IR at
  // sub-row window shifts instead of spilling to global memory (§4.3).
  bool data_stationary = true;
  // Fig. 10 metadata packing; off = element-wise row-major metadata.
  bool packed_metadata = true;
  // Compressed output layout aligned with the input sparse pattern
  // (Fig. 11); off = scatter into the full-width zero-padded output.
  bool compressed_output = true;
  // Permuted shared-memory layout avoiding bank conflicts (§4.4).
  bool permuted_smem = true;

  int warps_per_block() const { return (mb / mw) * (nb / nw); }

  static SsmmConfig Default() { return SsmmConfig{}; }

  // Smaller-tile variant suggested for porting to GPUs with more SMs and
  // less L2 (Table 6, A100 row).
  static SsmmConfig SmallTile() {
    SsmmConfig c;
    c.mb = 64;
    c.nb = 32;
    c.mw = 32;
    c.nw = 16;
    return c;
  }

  // Deeper pipeline for bandwidth-rich, compute-poor targets (Table 6,
  // RTX 3090 row).
  static SsmmConfig DeepPipeline() {
    SsmmConfig c;
    c.stages = 4;
    return c;
  }
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_CORE_SSMM_CONFIG_H_
