#include "src/core/tiled_executor.h"

#include <cassert>
#include <vector>

#include "src/formats/metadata_layout.h"
#include "src/sptc/fragment.h"
#include "src/sptc/mma_sp.h"

namespace samoyeds {

namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Element accessor into the bit-packed (optionally Fig. 10-reorganized)
// metadata word stream produced by PackMetadata.
uint8_t PackedMetaAt(const std::vector<uint32_t>& words, int64_t cols, int64_t r, int64_t c,
                     bool reorganized) {
  const int64_t padded_cols = CeilDiv(cols, kMetaTileDim) * kMetaTileDim;
  int64_t dr = r;
  int64_t dc = c;
  if (reorganized) {
    const auto [tr, tc] = MetadataDeviceLocation(static_cast<int>(r % kMetaTileDim),
                                                 static_cast<int>(c % kMetaTileDim));
    dr = r / kMetaTileDim * kMetaTileDim + tr;
    dc = c / kMetaTileDim * kMetaTileDim + tc;
  }
  const int64_t linear = dr * padded_cols + dc;
  const int shift = static_cast<int>(linear % 16) * 2;
  return static_cast<uint8_t>((words[static_cast<size_t>(linear / 16)] >> shift) & 0x3u);
}

}  // namespace

MatrixF TiledSsmmExecutor::Run(const SamoyedsMatrix& a, const MatrixF& b, const Selection& sel,
                               const SsmmConfig& cfg, TileTrace* trace) {
  assert(cfg.kb == kMmaK && "executor models the kb == mma-K configuration");
  assert(a.config.v % cfg.kb == 0);
  assert(sel.full_size == b.cols());
  assert(a.cols == b.rows());
  const int64_t c_rows = a.compressed_rows();
  const int64_t n_out = sel.selected();
  const double row_frac = static_cast<double>(a.config.n) / a.config.m;
  const int64_t cr_per_block = static_cast<int64_t>(cfg.mb * row_frac);
  const int64_t cr_per_warp = static_cast<int64_t>(cfg.mw * row_frac);
  assert(cr_per_warp % kMmaM == 0 && "warp tile must cover whole mma tiles in compressed space");
  assert(cfg.nw % kMmaN == 0);

  // Device-format metadata: packed words, reorganized per Fig. 10 when the
  // packing optimization is on.
  const std::vector<uint32_t> packed_meta = PackMetadata(a.meta, cfg.packed_metadata);

  MatrixF out(a.rows, n_out);
  TileTrace local_trace;
  TileTrace& t = trace != nullptr ? *trace : local_trace;

  const int64_t mp = CeilDiv(a.rows, cfg.mb) * cfg.mb;
  const int64_t np = CeilDiv(std::max<int64_t>(n_out, 1), cfg.nb) * cfg.nb;
  const int64_t k_steps = a.cols / cfg.kb;
  const int64_t windows_per_k = a.config.v / cfg.kb;

  for (int64_t bm = 0; bm < mp / cfg.mb; ++bm) {
    for (int64_t bn = 0; bn < np / cfg.nb; ++bn) {
      ++t.thread_blocks;
      const int64_t cr_base = bm * cr_per_block;
      const int64_t nc_base = bn * cfg.nb;

      // Register accumulators for this block, in compressed-row space.
      MatrixF acc(cr_per_block, cfg.nb);
      int64_t current_window = -1;

      auto shuffle_out = [&](int64_t window) {
        // The C_IR shuffle: route each compressed row's accumulator to its
        // original row for the window that just finished, then clear.
        for (int64_t i = 0; i < cr_per_block; ++i) {
          const int64_t cr = cr_base + i;
          if (cr >= c_rows) {
            break;
          }
          const int64_t orig_row = cr / a.config.n * a.config.m + a.indices(cr, window);
          for (int64_t j = 0; j < cfg.nb && nc_base + j < n_out; ++j) {
            out(orig_row, nc_base + j) += acc(i, j);
          }
        }
        acc.Fill(0.0f);
        ++t.window_shuffles;
      };

      for (int64_t step = 0; step < k_steps; ++step) {
        const int64_t k0 = step * cfg.kb;
        const int64_t window = step / windows_per_k;
        if (window != current_window) {
          if (current_window >= 0) {
            shuffle_out(current_window);
          }
          current_window = window;
          t.index_bytes += static_cast<double>(cr_per_block);
        }

        // Stage the A, metadata and B tiles ("GMEM -> SMEM" of Alg. 1).
        t.a_data_bytes += static_cast<double>(cr_per_block) * (cfg.kb / 2) * 2.0;
        t.meta_bytes += static_cast<double>(cr_per_block) * (cfg.kb / 2) * 0.25;
        t.b_bytes += static_cast<double>(cfg.kb) * cfg.nb * 2.0;

        // Warp tiles, then SpTC tiles.
        for (int64_t wm = 0; wm < cr_per_block; wm += cr_per_warp) {
          for (int64_t wn = 0; wn < cfg.nb; wn += cfg.nw) {
            for (int64_t tm = 0; tm < cr_per_warp; tm += kMmaM) {
              for (int64_t tn = 0; tn < cfg.nw; tn += kMmaN) {
                const int64_t cr0 = cr_base + wm + tm;
                const int64_t nc0 = nc_base + wn + tn;
                if (nc0 >= n_out) {
                  continue;  // fully padded column tile
                }
                SparseAFragment afrag;
                for (int i = 0; i < kMmaM; ++i) {
                  const int64_t cr = cr0 + i;
                  for (int j = 0; j < kMmaKCompressed; ++j) {
                    if (cr < c_rows) {
                      const int64_t cc = k0 / 2 + j;
                      afrag.values[i * kMmaKCompressed + j] = a.data(cr, cc);
                      afrag.meta[i * kMmaKCompressed + j] =
                          PackedMetaAt(packed_meta, a.compressed_cols(), cr, cc,
                                       cfg.packed_metadata);
                    } else {
                      afrag.values[i * kMmaKCompressed + j] = 0.0f;
                      afrag.meta[i * kMmaKCompressed + j] =
                          static_cast<uint8_t>(j % 2 == 0 ? 0 : 1);
                    }
                  }
                }
                DenseBFragment bfrag;
                for (int r = 0; r < kMmaK; ++r) {
                  for (int c = 0; c < kMmaN; ++c) {
                    const int64_t col = nc0 + c;
                    bfrag.values[r * kMmaN + c] =
                        col < n_out ? b(k0 + r, sel.indices[static_cast<size_t>(col)]) : 0.0f;
                  }
                }
                Accumulator frag_acc;
                for (int i = 0; i < kMmaM; ++i) {
                  for (int c = 0; c < kMmaN; ++c) {
                    const int64_t ar = wm + tm + i;
                    const int64_t an = wn + tn + c;
                    frag_acc.at(i, c) = ar < cr_per_block ? acc(ar, an) : 0.0f;
                  }
                }
                frag_acc = MmaSp(afrag, bfrag, frag_acc);
                ++t.mma_calls;
                for (int i = 0; i < kMmaM; ++i) {
                  for (int c = 0; c < kMmaN; ++c) {
                    const int64_t ar = wm + tm + i;
                    const int64_t an = wn + tn + c;
                    if (ar < cr_per_block) {
                      acc(ar, an) = frag_acc.at(i, c);
                    }
                  }
                }
              }
            }
          }
        }
      }
      if (current_window >= 0) {
        shuffle_out(current_window);
      }
      t.c_write_bytes += static_cast<double>(cfg.mb) * cfg.nb * 2.0;
    }
  }
  return out;
}

}  // namespace samoyeds
