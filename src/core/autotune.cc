#include "src/core/autotune.h"

#include <algorithm>
#include <limits>

#include "src/core/samoyeds_kernel.h"
#include "src/simgpu/timing_model.h"

namespace samoyeds {

std::vector<SsmmConfig> EnumerateSsmmConfigs(const DeviceSpec& device,
                                             const SamoyedsConfig& format) {
  std::vector<SsmmConfig> configs;
  const double row_frac = static_cast<double>(format.n) / format.m;
  for (int mb : {32, 64, 128, 256}) {
    for (int nb : {16, 32, 64, 128}) {
      for (int stages : {2, 3, 4}) {
        SsmmConfig c;
        c.mb = mb;
        c.nb = nb;
        c.kb = 32;
        c.mw = mb >= 64 ? mb / 2 : mb;
        c.nw = nb >= 16 ? nb / 2 : nb;
        c.stages = stages;
        if (c.mw % 16 != 0 || c.nw % 8 != 0) {
          continue;  // SpTC tile constraints (m16n8k32)
        }
        if (format.v % c.kb != 0) {
          continue;  // kb must divide the sub-row window
        }
        const int64_t smem = static_cast<int64_t>(stages) *
                             (static_cast<int64_t>(mb * row_frac) * c.kb + c.kb * nb) * 2;
        if (smem > device.smem_per_sm_bytes) {
          continue;
        }
        configs.push_back(c);
      }
    }
  }
  return configs;
}

double SsmmActiveWorkingSetBytes(const GemmShape& shape, int64_t selected,
                                 const SamoyedsConfig& format, const SsmmConfig& cfg,
                                 const DeviceSpec& device) {
  const KernelProfile prof = SamoyedsKernel::Analyze(shape, selected, format, cfg, device);
  const TrafficReport& t = prof.traffic;
  // Per-block footprint: the staged panels (already stages x (A + B) bf16
  // bytes plus the SEL slice, from Analyze) and the fp32 output tile the
  // block accumulates into.
  const double per_block = static_cast<double>(t.smem_bytes_per_block) +
                           static_cast<double>(cfg.mb) * cfg.nb * 4.0;
  const double concurrent =
      std::min(static_cast<double>(std::max<int64_t>(1, t.thread_blocks)),
               static_cast<double>(TimingModel::ResidentBlocksPerSm(device, t)) * device.sm_count);
  return per_block * concurrent;
}

namespace {

// Per-candidate scorecard for the lexicographic (fits-LLC, cost) ranking.
struct Scored {
  double cost_ms = std::numeric_limits<double>::infinity();
  double simulated_ms = 0.0;
  double working_set_bytes = 0.0;
  double residency_ms = 0.0;
  bool fits_llc = false;
};

Scored ScoreConfig(const TimingModel& model, const GemmShape& shape, int64_t sel_eff,
                   const SamoyedsConfig& format, const SsmmConfig& cfg) {
  const DeviceSpec& device = model.device();
  const KernelProfile prof = SamoyedsKernel::Analyze(shape, sel_eff, format, cfg, device);
  Scored s;
  s.simulated_ms = model.Estimate(prof.traffic).total_ms;
  s.working_set_bytes = SsmmActiveWorkingSetBytes(shape, sel_eff, format, cfg, device);
  s.fits_llc = model.FitsLlc(s.working_set_bytes);
  // Repeat traffic: everything beyond the compulsory footprint — the A-panel
  // re-reads across column tiles and B-panel re-reads across row tiles.
  const double repeat = std::max(
      0.0, prof.traffic.gmem_read_bytes + prof.traffic.gmem_write_bytes -
               prof.traffic.gmem_unique_bytes);
  s.residency_ms = model.ResidencyMs(s.working_set_bytes, repeat);
  s.cost_ms = s.simulated_ms + s.residency_ms;
  return s;
}

}  // namespace

AutotuneResult AutotuneSsmm(const GemmShape& shape, int64_t selected,
                            const SamoyedsConfig& format, const DeviceSpec& device,
                            KernelBackend backend) {
  const TimingModel model(device);
  // Lane padding: SIMD backends occupy RoundUp(selected, width) lanes per
  // pass — tail lanes do the work but their results are dropped, so the
  // tuner models the padded width. Scalar sees the true width.
  const int64_t width = KernelBackendVectorWidth(backend);
  const int64_t sel_eff = RoundUp(std::max<int64_t>(selected, 1), width);

  AutotuneResult result;
  result.backend = backend;
  result.default_ms =
      model
          .Estimate(SamoyedsKernel::Analyze(shape, sel_eff, format, SsmmConfig::Default(), device)
                        .traffic)
          .total_ms;
  result.simulated_ms = std::numeric_limits<double>::infinity();

  Scored best;
  bool first = true;
  for (const SsmmConfig& candidate : EnumerateSsmmConfigs(device, format)) {
    const Scored s = ScoreConfig(model, shape, sel_eff, format, candidate);
    // Lexicographic: an LLC-resident working set beats any spilling one; a
    // config that spills is never picked while a fitting candidate exists.
    const bool better = first || (s.fits_llc && !best.fits_llc) ||
                        (s.fits_llc == best.fits_llc && s.cost_ms < best.cost_ms);
    if (better) {
      best = s;
      result.config = candidate;
      first = false;
    }
  }
  result.simulated_ms = best.simulated_ms;
  result.working_set_bytes = best.working_set_bytes;
  result.fits_llc = best.fits_llc;
  result.residency_ms = best.residency_ms;
  return result;
}

AutotuneResult AutotuneSsmm(const GemmShape& shape, int64_t selected,
                            const SamoyedsConfig& format, const DeviceSpec& device) {
  return AutotuneSsmm(shape, selected, format, device, KernelBackend::kScalar);
}

}  // namespace samoyeds
