#include "src/core/autotune.h"

#include <limits>

#include "src/core/samoyeds_kernel.h"
#include "src/simgpu/timing_model.h"

namespace samoyeds {

std::vector<SsmmConfig> EnumerateSsmmConfigs(const DeviceSpec& device,
                                             const SamoyedsConfig& format) {
  std::vector<SsmmConfig> configs;
  const double row_frac = static_cast<double>(format.n) / format.m;
  for (int mb : {32, 64, 128, 256}) {
    for (int nb : {16, 32, 64, 128}) {
      for (int stages : {2, 3, 4}) {
        SsmmConfig c;
        c.mb = mb;
        c.nb = nb;
        c.kb = 32;
        c.mw = mb >= 64 ? mb / 2 : mb;
        c.nw = nb >= 16 ? nb / 2 : nb;
        c.stages = stages;
        if (c.mw % 16 != 0 || c.nw % 8 != 0) {
          continue;  // SpTC tile constraints (m16n8k32)
        }
        if (format.v % c.kb != 0) {
          continue;  // kb must divide the sub-row window
        }
        const int64_t smem = static_cast<int64_t>(stages) *
                             (static_cast<int64_t>(mb * row_frac) * c.kb + c.kb * nb) * 2;
        if (smem > device.smem_per_sm_bytes) {
          continue;
        }
        configs.push_back(c);
      }
    }
  }
  return configs;
}

AutotuneResult AutotuneSsmm(const GemmShape& shape, int64_t selected,
                            const SamoyedsConfig& format, const DeviceSpec& device) {
  const TimingModel model(device);
  AutotuneResult result;
  result.default_ms =
      model
          .Estimate(SamoyedsKernel::Analyze(shape, selected, format, SsmmConfig::Default(), device)
                        .traffic)
          .total_ms;
  result.simulated_ms = std::numeric_limits<double>::infinity();
  for (const SsmmConfig& candidate : EnumerateSsmmConfigs(device, format)) {
    const double ms =
        model.Estimate(SamoyedsKernel::Analyze(shape, selected, format, candidate, device).traffic)
            .total_ms;
    if (ms < result.simulated_ms) {
      result.simulated_ms = ms;
      result.config = candidate;
    }
  }
  return result;
}

}  // namespace samoyeds
