// Runtime-dispatched SIMD backends for the SSMM packed-panel inner loops.
//
// The packed execution path (SamoyedsKernel::RunPanel) spends its time in
// branch-free contiguous axpys: for each (sub-row window, compressed row)
// group, out_row += sum_e a_vals[e] * panel_row(a_cols[e]). That loop nest
// vectorizes across the panel-column (token) dimension without changing the
// per-element accumulation order, so SIMD variants differ from the scalar
// oracle only in using fused multiply-adds.
//
// Accumulation contract (recorded per run in ReportProvenance):
//
//   scalar  — separate multiply and add per element, identical association
//             to RunReference ⇒ *bit-exact* against the fragment-model
//             oracle (the property every serving bit-identity gate uses).
//   avx2 / avx512 / neon — same association (entries accumulate in packed
//             order per output element) but each step is a fused
//             multiply-add, so products are not rounded before adding ⇒
//             gated by a ULP-bounded oracle against an fp64 reference, not
//             by bit identity.
//
// Backends are selected at runtime: cpuid (plus XGETBV for OS state-save
// support) decides what the machine can run, `auto` resolves to the widest
// supported variant, and SAMOYEDS_FORCE_BACKEND overrides the process-wide
// default (explicit per-call backends, e.g. in tests, are never overridden).
// Each SIMD variant lives in its own translation unit compiled with just
// that ISA's flags, so the core library still runs on the baseline ISA.

#ifndef SAMOYEDS_SRC_CORE_KERNEL_BACKEND_H_
#define SAMOYEDS_SRC_CORE_KERNEL_BACKEND_H_

#include <cstdint>

namespace samoyeds {

enum class KernelBackend {
  kScalar = 0,  // bit-exact oracle path (default)
  kAvx2 = 1,    // 8-wide fp32 FMA
  kAvx512 = 2,  // 16-wide fp32 FMA, masked ragged edges
  kNeon = 3,    // 4-wide fp32 FMA (aarch64)
  kAuto = 4,    // resolve to the widest supported variant
};

// One RunPanel traversal in backend-ABI form: raw pointers only, so the
// per-ISA translation units depend on nothing but this header. Groups are
// (window, compressed-row) pairs in window-major order; group g owns packed
// entries [a_off[g], a_off[g+1]) and accumulates into output row
// group_rows[g]. `out` rows are += targets (callers pre-zero the matrix).
struct PanelGroupTask {
  const float* a_vals = nullptr;
  const int32_t* a_cols = nullptr;
  const int64_t* a_off = nullptr;      // n_groups + 1 offsets
  const int32_t* group_rows = nullptr; // output row per group
  int64_t n_groups = 0;
  const float* panel = nullptr;        // row-major (k x n_out)
  int64_t n_out = 0;                   // panel/output row width
  float* out = nullptr;                // row-major, pre-zeroed accumulate target
};

using PanelKernelFn = void (*)(const PanelGroupTask&);

// ---- CPU feature detection (cpuid + xgetbv on x86, compile-time on arm) ----
bool CpuHasAvx2();
bool CpuHasAvx512();
bool CpuHasNeon();

// Whether this binary contains code for the backend (per-ISA TU compiled in).
bool KernelBackendCompiled(KernelBackend b);
// Compiled in AND runnable on this machine. kScalar is always supported;
// kAuto is a selector, not a runnable backend, and reports false.
bool KernelBackendSupported(KernelBackend b);

// The backend's panel kernel, or nullptr for kScalar/kAuto/uncompiled
// variants (callers fall back to the built-in scalar loop).
PanelKernelFn GetPanelKernel(KernelBackend b);

// fp32 lanes per vector op (1 for scalar). Feeds the autotuner's
// lane-padding model: a SEL width that is not a multiple of the vector
// width wastes tail lanes.
int KernelBackendVectorWidth(KernelBackend b);

const char* KernelBackendName(KernelBackend b);
// Parses "auto" | "scalar" | "avx2" | "avx512" | "neon". Returns false on
// anything else; *out is untouched on failure.
bool ParseKernelBackend(const char* text, KernelBackend* out);

// Resolves a requested backend to a runnable one: kAuto picks the widest
// supported variant (avx512 > avx2 > neon > scalar); a specific request
// resolves to itself when supported. Returns false (and leaves *out at
// kScalar) when the specific request is not runnable on this machine.
bool ResolveKernelBackend(KernelBackend requested, KernelBackend* out);

// Process-wide default backend used by RunPanel calls that do not pass one
// explicitly (the serving engine sets this from EngineConfig). Starts at
// kScalar. When the SAMOYEDS_FORCE_BACKEND environment variable names a
// backend, Set requests are overridden by it (the CI sanitizer job uses
// this to pin the whole suite's implicit path to scalar); explicit per-call
// backends are never overridden. Returns the backend actually installed.
KernelBackend SetKernelBackend(KernelBackend b);
KernelBackend ActiveKernelBackend();

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_CORE_KERNEL_BACKEND_H_
