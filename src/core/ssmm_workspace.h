// Reusable scratch arena for the packed SSMM execution path.
//
// Every hot-path entry point (SamoyedsKernel::Run / RunPanel, the expert
// forward chain, the MoE layer executors) takes one of these by reference
// instead of allocating fresh matrices per call. Buffers are cycled with
// Matrix::Reshape / vector capacity reuse, so after a warm-up call at the
// steady-state shape the whole SSMM pipeline performs zero heap allocations
// (asserted by bench/micro_kernel_wallclock's allocation counter).

#ifndef SAMOYEDS_SRC_CORE_SSMM_WORKSPACE_H_
#define SAMOYEDS_SRC_CORE_SSMM_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "src/formats/sel.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

struct SsmmWorkspace {
  // --- RunPanel internals ----------------------------------------------
  // Packed A-side operand: for each (sub-row window, compressed row) group,
  // the non-zero bf16-rounded values and their absolute dense-k columns, in
  // ascending column order (the order the SpTC reference accumulates in).
  std::vector<float> a_vals;
  std::vector<int32_t> a_cols;
  std::vector<int64_t> a_off;   // group start offsets, n_windows * c_rows + 1
  std::vector<int32_t> a_rows;  // output row per group (C_IR shuffle target)
  // Per-window accumulator row (the register-resident C fragment analogue).
  std::vector<float> partial;

  // --- Caller-side staging buffers -------------------------------------
  // SEL-selected, pre-rounded B panel (k x selected) for one Run call.
  MatrixF panel;
  // Expert-chain intermediates, feature-major (tokens are columns), so the
  // three projections chain without any transpose copies (§4.5).
  MatrixF gate_t;  // intermediate x tokens
  MatrixF up_t;    // intermediate x tokens
  MatrixF out_t;   // hidden x tokens
};

// Workspace for the sequential MoE layer executor.
struct MoeWorkspace {
  SsmmWorkspace ssmm;
  MatrixF expert_out;  // one expert's (tokens_e x hidden) output, reused
  Selection sel;       // reused selection buffer (indices capacity persists)
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_CORE_SSMM_WORKSPACE_H_
