#include "src/core/kernel_backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define SAMOYEDS_X86 1
#endif

namespace samoyeds {

// Defined in the per-ISA translation units (kernel_backend_avx2.cc /
// _avx512.cc / _neon.cc). When a unit is built without its ISA enabled it
// still defines the symbols, with `*Compiled = false` and a stub kernel, so
// the link never depends on the build architecture.
extern const bool kPanelKernelAvx2Compiled;
extern const bool kPanelKernelAvx512Compiled;
extern const bool kPanelKernelNeonCompiled;
void PanelKernelAvx2(const PanelGroupTask& task);
void PanelKernelAvx512(const PanelGroupTask& task);
void PanelKernelNeon(const PanelGroupTask& task);

namespace {

#ifdef SAMOYEDS_X86
// XCR0 via xgetbv: the OS must save/restore the vector state or the ISA
// bits in cpuid are unusable (VMs and containers do surface this).
uint64_t ReadXcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

struct X86Features {
  bool avx2 = false;
  bool avx512 = false;
};

X86Features DetectX86() {
  X86Features f;
  uint32_t eax, ebx, ecx, edx;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) {
    return f;
  }
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx) {
    return f;
  }
  const uint64_t xcr0 = ReadXcr0();
  const bool ymm_enabled = (xcr0 & 0x6) == 0x6;          // XMM + YMM state
  const bool zmm_enabled = (xcr0 & 0xE6) == 0xE6;        // + opmask, ZMM hi
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) {
    return f;
  }
  const bool avx2 = (ebx & (1u << 5)) != 0;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  f.avx2 = ymm_enabled && avx2 && fma;
  f.avx512 = zmm_enabled && avx512f;
  return f;
}

const X86Features& X86() {
  static const X86Features f = DetectX86();
  return f;
}
#endif  // SAMOYEDS_X86

// SAMOYEDS_FORCE_BACKEND, parsed once. kAuto doubles as "no force".
KernelBackend ForcedBackend() {
  static const KernelBackend forced = [] {
    const char* env = std::getenv("SAMOYEDS_FORCE_BACKEND");
    if (env == nullptr || *env == '\0') {
      return KernelBackend::kAuto;
    }
    KernelBackend parsed = KernelBackend::kAuto;
    if (!ParseKernelBackend(env, &parsed) || parsed == KernelBackend::kAuto) {
      std::fprintf(stderr, "SAMOYEDS_FORCE_BACKEND: ignoring unknown backend '%s'\n", env);
      return KernelBackend::kAuto;
    }
    if (!KernelBackendSupported(parsed)) {
      std::fprintf(stderr, "SAMOYEDS_FORCE_BACKEND: %s not runnable on this CPU, ignoring\n",
                   KernelBackendName(parsed));
      return KernelBackend::kAuto;
    }
    return parsed;
  }();
  return forced;
}

std::atomic<KernelBackend>& ActiveSlot() {
  static std::atomic<KernelBackend> slot{
      ForcedBackend() != KernelBackend::kAuto ? ForcedBackend() : KernelBackend::kScalar};
  return slot;
}

}  // namespace

bool CpuHasAvx2() {
#ifdef SAMOYEDS_X86
  return X86().avx2;
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#ifdef SAMOYEDS_X86
  return X86().avx512;
#else
  return false;
#endif
}

bool CpuHasNeon() {
#if defined(__ARM_NEON) || defined(__aarch64__)
  return true;  // baseline on aarch64
#else
  return false;
#endif
}

bool KernelBackendCompiled(KernelBackend b) {
  switch (b) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
      return kPanelKernelAvx2Compiled;
    case KernelBackend::kAvx512:
      return kPanelKernelAvx512Compiled;
    case KernelBackend::kNeon:
      return kPanelKernelNeonCompiled;
    case KernelBackend::kAuto:
      return false;
  }
  return false;
}

bool KernelBackendSupported(KernelBackend b) {
  switch (b) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
      return kPanelKernelAvx2Compiled && CpuHasAvx2();
    case KernelBackend::kAvx512:
      return kPanelKernelAvx512Compiled && CpuHasAvx512();
    case KernelBackend::kNeon:
      return kPanelKernelNeonCompiled && CpuHasNeon();
    case KernelBackend::kAuto:
      return false;
  }
  return false;
}

PanelKernelFn GetPanelKernel(KernelBackend b) {
  if (!KernelBackendSupported(b)) {
    return nullptr;
  }
  switch (b) {
    case KernelBackend::kAvx2:
      return &PanelKernelAvx2;
    case KernelBackend::kAvx512:
      return &PanelKernelAvx512;
    case KernelBackend::kNeon:
      return &PanelKernelNeon;
    default:
      return nullptr;  // scalar runs the built-in loop in samoyeds_kernel.cc
  }
}

int KernelBackendVectorWidth(KernelBackend b) {
  switch (b) {
    case KernelBackend::kAvx2:
      return 8;
    case KernelBackend::kAvx512:
      return 16;
    case KernelBackend::kNeon:
      return 4;
    default:
      return 1;
  }
}

const char* KernelBackendName(KernelBackend b) {
  switch (b) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kAvx512:
      return "avx512";
    case KernelBackend::kNeon:
      return "neon";
    case KernelBackend::kAuto:
      return "auto";
  }
  return "scalar";
}

bool ParseKernelBackend(const char* text, KernelBackend* out) {
  if (text == nullptr || out == nullptr) {
    return false;
  }
  for (KernelBackend b : {KernelBackend::kAuto, KernelBackend::kScalar, KernelBackend::kAvx2,
                          KernelBackend::kAvx512, KernelBackend::kNeon}) {
    if (std::strcmp(text, KernelBackendName(b)) == 0) {
      *out = b;
      return true;
    }
  }
  return false;
}

bool ResolveKernelBackend(KernelBackend requested, KernelBackend* out) {
  *out = KernelBackend::kScalar;
  if (requested == KernelBackend::kAuto) {
    for (KernelBackend b :
         {KernelBackend::kAvx512, KernelBackend::kAvx2, KernelBackend::kNeon}) {
      if (KernelBackendSupported(b)) {
        *out = b;
        return true;
      }
    }
    return true;  // scalar
  }
  if (!KernelBackendSupported(requested)) {
    return false;
  }
  *out = requested;
  return true;
}

KernelBackend SetKernelBackend(KernelBackend b) {
  KernelBackend resolved = KernelBackend::kScalar;
  if (!ResolveKernelBackend(b, &resolved)) {
    resolved = KernelBackend::kScalar;
  }
  if (ForcedBackend() != KernelBackend::kAuto) {
    resolved = ForcedBackend();
  }
  ActiveSlot().store(resolved, std::memory_order_relaxed);
  return resolved;
}

KernelBackend ActiveKernelBackend() {
  return ActiveSlot().load(std::memory_order_relaxed);
}

}  // namespace samoyeds
