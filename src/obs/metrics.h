// Counters and log-bucketed histograms for serving metrics.
//
// `Histogram` is an HdrHistogram-style log-linear sketch: samples are mapped
// to integer units (`scale` units per 1.0 of input — record milliseconds at
// scale 1000 for microsecond resolution), units below kSubBuckets land in
// exact one-unit buckets, and each power-of-two octave above splits into
// kSubBuckets/2 sub-buckets, bounding relative quantile error by
// 2/kSubBuckets (< 1.6%). Recording is O(1) with no allocation, so the
// engine can feed every request's TTFT/turnaround in without keeping the
// per-sample vectors the old sort-then-index percentile path required —
// ServingReport's wall-clock p95s fall out of the buckets for free.
//
// Percentiles use the nearest-rank definition on bucket upper bounds, which
// makes them deterministic for a deterministic sample sequence and *exact*
// whenever every sample sits in the linear region (all the step-count
// latencies the tests assert on).
//
// `MetricRegistry` is a name-keyed bag of both, for instrumentation points
// that want to publish without threading a struct through every layer.
// Everything here is engine-thread-only (like EngineMetrics).

#ifndef SAMOYEDS_SRC_OBS_METRICS_H_
#define SAMOYEDS_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace samoyeds {
namespace obs {

class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

class Histogram {
 public:
  static constexpr int kSubBucketBits = 7;                 // 128 exact low buckets
  static constexpr int64_t kSubBuckets = 1 << kSubBucketBits;

  explicit Histogram(double scale = 1.0) : scale_(scale) {}

  // Negative samples clamp to 0; values beyond ~2^62 units saturate the top
  // bucket. O(1), allocation-free.
  void Record(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Nearest-rank percentile (q in [0, 1]): the bucket upper bound of the
  // ceil(q * count)-th smallest sample, clamped to the exact max. 0 when
  // empty. Exact for integer samples below kSubBuckets units.
  double Percentile(double q) const;

  void Reset();

  // Occupied (bucket upper bound in input units, count) pairs, ascending —
  // the machine-readable histogram for JSON export and tests.
  std::vector<std::pair<double, int64_t>> NonZeroBuckets() const;

 private:
  static int BucketIndex(int64_t units);
  static int64_t BucketUpperBound(int index);  // inclusive, in units

  double scale_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<int64_t> buckets_;  // sized on first Record
};

class MetricRegistry {
 public:
  Counter& GetCounter(const std::string& name) { return counters_[name]; }
  // `scale` applies only when `name` is first created.
  Histogram& GetHistogram(const std::string& name, double scale = 1.0);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  // {"counters": {name: value, ...}, "histograms": {name: {count, mean, p50,
  // p95, p99, max}, ...}} — one JSON object.
  std::string ToJson() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace obs
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_OBS_METRICS_H_
