// Flight-recorder event tracer: always compiled in, near-free when disabled.
//
// The serving stack emits *events* — step-phase spans on the engine thread,
// per-tile spans on shard-pinned expert workers, per-request lifecycle
// markers keyed by session id, and counter samples (KV pages, backlog depth,
// batch rows). Each thread records into its own fixed-capacity ring buffer:
//
//   * one relaxed atomic load decides "tracing off" (the steady-state cost
//     when no trace is being captured — no locks, no branches beyond the
//     predicate, nothing written);
//   * enabled, an event is a ~48-byte struct write into a preallocated
//     per-thread ring — no locking on the hot path, no allocation after the
//     thread's first event (the warmup registration), preserving the PR 3
//     zero-steady-state-allocation invariant;
//   * the ring wraps (flight-recorder mode): a bounded capture of the most
//     recent `ring_capacity` events per thread, so a week-long serve can
//     still dump the last seconds of timeline on demand.
//
// Export is Chrome trace-event JSON ("traceEvents"), loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Request lifecycle events use
// async phases ("b"/"n"/"e") keyed by session id so every request gets its
// own timeline row; counters use "C" phases and render as counter tracks.
//
// Detail levels nest: kStep (engine step phases + counters) < kRequest
// (+ per-request lifecycle) < kFull (+ per-layer and per-tile worker spans).
// An event tagged with level L is recorded only when the tracer runs at
// detail >= L.
//
// Concurrency contract: Emit is safe from any thread at any time. Start /
// Stop / Snapshot / ToChromeJson must run while no other thread is emitting
// (the engine guarantees this: the expert pool only emits inside tasks, and
// traces are started before Submit and exported after RunUntilDrained).

#ifndef SAMOYEDS_SRC_OBS_TRACER_H_
#define SAMOYEDS_SRC_OBS_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace samoyeds {
namespace obs {

enum class TraceDetail : uint8_t {
  kStep = 0,     // engine step phases + counter tracks
  kRequest = 1,  // + per-request lifecycle (async spans keyed by session id)
  kFull = 2,     // + per-layer spans and per-tile expert-worker spans
};

const char* TraceDetailName(TraceDetail d);
// "step" | "request" | "full"; false on anything else.
bool ParseTraceDetail(const char* s, TraceDetail* out);

enum class EventType : uint8_t {
  kBegin,         // ph "B": open a nested span on this thread
  kEnd,           // ph "E": close the innermost open span
  kInstant,       // ph "i": a point event on this thread
  kCounter,       // ph "C": sample of a named counter track (value field)
  kAsyncBegin,    // ph "b": open an async span keyed by (category, id)
  kAsyncInstant,  // ph "n": a point event on that async track
  kAsyncEnd,      // ph "e": close the async span
};

struct TraceEvent {
  const char* category = nullptr;  // static-lifetime string
  const char* name = nullptr;      // static-lifetime string
  EventType type = EventType::kInstant;
  int64_t ts_ns = 0;  // monotonic, relative to Tracer::Start
  int64_t id = 0;     // async track key (session id); 0 for thread events
  int64_t value = 0;  // counter sample / span argument (e.g. step number)
};

// One thread's recorded timeline, ring-unrolled oldest-first.
struct TraceThread {
  std::string name;
  int tid = 0;
  int64_t dropped = 0;  // events overwritten by the ring (flight recorder)
  std::vector<TraceEvent> events;
};

class Tracer {
 public:
  static constexpr int64_t kDefaultRingCapacity = 1 << 18;  // events per thread

  // The process-wide tracer every instrumentation site emits to.
  static Tracer& Get();

  // Begins a fresh capture (prior buffers are discarded). `ring_capacity`
  // bounds the per-thread event count; older events are overwritten.
  void Start(TraceDetail detail, int64_t ring_capacity = kDefaultRingCapacity);
  // Disables recording; captured buffers stay readable until the next Start.
  void Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool enabled(TraceDetail level) const {
    return enabled_.load(std::memory_order_relaxed) && level <= detail_;
  }
  TraceDetail detail() const { return detail_; }

  // Records one event on the calling thread's ring. No-op when disabled or
  // when `level` exceeds the capture detail. `category` and `name` must be
  // string literals (the tracer stores the pointers).
  void Emit(const char* category, const char* name, EventType type, TraceDetail level,
            int64_t id, int64_t value);

  // Captured timelines, one per thread that emitted, registration order.
  std::vector<TraceThread> Snapshot() const;
  int64_t total_events() const;    // emitted (including overwritten)
  int64_t dropped_events() const;  // overwritten by ring wrap, all threads

  // Chrome trace-event JSON (the whole capture, threads interleaved).
  std::string ToChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::vector<TraceEvent> ring;
    int64_t head = 0;  // events ever written; slot = head % ring.size()
    std::string name;
    int tid = 0;
  };

  Tracer() = default;
  ThreadBuffer* RegisterThread();
  int64_t NowNs() const;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> epoch_{0};  // bumped by Start: invalidates caches
  TraceDetail detail_ = TraceDetail::kStep;
  int64_t ring_capacity_ = kDefaultRingCapacity;
  std::chrono::steady_clock::time_point start_tp_{};

  mutable std::mutex mu_;  // guards buffers_ (registration + snapshot)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

// Names the calling thread in trace exports ("engine", "shard0.worker2", …).
// Takes effect when the thread's buffer registers (its first event after a
// Start); may be called before any tracer exists.
void SetThreadName(const std::string& name);

// ---- Emission helpers (the instrumentation API) ----------------------------

inline void TraceInstant(const char* category, const char* name, TraceDetail level,
                         int64_t value = 0) {
  Tracer::Get().Emit(category, name, EventType::kInstant, level, 0, value);
}

inline void TraceCounter(const char* category, const char* name, TraceDetail level,
                         int64_t value) {
  Tracer::Get().Emit(category, name, EventType::kCounter, level, 0, value);
}

inline void TraceAsyncBegin(const char* category, const char* name, TraceDetail level,
                            int64_t id, int64_t value = 0) {
  Tracer::Get().Emit(category, name, EventType::kAsyncBegin, level, id, value);
}

inline void TraceAsyncInstant(const char* category, const char* name, TraceDetail level,
                              int64_t id, int64_t value = 0) {
  Tracer::Get().Emit(category, name, EventType::kAsyncInstant, level, id, value);
}

inline void TraceAsyncEnd(const char* category, const char* name, TraceDetail level,
                          int64_t id, int64_t value = 0) {
  Tracer::Get().Emit(category, name, EventType::kAsyncEnd, level, id, value);
}

// RAII span: Begin at construction, End at destruction. One enabled-check at
// construction; a disabled tracer costs a relaxed load and a branch.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name, TraceDetail level, int64_t value = 0)
      : category_(category), name_(name), level_(level) {
    Tracer& tracer = Tracer::Get();
    if (tracer.enabled(level)) {
      active_ = true;
      tracer.Emit(category, name, EventType::kBegin, level, 0, value);
    }
  }
  ~ScopedSpan() {
    if (active_) {
      Tracer::Get().Emit(category_, name_, EventType::kEnd, level_, 0, 0);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* category_;
  const char* name_;
  TraceDetail level_;
  bool active_ = false;
};

}  // namespace obs
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_OBS_TRACER_H_
