#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace samoyeds {
namespace obs {

namespace {

// Largest unit count the bucket math accepts (saturation bound, < 2^62 so
// the shift arithmetic in BucketUpperBound never overflows).
constexpr double kMaxUnits = 4.0e18;

// Buckets: kSubBuckets exact low buckets + 64 sub-buckets per octave for
// every octave a <= 2^62 value can land in.
constexpr int kNumBuckets =
    static_cast<int>(Histogram::kSubBuckets) + 57 * (static_cast<int>(Histogram::kSubBuckets) / 2);

}  // namespace

int Histogram::BucketIndex(int64_t units) {
  if (units < kSubBuckets) {
    return static_cast<int>(units);
  }
  // Octave of the leading bit; k sub-bucket shift keeps kSubBuckets/2
  // buckets per octave, so relative resolution stays 2/kSubBuckets.
  const int msb = std::bit_width(static_cast<uint64_t>(units)) - 1;  // >= kSubBucketBits
  const int k = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>((units >> k) - kSubBuckets / 2);
  return static_cast<int>(kSubBuckets) + (k - 1) * static_cast<int>(kSubBuckets / 2) + sub;
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) {
    return index;  // exact: bucket holds exactly this unit value
  }
  const int rel = index - static_cast<int>(kSubBuckets);
  const int k = rel / static_cast<int>(kSubBuckets / 2) + 1;
  const int sub = rel % static_cast<int>(kSubBuckets / 2);
  return ((kSubBuckets / 2 + sub + 1) << k) - 1;
}

void Histogram::Record(double value) {
  if (!(value > 0.0)) {  // negatives and NaN clamp to 0 — stats and bucket alike
    value = 0.0;
  }
  const double scaled = std::min(value * scale_, kMaxUnits);
  const int64_t units = std::llround(scaled);
  if (buckets_.empty()) {
    buckets_.resize(static_cast<size_t>(kNumBuckets), 0);
  }
  ++buckets_[static_cast<size_t>(BucketIndex(units))];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Upper bound of the sample's bucket, never beyond the observed max
      // (keeps p100 exact and the sketch conservative from above).
      return std::min(static_cast<double>(BucketUpperBound(static_cast<int>(i))) / scale_,
                      max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

std::vector<std::pair<double, int64_t>> Histogram::NonZeroBuckets() const {
  std::vector<std::pair<double, int64_t>> out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      out.emplace_back(static_cast<double>(BucketUpperBound(static_cast<int>(i))) / scale_,
                       buckets_[i]);
    }
  }
  return out;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name, double scale) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second;
  }
  return histograms_.emplace(name, Histogram(scale)).first->second;
}

std::string MetricRegistry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  char buf[160];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
                  static_cast<long long>(counter.value()));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n    \"%s\": {\"count\": %lld, \"mean\": %.6f, \"p50\": %.6f, "
                  "\"p95\": %.6f, \"p99\": %.6f, \"max\": %.6f}",
                  first ? "" : ",", name.c_str(), static_cast<long long>(hist.count()),
                  hist.mean(), hist.Percentile(0.50), hist.Percentile(0.95),
                  hist.Percentile(0.99), hist.max());
    out += buf;
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace obs
}  // namespace samoyeds
