#include "src/obs/tracer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace samoyeds {
namespace obs {

namespace {

// Name applied when this thread's buffer registers; survives Start/Stop
// cycles so pool workers name themselves once at spawn.
thread_local std::string t_thread_name;

// Per-thread buffer cache: valid while the epoch matches, so a Start() (new
// capture) forces re-registration and a fresh ring.
struct ThreadCache {
  uint64_t epoch = 0;
  void* buffer = nullptr;  // Tracer::ThreadBuffer*, opaque here
};
thread_local ThreadCache t_cache;

}  // namespace

const char* TraceDetailName(TraceDetail d) {
  switch (d) {
    case TraceDetail::kStep:
      return "step";
    case TraceDetail::kRequest:
      return "request";
    case TraceDetail::kFull:
      return "full";
  }
  return "?";
}

bool ParseTraceDetail(const char* s, TraceDetail* out) {
  if (std::strcmp(s, "step") == 0) {
    *out = TraceDetail::kStep;
  } else if (std::strcmp(s, "request") == 0) {
    *out = TraceDetail::kRequest;
  } else if (std::strcmp(s, "full") == 0) {
    *out = TraceDetail::kFull;
  } else {
    return false;
  }
  return true;
}

void SetThreadName(const std::string& name) { t_thread_name = name; }

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: emitters may outlive main
  return *tracer;
}

void Tracer::Start(TraceDetail detail, int64_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  buffers_.clear();
  detail_ = detail;
  ring_capacity_ = std::max<int64_t>(16, ring_capacity);
  start_tp_ = std::chrono::steady_clock::now();
  epoch_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

int64_t Tracer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_tp_)
      .count();
}

Tracer::ThreadBuffer* Tracer::RegisterThread() {
  std::lock_guard<std::mutex> lock(mu_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->ring.resize(static_cast<size_t>(ring_capacity_));
  buffer->tid = static_cast<int>(buffers_.size()) + 1;
  if (!t_thread_name.empty()) {
    buffer->name = t_thread_name;
  } else {
    char fallback[32];
    std::snprintf(fallback, sizeof(fallback), "thread-%d", buffer->tid);
    buffer->name = fallback;
  }
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  t_cache.epoch = epoch_.load(std::memory_order_relaxed);
  t_cache.buffer = raw;
  return raw;
}

void Tracer::Emit(const char* category, const char* name, EventType type, TraceDetail level,
                  int64_t id, int64_t value) {
  if (!enabled(level)) {
    return;
  }
  ThreadBuffer* buffer = t_cache.epoch == epoch_.load(std::memory_order_relaxed)
                             ? static_cast<ThreadBuffer*>(t_cache.buffer)
                             : RegisterThread();
  TraceEvent& slot =
      buffer->ring[static_cast<size_t>(buffer->head % static_cast<int64_t>(buffer->ring.size()))];
  slot.category = category;
  slot.name = name;
  slot.type = type;
  slot.ts_ns = NowNs();
  slot.id = id;
  slot.value = value;
  ++buffer->head;
}

std::vector<TraceThread> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceThread> threads;
  threads.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    TraceThread t;
    t.name = buffer->name;
    t.tid = buffer->tid;
    const int64_t capacity = static_cast<int64_t>(buffer->ring.size());
    const int64_t kept = std::min(buffer->head, capacity);
    t.dropped = buffer->head - kept;
    t.events.reserve(static_cast<size_t>(kept));
    for (int64_t i = buffer->head - kept; i < buffer->head; ++i) {
      t.events.push_back(buffer->ring[static_cast<size_t>(i % capacity)]);
    }
    threads.push_back(std::move(t));
  }
  return threads;
}

int64_t Tracer::total_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->head;
  }
  return total;
}

int64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    dropped += std::max<int64_t>(0, buffer->head - static_cast<int64_t>(buffer->ring.size()));
  }
  return dropped;
}

namespace {

void AppendEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

// One trace event as a Chrome trace-event object. Timestamps are
// microseconds (Chrome's unit) with nanosecond precision kept as decimals.
void AppendEvent(std::string& out, const TraceEvent& e, int tid) {
  const char* ph = "i";
  switch (e.type) {
    case EventType::kBegin:
      ph = "B";
      break;
    case EventType::kEnd:
      ph = "E";
      break;
    case EventType::kInstant:
      ph = "i";
      break;
    case EventType::kCounter:
      ph = "C";
      break;
    case EventType::kAsyncBegin:
      ph = "b";
      break;
    case EventType::kAsyncInstant:
      ph = "n";
      break;
    case EventType::kAsyncEnd:
      ph = "e";
      break;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), "{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f", ph, tid,
                static_cast<double>(e.ts_ns) / 1000.0);
  out += buf;
  out += ",\"cat\":\"";
  AppendEscaped(out, e.category);
  out += "\",\"name\":\"";
  AppendEscaped(out, e.name);
  out += '"';
  if (e.type == EventType::kAsyncBegin || e.type == EventType::kAsyncInstant ||
      e.type == EventType::kAsyncEnd) {
    std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(e.id));
    out += buf;
    // Instants render inside the enclosing async span.
    if (e.type == EventType::kAsyncInstant) {
      out += ",\"s\":\"t\"";
    }
  } else if (e.type == EventType::kInstant) {
    out += ",\"s\":\"t\"";  // thread-scoped instant
  }
  if (e.type == EventType::kCounter) {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%lld}",
                  static_cast<long long>(e.value));
    out += buf;
  } else if (e.type != EventType::kEnd) {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"v\":%lld}", static_cast<long long>(e.value));
    out += buf;
  }
  out += '}';
}

}  // namespace

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceThread> threads = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  char buf[128];
  for (const TraceThread& t : threads) {
    // Thread metadata: name + stable sort order (registration order).
    if (!first) {
      out += ",\n";
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"",
                  t.tid);
    out += buf;
    AppendEscaped(out, t.name.c_str());
    out += "\"}}";
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_sort_index\","
                  "\"args\":{\"sort_index\":%d}}",
                  t.tid, t.tid);
    out += buf;
    for (const TraceEvent& e : t.events) {
      out += ",\n";
      AppendEvent(out, e, t.tid);
    }
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace obs
}  // namespace samoyeds
