#include "src/sptc/mma_sp.h"

#include <cassert>
#include <cstring>

#include "src/tensor/bf16.h"

namespace samoyeds {

void ExpandSparseRow(const SparseAFragment& a, int row, float out[kMmaK]) {
  std::memset(out, 0, sizeof(float) * kMmaK);
  for (int g = 0; g < kMmaK / kSparsityGroup; ++g) {
    for (int t = 0; t < kKeptPerGroup; ++t) {
      const int packed_col = g * kKeptPerGroup + t;
      const uint8_t pos = a.meta_at(row, packed_col);
      assert(pos < kSparsityGroup);
      out[g * kSparsityGroup + pos] = a.value_at(row, packed_col);
    }
  }
}

bool MetadataIsValid(const SparseAFragment& a) {
  for (int r = 0; r < kMmaM; ++r) {
    for (int g = 0; g < kMmaK / kSparsityGroup; ++g) {
      const uint8_t p0 = a.meta_at(r, g * kKeptPerGroup);
      const uint8_t p1 = a.meta_at(r, g * kKeptPerGroup + 1);
      if (p0 >= kSparsityGroup || p1 >= kSparsityGroup || p0 >= p1) {
        return false;
      }
    }
  }
  return true;
}

Accumulator MmaSp(const SparseAFragment& a, const DenseBFragment& b, const Accumulator& c) {
  assert(MetadataIsValid(a));
  Accumulator d = c;
  float dense_row[kMmaK];
  for (int r = 0; r < kMmaM; ++r) {
    ExpandSparseRow(a, r, dense_row);
    for (int p = 0; p < kMmaK; ++p) {
      const float av = RoundToBf16(dense_row[p]);
      if (av == 0.0f) {
        continue;
      }
      for (int n = 0; n < kMmaN; ++n) {
        d.at(r, n) += av * RoundToBf16(b.at(p, n));
      }
    }
  }
  return d;
}

}  // namespace samoyeds
