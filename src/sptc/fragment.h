// Fragment types for the functional Sparse Tensor Core model.
//
// We model the bf16 variant of the PTX `mma.sp.m16n8k32` instruction: the
// sparse operand A is a 16x32 tile compressed 2:4 into 16x16 values plus a
// 2-bit-per-kept-element metadata tile; operand B is a dense 32x8 tile; the
// accumulator C/D is a 16x8 fp32 tile. See NVIDIA PTX ISA §9.7.13 ("Warp
// Level Matrix Multiply-Accumulate Instructions", sparse variants).

#ifndef SAMOYEDS_SRC_SPTC_FRAGMENT_H_
#define SAMOYEDS_SRC_SPTC_FRAGMENT_H_

#include <array>
#include <cstdint>

namespace samoyeds {

// Shape constants of the modeled SpTC instruction.
inline constexpr int kMmaM = 16;
inline constexpr int kMmaN = 8;
inline constexpr int kMmaK = 32;
// 2:4 sparsity halves the stored K extent of operand A.
inline constexpr int kMmaKCompressed = kMmaK / 2;
// Elements per 2:4 group.
inline constexpr int kSparsityGroup = 4;
inline constexpr int kKeptPerGroup = 2;

// Compressed sparse A operand: 16 rows x 16 kept values, with a 2-bit
// position (0..3, index inside the 4-wide group) per kept value. Metadata is
// stored unpacked (one byte per 2-bit item) in the functional model; the
// bit-packed device layout is handled by src/formats/metadata_layout.h.
struct SparseAFragment {
  std::array<float, kMmaM * kMmaKCompressed> values{};
  std::array<uint8_t, kMmaM * kMmaKCompressed> meta{};

  float value_at(int r, int c) const { return values[r * kMmaKCompressed + c]; }
  uint8_t meta_at(int r, int c) const { return meta[r * kMmaKCompressed + c]; }
};

// Dense B operand, row-major 32x8.
struct DenseBFragment {
  std::array<float, kMmaK * kMmaN> values{};
  float at(int r, int c) const { return values[r * kMmaN + c]; }
};

// fp32 accumulator, row-major 16x8.
struct Accumulator {
  std::array<float, kMmaM * kMmaN> values{};
  float at(int r, int c) const { return values[r * kMmaN + c]; }
  float& at(int r, int c) { return values[r * kMmaN + c]; }
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SPTC_FRAGMENT_H_
