// Functional model of the `mma.sp.m16n8k32` Sparse Tensor Core instruction.

#ifndef SAMOYEDS_SRC_SPTC_MMA_SP_H_
#define SAMOYEDS_SRC_SPTC_MMA_SP_H_

#include "src/sptc/fragment.h"

namespace samoyeds {

// D = expand(A) * B + C.
//
// Inputs follow bf16 semantics: A values and B values are rounded to the
// bf16 grid before multiplication; products accumulate in fp32. Metadata
// entries select, for each pair of kept values in a 4-wide group, their
// original column positions; positions inside a group must be strictly
// increasing (the hardware requires ordered metadata). Violations trip an
// assert in debug builds and are ignored in release builds, matching the
// "undefined result" contract of the real instruction.
Accumulator MmaSp(const SparseAFragment& a, const DenseBFragment& b, const Accumulator& c);

// Expands a compressed fragment row into its dense 32-wide form (testing and
// decoding utility).
void ExpandSparseRow(const SparseAFragment& a, int row, float out[kMmaK]);

// Validates metadata ordering: each 4-wide group's two kept positions are
// distinct and ascending. Returns false on malformed metadata.
bool MetadataIsValid(const SparseAFragment& a);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SPTC_MMA_SP_H_
