// Per-framework MoE-layer and decoder-layer cost simulation.
//
// Each framework emulation assembles the kernel launches its real
// counterpart would issue for one MoE layer — permutation copies, per-expert
// or fused GEMMs, activation kernels, weighted un-permutation — computes
// each launch's TrafficReport, and converts them to simulated time with the
// device's TimingModel. Fusion differences therefore show up exactly where
// the paper says they do: fewer launches, no intermediate GMEM round-trips,
// better occupancy for small experts.
//
// Frameworks:
//   Transformers  — explicit permute, per-expert cuBLAS GEMMs, separate
//                   activation kernel, weighted scatter (Fig. 5 data flow).
//   MegaBlocks    — block-sparse grouped GEMM, no token padding, dense
//                   weights.
//   vLLM-DS       — fused MoE kernel (gate+up+act fused; down+acc fused),
//                   16-token alignment, dense weights.
//   PIT           — permutation-invariant tile compaction, dense tensor
//                   cores, dense weights (§6.7).
//   Samoyeds      — dual-side SSMM: weight sparsity + SEL input sparsity,
//                   fused transposes/epilogues, data stationary (§4).

#ifndef SAMOYEDS_SRC_FRAMEWORKS_LAYER_COST_H_
#define SAMOYEDS_SRC_FRAMEWORKS_LAYER_COST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/ssmm_config.h"
#include "src/formats/samoyeds_format.h"
#include "src/moe/memory_model.h"
#include "src/moe/model_configs.h"
#include "src/simgpu/device_spec.h"

namespace samoyeds {

// Cumulative optimization levels of the breakdown analysis (§6.4, Fig. 17).
enum class SamoyedsVariant {
  kW,     // weight sparsity only: sparse-dense kernel inside the
          // Transformers data flow (permutation still present)
  kWI,    // + input sparsity: dual-side kernel, no permutation
  kWIT,   // + layout optimization: fused transposes
  kFull,  // + data stationary (the shipping configuration, a.k.a. WITS)
};

struct LayerCostOptions {
  DeviceModel device = DeviceModel::kRtx4070Super;
  SamoyedsConfig sparse_format{1, 2, 32};
  SsmmConfig ssmm = SsmmConfig::Default();
  SamoyedsVariant variant = SamoyedsVariant::kFull;
  bool flash_attention = true;
  int attention_heads = 0;  // 0 = hidden/128
  // Sequence length per batch element; 0 = treat all tokens as one sequence.
  int64_t seq_len = 0;
  // Overrides the model's shared-expert count when >= 0 (Fig. 14 runs every
  // model both with 2 shared experts and with none).
  int shared_experts_override = -1;
};

struct PhaseCost {
  std::string name;
  double ms = 0.0;
};

struct MoeLayerCost {
  double total_ms = 0.0;
  std::vector<PhaseCost> phases;
  double useful_flops = 0.0;

  double PhaseMs(const std::string& name) const;
};

// Cost of one MoE layer given the routing outcome (`tokens_per_expert`).
MoeLayerCost EstimateMoeLayerCost(MoeFramework framework, const MoeModelConfig& model,
                                  const std::vector<int64_t>& tokens_per_expert,
                                  int64_t total_tokens, const LayerCostOptions& options);

struct DecoderLayerCost {
  double attention_ms = 0.0;
  double norm_ms = 0.0;
  double moe_ms = 0.0;
  double total_ms = 0.0;
  MoeLayerCost moe_detail;
};

// Full decoder layer: attention + norms/residuals + MoE.
DecoderLayerCost EstimateDecoderLayerCost(MoeFramework framework, const MoeModelConfig& model,
                                          const std::vector<int64_t>& tokens_per_expert,
                                          int64_t total_tokens, const LayerCostOptions& options);

// Uniform routing outcome: total_tokens * top_k assignments spread evenly.
std::vector<int64_t> UniformTokensPerExpert(const MoeModelConfig& model, int64_t total_tokens);

// --- Decode-phase extension (beyond the paper's prefill evaluation) -------
//
// One autoregressive decode step: each of `batch` sequences contributes a
// single token; attention reads the KV cache of length `kv_len`. With so
// few tokens per expert, padding and launch overheads dominate and the MoE
// layer becomes memory-bound on expert weights — a regime where Samoyeds'
// compressed weights pay off directly.
struct DecodeStepCost {
  double attention_ms = 0.0;
  double moe_ms = 0.0;
  double total_ms = 0.0;
};

DecodeStepCost EstimateDecodeStepCost(MoeFramework framework, const MoeModelConfig& model,
                                      int64_t batch, int64_t kv_len,
                                      const LayerCostOptions& options);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_FRAMEWORKS_LAYER_COST_H_
