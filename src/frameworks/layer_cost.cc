#include "src/frameworks/layer_cost.h"

#include <algorithm>
#include <cassert>

#include "src/core/samoyeds_kernel.h"
#include "src/kernels/dense_gemm.h"
#include "src/kernels/kernel_report.h"
#include "src/moe/attention.h"
#include "src/simgpu/timing_model.h"

namespace samoyeds {

namespace {

double Ms(const TrafficReport& report, const DeviceSpec& device) {
  return TimingModel(device).Estimate(report).total_ms;
}

// One elementwise kernel pass (permute copies, activation, weighted sums).
TrafficReport ElementwiseTraffic(double read_bytes, double write_bytes,
                                 double uncoalesced_fraction = 0.0) {
  TrafficReport t;
  t.gmem_read_bytes = read_bytes;
  t.gmem_write_bytes = write_bytes;
  t.gmem_unique_bytes = read_bytes + write_bytes;
  t.gmem_uncoalesced_bytes = uncoalesced_fraction * read_bytes;
  t.simd_flops = (read_bytes + write_bytes) * 1.0;  // a few ops per element
  t.thread_blocks = std::max<int64_t>(1, static_cast<int64_t>((read_bytes + write_bytes) / 8192));
  t.warps_per_block = 4;
  t.pipeline_stages = 1;
  t.efficiency = 0.85;
  t.fixed_overhead_us = 5.0;
  return t;
}

// Traffic of a grouped (single-launch) dense GEMM over per-expert token
// counts: weights (m x k) per expert, activations k x n_e, token counts
// padded to `pad_to`.
TrafficReport GroupedDenseTraffic(int64_t m, int64_t k, const std::vector<int64_t>& ns,
                                  int64_t pad_to, int nb, double efficiency) {
  constexpr int kMb = 128;
  constexpr int kKb = 32;
  TrafficReport t;
  t.warps_per_block = 8;
  t.pipeline_stages = 3;
  t.smem_bytes_per_block = static_cast<int64_t>(3) * (kMb + nb) * kKb * 2;
  t.regs_per_thread = 160;
  t.efficiency = efficiency;
  t.fixed_overhead_us = 6.0;

  const int64_t mp = RoundUp(m, kMb);
  const int64_t kp = RoundUp(k, kKb);
  for (int64_t n : ns) {
    if (n == 0) {
      continue;
    }
    const int64_t np = RoundUp(RoundUp(n, pad_to), nb);
    const int64_t blocks = (mp / kMb) * (np / nb);
    t.thread_blocks += blocks;
    t.gmem_read_bytes += static_cast<double>(blocks) * (kMb * kp + kp * nb) * 2.0;
    t.gmem_write_bytes += static_cast<double>(mp) * np * 2.0;
    t.gmem_unique_bytes += (static_cast<double>(m) * k + static_cast<double>(k + m) * n) * 2.0;
    t.mma_flops += 2.0 * mp * kp * np;
    t.simd_flops += static_cast<double>(mp) * np * 2.0;
  }
  t.smem_bytes = t.gmem_read_bytes * 3.0;
  return t;
}

// Grouped Samoyeds SSMM over all experts for one projection; traffic is the
// per-expert Analyze sum collapsed into a single launch.
TrafficReport GroupedSamoyedsTraffic(int64_t m, int64_t k, const std::vector<int64_t>& ns,
                                     int64_t total_tokens, const SamoyedsConfig& fmt,
                                     const SsmmConfig& ssmm, const DeviceSpec& device) {
  TrafficReport sum;
  bool first = true;
  for (int64_t n : ns) {
    if (n == 0) {
      continue;
    }
    const KernelProfile p =
        SamoyedsKernel::Analyze({m, k, total_tokens}, n, fmt, ssmm, device);
    if (first) {
      sum = p.traffic;
      first = false;
    } else {
      TrafficReport t = p.traffic;
      t.fixed_overhead_us = 0.0;  // one launch for the whole group
      sum += t;
    }
  }
  return sum;
}

TrafficReport RouterTraffic(const MoeModelConfig& model, int64_t tokens) {
  KernelProfile p = DenseGemmKernel::Analyze({model.num_experts, model.hidden, tokens});
  // Softmax + top-k selection.
  p.traffic.simd_flops += static_cast<double>(tokens) * model.num_experts * 12.0;
  return p.traffic;
}

struct PhaseAccumulator {
  std::vector<PhaseCost> phases;
  double total_ms = 0.0;

  void Add(const std::string& name, double ms) {
    total_ms += ms;
    for (auto& p : phases) {
      if (p.name == name) {
        p.ms += ms;
        return;
      }
    }
    phases.push_back({name, ms});
  }
};

// Useful dense-equivalent FLOPs of the whole MoE layer (for reporting).
double LayerUsefulFlops(const MoeModelConfig& model, const std::vector<int64_t>& counts,
                        int shared, int64_t tokens) {
  double assigned = 0.0;
  for (int64_t n : counts) {
    assigned += static_cast<double>(n);
  }
  assigned += static_cast<double>(shared) * tokens;
  return assigned * 3.0 * 2.0 * model.hidden * model.intermediate;
}

void AddTransformersMoe(const MoeModelConfig& model, const std::vector<int64_t>& counts,
                        int64_t tokens, int shared, const DeviceSpec& device,
                        PhaseAccumulator& acc) {
  const double h = model.hidden;
  double routed = 0.0;
  for (int64_t n : counts) {
    routed += static_cast<double>(n);
  }
  const double routed_bytes = routed * h * 2.0;

  acc.Add("router", Ms(RouterTraffic(model, tokens), device));
  // Gather permutation: one duplicated row per routed assignment.
  acc.Add("permute", Ms(ElementwiseTraffic(routed_bytes, routed_bytes, 0.5), device));

  // Per-expert kernels, launched sequentially.
  auto expert_ms = [&](int64_t n) {
    if (n == 0) {
      return 0.0;
    }
    double ms = 0.0;
    ms += Ms(DenseGemmKernel::Analyze({model.intermediate, model.hidden, n}).traffic, device);
    ms += Ms(DenseGemmKernel::Analyze({model.intermediate, model.hidden, n}).traffic, device);
    const double inter_bytes = static_cast<double>(n) * model.intermediate * 2.0;
    ms += Ms(ElementwiseTraffic(2.0 * inter_bytes, inter_bytes), device);  // act kernel
    ms += Ms(DenseGemmKernel::Analyze({model.hidden, model.intermediate, n}).traffic, device);
    return ms;
  };
  // Note: OpenMoE's hf_dense_expert_fallback affects *allocation* (it sizes
  // buffers for all experts — see memory_model.cc) but the arithmetic is
  // still masked, so the time model uses the routed counts for all models.
  double experts_ms = 0.0;
  for (int64_t n : counts) {
    experts_ms += expert_ms(n);
    if (n > 0) {
      // Eager-mode dispatch: index_select / one-hot masking and Python-side
      // launch latency per active expert.
      experts_ms += 0.030;
    }
  }
  acc.Add("experts", experts_ms);
  double shared_ms = 0.0;
  for (int s = 0; s < shared; ++s) {
    shared_ms += expert_ms(tokens);
  }
  if (shared > 0) {
    acc.Add("shared_experts", shared_ms);
  }
  // Weighted un-permutation: expert outputs round-trip through GMEM (§3.1).
  acc.Add("unpermute",
          Ms(ElementwiseTraffic(2.0 * routed_bytes, static_cast<double>(tokens) * h * 2.0, 0.3),
             device));
}

void AddGroupedDenseMoe(const MoeModelConfig& model, const std::vector<int64_t>& counts,
                        int64_t tokens, int shared, const DeviceSpec& device, int64_t pad_to,
                        int nb, double efficiency, bool fused_epilogues, double permute_scale,
                        PhaseAccumulator& acc) {
  const double h = model.hidden;
  double routed = 0.0;
  for (int64_t n : counts) {
    routed += static_cast<double>(n);
  }
  const double routed_bytes = routed * h * 2.0;

  acc.Add("router", Ms(RouterTraffic(model, tokens), device));
  if (permute_scale > 0.0) {
    acc.Add("permute",
            Ms(ElementwiseTraffic(routed_bytes * permute_scale, routed_bytes * permute_scale, 0.3),
               device));
  }

  std::vector<int64_t> all_counts = counts;
  for (int s = 0; s < shared; ++s) {
    all_counts.push_back(tokens);
  }
  // gate + up as one grouped launch (the fused kernels compute both).
  TrafficReport gate =
      GroupedDenseTraffic(model.intermediate, model.hidden, all_counts, pad_to, nb, efficiency);
  TrafficReport up = gate;
  up.fixed_overhead_us = fused_epilogues ? 0.0 : 6.0;
  acc.Add("gate_up", Ms(gate + up, device));

  const double inter_bytes = routed * model.intermediate * 2.0;
  if (!fused_epilogues) {
    acc.Add("activation", Ms(ElementwiseTraffic(2.0 * inter_bytes, inter_bytes), device));
  }
  TrafficReport down =
      GroupedDenseTraffic(model.hidden, model.intermediate, all_counts, pad_to, nb, efficiency);
  acc.Add("down", Ms(down, device));
  if (fused_epilogues) {
    // Weighted accumulation fused into the down kernel: atomics only.
    acc.Add("unpermute",
            Ms(ElementwiseTraffic(routed_bytes * 0.2, static_cast<double>(tokens) * h * 2.0), device));
  } else {
    acc.Add("unpermute",
            Ms(ElementwiseTraffic(2.0 * routed_bytes, static_cast<double>(tokens) * h * 2.0, 0.3),
               device));
  }
}

void AddSamoyedsMoe(const MoeModelConfig& model, const std::vector<int64_t>& counts,
                    int64_t tokens, int shared, const LayerCostOptions& options,
                    const DeviceSpec& device, PhaseAccumulator& acc) {
  const double h = model.hidden;
  double routed = 0.0;
  for (int64_t n : counts) {
    routed += static_cast<double>(n);
  }
  const double routed_bytes = routed * h * 2.0;

  // The layer accounts for the (un)fused transposes itself, as whole-layer
  // passes; the kernel-level fused_transpose flag stays on so the cost is
  // not double-counted.
  SsmmConfig ssmm = options.ssmm;
  ssmm.fused_transpose = true;
  bool permutation_flow = false;   // explicit permute/unpermute data flow
  bool separate_transposes = false;  // T optimization disabled
  bool fused_epilogues = false;    // activation + weighted-acc fused (S)
  switch (options.variant) {
    case SamoyedsVariant::kW:
      ssmm.input_selection = false;
      ssmm.data_stationary = false;
      permutation_flow = true;
      separate_transposes = true;
      break;
    case SamoyedsVariant::kWI:
      ssmm.input_selection = true;
      ssmm.data_stationary = false;
      separate_transposes = true;
      break;
    case SamoyedsVariant::kWIT:
      ssmm.input_selection = true;
      ssmm.data_stationary = false;
      break;
    case SamoyedsVariant::kFull:
      ssmm.input_selection = true;
      ssmm.data_stationary = true;
      fused_epilogues = true;
      break;
  }

  acc.Add("router", Ms(RouterTraffic(model, tokens), device));
  if (permutation_flow) {
    acc.Add("permute", Ms(ElementwiseTraffic(routed_bytes, routed_bytes, 0.5), device));
  }
  if (separate_transposes) {
    // (W^T x^T)^T restructuring done as standalone passes: transpose the
    // activations on the way in and the outputs on the way back (§4.5).
    acc.Add("transpose",
            Ms(ElementwiseTraffic(routed_bytes, routed_bytes, 0.25), device) +
                Ms(ElementwiseTraffic(routed_bytes, routed_bytes, 0.25), device));
  }

  std::vector<int64_t> all_counts = counts;
  for (int s = 0; s < shared; ++s) {
    all_counts.push_back(tokens);
  }

  if (permutation_flow) {
    // +W: the sparse-dense kernel replaces cuBLAS inside the per-expert
    // Transformers flow (each expert's permuted slice is a dense input).
    double experts_ms = 0.0;
    for (int64_t n : all_counts) {
      if (n == 0) {
        continue;
      }
      const KernelProfile gate =
          SamoyedsKernel::Analyze({model.intermediate, model.hidden, n}, n,
                                  options.sparse_format, ssmm, device);
      const KernelProfile down = SamoyedsKernel::Analyze({model.hidden, model.intermediate, n}, n,
                                                         options.sparse_format, ssmm, device);
      const double inter_bytes = static_cast<double>(n) * model.intermediate * 2.0;
      experts_ms += 2.0 * Ms(gate.traffic, device) + Ms(down.traffic, device) +
                    Ms(ElementwiseTraffic(2.0 * inter_bytes, inter_bytes), device);
    }
    acc.Add("experts", experts_ms);
    acc.Add("unpermute",
            Ms(ElementwiseTraffic(2.0 * routed_bytes, static_cast<double>(tokens) * h * 2.0, 0.3),
               device));
    return;
  }

  // Dual-side path: grouped launches with SEL selection per expert.
  TrafficReport gate = GroupedSamoyedsTraffic(model.intermediate, model.hidden, all_counts,
                                              tokens, options.sparse_format, ssmm, device);
  TrafficReport up = gate;
  up.fixed_overhead_us = 0.0;
  acc.Add("gate_up", Ms(gate + up, device));

  const double inter_bytes = routed * model.intermediate * 2.0;
  if (!fused_epilogues) {
    acc.Add("activation", Ms(ElementwiseTraffic(2.0 * inter_bytes, inter_bytes), device));
  }
  TrafficReport down = GroupedSamoyedsTraffic(model.hidden, model.intermediate, all_counts,
                                              tokens, options.sparse_format, ssmm, device);
  acc.Add("down", Ms(down, device));
  if (fused_epilogues) {
    acc.Add("unpermute",
            Ms(ElementwiseTraffic(routed_bytes * 0.2, static_cast<double>(tokens) * h * 2.0),
               device));
  } else {
    acc.Add("unpermute",
            Ms(ElementwiseTraffic(2.0 * routed_bytes, static_cast<double>(tokens) * h * 2.0, 0.3),
               device));
  }
}

}  // namespace

double MoeLayerCost::PhaseMs(const std::string& name) const {
  for (const auto& p : phases) {
    if (p.name == name) {
      return p.ms;
    }
  }
  return 0.0;
}

std::vector<int64_t> UniformTokensPerExpert(const MoeModelConfig& model, int64_t total_tokens) {
  std::vector<int64_t> counts(static_cast<size_t>(model.num_experts), 0);
  const int64_t assignments = total_tokens * model.top_k;
  for (int e = 0; e < model.num_experts; ++e) {
    counts[static_cast<size_t>(e)] = assignments / model.num_experts +
                                     (e < assignments % model.num_experts ? 1 : 0);
  }
  return counts;
}

MoeLayerCost EstimateMoeLayerCost(MoeFramework framework, const MoeModelConfig& model,
                                  const std::vector<int64_t>& tokens_per_expert,
                                  int64_t total_tokens, const LayerCostOptions& options) {
  assert(static_cast<int>(tokens_per_expert.size()) == model.num_experts);
  assert(FrameworkSupportsModel(framework, model));
  const DeviceSpec& device = GetDevice(options.device);
  const int shared = options.shared_experts_override >= 0 ? options.shared_experts_override
                                                          : model.shared_experts;

  PhaseAccumulator acc;
  switch (framework) {
    case MoeFramework::kTransformers:
      AddTransformersMoe(model, tokens_per_expert, total_tokens, shared, device, acc);
      break;
    case MoeFramework::kMegaBlocks:
      AddGroupedDenseMoe(model, tokens_per_expert, total_tokens, shared, device, /*pad_to=*/1,
                         /*nb=*/128, /*efficiency=*/0.90, /*fused_epilogues=*/false,
                         /*permute_scale=*/0.3, acc);
      break;
    case MoeFramework::kVllmDs:
      AddGroupedDenseMoe(model, tokens_per_expert, total_tokens, shared, device, /*pad_to=*/16,
                         /*nb=*/64, /*efficiency=*/0.92, /*fused_epilogues=*/true,
                         /*permute_scale=*/0.0, acc);
      break;
    case MoeFramework::kPit:
      // Permutation-invariant transformation: dense tiles assembled in-kernel
      // from sparse micro-tiles; no SpTC use (§6.7).
      AddGroupedDenseMoe(model, tokens_per_expert, total_tokens, shared, device, /*pad_to=*/1,
                         /*nb=*/128, /*efficiency=*/0.86, /*fused_epilogues=*/true,
                         /*permute_scale=*/0.1, acc);
      break;
    case MoeFramework::kSamoyeds:
      AddSamoyedsMoe(model, tokens_per_expert, total_tokens, shared, options, device, acc);
      break;
  }

  MoeLayerCost cost;
  cost.total_ms = acc.total_ms;
  cost.phases = std::move(acc.phases);
  cost.useful_flops = LayerUsefulFlops(model, tokens_per_expert, shared, total_tokens);
  return cost;
}

DecodeStepCost EstimateDecodeStepCost(MoeFramework framework, const MoeModelConfig& model,
                                      int64_t batch, int64_t kv_len,
                                      const LayerCostOptions& options) {
  const DeviceSpec& device = GetDevice(options.device);
  DecodeStepCost cost;

  // Attention decode: four skinny projections plus the KV-cache stream.
  TrafficReport attn;
  const double h = model.hidden;
  attn.mma_flops = 4.0 * 2.0 * h * h * batch +                   // Q/K/V/O projections
                   2.0 * 2.0 * batch * kv_len * h;               // QK^T and PV
  attn.simd_flops = static_cast<double>(batch) * kv_len * 8.0;   // softmax
  attn.gmem_read_bytes = 4.0 * h * h * 2.0 +                                   // weights
                         static_cast<double>(batch) * kv_len * 2.0 * h * 2.0;  // KV cache
  attn.gmem_write_bytes = static_cast<double>(batch) * h * 2.0 * 3.0;
  attn.gmem_unique_bytes = attn.gmem_read_bytes + attn.gmem_write_bytes;
  attn.thread_blocks = std::max<int64_t>(1, batch * model.hidden / 1024);
  attn.warps_per_block = 8;
  attn.pipeline_stages = 2;
  attn.efficiency = 0.80;
  attn.fixed_overhead_us = 15.0;
  cost.attention_ms = Ms(attn, device);

  const auto counts = UniformTokensPerExpert(model, batch);
  cost.moe_ms = EstimateMoeLayerCost(framework, model, counts, batch, options).total_ms;
  cost.total_ms = cost.attention_ms + cost.moe_ms;
  return cost;
}

DecoderLayerCost EstimateDecoderLayerCost(MoeFramework framework, const MoeModelConfig& model,
                                          const std::vector<int64_t>& tokens_per_expert,
                                          int64_t total_tokens, const LayerCostOptions& options) {
  const DeviceSpec& device = GetDevice(options.device);
  DecoderLayerCost cost;
  cost.moe_detail =
      EstimateMoeLayerCost(framework, model, tokens_per_expert, total_tokens, options);
  cost.moe_ms = cost.moe_detail.total_ms;
  const int64_t seq = options.seq_len > 0 ? options.seq_len : total_tokens;
  cost.attention_ms = Ms(AttentionProfile(seq, std::max<int64_t>(1, total_tokens / seq),
                                          model.hidden, options.attention_heads,
                                          options.flash_attention)
                             .traffic,
                         device);
  cost.norm_ms = Ms(NormResidualProfile(total_tokens, model.hidden).traffic, device);
  cost.total_ms = cost.attention_ms + cost.norm_ms + cost.moe_ms;
  return cost;
}

}  // namespace samoyeds
