// samoyeds_cli — command-line front end to the library, the performance
// simulator, and the continuous-batching serving engine.

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/autotune.h"
#include "src/core/samoyeds_kernel.h"
#include "src/formats/samoyeds_format.h"
#include "src/frameworks/layer_cost.h"
#include "src/kernels/cusparselt_spmm.h"
#include "src/kernels/dense_gemm.h"
#include "src/kernels/nmsparse_spmm.h"
#include "src/kernels/sputnik_spmm.h"
#include "src/kernels/venom_spmm.h"
#include "src/moe/memory_model.h"
#include "src/moe/model_configs.h"
#include "src/obs/tracer.h"
#include "src/serving/engine.h"
#include "src/serving/server.h"
#include "src/serving/trace.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace {

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage: samoyeds_cli <command> ...\n"
      "\n"
      "commands:\n"
      "  devices                                    list simulated GPU targets\n"
      "  analyze <m> <k> <n> [selected] [device]    per-kernel time/throughput estimate\n"
      "  autotune <m> <k> <n> [device]              SSMM tile-config search\n"
      "  maxbatch                                   Table 3 max-batch accounting\n"
      "  moe <model-name> <tokens>                  per-framework MoE layer cost\n"
      "  encode <rows> <cols> <N> <M> <V>           random-matrix encoding demo\n"
      "  serve <model|tiny> <trace|synthetic:N>     continuous-batching serving engine\n"
      "        [--policy=fcfs|smallest-first|token-budget] [--budget=N]\n"
      "        [--chunk-tokens=N] [--chunk-policy=fixed|decode-priority]\n"
      "        [--overlap=0|1] [--overlap-eff=R]\n"
      "        [--async[=0|1]] [--server-clock=virtual|wall] [--mailbox-cap=N]\n"
      "        [--cancel=ID[,ID...]] [--stream[=0|1]] [--report-json=FILE]\n"
      "        [--max-resident=N] [--page-tokens=N] [--max-pages=N|auto]\n"
      "        [--preempt=0|1] [--prefix-cache=0|1] [--swap=0|1] [--host-pages=N]\n"
      "        [--threads=N] [--layers=N] [--hidden=N]\n"
      "        [--inter=N] [--experts=N] [--top-k=N] [--heads=N] [--rate=R]\n"
      "        [--prompt-min=N] [--prompt-max=N] [--decode-min=N] [--decode-max=N]\n"
      "        [--seed=N] [--autotune=0|1] [--routing=top-k|expert-choice]\n"
      "        [--shards=N] [--placement=round-robin|capacity|gate-stats]\n"
      "        [--link-gbps=R] [--link-us=R] [--trace-out=FILE]\n"
      "        [--trace-detail=step|request|full] [--trace-ring=N]\n"
      "        [--faults=SPEC] [--fault-seed=N] [--fault-retries=N]\n"
      "        [--deadline-steps=N] [--ingress-cap=N]\n"
      "        [--watchdog-steps=N] [--watchdog-dump=FILE]\n"
      "        [--kernel-backend=auto|scalar|avx2|avx512|neon]\n"
      "        --chunk-tokens=N serves prompts longer than the token budget by\n"
      "        splitting prefill into <=N-row chunks interleaved with decode rows\n"
      "        (outputs bit-identical to one-shot prefill; 0 = off) with\n"
      "        --chunk-policy=decode-priority shrinking the chunk cap to\n"
      "        max(1, N - resident decode rows) so prompt work yields batch\n"
      "        slots to latency-sensitive decode (still bit-identical);\n"
      "        --overlap=1 overlaps the prefill-chunk forward pass with the\n"
      "        resident-decode pass on a second thread and overlaps the modeled\n"
      "        all-to-all with compute in the timing estimates (outputs stay\n"
      "        bit-identical to serial execution; savings land in the report's\n"
      "        est_overlap_saved_ms) with --overlap-eff=R in [0,1] setting the\n"
      "        modeled transfer/compute overlap efficiency (default 0.85);\n"
      "        --async=1 serves through the AsyncServer front-end: a driver\n"
      "        thread runs Step() while submissions flow through a lock-\n"
      "        protected mailbox drained at step boundaries; --server-clock\n"
      "        picks virtual arrivals (deterministic, bit-identical to the\n"
      "        synchronous engine) or wall arrivals (stamped at drain time);\n"
      "        --mailbox-cap=N bounds the mailbox, shedding the lowest-priority\n"
      "        pending submission below each overflowing arrival (0 = off);\n"
      "        --cancel=ID[,ID...] cancels the listed sessions after submission\n"
      "        (an id never submitted is a runtime failure, exit 1);\n"
      "        --stream prints each session's rows as they finalize per iteration\n"
      "        (the OnRows streaming callback); --report-json=FILE writes the\n"
      "        machine-readable ServingReport;\n"
      "        --max-pages bounds the paged KV cache (admission switches to page\n"
      "        accounting; 'auto' derives the budget from the Table-3 memory model);\n"
      "        --preempt=1 evicts lowest-priority/youngest residents under pressure;\n"
      "        --prefix-cache=1 shares KV pages between sessions whose prompts\n"
      "        bit-match a cached prefix (radix tree, copy-on-write pages; outputs\n"
      "        identical to sharing off; ignored under expert-choice routing);\n"
      "        --swap=1 moves preemption victims' KV pages to a simulated host\n"
      "        tier and restores them bit-exactly on readmission (needs --preempt=1\n"
      "        and a bounded page pool) with --host-pages bounding the tier\n"
      "        (0 = unbounded; recompute is the fallback when it fills);\n"
      "        --autotune=1 resolves SSMM tile configs per batch shape (cached);\n"
      "        --shards=N partitions experts across N simulated devices (outputs are\n"
      "        bit-identical at any shard count) with --placement choosing the\n"
      "        expert layout and --link-gbps/--link-us overriding the per-link\n"
      "        interconnect of the simulated cluster;\n"
      "        --routing=expert-choice serves with expert-choice routing (perfect\n"
      "        per-layer expert balance; outputs depend on batch composition);\n"
      "        --trace-out=FILE captures a Chrome trace-event timeline of the run\n"
      "        (open in https://ui.perfetto.dev or chrome://tracing) with\n"
      "        --trace-detail choosing step phases+counters (step), + per-request\n"
      "        lifecycle rows (request), or + per-layer/per-tile worker spans\n"
      "        (full, default) and --trace-ring=N bounding the flight-recorder\n"
      "        ring to the most recent N events per thread;\n"
      "        --faults=SPEC injects a deterministic fault schedule — comma-\n"
      "        separated rules of the form point@step[:arg][xN] (fire at a step)\n"
      "        or point~prob[:arg][xN] (seeded per-probe probability) over the\n"
      "        points kv-alloc, swap-out, swap-in, swap-corrupt, shard-die,\n"
      "        shard-stall, link-degrade (e.g. 'kv-alloc~0.05,shard-die@6:1');\n"
      "        --fault-seed drives the probability draws (same schedule + seed\n"
      "        replays bit-exactly) and --fault-retries bounds transient-fault\n"
      "        retries before evict-and-recompute;\n"
      "        --deadline-steps=N terminates sessions still unfinished N steps\n"
      "        after arrival (timed-out, 0 = off); --ingress-cap=N bounds the\n"
      "        ingress queue, shedding the lowest-priority entry on overflow;\n"
      "        --watchdog-steps=K trips a liveness watchdog when a session makes\n"
      "        no progress for K steps, dumping the flight-recorder ring to\n"
      "        --watchdog-dump=FILE;\n"
      "        --kernel-backend selects the SSMM inner-loop implementation\n"
      "        (scalar is the bit-exact oracle and the default; avx2/avx512/neon\n"
      "        use runtime-dispatched FMA loops, ULP-bounded vs an fp64 oracle;\n"
      "        auto picks the widest ISA this CPU supports; requesting an ISA the\n"
      "        CPU lacks is a runtime failure)\n"
      "\n"
      "exit codes: 0 success; 1 runtime failure (output write failed, engine\n"
      "left undrained, --cancel id never submitted); 2 usage error (unknown\n"
      "command/flag or bad value)\n",
      out);
}

// Strict numeric parsing: the whole argument must be a number. atoll-style
// silent zeros for garbage input hide operator typos.
int64_t ParseI64(const char* s, const char* what) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "invalid %s: '%s' (expected an integer)\n", what, s);
    std::exit(2);
  }
  return static_cast<int64_t>(v);
}

int ParseInt(const char* s, const char* what) {
  const int64_t v = ParseI64(s, what);
  if (v < INT_MIN || v > INT_MAX) {
    std::fprintf(stderr, "invalid %s: '%s' (out of int range)\n", what, s);
    std::exit(2);
  }
  return static_cast<int>(v);
}

double ParseDouble(const char* s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "invalid %s: '%s' (expected a number)\n", what, s);
    std::exit(2);
  }
  return v;
}

const DeviceSpec& DeviceByIndex(int index) {
  const auto models = AllDeviceModels();
  if (index < 0 || index >= static_cast<int>(models.size())) {
    std::fprintf(stderr, "device index out of range (see `devices`)\n");
    std::exit(2);
  }
  return GetDevice(models[static_cast<size_t>(index)]);
}

int CmdDevices() {
  const auto models = AllDeviceModels();
  std::printf("%3s %-30s %5s %9s %9s %8s %8s\n", "idx", "name", "SMs", "TC TF/s", "BW GB/s",
              "L2 MiB", "mem GiB");
  for (size_t i = 0; i < models.size(); ++i) {
    const DeviceSpec& d = GetDevice(models[i]);
    std::printf("%3zu %-30s %5d %9.0f %9.0f %8lld %8lld\n", i, d.name.c_str(), d.sm_count,
                d.tc_dense_tflops, d.dram_bandwidth_gbps,
                static_cast<long long>(d.l2_bytes >> 20),
                static_cast<long long>(d.dram_capacity_bytes >> 30));
  }
  return 0;
}

int CmdAnalyze(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: analyze <m> <k> <n> [selected] [device-index]\n");
    return 2;
  }
  const GemmShape shape{ParseI64(argv[2], "m"), ParseI64(argv[3], "k"), ParseI64(argv[4], "n")};
  const int64_t selected = argc > 5 ? ParseI64(argv[5], "selected") : shape.n;
  const DeviceSpec& device =
      argc > 6 ? DeviceByIndex(ParseInt(argv[6], "device-index")) : DefaultDevice();
  const TimingModel model(device);
  const SamoyedsConfig fmt{1, 2, 32};

  std::printf("C[%lld x %lld] = A[%lld x %lld] * B, %lld of %lld columns selected, on %s\n\n",
              static_cast<long long>(shape.m), static_cast<long long>(selected),
              static_cast<long long>(shape.m), static_cast<long long>(shape.k),
              static_cast<long long>(selected), static_cast<long long>(shape.n),
              device.name.c_str());
  auto row = [&](const KernelProfile& p) {
    const TimingEstimate e = model.Estimate(p.traffic);
    std::printf("%-24s %10.3fms %9.1f TF/s  %s\n", p.kernel_name.c_str(), e.total_ms,
                p.useful_flops / (e.total_ms * 1e-3) / 1e12,
                e.memory_bound() ? "memory-bound" : "compute-bound");
  };
  row(DenseGemmKernel::Analyze(shape));
  row(CusparseltSpmmKernel::Analyze(shape));
  row(SputnikSpmmKernel::Analyze(shape, 0.25));
  row(NmSparseSpmmKernel::Analyze(shape, NmConfig{1, 4}));
  row(VenomSpmmKernel::Analyze(shape, VenomConfig{64, 2, 4}, device));
  row(SamoyedsKernel::Analyze(shape, selected, fmt, SsmmConfig::Default(), device));
  return 0;
}

int CmdAutotune(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: autotune <m> <k> <n> [device-index]\n");
    return 2;
  }
  const GemmShape shape{ParseI64(argv[2], "m"), ParseI64(argv[3], "k"), ParseI64(argv[4], "n")};
  const DeviceSpec& device =
      argc > 5 ? DeviceByIndex(ParseInt(argv[5], "device-index")) : DefaultDevice();
  const AutotuneResult r = AutotuneSsmm(shape, shape.n, SamoyedsConfig{1, 2, 32}, device);
  std::printf("%s: default %.3f ms -> tuned %.3f ms (%.2fx)\n", device.name.c_str(), r.default_ms,
              r.simulated_ms, r.speedup_over_default());
  std::printf("chosen config: mb=%d nb=%d kb=%d mw=%d nw=%d stages=%d\n", r.config.mb,
              r.config.nb, r.config.kb, r.config.mw, r.config.nw, r.config.stages);
  return 0;
}

int CmdMaxBatch() {
  const SamoyedsConfig fmt{1, 2, 32};
  std::printf("%-14s %5s %13s %11s %8s %9s\n", "model", "seq", "Transformers", "MegaBlocks",
              "vLLM-DS", "Samoyeds");
  for (const auto& model : PaperModels()) {
    const int64_t seq = model.name == "OpenMoE-34B" ? 2048
                        : model.num_experts >= 32 && model.intermediate <= 4096 ? 4096
                                                                                : 1024;
    std::printf("%-14s %5lld", model.name.c_str(), static_cast<long long>(seq));
    for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                            MoeFramework::kVllmDs, MoeFramework::kSamoyeds}) {
      if (!FrameworkSupportsModel(fw, model)) {
        std::printf(" %*s", fw == MoeFramework::kTransformers ? 13 : 11, "-");
        continue;
      }
      const auto fp = EstimateFootprint(model, fw, fmt, DefaultDevice());
      const int width = fw == MoeFramework::kTransformers ? 13
                        : fw == MoeFramework::kSamoyeds   ? 9
                        : fw == MoeFramework::kVllmDs     ? 8
                                                          : 11;
      std::printf(" %*lld", width, static_cast<long long>(fp.MaxBatch(seq)));
    }
    std::printf("\n");
  }
  return 0;
}

int CmdMoe(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: moe <model-name> <tokens>\n");
    return 2;
  }
  const MoeModelConfig& model = ModelByName(argv[2]);
  const int64_t tokens = ParseI64(argv[3], "tokens");
  const auto counts = UniformTokensPerExpert(model, tokens);
  LayerCostOptions opts;
  opts.shared_experts_override = 0;
  std::printf("%s MoE layer, %lld tokens:\n", model.name.c_str(),
              static_cast<long long>(tokens));
  for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                          MoeFramework::kVllmDs, MoeFramework::kPit, MoeFramework::kSamoyeds}) {
    if (!FrameworkSupportsModel(fw, model)) {
      std::printf("  %-13s NS\n", FrameworkName(fw));
      continue;
    }
    std::printf("  %-13s %9.3f ms\n", FrameworkName(fw),
                EstimateMoeLayerCost(fw, model, counts, tokens, opts).total_ms);
  }
  return 0;
}

int CmdEncode(int argc, char** argv) {
  if (argc < 7) {
    std::fprintf(stderr, "usage: encode <rows> <cols> <N> <M> <V>\n");
    return 2;
  }
  const int64_t rows = ParseI64(argv[2], "rows");
  const int64_t cols = ParseI64(argv[3], "cols");
  const SamoyedsConfig cfg{ParseInt(argv[4], "N"), ParseInt(argv[5], "M"), ParseInt(argv[6], "V")};
  if (!cfg.IsValid() || rows <= 0 || cols <= 0 || rows % cfg.m != 0 || cols % cfg.v != 0) {
    std::fprintf(stderr, "invalid config or non-divisible shape\n");
    return 2;
  }
  Rng rng(1);
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(rng.GaussianMatrix(rows, cols), cfg);
  std::printf("encoded %lld x %lld at (%d,%d,%d): sparsity %.1f%%, storage %lld KiB "
              "(dense bf16 %lld KiB), well-formed: %s\n",
              static_cast<long long>(rows), static_cast<long long>(cols), cfg.n, cfg.m, cfg.v,
              100.0 * cfg.sparsity(), static_cast<long long>(enc.StorageBytes() >> 10),
              static_cast<long long>(rows * cols * 2 >> 10),
              enc.IsWellFormed() ? "yes" : "NO");
  return 0;
}

// ---- serve ------------------------------------------------------------------

struct ServeOptions {
  std::string model = "tiny";
  std::string trace;
  serving::SchedulerPolicy policy = serving::SchedulerPolicy::kTokenBudget;
  int64_t budget = 128;
  int64_t chunk_tokens = 0;   // 0 = chunked prefill off
  serving::ChunkPolicy chunk_policy = serving::ChunkPolicy::kFixed;
  bool overlap = false;       // decode/prefill + transfer/compute overlap
  double overlap_eff = 0.85;  // modeled transfer/compute overlap efficiency
  bool async = false;         // serve through the AsyncServer front-end
  serving::ServerClock server_clock = serving::ServerClock::kVirtual;
  int64_t mailbox_cap = 0;    // AsyncServer mailbox bound (0 = unbounded)
  std::vector<int64_t> cancel_ids;  // --cancel targets, in order
  bool stream = false;        // print per-iteration streamed rows
  std::string report_json;    // write ServingReport::ToJson here
  int64_t max_resident = 4096;
  int64_t page_tokens = 16;
  int64_t max_pages = 0;      // 0 = monolithic token accounting
  bool auto_pages = false;    // --max-pages=auto: derive from TokenCapacity()
  bool preempt = false;
  bool prefix_cache = false;  // radix prefix sharing with COW pages
  bool swap = false;          // swap-style preemption to the host tier
  int64_t host_pages = 0;     // host-tier capacity in pages (0 = unbounded)
  bool autotune = false;
  serving::RoutingAlgo routing = serving::RoutingAlgo::kTopK;
  int shards = 1;
  serving::ShardPlacement placement = serving::ShardPlacement::kRoundRobin;
  double link_gbps = 0.0;   // 0 = device default
  double link_us = -1.0;    // < 0 = device default
  int threads = 4;
  int layers = 2;
  int hidden = 64;
  int inter = 96;
  int experts = 8;
  int top_k = 2;
  int heads = 4;
  int shared = 0;
  Activation activation = Activation::kSilu;
  double rate = 1.0;  // synthetic arrivals per step
  int64_t prompt_min = 4, prompt_max = 16;
  int64_t decode_min = 2, decode_max = 8;
  uint64_t seed = 1234;
  std::string trace_out;  // write Chrome trace-event JSON here; empty = off
  obs::TraceDetail trace_detail = obs::TraceDetail::kFull;
  int64_t trace_ring = obs::Tracer::kDefaultRingCapacity;
  std::vector<serving::FaultRule> faults;  // --faults schedule; empty = off
  uint64_t fault_seed = 0;
  int fault_retries = 3;
  int64_t deadline_steps = 0;   // per-request deadline (0 = off)
  int64_t ingress_cap = 0;      // bounded ingress queue (0 = unbounded)
  int64_t watchdog_steps = 0;   // liveness watchdog (0 = off)
  std::string watchdog_dump;    // flight-recorder dump target on a trip
  KernelBackend kernel_backend = KernelBackend::kScalar;  // SSMM inner loops
};

bool ParseServeFlag(const std::string& arg, ServeOptions& opt) {
  if (arg == "--stream") {  // bare form; --stream=0|1 also accepted below
    opt.stream = true;
    return true;
  }
  if (arg == "--async") {  // bare form; --async=0|1 also accepted below
    opt.async = true;
    return true;
  }
  const size_t eq = arg.find('=');
  if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
    return false;
  }
  const std::string key = arg.substr(0, eq);
  const char* value = arg.c_str() + eq + 1;
  if (key == "--policy") {
    if (std::strcmp(value, "fcfs") == 0) {
      opt.policy = serving::SchedulerPolicy::kFcfs;
    } else if (std::strcmp(value, "smallest-first") == 0) {
      opt.policy = serving::SchedulerPolicy::kSmallestFirst;
    } else if (std::strcmp(value, "token-budget") == 0) {
      opt.policy = serving::SchedulerPolicy::kTokenBudget;
    } else {
      std::fprintf(stderr, "unknown policy: %s\n", value);
      std::exit(2);
    }
  } else if (key == "--budget") {
    opt.budget = ParseI64(value, key.c_str());
  } else if (key == "--chunk-tokens") {
    // Shared strict parser (no raw atoi): garbage or trailing junk exits
    // with a diagnostic instead of silently serving with chunking off.
    opt.chunk_tokens = ParseI64(value, key.c_str());
  } else if (key == "--chunk-policy") {
    if (!serving::ParseChunkPolicy(value, &opt.chunk_policy)) {
      std::fprintf(stderr, "unknown chunk-policy: %s (fixed | decode-priority)\n", value);
      std::exit(2);
    }
  } else if (key == "--overlap") {
    const int64_t v = ParseI64(value, key.c_str());
    if (v != 0 && v != 1) {
      std::fprintf(stderr, "invalid overlap: '%s' (expected 0 or 1)\n", value);
      std::exit(2);
    }
    opt.overlap = v == 1;
  } else if (key == "--overlap-eff") {
    opt.overlap_eff = ParseDouble(value, key.c_str());
    if (opt.overlap_eff < 0.0 || opt.overlap_eff > 1.0) {
      std::fprintf(stderr, "need overlap-eff in [0, 1]\n");
      std::exit(2);
    }
  } else if (key == "--async") {
    const int64_t v = ParseI64(value, key.c_str());
    if (v != 0 && v != 1) {
      std::fprintf(stderr, "invalid async: '%s' (expected 0 or 1)\n", value);
      std::exit(2);
    }
    opt.async = v == 1;
  } else if (key == "--server-clock") {
    if (!serving::ParseServerClock(value, &opt.server_clock)) {
      std::fprintf(stderr, "unknown server-clock: %s (virtual | wall)\n", value);
      std::exit(2);
    }
  } else if (key == "--mailbox-cap") {
    opt.mailbox_cap = ParseI64(value, key.c_str());
    if (opt.mailbox_cap < 0) {
      std::fprintf(stderr, "need mailbox-cap >= 0 (0 = unbounded)\n");
      std::exit(2);
    }
  } else if (key == "--cancel") {
    // Comma-separated session ids; validated strictly like every number.
    std::string list = value;
    size_t start = 0;
    if (list.empty()) {
      std::fprintf(stderr, "need --cancel=ID[,ID...]\n");
      std::exit(2);
    }
    while (start <= list.size()) {
      const size_t comma = list.find(',', start);
      const std::string tok =
          list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
      opt.cancel_ids.push_back(ParseI64(tok.c_str(), "cancel id"));
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
  } else if (key == "--stream") {
    const int64_t v = ParseI64(value, key.c_str());
    if (v != 0 && v != 1) {
      std::fprintf(stderr, "invalid stream: '%s' (expected 0 or 1)\n", value);
      std::exit(2);
    }
    opt.stream = v == 1;
  } else if (key == "--report-json") {
    opt.report_json = value;
  } else if (key == "--max-resident") {
    opt.max_resident = ParseI64(value, key.c_str());
  } else if (key == "--page-tokens") {
    opt.page_tokens = ParseI64(value, key.c_str());
  } else if (key == "--max-pages") {
    if (std::strcmp(value, "auto") == 0) {
      opt.auto_pages = true;
    } else {
      opt.max_pages = ParseI64(value, key.c_str());
    }
  } else if (key == "--preempt") {
    const int64_t v = ParseI64(value, key.c_str());
    if (v != 0 && v != 1) {
      std::fprintf(stderr, "invalid preempt: '%s' (expected 0 or 1)\n", value);
      std::exit(2);
    }
    opt.preempt = v == 1;
  } else if (key == "--prefix-cache") {
    const int64_t v = ParseI64(value, key.c_str());
    if (v != 0 && v != 1) {
      std::fprintf(stderr, "invalid prefix-cache: '%s' (expected 0 or 1)\n", value);
      std::exit(2);
    }
    opt.prefix_cache = v == 1;
  } else if (key == "--swap") {
    const int64_t v = ParseI64(value, key.c_str());
    if (v != 0 && v != 1) {
      std::fprintf(stderr, "invalid swap: '%s' (expected 0 or 1)\n", value);
      std::exit(2);
    }
    opt.swap = v == 1;
  } else if (key == "--host-pages") {
    opt.host_pages = ParseI64(value, key.c_str());
  } else if (key == "--autotune") {
    const int64_t v = ParseI64(value, key.c_str());
    if (v != 0 && v != 1) {
      std::fprintf(stderr, "invalid autotune: '%s' (expected 0 or 1)\n", value);
      std::exit(2);
    }
    opt.autotune = v == 1;
  } else if (key == "--routing") {
    if (std::strcmp(value, "top-k") == 0) {
      opt.routing = serving::RoutingAlgo::kTopK;
    } else if (std::strcmp(value, "expert-choice") == 0) {
      opt.routing = serving::RoutingAlgo::kExpertChoice;
    } else {
      std::fprintf(stderr, "unknown routing: %s (top-k | expert-choice)\n", value);
      std::exit(2);
    }
  } else if (key == "--shards") {
    opt.shards = ParseInt(value, key.c_str());
  } else if (key == "--placement") {
    if (!serving::ParseShardPlacement(value, &opt.placement)) {
      std::fprintf(stderr, "unknown placement: %s (round-robin | capacity | gate-stats)\n",
                   value);
      std::exit(2);
    }
  } else if (key == "--link-gbps") {
    opt.link_gbps = ParseDouble(value, key.c_str());
  } else if (key == "--link-us") {
    opt.link_us = ParseDouble(value, key.c_str());
  } else if (key == "--threads") {
    opt.threads = ParseInt(value, key.c_str());
  } else if (key == "--layers") {
    opt.layers = ParseInt(value, key.c_str());
  } else if (key == "--hidden") {
    opt.hidden = ParseInt(value, key.c_str());
  } else if (key == "--inter") {
    opt.inter = ParseInt(value, key.c_str());
  } else if (key == "--experts") {
    opt.experts = ParseInt(value, key.c_str());
  } else if (key == "--top-k") {
    opt.top_k = ParseInt(value, key.c_str());
  } else if (key == "--heads") {
    opt.heads = ParseInt(value, key.c_str());
  } else if (key == "--rate") {
    opt.rate = ParseDouble(value, key.c_str());
  } else if (key == "--prompt-min") {
    opt.prompt_min = ParseI64(value, key.c_str());
  } else if (key == "--prompt-max") {
    opt.prompt_max = ParseI64(value, key.c_str());
  } else if (key == "--decode-min") {
    opt.decode_min = ParseI64(value, key.c_str());
  } else if (key == "--decode-max") {
    opt.decode_max = ParseI64(value, key.c_str());
  } else if (key == "--seed") {
    opt.seed = static_cast<uint64_t>(ParseI64(value, key.c_str()));
  } else if (key == "--trace-out") {
    opt.trace_out = value;
  } else if (key == "--trace-detail") {
    if (!obs::ParseTraceDetail(value, &opt.trace_detail)) {
      std::fprintf(stderr, "unknown trace-detail: %s (step | request | full)\n", value);
      std::exit(2);
    }
  } else if (key == "--trace-ring") {
    opt.trace_ring = ParseI64(value, key.c_str());
    if (opt.trace_ring < 1) {
      std::fprintf(stderr, "need trace-ring >= 1\n");
      std::exit(2);
    }
  } else if (key == "--faults") {
    std::string error;
    if (!serving::ParseFaultSchedule(value, &opt.faults, &error)) {
      std::fprintf(stderr, "invalid --faults: %s\n", error.c_str());
      std::exit(2);
    }
  } else if (key == "--fault-seed") {
    opt.fault_seed = static_cast<uint64_t>(ParseI64(value, key.c_str()));
  } else if (key == "--fault-retries") {
    opt.fault_retries = ParseInt(value, key.c_str());
    if (opt.fault_retries < 0) {
      std::fprintf(stderr, "need fault-retries >= 0\n");
      std::exit(2);
    }
  } else if (key == "--deadline-steps") {
    opt.deadline_steps = ParseI64(value, key.c_str());
    if (opt.deadline_steps < 0) {
      std::fprintf(stderr, "need deadline-steps >= 0 (0 disables deadlines)\n");
      std::exit(2);
    }
  } else if (key == "--ingress-cap") {
    opt.ingress_cap = ParseI64(value, key.c_str());
    if (opt.ingress_cap < 0) {
      std::fprintf(stderr, "need ingress-cap >= 0 (0 = unbounded)\n");
      std::exit(2);
    }
  } else if (key == "--watchdog-steps") {
    opt.watchdog_steps = ParseI64(value, key.c_str());
    if (opt.watchdog_steps < 0) {
      std::fprintf(stderr, "need watchdog-steps >= 0 (0 disables the watchdog)\n");
      std::exit(2);
    }
  } else if (key == "--watchdog-dump") {
    opt.watchdog_dump = value;
  } else if (key == "--kernel-backend") {
    if (!ParseKernelBackend(value, &opt.kernel_backend)) {
      std::fprintf(stderr,
                   "bad value for --kernel-backend: %s (auto | scalar | avx2 | avx512 | neon)\n",
                   value);
      std::exit(2);
    }
  } else {
    std::fprintf(stderr, "unknown serve flag: %s\n", key.c_str());
    std::exit(2);
  }
  return true;
}

int CmdServe(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: serve <model|tiny> <trace-file|synthetic:N> [--flags]\n"
                 "(run with no arguments for the full flag list)\n");
    return 2;
  }
  ServeOptions opt;
  opt.model = argv[2];
  opt.trace = argv[3];

  // Named paper models contribute routing/activation structure as *defaults*
  // (flags still override); hidden and intermediate stay miniature because
  // the SpTC path is emulated functionally (override with --hidden/--inter).
  if (opt.model != "tiny") {
    const MoeModelConfig* paper = nullptr;
    for (const auto& m : PaperModels()) {
      if (m.name == opt.model) {
        paper = &m;
        break;
      }
    }
    if (paper == nullptr) {
      std::fprintf(stderr, "unknown model: %s (use 'tiny' or a Table 2 name", opt.model.c_str());
      for (const auto& m : PaperModels()) {
        std::fprintf(stderr, ", %s", m.name.c_str());
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
    opt.experts = paper->num_experts;
    opt.top_k = paper->top_k;
    opt.shared = paper->shared_experts;
    opt.activation = paper->activation;
    std::printf("%s structure (%d experts, top-%d, %d shared), miniature dims by default\n",
                paper->name.c_str(), opt.experts, opt.top_k, opt.shared);
  }

  for (int i = 4; i < argc; ++i) {
    if (!ParseServeFlag(argv[i], opt)) {
      std::fprintf(stderr, "unknown serve argument: %s\n", argv[i]);
      return 2;
    }
  }

  if (opt.heads < 1 || opt.hidden < 32 || opt.inter < 32 || opt.hidden % 32 != 0 ||
      opt.inter % 32 != 0 || opt.hidden % opt.heads != 0) {
    std::fprintf(stderr,
                 "hidden/inter must be multiples of 32 and hidden %% heads == 0 (heads >= 1)\n");
    return 2;
  }
  if (opt.experts < 1 || opt.top_k < 1 || opt.top_k > opt.experts || opt.layers < 1 ||
      opt.budget < 1 || opt.max_resident < 1 || opt.threads < 1) {
    std::fprintf(stderr,
                 "need experts >= 1, 1 <= top-k <= experts, layers >= 1, budget >= 1, "
                 "max-resident >= 1, threads >= 1\n");
    return 2;
  }
  if (opt.page_tokens < 1 || opt.max_pages < 0) {
    std::fprintf(stderr, "need page-tokens >= 1 and max-pages >= 0\n");
    return 2;
  }
  if (opt.chunk_tokens < 0) {
    std::fprintf(stderr, "need chunk-tokens >= 0 (0 disables chunked prefill)\n");
    return 2;
  }
  if (opt.shards < 1) {
    std::fprintf(stderr, "need shards >= 1\n");
    return 2;
  }
  if (opt.preempt && opt.max_pages == 0 && !opt.auto_pages) {
    std::fprintf(stderr, "--preempt=1 requires a bounded page pool (--max-pages)\n");
    return 2;
  }
  if (opt.swap && (!opt.preempt || (opt.max_pages == 0 && !opt.auto_pages))) {
    std::fprintf(stderr, "--swap=1 requires --preempt=1 and a bounded page pool (--max-pages)\n");
    return 2;
  }
  if (opt.host_pages < 0) {
    std::fprintf(stderr, "need host-pages >= 0 (0 = unbounded host tier)\n");
    return 2;
  }
  if (opt.prompt_min < 1 || opt.prompt_max < opt.prompt_min || opt.decode_min < 0 ||
      opt.decode_max < opt.decode_min) {
    std::fprintf(stderr,
                 "need 1 <= prompt-min <= prompt-max and 0 <= decode-min <= decode-max\n");
    return 2;
  }
  // Flag value was well-formed (parse errors already exited 2); a backend
  // this machine cannot run is a runtime failure, not a usage error.
  KernelBackend resolved_backend = KernelBackend::kScalar;
  if (!ResolveKernelBackend(opt.kernel_backend, &resolved_backend)) {
    std::fprintf(stderr, "kernel-backend %s is not runnable on this CPU\n",
                 KernelBackendName(opt.kernel_backend));
    return 1;
  }

  MoeModelConfig cfg;
  cfg.name = opt.model;
  cfg.num_experts = opt.experts;
  cfg.hidden = opt.hidden;
  cfg.intermediate = opt.inter;
  cfg.top_k = opt.top_k;
  cfg.shared_experts = opt.shared;
  cfg.activation = opt.activation;

  if (opt.auto_pages) {
    // Page budget from the Table-3 memory model: resident-token capacity next
    // to this model's weights under Samoyeds storage, in whole pages.
    opt.max_pages = serving::PageCapacity(cfg, MoeFramework::kSamoyeds, SamoyedsConfig{1, 2, 32},
                                          DefaultDevice(), opt.page_tokens);
    if (opt.max_pages < 1) {
      std::fprintf(stderr, "memory model leaves no KV page capacity for %s\n", cfg.name.c_str());
      return 2;
    }
    std::printf("page budget from memory model: %lld pages of %lld tokens\n",
                static_cast<long long>(opt.max_pages), static_cast<long long>(opt.page_tokens));
  }

  // Trace: file path or synthetic:<count>.
  Rng rng(opt.seed);
  std::vector<serving::TraceEntry> entries;
  if (opt.trace.rfind("synthetic:", 0) == 0) {
    const int count = ParseInt(opt.trace.c_str() + std::strlen("synthetic:"), "synthetic count");
    if (count < 1) {
      std::fprintf(stderr, "synthetic count must be >= 1\n");
      return 2;
    }
    entries = serving::SyntheticTrace(rng, count, opt.rate, opt.prompt_min, opt.prompt_max,
                                      opt.decode_min, opt.decode_max);
  } else {
    std::string error;
    entries = serving::ParseTraceFile(opt.trace, &error);
    if (entries.empty()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
  }

  // Build the model and engine.
  const SamoyedsConfig fmt{1, 2, 32};
  std::vector<SamoyedsDecoderLayerWeights> layers;
  for (int l = 0; l < opt.layers; ++l) {
    const DecoderLayerWeights dense = DecoderLayerWeights::Random(rng, cfg);
    layers.push_back(SamoyedsDecoderLayerWeights::Encode(dense, fmt));
  }

  serving::EngineConfig engine_cfg;
  engine_cfg.heads = opt.heads;
  engine_cfg.top_k = opt.top_k;
  engine_cfg.activation = opt.activation;
  engine_cfg.threads = opt.threads;
  engine_cfg.autotune = opt.autotune;
  engine_cfg.routing = opt.routing;
  engine_cfg.shards = opt.shards;
  engine_cfg.placement = opt.placement;
  engine_cfg.link_bandwidth_gbps = opt.link_gbps;
  engine_cfg.link_latency_us = opt.link_us;
  engine_cfg.overlap = opt.overlap;
  engine_cfg.overlap_efficiency = opt.overlap_eff;
  engine_cfg.scheduler.policy = opt.policy;
  engine_cfg.scheduler.token_budget = opt.budget;
  engine_cfg.scheduler.chunk_tokens = opt.chunk_tokens;
  engine_cfg.scheduler.chunk_policy = opt.chunk_policy;
  engine_cfg.scheduler.max_resident_tokens = opt.max_resident;
  engine_cfg.scheduler.page_tokens = opt.page_tokens;
  engine_cfg.scheduler.max_pages = opt.max_pages;
  engine_cfg.scheduler.preempt = opt.preempt;
  engine_cfg.prefix_cache = opt.prefix_cache;
  engine_cfg.swap = opt.swap;
  engine_cfg.host_pages = opt.host_pages;
  engine_cfg.faults = opt.faults;
  engine_cfg.fault_seed = opt.fault_seed;
  engine_cfg.fault_retry_limit = opt.fault_retries;
  engine_cfg.ingress_capacity = opt.ingress_cap;
  engine_cfg.watchdog_steps = opt.watchdog_steps;
  engine_cfg.kernel_backend = resolved_backend;
  // On a liveness trip, dump the flight-recorder ring: the most recent
  // events per thread leading up to the stall, ready for Perfetto.
  const std::string watchdog_dump = opt.watchdog_dump;
  if (!watchdog_dump.empty()) {
    engine_cfg.watchdog_hook = [watchdog_dump](int64_t session_id, int64_t step) {
      std::fprintf(stderr,
                   "watchdog: session %lld made no progress through step %lld — "
                   "dumping flight recorder to %s\n",
                   static_cast<long long>(session_id), static_cast<long long>(step),
                   watchdog_dump.c_str());
      if (!obs::Tracer::Get().WriteChromeJson(watchdog_dump)) {
        std::fprintf(stderr, "cannot write %s\n", watchdog_dump.c_str());
      }
    };
  }
  serving::ServingEngine engine(std::move(layers), engine_cfg);

  std::printf("serving %s: %d layers, hidden %d, %d experts (top-%d), %s activation\n",
              opt.model.c_str(), opt.layers, opt.hidden, opt.experts, opt.top_k,
              opt.activation == Activation::kSilu ? "SiLU" : "GELU-tanh");
  std::printf("scheduler: %s, token budget %lld, max resident tokens %lld, %d expert threads\n",
              serving::SchedulerPolicyName(opt.policy), static_cast<long long>(opt.budget),
              static_cast<long long>(opt.max_resident), opt.threads);
  if (opt.chunk_tokens > 0) {
    std::printf("chunked prefill: <= %lld rows per chunk, %s policy (long prompts interleave "
                "with decode; outputs identical to one-shot prefill)\n",
                static_cast<long long>(opt.chunk_tokens),
                serving::ChunkPolicyName(opt.chunk_policy));
  }
  if (opt.overlap) {
    std::printf("overlap: decode/prefill passes on two threads, transfer/compute overlap "
                "eff %.2f (outputs identical to serial execution)\n",
                opt.overlap_eff);
  }
  if (opt.async) {
    std::printf("async server: %s clock, mailbox %s\n",
                serving::ServerClockName(opt.server_clock),
                opt.mailbox_cap > 0 ? std::to_string(opt.mailbox_cap).c_str() : "unbounded");
  }
  std::printf("routing: %s\n", serving::RoutingAlgoName(opt.routing));
  std::printf("kernel backend: %s (%s)\n", KernelBackendName(resolved_backend),
              resolved_backend == KernelBackend::kScalar
                  ? "bit-exact scalar oracle"
                  : "FMA SIMD, ULP-bounded vs fp64 oracle");
  if (opt.shards > 1) {
    const DeviceSpec& dev = engine.cluster().device(0);
    std::printf("sharding: %d shards, %s placement, link %.0f GB/s + %.1f us (%s)\n",
                opt.shards, serving::ShardPlacementName(opt.placement),
                dev.link_bandwidth_gbps, dev.link_latency_us, dev.name.c_str());
  }
  if (opt.max_pages > 0) {
    std::printf("kv-cache: %lld pages x %lld tokens (page-accounting admission), preemption %s\n",
                static_cast<long long>(opt.max_pages), static_cast<long long>(opt.page_tokens),
                opt.preempt ? "on" : "off");
  } else {
    std::printf("kv-cache: paged storage (%lld-token pages), monolithic token admission\n",
                static_cast<long long>(opt.page_tokens));
  }
  if (engine.prefix_cache() != nullptr) {
    std::printf("prefix-cache: on (radix sharing, copy-on-write pages)\n");
  } else if (opt.prefix_cache) {
    std::printf("prefix-cache: suppressed (expert-choice routing is batch-dependent)\n");
  }
  if (engine.swap_enabled()) {
    const DeviceSpec& dev = engine.cluster().device(0);
    std::printf("swap: host tier %s pages over %.0f GB/s + %.1f us host link\n",
                opt.host_pages > 0 ? std::to_string(opt.host_pages).c_str() : "unbounded",
                dev.host_bandwidth_gbps, dev.host_latency_us);
  }
  if (!opt.faults.empty()) {
    std::printf("faults: %zu rules, seed %llu (deterministic replay)\n", opt.faults.size(),
                static_cast<unsigned long long>(opt.fault_seed));
  }
  if (opt.deadline_steps > 0) {
    std::printf("deadlines: %lld steps from arrival (overdue sessions time out)\n",
                static_cast<long long>(opt.deadline_steps));
  }
  if (opt.ingress_cap > 0) {
    std::printf("overload: ingress queue capped at %lld (lowest-priority shed)\n",
                static_cast<long long>(opt.ingress_cap));
  }
  if (opt.watchdog_steps > 0) {
    std::printf("watchdog: trips after %lld steps without progress%s%s\n",
                static_cast<long long>(opt.watchdog_steps),
                opt.watchdog_dump.empty() ? "" : ", flight recorder -> ",
                opt.watchdog_dump.c_str());
  }
  std::printf("trace: %zu requests\n\n", entries.size());

  // Streaming delivery: rows print as they finalize inside Step(), tagged
  // with the session and sequence positions — the client-visible view of
  // iteration-level scheduling (chunked prefills surface as several partial
  // deliveries before the first decode row).
  serving::OnRowsCallback on_rows;
  if (opt.stream) {
    on_rows = [&engine](const serving::StreamDelta& delta) {
      std::printf("[step %5lld] session %lld: rows [%lld, %lld)%s\n",
                  static_cast<long long>(engine.current_step()),
                  static_cast<long long>(delta.session_id),
                  static_cast<long long>(delta.position_begin),
                  static_cast<long long>(delta.position_begin + delta.rows.rows()),
                  delta.finished ? " [finished]" : "");
    };
  }

  // Tracing starts before the first Submit so arrival events land in the
  // capture, and stops before export (Snapshot requires emitter quiescence,
  // which RunUntilDrained guarantees on return). A watchdog dump target also
  // needs the recorder running — there is nothing to dump otherwise.
  if (!opt.trace_out.empty() || !opt.watchdog_dump.empty()) {
    obs::SetThreadName("engine");
    obs::Tracer::Get().Start(opt.trace_detail, opt.trace_ring);
    std::printf("tracing: %s detail, ring %lld events/thread -> %s\n",
                obs::TraceDetailName(opt.trace_detail),
                static_cast<long long>(opt.trace_ring),
                !opt.trace_out.empty() ? opt.trace_out.c_str() : opt.watchdog_dump.c_str());
  }

  const std::vector<int64_t> ids = serving::AssignTraceIds(entries);
  int64_t iterations = 0;
  if (opt.async) {
    // Async front-end: the driver thread owns the engine; this (client)
    // thread talks to it through the mailbox. With the virtual clock and all
    // submissions enqueued before the first drain, the run is bit-identical
    // to the synchronous path below.
    serving::ServerConfig server_cfg;
    server_cfg.clock = opt.server_clock;
    server_cfg.mailbox_capacity = opt.mailbox_cap;
    serving::AsyncServer server(engine, server_cfg);
    // Submit the whole trace before Start so the driver drains it in one
    // FIFO batch — under the virtual clock this pins the synchronous
    // schedule exactly.
    for (size_t i = 0; i < entries.size(); ++i) {
      serving::Request request = serving::MakeRequest(rng, ids[i], entries[i], opt.hidden);
      request.deadline_steps = opt.deadline_steps;
      server.Submit(std::move(request));
    }
    server.Start();
    for (const int64_t id : opt.cancel_ids) {
      const serving::CancelOutcome outcome = server.Cancel(id);
      if (outcome == serving::CancelOutcome::kUnknownId) {
        std::fprintf(stderr, "cancel: unknown session id %lld\n", static_cast<long long>(id));
        return 1;
      }
      std::printf("cancel %lld: %s\n", static_cast<long long>(id),
                  serving::CancelOutcomeName(outcome));
    }
    server.Drain();
    for (const int64_t id : ids) {
      const serving::ServerPollResult result = server.WaitTerminal(id);
      if (opt.stream) {
        // Per-iteration streaming prints are a synchronous-mode feature (the
        // callback fires on the driver thread); async mode summarizes.
        std::printf("session %lld: %lld rows delivered, %s%s%s\n",
                    static_cast<long long>(id),
                    static_cast<long long>(result.delivered_rows),
                    serving::RequestStatusName(result.status),
                    result.reason.empty() ? "" : " — ", result.reason.c_str());
      }
    }
    iterations = server.steps();
    server.Stop();
  } else {
    for (size_t i = 0; i < entries.size(); ++i) {
      serving::Request request = serving::MakeRequest(rng, ids[i], entries[i], opt.hidden);
      request.deadline_steps = opt.deadline_steps;
      engine.Submit(std::move(request), on_rows);
    }
    for (const int64_t id : opt.cancel_ids) {
      const serving::CancelOutcome outcome = engine.TryCancel(id);
      if (outcome == serving::CancelOutcome::kUnknownId) {
        std::fprintf(stderr, "cancel: unknown session id %lld\n", static_cast<long long>(id));
        return 1;
      }
      std::printf("cancel %lld: %s\n", static_cast<long long>(id),
                  serving::CancelOutcomeName(outcome));
    }
    iterations = engine.RunUntilDrained(/*max_steps=*/1000000);
  }

  if (!opt.trace_out.empty()) {
    obs::Tracer& tracer = obs::Tracer::Get();
    tracer.Stop();
    if (!tracer.WriteChromeJson(opt.trace_out)) {
      // Runtime failure, not a usage error: the flags were fine, the
      // filesystem was not.
      std::fprintf(stderr, "cannot write %s\n", opt.trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s (%lld events, %lld overwritten by the flight-recorder ring)\n",
                opt.trace_out.c_str(), static_cast<long long>(tracer.total_events()),
                static_cast<long long>(tracer.dropped_events()));
  }

  serving::ServingReport report = engine.Report();
  char model_echo[128];
  std::snprintf(model_echo, sizeof(model_echo),
                "%s layers=%d hidden=%d inter=%d experts=%d top_k=%d heads=%d shared=%d",
                opt.model.c_str(), opt.layers, opt.hidden, opt.inter, opt.experts, opt.top_k,
                opt.heads, opt.shared);
  report.provenance.model = model_echo;
  report.provenance.trace = opt.trace;
  report.provenance.seed = static_cast<int64_t>(opt.seed);
  serving::EngineMetrics::Print(report, stdout);
  if (!opt.report_json.empty()) {
    std::FILE* f = std::fopen(opt.report_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.report_json.c_str());
      return 1;
    }
    const std::string json = report.ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", opt.report_json.c_str());
  }
  if (engine.queued() > 0 || engine.resident_sequences() > 0) {
    std::fprintf(stderr,
                 "warning: undrained after %lld iterations (%lld queued, %lld resident) — "
                 "metrics above cover the completed portion only\n",
                 static_cast<long long>(iterations), static_cast<long long>(engine.queued()),
                 static_cast<long long>(engine.resident_sequences()));
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "devices") {
    return CmdDevices();
  }
  if (cmd == "analyze") {
    return CmdAnalyze(argc, argv);
  }
  if (cmd == "autotune") {
    return CmdAutotune(argc, argv);
  }
  if (cmd == "maxbatch") {
    return CmdMaxBatch();
  }
  if (cmd == "moe") {
    return CmdMoe(argc, argv);
  }
  if (cmd == "encode") {
    return CmdEncode(argc, argv);
  }
  if (cmd == "serve") {
    return CmdServe(argc, argv);
  }
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    PrintUsage(stdout);
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  PrintUsage(stderr);
  return 2;
}

}  // namespace
}  // namespace samoyeds

int main(int argc, char** argv) { return samoyeds::Main(argc, argv); }
