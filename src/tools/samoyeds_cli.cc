// samoyeds_cli — command-line front end to the library and the performance
// simulator.
//
// Usage:
//   samoyeds_cli devices
//   samoyeds_cli analyze <m> <k> <n> [selected] [device-index]
//   samoyeds_cli autotune <m> <k> <n> [device-index]
//   samoyeds_cli maxbatch
//   samoyeds_cli moe <model-name> <tokens>
//   samoyeds_cli encode <rows> <cols> <N> <M> <V>   (random matrix demo)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/autotune.h"
#include "src/core/samoyeds_kernel.h"
#include "src/formats/samoyeds_format.h"
#include "src/frameworks/layer_cost.h"
#include "src/kernels/cusparselt_spmm.h"
#include "src/kernels/dense_gemm.h"
#include "src/kernels/nmsparse_spmm.h"
#include "src/kernels/sputnik_spmm.h"
#include "src/kernels/venom_spmm.h"
#include "src/moe/memory_model.h"
#include "src/moe/model_configs.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace {

const DeviceSpec& DeviceByIndex(int index) {
  const auto models = AllDeviceModels();
  if (index < 0 || index >= static_cast<int>(models.size())) {
    std::fprintf(stderr, "device index out of range (see `devices`)\n");
    std::exit(2);
  }
  return GetDevice(models[static_cast<size_t>(index)]);
}

int CmdDevices() {
  const auto models = AllDeviceModels();
  std::printf("%3s %-30s %5s %9s %9s %8s %8s\n", "idx", "name", "SMs", "TC TF/s", "BW GB/s",
              "L2 MiB", "mem GiB");
  for (size_t i = 0; i < models.size(); ++i) {
    const DeviceSpec& d = GetDevice(models[i]);
    std::printf("%3zu %-30s %5d %9.0f %9.0f %8lld %8lld\n", i, d.name.c_str(), d.sm_count,
                d.tc_dense_tflops, d.dram_bandwidth_gbps,
                static_cast<long long>(d.l2_bytes >> 20),
                static_cast<long long>(d.dram_capacity_bytes >> 30));
  }
  return 0;
}

int CmdAnalyze(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: analyze <m> <k> <n> [selected] [device-index]\n");
    return 2;
  }
  const GemmShape shape{std::atoll(argv[2]), std::atoll(argv[3]), std::atoll(argv[4])};
  const int64_t selected = argc > 5 ? std::atoll(argv[5]) : shape.n;
  const DeviceSpec& device = argc > 6 ? DeviceByIndex(std::atoi(argv[6])) : DefaultDevice();
  const TimingModel model(device);
  const SamoyedsConfig fmt{1, 2, 32};

  std::printf("C[%lld x %lld] = A[%lld x %lld] * B, %lld of %lld columns selected, on %s\n\n",
              static_cast<long long>(shape.m), static_cast<long long>(selected),
              static_cast<long long>(shape.m), static_cast<long long>(shape.k),
              static_cast<long long>(selected), static_cast<long long>(shape.n),
              device.name.c_str());
  auto row = [&](const KernelProfile& p) {
    const TimingEstimate e = model.Estimate(p.traffic);
    std::printf("%-24s %10.3fms %9.1f TF/s  %s\n", p.kernel_name.c_str(), e.total_ms,
                p.useful_flops / (e.total_ms * 1e-3) / 1e12,
                e.memory_bound() ? "memory-bound" : "compute-bound");
  };
  row(DenseGemmKernel::Analyze(shape));
  row(CusparseltSpmmKernel::Analyze(shape));
  row(SputnikSpmmKernel::Analyze(shape, 0.25));
  row(NmSparseSpmmKernel::Analyze(shape, NmConfig{1, 4}));
  row(VenomSpmmKernel::Analyze(shape, VenomConfig{64, 2, 4}, device));
  row(SamoyedsKernel::Analyze(shape, selected, fmt, SsmmConfig::Default(), device));
  return 0;
}

int CmdAutotune(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: autotune <m> <k> <n> [device-index]\n");
    return 2;
  }
  const GemmShape shape{std::atoll(argv[2]), std::atoll(argv[3]), std::atoll(argv[4])};
  const DeviceSpec& device = argc > 5 ? DeviceByIndex(std::atoi(argv[5])) : DefaultDevice();
  const AutotuneResult r = AutotuneSsmm(shape, shape.n, SamoyedsConfig{1, 2, 32}, device);
  std::printf("%s: default %.3f ms -> tuned %.3f ms (%.2fx)\n", device.name.c_str(), r.default_ms,
              r.simulated_ms, r.speedup_over_default());
  std::printf("chosen config: mb=%d nb=%d kb=%d mw=%d nw=%d stages=%d\n", r.config.mb,
              r.config.nb, r.config.kb, r.config.mw, r.config.nw, r.config.stages);
  return 0;
}

int CmdMaxBatch() {
  const SamoyedsConfig fmt{1, 2, 32};
  std::printf("%-14s %5s %13s %11s %8s %9s\n", "model", "seq", "Transformers", "MegaBlocks",
              "vLLM-DS", "Samoyeds");
  for (const auto& model : PaperModels()) {
    const int64_t seq = model.name == "OpenMoE-34B" ? 2048
                        : model.num_experts >= 32 && model.intermediate <= 4096 ? 4096
                                                                                : 1024;
    std::printf("%-14s %5lld", model.name.c_str(), static_cast<long long>(seq));
    for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                            MoeFramework::kVllmDs, MoeFramework::kSamoyeds}) {
      if (!FrameworkSupportsModel(fw, model)) {
        std::printf(" %*s", fw == MoeFramework::kTransformers ? 13 : 11, "-");
        continue;
      }
      const auto fp = EstimateFootprint(model, fw, fmt, DefaultDevice());
      const int width = fw == MoeFramework::kTransformers ? 13
                        : fw == MoeFramework::kSamoyeds   ? 9
                        : fw == MoeFramework::kVllmDs     ? 8
                                                          : 11;
      std::printf(" %*lld", width, static_cast<long long>(fp.MaxBatch(seq)));
    }
    std::printf("\n");
  }
  return 0;
}

int CmdMoe(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: moe <model-name> <tokens>\n");
    return 2;
  }
  const MoeModelConfig& model = ModelByName(argv[2]);
  const int64_t tokens = std::atoll(argv[3]);
  const auto counts = UniformTokensPerExpert(model, tokens);
  LayerCostOptions opts;
  opts.shared_experts_override = 0;
  std::printf("%s MoE layer, %lld tokens:\n", model.name.c_str(),
              static_cast<long long>(tokens));
  for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                          MoeFramework::kVllmDs, MoeFramework::kPit, MoeFramework::kSamoyeds}) {
    if (!FrameworkSupportsModel(fw, model)) {
      std::printf("  %-13s NS\n", FrameworkName(fw));
      continue;
    }
    std::printf("  %-13s %9.3f ms\n", FrameworkName(fw),
                EstimateMoeLayerCost(fw, model, counts, tokens, opts).total_ms);
  }
  return 0;
}

int CmdEncode(int argc, char** argv) {
  if (argc < 7) {
    std::fprintf(stderr, "usage: encode <rows> <cols> <N> <M> <V>\n");
    return 2;
  }
  const int64_t rows = std::atoll(argv[2]);
  const int64_t cols = std::atoll(argv[3]);
  const SamoyedsConfig cfg{std::atoi(argv[4]), std::atoi(argv[5]), std::atoi(argv[6])};
  if (!cfg.IsValid() || rows % cfg.m != 0 || cols % cfg.v != 0) {
    std::fprintf(stderr, "invalid config or non-divisible shape\n");
    return 2;
  }
  Rng rng(1);
  const SamoyedsMatrix enc = SamoyedsMatrix::Encode(rng.GaussianMatrix(rows, cols), cfg);
  std::printf("encoded %lld x %lld at (%d,%d,%d): sparsity %.1f%%, storage %lld KiB "
              "(dense bf16 %lld KiB), well-formed: %s\n",
              static_cast<long long>(rows), static_cast<long long>(cols), cfg.n, cfg.m, cfg.v,
              100.0 * cfg.sparsity(), static_cast<long long>(enc.StorageBytes() >> 10),
              static_cast<long long>(rows * cols * 2 >> 10),
              enc.IsWellFormed() ? "yes" : "NO");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: samoyeds_cli <devices|analyze|autotune|maxbatch|moe|encode> ...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "devices") {
    return CmdDevices();
  }
  if (cmd == "analyze") {
    return CmdAnalyze(argc, argv);
  }
  if (cmd == "autotune") {
    return CmdAutotune(argc, argv);
  }
  if (cmd == "maxbatch") {
    return CmdMaxBatch();
  }
  if (cmd == "moe") {
    return CmdMoe(argc, argv);
  }
  if (cmd == "encode") {
    return CmdEncode(argc, argv);
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace samoyeds

int main(int argc, char** argv) { return samoyeds::Main(argc, argv); }
