// Dense row-major matrix container used throughout the Samoyeds reproduction.
//
// The class is intentionally small: the interesting data structures in this
// project are the *sparse* encodings built on top of it (see src/formats/),
// so Matrix only provides storage, shape bookkeeping and a few convenience
// constructors.

#ifndef SAMOYEDS_SRC_TENSOR_MATRIX_H_
#define SAMOYEDS_SRC_TENSOR_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace samoyeds {

// Row-major dense matrix. Index with m(r, c); raw storage is contiguous with
// stride == cols().
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), init) {
    assert(rows >= 0 && cols >= 0);
  }

  static Matrix FromRowMajor(int64_t rows, int64_t cols, std::vector<T> values) {
    assert(static_cast<int64_t>(values.size()) == rows * cols);
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(values);
    return m;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(int64_t r, int64_t c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  const T& operator()(int64_t r, int64_t c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  std::span<T> row(int64_t r) {
    assert(r >= 0 && r < rows_);
    return std::span<T>(data_.data() + r * cols_, static_cast<size_t>(cols_));
  }
  std::span<const T> row(int64_t r) const {
    assert(r >= 0 && r < rows_);
    return std::span<const T>(data_.data() + r * cols_, static_cast<size_t>(cols_));
  }

  std::span<T> flat() { return std::span<T>(data_); }
  std::span<const T> flat() const { return std::span<const T>(data_); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void Fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  // Reshapes to rows x cols reusing the existing storage; contents are
  // unspecified afterwards. The backing vector only reallocates when the new
  // size exceeds its capacity, so a buffer cycled through its maximum shape
  // never allocates again — the contract the serving workspaces rely on for
  // zero steady-state heap traffic.
  void Reshape(int64_t rows, int64_t cols) {
    assert(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows * cols));
  }

  // Returns the transpose as a new matrix (used when staging operands into
  // the layouts the kernels expect).
  Matrix Transposed() const {
    Matrix t(cols_, rows_);
    for (int64_t r = 0; r < rows_; ++r) {
      for (int64_t c = 0; c < cols_; ++c) {
        t(c, r) = (*this)(r, c);
      }
    }
    return t;
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_TENSOR_MATRIX_H_
