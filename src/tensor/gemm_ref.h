// Reference dense linear algebra used as the correctness oracle for every
// sparse kernel in the project. Deliberately simple and obviously correct.

#ifndef SAMOYEDS_SRC_TENSOR_GEMM_REF_H_
#define SAMOYEDS_SRC_TENSOR_GEMM_REF_H_

#include "src/tensor/matrix.h"

namespace samoyeds {

// C = A(m x k) * B(k x n). Result allocated fresh.
MatrixF GemmRef(const MatrixF& a, const MatrixF& b);

// C += A * B into an existing accumulator (shapes must match).
void GemmAccumulateRef(const MatrixF& a, const MatrixF& b, MatrixF& c);

// Maximum absolute elementwise difference between two equal-shaped matrices.
float MaxAbsDiff(const MatrixF& a, const MatrixF& b);

// Frobenius norm.
double FrobeniusNorm(const MatrixF& m);

// Relative Frobenius error ||a - b||_F / ||b||_F (0 when both are zero).
double RelativeError(const MatrixF& a, const MatrixF& b);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_TENSOR_GEMM_REF_H_
