#include "src/tensor/gemm_ref.h"

#include <cassert>
#include <cmath>

namespace samoyeds {

MatrixF GemmRef(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.cols());
  GemmAccumulateRef(a, b, c);
  return c;
}

void GemmAccumulateRef(const MatrixF& a, const MatrixF& b, MatrixF& c) {
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  // ikj loop order keeps the inner loop contiguous on both B and C.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a(i, p);
      if (av == 0.0f) {
        continue;
      }
      const float* brow = &b(p, 0);
      float* crow = &c(i, 0);
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

float MaxAbsDiff(const MatrixF& a, const MatrixF& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  float max_diff = 0.0f;
  auto fa = a.flat();
  auto fb = b.flat();
  for (size_t i = 0; i < fa.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(fa[i] - fb[i]));
  }
  return max_diff;
}

double FrobeniusNorm(const MatrixF& m) {
  double sum = 0.0;
  for (float v : m.flat()) {
    sum += static_cast<double>(v) * v;
  }
  return std::sqrt(sum);
}

double RelativeError(const MatrixF& a, const MatrixF& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double num = 0.0;
  double den = 0.0;
  auto fa = a.flat();
  auto fb = b.flat();
  for (size_t i = 0; i < fa.size(); ++i) {
    const double d = static_cast<double>(fa[i]) - fb[i];
    num += d * d;
    den += static_cast<double>(fb[i]) * fb[i];
  }
  if (den == 0.0) {
    return num == 0.0 ? 0.0 : 1.0;
  }
  return std::sqrt(num / den);
}

}  // namespace samoyeds
