// Deterministic random number generation for workload synthesis.
//
// All experiments in this reproduction are seeded so that tests and benches
// are exactly repeatable across runs and machines. We use xoshiro256++ which
// is fast, has a tiny state and well-studied statistical quality.

#ifndef SAMOYEDS_SRC_TENSOR_RNG_H_
#define SAMOYEDS_SRC_TENSOR_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>

#include "src/tensor/matrix.h"

namespace samoyeds {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5a3070edull) {
    // SplitMix64 seeding, recommended initialization for xoshiro.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  float NextFloat() { return static_cast<float>(NextDouble()); }

  // Uniform integer in [0, bound).
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill here; modulo bias
    // is negligible for the bounds used in this project (< 2^32).
    return NextU64() % bound;
  }

  int64_t NextIndex(int64_t bound) { return static_cast<int64_t>(NextBounded(static_cast<uint64_t>(bound))); }

  // Standard normal via Box-Muller.
  float NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = static_cast<float>(r * std::sin(theta));
    has_cached_ = true;
    return static_cast<float>(r * std::cos(theta));
  }

  // In-place Fisher-Yates shuffle of [0, n) index vectors.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  MatrixF GaussianMatrix(int64_t rows, int64_t cols, float stddev = 1.0f) {
    MatrixF m(rows, cols);
    for (auto& v : m.flat()) {
      v = NextGaussian() * stddev;
    }
    return m;
  }

  MatrixF UniformMatrix(int64_t rows, int64_t cols, float lo = -1.0f, float hi = 1.0f) {
    MatrixF m(rows, cols);
    for (auto& v : m.flat()) {
      v = lo + (hi - lo) * NextFloat();
    }
    return m;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
  bool has_cached_ = false;
  float cached_ = 0.0f;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_TENSOR_RNG_H_
