// bfloat16 emulation.
//
// The paper's kernels operate on bf16 operands with fp32 accumulation
// (the mma.sp.m16n8k32 bf16 variant). We keep values in float but provide
// round-to-nearest-even truncation to the bf16 grid so that the functional
// SpTC model (src/sptc/) matches hardware numerics.

#ifndef SAMOYEDS_SRC_TENSOR_BF16_H_
#define SAMOYEDS_SRC_TENSOR_BF16_H_

#include <bit>
#include <cstdint>

#include "src/tensor/matrix.h"

namespace samoyeds {

// Rounds a float to the nearest bfloat16-representable value (ties to even).
inline float RoundToBf16(float x) {
  uint32_t bits = std::bit_cast<uint32_t>(x);
  // NaN: keep a quiet NaN payload.
  if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu) != 0) {
    return std::bit_cast<float>((bits | 0x00400000u) & 0xffff0000u);
  }
  const uint32_t rounding_bias = 0x7fffu + ((bits >> 16) & 1u);
  bits += rounding_bias;
  bits &= 0xffff0000u;
  return std::bit_cast<float>(bits);
}

inline void RoundMatrixToBf16(MatrixF& m) {
  for (auto& v : m.flat()) {
    v = RoundToBf16(v);
  }
}

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_TENSOR_BF16_H_
