// Deterministic fault injection for the serving engine.
//
// A FaultInjector owns a set of named fault points threaded through the
// serving stack (KV page allocation, host-swap transfers and payload
// integrity, shard liveness, interconnect health). The engine probes a point
// wherever the real system could fail; the injector answers "fail here, now"
// according to a reproducible schedule:
//
//   * at-step rules fire on every probe of their point while the engine is
//     on exactly that step (so `kv-alloc@12` fails *all* page allocations of
//     step 12), and
//   * probability rules draw from a per-rule counter-based RNG seeded from
//     (seed, rule index), so a schedule replays bit-exactly for a given seed
//     regardless of which other rules exist.
//
// Probes are only ever issued from the engine thread at deterministic
// program points, which makes every chaos run replayable: the same schedule
// + seed + trace produces the same fault sequence, the same recovery
// actions, and byte-identical reports (see ServingReport::StripWallClock).
//
// The schedule grammar (CLI `--faults=`):
//
//   spec     := rule ("," rule)*
//   rule     := point ("@" step | "~" probability) [":" arg] ["x" max_fires]
//   point    := kv-alloc | swap-out | swap-in | swap-corrupt |
//               shard-die | shard-stall | link-degrade
//
// e.g. "kv-alloc~0.05,shard-die@40:1,swap-corrupt@12x2". `arg` is
// point-specific: the physical shard id for shard-die/shard-stall, the
// bandwidth divisor for link-degrade (default 2), unused elsewhere.

#ifndef SAMOYEDS_SRC_SERVING_FAULTS_H_
#define SAMOYEDS_SRC_SERVING_FAULTS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace samoyeds {
namespace serving {

enum class FaultPoint {
  kKvAlloc,     // KV page allocation fails (engine retries, then recomputes)
  kSwapOut,     // host-swap transfer out fails (transient; bounded retries)
  kSwapIn,      // host-swap transfer in fails (transient; bounded retries)
  kSwapCorrupt, // swapped payload bit-flips at rest (checksum catches it)
  kShardDeath,  // shard `arg` dies; its experts fail over to survivors
  kShardStall,  // shard `arg` stalls this step (analytic-time penalty)
  kLinkDegrade, // interconnect bandwidth divided by `arg` from here on
};
inline constexpr int kNumFaultPoints = 7;

const char* FaultPointName(FaultPoint p);
bool ParseFaultPoint(const char* name, FaultPoint* out);

// One schedule entry. Exactly one of at_step / probability drives it:
// at_step >= 0 makes the rule step-triggered (probability is ignored).
struct FaultRule {
  FaultPoint point = FaultPoint::kKvAlloc;
  int64_t at_step = -1;     // fire on probes at exactly this step; -1 = off
  double probability = 0.0; // else: per-probe fire probability in [0, 1]
  int64_t arg = 0;          // point-specific (shard id, bandwidth divisor)
  int64_t max_fires = -1;   // lifetime fire budget; -1 = unbounded
};

struct FaultDecision {
  bool fire = false;
  int64_t arg = 0;
};

// Parses the schedule grammar above into rules. On failure returns false and
// leaves a human-readable message in *error (rules is untouched on failure).
bool ParseFaultSchedule(const std::string& spec, std::vector<FaultRule>* rules,
                        std::string* error);

class FaultInjector {
 public:
  FaultInjector() = default;  // disabled: every probe answers "no fault"

  // Installs the schedule. `seed` drives the probability rules; rules with
  // the same (seed, position) always replay the same fire sequence.
  void Configure(std::vector<FaultRule> rules, uint64_t seed);

  // The engine advances this at the top of each Step(); at-step rules match
  // against it.
  void BeginStep(int64_t step) { step_ = step; }

  // One probe of `point`: the first rule for the point that fires wins (and
  // consumes one of its max_fires). Probes must come from deterministic
  // program points — the engine thread only.
  FaultDecision Probe(FaultPoint point);
  bool ShouldFail(FaultPoint point) { return Probe(point).fire; }

  bool enabled() const { return !rules_.empty(); }
  int64_t fires(FaultPoint point) const {
    return fires_[static_cast<size_t>(point)];
  }
  int64_t total_fires() const;

 private:
  struct RuleState {
    FaultRule rule;
    uint64_t rng = 0;  // splitmix64 state, advanced per probability draw
    int64_t fires = 0;
  };

  std::vector<RuleState> rules_;
  std::array<int64_t, kNumFaultPoints> fires_{};
  int64_t step_ = 0;
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_FAULTS_H_
