// Continuous-batching serving engine over the Samoyeds decoder path, with a
// streaming session API and chunked prefill.
//
// Submit() returns a SessionHandle: output rows finalize iteration by
// iteration and are delivered incrementally — polled through the session's
// cursor (NewRows) or pushed through an optional OnRows callback fired
// inside Step() — instead of materializing as one matrix at drain time.
// Sessions are first-class: Cancel() tears one down at any point in its
// lifecycle (ingress queue, scheduler backlog, or resident mid-prefill/
// mid-decode), freeing its KV pages and recording a kCancelled terminal
// status.
//
// One Step() is one iteration of Orca-style iteration-level scheduling:
//
//   1. Drain arrived requests from the ingress RequestQueue into the
//      Scheduler.
//   2. Plan each resident's rows for this iteration: one decode row per
//      decode-phase sequence, then — under chunked prefill — the next
//      prompt chunk of each mid-prefill sequence, sized to the leftover
//      token budget (Sarathi-style prefill/decode interleaving).
//   3. Under page pressure (paged KV cache + preemption enabled), evict the
//      lowest-priority / youngest resident sequences until this iteration's
//      planned rows can get pages; evictees free their pages and are
//      requeued for recompute on readmission.
//   4. The Scheduler admits new sequences under the token budget and either
//      resident-token or KV-page accounting; with chunking on, admission
//      charges a prompt's *first chunk*, so prompts longer than the token
//      budget are served instead of rejected.
//   5. Assemble one batch from the planned rows and extend each sequence's
//      KV page table to cover them (chunks target pages directly).
//   6. Forward the batch through the decoder stack. Attention runs
//      per-sequence against the paged per-layer cache of that sequence's
//      normed prefix rows (causal, so cached rows never change), gathered
//      through its page table; the MoE sub-block routes the *whole* batch in
//      one RoutingPlan and executes experts on the multi-threaded ExpertPool.
//   7. Split outputs back per sequence, stream newly finalized rows to
//      OnRows callbacks, retire finished ones (freeing pages).
//
// The incremental path computes exactly the rows a full-sequence
// DecoderStackForwardSamoyeds would: causality guarantees earlier positions'
// hidden states never change, so caching them is lossless — chunked prefill
// therefore produces outputs bit-identical to one-shot prefill, and a
// preempted sequence recomputes from row 0, reproducing the same rows
// bit-for-bit. Tests compare against DecoderStackForwardReference at bf16
// tolerance and assert chunked == unchunked exactly.

#ifndef SAMOYEDS_SRC_SERVING_ENGINE_H_
#define SAMOYEDS_SRC_SERVING_ENGINE_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <functional>

#include "src/core/autotune.h"
#include "src/moe/decoder_layer.h"
#include "src/serving/batch_assembler.h"
#include "src/serving/expert_pool.h"
#include "src/serving/faults.h"
#include "src/serving/kv_cache.h"
#include "src/serving/metrics.h"
#include "src/serving/prefix_cache.h"
#include "src/serving/request.h"
#include "src/serving/request_queue.h"
#include "src/serving/scheduler.h"
#include "src/serving/shard_plan.h"

namespace samoyeds {
namespace serving {

// Which router the engine drives each layer's MoE sub-block with. Top-k is
// the default (tokens pick experts; per-row outputs are independent of
// batch composition, which is what the engine's incremental-equals-full
// property and preemption recompute rely on). Expert-choice inverts the
// selection (experts pick tokens, perfectly balanced per layer) — note its
// outputs legitimately depend on batch composition, so it trades the
// full-sequence-reference equivalence for load balance.
enum class RoutingAlgo {
  kTopK,
  kExpertChoice,
};

const char* RoutingAlgoName(RoutingAlgo r);

// What a cancellation attempt found (see ServingEngine::TryCancel). The
// legacy bool Cancel() collapses this to outcome == kCancelled; the async
// front end and the CLI surface the distinction (an unknown id is an operator
// error, an already-terminal id is a benign race).
enum class CancelOutcome {
  kCancelled,        // live session torn down by this call
  kUnknownId,        // id was never submitted to this engine
  kAlreadyTerminal,  // session already reached a terminal status
};

const char* CancelOutcomeName(CancelOutcome o);

struct EngineConfig {
  int heads = 4;
  int top_k = 2;
  Activation activation = Activation::kSilu;
  int threads = 4;  // expert pool size; <= 1 runs experts inline
  // Resolve the SSMM tile configuration per batch shape via AutotuneSsmm,
  // memoized per (batch rows, max tokens per expert) — the ROADMAP's
  // "autotuned serving". Purely an analytic-model resolution: functional
  // outputs are unchanged (asserted by ServingTest.AutotuneDoesNotChangeOutputs);
  // the resolved config also feeds the per-step analytic wall-clock estimate.
  bool autotune = false;
  RoutingAlgo routing = RoutingAlgo::kTopK;
  // Expert-parallel sharding: experts partition across `shards` simulated
  // devices (per-shard expert-pool queues + per-shard analytic timing).
  // Outputs are bit-identical at any shard count.
  int shards = 1;
  ShardPlacement placement = ShardPlacement::kRoundRobin;
  // Interconnect overrides applied to every device of the simulated
  // cluster; link_bandwidth_gbps <= 0 and link_latency_us < 0 keep the
  // DeviceSpec defaults.
  double link_bandwidth_gbps = 0.0;
  double link_latency_us = -1.0;
  // Prefix-sharing radix KV cache: an admission whose prompt rows bit-match a
  // previously served prefix maps the cached pages (refcounted,
  // copy-on-write on the first divergent write) and replays the cached
  // output rows instead of re-prefilling them. Silently disabled under
  // expert-choice routing, whose outputs depend on batch composition, so
  // replaying another batch's rows would not be bit-lossless.
  bool prefix_cache = false;
  // Swap-style preemption: a victim's KV pages move to a simulated host tier
  // (transfer time charged against the device's host link for the bytes
  // actually moved) and are restored bit-exactly on readmission instead of
  // recomputed. Requires scheduler.preempt and a bounded page pool;
  // recompute stays the fallback whenever the host tier cannot hold the
  // victim.
  bool swap = false;
  // Host-tier capacity in KV pages for --swap (0 = unbounded).
  int64_t host_pages = 0;
  // Deterministic fault-injection schedule (see faults.h); empty = fault-free.
  // `fault_seed` drives the probability rules, so schedule + seed replay
  // bit-exactly.
  std::vector<FaultRule> faults;
  uint64_t fault_seed = 0;
  // Transient-fault handling: a failed KV allocation or swap transfer is
  // retried up to `fault_retry_limit` times (each retry charging
  // exponentially growing modeled backoff, base `fault_backoff_ms`) before
  // the engine falls back to evict-and-recompute.
  int fault_retry_limit = 3;
  double fault_backoff_ms = 0.05;
  // Overload control: > 0 bounds the ingress queue. A Submit that finds the
  // queue full sheds the lowest-priority queued request below the arrival's
  // class (or the arrival itself) with a kShedded terminal status.
  int64_t ingress_capacity = 0;
  // Liveness watchdog: > 0 trips when any live session makes no progress
  // (admission, prefill, decode, or termination) for this many steps.
  // `watchdog_hook` fires once per stall episode — the CLI uses it to dump
  // the obs flight-recorder ring.
  int64_t watchdog_steps = 0;
  std::function<void(int64_t /*session_id*/, int64_t /*step*/)> watchdog_hook;
  // SSMM inner-loop backend for every expert projection this engine runs
  // (see kernel_backend.h for the per-backend accumulation contract).
  // Installed process-wide at engine construction; kAuto resolves to the
  // widest ISA the CPU supports, and an unsupported specific request falls
  // back to scalar (the CLI rejects it before getting here). The default,
  // scalar, is the bit-exact oracle path every serving bit-identity
  // invariant is stated against.
  KernelBackend kernel_backend = KernelBackend::kScalar;
  // Overlapped execution (the ROADMAP's "decode/prefill/all-to-all
  // pipelining"): when a step carries both resident decode rows and a
  // prefill chunk, the two sub-batches execute concurrently (decode on the
  // expert pool, the prefill chunk inline on a helper thread), and the
  // analytic step estimate overlaps decode compute with prefill compute and
  // hides the all-to-all under compute at `overlap_efficiency`. Outputs stay
  // bit-identical to the serial schedule (per-row outputs are independent of
  // batch composition under top-k routing — the same property chunked
  // prefill and preemption recompute rely on); execution overlap is
  // therefore suppressed under expert-choice routing, where only the
  // modeled all-to-all/compute overlap applies. The serial analytic fields
  // (est_compute_ms, est_alltoall_ms) are unchanged by overlap; the savings
  // land in StepMetrics::est_overlap_saved_ms.
  bool overlap = false;
  double overlap_efficiency = 0.85;
  SchedulerConfig scheduler;
};

// Terminal record of a session, kept after it leaves the engine. The
// streaming session surface (SessionHandle::NewRows / OnRows) is the primary
// delivery path; `outputs` is the materialized compatibility view — for a
// finished session it is bit-identical to the concatenation of every
// streamed delta.
struct RequestResult {
  RequestStatus status = RequestStatus::kQueued;
  // Why the session ended short of finishing (rejection, cancellation,
  // timeout, shedding). Exactly one terminal transition ever runs (enforced
  // by ServingEngine::Finalize), and it sets this: non-empty for every
  // terminal status except kFinished, empty for kFinished.
  std::string reason;
  // One output row per consumed input position (total_tokens x hidden for a
  // finished request; the rows produced before termination for a cancelled
  // one). Row prompt_len - 1 is the "first token" hidden state; later rows
  // are the decode outputs.
  MatrixF outputs;
};

class ServingEngine;

// Caller-side view of one submitted session. A default-constructed or
// rejected handle is !ok(); the bool conversion keeps the legacy
// `if (engine.Submit(r))` submission check working. All methods proxy to the
// owning engine and must run on the engine thread.
class SessionHandle {
 public:
  SessionHandle() = default;

  int64_t id() const { return id_; }
  // Accepted at submit (well-formed, not a duplicate id).
  bool ok() const { return accepted_; }
  explicit operator bool() const { return accepted_; }

  // Handles for submissions rejected at Submit still reach the engine, so
  // status() reports kRejected and Result() is reachable through the id.
  RequestStatus status() const;
  // Finalized-but-undelivered output rows: returns them and advances the
  // session's delivery cursor (empty matrix when nothing new finalized).
  MatrixF NewRows();
  // Rows NewRows() would return right now, without consuming them.
  int64_t available_rows() const;
  // Rows delivered so far through NewRows() or the OnRows callback.
  int64_t delivered_rows() const;
  // Terminates the session (see ServingEngine::Cancel).
  bool Cancel();

 private:
  friend class ServingEngine;
  SessionHandle(ServingEngine* engine, int64_t id, bool accepted)
      : engine_(engine), id_(id), accepted_(accepted) {}

  ServingEngine* engine_ = nullptr;
  int64_t id_ = -1;
  bool accepted_ = false;
};

class ServingEngine {
 public:
  ServingEngine(std::vector<SamoyedsDecoderLayerWeights> layers, const EngineConfig& config);

  int64_t hidden() const { return hidden_; }
  const EngineConfig& config() const { return config_; }

  // Validates and opens a session; the returned handle is !ok() (and a
  // rejection is recorded) on a malformed request, or !ok() with no state
  // change on a duplicate id. `on_rows`, when set, is invoked inside Step()
  // each time rows finalize for this session; rows it receives count as
  // delivered (the polling cursor advances past them). Not thread-safe:
  // call from the engine thread only.
  SessionHandle Submit(Request request, OnRowsCallback on_rows = nullptr);

  // Runs one iteration. Returns false when there was nothing to do and
  // nothing is pending (engine fully drained).
  bool Step();

  // Steps until drained; returns the number of iterations run. `max_steps`
  // bounds runaway loops (0 = no bound).
  int64_t RunUntilDrained(int64_t max_steps = 0);

  RequestStatus Status(int64_t id) const;
  // Result for a terminal (finished / rejected / cancelled) request;
  // nullptr otherwise.
  const RequestResult* Result(int64_t id) const;

  // Streaming cursor (see SessionHandle::NewRows): rows of session `id` that
  // finalized since the last delivery. Works while the session runs and
  // after it finishes; an unknown id yields an empty matrix.
  MatrixF NewRows(int64_t id);
  int64_t AvailableRows(int64_t id) const;
  int64_t DeliveredRows(int64_t id) const;

  // Terminates session `id` wherever it is in its lifecycle: drops it from
  // the ingress queue or scheduler backlog, or — when resident — frees its
  // KV pages (the allocator's free list returns to its pre-submit state) and
  // retires it with the rows produced so far. Records a kCancelled terminal
  // status. False when `id` is unknown or already terminal.
  bool Cancel(int64_t id);

  // Cancel with a distinguished outcome: kUnknownId when `id` was never
  // submitted to this engine (the id is simply not a session), versus
  // kAlreadyTerminal when the session exists but already finished, was
  // rejected, shed, timed out, or cancelled. Cancel(id) above is exactly
  // TryCancel(id) == kCancelled.
  CancelOutcome TryCancel(int64_t id);

  int64_t current_step() const { return step_; }
  int64_t resident_sequences() const { return static_cast<int64_t>(running_.size()); }
  int64_t queued() const { return queue_.size() + scheduler_.pending(); }

  const PagedKvCache& kv_cache() const { return cache_; }
  // nullptr when prefix sharing is off (or suppressed by expert-choice).
  const PrefixCache* prefix_cache() const { return prefix_cache_.get(); }
  const HostSwapTier& swap_tier() const { return swap_tier_; }
  // Swap preemption actually in effect (config.swap gated on preempt, a
  // bounded page pool, and a modeled host link).
  bool swap_enabled() const { return swap_enabled_; }
  const ExpertShardPlan& shard_plan() const { return shard_plan_; }
  const SimCluster& cluster() const { return cluster_; }
  const EngineMetrics& metrics() const { return metrics_; }
  const FaultInjector& fault_injector() const { return injector_; }
  // Physical shard ids still alive, ascending. shard_plan() is a plan over
  // live_shards().size() *logical* shards; logical shard s executes on
  // physical device live_shards()[s].
  const std::vector<int>& live_shards() const { return live_shards_; }
  // Kills physical shard `shard` and re-places its experts onto the
  // survivors (LPT over observed expert loads; see FailoverPlan). The fault
  // injector's shard-die point routes here; tests may call it directly.
  // False (no state change) for an unknown/already-dead shard or when it is
  // the last one standing. Outputs stay bit-identical across failover.
  bool FailShard(int shard);
  int64_t shard_failovers() const { return shard_failovers_; }
  int64_t watchdog_trips() const { return watchdog_trips_; }
  int64_t fault_retries() const { return fault_retries_total_; }
  // Distinct batch shapes the autotuner has resolved (0 with autotune off).
  int64_t autotune_cache_size() const {
    std::lock_guard<std::mutex> lock(autotune_mu_);
    return static_cast<int64_t>(autotune_cache_.size());
  }
  // Summarized metrics with the engine-known provenance fields (shards,
  // placement, routing, policy, threads, budgets) filled in; the CLI layers
  // the workload-level fields (model, trace, seed) on top before export.
  ServingReport Report() const;

 private:
  struct Sequence {
    Request request;
    int64_t consumed = 0;   // input rows consumed so far
    int64_t admit_seq = 0;  // engine-wide admission counter; larger = younger
    std::vector<float> out_rows;  // produced output rows, row-major
    // Consecutive transient KV-allocation failures absorbed without progress;
    // reset on a successful extend, escalated to Preempt past the retry limit.
    int fault_retries = 0;
  };

  // Per-session delivery state. Lives outside Sequence because it must
  // survive preemption: a preemptee's recompute re-produces bit-identical
  // rows, and rows already streamed to the caller are never re-delivered.
  struct SessionState {
    OnRowsCallback on_rows;  // empty = polling only
    int64_t delivered = 0;   // output rows handed to the caller so far
    // Delivered rows stashed at preemption (row-major): Preempt discards the
    // Sequence's partial outputs for recompute, but rows already streamed
    // are part of the client-visible record — if the session is cancelled
    // before the recompute catches back up, the terminal result still
    // materializes them. Cleared when the session finishes.
    std::vector<float> retained;
    // Liveness-watchdog bookkeeping: the last step at which this session's
    // progress mark changed, the mark itself, and whether the watchdog has
    // already fired for the current stall episode (it re-arms on progress).
    int64_t last_progress_step = 0;
    int64_t last_progress_mark = -1;
    bool watchdog_tripped = false;
  };

  // Snapshot for admission; `growth_pages` is what this iteration's planned
  // rows are about to claim (already guaranteed by the preemption pass).
  ResidentSnapshot Resident(int64_t growth_pages) const;
  // Rows each resident (by running_ index) contributes this iteration: one
  // decode row per decode-phase sequence, then prompt chunks for mid-prefill
  // sequences out of the leftover token budget (possibly 0 — the sequence
  // sits the iteration out). Chunking off degenerates to the legacy
  // one-decode-row-or-whole-prompt plan.
  std::vector<int64_t> PlanResidentRows() const;
  // Pages the planned rows would claim across all residents.
  int64_t PlannedGrowthPages(const std::vector<int64_t>& plan) const;
  // Evicts `id` and requeues it at the head of the scheduler queue. With
  // swap enabled (and host-tier room) its KV rows and partial outputs move
  // to the host tier for bit-exact restoration at readmission; otherwise its
  // pages are donated to the prefix cache (when on) and the request recomputes
  // from row 0.
  void Preempt(int64_t id);
  // Admission discount for a candidate: a swapped victim's restorable
  // progress, or the prefix-cache match for its prompt (see AdmitHint).
  AdmitHint AdmitHintFor(const Request& r) const;
  // Evicts cold prefix-cache entries until `pages` are free (or nothing
  // reclaimable is left). No-op with an unbounded pool or no prefix cache.
  void ReclaimFor(int64_t pages);
  // Terminal bookkeeping for a sequence that consumed its full lifetime:
  // donates its pages to the prefix cache, materializes the result, frees
  // the page table and fires the terminal stream delta.
  void RetireFinished(int64_t id);
  // Modeled one-way host-link transfer time for `bytes` (0 without a link).
  double SwapTransferMs(int64_t bytes) const;
  // Rows finalized for session `id` so far (running: produced rows;
  // terminal: the materialized result).
  int64_t ProducedRows(int64_t id) const;
  // Copies the finalized-but-undelivered rows out and advances the cursor
  // (the shared delivery path under NewRows and the OnRows callbacks).
  MatrixF DrainRows(int64_t id, SessionState& session);
  // Fires the session's OnRows callback with every finalized-but-undelivered
  // row (no-op without a callback); `finished` tags the terminal delta.
  void StreamToCallback(int64_t id, bool finished);

  // One forward pass's analytic-accounting state. A value per concurrent
  // forward (the overlap path runs a decode and a prefill sub-batch on two
  // threads) instead of engine members, so the two passes never race; the
  // step folds them into the serial per-shard totals afterwards.
  struct StepAccounting {
    std::vector<double> shard_ms;     // per logical shard, this pass
    std::vector<int64_t> shard_tokens;
    double alltoall_ms = 0.0;
    double account_ms = 0.0;  // host time the accounting itself consumed
    TrafficReport traffic;
    AllToAllScratch a2a_scratch;
    // Persistent forward scratch (steady-state passes stay allocation-quiet).
    ParallelMoeWorkspace pool_ws;  // pool-executed passes
    MoeWorkspace inline_ws;        // inline (helper-thread) passes
    MatrixF moe_out;

    void Reset(int num_shards) {
      shard_ms.assign(static_cast<size_t>(num_shards), 0.0);
      shard_tokens.assign(static_cast<size_t>(num_shards), 0);
      alltoall_ms = 0.0;
      account_ms = 0.0;
      traffic = TrafficReport{};
    }
  };

  // Forwards the assembled batch through all layers; returns final hidden
  // rows. `inline_exec` keeps every stage (attention slices, expert SSMMs)
  // on the calling thread — the overlap path's prefill pass, which must not
  // touch the expert pool while the decode pass owns it. Analytic estimates
  // accumulate into `acct`.
  MatrixF ForwardBatch(const AssembledBatch& batch, StepAccounting& acct, bool inline_exec);
  // Resolves (and caches) the tuned SSMM tile config for one layer's expert
  // shape under this plan's batch shape; records simulated default-vs-tuned
  // time in the metrics and returns the config the analytic estimate runs
  // with (SsmmConfig::Default() when autotuning is off).
  SsmmConfig ResolveTileConfig(const SamoyedsMoeLayerWeights& moe, const RoutingPlan& plan);
  // Expert->shard map for this engine's layers under config_.placement.
  ExpertShardPlan BuildShardPlan() const;
  // Folds one routed layer into `acct`: each expert's three SSMM projections
  // charged to its shard, shared experts data-parallel, plus the layer's
  // cross-shard all-to-all.
  void AccountMoeLayer(const SamoyedsMoeLayerWeights& moe, const RoutingPlan& plan,
                       const SsmmConfig& tile_cfg, StepAccounting& acct);
  // Decode-phase residents right now — the count PlanResidentRows will plan
  // one decode row for, and the ResidentSnapshot::decode_rows the scheduler's
  // decode-priority chunk sizing keys off.
  int64_t DecodeResidentRows() const;
  // The session's single terminal transition: asserts `id` is not already
  // terminal, sets status + reason, runs the terminal metrics dispatch for
  // kCancelled / kTimedOut / kShedded, and returns the result record for the
  // caller to materialize outputs into. Every terminal path funnels here.
  RequestResult& Finalize(int64_t id, RequestStatus status, std::string reason);
  // Tears a live session down wherever it is (ingress queue, scheduler
  // backlog, swapped out, or resident) and finalizes it with `status` —
  // the shared body behind Cancel (kCancelled), the deadline sweep
  // (kTimedOut) and overload shedding (kShedded). False when `id` is
  // unknown or already terminal.
  bool Terminate(int64_t id, RequestStatus status, std::string reason);
  // Expires every live session whose deadline_steps elapsed (arrival_step +
  // deadline_steps <= current step), wherever it sits.
  void SweepDeadlines();
  // Trips the watchdog (once per stall episode) for any live session whose
  // progress mark has not moved for config_.watchdog_steps steps.
  void WatchdogSweep();
  // Monotone per-session progress value: admission and every consumed row
  // advance it; a queued/evicted session holds at 0 (so backlog starvation
  // is visible to the watchdog, by design).
  int64_t ProgressMark(int64_t id) const;
  // Charges one exponential-backoff retry (base config_.fault_backoff_ms,
  // doubling per consecutive attempt) to the fault counters.
  void ChargeRetry(int attempt);

  const std::vector<SamoyedsDecoderLayerWeights> layers_;
  const EngineConfig config_;
  const int64_t hidden_;

  RequestQueue queue_;
  Scheduler scheduler_;
  PagedKvCache cache_;
  HostSwapTier swap_tier_;
  // Radix prefix cache over the allocator's pages; null when disabled.
  std::unique_ptr<PrefixCache> prefix_cache_;
  SimCluster cluster_;
  ExpertShardPlan shard_plan_;
  ExpertPool pool_;
  EngineMetrics metrics_;
  // Per-pass analytic-estimate accumulators + forward scratch (see
  // StepAccounting). acct_ serves every pool-executed pass (the whole batch
  // serially, or the decode sub-batch under overlap); prefill_acct_ serves
  // the overlap path's inline prefill pass on the helper thread. Both reset
  // at pass entry; Step() folds them into the serial per-shard totals —
  // account_ms is host time spent on the accounting itself, deducted from
  // the measured forward wall-clock so analytic bookkeeping never
  // contaminates the throughput metrics.
  StepAccounting acct_;
  StepAccounting prefill_acct_;
  // Tuned SSMM config per (expert rows, expert cols, batch rows, max tokens
  // per expert, kernel backend) — the expert shape participates so
  // heterogeneous layers never share entries, and the backend participates
  // because lane padding gives each backend its own tile ranking. Guarded by
  // autotune_mu_: under overlap the decode and prefill passes resolve tile
  // configs concurrently.
  std::map<std::array<int64_t, 5>, AutotuneResult> autotune_cache_;
  mutable std::mutex autotune_mu_;
  // The backend actually installed (kAuto resolved, fallbacks applied).
  KernelBackend effective_backend_ = KernelBackend::kScalar;

  // A swapped-out victim's host-side shadow: the rows it had produced and
  // how many input rows those cover. Restored (and erased) at readmission;
  // dropped exactly once if the session is cancelled while evicted.
  struct SwappedSeq {
    std::vector<float> out_rows;
    int64_t consumed = 0;
  };
  std::map<int64_t, SwappedSeq> swapped_;
  bool swap_enabled_ = false;
  // Step-scoped accumulators for StepMetrics; zeroed after each OnStep (not
  // at Step entry, so activity in an idle-fast-forward step folds into the
  // next recorded one instead of vanishing).
  int64_t step_prefix_hit_tokens_ = 0;
  double step_swap_out_bytes_ = 0.0;
  double step_swap_in_bytes_ = 0.0;
  double step_swap_ms_ = 0.0;
  int64_t last_cow_splits_ = 0;  // cache_.cow_splits() at the last OnStep

  // Deterministic fault injection (probed only from the engine thread, so a
  // schedule + seed replays bit-exactly) and the hardening counters Report()
  // exports.
  FaultInjector injector_;
  // Physical device ids still serving, ascending; shrinks on FailShard.
  // shard_plan_ always spans exactly live_shards_.size() logical shards.
  std::vector<int> live_shards_;
  int64_t fault_retries_total_ = 0;
  double fault_backoff_ms_total_ = 0.0;
  int64_t shard_failovers_ = 0;
  int64_t watchdog_trips_ = 0;
  // Logical shard whose modeled step time is doubled for the current step
  // (a shard-stall fault); -1 when none. Cleared after each forward.
  int stalled_shard_ = -1;
  // Physical-indexed scatter buffer for OnShardTokens: step_shard_tokens_ is
  // logical (compacted after failover), but the per-shard metrics tracks
  // keep physical device identity.
  std::vector<int64_t> physical_shard_tokens_;

  int64_t step_ = 0;
  int64_t admit_counter_ = 0;     // total admissions ever (eviction ordering)
  std::set<int64_t> known_ids_;   // every id ever submitted (duplicate guard)
  std::vector<int64_t> running_;  // resident sequence ids, admission order
  std::map<int64_t, Sequence> sequences_;
  std::map<int64_t, SessionState> sessions_;  // accepted ids, incl. terminal
  std::map<int64_t, RequestResult> results_;
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_ENGINE_H_
