// Continuous-batching serving engine over the Samoyeds decoder path.
//
// One Step() is one iteration of Orca-style iteration-level scheduling:
//
//   1. Drain arrived requests from the ingress RequestQueue into the
//      Scheduler.
//   2. Under page pressure (paged KV cache + preemption enabled), evict the
//      lowest-priority / youngest resident sequences until this iteration's
//      decode rows can get pages; evictees free their pages and are requeued
//      for recompute on readmission.
//   3. The Scheduler admits new sequences under the token budget and either
//      resident-token or KV-page accounting.
//   4. Assemble one batch: one decode row per resident sequence plus the
//      full prompt of each newly admitted sequence (prefill), and extend each
//      sequence's KV page table to cover the new rows.
//   5. Forward the batch through the decoder stack. Attention runs
//      per-sequence against the paged per-layer cache of that sequence's
//      normed prefix rows (causal, so cached rows never change), gathered
//      through its page table; the MoE sub-block routes the *whole* batch in
//      one RoutingPlan and executes experts on the multi-threaded ExpertPool.
//   6. Split outputs back per sequence, retire finished ones (freeing pages).
//
// The incremental path computes exactly the rows a full-sequence
// DecoderStackForwardSamoyeds would: causality guarantees earlier positions'
// hidden states never change, so caching them is lossless — and a preempted
// sequence recomputes from row 0, reproducing the same rows bit-for-bit.
// Tests compare against DecoderStackForwardReference at bf16 tolerance.

#ifndef SAMOYEDS_SRC_SERVING_ENGINE_H_
#define SAMOYEDS_SRC_SERVING_ENGINE_H_

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/autotune.h"
#include "src/moe/decoder_layer.h"
#include "src/serving/batch_assembler.h"
#include "src/serving/expert_pool.h"
#include "src/serving/kv_cache.h"
#include "src/serving/metrics.h"
#include "src/serving/request.h"
#include "src/serving/request_queue.h"
#include "src/serving/scheduler.h"
#include "src/serving/shard_plan.h"

namespace samoyeds {
namespace serving {

// Which router the engine drives each layer's MoE sub-block with. Top-k is
// the default (tokens pick experts; per-row outputs are independent of
// batch composition, which is what the engine's incremental-equals-full
// property and preemption recompute rely on). Expert-choice inverts the
// selection (experts pick tokens, perfectly balanced per layer) — note its
// outputs legitimately depend on batch composition, so it trades the
// full-sequence-reference equivalence for load balance.
enum class RoutingAlgo {
  kTopK,
  kExpertChoice,
};

const char* RoutingAlgoName(RoutingAlgo r);

struct EngineConfig {
  int heads = 4;
  int top_k = 2;
  Activation activation = Activation::kSilu;
  int threads = 4;  // expert pool size; <= 1 runs experts inline
  // Resolve the SSMM tile configuration per batch shape via AutotuneSsmm,
  // memoized per (batch rows, max tokens per expert) — the ROADMAP's
  // "autotuned serving". Purely an analytic-model resolution: functional
  // outputs are unchanged (asserted by ServingTest.AutotuneDoesNotChangeOutputs);
  // the resolved config also feeds the per-step analytic wall-clock estimate.
  bool autotune = false;
  RoutingAlgo routing = RoutingAlgo::kTopK;
  // Expert-parallel sharding: experts partition across `shards` simulated
  // devices (per-shard expert-pool queues + per-shard analytic timing).
  // Outputs are bit-identical at any shard count.
  int shards = 1;
  ShardPlacement placement = ShardPlacement::kRoundRobin;
  // Interconnect overrides applied to every device of the simulated
  // cluster; link_bandwidth_gbps <= 0 and link_latency_us < 0 keep the
  // DeviceSpec defaults.
  double link_bandwidth_gbps = 0.0;
  double link_latency_us = -1.0;
  SchedulerConfig scheduler;
};

struct RequestResult {
  RequestStatus status = RequestStatus::kQueued;
  std::string reason;  // why a request was rejected; empty otherwise
  // One output row per consumed input position (total_tokens x hidden for a
  // finished request). Row prompt_len - 1 is the "first token" hidden state;
  // later rows are the decode outputs.
  MatrixF outputs;
};

class ServingEngine {
 public:
  ServingEngine(std::vector<SamoyedsDecoderLayerWeights> layers, const EngineConfig& config);

  int64_t hidden() const { return hidden_; }
  const EngineConfig& config() const { return config_; }

  // Validates and enqueues; returns false (and records a rejection) on a
  // malformed request, or false with no state change on a duplicate id.
  // Not thread-safe: call from the engine thread only.
  bool Submit(Request request);

  // Runs one iteration. Returns false when there was nothing to do and
  // nothing is pending (engine fully drained).
  bool Step();

  // Steps until drained; returns the number of iterations run. `max_steps`
  // bounds runaway loops (0 = no bound).
  int64_t RunUntilDrained(int64_t max_steps = 0);

  RequestStatus Status(int64_t id) const;
  // Result for a finished or rejected request; nullptr otherwise.
  const RequestResult* Result(int64_t id) const;

  int64_t current_step() const { return step_; }
  int64_t resident_sequences() const { return static_cast<int64_t>(running_.size()); }
  int64_t queued() const { return queue_.size() + scheduler_.pending(); }

  const PagedKvCache& kv_cache() const { return cache_; }
  const ExpertShardPlan& shard_plan() const { return shard_plan_; }
  const SimCluster& cluster() const { return cluster_; }
  const EngineMetrics& metrics() const { return metrics_; }
  // Distinct batch shapes the autotuner has resolved (0 with autotune off).
  int64_t autotune_cache_size() const { return static_cast<int64_t>(autotune_cache_.size()); }
  ServingReport Report() const {
    return metrics_.Summarize(config_.scheduler.token_budget, config_.scheduler.max_pages);
  }

 private:
  struct Sequence {
    Request request;
    int64_t consumed = 0;   // input rows consumed so far
    int64_t admit_seq = 0;  // engine-wide admission counter; larger = younger
    std::vector<float> out_rows;  // produced output rows, row-major
  };

  // Snapshot for admission; `growth_pages` is what this iteration's decode
  // rows are about to claim (already guaranteed by the preemption pass).
  ResidentSnapshot Resident(int64_t growth_pages) const;
  // Pages needed for every resident to append one decode row this step.
  int64_t DecodeGrowthPages() const;
  // Evicts `id`: frees its pages, drops its partial outputs, and requeues the
  // request at the head of the scheduler queue for full recompute.
  void Preempt(int64_t id);
  // Forwards the assembled batch through all layers; returns final hidden rows.
  MatrixF ForwardBatch(const AssembledBatch& batch);
  // Resolves (and caches) the tuned SSMM tile config for one layer's expert
  // shape under this plan's batch shape; records simulated default-vs-tuned
  // time in the metrics and returns the config the analytic estimate runs
  // with (SsmmConfig::Default() when autotuning is off).
  SsmmConfig ResolveTileConfig(const SamoyedsMoeLayerWeights& moe, const RoutingPlan& plan);
  // Expert->shard map for this engine's layers under config_.placement.
  ExpertShardPlan BuildShardPlan() const;
  // Folds one routed layer into the step's analytic estimate: each expert's
  // three SSMM projections charged to its shard, shared experts
  // data-parallel, plus the layer's cross-shard all-to-all.
  void AccountMoeLayer(const SamoyedsMoeLayerWeights& moe, const RoutingPlan& plan,
                       const SsmmConfig& tile_cfg);

  const std::vector<SamoyedsDecoderLayerWeights> layers_;
  const EngineConfig config_;
  const int64_t hidden_;

  RequestQueue queue_;
  Scheduler scheduler_;
  PagedKvCache cache_;
  SimCluster cluster_;
  ExpertShardPlan shard_plan_;
  ExpertPool pool_;
  EngineMetrics metrics_;
  // Per-step analytic-estimate accumulators, reset at the top of each
  // forward (scratch members so steady-state steps stay allocation-quiet).
  // step_traffic_ aggregates the step's cross-shard all-to-all volumes as a
  // TrafficReport (AllToAllTraffic::AddTo across layers); step_account_ms_
  // is host time spent on the accounting itself, deducted from the measured
  // forward wall-clock so analytic bookkeeping never contaminates the
  // throughput metrics.
  std::vector<double> step_shard_ms_;
  std::vector<int64_t> step_shard_tokens_;
  double step_alltoall_ms_ = 0.0;
  double step_account_ms_ = 0.0;
  TrafficReport step_traffic_;
  AllToAllScratch a2a_scratch_;
  // Persistent forward scratch: steady-state Step() iterations reuse these
  // instead of allocating per call (see bench/micro_kernel_wallclock).
  ParallelMoeWorkspace moe_ws_;
  MatrixF moe_out_;
  // Tuned SSMM config per (expert rows, expert cols, batch rows, max tokens
  // per expert) — the expert shape participates so heterogeneous layers
  // never share entries.
  std::map<std::array<int64_t, 4>, AutotuneResult> autotune_cache_;

  int64_t step_ = 0;
  int64_t admit_counter_ = 0;     // total admissions ever (eviction ordering)
  std::set<int64_t> known_ids_;   // every id ever submitted (duplicate guard)
  std::vector<int64_t> running_;  // resident sequence ids, admission order
  std::map<int64_t, Sequence> sequences_;
  std::map<int64_t, RequestResult> results_;
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_ENGINE_H_
