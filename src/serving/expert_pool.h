// Multi-threaded expert execution pool.
//
// Independent experts in one MoE layer share no state: each reads its own
// Samoyeds-encoded weights and a disjoint SEL-selected slice of the
// activation matrix. ParallelMoeForwardSamoyeds exploits that by fanning the
// per-expert SamoyedsKernel::RunLinear pipelines out over a fixed worker
// pool, then folding the per-expert outputs back in a fixed expert order —
// so results are bit-identical regardless of thread count or completion
// order (see ServingTest.ThreadPoolDeterminism).

#ifndef SAMOYEDS_SRC_SERVING_EXPERT_POOL_H_
#define SAMOYEDS_SRC_SERVING_EXPERT_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/moe/moe_layer.h"

namespace samoyeds {
namespace serving {

class ExpertPool {
 public:
  // threads <= 1 runs every task inline on the caller (no workers spawned).
  explicit ExpertPool(int threads);
  ~ExpertPool();

  ExpertPool(const ExpertPool&) = delete;
  ExpertPool& operator=(const ExpertPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. Tasks must not Submit.
  void WaitIdle();

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  int64_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// MoeForwardSamoyeds with per-expert execution fanned out over `pool`.
// Bit-identical to the sequential MoeForwardSamoyeds.
MatrixF ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                   const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                   Activation act);

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_EXPERT_POOL_H_
