// Multi-threaded expert execution pool with tile-granular scheduling.
//
// Independent experts in one MoE layer share no state: each reads its own
// Samoyeds-encoded weights and a disjoint SEL-selected slice of the
// activation matrix. Within one expert, every *token* is independent too
// (output columns of the SSMM chain depend only on their own input column),
// so ParallelMoeForwardSamoyeds fans work out at tile granularity: a hot
// expert's token set splits into up to `threads` contiguous tiles, each a
// full gate/up/act/down pipeline over its slice, writing disjoint rows of
// the per-expert output. One skewed expert therefore no longer serializes
// the step behind a single worker. Per-expert outputs fold back on the
// submitting thread in fixed expert order, so results are bit-identical to
// the sequential MoeForwardSamoyeds regardless of thread count, tile split,
// or completion order (see ExpertPoolTilingTest).
//
// Each execution slot (worker threads 1..N, submitting thread 0) owns a
// persistent SsmmWorkspace, so steady-state forwards allocate nothing on
// the kernel path.

#ifndef SAMOYEDS_SRC_SERVING_EXPERT_POOL_H_
#define SAMOYEDS_SRC_SERVING_EXPERT_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/ssmm_workspace.h"
#include "src/moe/moe_layer.h"

namespace samoyeds {
namespace serving {

class ExpertPool {
 public:
  // threads <= 1 runs every task inline on the caller (no workers spawned).
  explicit ExpertPool(int threads);
  ~ExpertPool();

  ExpertPool(const ExpertPool&) = delete;
  ExpertPool& operator=(const ExpertPool&) = delete;

  // Runs `task` on a worker, or immediately on the caller in inline mode.
  // Templated so inline execution never pays the std::function type-erasure
  // allocation — the single-threaded engine hot path stays allocation-free.
  template <typename Fn>
  void Submit(Fn&& task) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace_back(std::forward<Fn>(task));
      ++in_flight_;
    }
    work_ready_.notify_one();
  }

  // Blocks until every submitted task has finished. Tasks must not Submit.
  void WaitIdle();

  int threads() const { return static_cast<int>(workers_.size()); }

  // Distinct execution slots: one per worker plus slot 0 for the submitting
  // thread (inline mode). Index per-slot workspaces with CurrentSlot().
  int slots() const { return static_cast<int>(workers_.size()) + 1; }

  // Slot of the calling thread: this pool's workers occupy 1..threads();
  // any other thread (inline execution, the engine thread) is slot 0.
  static int CurrentSlot();

  // Tasks ever submitted, including inline-mode ones — the regression hook
  // tile-scheduling tests assert on (e.g. a zero-token expert must submit
  // nothing).
  int64_t submitted_total() const { return submitted_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop(int slot);

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  int64_t in_flight_ = 0;
  bool stopping_ = false;
  std::atomic<int64_t> submitted_{0};
  std::vector<std::thread> workers_;
};

// Persistent scratch for ParallelMoeForwardSamoyeds: per-expert output
// buffers, per-tile selections, and one SsmmWorkspace per execution slot.
// Reused across calls; steady-state iterations at a fixed shape do not
// allocate.
struct ParallelMoeWorkspace {
  std::vector<MatrixF> expert_out;     // routed experts, tokens_e x hidden
  std::vector<MatrixF> shared_out;     // shared experts, tokens x hidden
  std::vector<Selection> tile_sel;     // one per in-flight tile
  std::vector<SsmmWorkspace> slot_ws;  // one per pool slot
};

// MoeForwardSamoyeds with tile-granular execution fanned out over `pool`.
// Bit-identical to the sequential MoeForwardSamoyeds at any thread count.
MatrixF ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                   const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                   Activation act);

// Zero-allocation variant writing into `out` (reshaped to tokens x hidden).
void ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                Activation act, ParallelMoeWorkspace& ws, MatrixF& out);

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_EXPERT_POOL_H_
