// Multi-threaded expert execution pool with per-shard work queues and
// tile-granular scheduling.
//
// Independent experts in one MoE layer share no state: each reads its own
// Samoyeds-encoded weights and a disjoint SEL-selected slice of the
// activation matrix. Within one expert, every *token* is independent too
// (output columns of the SSMM chain depend only on their own input column),
// so ParallelMoeForwardSamoyeds fans work out at tile granularity: a hot
// expert's token set splits into contiguous tiles, each a full
// gate/up/act/down pipeline over its slice, writing disjoint rows of the
// per-expert output. One skewed expert therefore no longer serializes the
// step behind a single worker.
//
// Expert-parallel sharding partitions the pool into per-shard work queues
// — one simulated device per shard. Workers are pinned to shards (worker w
// homes on shard w % shards; with fewer workers than shards, worker w
// serves every shard s with s % threads == w, so every queue always has a
// server), and a worker only ever executes tasks of the shards it serves:
// a simulated device never runs another device's experts, so host
// wall-clock shows shard imbalance the same way the analytic
// max-over-shards estimate does. A shard whose experts received no tokens
// gets no tasks at all.
//
// Per-expert outputs fold back on the submitting thread in ascending
// *global* expert order — a fixed order independent of shard placement,
// tile split, thread count, and completion timing — so results are
// bit-identical to the sequential MoeForwardSamoyeds at any shard/thread
// count (see ExpertPoolTilingTest and ShardedMoeForwardTest).
//
// Each execution slot (worker threads 1..N, submitting thread 0) owns a
// persistent SsmmWorkspace, so steady-state forwards allocate nothing on
// the kernel path. Workers are shard-pinned, so slots — and their
// workspaces — partition by shard exactly like device-local scratch would
// (threads < shards degrades gracefully: a worker serving several shards
// reuses one workspace across them).
//
// Observability: each worker registers a named trace lane at spawn
// ("shard2.worker3" when pinned to one shard), and — at --trace-detail=full
// — every tile executes inside an obs::ScopedSpan tagged with its expert
// id, so a Perfetto timeline shows per-shard worker occupancy, tile-level
// load balance, and the dispatch/barrier/fold phases of each MoE layer.
// Tracing emits into per-thread ring buffers and never synchronizes
// workers, so it cannot perturb completion order (outputs stay
// bit-identical with tracing on or off).

#ifndef SAMOYEDS_SRC_SERVING_EXPERT_POOL_H_
#define SAMOYEDS_SRC_SERVING_EXPERT_POOL_H_

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/ssmm_workspace.h"
#include "src/moe/moe_layer.h"
#include "src/serving/shard_plan.h"

namespace samoyeds {
namespace serving {

class ExpertPool {
 public:
  // threads <= 1 runs every task inline on the caller (no workers spawned,
  // any shard id executes immediately — the one-device degenerate case).
  // shards >= 1 partitions the queues as described above.
  explicit ExpertPool(int threads, int shards = 1);
  ~ExpertPool();

  ExpertPool(const ExpertPool&) = delete;
  ExpertPool& operator=(const ExpertPool&) = delete;

  // Runs `task` on a worker serving `shard`, or immediately on the caller
  // in inline mode. Templated so inline execution never pays the
  // std::function type-erasure allocation — the single-threaded engine hot
  // path stays allocation-free.
  template <typename Fn>
  void SubmitToShard(int shard, Fn&& task) {
    assert(shard >= 0 && shard < shards());
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (workers_.empty()) {
      ++shard_submitted_[static_cast<size_t>(shard)];
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++shard_submitted_[static_cast<size_t>(shard)];
      queues_[static_cast<size_t>(shard)].emplace_back(std::forward<Fn>(task));
      ++in_flight_;
    }
    // One wakeup, on the condition variable of the worker group serving this
    // shard. Workers in a group serve exactly the same shard set (see
    // GroupOf), so any woken waiter can take the task — no lost wakeups, no
    // thundering herd across unrelated shards.
    group_cvs_[static_cast<size_t>(GroupOf(shard))].notify_one();
  }

  // Shard-agnostic submission (queue 0) for work that is not expert-bound.
  template <typename Fn>
  void Submit(Fn&& task) {
    SubmitToShard(0, std::forward<Fn>(task));
  }

  // Blocks until every submitted task has finished. Tasks must not Submit.
  void WaitIdle();

  int threads() const { return static_cast<int>(workers_.size()); }
  int shards() const { return static_cast<int>(queues_.size()); }

  // Workers dedicated to `shard` (1 in inline mode; with threads < shards a
  // server shared between shards still counts as 1). This is the thread
  // complement tile splitting targets per shard.
  int ShardWorkers(int shard) const;

  // Distinct execution slots: one per worker plus slot 0 for the submitting
  // thread (inline mode). Index per-slot workspaces with CurrentSlot().
  int slots() const { return static_cast<int>(workers_.size()) + 1; }

  // Slot of the calling thread: this pool's workers occupy 1..threads();
  // any other thread (inline execution, the engine thread) is slot 0.
  static int CurrentSlot();

  // Tasks ever submitted, including inline-mode ones — the regression hook
  // tile-scheduling tests assert on (e.g. a zero-token expert must submit
  // nothing).
  int64_t submitted_total() const { return submitted_.load(std::memory_order_relaxed); }
  // Per-shard-queue task counts (read after WaitIdle, or from the
  // submitting thread in inline mode). A shard with no routed tokens must
  // stay at zero.
  int64_t submitted_to_shard(int shard) const;

 private:
  // True when worker `worker` serves `shard` under the pinning rule above.
  static bool Serves(int worker, int shard, int threads, int shards);
  // Wakeup group of a shard (and, symmetrically, of worker w via
  // w % num_groups): with min(threads, shards) groups, workers sharing a
  // group serve exactly the same shard set, making single-notify sound.
  int GroupOf(int shard) const {
    return shard % static_cast<int>(group_cvs_.size());
  }
  void WorkerLoop(int slot, std::vector<int> served);

  std::mutex mu_;
  // One condition variable per worker group (empty in inline mode).
  std::vector<std::condition_variable> group_cvs_;
  std::condition_variable idle_;
  std::vector<std::deque<std::function<void()>>> queues_;  // one per shard
  std::vector<int64_t> shard_submitted_;
  int64_t in_flight_ = 0;
  bool stopping_ = false;
  std::atomic<int64_t> submitted_{0};
  std::vector<std::thread> workers_;
};

// Persistent scratch for ParallelMoeForwardSamoyeds: per-expert output
// buffers, per-tile selections, and one SsmmWorkspace per execution slot.
// Reused across calls; steady-state iterations at a fixed shape do not
// allocate.
struct ParallelMoeWorkspace {
  std::vector<MatrixF> expert_out;     // routed experts, tokens_e x hidden
  std::vector<MatrixF> shared_out;     // shared experts, tokens x hidden
  std::vector<Selection> tile_sel;     // one per in-flight tile
  std::vector<SsmmWorkspace> slot_ws;  // one per pool slot
};

// MoeForwardSamoyeds with tile-granular execution fanned out over `pool`.
// Bit-identical to the sequential MoeForwardSamoyeds at any thread count.
MatrixF ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                   const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                   Activation act);

// Zero-allocation variant writing into `out` (reshaped to tokens x hidden).
void ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                Activation act, ParallelMoeWorkspace& ws, MatrixF& out);

// Expert-parallel sharded execution: each routed expert's tiles go to its
// placement shard's queue (tile split against that shard's worker
// complement); shared experts run data-parallel, each shard processing its
// home token range. The fold still walks experts in ascending global id —
// a fixed order independent of placement — so outputs are bit-identical to
// the unsharded overloads at any shard/thread count.
void ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                Activation act, const ExpertShardPlan& placement,
                                ParallelMoeWorkspace& ws, MatrixF& out);

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_EXPERT_POOL_H_
