#include "src/serving/trace.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "src/tensor/bf16.h"

namespace samoyeds {
namespace serving {

std::vector<TraceEntry> ParseTraceFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open trace file: " + path;
    return {};
  }
  std::vector<TraceEntry> entries;
  std::set<int64_t> pinned_ids;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank / comment-only line
    }
    std::istringstream fields(line);
    TraceEntry e;
    std::string trailing;
    bool ok = static_cast<bool>(fields >> e.arrival_step >> e.prompt_len >> e.max_new_tokens);
    if (ok && !(fields >> e.priority)) {
      fields.clear();  // fourth column (priority) is optional
    } else if (ok && !(fields >> e.id)) {
      fields.clear();  // fifth column (pinned id) is optional too
    }
    if (!ok || (fields >> trailing) || e.arrival_step < 0 || e.prompt_len < 1 ||
        e.max_new_tokens < 0 || (e.id < 0 && e.id != -1)) {
      *error = path + ":" + std::to_string(line_no) +
               ": expected '<arrival_step> <prompt_len> <max_new_tokens> [priority [id]]'";
      return {};
    }
    if (e.id >= 0 && !pinned_ids.insert(e.id).second) {
      *error = path + ":" + std::to_string(line_no) + ": duplicate request id " +
               std::to_string(e.id);
      return {};
    }
    entries.push_back(e);
  }
  if (entries.empty()) {
    *error = "trace file has no requests: " + path;
  }
  return entries;
}

std::vector<int64_t> AssignTraceIds(const std::vector<TraceEntry>& entries) {
  std::set<int64_t> pinned;
  for (const TraceEntry& e : entries) {
    if (e.id >= 0) {
      pinned.insert(e.id);
    }
  }
  std::vector<int64_t> ids;
  ids.reserve(entries.size());
  int64_t next = 0;
  for (const TraceEntry& e : entries) {
    if (e.id >= 0) {
      ids.push_back(e.id);
      continue;
    }
    while (pinned.count(next) != 0) {
      ++next;
    }
    ids.push_back(next++);
  }
  return ids;
}

std::vector<TraceEntry> SyntheticTrace(Rng& rng, int count, double arrivals_per_step,
                                       int64_t prompt_lo, int64_t prompt_hi, int64_t decode_lo,
                                       int64_t decode_hi) {
  assert(prompt_lo >= 1 && prompt_hi >= prompt_lo);
  assert(decode_lo >= 0 && decode_hi >= decode_lo);
  std::vector<TraceEntry> entries;
  entries.reserve(static_cast<size_t>(count));
  int64_t step = 0;
  for (int i = 0; i < count; ++i) {
    TraceEntry e;
    e.arrival_step = step;
    e.prompt_len = prompt_lo + rng.NextIndex(prompt_hi - prompt_lo + 1);
    e.max_new_tokens = decode_lo + rng.NextIndex(decode_hi - decode_lo + 1);
    entries.push_back(e);
    if (arrivals_per_step > 0.0) {
      // Geometric inter-arrival with mean 1/rate (discrete Poisson process).
      const double u = std::max(rng.NextDouble(), 1e-12);
      step += static_cast<int64_t>(std::floor(-std::log(u) / arrivals_per_step));
    }
  }
  return entries;
}

Request MakeRequest(Rng& rng, int64_t id, const TraceEntry& entry, int64_t hidden) {
  Request r;
  r.id = id;
  r.arrival_step = entry.arrival_step;
  r.prompt_len = entry.prompt_len;
  r.max_new_tokens = entry.max_new_tokens;
  r.priority = entry.priority;
  r.inputs = rng.GaussianMatrix(entry.prompt_len + entry.max_new_tokens, hidden, 0.5f);
  RoundMatrixToBf16(r.inputs);
  return r;
}

}  // namespace serving
}  // namespace samoyeds
