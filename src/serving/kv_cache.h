// Paged KV-cache allocator for the serving engine (vLLM-style).
//
// The engine caches, per layer, each resident sequence's attention-normed
// prefix rows (the functional stand-in for K/V). Instead of one monolithic
// contiguous buffer per sequence, rows live in fixed-size pages of
// `page_tokens` token slots drawn from a shared pool:
//
//   * KvPageAllocator — pure page accounting: a free list, per-sequence page
//     tables, per-page refcounts, all-or-nothing Extend, and fragmentation
//     stats. This is what admission control and the preemption policy reason
//     about.
//   * PagedKvCache — the allocator plus the backing storage: one float arena
//     per layer, indexed by (page * page_tokens + offset) * hidden. A
//     sequence's page table is shared across layers; each layer stores its
//     rows at the same slots in its own arena.
//   * HostSwapTier — a simulated host-memory tier for swap-style preemption:
//     a victim's cached rows move out wholesale and are restored bit-exactly
//     on re-admission instead of being recomputed.
//
// Pages are refcounted so several holders (sequences via CreateMapped, the
// prefix cache's radix nodes via Retain) can map the same physical page.
// Writes only ever append at a sequence's tail, so at most the first page of
// a write range can be shared; PagedKvCache::Extend copy-on-write-splits that
// page before the append lands.
//
// `total_pages == 0` runs the pool unbounded (pages are minted on demand) —
// the monolithic-admission compatibility mode where the scheduler still
// accounts in resident tokens. A bounded pool gives admission control and
// eviction a hard budget to pack against.
//
// Thread-safety: Extend / Free / Reset / CreateMapped mutate shared state
// (including arena growth) and must run on the engine thread only. Row /
// GatherRows touch only the target sequence's slots, so concurrent calls for
// *distinct* sequences (the engine's per-sequence attention tasks) are safe.

#ifndef SAMOYEDS_SRC_SERVING_KV_CACHE_H_
#define SAMOYEDS_SRC_SERVING_KV_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace samoyeds {
namespace serving {

struct KvCacheConfig {
  int64_t page_tokens = 16;  // token slots per page (>= 1)
  int64_t total_pages = 0;   // pool size; 0 = unbounded (minted on demand)
};

// ceil(tokens / page_tokens); 0 tokens need 0 pages.
int64_t PagesForTokens(int64_t tokens, int64_t page_tokens);

class KvPageAllocator {
 public:
  explicit KvPageAllocator(const KvCacheConfig& config);

  // Grows `seq_id` (created on first call) by `tokens` slots, acquiring pages
  // from the free list as needed. All-or-nothing: on failure (bounded pool
  // exhausted) no state changes and false is returned.
  bool Extend(int64_t seq_id, int64_t tokens);

  // Pages a hypothetical Extend(seq_id, tokens) would acquire.
  int64_t PagesToExtend(int64_t seq_id, int64_t tokens) const;

  // Pages a write of `tokens` more slots really needs: PagesToExtend plus one
  // when the sequence's partially filled tail page is shared (refcount > 1)
  // and must be copy-on-write split before the append.
  int64_t PagesToPrepareWrite(int64_t seq_id, int64_t tokens) const;

  // Creates `seq_id` mapping `pages` (existing, live pages — e.g. a matched
  // prefix-cache path), retaining each. pages.size() must equal
  // PagesForTokens(tokens). Returns false (no state change) if the sequence
  // already exists.
  bool CreateMapped(int64_t seq_id, const std::vector<int32_t>& pages, int64_t tokens);

  // Replaces the shared page at `page_index` of `seq_id`'s table with a fresh
  // private copy slot (refcount 1), releasing the sequence's reference on the
  // old page. Requires refcount(old) > 1. Returns the new page id, or -1 when
  // a bounded pool has no free page (no state change). The caller copies the
  // payload.
  int32_t CowSplit(int64_t seq_id, size_t page_index);

  // Drops one reference per page of the sequence; pages reaching refcount 0
  // return to the free list (LIFO, so page ids are reused deterministically).
  // Returns false for unknown / already-freed ids (idempotent, no state
  // change), true when the sequence existed.
  bool Free(int64_t seq_id);

  // Extra references held by non-sequence owners (the prefix cache's radix
  // nodes). Retain/Release on a page id that is not live is a bug.
  void Retain(int32_t page);
  void Release(int32_t page);
  int32_t refcount(int32_t page) const;

  // Drops every sequence and returns the allocator to its initial state.
  void Reset();

  bool Has(int64_t seq_id) const { return seqs_.count(seq_id) != 0; }
  int64_t SequenceTokens(int64_t seq_id) const;
  const std::vector<int32_t>& SequencePages(int64_t seq_id) const;
  // Global slot index of a sequence's token: page * page_tokens + offset.
  int64_t SlotOf(int64_t seq_id, int64_t token) const;

  int64_t page_tokens() const { return config_.page_tokens; }
  bool bounded() const { return config_.total_pages > 0; }
  // Bounded: the configured pool size. Unbounded: pages minted so far, so the
  // invariant used_pages() + free_pages() == total_pages() holds either way.
  int64_t total_pages() const { return bounded() ? config_.total_pages : minted_; }
  // Pages ever drawn from the pool (ids 0..minted-1): what backing storage
  // actually has to cover, which can be far below a large configured bound.
  int64_t minted_pages() const { return minted_; }
  int64_t used_pages() const { return used_pages_; }
  int64_t free_pages() const { return total_pages() - used_pages_; }
  // Pages currently held by more than one reference (prefix sharing).
  int64_t shared_pages() const { return shared_pages_; }
  int64_t num_sequences() const { return static_cast<int64_t>(seqs_.size()); }
  int64_t cached_tokens() const { return cached_tokens_; }
  // Allocated-but-unused token slots (internal fragmentation across all
  // resident sequences' tail pages). Sharing lets cached tokens exceed the
  // used-page capacity, so the waste is clamped at zero.
  int64_t FragmentationWaste() const {
    return std::max<int64_t>(0, used_pages_ * config_.page_tokens - cached_tokens_);
  }

 private:
  struct SequenceState {
    std::vector<int32_t> pages;
    int64_t tokens = 0;
  };

  int32_t AcquirePage();  // free list first, else mint (caller checked bounds)
  void ReleasePage(int32_t page);

  KvCacheConfig config_;
  std::vector<int32_t> free_list_;
  std::vector<int32_t> ref_;  // per minted page id
  int64_t minted_ = 0;  // pages ever drawn from the pool (ids 0..minted_-1)
  int64_t used_pages_ = 0;
  int64_t shared_pages_ = 0;  // pages with refcount >= 2
  int64_t cached_tokens_ = 0;
  std::map<int64_t, SequenceState> seqs_;
};

class PagedKvCache {
 public:
  PagedKvCache(const KvCacheConfig& config, int64_t layers, int64_t hidden);

  // Accounting mutations; see KvPageAllocator. Extend also grows the per-layer
  // arenas to cover newly minted pages and copy-on-write splits a shared tail
  // page before the append (engine thread only). All-or-nothing including the
  // COW page.
  bool Extend(int64_t seq_id, int64_t tokens);
  bool CreateMapped(int64_t seq_id, const std::vector<int32_t>& pages, int64_t tokens) {
    return alloc_.CreateMapped(seq_id, pages, tokens);
  }
  bool Free(int64_t seq_id) { return alloc_.Free(seq_id); }
  void Reset() { alloc_.Reset(); }

  // Pointer to the hidden-sized row of `token` in `layer`'s arena.
  float* Row(int64_t seq_id, int64_t layer, int64_t token);
  const float* Row(int64_t seq_id, int64_t layer, int64_t token) const;

  // Copies rows [0, count) of `layer` into `dst` (count x hidden, row-major) —
  // the page-table gather that feeds attention.
  void GatherRows(int64_t seq_id, int64_t layer, int64_t count, float* dst) const;
  // Inverse of GatherRows: writes `src` (count x hidden) into rows [0, count)
  // of `layer` — the swap-in restore path. The caller Extended the sequence.
  void ScatterRows(int64_t seq_id, int64_t layer, int64_t count, const float* src);

  const KvPageAllocator& allocator() const { return alloc_; }
  KvPageAllocator& mutable_allocator() { return alloc_; }
  int64_t layers() const { return layers_; }
  int64_t hidden() const { return hidden_; }
  // Copy-on-write page splits performed so far (monotone).
  int64_t cow_splits() const { return cow_splits_; }

 private:
  void GrowArena();

  KvPageAllocator alloc_;
  int64_t layers_ = 0;
  int64_t hidden_ = 0;
  int64_t cow_splits_ = 0;
  std::vector<std::vector<float>> arena_;  // per layer: slots * hidden floats
};

// Simulated host-memory tier backing swap-style preemption. SwapOut snapshots
// a victim's cached rows (all layers, bit-exact); SwapIn restores them into
// freshly allocated device pages. Capacity is counted in pages of the same
// `page_tokens` granularity as the device pool; `max_host_pages == 0` leaves
// the tier unbounded. The engine charges transfer time against the device's
// host link from the bytes() actually moved.
//
// Every swapped (layer, page)-sized span carries an FNV-1a checksum computed
// at SwapOut. SwapIn re-verifies before restoring: a mismatch (bit rot in
// host memory, a torn transfer) restores nothing, drops the entry, and
// returns false so the engine can fall back to recompute instead of serving
// corrupt KV state.
class HostSwapTier {
 public:
  HostSwapTier(int64_t layers, int64_t hidden, int64_t page_tokens,
               int64_t max_host_pages);

  // Whether a swap-out of `tokens` more slots fits the host budget.
  bool CanHold(int64_t tokens) const;

  // Copies rows [0, tokens) of every layer out of the cache, checksumming
  // each page-sized span. The caller still owns (and typically frees) the
  // device pages afterwards.
  void SwapOut(int64_t seq_id, const PagedKvCache& cache, int64_t tokens);

  // Restores the stashed rows into `cache` (the caller Extended `seq_id` to
  // at least Tokens(seq_id) slots first) and drops the host copy. Returns
  // false — restoring nothing, entry dropped, corruption counted — when any
  // span fails its checksum; the sequence must then be recomputed.
  bool SwapIn(int64_t seq_id, PagedKvCache& cache);

  // Discards the stashed entry (cancel of a swapped-out victim). Returns
  // false when no entry exists (idempotent).
  bool Drop(int64_t seq_id);

  // Fault injection: flips one bit of the stashed payload (position chosen
  // deterministically from `salt`) *without* updating the checksums — the
  // next SwapIn must detect it. False when no entry exists.
  bool CorruptEntry(int64_t seq_id, uint64_t salt);

  // Checksum mismatches detected across all SwapIn calls (monotone).
  int64_t corruptions_detected() const { return corruptions_detected_; }

  bool Has(int64_t seq_id) const { return entries_.count(seq_id) != 0; }
  int64_t Tokens(int64_t seq_id) const;
  // Bytes one transfer of `tokens` rows moves across the host link.
  int64_t BytesForTokens(int64_t tokens) const {
    return tokens * hidden_ * layers_ * static_cast<int64_t>(sizeof(float));
  }
  int64_t used_pages() const { return used_pages_; }
  int64_t max_pages() const { return max_pages_; }
  int64_t entries() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    int64_t tokens = 0;
    std::vector<std::vector<float>> rows;  // per layer: tokens * hidden
    // checksums[layer][page]: FNV-1a over that page-sized span of rows.
    std::vector<std::vector<uint64_t>> checksums;
  };

  int64_t layers_ = 0;
  int64_t hidden_ = 0;
  int64_t page_tokens_ = 16;
  int64_t max_pages_ = 0;  // 0 = unbounded
  int64_t used_pages_ = 0;
  int64_t corruptions_detected_ = 0;
  std::map<int64_t, Entry> entries_;
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_KV_CACHE_H_
