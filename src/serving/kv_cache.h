// Paged KV-cache allocator for the serving engine (vLLM-style).
//
// The engine caches, per layer, each resident sequence's attention-normed
// prefix rows (the functional stand-in for K/V). Instead of one monolithic
// contiguous buffer per sequence, rows live in fixed-size pages of
// `page_tokens` token slots drawn from a shared pool:
//
//   * KvPageAllocator — pure page accounting: a free list, per-sequence page
//     tables, all-or-nothing Extend, and fragmentation stats. This is what
//     admission control and the preemption policy reason about.
//   * PagedKvCache — the allocator plus the backing storage: one float arena
//     per layer, indexed by (page * page_tokens + offset) * hidden. A
//     sequence's page table is shared across layers; each layer stores its
//     rows at the same slots in its own arena.
//
// `total_pages == 0` runs the pool unbounded (pages are minted on demand) —
// the monolithic-admission compatibility mode where the scheduler still
// accounts in resident tokens. A bounded pool gives admission control and
// eviction a hard budget to pack against.
//
// Thread-safety: Extend / Free / Reset mutate shared state (including arena
// growth) and must run on the engine thread only. Row / GatherRows touch only
// the target sequence's slots, so concurrent calls for *distinct* sequences
// (the engine's per-sequence attention tasks) are safe.

#ifndef SAMOYEDS_SRC_SERVING_KV_CACHE_H_
#define SAMOYEDS_SRC_SERVING_KV_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

namespace samoyeds {
namespace serving {

struct KvCacheConfig {
  int64_t page_tokens = 16;  // token slots per page (>= 1)
  int64_t total_pages = 0;   // pool size; 0 = unbounded (minted on demand)
};

// ceil(tokens / page_tokens); 0 tokens need 0 pages.
int64_t PagesForTokens(int64_t tokens, int64_t page_tokens);

class KvPageAllocator {
 public:
  explicit KvPageAllocator(const KvCacheConfig& config);

  // Grows `seq_id` (created on first call) by `tokens` slots, acquiring pages
  // from the free list as needed. All-or-nothing: on failure (bounded pool
  // exhausted) no state changes and false is returned.
  bool Extend(int64_t seq_id, int64_t tokens);

  // Pages a hypothetical Extend(seq_id, tokens) would acquire.
  int64_t PagesToExtend(int64_t seq_id, int64_t tokens) const;

  // Returns the sequence's pages to the free list (LIFO, so page ids are
  // reused deterministically). No-op for unknown ids.
  void Free(int64_t seq_id);

  // Drops every sequence and returns the allocator to its initial state.
  void Reset();

  bool Has(int64_t seq_id) const { return seqs_.count(seq_id) != 0; }
  int64_t SequenceTokens(int64_t seq_id) const;
  const std::vector<int32_t>& SequencePages(int64_t seq_id) const;
  // Global slot index of a sequence's token: page * page_tokens + offset.
  int64_t SlotOf(int64_t seq_id, int64_t token) const;

  int64_t page_tokens() const { return config_.page_tokens; }
  bool bounded() const { return config_.total_pages > 0; }
  // Bounded: the configured pool size. Unbounded: pages minted so far, so the
  // invariant used_pages() + free_pages() == total_pages() holds either way.
  int64_t total_pages() const { return bounded() ? config_.total_pages : minted_; }
  // Pages ever drawn from the pool (ids 0..minted-1): what backing storage
  // actually has to cover, which can be far below a large configured bound.
  int64_t minted_pages() const { return minted_; }
  int64_t used_pages() const { return used_pages_; }
  int64_t free_pages() const { return total_pages() - used_pages_; }
  int64_t num_sequences() const { return static_cast<int64_t>(seqs_.size()); }
  int64_t cached_tokens() const { return cached_tokens_; }
  // Allocated-but-unused token slots (internal fragmentation across all
  // resident sequences' tail pages).
  int64_t FragmentationWaste() const { return used_pages_ * config_.page_tokens - cached_tokens_; }

 private:
  struct SequenceState {
    std::vector<int32_t> pages;
    int64_t tokens = 0;
  };

  int32_t AcquirePage();  // free list first, else mint (caller checked bounds)

  KvCacheConfig config_;
  std::vector<int32_t> free_list_;
  int64_t minted_ = 0;  // pages ever drawn from the pool (ids 0..minted_-1)
  int64_t used_pages_ = 0;
  int64_t cached_tokens_ = 0;
  std::map<int64_t, SequenceState> seqs_;
};

class PagedKvCache {
 public:
  PagedKvCache(const KvCacheConfig& config, int64_t layers, int64_t hidden);

  // Accounting mutations; see KvPageAllocator. Extend also grows the per-layer
  // arenas to cover newly minted pages (engine thread only).
  bool Extend(int64_t seq_id, int64_t tokens);
  void Free(int64_t seq_id) { alloc_.Free(seq_id); }
  void Reset() { alloc_.Reset(); }

  // Pointer to the hidden-sized row of `token` in `layer`'s arena.
  float* Row(int64_t seq_id, int64_t layer, int64_t token);
  const float* Row(int64_t seq_id, int64_t layer, int64_t token) const;

  // Copies rows [0, count) of `layer` into `dst` (count x hidden, row-major) —
  // the page-table gather that feeds attention.
  void GatherRows(int64_t seq_id, int64_t layer, int64_t count, float* dst) const;

  const KvPageAllocator& allocator() const { return alloc_; }
  int64_t layers() const { return layers_; }
  int64_t hidden() const { return hidden_; }

 private:
  KvPageAllocator alloc_;
  int64_t layers_ = 0;
  int64_t hidden_ = 0;
  std::vector<std::vector<float>> arena_;  // per layer: slots * hidden floats
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_KV_CACHE_H_
