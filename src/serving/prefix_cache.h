// Radix-tree prefix cache over the paged KV allocator (SGLang-style).
//
// The reproduction has no token vocabulary — requests carry input embeddings
// directly — so prefixes are content-addressed: a chained FNV-1a hash over
// each input row's raw bytes identifies the prefix [0..i] bit-exactly (a hash
// at position i commits to every earlier row, so two sequences agree on a
// chained hash iff their inputs agree bitwise on the whole prefix).
//
// Tree shape: every node owns exactly one physical page and covers the token
// range [begin, begin + valid) with begin % page_tokens == 0 and
// valid <= page_tokens. Nodes with valid < page_tokens (partially filled
// pages) are always leaves; matching descends only through exactly-full,
// fully-matched nodes. Siblings may overlap in content (a short partial
// donation and a later longer one coexist) — the match walk picks the
// longest-matching child, first wins ties, so lookups stay deterministic.
//
// Ownership: each node Retains its page against the KvPageAllocator; a
// matched path is mapped into a new sequence with CreateMapped (another
// reference per page). Because a sequence only ever maps pages along one
// root-to-node path, a node whose page refcount is 1 (tree-only) can never
// sit above a node whose page is still mapped — evicting least-recently-used
// refcount-1 leaves (ReclaimOne) therefore reaches every reclaimable page.
//
// Cached payload: alongside the KV pages the node keeps the *output* rows for
// its token range, so a session admitted with a cache hit can replay the
// client-visible rows it will never compute. Under top-k routing a row's
// forward depends only on its own prefix, making the replay bit-lossless;
// expert-choice routing breaks that (batch-composition-dependent), so the
// engine disables the prefix cache there.
//
// Engine thread only; no internal locking.

#ifndef SAMOYEDS_SRC_SERVING_PREFIX_CACHE_H_
#define SAMOYEDS_SRC_SERVING_PREFIX_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/serving/kv_cache.h"
#include "src/tensor/matrix.h"

namespace samoyeds {
namespace serving {

// hashes[i] = chained FNV-1a 64-bit hash over the raw bytes of rows [0..i] of
// `inputs` (rows i in [0, rows)).
std::vector<uint64_t> ChainedRowHashes(const MatrixF& inputs, int64_t rows);

class PrefixCache {
 public:
  PrefixCache(int64_t page_tokens, int64_t hidden);

  struct Match {
    int64_t tokens = 0;             // matched prefix length
    std::vector<int32_t> pages;     // path pages, PagesForTokens(tokens) of them
    std::vector<float> out_rows;    // tokens * hidden replayed output rows
  };

  // Longest cached prefix of rows [0, max_tokens) of `inputs`, without
  // touching LRU state — what admission control sizes its hint from. With
  // `alloc`/`shared_path_pages` given, also counts the path pages some live
  // sequence already maps (refcount >= 2): those are the only pages admission
  // may discount. Path pages held by the tree alone are excluded — mapping
  // them pins otherwise-reclaimable pages, costing the pool as much as a
  // fresh allocation.
  int64_t ProbeTokens(const MatrixF& inputs, int64_t max_tokens,
                      const KvPageAllocator* alloc = nullptr,
                      int64_t* shared_path_pages = nullptr) const;

  // Longest cached prefix plus the pages and output rows to reuse; bumps LRU
  // along the path. The caller maps `pages` into the new sequence with
  // CreateMapped(seq, pages, tokens).
  Match Acquire(const MatrixF& inputs, int64_t max_tokens);

  // Adopts the first `tokens` consumed rows of a finished/preempted sequence
  // into the tree: pages past the already-cached aligned prefix are retained
  // by new nodes, together with their hashes and `out_rows` (tokens * hidden).
  // The donor must still own its page table (call before Free(seq_id)).
  void Donate(int64_t seq_id, const MatrixF& inputs, int64_t tokens,
              const std::vector<float>& out_rows, KvPageAllocator& alloc);

  // Evicts the least-recently-used leaf whose page has no holder besides the
  // tree (refcount 1), releasing the page to the free list. Returns false
  // when every leaf is still mapped by a live sequence (nothing reclaimable).
  bool ReclaimOne(KvPageAllocator& alloc);

  // Pages the tree could hand back through repeated ReclaimOne calls — nodes
  // whose page refcount is 1. Exact: refcount-1 nodes are downward-closed
  // (see header comment), so leaf-only eviction reaches all of them.
  int64_t reclaimable_pages(const KvPageAllocator& alloc) const;

  int64_t nodes() const { return nodes_; }
  // Pages currently retained by tree nodes (== nodes(): one page per node).
  int64_t retained_pages() const { return nodes_; }
  int64_t hits() const { return hits_; }
  int64_t hit_tokens() const { return hit_tokens_; }
  int64_t evictions() const { return evictions_; }

 private:
  struct Node {
    int32_t page = -1;               // physical page this node retains
    int64_t begin = 0;               // token offset of the page (multiple of pt)
    int64_t valid = 0;               // filled rows in [1, page_tokens]
    int64_t lru = 0;                 // last Acquire/Donate touch
    std::vector<uint64_t> hashes;    // hashes[i] covers rows [0 .. begin+i]
    std::vector<float> out_rows;     // valid * hidden cached output rows
    std::vector<std::unique_ptr<Node>> children;
  };

  // Shared match walk: longest cached prefix of `query`; fills `path` with
  // the nodes along it (full nodes plus at most one trailing partial match).
  int64_t Walk(const std::vector<uint64_t>& query, std::vector<Node*>* path) const;

  int64_t page_tokens_;
  int64_t hidden_;
  int64_t clock_ = 0;    // LRU timestamps (bumped per Acquire/Donate)
  int64_t nodes_ = 0;
  int64_t hits_ = 0;
  int64_t hit_tokens_ = 0;
  int64_t evictions_ = 0;
  std::unique_ptr<Node> root_;  // sentinel: page -1, valid 0
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_PREFIX_CACHE_H_
