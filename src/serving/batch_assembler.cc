#include "src/serving/batch_assembler.h"

#include <cassert>

namespace samoyeds {
namespace serving {

AssembledBatch BatchAssembler::Assemble(const std::vector<Contribution>& parts, int64_t hidden) {
  int64_t total = 0;
  for (const auto& p : parts) {
    assert(p.source != nullptr && p.row_count >= 1);
    assert(p.source->cols() == hidden);
    assert(p.row_begin >= 0 && p.row_begin + p.row_count <= p.source->rows());
    total += p.row_count;
  }

  AssembledBatch batch;
  batch.rows = MatrixF(total, hidden);
  batch.slices.reserve(parts.size());
  int64_t at = 0;
  for (const auto& p : parts) {
    for (int64_t r = 0; r < p.row_count; ++r) {
      for (int64_t c = 0; c < hidden; ++c) {
        batch.rows(at + r, c) = (*p.source)(p.row_begin + r, c);
      }
    }
    batch.slices.push_back(BatchSlice{p.request_id, at, p.row_count, p.row_begin, p.is_prefill});
    at += p.row_count;
  }
  return batch;
}

std::vector<MatrixF> BatchAssembler::Split(const MatrixF& batch,
                                           const std::vector<BatchSlice>& slices) {
  std::vector<MatrixF> out;
  out.reserve(slices.size());
  for (const auto& s : slices) {
    assert(s.row_begin >= 0 && s.row_begin + s.row_count <= batch.rows());
    MatrixF part(s.row_count, batch.cols());
    for (int64_t r = 0; r < s.row_count; ++r) {
      for (int64_t c = 0; c < batch.cols(); ++c) {
        part(r, c) = batch(s.row_begin + r, c);
      }
    }
    out.push_back(std::move(part));
  }
  return out;
}

}  // namespace serving
}  // namespace samoyeds
