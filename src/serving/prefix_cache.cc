#include "src/serving/prefix_cache.h"

#include <algorithm>
#include <cassert>

namespace samoyeds {
namespace serving {

std::vector<uint64_t> ChainedRowHashes(const MatrixF& inputs, int64_t rows) {
  assert(rows >= 0 && rows <= inputs.rows());
  std::vector<uint64_t> hashes(static_cast<size_t>(rows));
  uint64_t h = 1469598103934665603ull;         // FNV-1a 64 offset basis
  constexpr uint64_t kPrime = 1099511628211ull;  // FNV-1a 64 prime
  for (int64_t r = 0; r < rows; ++r) {
    const auto row = inputs.row(r);
    const auto* bytes = reinterpret_cast<const unsigned char*>(row.data());
    const size_t n = row.size() * sizeof(float);
    for (size_t i = 0; i < n; ++i) {
      h = (h ^ bytes[i]) * kPrime;
    }
    hashes[static_cast<size_t>(r)] = h;
  }
  return hashes;
}

PrefixCache::PrefixCache(int64_t page_tokens, int64_t hidden)
    : page_tokens_(page_tokens), hidden_(hidden), root_(std::make_unique<Node>()) {
  assert(page_tokens_ >= 1 && hidden_ >= 1);
}

int64_t PrefixCache::Walk(const std::vector<uint64_t>& query,
                          std::vector<Node*>* path) const {
  const int64_t limit = static_cast<int64_t>(query.size());
  Node* node = root_.get();
  int64_t matched = 0;
  while (matched < limit) {
    // Children may overlap in content (a short partial donation next to a
    // longer one); take the longest-matching child, first wins ties.
    Node* best = nullptr;
    int64_t best_r = 0;
    for (const auto& child : node->children) {
      int64_t r = 0;
      while (r < child->valid && matched + r < limit &&
             child->hashes[static_cast<size_t>(r)] == query[static_cast<size_t>(matched + r)]) {
        ++r;
      }
      if (r > best_r) {
        best_r = r;
        best = child.get();
      }
    }
    if (best_r == 0) {
      break;
    }
    if (path != nullptr) {
      path->push_back(best);
    }
    matched += best_r;
    if (best_r == best->valid && best->valid == page_tokens_) {
      node = best;  // exactly-full, fully matched page: keep descending
    } else {
      break;  // partial match terminates the walk
    }
  }
  return matched;
}

int64_t PrefixCache::ProbeTokens(const MatrixF& inputs, int64_t max_tokens,
                                 const KvPageAllocator* alloc,
                                 int64_t* shared_path_pages) const {
  if (shared_path_pages != nullptr) {
    *shared_path_pages = 0;
  }
  const int64_t rows = std::min(max_tokens, inputs.rows());
  if (rows <= 0 || root_->children.empty()) {
    return 0;
  }
  std::vector<Node*> path;
  const int64_t matched =
      Walk(ChainedRowHashes(inputs, rows), shared_path_pages != nullptr ? &path : nullptr);
  if (shared_path_pages != nullptr && alloc != nullptr) {
    for (const Node* n : path) {
      if (n->begin < matched && alloc->refcount(n->page) >= 2) {
        ++*shared_path_pages;
      }
    }
  }
  return matched;
}

PrefixCache::Match PrefixCache::Acquire(const MatrixF& inputs, int64_t max_tokens) {
  Match m;
  const int64_t rows = std::min(max_tokens, inputs.rows());
  if (rows <= 0 || root_->children.empty()) {
    return m;
  }
  const std::vector<uint64_t> query = ChainedRowHashes(inputs, rows);
  std::vector<Node*> path;
  m.tokens = Walk(query, &path);
  if (m.tokens == 0) {
    return m;
  }
  ++clock_;
  m.pages.reserve(path.size());
  m.out_rows.reserve(static_cast<size_t>(m.tokens * hidden_));
  for (Node* n : path) {
    n->lru = clock_;
    m.pages.push_back(n->page);
    const int64_t take = std::min(n->valid, m.tokens - n->begin);
    m.out_rows.insert(m.out_rows.end(), n->out_rows.begin(),
                      n->out_rows.begin() + take * hidden_);
  }
  assert(static_cast<int64_t>(m.pages.size()) == PagesForTokens(m.tokens, page_tokens_));
  ++hits_;
  hit_tokens_ += m.tokens;
  return m;
}

void PrefixCache::Donate(int64_t seq_id, const MatrixF& inputs, int64_t tokens,
                         const std::vector<float>& out_rows, KvPageAllocator& alloc) {
  if (tokens <= 0 || !alloc.Has(seq_id)) {
    return;
  }
  assert(tokens <= inputs.rows());
  assert(static_cast<int64_t>(out_rows.size()) >= tokens * hidden_);
  assert(alloc.SequenceTokens(seq_id) >= tokens);
  const std::vector<uint64_t> query = ChainedRowHashes(inputs, tokens);
  std::vector<Node*> path;
  const int64_t matched = Walk(query, &path);
  // The attach point is the deepest fully-descended full node; everything the
  // donor adds starts at the page boundary below it. A trailing partial match
  // stays where it is — the new, longer chain becomes an overlapping sibling
  // and the longest-match walk prefers it from now on.
  Node* attach = root_.get();
  int64_t aligned = 0;
  for (Node* n : path) {
    if (n->valid == page_tokens_ && n->begin + page_tokens_ <= matched) {
      attach = n;
      aligned = n->begin + page_tokens_;
    } else {
      break;
    }
  }
  if (matched >= tokens || tokens <= aligned) {
    return;  // nothing beyond what the tree already holds
  }
  // Pages at index >= aligned/page_tokens are private to the donor: the donor
  // wrote past `matched` (tokens > matched), which copy-on-write split any
  // still-shared partial page first. Adopting them never aliases a tree node.
  const std::vector<int32_t>& seq_pages = alloc.SequencePages(seq_id);
  ++clock_;
  for (int64_t d = aligned; d < tokens; d += page_tokens_) {
    const int64_t valid = std::min(page_tokens_, tokens - d);
    auto node = std::make_unique<Node>();
    node->page = seq_pages[static_cast<size_t>(d / page_tokens_)];
    node->begin = d;
    node->valid = valid;
    node->lru = clock_;
    node->hashes.assign(query.begin() + d, query.begin() + d + valid);
    node->out_rows.assign(out_rows.begin() + d * hidden_,
                          out_rows.begin() + (d + valid) * hidden_);
    alloc.Retain(node->page);
    Node* raw = node.get();
    attach->children.push_back(std::move(node));
    attach = raw;
    ++nodes_;
  }
}

bool PrefixCache::ReclaimOne(KvPageAllocator& alloc) {
  // Least-recently-used leaf whose page has no holder besides the tree.
  // DFS order breaks LRU ties deterministically (strictly-older wins).
  Node* victim_parent = nullptr;
  size_t victim_index = 0;
  int64_t victim_lru = 0;
  bool found = false;
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (size_t i = 0; i < node->children.size(); ++i) {
      Node* child = node->children[i].get();
      if (child->children.empty()) {
        if (alloc.refcount(child->page) == 1 && (!found || child->lru < victim_lru)) {
          victim_parent = node;
          victim_index = i;
          victim_lru = child->lru;
          found = true;
        }
      } else {
        stack.push_back(child);
      }
    }
  }
  if (!found) {
    return false;
  }
  alloc.Release(victim_parent->children[victim_index]->page);
  victim_parent->children.erase(victim_parent->children.begin() +
                                static_cast<std::ptrdiff_t>(victim_index));
  --nodes_;
  ++evictions_;
  return true;
}

int64_t PrefixCache::reclaimable_pages(const KvPageAllocator& alloc) const {
  int64_t count = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& child : node->children) {
      if (alloc.refcount(child->page) == 1) {
        ++count;
      }
      stack.push_back(child.get());
    }
  }
  return count;
}

}  // namespace serving
}  // namespace samoyeds
