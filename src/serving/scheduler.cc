#include "src/serving/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/obs/tracer.h"
#include "src/serving/kv_cache.h"

namespace samoyeds {
namespace serving {

const char* SchedulerPolicyName(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kFcfs:
      return "fcfs";
    case SchedulerPolicy::kSmallestFirst:
      return "smallest-first";
    case SchedulerPolicy::kTokenBudget:
      return "token-budget";
  }
  return "?";
}

const char* ChunkPolicyName(ChunkPolicy p) {
  switch (p) {
    case ChunkPolicy::kFixed:
      return "fixed";
    case ChunkPolicy::kDecodePriority:
      return "decode-priority";
  }
  return "?";
}

bool ParseChunkPolicy(const char* text, ChunkPolicy* out) {
  if (std::strcmp(text, "fixed") == 0) {
    *out = ChunkPolicy::kFixed;
    return true;
  }
  if (std::strcmp(text, "decode-priority") == 0) {
    *out = ChunkPolicy::kDecodePriority;
    return true;
  }
  return false;
}

int64_t TokenCapacity(const MoeModelConfig& model, MoeFramework framework,
                      const SamoyedsConfig& sparse_format, const DeviceSpec& device) {
  const MemoryFootprint fp = EstimateFootprint(model, framework, sparse_format, device);
  const double free_bytes = fp.capacity_bytes - fp.weight_bytes - fp.fixed_bytes;
  if (free_bytes <= 0.0 || fp.bytes_per_token <= 0.0) {
    return 0;
  }
  return static_cast<int64_t>(free_bytes / fp.bytes_per_token);
}

int64_t PageCapacity(const MoeModelConfig& model, MoeFramework framework,
                     const SamoyedsConfig& sparse_format, const DeviceSpec& device,
                     int64_t page_tokens) {
  assert(page_tokens >= 1);
  return TokenCapacity(model, framework, sparse_format, device) / page_tokens;
}

namespace {

// Effective per-chunk row cap: fixed at chunk_tokens, or shrunk by the
// resident decode rows under decode-priority — never below 1, so prefill
// always makes progress even in a decode-saturated iteration.
int64_t ChunkCap(const SchedulerConfig& config, int64_t decode_rows) {
  if (config.chunk_policy == ChunkPolicy::kDecodePriority) {
    return std::max<int64_t>(1, config.chunk_tokens - decode_rows);
  }
  return config.chunk_tokens;
}

}  // namespace

int64_t PrefillChunkRows(int64_t remaining_prompt, int64_t budget_left,
                         const SchedulerConfig& config, int64_t decode_rows) {
  assert(remaining_prompt >= 0);
  if (config.chunk_tokens <= 0) {
    return remaining_prompt;  // legacy: the whole prompt in one iteration
  }
  return std::max<int64_t>(
      0, std::min({remaining_prompt, ChunkCap(config, decode_rows), budget_left}));
}

int64_t FirstChunkRows(int64_t prompt_len, const SchedulerConfig& config,
                       int64_t decode_rows) {
  if (config.chunk_tokens <= 0) {
    return prompt_len;
  }
  // Capped by the whole iteration budget so a chunk_tokens larger than the
  // budget still admits (into an empty iteration) instead of livelocking.
  return std::min({prompt_len, ChunkCap(config, decode_rows), config.token_budget});
}

// Backlog-depth samples fire on every transition (enqueue, requeue, the
// admission sweep) so the counter track shows queue pressure between the
// engine's per-step samples too.

void Scheduler::Enqueue(Request request) {
  pending_.push_back(std::move(request));
  obs::TraceCounter("scheduler", "backlog", obs::TraceDetail::kStep,
                    static_cast<int64_t>(pending_.size()));
}

void Scheduler::Requeue(Request request) {
  pending_.push_front(std::move(request));
  obs::TraceCounter("scheduler", "backlog", obs::TraceDetail::kStep,
                    static_cast<int64_t>(pending_.size()));
}

bool Scheduler::Cancel(int64_t id) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) {
      pending_.erase(it);
      return true;
    }
  }
  return false;
}

const char* Scheduler::RejectReason(const Request& r) const {
  // With chunked prefill enabled a prompt of any length is served chunk by
  // chunk, so "prompt exceeds budget" can no longer happen; the remaining
  // rejections are memory-capacity conditions, and their reasons are kept
  // distinct so operators can tell a batch-shape problem from a page-pool
  // problem. The page check runs first: a request that overflows both the
  // page pool and the token budget dies of the memory condition either way,
  // and the "enable chunked prefill" hint would be a lie — chunking cannot
  // shrink the KV footprint.
  if (config_.max_pages > 0 &&
      PagesForTokens(r.total_tokens(), config_.page_tokens) > config_.max_pages) {
    // Even alone on an empty pool the sequence could never hold its full
    // prompt+decode KV footprint, so with recompute-on-readmission preemption
    // it would thrash forever.
    return "KV page capacity: total tokens exceed the page budget";
  }
  if (config_.chunk_tokens <= 0 && r.prompt_len > config_.token_budget) {
    return "prompt exceeds the iteration token budget (enable chunked prefill to serve it)";
  }
  if (r.total_tokens() > config_.max_resident_tokens) {
    return "total tokens exceed resident capacity";
  }
  return nullptr;
}

AdmissionDecision Scheduler::Admit(int64_t committed_rows, const ResidentSnapshot& resident,
                                   const AdmitProbe& probe) {
  AdmissionDecision decision;

  // Infeasible requests are filtered first so they never block a queue scan.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (const char* reason = RejectReason(*it)) {
      decision.rejected.push_back(Rejection{std::move(*it), reason});
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  // Candidate scan order differs per policy; the fit test is shared.
  std::vector<size_t> order(pending_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  if (config_.policy == SchedulerPolicy::kSmallestFirst) {
    std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return pending_[a].total_tokens() < pending_[b].total_tokens();
    });
  }

  int64_t batch_rows = committed_rows;
  int64_t tokens = resident.tokens;
  int64_t sequences = resident.sequences;
  // Page accounting basis: with preemption the admitted rows only have to
  // fit next to what is in use right now (later growth evicts residents);
  // without it the whole lifetime must be coverable so the sequence can
  // never strand. Chunked prefill narrows the optimistic charge further —
  // only the first chunk's pages are claimed this iteration; later chunks
  // are iteration growth exactly like decode rows.
  int64_t pages = config_.preempt ? resident.used_pages : resident.reserved_pages;
  std::vector<bool> taken(pending_.size(), false);
  for (size_t idx : order) {
    const Request& r = pending_[idx];
    // Batch-row charge: the first prefill chunk of the rows the engine will
    // actually prefill (whole remaining prompt when chunking is off; the
    // engine's hint removes cached-prefix / swap-restorable tokens first).
    // Chunks are never trimmed below chunk_tokens at admission — a request
    // waits rather than start with a sliver.
    const AdmitHint hint = probe ? probe(r) : AdmitHint{};
    const int64_t remaining_prompt = std::max<int64_t>(0, r.prompt_len - hint.ready_tokens);
    // A session whose whole prompt is already ready (full prefix hit, or a
    // swap-in restored mid-decode) computes its first decode row in the
    // admission iteration, so that row is the charge. Without it the session
    // would contribute zero rows at admission — and a readmitted swap victim
    // could be re-evicted before ever decoding, making no progress.
    const int64_t need_rows =
        remaining_prompt > 0 ? FirstChunkRows(remaining_prompt, config_, resident.decode_rows)
                             : (hint.ready_tokens < r.total_tokens() ? 1 : 0);
    const int64_t optimistic_tokens =
        hint.ready_tokens +
        (config_.chunk_tokens > 0 || remaining_prompt == 0 ? need_rows : remaining_prompt);
    // Page charge nets out the shared pages already resident under the hinted
    // prefix — mapping them again must not be double-billed against the pool.
    const int64_t need_pages =
        config_.max_pages <= 0
            ? 0
            : std::max<int64_t>(
                  0, PagesForTokens(config_.preempt ? optimistic_tokens : r.total_tokens(),
                                    config_.page_tokens) -
                         hint.resident_pages);
    const bool fits =
        batch_rows + need_rows <= config_.token_budget &&
        tokens + r.total_tokens() <= config_.max_resident_tokens &&
        (config_.max_pages <= 0 || pages + need_pages <= config_.max_pages) &&
        (config_.max_resident_sequences == 0 ||
         sequences + 1 <= config_.max_resident_sequences);
    if (!fits) {
      if (config_.policy == SchedulerPolicy::kFcfs) {
        break;  // strict head-of-line: nobody overtakes the blocked head
      }
      continue;  // smallest-first / token-budget: try the next candidate
    }
    batch_rows += need_rows;
    tokens += r.total_tokens();
    pages += need_pages;
    ++sequences;
    taken[idx] = true;
  }

  // Preserve arrival order within the admitted set.
  std::deque<Request> remaining;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (taken[i]) {
      decision.admitted.push_back(std::move(pending_[i]));
    } else {
      remaining.push_back(std::move(pending_[i]));
    }
  }
  pending_ = std::move(remaining);
  obs::TraceCounter("scheduler", "backlog", obs::TraceDetail::kStep,
                    static_cast<int64_t>(pending_.size()));
  return decision;
}

size_t Scheduler::PickVictim(const std::vector<VictimCandidate>& residents) {
  assert(!residents.empty());
  size_t victim = 0;
  for (size_t i = 1; i < residents.size(); ++i) {
    const VictimCandidate& a = residents[i];
    const VictimCandidate& b = residents[victim];
    if (a.priority != b.priority     ? a.priority < b.priority
        : a.slack != b.slack         ? a.slack > b.slack
        : a.admit_seq != b.admit_seq ? a.admit_seq > b.admit_seq
                                     : a.id > b.id) {
      victim = i;
    }
  }
  return victim;
}

}  // namespace serving
}  // namespace samoyeds
