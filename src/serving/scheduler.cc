#include "src/serving/scheduler.h"

#include <algorithm>

namespace samoyeds {
namespace serving {

const char* SchedulerPolicyName(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kFcfs:
      return "fcfs";
    case SchedulerPolicy::kSmallestFirst:
      return "smallest-first";
    case SchedulerPolicy::kTokenBudget:
      return "token-budget";
  }
  return "?";
}

int64_t TokenCapacity(const MoeModelConfig& model, MoeFramework framework,
                      const SamoyedsConfig& sparse_format, const DeviceSpec& device) {
  const MemoryFootprint fp = EstimateFootprint(model, framework, sparse_format, device);
  const double free_bytes = fp.capacity_bytes - fp.weight_bytes - fp.fixed_bytes;
  if (free_bytes <= 0.0 || fp.bytes_per_token <= 0.0) {
    return 0;
  }
  return static_cast<int64_t>(free_bytes / fp.bytes_per_token);
}

void Scheduler::Enqueue(Request request) { pending_.push_back(std::move(request)); }

bool Scheduler::Infeasible(const Request& r) const {
  return r.total_tokens() > config_.max_resident_tokens ||
         r.prompt_len > config_.token_budget;
}

AdmissionDecision Scheduler::Admit(int64_t decode_rows, const ResidentSnapshot& resident) {
  AdmissionDecision decision;

  // Infeasible requests are filtered first so they never block a queue scan.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (Infeasible(*it)) {
      decision.rejected.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  // Candidate scan order differs per policy; the fit test is shared.
  std::vector<size_t> order(pending_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  if (config_.policy == SchedulerPolicy::kSmallestFirst) {
    std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return pending_[a].total_tokens() < pending_[b].total_tokens();
    });
  }

  int64_t batch_rows = decode_rows;
  int64_t tokens = resident.tokens;
  int64_t sequences = resident.sequences;
  std::vector<bool> taken(pending_.size(), false);
  for (size_t idx : order) {
    const Request& r = pending_[idx];
    const bool fits =
        batch_rows + r.prompt_len <= config_.token_budget &&
        tokens + r.total_tokens() <= config_.max_resident_tokens &&
        (config_.max_resident_sequences == 0 ||
         sequences + 1 <= config_.max_resident_sequences);
    if (!fits) {
      if (config_.policy == SchedulerPolicy::kFcfs) {
        break;  // strict head-of-line: nobody overtakes the blocked head
      }
      continue;  // smallest-first / token-budget: try the next candidate
    }
    batch_rows += r.prompt_len;
    tokens += r.total_tokens();
    ++sequences;
    taken[idx] = true;
  }

  // Preserve arrival order within the admitted set.
  std::deque<Request> remaining;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (taken[i]) {
      decision.admitted.push_back(std::move(pending_[i]));
    } else {
      remaining.push_back(std::move(pending_[i]));
    }
  }
  pending_ = std::move(remaining);
  return decision;
}

}  // namespace serving
}  // namespace samoyeds
