// Inference request and sequence lifecycle types for the serving engine.
//
// The reproduction has no tokenizer/vocabulary: a request carries its input
// token *embeddings* directly (prompt rows plus the rows consumed one per
// decode step — a teacher-forced synthetic workload). This keeps generation
// deterministic and lets tests compare the engine's incremental, batched
// execution against a single full-sequence DecoderStackForward* call.

#ifndef SAMOYEDS_SRC_SERVING_REQUEST_H_
#define SAMOYEDS_SRC_SERVING_REQUEST_H_

#include <cstdint>

#include "src/tensor/matrix.h"

namespace samoyeds {
namespace serving {

struct Request {
  int64_t id = 0;
  // Engine step at which the request becomes visible to the scheduler.
  int64_t arrival_step = 0;
  int64_t prompt_len = 0;
  int64_t max_new_tokens = 0;
  // Eviction priority under preemptive scheduling: when the paged KV cache
  // runs out of pages, the lowest-priority (then youngest) resident is
  // evicted first. Higher values survive longer; 0 is the default class.
  int priority = 0;
  // (prompt_len + max_new_tokens) x hidden input rows; the prompt is consumed
  // in one prefill iteration, then one row per decode iteration.
  MatrixF inputs;

  int64_t total_tokens() const { return prompt_len + max_new_tokens; }
  bool ShapeValid(int64_t hidden) const {
    return prompt_len >= 1 && max_new_tokens >= 0 && inputs.cols() == hidden &&
           inputs.rows() == total_tokens();
  }
};

enum class RequestStatus {
  kQueued,    // accepted, waiting for scheduler admission (also: preempted
              // residents awaiting readmission + recompute)
  kRunning,   // resident in the batch
  kFinished,  // all tokens produced
  kRejected,  // can never fit (admission control)
};

const char* RequestStatusName(RequestStatus s);

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_REQUEST_H_
