// Inference request and session lifecycle types for the serving engine.
//
// The reproduction has no tokenizer/vocabulary: a request carries its input
// token *embeddings* directly (prompt rows plus the rows consumed one per
// decode step — a teacher-forced synthetic workload). This keeps generation
// deterministic and lets tests compare the engine's incremental, batched
// execution against a single full-sequence DecoderStackForward* call.
//
// A Request is an immutable submission. ServingEngine::Submit returns a
// SessionHandle (see engine.h) through which the caller observes the
// session's lifecycle incrementally: output rows finalize per iteration and
// are delivered through a pollable cursor (NewRows) or an OnRows callback
// fired inside Step() — the request/response surface is a stream, not a
// matrix that materializes at drain time.

#ifndef SAMOYEDS_SRC_SERVING_REQUEST_H_
#define SAMOYEDS_SRC_SERVING_REQUEST_H_

#include <cstdint>
#include <functional>

#include "src/tensor/matrix.h"

namespace samoyeds {
namespace serving {

struct Request {
  int64_t id = 0;
  // Engine step at which the request becomes visible to the scheduler.
  int64_t arrival_step = 0;
  int64_t prompt_len = 0;
  // Stop condition: the session finishes after exactly `max_new_tokens`
  // decode rows, even when `inputs` carries more rows than the session will
  // consume (the surplus is ignored).
  int64_t max_new_tokens = 0;
  // Eviction priority under preemptive scheduling: when the paged KV cache
  // runs out of pages, the lowest-priority (then youngest) resident is
  // evicted first. Higher values survive longer; 0 is the default class.
  // Also the shedding class: under ingress overload, lower-priority queued
  // requests are dropped to make room for higher-priority arrivals.
  int priority = 0;
  // Deadline in engine steps from arrival: a request still unfinished at
  // step >= arrival_step + deadline_steps is terminated with kTimedOut.
  // 0 disables the deadline. Near-deadline residents also become preferred
  // eviction victims last (most slack goes first) — evicting a session
  // about to miss its deadline would guarantee the miss.
  int64_t deadline_steps = 0;
  // At least (prompt_len + max_new_tokens) x hidden input rows; the prompt is
  // consumed across one or more prefill chunks (see SchedulerConfig::
  // chunk_tokens), then one row per decode iteration until the stop
  // condition is reached.
  MatrixF inputs;

  int64_t total_tokens() const { return prompt_len + max_new_tokens; }
  bool ShapeValid(int64_t hidden) const {
    return prompt_len >= 1 && max_new_tokens >= 0 && inputs.cols() == hidden &&
           inputs.rows() >= total_tokens();
  }
};

enum class RequestStatus {
  kQueued,     // accepted, waiting for scheduler admission (also: preempted
               // residents awaiting readmission + recompute)
  kRunning,    // resident in the batch
  kFinished,   // all tokens produced
  kRejected,   // can never fit (admission control)
  kCancelled,  // terminated by SessionHandle::Cancel / ServingEngine::Cancel
  kTimedOut,   // deadline_steps elapsed before the session finished
  kShedded,    // dropped by overload control (bounded ingress queue)
};

const char* RequestStatusName(RequestStatus s);

// True for states a session can never leave (kFinished / kRejected /
// kCancelled / kTimedOut / kShedded): results are frozen and Cancel() is a
// no-op.
bool IsTerminal(RequestStatus s);

// One batch of rows finalized for a session inside Step(): rows
// [position_begin, position_begin + rows.rows()) of the session's output
// stream, in sequence order. `finished` marks the delta that completes the
// session (its last row is the final decode row).
struct StreamDelta {
  int64_t session_id = 0;
  int64_t position_begin = 0;
  const MatrixF& rows;
  bool finished = false;
};

// Optional per-session delivery callback, invoked synchronously inside
// Step() as rows finalize (engine thread). Rows handed to the callback are
// considered delivered: the session's polling cursor advances past them.
// The terminal delta (finished or cancelled session) always fires, even
// when it carries no new rows. A callback may reenter the engine's session
// surface (Submit / Cancel / NewRows) but must not call Step() or
// RunUntilDrained().
using OnRowsCallback = std::function<void(const StreamDelta&)>;

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_REQUEST_H_
