#include "src/serving/metrics.h"

#include <algorithm>

namespace samoyeds {
namespace serving {

void EngineMetrics::OnArrival(int64_t id, int64_t step, int64_t prompt_len, int64_t new_tokens) {
  RequestMetrics& r = requests_[id];
  r.prompt_len = prompt_len;
  r.new_tokens = new_tokens;
  r.arrival_step = step;
  r.arrival_ms = NowMs();
}

void EngineMetrics::OnAdmit(int64_t id, int64_t step) { requests_[id].admit_step = step; }

void EngineMetrics::OnReject(int64_t id) {
  requests_.erase(id);
  ++rejected_;
}

void EngineMetrics::OnFirstOutput(int64_t id, int64_t step) {
  RequestMetrics& r = requests_[id];
  r.first_output_step = step;
  r.first_output_ms = NowMs();
}

void EngineMetrics::OnFinish(int64_t id, int64_t step) {
  RequestMetrics& r = requests_[id];
  r.finish_step = step;
  r.finish_ms = NowMs();
}

void EngineMetrics::OnStep(const StepMetrics& step) { steps_.push_back(step); }

void EngineMetrics::OnRoutingPlan(const RoutingPlan& plan) {
  if (static_cast<int>(expert_tokens_.size()) < plan.num_experts) {
    expert_tokens_.resize(static_cast<size_t>(plan.num_experts));
  }
  for (int e = 0; e < plan.num_experts; ++e) {
    expert_tokens_[static_cast<size_t>(e)] += plan.TokensForExpert(e);
  }
}

ServingReport EngineMetrics::Summarize(int64_t token_budget) const {
  ServingReport rep;
  rep.requests_rejected = rejected_;
  rep.steps = static_cast<int64_t>(steps_.size());
  rep.expert_tokens = expert_tokens_;

  double ttft_steps = 0.0;
  double ttft_ms = 0.0;
  for (const auto& [id, r] : requests_) {
    if (r.finish_step < 0) {
      continue;  // still in flight (or never admitted)
    }
    ++rep.requests_finished;
    ttft_steps += static_cast<double>(r.first_output_step - r.arrival_step + 1);
    ttft_ms += r.first_output_ms - r.arrival_ms;
  }
  if (rep.requests_finished > 0) {
    rep.mean_ttft_steps = ttft_steps / static_cast<double>(rep.requests_finished);
    rep.mean_ttft_ms = ttft_ms / static_cast<double>(rep.requests_finished);
  }

  int64_t rows = 0;
  for (const auto& s : steps_) {
    rep.prefill_rows += s.prefill_rows;
    rep.decode_rows += s.decode_rows;
    rows += s.batch_rows;
    rep.peak_batch_rows = std::max(rep.peak_batch_rows, s.batch_rows);
    rep.peak_sequences = std::max(rep.peak_sequences, s.running_sequences);
    rep.wall_ms += s.wall_ms;
  }
  if (rep.steps > 0) {
    rep.mean_step_ms = rep.wall_ms / static_cast<double>(rep.steps);
    rep.mean_batch_rows = static_cast<double>(rows) / static_cast<double>(rep.steps);
    if (token_budget > 0) {
      rep.mean_occupancy = rep.mean_batch_rows / static_cast<double>(token_budget);
    }
  }
  if (rep.wall_ms > 0.0) {
    rep.tokens_per_second = static_cast<double>(rows) / (rep.wall_ms * 1e-3);
  }

  int64_t expert_sum = 0;
  int64_t expert_max = 0;
  for (int64_t t : expert_tokens_) {
    expert_sum += t;
    expert_max = std::max(expert_max, t);
  }
  if (expert_sum > 0 && !expert_tokens_.empty()) {
    const double mean =
        static_cast<double>(expert_sum) / static_cast<double>(expert_tokens_.size());
    rep.expert_imbalance = static_cast<double>(expert_max) / mean;
  }
  return rep;
}

void EngineMetrics::Print(const ServingReport& rep, std::FILE* out) {
  std::fprintf(out, "requests: %lld finished, %lld rejected\n",
               static_cast<long long>(rep.requests_finished),
               static_cast<long long>(rep.requests_rejected));
  std::fprintf(out, "steps: %lld (%lld prefill rows, %lld decode rows)\n",
               static_cast<long long>(rep.steps), static_cast<long long>(rep.prefill_rows),
               static_cast<long long>(rep.decode_rows));
  std::fprintf(out, "latency: TTFT %.1f steps / %.2f ms, %.3f ms per step\n",
               rep.mean_ttft_steps, rep.mean_ttft_ms, rep.mean_step_ms);
  std::fprintf(out, "throughput: %.1f tokens/s over %.2f ms of forward time\n",
               rep.tokens_per_second, rep.wall_ms);
  std::fprintf(out, "batch: mean %.1f rows (%.0f%% of budget), peak %lld rows, "
               "peak concurrency %lld sequences\n",
               rep.mean_batch_rows, 100.0 * rep.mean_occupancy,
               static_cast<long long>(rep.peak_batch_rows),
               static_cast<long long>(rep.peak_sequences));
  std::fprintf(out, "expert load (tokens/expert, imbalance %.2fx):", rep.expert_imbalance);
  for (int64_t t : rep.expert_tokens) {
    std::fprintf(out, " %lld", static_cast<long long>(t));
  }
  std::fprintf(out, "\n");
}

}  // namespace serving
}  // namespace samoyeds
