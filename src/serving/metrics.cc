#include "src/serving/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/obs/tracer.h"

namespace samoyeds {
namespace serving {

// Request-lifecycle hooks double as trace emitters: each session becomes an
// async span keyed by its id (its own Perfetto timeline row), with admission,
// first output, preemptions, and termination as instants on that row. The
// instants carry the engine step as their argument, so a trace reconciles
// event-for-event with the RequestMetrics the same hooks record.

void EngineMetrics::OnArrival(int64_t id, int64_t step, int64_t prompt_len, int64_t new_tokens) {
  std::lock_guard<std::mutex> lock(mu_);
  RequestMetrics& r = requests_[id];
  r.prompt_len = prompt_len;
  r.new_tokens = new_tokens;
  r.arrival_step = step;
  r.arrival_ms = NowMs();
  obs::TraceAsyncBegin("request", "session", obs::TraceDetail::kRequest, id, step);
}

void EngineMetrics::OnAdmit(int64_t id, int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_[id].admit_step = step;
  obs::TraceAsyncInstant("request", "admit", obs::TraceDetail::kRequest, id, step);
}

void EngineMetrics::OnReject(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_.erase(id);
  ++rejected_;
  obs::TraceAsyncInstant("request", "reject", obs::TraceDetail::kRequest, id);
  obs::TraceAsyncEnd("request", "session", obs::TraceDetail::kRequest, id);
}

void EngineMetrics::OnFirstOutput(int64_t id, int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  RequestMetrics& r = requests_[id];
  if (r.first_output_step >= 0) {
    return;  // re-prefill after preemption: TTFT keeps the original emission
  }
  r.first_output_step = step;
  r.first_output_ms = NowMs();
  obs::TraceAsyncInstant("request", "first_output", obs::TraceDetail::kRequest, id, step);
}

void EngineMetrics::OnFinish(int64_t id, int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  RequestMetrics& r = requests_[id];
  r.finish_step = step;
  r.finish_ms = NowMs();
  ttft_steps_hist_.Record(static_cast<double>(r.first_output_step - r.arrival_step + 1));
  turnaround_steps_hist_.Record(static_cast<double>(r.finish_step - r.arrival_step + 1));
  ttft_ms_hist_.Record(r.first_output_ms - r.arrival_ms);
  turnaround_ms_hist_.Record(r.finish_ms - r.arrival_ms);
  obs::TraceAsyncEnd("request", "session", obs::TraceDetail::kRequest, id, step);
}

void EngineMetrics::OnCancel(int64_t id, int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_[id].cancel_step = step;
  ++cancelled_;
  obs::TraceAsyncInstant("request", "cancel", obs::TraceDetail::kRequest, id, step);
  obs::TraceAsyncEnd("request", "session", obs::TraceDetail::kRequest, id, step);
}

void EngineMetrics::OnTimeout(int64_t id, int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_[id].timeout_step = step;
  ++timed_out_;
  obs::TraceAsyncInstant("request", "timeout", obs::TraceDetail::kRequest, id, step);
  obs::TraceAsyncEnd("request", "session", obs::TraceDetail::kRequest, id, step);
}

void EngineMetrics::OnShed(int64_t id, int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  ++shed_;
  // A request shed at Submit never reached OnArrival; don't let the map
  // lookup create a ghost timeline entry for it.
  const auto it = requests_.find(id);
  if (it != requests_.end()) {
    it->second.cancel_step = step;
    obs::TraceAsyncInstant("request", "shed", obs::TraceDetail::kRequest, id, step);
    obs::TraceAsyncEnd("request", "session", obs::TraceDetail::kRequest, id, step);
  }
}

void EngineMetrics::OnPrefillSlice(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  RequestMetrics& r = requests_[id];
  ++r.prefill_chunks;
  obs::TraceAsyncInstant("request", "prefill_chunk", obs::TraceDetail::kRequest, id,
                         r.prefill_chunks);
}

void EngineMetrics::OnRowsDelivered(int64_t id, int64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_[id].streamed_rows += rows;
}

void EngineMetrics::OnPreempt(int64_t id, int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_[id].preemptions;
  preemption_log_.emplace_back(id, step);
  obs::TraceAsyncInstant("request", "preempt", obs::TraceDetail::kRequest, id, step);
}

void EngineMetrics::OnPrefixHit(int64_t id, int64_t step, int64_t tokens) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_[id].cached_prompt_tokens = tokens;  // latest admission overwrites
  ++prefix_hit_requests_;
  prefix_hit_tokens_ += tokens;
  obs::TraceAsyncInstant("request", "prefix_hit", obs::TraceDetail::kRequest, id, tokens);
  (void)step;
}

void EngineMetrics::OnSwapOut(int64_t id, int64_t step, double bytes, double est_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++swap_outs_;
  swap_out_bytes_ += bytes;
  est_swap_ms_ += est_ms;
  obs::TraceAsyncInstant("request", "swap_out", obs::TraceDetail::kRequest, id, step);
}

void EngineMetrics::OnSwapIn(int64_t id, int64_t step, double bytes, double est_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++swap_ins_;
  swap_in_bytes_ += bytes;
  est_swap_ms_ += est_ms;
  obs::TraceAsyncInstant("request", "swap_in", obs::TraceDetail::kRequest, id, step);
}

void EngineMetrics::OnStep(const StepMetrics& step) {
  std::lock_guard<std::mutex> lock(mu_);
  steps_.push_back(step);
}

void EngineMetrics::OnRoutingPlan(const RoutingPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(expert_tokens_.size()) < plan.num_experts) {
    expert_tokens_.resize(static_cast<size_t>(plan.num_experts));
  }
  for (int e = 0; e < plan.num_experts; ++e) {
    expert_tokens_[static_cast<size_t>(e)] += plan.TokensForExpert(e);
  }
}

void EngineMetrics::OnShardTokens(const std::vector<int64_t>& shard_tokens) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard_tokens_.size() < shard_tokens.size()) {
    shard_tokens_.resize(shard_tokens.size());
  }
  for (size_t s = 0; s < shard_tokens.size(); ++s) {
    shard_tokens_[s] += shard_tokens[s];
  }
}

void EngineMetrics::OnAutotune(double default_ms, double tuned_ms, bool cache_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  ++autotune_lookups_;
  autotune_cache_hits_ += cache_hit ? 1 : 0;
  autotune_default_ms_ += default_ms;
  autotune_tuned_ms_ += tuned_ms;
}

ServingReport EngineMetrics::Summarize(int64_t token_budget, int64_t max_pages) const {
  std::lock_guard<std::mutex> lock(mu_);
  ServingReport rep;
  rep.requests_rejected = rejected_;
  rep.requests_cancelled = cancelled_;
  rep.requests_timed_out = timed_out_;
  rep.requests_shed = shed_;
  rep.autotune_lookups = autotune_lookups_;
  rep.autotune_cache_hits = autotune_cache_hits_;
  rep.autotune_default_ms = autotune_default_ms_;
  rep.autotune_tuned_ms = autotune_tuned_ms_;
  rep.autotune_speedup =
      autotune_tuned_ms_ > 0.0 ? autotune_default_ms_ / autotune_tuned_ms_ : 1.0;
  rep.steps = static_cast<int64_t>(steps_.size());
  rep.preemptions = static_cast<int64_t>(preemption_log_.size());
  rep.prefix_hit_requests = prefix_hit_requests_;
  rep.prefix_hit_tokens = prefix_hit_tokens_;
  rep.swap_outs = swap_outs_;
  rep.swap_ins = swap_ins_;
  rep.swap_out_bytes = swap_out_bytes_;
  rep.swap_in_bytes = swap_in_bytes_;
  rep.est_swap_ms = est_swap_ms_;
  rep.expert_tokens = expert_tokens_;
  rep.shard_tokens = shard_tokens_;

  rep.request_timelines.reserve(requests_.size());
  for (const auto& [id, r] : requests_) {
    rep.streamed_rows += r.streamed_rows;
    if (r.finish_step >= 0 && r.prefill_chunks > 1) {
      ++rep.chunked_prefill_requests;
    }
    // Per-request timeline summary — the report-side mirror of the trace's
    // async "request" track (map iteration keeps ids ascending).
    RequestTimeline tl;
    tl.id = id;
    tl.prompt_len = r.prompt_len;
    tl.arrival_step = r.arrival_step;
    tl.admit_step = r.admit_step;
    tl.first_output_step = r.first_output_step;
    tl.finish_step = r.finish_step;
    tl.cancel_step = r.cancel_step;
    tl.timeout_step = r.timeout_step;
    tl.prefill_chunks = r.prefill_chunks;
    tl.preemptions = r.preemptions;
    tl.cached_prompt_tokens = r.cached_prompt_tokens;
    if (r.first_output_step >= 0) {
      tl.ttft_ms = r.first_output_ms - r.arrival_ms;
    }
    if (r.finish_step >= 0) {
      tl.turnaround_ms = r.finish_ms - r.arrival_ms;
    }
    rep.request_timelines.push_back(tl);
    if (r.finish_step < 0) {
      continue;  // still in flight, cancelled, or never admitted
    }
    ++rep.requests_finished;
  }
  // Latency stats come from the histograms OnFinish fed — the step-count
  // pairs live entirely in the exact linear region, so means and
  // nearest-rank percentiles match the old sort-the-samples path digit for
  // digit, while the ms pairs give wall-clock p95s no sample vector kept.
  if (rep.requests_finished > 0) {
    rep.mean_ttft_steps = ttft_steps_hist_.mean();
    rep.p95_ttft_steps = ttft_steps_hist_.Percentile(0.95);
    rep.mean_turnaround_steps = turnaround_steps_hist_.mean();
    rep.p95_turnaround_steps = turnaround_steps_hist_.Percentile(0.95);
    rep.mean_ttft_ms = ttft_ms_hist_.mean();
    rep.p95_ttft_ms = ttft_ms_hist_.Percentile(0.95);
    rep.mean_turnaround_ms = turnaround_ms_hist_.mean();
    rep.p95_turnaround_ms = turnaround_ms_hist_.Percentile(0.95);
  }

  int64_t rows = 0;
  int64_t frag_tokens = 0;
  int64_t used_pages = 0;
  for (const auto& s : steps_) {
    rep.prefill_rows += s.prefill_rows;
    rep.decode_rows += s.decode_rows;
    rep.prefill_chunk_slices += s.prefill_chunk_slices;
    rows += s.batch_rows;
    rep.peak_batch_rows = std::max(rep.peak_batch_rows, s.batch_rows);
    rep.peak_sequences = std::max(rep.peak_sequences, s.running_sequences);
    rep.peak_used_pages = std::max(rep.peak_used_pages, s.kv_used_pages);
    rep.peak_shared_pages = std::max(rep.peak_shared_pages, s.shared_pages);
    rep.peak_host_pages = std::max(rep.peak_host_pages, s.host_pages);
    rep.cow_splits += s.cow_splits;
    used_pages += s.kv_used_pages;
    frag_tokens += s.kv_frag_tokens;
    rep.wall_ms += s.wall_ms;
    rep.est_compute_ms += s.est_compute_ms;
    rep.est_alltoall_ms += s.est_alltoall_ms;
    rep.est_overlap_saved_ms += s.est_overlap_saved_ms;
    rep.alltoall_bytes += s.alltoall_dispatch_bytes + s.alltoall_combine_bytes;
    rep.kv_traffic_bytes += s.kv_read_bytes + s.kv_write_bytes;
  }
  if (rep.est_compute_ms + rep.est_alltoall_ms > 0.0) {
    rep.est_alltoall_share = rep.est_alltoall_ms / (rep.est_compute_ms + rep.est_alltoall_ms);
  }
  if (rep.prefix_hit_tokens + rep.prefill_rows > 0) {
    rep.prefix_hit_rate = static_cast<double>(rep.prefix_hit_tokens) /
                          static_cast<double>(rep.prefix_hit_tokens + rep.prefill_rows);
  }
  if (rep.steps > 0) {
    rep.mean_step_ms = rep.wall_ms / static_cast<double>(rep.steps);
    rep.mean_batch_rows = static_cast<double>(rows) / static_cast<double>(rep.steps);
    rep.mean_frag_tokens = static_cast<double>(frag_tokens) / static_cast<double>(rep.steps);
    if (token_budget > 0) {
      rep.mean_occupancy = rep.mean_batch_rows / static_cast<double>(token_budget);
    }
    if (max_pages > 0) {
      rep.mean_page_utilization = static_cast<double>(used_pages) /
                                  static_cast<double>(rep.steps) /
                                  static_cast<double>(max_pages);
    }
  }
  if (rep.wall_ms > 0.0) {
    rep.tokens_per_second = static_cast<double>(rows) / (rep.wall_ms * 1e-3);
  }

  const auto imbalance = [](const std::vector<int64_t>& tokens) {
    int64_t sum = 0;
    int64_t max = 0;
    for (int64_t t : tokens) {
      sum += t;
      max = std::max(max, t);
    }
    if (sum <= 0 || tokens.empty()) {
      return 0.0;
    }
    return static_cast<double>(max) /
           (static_cast<double>(sum) / static_cast<double>(tokens.size()));
  };
  rep.expert_imbalance = imbalance(expert_tokens_);
  rep.shard_imbalance = imbalance(shard_tokens_);
  return rep;
}

namespace {

void AppendField(std::string& out, const char* key, double value, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  \"%s\": %.6f%s\n", key, value, last ? "" : ",");
  out += buf;
}

void AppendField(std::string& out, const char* key, int64_t value, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  \"%s\": %lld%s\n", key, static_cast<long long>(value),
                last ? "" : ",");
  out += buf;
}

void AppendField(std::string& out, const char* key, const std::vector<int64_t>& values,
                 bool last = false) {
  out += "  \"";
  out += key;
  out += "\": [";
  for (size_t i = 0; i < values.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%lld", i == 0 ? "" : ", ",
                  static_cast<long long>(values[i]));
    out += buf;
  }
  out += last ? "]\n" : "],\n";
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void AppendConfigField(std::string& out, const char* key, const std::string& value,
                       bool last = false) {
  out += "    \"";
  out += key;
  out += "\": ";
  AppendJsonString(out, value);
  out += last ? "\n" : ",\n";
}

void AppendConfigField(std::string& out, const char* key, int64_t value, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "    \"%s\": %lld%s\n", key, static_cast<long long>(value),
                last ? "" : ",");
  out += buf;
}

void AppendConfigField(std::string& out, const char* key, double value, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "    \"%s\": %.6g%s\n", key, value, last ? "" : ",");
  out += buf;
}

}  // namespace

std::string ServingReport::ToJson() const {
  std::string out = "{\n";
  AppendField(out, "schema_version", provenance.schema_version);
  out += "  \"config\": {\n";
  AppendConfigField(out, "model", provenance.model);
  AppendConfigField(out, "trace", provenance.trace);
  AppendConfigField(out, "seed", provenance.seed);
  AppendConfigField(out, "shards", provenance.shards);
  AppendConfigField(out, "placement", provenance.placement);
  AppendConfigField(out, "routing", provenance.routing);
  AppendConfigField(out, "policy", provenance.policy);
  AppendConfigField(out, "threads", provenance.threads);
  AppendConfigField(out, "token_budget", provenance.token_budget);
  AppendConfigField(out, "chunk_tokens", provenance.chunk_tokens);
  AppendConfigField(out, "page_tokens", provenance.page_tokens);
  AppendConfigField(out, "max_pages", provenance.max_pages);
  AppendConfigField(out, "prefix_cache", provenance.prefix_cache);
  AppendConfigField(out, "swap", provenance.swap);
  AppendConfigField(out, "host_pages", provenance.host_pages);
  AppendConfigField(out, "kernel_backend", provenance.kernel_backend);
  AppendConfigField(out, "llc_bytes", provenance.llc_bytes);
  AppendConfigField(out, "llc_bandwidth_gbps", provenance.llc_bandwidth_gbps);
  AppendConfigField(out, "dram_bandwidth_gbps", provenance.dram_bandwidth_gbps);
  AppendConfigField(out, "overlap", provenance.overlap);
  AppendConfigField(out, "chunk_policy", provenance.chunk_policy, /*last=*/true);
  out += "  },\n";
  AppendField(out, "requests_finished", requests_finished);
  AppendField(out, "requests_rejected", requests_rejected);
  AppendField(out, "requests_cancelled", requests_cancelled);
  AppendField(out, "requests_timed_out", requests_timed_out);
  AppendField(out, "requests_shed", requests_shed);
  AppendField(out, "steps", steps);
  AppendField(out, "prefill_rows", prefill_rows);
  AppendField(out, "decode_rows", decode_rows);
  AppendField(out, "prefill_chunk_slices", prefill_chunk_slices);
  AppendField(out, "chunked_prefill_requests", chunked_prefill_requests);
  AppendField(out, "streamed_rows", streamed_rows);
  AppendField(out, "wall_ms", wall_ms);
  AppendField(out, "mean_ttft_steps", mean_ttft_steps);
  AppendField(out, "p95_ttft_steps", p95_ttft_steps);
  AppendField(out, "mean_turnaround_steps", mean_turnaround_steps);
  AppendField(out, "p95_turnaround_steps", p95_turnaround_steps);
  AppendField(out, "mean_ttft_ms", mean_ttft_ms);
  AppendField(out, "p95_ttft_ms", p95_ttft_ms);
  AppendField(out, "mean_turnaround_ms", mean_turnaround_ms);
  AppendField(out, "p95_turnaround_ms", p95_turnaround_ms);
  AppendField(out, "mean_step_ms", mean_step_ms);
  AppendField(out, "tokens_per_second", tokens_per_second);
  AppendField(out, "mean_batch_rows", mean_batch_rows);
  AppendField(out, "mean_occupancy", mean_occupancy);
  AppendField(out, "peak_batch_rows", peak_batch_rows);
  AppendField(out, "peak_sequences", peak_sequences);
  AppendField(out, "preemptions", preemptions);
  AppendField(out, "peak_used_pages", peak_used_pages);
  AppendField(out, "mean_page_utilization", mean_page_utilization);
  AppendField(out, "mean_frag_tokens", mean_frag_tokens);
  AppendField(out, "prefix_hit_requests", prefix_hit_requests);
  AppendField(out, "prefix_hit_tokens", prefix_hit_tokens);
  AppendField(out, "prefix_hit_rate", prefix_hit_rate);
  AppendField(out, "cow_splits", cow_splits);
  AppendField(out, "peak_shared_pages", peak_shared_pages);
  AppendField(out, "swap_outs", swap_outs);
  AppendField(out, "swap_ins", swap_ins);
  AppendField(out, "swap_out_bytes", swap_out_bytes);
  AppendField(out, "swap_in_bytes", swap_in_bytes);
  AppendField(out, "est_swap_ms", est_swap_ms);
  AppendField(out, "peak_host_pages", peak_host_pages);
  AppendField(out, "expert_tokens", expert_tokens);
  AppendField(out, "expert_imbalance", expert_imbalance);
  AppendField(out, "shard_tokens", shard_tokens);
  AppendField(out, "shard_imbalance", shard_imbalance);
  AppendField(out, "est_compute_ms", est_compute_ms);
  AppendField(out, "est_alltoall_ms", est_alltoall_ms);
  AppendField(out, "est_overlap_saved_ms", est_overlap_saved_ms);
  AppendField(out, "est_alltoall_share", est_alltoall_share);
  AppendField(out, "alltoall_bytes", alltoall_bytes);
  AppendField(out, "kv_traffic_bytes", kv_traffic_bytes);
  AppendField(out, "injected_faults", injected_faults);
  AppendField(out, "fault_retries", fault_retries);
  AppendField(out, "fault_backoff_ms", fault_backoff_ms);
  AppendField(out, "swap_corruptions", swap_corruptions);
  AppendField(out, "shard_failovers", shard_failovers);
  AppendField(out, "watchdog_trips", watchdog_trips);
  AppendField(out, "autotune_lookups", autotune_lookups);
  AppendField(out, "autotune_cache_hits", autotune_cache_hits);
  AppendField(out, "autotune_default_ms", autotune_default_ms);
  AppendField(out, "autotune_tuned_ms", autotune_tuned_ms);
  AppendField(out, "autotune_speedup", autotune_speedup);
  out += "  \"request_timelines\": [";
  for (size_t i = 0; i < request_timelines.size(); ++i) {
    const RequestTimeline& tl = request_timelines[i];
    char buf[448];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"id\": %lld, \"prompt_len\": %lld, \"arrival_step\": %lld, "
                  "\"admit_step\": %lld, \"first_output_step\": %lld, \"finish_step\": %lld, "
                  "\"cancel_step\": %lld, \"timeout_step\": %lld, \"prefill_chunks\": %lld, "
                  "\"preemptions\": %lld, \"cached_prompt_tokens\": %lld, \"ttft_ms\": %.6f, "
                  "\"turnaround_ms\": %.6f}",
                  i == 0 ? "" : ",", static_cast<long long>(tl.id),
                  static_cast<long long>(tl.prompt_len),
                  static_cast<long long>(tl.arrival_step),
                  static_cast<long long>(tl.admit_step),
                  static_cast<long long>(tl.first_output_step),
                  static_cast<long long>(tl.finish_step),
                  static_cast<long long>(tl.cancel_step),
                  static_cast<long long>(tl.timeout_step),
                  static_cast<long long>(tl.prefill_chunks),
                  static_cast<long long>(tl.preemptions),
                  static_cast<long long>(tl.cached_prompt_tokens), tl.ttft_ms,
                  tl.turnaround_ms);
    out += buf;
  }
  out += request_timelines.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void ServingReport::StripWallClock() {
  wall_ms = 0.0;
  mean_step_ms = 0.0;
  tokens_per_second = 0.0;
  mean_ttft_ms = 0.0;
  p95_ttft_ms = 0.0;
  mean_turnaround_ms = 0.0;
  p95_turnaround_ms = 0.0;
  for (RequestTimeline& tl : request_timelines) {
    tl.ttft_ms = 0.0;
    tl.turnaround_ms = 0.0;
  }
}

void EngineMetrics::Print(const ServingReport& rep, std::FILE* out) {
  std::fprintf(out, "requests: %lld finished, %lld rejected, %lld cancelled\n",
               static_cast<long long>(rep.requests_finished),
               static_cast<long long>(rep.requests_rejected),
               static_cast<long long>(rep.requests_cancelled));
  if (rep.requests_timed_out > 0 || rep.requests_shed > 0) {
    std::fprintf(out, "degraded: %lld timed out (deadline), %lld shed (overload)\n",
                 static_cast<long long>(rep.requests_timed_out),
                 static_cast<long long>(rep.requests_shed));
  }
  if (rep.injected_faults > 0 || rep.watchdog_trips > 0) {
    std::fprintf(out,
                 "faults: %lld injected, %lld retried (%.3f ms backoff), %lld corrupt "
                 "swap pages caught, %lld shard failovers, %lld watchdog trips\n",
                 static_cast<long long>(rep.injected_faults),
                 static_cast<long long>(rep.fault_retries), rep.fault_backoff_ms,
                 static_cast<long long>(rep.swap_corruptions),
                 static_cast<long long>(rep.shard_failovers),
                 static_cast<long long>(rep.watchdog_trips));
  }
  std::fprintf(out, "steps: %lld (%lld prefill rows, %lld decode rows)\n",
               static_cast<long long>(rep.steps), static_cast<long long>(rep.prefill_rows),
               static_cast<long long>(rep.decode_rows));
  if (rep.prefill_chunk_slices > 0 || rep.streamed_rows > 0) {
    std::fprintf(out,
                 "streaming: %lld rows delivered incrementally; chunked prefill: %lld partial "
                 "slices across %lld requests\n",
                 static_cast<long long>(rep.streamed_rows),
                 static_cast<long long>(rep.prefill_chunk_slices),
                 static_cast<long long>(rep.chunked_prefill_requests));
  }
  std::fprintf(out,
               "latency: TTFT %.1f steps (p95 %.1f) / %.2f ms (p95 %.2f), turnaround %.1f "
               "steps (p95 %.1f) / %.2f ms (p95 %.2f), %.3f ms per step\n",
               rep.mean_ttft_steps, rep.p95_ttft_steps, rep.mean_ttft_ms, rep.p95_ttft_ms,
               rep.mean_turnaround_steps, rep.p95_turnaround_steps, rep.mean_turnaround_ms,
               rep.p95_turnaround_ms, rep.mean_step_ms);
  std::fprintf(out, "throughput: %.1f tokens/s over %.2f ms of forward time\n",
               rep.tokens_per_second, rep.wall_ms);
  std::fprintf(out, "batch: mean %.1f rows (%.0f%% of budget), peak %lld rows, "
               "peak concurrency %lld sequences\n",
               rep.mean_batch_rows, 100.0 * rep.mean_occupancy,
               static_cast<long long>(rep.peak_batch_rows),
               static_cast<long long>(rep.peak_sequences));
  std::fprintf(out,
               "kv-cache: %lld preemptions, peak %lld pages, mean utilization %.0f%%, "
               "mean fragmentation waste %.1f token slots\n",
               static_cast<long long>(rep.preemptions),
               static_cast<long long>(rep.peak_used_pages), 100.0 * rep.mean_page_utilization,
               rep.mean_frag_tokens);
  if (rep.prefix_hit_requests > 0 || rep.cow_splits > 0) {
    std::fprintf(out,
                 "prefix-cache: %lld hit admissions, %lld cached prompt tokens "
                 "(hit rate %.0f%%), %lld cow splits, peak %lld shared pages\n",
                 static_cast<long long>(rep.prefix_hit_requests),
                 static_cast<long long>(rep.prefix_hit_tokens), 100.0 * rep.prefix_hit_rate,
                 static_cast<long long>(rep.cow_splits),
                 static_cast<long long>(rep.peak_shared_pages));
  }
  if (rep.swap_outs > 0) {
    std::fprintf(out,
                 "swap: %lld out / %lld in, %.2f MiB out / %.2f MiB in, est %.3f ms on the "
                 "host link, peak %lld host pages\n",
                 static_cast<long long>(rep.swap_outs), static_cast<long long>(rep.swap_ins),
                 rep.swap_out_bytes / (1024.0 * 1024.0), rep.swap_in_bytes / (1024.0 * 1024.0),
                 rep.est_swap_ms, static_cast<long long>(rep.peak_host_pages));
  }
  if (rep.autotune_lookups > 0) {
    std::fprintf(out,
                 "autotune: %lld lookups (%lld cache hits), simulated SSMM %.3f ms tuned vs "
                 "%.3f ms default (%.2fx)\n",
                 static_cast<long long>(rep.autotune_lookups),
                 static_cast<long long>(rep.autotune_cache_hits), rep.autotune_tuned_ms,
                 rep.autotune_default_ms, rep.autotune_speedup);
  }
  if (rep.est_compute_ms + rep.est_alltoall_ms > 0.0) {
    std::fprintf(out,
                 "analytic: est forward %.3f ms (compute %.3f + all-to-all %.3f, %.0f%% "
                 "all-to-all), kv-page traffic %.2f MiB, all-to-all volume %.2f MiB\n",
                 rep.est_compute_ms + rep.est_alltoall_ms, rep.est_compute_ms,
                 rep.est_alltoall_ms, 100.0 * rep.est_alltoall_share,
                 rep.kv_traffic_bytes / (1024.0 * 1024.0),
                 rep.alltoall_bytes / (1024.0 * 1024.0));
  }
  if (rep.est_overlap_saved_ms > 0.0) {
    std::fprintf(out,
                 "overlap: decode/prefill + all-to-all pipelining saved est %.3f ms "
                 "(%.0f%% of the serial estimate)\n",
                 rep.est_overlap_saved_ms,
                 100.0 * rep.est_overlap_saved_ms /
                     std::max(1e-12, rep.est_compute_ms + rep.est_alltoall_ms));
  }
  if (rep.shard_tokens.size() > 1) {
    std::fprintf(out, "shard load (tokens/shard, imbalance %.2fx):", rep.shard_imbalance);
    for (int64_t t : rep.shard_tokens) {
      std::fprintf(out, " %lld", static_cast<long long>(t));
    }
    std::fprintf(out, "\n");
  }
  std::fprintf(out, "expert load (tokens/expert, imbalance %.2fx):", rep.expert_imbalance);
  for (int64_t t : rep.expert_tokens) {
    std::fprintf(out, " %lld", static_cast<long long>(t));
  }
  std::fprintf(out, "\n");
}

}  // namespace serving
}  // namespace samoyeds
