// Expert-parallel sharding for the serving engine.
//
// The paper's MoE serving story scales past one device by partitioning the
// expert pool: each simulated device ("shard") owns a subset of experts, a
// routed step's tokens are dispatched to the shards owning their experts
// (all-to-all #1), each shard runs its experts locally, and the weighted
// outputs travel back to the tokens' home shards (all-to-all #2). This
// module owns the *placement* side of that design:
//
//   * ExpertShardPlan — the expert -> shard map, built by one of three
//     strategies: round-robin (the Switch/DeepSpeed default), capacity-
//     balanced (bin-pack expert storage bytes so heterogeneous experts
//     don't skew device memory), and gate-statistics-aware (spread the
//     experts the router is biased toward across shards, so skewed traffic
//     doesn't converge on one device).
//   * SimCluster — one DeviceSpec per shard; the per-link interconnect
//     parameters ride on the DeviceSpecs themselves.
//   * ComputeAllToAllTraffic — the dispatch/combine volumes a RoutingPlan
//     induces under a placement, counting only (token-home, expert-shard)
//     pairs that actually cross shards. Batch tokens are data-parallel:
//     token t lives on the shard whose contiguous home range covers it.
//
// Placement never changes results: the engine folds expert outputs in a
// fixed global-expert order regardless of which shard ran them (see
// expert_pool.h), so any plan is bit-identical to unsharded execution.
// Placement only moves load between simulated devices — which is exactly
// what the analytic timing estimate (max-over-shards compute + all-to-all)
// measures.

#ifndef SAMOYEDS_SRC_SERVING_SHARD_PLAN_H_
#define SAMOYEDS_SRC_SERVING_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/moe/router.h"
#include "src/simgpu/device_spec.h"
#include "src/simgpu/traffic.h"
#include "src/tensor/matrix.h"

namespace samoyeds {
namespace serving {

// L2 norm of each router gate row — the expected-load proxy gate-statistics
// placement balances (larger rows produce larger logit variance and win
// top-k more often). Exposed so multi-layer callers can sum per-layer norms
// before ExpertShardPlan::FromLoads.
std::vector<double> GateRowNorms(const MatrixF& router_gate);

enum class ShardPlacement {
  kRoundRobin,        // expert e -> shard e % shards
  kCapacityBalanced,  // bin-pack expert storage bytes (LPT greedy)
  kGateStats,         // spread router-favored experts (LPT over gate norms)
};

const char* ShardPlacementName(ShardPlacement p);
// Accepts the CLI spellings: round-robin | capacity | gate-stats.
bool ParseShardPlacement(const char* name, ShardPlacement* out);

class ExpertShardPlan {
 public:
  ExpertShardPlan() = default;  // empty plan: no experts, zero shards

  static ExpertShardPlan RoundRobin(int num_experts, int num_shards);
  // Longest-processing-time greedy over per-expert weight storage: experts
  // in descending byte order (ties: lower id first) each go to the least
  // loaded shard (ties: lowest shard id). Deterministic.
  static ExpertShardPlan CapacityBalanced(const std::vector<int64_t>& expert_bytes,
                                          int num_shards);
  // The same LPT greedy over arbitrary expected loads (gate statistics,
  // historical token counts, ...).
  static ExpertShardPlan FromLoads(const std::vector<double>& loads, int num_shards);
  // Loads from the router itself: the L2 norm of each expert's gate row.
  // Larger rows produce larger logit variance and win top-k more often
  // (exactly how bench/serving_throughput induces skew), so spreading them
  // balances expected traffic before any has been served.
  static ExpertShardPlan GateStatsAware(const MatrixF& router_gate, int num_shards);

  int num_shards() const { return static_cast<int>(experts_on_.size()); }
  int num_experts() const { return static_cast<int>(shard_of_.size()); }
  int shard_of(int expert) const { return shard_of_[static_cast<size_t>(expert)]; }
  const std::vector<int>& shard_of_expert() const { return shard_of_; }
  // Experts placed on `shard`, ascending ids. May be empty (more shards
  // than experts, or every hot expert packed elsewhere).
  const std::vector<int>& experts_on(int shard) const {
    return experts_on_[static_cast<size_t>(shard)];
  }
  // Every expert placed exactly once, shard ids in range.
  bool IsValid() const;

 private:
  ExpertShardPlan(std::vector<int> shard_of, int num_shards);
  friend ExpertShardPlan FailoverPlan(const ExpertShardPlan& plan, int dead_shard,
                                      const std::vector<double>& expert_loads);

  std::vector<int> shard_of_;
  std::vector<std::vector<int>> experts_on_;
};

// Shard-failure re-placement: a plan over `plan.num_shards() - 1` shards in
// which every surviving shard keeps its experts (ids above `dead_shard`
// shift down by one) and only the dead shard's orphans move — LPT greedy
// over `expert_loads` (observed per-expert token counts; uniform when empty
// or all-zero) against the survivors' existing loads. Minimal-movement by
// construction: re-placing everything from scratch would imply reshuffling
// live experts' (simulated) weights mid-run. Correctness is placement-
// independent (fixed global fold order), so the failover plan is still
// bit-identical to unsharded execution.
ExpertShardPlan FailoverPlan(const ExpertShardPlan& plan, int dead_shard,
                             const std::vector<double>& expert_loads);

// Data-parallel home shard of the batch: shard s owns the contiguous token
// range [ShardHomeBegin(s), ShardHomeBegin(s + 1)); ranges partition
// [0, tokens) with sizes differing by at most one.
int64_t ShardHomeBegin(int shard, int64_t tokens, int num_shards);
// Home shard of one batch token (the shard whose range covers it).
int TokenHomeShard(int64_t token, int64_t tokens, int num_shards);
// Fills home[t] for every batch token (reuses `home`'s capacity).
void FillTokenHomeShards(int64_t tokens, int num_shards, std::vector<int>& home);

// A simulated multi-device serving cluster: one DeviceSpec per shard.
struct SimCluster {
  std::vector<DeviceSpec> devices;

  static SimCluster Homogeneous(const DeviceSpec& device, int num_shards);

  int num_shards() const { return static_cast<int>(devices.size()); }
  const DeviceSpec& device(int shard) const {
    return devices[static_cast<size_t>(shard)];
  }
};

// Cross-shard all-to-all volumes for one routed layer. Dispatch moves each
// routed (token, expert) activation row to the expert's shard; combine
// moves the weighted output row back. Same-shard pairs are free. The
// max_shard_* fields are the busiest single shard's max(sent, received)
// bytes for the phase — what a full-duplex per-link roofline serializes on
// (TimingModel::InterconnectPhaseMs).
struct AllToAllTraffic {
  double dispatch_bytes = 0.0;
  double combine_bytes = 0.0;
  double max_shard_dispatch_bytes = 0.0;
  double max_shard_combine_bytes = 0.0;

  // Folds the volumes into a kernel-style traffic report (the per-step
  // aggregation the serving metrics carry).
  void AddTo(TrafficReport& report) const {
    report.alltoall_dispatch_bytes += dispatch_bytes;
    report.alltoall_combine_bytes += combine_bytes;
  }
};

// Reusable buffers for ComputeAllToAllTraffic (steady-state serving calls
// it per layer per step; reuse keeps the step loop allocation-quiet).
struct AllToAllScratch {
  std::vector<int> home;
  std::vector<double> sent;
  std::vector<double> received;
};

// `bytes_per_value` defaults to bf16 activations on the wire.
AllToAllTraffic ComputeAllToAllTraffic(const RoutingPlan& plan,
                                       const ExpertShardPlan& placement, int64_t hidden,
                                       int64_t bytes_per_value, AllToAllScratch& scratch);
AllToAllTraffic ComputeAllToAllTraffic(const RoutingPlan& plan,
                                       const ExpertShardPlan& placement, int64_t hidden,
                                       int64_t bytes_per_value = 2);

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_SHARD_PLAN_H_
