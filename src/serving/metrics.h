// Serving metrics collector: request latency (TTFT, per-output-token),
// throughput, batch occupancy, preemption activity, paged-KV-cache
// utilization, and per-expert routed-token load.
//
// Latencies are tracked both in engine steps (deterministic, what tests
// assert on) and wall-clock milliseconds (what the CLI and bench report).

#ifndef SAMOYEDS_SRC_SERVING_METRICS_H_
#define SAMOYEDS_SRC_SERVING_METRICS_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/moe/router.h"
#include "src/obs/metrics.h"

namespace samoyeds {
namespace serving {

struct RequestMetrics {
  int64_t prompt_len = 0;
  int64_t new_tokens = 0;
  int64_t arrival_step = -1;
  int64_t admit_step = -1;         // latest admission (readmissions overwrite)
  int64_t first_output_step = -1;  // prefill completed: first token streamed
  int64_t finish_step = -1;
  int64_t cancel_step = -1;        // Cancel() terminated the session
  int64_t timeout_step = -1;       // deadline expiry terminated the session
  int64_t preemptions = 0;         // times evicted (swapped out or recomputed)
  int64_t prefill_chunks = 0;      // prefill slices consumed (1 = one-shot)
  int64_t streamed_rows = 0;       // rows delivered incrementally (cursor/callback)
  int64_t cached_prompt_tokens = 0;  // prefix-cache tokens skipped at admission
  double arrival_ms = 0.0;
  double first_output_ms = 0.0;
  double finish_ms = 0.0;
};

struct StepMetrics {
  int64_t step = 0;
  int64_t batch_rows = 0;
  int64_t prefill_rows = 0;
  int64_t decode_rows = 0;
  // Prefill slices this iteration that were *partial* prompts — a chunked
  // prefill in flight (0 for every step of an unchunked run).
  int64_t prefill_chunk_slices = 0;
  int64_t running_sequences = 0;
  int64_t kv_used_pages = 0;   // pages held right after the forward
  int64_t kv_frag_tokens = 0;  // allocated-but-unused token slots (tail pages)
  double wall_ms = 0.0;        // forward duration (measured)

  // Analytic estimate of the same forward on the simulated cluster:
  // max-over-shards device time (MoE SSMM chains + the step's KV-page
  // traffic) plus interconnect all-to-all time, and the volumes that fed
  // the model. Single-shard runs keep est_alltoall_ms and the all-to-all
  // bytes at zero.
  double est_compute_ms = 0.0;
  double est_alltoall_ms = 0.0;
  double alltoall_dispatch_bytes = 0.0;
  double alltoall_combine_bytes = 0.0;
  double kv_read_bytes = 0.0;   // paged-KV gather traffic charged this step
  double kv_write_bytes = 0.0;  // appended cache rows

  // Prefix-cache / swap activity this step (all zero with both features off).
  int64_t prefix_hit_tokens = 0;  // prompt tokens skipped by admissions
  int64_t cow_splits = 0;         // copy-on-write page splits
  int64_t shared_pages = 0;       // pages with refcount >= 2 after the step
  int64_t host_pages = 0;         // pages parked in the host swap tier
  double swap_out_bytes = 0.0;    // KV bytes moved device -> host
  double swap_in_bytes = 0.0;     // KV bytes restored host -> device
  double est_swap_ms = 0.0;       // host-link transfer time for both

  // Overlapped-execution savings in the analytic model: serial estimate
  // minus the pipelined estimate where prefill-chunk compute runs alongside
  // resident decode and all-to-all transfer hides under compute. Zero when
  // overlap is off or the step had nothing to overlap; never negative (the
  // pipelined schedule can only remove exposed time, not add it).
  double est_overlap_saved_ms = 0.0;

  // Serial (non-overlapped) estimate: the deterministic baseline every
  // existing assertion and bench gate is written against.
  double est_total_ms() const { return est_compute_ms + est_alltoall_ms; }
  // What the step costs with overlap applied.
  double est_overlapped_total_ms() const { return est_total_ms() - est_overlap_saved_ms; }
};

// Where a report came from: schema version plus the run configuration, so a
// `BENCH_*.json` or `--report-json` artifact is self-describing long after
// the flags that produced it are forgotten. Emitted as the leading
// "schema_version" / "config" keys of `ServingReport::ToJson`.
struct ReportProvenance {
  int64_t schema_version = 1;
  std::string model;  // model-shape echo ("layers=2 experts=8 hidden=32 ...")
  std::string trace;  // workload description ("poisson n=24" / trace file)
  int64_t seed = 0;
  int64_t shards = 1;
  std::string placement;  // shard placement policy name
  std::string routing;    // routing algorithm name
  std::string policy;     // scheduler admission policy name
  int64_t threads = 0;
  int64_t token_budget = 0;
  int64_t chunk_tokens = 0;  // 0 = prefill never chunked
  int64_t page_tokens = 0;
  int64_t max_pages = 0;
  int64_t prefix_cache = 0;  // 1 = radix prefix sharing enabled
  int64_t swap = 0;          // 1 = swap-style preemption enabled
  int64_t host_pages = 0;    // host swap tier budget (0 = unbounded)
  // SSMM inner-loop backend the run executed with (resolved, not as
  // requested: "scalar" | "avx2" | "avx512" | "neon") and the memory-
  // hierarchy parameters the cache-aware autotuner modeled against. The
  // backend names the accumulation contract the outputs obey (scalar =
  // bit-exact oracle; SIMD = fused multiply-adds, ULP-bounded vs fp64).
  std::string kernel_backend;
  int64_t llc_bytes = 0;            // modeled last-level-cache capacity
  double llc_bandwidth_gbps = 0.0;  // modeled LLC bandwidth
  double dram_bandwidth_gbps = 0.0; // modeled DRAM bandwidth
  // Overlapped decode/prefill execution (1 = on) and the prefill chunk
  // sizing policy ("fixed" | "decode-priority") the run scheduled with.
  int64_t overlap = 0;
  std::string chunk_policy;
};

// One request's lifecycle in engine steps plus its wall-clock latency pair —
// the JSON mirror of the trace's per-request async span (same steps the
// "request" track instants carry), emitted as the "request_timelines" array
// of `ServingReport::ToJson`. Unset step markers stay -1 (e.g. a cancelled
// session's finish_step).
struct RequestTimeline {
  int64_t id = 0;
  int64_t prompt_len = 0;
  int64_t arrival_step = -1;
  int64_t admit_step = -1;
  int64_t first_output_step = -1;
  int64_t finish_step = -1;
  int64_t cancel_step = -1;
  int64_t timeout_step = -1;
  int64_t prefill_chunks = 0;
  int64_t preemptions = 0;
  int64_t cached_prompt_tokens = 0;  // prefix-cache tokens skipped at admission
  double ttft_ms = 0.0;        // 0 when no first output was produced
  double turnaround_ms = 0.0;  // 0 unless the request finished
};

// Aggregates over one engine run.
struct ServingReport {
  int64_t requests_finished = 0;
  int64_t requests_rejected = 0;
  int64_t requests_cancelled = 0;
  int64_t requests_timed_out = 0;  // deadline expiries (kTimedOut)
  int64_t requests_shed = 0;       // overload-control drops (kShedded)
  int64_t steps = 0;
  int64_t prefill_rows = 0;
  int64_t decode_rows = 0;
  // Chunked prefill activity: partial-prompt prefill slices across the run,
  // requests whose prefill spanned more than one iteration, and rows
  // delivered through the streaming session surface (cursor or callback).
  int64_t prefill_chunk_slices = 0;
  int64_t chunked_prefill_requests = 0;
  int64_t streamed_rows = 0;
  double wall_ms = 0.0;
  double mean_ttft_steps = 0.0;
  double p95_ttft_steps = 0.0;
  double mean_turnaround_steps = 0.0;  // arrival -> finish, inclusive
  double p95_turnaround_steps = 0.0;
  double mean_ttft_ms = 0.0;
  double p95_ttft_ms = 0.0;  // wall-clock, from the log-bucketed histogram
  double mean_turnaround_ms = 0.0;
  double p95_turnaround_ms = 0.0;
  double mean_step_ms = 0.0;
  double tokens_per_second = 0.0;       // (prefill + decode rows) / wall time
  double mean_batch_rows = 0.0;
  double mean_occupancy = 0.0;          // batch rows / token budget
  int64_t peak_batch_rows = 0;
  int64_t peak_sequences = 0;           // max concurrently resident sequences
  int64_t preemptions = 0;              // evictions under page pressure
  int64_t peak_used_pages = 0;
  double mean_page_utilization = 0.0;   // used pages / page budget (paged only)
  double mean_frag_tokens = 0.0;        // fragmentation waste per step

  // Prefix-sharing radix cache (zero with --prefix-cache off).
  int64_t prefix_hit_requests = 0;  // admissions that reused a cached prefix
  int64_t prefix_hit_tokens = 0;    // prompt tokens served from the cache
  // hit tokens / (hit tokens + prefill rows actually computed).
  double prefix_hit_rate = 0.0;
  int64_t cow_splits = 0;           // copy-on-write page splits across the run
  int64_t peak_shared_pages = 0;    // max pages mapped by >1 holder

  // Swap-style preemption (zero with --swap off; evictions then recompute).
  int64_t swap_outs = 0;
  int64_t swap_ins = 0;
  double swap_out_bytes = 0.0;
  double swap_in_bytes = 0.0;
  double est_swap_ms = 0.0;         // modeled host-link transfer time, both ways
  int64_t peak_host_pages = 0;      // max pages parked in the host tier
  std::vector<int64_t> expert_tokens;   // routed tokens per expert, all layers
  double expert_imbalance = 0.0;        // max / mean of expert_tokens

  // Per-request lifecycle summaries, ascending id (rejected requests are
  // dropped at rejection time and do not appear).
  std::vector<RequestTimeline> request_timelines;

  // Expert-parallel sharding (single-shard runs leave these trivial).
  std::vector<int64_t> shard_tokens;    // routed tokens per shard, all layers
  double shard_imbalance = 0.0;         // max / mean of shard_tokens
  double est_compute_ms = 0.0;          // Σ per-step max-over-shards estimates
  double est_alltoall_ms = 0.0;         // Σ per-step interconnect estimates
  double est_overlap_saved_ms = 0.0;    // Σ per-step pipelining savings
  double est_alltoall_share = 0.0;      // alltoall / (compute + alltoall)
  double alltoall_bytes = 0.0;          // Σ dispatch + combine volume
  double kv_traffic_bytes = 0.0;        // Σ KV-page gather + append volume

  // Fault injection + degradation activity (all zero on fault-free runs).
  int64_t injected_faults = 0;    // FaultInjector fires across the run
  int64_t fault_retries = 0;      // transient KV/swap failures retried
  double fault_backoff_ms = 0.0;  // modeled backoff time charged to retries
  int64_t swap_corruptions = 0;   // checksum mismatches caught at swap-in
  int64_t shard_failovers = 0;    // shard deaths absorbed by re-placement
  int64_t watchdog_trips = 0;     // liveness watchdog stall detections

  // SSMM autotuner activity (zero when --autotune is off).
  int64_t autotune_lookups = 0;      // per-layer tile-config resolutions
  int64_t autotune_cache_hits = 0;   // resolved from the per-shape cache
  double autotune_default_ms = 0.0;  // simulated kernel time, default config
  double autotune_tuned_ms = 0.0;    // simulated kernel time, tuned configs
  // default / tuned simulated time; 1.0 when autotuning never ran.
  double autotune_speedup = 0.0;

  // Run provenance, emitted first in ToJson. Summarize leaves the config
  // fields default; ServingEngine::Report and the CLI fill them in.
  ReportProvenance provenance;

  // Machine-readable form of the whole report (one JSON object; arrays for
  // the per-expert/per-shard histograms) — what `samoyeds_cli serve
  // --report-json=FILE` writes so sweeps never scrape the printed summary.
  std::string ToJson() const;

  // Zeroes every wall-clock-derived field (wall_ms, tokens/s, the ms latency
  // stats, per-timeline ms pairs), leaving only deterministic step counts and
  // analytic estimates — after which two runs of the same trace + seed +
  // fault schedule must produce byte-identical ToJson() output. The chaos
  // reproducibility gate diffs exactly this.
  void StripWallClock();
};

class EngineMetrics {
 public:
  EngineMetrics() : start_(Clock::now()) {}

  void OnArrival(int64_t id, int64_t step, int64_t prompt_len, int64_t new_tokens);
  void OnAdmit(int64_t id, int64_t step);
  void OnReject(int64_t id);
  void OnFirstOutput(int64_t id, int64_t step);
  void OnFinish(int64_t id, int64_t step);
  void OnCancel(int64_t id, int64_t step);
  // Deadline expiry terminated the session at `step`.
  void OnTimeout(int64_t id, int64_t step);
  // Overload control dropped the request (which may never have reached
  // OnArrival — shed-at-submit keeps no timeline entry).
  void OnShed(int64_t id, int64_t step);
  void OnPreempt(int64_t id, int64_t step);
  // Admission mapped `tokens` cached prefix tokens instead of prefilling them.
  void OnPrefixHit(int64_t id, int64_t step, int64_t tokens);
  // A preemption moved `bytes` of KV to the host tier (est_ms of link time)
  // instead of discarding it; OnSwapIn is the restore on re-admission.
  void OnSwapOut(int64_t id, int64_t step, double bytes, double est_ms);
  void OnSwapIn(int64_t id, int64_t step, double bytes, double est_ms);
  // One prefill slice consumed for `id` (chunked prefills record several).
  void OnPrefillSlice(int64_t id);
  // `rows` output rows delivered to the session (cursor drain or callback).
  void OnRowsDelivered(int64_t id, int64_t rows);
  void OnStep(const StepMetrics& step);
  // Accumulates one routed layer's per-expert token counts.
  void OnRoutingPlan(const RoutingPlan& plan);
  // Accumulates one step's per-shard routed token counts (all layers).
  void OnShardTokens(const std::vector<int64_t>& shard_tokens);
  // Records one autotune resolution: simulated default-config vs tuned time
  // for this layer's SSMM shape, and whether the per-shape cache hit.
  void OnAutotune(double default_ms, double tuned_ms, bool cache_hit);

  // Accessors return snapshots taken under the collector lock: the async
  // server's client threads read these (Poll paths, tests, the bench) while
  // the driver thread is still mutating inside Step(). A by-reference view
  // into live containers would be a data race the moment ingress went
  // multi-threaded, so every reader pays for a copy instead.
  std::vector<StepMetrics> steps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return steps_;
  }
  std::map<int64_t, RequestMetrics> requests() const {
    std::lock_guard<std::mutex> lock(mu_);
    return requests_;
  }
  // Routed tokens per expert so far (all layers) — the observed loads shard
  // failover re-balances orphaned experts against.
  std::vector<int64_t> expert_tokens() const {
    std::lock_guard<std::mutex> lock(mu_);
    return expert_tokens_;
  }
  // Every eviction as (request id, step), in order — the record tests replay
  // to assert eviction-order determinism.
  std::vector<std::pair<int64_t, int64_t>> preemption_log() const {
    std::lock_guard<std::mutex> lock(mu_);
    return preemption_log_;
  }

  // `max_pages` == 0 (monolithic accounting) leaves page utilization at 0.
  ServingReport Summarize(int64_t token_budget, int64_t max_pages = 0) const;
  static void Print(const ServingReport& report, std::FILE* out);

 private:
  using Clock = std::chrono::steady_clock;
  double NowMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  Clock::time_point start_;
  // Guards every container and counter below. On* hooks may fire from the
  // engine driver thread and the overlap helper thread concurrently, and the
  // snapshot accessors/Summarize read from arbitrary client threads.
  mutable std::mutex mu_;
  std::map<int64_t, RequestMetrics> requests_;
  // Latency sketches, fed at OnFinish/OnStep: the step-count pairs stay
  // exact (linear histogram region), the ms pairs record at 1 µs resolution.
  obs::Histogram ttft_steps_hist_{1.0};
  obs::Histogram turnaround_steps_hist_{1.0};
  obs::Histogram ttft_ms_hist_{1000.0};
  obs::Histogram turnaround_ms_hist_{1000.0};
  std::vector<StepMetrics> steps_;
  std::vector<std::pair<int64_t, int64_t>> preemption_log_;
  std::vector<int64_t> expert_tokens_;
  std::vector<int64_t> shard_tokens_;
  int64_t rejected_ = 0;
  int64_t cancelled_ = 0;
  int64_t timed_out_ = 0;
  int64_t shed_ = 0;
  int64_t prefix_hit_requests_ = 0;
  int64_t prefix_hit_tokens_ = 0;
  int64_t swap_outs_ = 0;
  int64_t swap_ins_ = 0;
  double swap_out_bytes_ = 0.0;
  double swap_in_bytes_ = 0.0;
  double est_swap_ms_ = 0.0;
  int64_t autotune_lookups_ = 0;
  int64_t autotune_cache_hits_ = 0;
  double autotune_default_ms_ = 0.0;
  double autotune_tuned_ms_ = 0.0;
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_METRICS_H_
