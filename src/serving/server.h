// Async serving front-end: a background driver thread running the engine's
// Step() loop while client threads Submit / Cancel / Poll concurrently.
//
// ServingEngine is single-threaded by contract: every session-surface call
// must run on the engine thread. AsyncServer restores a multi-client surface
// on top of that contract with a lock-protected ingress *mailbox*: client
// threads enqueue operations (submit / cancel) under a mutex, and the driver
// thread drains the mailbox at step boundaries — between one Step() and the
// next — applying every operation in FIFO order before stepping again. The
// engine itself is only ever touched by the driver thread (or, while the
// driver is not running, by at most one client at a time under the same
// mutex), so no engine-internal state needs additional locking.
//
// Determinism contract. With ServerClock::kVirtual and all submissions
// enqueued before Start(), the driver drains the whole mailbox in one batch
// and applies it in submission order, then steps to drain — byte-for-byte
// the same schedule as calling engine.Submit() in a loop followed by
// RunUntilDrained(). The synchronous engine therefore stays the bit-exact
// oracle for the async server (async_server_test.cc pins this at every
// thread/shard/chunk combination). Under ServerClock::kWall, arrival steps
// are stamped from the engine's live step counter at drain time, so the
// schedule depends on real interleaving; per-row *outputs* remain
// batch-composition-independent under top-k routing, but which step serves
// which row does not.
//
// Backpressure. A bounded mailbox (ServerConfig::mailbox_capacity > 0)
// composes with the engine's priority shedding: when a submit arrives at a
// full mailbox, the lowest-priority *pending* submission strictly below the
// arrival's class is shed (its session records kShedded without ever
// reaching the engine); if no such victim exists the arrival itself is shed
// and Submit() returns false. This mirrors RequestQueue's ingress policy one
// layer earlier, so overload never grows the mailbox without bound.
#ifndef SAMOYEDS_SRC_SERVING_SERVER_H_
#define SAMOYEDS_SRC_SERVING_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serving/engine.h"
#include "src/serving/request.h"
#include "src/tensor/matrix.h"

namespace samoyeds {
namespace serving {

// Arrival-time model for submissions drained from the mailbox.
enum class ServerClock {
  // Keep each Request's submitted arrival_step. Deterministic: the schedule
  // is a pure function of the submitted workload, independent of wall time.
  kVirtual,
  // Stamp arrival_step = engine.current_step() when the driver drains the
  // submission — wall-clock arrivals quantized to step boundaries.
  kWall,
};

const char* ServerClockName(ServerClock c);
// Parses "virtual" / "wall". Returns false (out untouched) otherwise.
bool ParseServerClock(const char* text, ServerClock* out);

struct ServerConfig {
  ServerClock clock = ServerClock::kVirtual;
  // Max operations the ingress mailbox holds before priority shedding kicks
  // in (see file comment). 0 = unbounded (never sheds at the server layer).
  int64_t mailbox_capacity = 0;
};

// Snapshot of one session as seen through the server. `new_rows` carries the
// output rows finalized since this client's previous Poll (the poll cursor
// advances past them); `delivered_rows` is the cursor after this poll.
struct ServerPollResult {
  bool known = false;  // false: id was never submitted through this server
  bool terminal = false;
  RequestStatus status = RequestStatus::kQueued;
  std::string reason;  // terminal reason (empty for kFinished / non-terminal)
  MatrixF new_rows;
  int64_t delivered_rows = 0;
};

class AsyncServer {
 public:
  // The engine must outlive the server and must not be touched by anyone
  // else between Start() and Stop().
  explicit AsyncServer(ServingEngine& engine, ServerConfig config = {});
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  // Launches the driver thread; it immediately drains any submissions
  // buffered while the server was stopped, in FIFO order. No-op if already
  // running.
  void Start();

  // Blocks until the engine has drained (no queued or resident work) and the
  // mailbox is empty. Returns immediately if the driver is not running.
  void Drain();

  // Stops the driver after the in-flight step completes and joins it.
  // Remaining mailbox operations are applied (so blocked Cancel() callers
  // always unblock) but not stepped; call Drain() first for a clean finish.
  void Stop();

  // Thread-safe. Enqueues the request; false if the id was already submitted
  // through this server or the submission was shed by mailbox backpressure
  // (the session still exists and polls kShedded). Submissions made while
  // the driver is stopped buffer in the mailbox until Start().
  bool Submit(Request request);

  // Thread-safe, blocking: waits until the cancel applies at the next step
  // boundary and returns the verdict — kCancelled (this includes a
  // submission caught while still in the mailbox, which cancels without
  // reaching the engine), kAlreadyTerminal, or kUnknownId (never
  // submitted). When the driver is stopped the cancel applies inline.
  CancelOutcome Cancel(int64_t id);

  // Thread-safe, non-blocking snapshot; known == false for ids never
  // submitted through this server.
  ServerPollResult Poll(int64_t id);

  // Blocks until the session reaches a terminal status, then returns the
  // final poll (draining any undelivered rows). known == false immediately
  // for unknown ids.
  ServerPollResult WaitTerminal(int64_t id);

  bool running() const;
  int64_t steps() const;               // Step() calls issued by the driver
  int64_t shed_submits() const;        // submissions shed by the mailbox
  int64_t peak_mailbox_depth() const;  // high-water mark at drain points

 private:
  struct CancelTicket {
    bool done = false;
    CancelOutcome outcome = CancelOutcome::kUnknownId;
  };
  struct Op {
    bool is_cancel = false;
    Request request;              // submit ops
    int64_t cancel_id = 0;        // cancel ops
    std::shared_ptr<CancelTicket> ticket;
  };
  // Server-side session state, fed by the engine's OnRows callback on the
  // driver thread. Records are never erased: Poll stays answerable (and
  // distinct from "unknown id") after retirement.
  struct SessionRecord {
    std::vector<float> rows;  // delivered output rows, row-major
    int64_t polled_rows = 0;  // client cursor, in rows
    RequestStatus status = RequestStatus::kQueued;
    std::string reason;
    bool terminal = false;
  };

  void DriverLoop();
  // Applies drained ops to the engine in FIFO order. Must run on the thread
  // that currently owns the engine; takes rec_mu_ internally, never mu_.
  void ApplyOps(std::vector<Op>& ops);
  // Finalizes records whose engine status went terminal without a terminal
  // delta (admission-time rejection). Engine-thread only.
  void SweepTerminal();
  // Require rec_mu_ held.
  ServerPollResult MakePollResultLocked(SessionRecord& rec);
  void FinalizeRecordLocked(SessionRecord& rec, RequestStatus status,
                            std::string reason);

  ServingEngine& engine_;
  const ServerConfig config_;

  // Two-lock split, ordered mu_ -> rec_mu_ (never the reverse):
  //  - mu_ guards the mailbox, counters, and lifecycle flags. The driver
  //    applies ops and steps the engine OUTSIDE mu_.
  //  - rec_mu_ guards records_ / live_ids_ / cancel tickets. The engine's
  //    OnRows callback takes rec_mu_ only, which is what makes the inline
  //    (driver-not-running) path — engine calls made while holding mu_ —
  //    deadlock-free.
  // The engine itself is unguarded by design: only one thread ever touches
  // it (the driver while running; otherwise one client serialized by mu_).
  mutable std::mutex mu_;
  std::condition_variable driver_cv_;  // wakes the parked driver
  std::condition_variable drain_cv_;   // driver went idle (mu_)
  std::vector<Op> mailbox_;
  int64_t pending_submits_ = 0;  // submit ops currently in mailbox_
  bool running_ = false;
  bool stop_ = false;
  bool idle_ = false;  // driver parked: engine drained, mailbox empty
  int64_t steps_ = 0;
  int64_t shed_submits_ = 0;
  int64_t peak_mailbox_depth_ = 0;

  mutable std::mutex rec_mu_;
  std::condition_variable client_cv_;  // record/ticket updates (rec_mu_)
  std::map<int64_t, SessionRecord> records_;
  std::vector<int64_t> live_ids_;  // submitted, record not yet terminal

  std::thread driver_;
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_SERVER_H_
