#include "src/serving/expert_pool.h"

#include <cassert>
#include <utility>

#include "src/moe/expert.h"

namespace samoyeds {
namespace serving {

ExpertPool::ExpertPool(int threads) {
  if (threads <= 1) {
    return;  // inline mode
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExpertPool::~ExpertPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ExpertPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ExpertPool::WaitIdle() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ExpertPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

MatrixF ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                   const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                   Activation act) {
  assert(plan.tokens == x.rows());
  const size_t num_experts = w.experts.size();
  const size_t num_shared = w.shared_experts.size();

  // Each task writes only its own slot; no synchronization beyond WaitIdle.
  std::vector<MatrixF> expert_out(num_experts);
  std::vector<Selection> expert_sel(num_experts);
  std::vector<MatrixF> shared_out(num_shared);

  for (size_t e = 0; e < num_experts; ++e) {
    const Selection sel = plan.SelectionForExpert(static_cast<int>(e));
    if (sel.selected() == 0) {
      continue;
    }
    expert_sel[e] = sel;
    pool.Submit([&x, &w, &expert_out, &expert_sel, act, e] {
      expert_out[e] =
          ExpertForwardSamoyeds(x, w.experts[e], expert_sel[e], act);
    });
  }
  const Selection all = Selection::All(x.rows());
  for (size_t s = 0; s < num_shared; ++s) {
    pool.Submit([&x, &w, &shared_out, &all, act, s] {
      shared_out[s] = ExpertForwardSamoyeds(x, w.shared_experts[s], all, act);
    });
  }
  pool.WaitIdle();

  // Fixed-order accumulation keeps the result independent of thread timing.
  MatrixF out(x.rows(), x.cols());
  for (size_t e = 0; e < num_experts; ++e) {
    if (expert_out[e].empty()) {
      continue;
    }
    MoeScatterAdd(expert_out[e], expert_sel[e], plan, static_cast<int>(e), out);
  }
  for (size_t s = 0; s < num_shared; ++s) {
    for (int64_t r = 0; r < out.rows(); ++r) {
      for (int64_t c = 0; c < out.cols(); ++c) {
        out(r, c) += shared_out[s](r, c);
      }
    }
  }
  return out;
}

}  // namespace serving
}  // namespace samoyeds
