#include "src/serving/expert_pool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>
#include <utility>

#include "src/moe/expert.h"
#include "src/obs/tracer.h"

namespace samoyeds {
namespace serving {

namespace {

thread_local int t_slot = 0;

// Number of contiguous token tiles one expert's work splits into: enough to
// spread a hot (skewed) expert across its shard's workers, but never so
// many that tiny slices drown in scheduling overhead. The split never
// changes results — per-token outputs are independent of tile grouping —
// only load balance.
int64_t NumTiles(int64_t tokens, int threads) {
  constexpr int64_t kMinTileTokens = 16;
  if (tokens <= 0) {
    return 0;
  }
  if (threads <= 1) {
    return 1;
  }
  return std::min<int64_t>(threads, (tokens + kMinTileTokens - 1) / kMinTileTokens);
}

}  // namespace

int ExpertPool::CurrentSlot() { return t_slot; }

bool ExpertPool::Serves(int worker, int shard, int threads, int shards) {
  // threads >= shards: workers pin round-robin, one shard each. Otherwise
  // each worker serves the shards that hash to it, so no queue is orphaned.
  return threads >= shards ? worker % shards == shard : shard % threads == worker;
}

ExpertPool::ExpertPool(int threads, int shards)
    : queues_(static_cast<size_t>(std::max(1, shards))),
      shard_submitted_(static_cast<size_t>(std::max(1, shards)), 0) {
  assert(shards >= 1);
  if (threads <= 1) {
    return;  // inline mode
  }
  group_cvs_ = std::vector<std::condition_variable>(
      static_cast<size_t>(std::min(threads, this->shards())));
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    std::vector<int> served;
    for (int s = 0; s < this->shards(); ++s) {
      if (Serves(i, s, threads, this->shards())) {
        served.push_back(s);
      }
    }
    workers_.emplace_back(
        [this, slot = i + 1, served = std::move(served)] { WorkerLoop(slot, served); });
  }
}

ExpertPool::~ExpertPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  for (auto& cv : group_cvs_) {
    cv.notify_all();
  }
  for (auto& w : workers_) {
    w.join();
  }
}

void ExpertPool::WaitIdle() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

int ExpertPool::ShardWorkers(int shard) const {
  const int threads = this->threads();
  if (threads <= 1) {
    return 1;  // inline mode: the submitting thread serves every shard
  }
  int count = 0;
  for (int w = 0; w < threads; ++w) {
    count += Serves(w, shard, threads, shards()) ? 1 : 0;
  }
  return std::max(1, count);
}

int64_t ExpertPool::submitted_to_shard(int shard) const {
  assert(shard >= 0 && shard < shards());
  return shard_submitted_[static_cast<size_t>(shard)];
}

void ExpertPool::WorkerLoop(int slot, std::vector<int> served) {
  t_slot = slot;
  // Name this worker's trace lane after its shard pinning, once at spawn
  // (threads >= shards pins one shard per worker; otherwise it serves
  // several and the shard tag would lie).
  char lane[48];
  if (served.size() == 1) {
    std::snprintf(lane, sizeof(lane), "shard%d.worker%d", served.front(), slot);
  } else {
    std::snprintf(lane, sizeof(lane), "worker%d", slot);
  }
  obs::SetThreadName(lane);
  // Every shard this worker serves maps to the same wakeup group (see
  // GroupOf), so waiting on that one condition variable covers them all.
  std::condition_variable& cv = group_cvs_[static_cast<size_t>((slot - 1) %
                                                              static_cast<int>(group_cvs_.size()))];
  auto next_queue = [this, &served]() -> std::deque<std::function<void()>>* {
    for (int s : served) {
      if (!queues_[static_cast<size_t>(s)].empty()) {
        return &queues_[static_cast<size_t>(s)];
      }
    }
    return nullptr;
  };
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      std::deque<std::function<void()>>* queue = nullptr;
      cv.wait(lock, [this, &next_queue, &queue] {
        queue = next_queue();
        return stopping_ || queue != nullptr;
      });
      if (queue == nullptr) {
        return;  // stopping and this worker's shards are drained
      }
      task = std::move(queue->front());
      queue->pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

namespace {

// Shared implementation: `placement == nullptr` is the unsharded path
// (everything on queue 0, tile split against the whole pool) and stays
// allocation-identical to the pre-sharding code.
void ForwardImpl(ExpertPool& pool, const MatrixF& x, const SamoyedsMoeLayerWeights& w,
                 const RoutingPlan& plan, Activation act, const ExpertShardPlan* placement,
                 ParallelMoeWorkspace& ws, MatrixF& out) {
  assert(plan.tokens == x.rows());
  const size_t num_experts = w.experts.size();
  const size_t num_shared = w.shared_experts.size();
  const int64_t hidden = x.cols();
  const int64_t all_tokens = x.rows();
  const int num_shards = placement != nullptr ? placement->num_shards() : 1;
  assert(placement == nullptr || placement->num_experts() == static_cast<int>(num_experts));
  assert(placement != nullptr || pool.shards() == 1);
  // After a shard failover the plan spans fewer logical shards than the pool
  // has physical queues; logical shard s still submits to queue s and the
  // queues past num_shards() simply idle.
  assert(placement == nullptr || placement->num_shards() <= pool.shards());

  ws.slot_ws.resize(static_cast<size_t>(pool.slots()));
  ws.expert_out.resize(num_experts);
  ws.shared_out.resize(num_shared);

  const auto shard_of = [placement](size_t e) {
    return placement != nullptr ? placement->shard_of(static_cast<int>(e)) : 0;
  };
  const auto shard_threads = [&pool, placement](int shard) {
    return placement != nullptr ? pool.ShardWorkers(shard) : std::max(1, pool.threads());
  };

  // Size the tile array up front: tasks hold references into it, so it must
  // not reallocate while any task is in flight.
  size_t total_tiles = 0;
  for (size_t e = 0; e < num_experts; ++e) {
    total_tiles += static_cast<size_t>(NumTiles(plan.TokensForExpert(static_cast<int>(e)),
                                                shard_threads(shard_of(e))));
  }
  size_t shared_tiles = 0;
  for (int s = 0; s < num_shards; ++s) {
    const int64_t range = ShardHomeBegin(s + 1, all_tokens, num_shards) -
                          ShardHomeBegin(s, all_tokens, num_shards);
    shared_tiles += static_cast<size_t>(NumTiles(range, shard_threads(s)));
  }
  total_tiles += num_shared * shared_tiles;
  if (ws.tile_sel.size() < total_tiles) {
    ws.tile_sel.resize(total_tiles);
  }

  // Fan out: each tile runs the full expert pipeline over a contiguous slice
  // of that expert's token list, on that expert's shard queue, and writes
  // disjoint rows of its per-expert output buffer. A zero-token expert
  // submits no tasks at all — so a shard whose experts are all idle stays
  // silent.
  size_t tile = 0;
  {
    obs::ScopedSpan dispatch("pool", "dispatch", obs::TraceDetail::kFull,
                             static_cast<int64_t>(all_tokens));
    for (size_t e = 0; e < num_experts; ++e) {
      const auto& tokens = plan.expert_tokens[e];
      const int64_t count = static_cast<int64_t>(tokens.size());
      if (count == 0) {
        continue;
      }
      const int shard = shard_of(e);
      MatrixF& expert_out = ws.expert_out[e];
      expert_out.Reshape(count, hidden);
      const int64_t tiles = NumTiles(count, shard_threads(shard));
      for (int64_t t = 0; t < tiles; ++t) {
        const int64_t t0 = t * count / tiles;
        const int64_t t1 = (t + 1) * count / tiles;
        Selection& sel = ws.tile_sel[tile++];
        sel.full_size = all_tokens;
        sel.indices.assign(tokens.begin() + t0, tokens.begin() + t1);
        const SamoyedsExpertWeights& weights = w.experts[e];
        const int64_t expert_id = static_cast<int64_t>(e);
        pool.SubmitToShard(shard, [&x, &weights, &sel, act, &ws, &expert_out, t0, expert_id] {
          obs::ScopedSpan span("expert", "tile", obs::TraceDetail::kFull, expert_id);
          ExpertForwardSamoyeds(x, weights, sel, act,
                                ws.slot_ws[static_cast<size_t>(ExpertPool::CurrentSlot())],
                                expert_out, t0);
        });
      }
    }
    // Shared experts process every token; under sharding they run
    // data-parallel, each shard covering its home token range.
    for (size_t s = 0; s < num_shared; ++s) {
      MatrixF& shared_out = ws.shared_out[s];
      shared_out.Reshape(all_tokens, hidden);
      for (int shard = 0; shard < num_shards; ++shard) {
        const int64_t begin = ShardHomeBegin(shard, all_tokens, num_shards);
        const int64_t end = ShardHomeBegin(shard + 1, all_tokens, num_shards);
        const int64_t range = end - begin;
        const int64_t tiles = NumTiles(range, shard_threads(shard));
        for (int64_t t = 0; t < tiles; ++t) {
          const int64_t t0 = begin + t * range / tiles;
          const int64_t t1 = begin + (t + 1) * range / tiles;
          Selection& sel = ws.tile_sel[tile++];
          sel.full_size = all_tokens;
          sel.indices.resize(static_cast<size_t>(t1 - t0));
          std::iota(sel.indices.begin(), sel.indices.end(), static_cast<int32_t>(t0));
          const SamoyedsExpertWeights& weights = w.shared_experts[s];
          const int64_t shared_id = static_cast<int64_t>(s);
          pool.SubmitToShard(shard, [&x, &weights, &sel, act, &ws, &shared_out, t0, shared_id] {
            obs::ScopedSpan span("expert", "shared_tile", obs::TraceDetail::kFull, shared_id);
            ExpertForwardSamoyeds(x, weights, sel, act,
                                  ws.slot_ws[static_cast<size_t>(ExpertPool::CurrentSlot())],
                                  shared_out, t0);
          });
        }
      }
    }
  }
  {
    obs::ScopedSpan barrier("pool", "barrier", obs::TraceDetail::kFull);
    pool.WaitIdle();
  }

  // Fixed-order accumulation — ascending global expert id, independent of
  // shard placement — keeps the result identical to the sequential path
  // regardless of thread timing, tile split, or shard count.
  obs::ScopedSpan fold("pool", "fold", obs::TraceDetail::kFull);
  out.Reshape(all_tokens, hidden);
  out.Fill(0.0f);
  for (size_t e = 0; e < num_experts; ++e) {
    if (plan.TokensForExpert(static_cast<int>(e)) == 0) {
      continue;
    }
    MoeScatterAdd(ws.expert_out[e], plan, static_cast<int>(e), out);
  }
  for (size_t s = 0; s < num_shared; ++s) {
    MatrixAxpy(1.0f, ws.shared_out[s], out);
  }
}

}  // namespace

void ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                Activation act, ParallelMoeWorkspace& ws, MatrixF& out) {
  ForwardImpl(pool, x, w, plan, act, /*placement=*/nullptr, ws, out);
}

void ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                Activation act, const ExpertShardPlan& placement,
                                ParallelMoeWorkspace& ws, MatrixF& out) {
  ForwardImpl(pool, x, w, plan, act, &placement, ws, out);
}

MatrixF ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                   const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                   Activation act) {
  ParallelMoeWorkspace ws;
  MatrixF out;
  ParallelMoeForwardSamoyeds(pool, x, w, plan, act, ws, out);
  return out;
}

}  // namespace serving
}  // namespace samoyeds
