#include "src/serving/expert_pool.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "src/moe/expert.h"

namespace samoyeds {
namespace serving {

namespace {

thread_local int t_slot = 0;

// Number of contiguous token tiles one expert's work splits into: enough to
// spread a hot (skewed) expert across the pool, but never so many that tiny
// slices drown in scheduling overhead. The split never changes results —
// per-token outputs are independent of tile grouping — only load balance.
int64_t NumTiles(int64_t tokens, int threads) {
  constexpr int64_t kMinTileTokens = 16;
  if (tokens <= 0) {
    return 0;
  }
  if (threads <= 1) {
    return 1;
  }
  return std::min<int64_t>(threads, (tokens + kMinTileTokens - 1) / kMinTileTokens);
}

}  // namespace

int ExpertPool::CurrentSlot() { return t_slot; }

ExpertPool::ExpertPool(int threads) {
  if (threads <= 1) {
    return;  // inline mode
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, slot = i + 1] { WorkerLoop(slot); });
  }
}

ExpertPool::~ExpertPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ExpertPool::WaitIdle() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ExpertPool::WorkerLoop(int slot) {
  t_slot = slot;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

void ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                Activation act, ParallelMoeWorkspace& ws, MatrixF& out) {
  assert(plan.tokens == x.rows());
  const int threads = std::max(1, pool.threads());
  const size_t num_experts = w.experts.size();
  const size_t num_shared = w.shared_experts.size();
  const int64_t hidden = x.cols();
  const int64_t all_tokens = x.rows();

  ws.slot_ws.resize(static_cast<size_t>(pool.slots()));
  ws.expert_out.resize(num_experts);
  ws.shared_out.resize(num_shared);

  // Size the tile array up front: tasks hold references into it, so it must
  // not reallocate while any task is in flight.
  size_t total_tiles = 0;
  for (size_t e = 0; e < num_experts; ++e) {
    total_tiles += static_cast<size_t>(NumTiles(plan.TokensForExpert(static_cast<int>(e)),
                                                threads));
  }
  const int64_t shared_tiles = NumTiles(all_tokens, threads);
  total_tiles += num_shared * static_cast<size_t>(shared_tiles);
  if (ws.tile_sel.size() < total_tiles) {
    ws.tile_sel.resize(total_tiles);
  }

  // Fan out: each tile runs the full expert pipeline over a contiguous slice
  // of that expert's token list and writes disjoint rows of its per-expert
  // output buffer. A zero-token expert submits no tasks at all.
  size_t tile = 0;
  for (size_t e = 0; e < num_experts; ++e) {
    const auto& tokens = plan.expert_tokens[e];
    const int64_t count = static_cast<int64_t>(tokens.size());
    if (count == 0) {
      continue;
    }
    MatrixF& expert_out = ws.expert_out[e];
    expert_out.Reshape(count, hidden);
    const int64_t tiles = NumTiles(count, threads);
    for (int64_t t = 0; t < tiles; ++t) {
      const int64_t t0 = t * count / tiles;
      const int64_t t1 = (t + 1) * count / tiles;
      Selection& sel = ws.tile_sel[tile++];
      sel.full_size = all_tokens;
      sel.indices.assign(tokens.begin() + t0, tokens.begin() + t1);
      const SamoyedsExpertWeights& weights = w.experts[e];
      pool.Submit([&x, &weights, &sel, act, &ws, &expert_out, t0] {
        ExpertForwardSamoyeds(x, weights, sel, act,
                              ws.slot_ws[static_cast<size_t>(ExpertPool::CurrentSlot())],
                              expert_out, t0);
      });
    }
  }
  for (size_t s = 0; s < num_shared; ++s) {
    MatrixF& shared_out = ws.shared_out[s];
    shared_out.Reshape(all_tokens, hidden);
    for (int64_t t = 0; t < shared_tiles; ++t) {
      const int64_t t0 = t * all_tokens / shared_tiles;
      const int64_t t1 = (t + 1) * all_tokens / shared_tiles;
      Selection& sel = ws.tile_sel[tile++];
      sel.full_size = all_tokens;
      sel.indices.resize(static_cast<size_t>(t1 - t0));
      std::iota(sel.indices.begin(), sel.indices.end(), static_cast<int32_t>(t0));
      const SamoyedsExpertWeights& weights = w.shared_experts[s];
      pool.Submit([&x, &weights, &sel, act, &ws, &shared_out, t0] {
        ExpertForwardSamoyeds(x, weights, sel, act,
                              ws.slot_ws[static_cast<size_t>(ExpertPool::CurrentSlot())],
                              shared_out, t0);
      });
    }
  }
  pool.WaitIdle();

  // Fixed-order accumulation keeps the result independent of thread timing
  // and of the tile split.
  out.Reshape(all_tokens, hidden);
  out.Fill(0.0f);
  for (size_t e = 0; e < num_experts; ++e) {
    if (plan.TokensForExpert(static_cast<int>(e)) == 0) {
      continue;
    }
    MoeScatterAdd(ws.expert_out[e], plan, static_cast<int>(e), out);
  }
  for (size_t s = 0; s < num_shared; ++s) {
    MatrixAxpy(1.0f, ws.shared_out[s], out);
  }
}

MatrixF ParallelMoeForwardSamoyeds(ExpertPool& pool, const MatrixF& x,
                                   const SamoyedsMoeLayerWeights& w, const RoutingPlan& plan,
                                   Activation act) {
  ParallelMoeWorkspace ws;
  MatrixF out;
  ParallelMoeForwardSamoyeds(pool, x, w, plan, act, ws, out);
  return out;
}

}  // namespace serving
}  // namespace samoyeds
