#include "src/serving/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/obs/tracer.h"

namespace samoyeds {
namespace serving {

int64_t PagesForTokens(int64_t tokens, int64_t page_tokens) {
  assert(page_tokens >= 1);
  if (tokens <= 0) {
    return 0;
  }
  return (tokens + page_tokens - 1) / page_tokens;
}

KvPageAllocator::KvPageAllocator(const KvCacheConfig& config) : config_(config) {
  assert(config_.page_tokens >= 1);
  assert(config_.total_pages >= 0);
}

int64_t KvPageAllocator::PagesToExtend(int64_t seq_id, int64_t tokens) const {
  const auto it = seqs_.find(seq_id);
  const int64_t have = it == seqs_.end() ? 0 : it->second.tokens;
  return PagesForTokens(have + tokens, config_.page_tokens) -
         PagesForTokens(have, config_.page_tokens);
}

int64_t KvPageAllocator::PagesToPrepareWrite(int64_t seq_id, int64_t tokens) const {
  int64_t need = PagesToExtend(seq_id, tokens);
  const auto it = seqs_.find(seq_id);
  if (tokens > 0 && it != seqs_.end() && it->second.tokens % config_.page_tokens != 0 &&
      refcount(it->second.pages.back()) > 1) {
    ++need;  // partially filled shared tail page: COW copy before the append
  }
  return need;
}

int32_t KvPageAllocator::AcquirePage() {
  int32_t page;
  if (!free_list_.empty()) {
    page = free_list_.back();
    free_list_.pop_back();
  } else {
    assert(!bounded() || minted_ < config_.total_pages);
    page = static_cast<int32_t>(minted_++);
    ref_.resize(static_cast<size_t>(minted_), 0);
  }
  assert(ref_[static_cast<size_t>(page)] == 0);
  ref_[static_cast<size_t>(page)] = 1;
  ++used_pages_;
  return page;
}

void KvPageAllocator::ReleasePage(int32_t page) {
  int32_t& ref = ref_[static_cast<size_t>(page)];
  assert(ref > 0);
  if (ref == 2) {
    --shared_pages_;
  }
  if (--ref == 0) {
    --used_pages_;
    free_list_.push_back(page);
  }
}

void KvPageAllocator::Retain(int32_t page) {
  int32_t& ref = ref_[static_cast<size_t>(page)];
  assert(ref > 0);
  if (++ref == 2) {
    ++shared_pages_;
  }
}

void KvPageAllocator::Release(int32_t page) { ReleasePage(page); }

int32_t KvPageAllocator::refcount(int32_t page) const {
  return ref_[static_cast<size_t>(page)];
}

bool KvPageAllocator::Extend(int64_t seq_id, int64_t tokens) {
  assert(tokens >= 0);
  const int64_t need = PagesToExtend(seq_id, tokens);
  if (bounded() && need > free_pages()) {
    return false;  // all-or-nothing: no partial allocation
  }
  SequenceState& seq = seqs_[seq_id];
  for (int64_t i = 0; i < need; ++i) {
    seq.pages.push_back(AcquirePage());
  }
  seq.tokens += tokens;
  cached_tokens_ += tokens;
  // Allocation-grain sample (the engine also samples once per step): at
  // full detail the counter track shows every page-table mutation.
  if (need > 0) {
    obs::TraceCounter("kv", "allocator_pages", obs::TraceDetail::kFull, used_pages_);
  }
  return true;
}

bool KvPageAllocator::CreateMapped(int64_t seq_id, const std::vector<int32_t>& pages,
                                   int64_t tokens) {
  if (seqs_.count(seq_id) != 0) {
    return false;
  }
  assert(static_cast<int64_t>(pages.size()) == PagesForTokens(tokens, config_.page_tokens));
  SequenceState& seq = seqs_[seq_id];
  seq.pages = pages;
  seq.tokens = tokens;
  for (const int32_t page : pages) {
    Retain(page);
  }
  cached_tokens_ += tokens;
  return true;
}

int32_t KvPageAllocator::CowSplit(int64_t seq_id, size_t page_index) {
  SequenceState& seq = seqs_.at(seq_id);
  assert(page_index < seq.pages.size());
  const int32_t old_page = seq.pages[page_index];
  assert(refcount(old_page) > 1);
  if (bounded() && free_pages() < 1) {
    return -1;
  }
  const int32_t new_page = AcquirePage();
  ReleasePage(old_page);  // refcount > 1, so the old page stays live
  seq.pages[page_index] = new_page;
  return new_page;
}

bool KvPageAllocator::Free(int64_t seq_id) {
  const auto it = seqs_.find(seq_id);
  if (it == seqs_.end()) {
    return false;  // unknown or already freed: defined, idempotent no-op
  }
  // References drop in reverse acquisition order so a LIFO free list hands the
  // same ids back to the next sequence — deterministic replay across runs.
  for (auto page = it->second.pages.rbegin(); page != it->second.pages.rend(); ++page) {
    ReleasePage(*page);
  }
  cached_tokens_ -= it->second.tokens;
  seqs_.erase(it);
  obs::TraceCounter("kv", "allocator_pages", obs::TraceDetail::kFull, used_pages_);
  return true;
}

void KvPageAllocator::Reset() {
  seqs_.clear();
  free_list_.clear();
  ref_.clear();
  minted_ = 0;
  used_pages_ = 0;
  shared_pages_ = 0;
  cached_tokens_ = 0;
}

int64_t KvPageAllocator::SequenceTokens(int64_t seq_id) const {
  const auto it = seqs_.find(seq_id);
  return it == seqs_.end() ? 0 : it->second.tokens;
}

const std::vector<int32_t>& KvPageAllocator::SequencePages(int64_t seq_id) const {
  return seqs_.at(seq_id).pages;
}

int64_t KvPageAllocator::SlotOf(int64_t seq_id, int64_t token) const {
  const SequenceState& seq = seqs_.at(seq_id);
  assert(token >= 0 && token < seq.tokens);
  const int64_t page = seq.pages[static_cast<size_t>(token / config_.page_tokens)];
  return page * config_.page_tokens + token % config_.page_tokens;
}

PagedKvCache::PagedKvCache(const KvCacheConfig& config, int64_t layers, int64_t hidden)
    : alloc_(config), layers_(layers), hidden_(hidden), arena_(static_cast<size_t>(layers)) {
  assert(layers >= 1 && hidden >= 1);
}

void PagedKvCache::GrowArena() {
  // Arenas track pages actually minted, not the configured bound — a large
  // --max-pages budget must not preallocate gigabytes up front.
  const size_t slots =
      static_cast<size_t>(alloc_.minted_pages() * alloc_.page_tokens() * hidden_);
  if (!arena_.empty() && arena_[0].size() < slots) {
    for (auto& layer : arena_) {
      layer.resize(slots);
    }
  }
}

bool PagedKvCache::Extend(int64_t seq_id, int64_t tokens) {
  const int64_t page_tokens = alloc_.page_tokens();
  const int64_t have = alloc_.SequenceTokens(seq_id);
  const bool cow = tokens > 0 && alloc_.Has(seq_id) && have % page_tokens != 0 &&
                   alloc_.refcount(alloc_.SequencePages(seq_id).back()) > 1;
  // All-or-nothing across the COW copy and the growth pages together, so a
  // failed Extend leaves the page table untouched.
  if (alloc_.bounded() &&
      alloc_.PagesToExtend(seq_id, tokens) + (cow ? 1 : 0) > alloc_.free_pages()) {
    return false;
  }
  if (cow) {
    const size_t tail = alloc_.SequencePages(seq_id).size() - 1;
    const int32_t old_page = alloc_.SequencePages(seq_id)[tail];
    const int32_t new_page = alloc_.CowSplit(seq_id, tail);
    assert(new_page >= 0);
    GrowArena();
    const int64_t valid = have % page_tokens;  // filled rows of the tail page
    for (auto& layer : arena_) {
      std::memcpy(layer.data() + new_page * page_tokens * hidden_,
                  layer.data() + old_page * page_tokens * hidden_,
                  static_cast<size_t>(valid * hidden_) * sizeof(float));
    }
    ++cow_splits_;
    obs::TraceAsyncInstant("request", "cow_split", obs::TraceDetail::kRequest, seq_id,
                           valid);
  }
  if (!alloc_.Extend(seq_id, tokens)) {
    assert(false && "capacity was checked above");
    return false;
  }
  GrowArena();
  return true;
}

float* PagedKvCache::Row(int64_t seq_id, int64_t layer, int64_t token) {
  return arena_[static_cast<size_t>(layer)].data() + alloc_.SlotOf(seq_id, token) * hidden_;
}

const float* PagedKvCache::Row(int64_t seq_id, int64_t layer, int64_t token) const {
  return arena_[static_cast<size_t>(layer)].data() + alloc_.SlotOf(seq_id, token) * hidden_;
}

void PagedKvCache::GatherRows(int64_t seq_id, int64_t layer, int64_t count, float* dst) const {
  // Copy page-contiguous runs instead of row-at-a-time: rows of one page are
  // adjacent in the arena, so the gather is page_tokens rows per memcpy.
  const int64_t page_tokens = alloc_.page_tokens();
  for (int64_t t = 0; t < count;) {
    const int64_t run = std::min(count - t, page_tokens - t % page_tokens);
    std::memcpy(dst + t * hidden_, Row(seq_id, layer, t),
                static_cast<size_t>(run * hidden_) * sizeof(float));
    t += run;
  }
}

void PagedKvCache::ScatterRows(int64_t seq_id, int64_t layer, int64_t count,
                               const float* src) {
  const int64_t page_tokens = alloc_.page_tokens();
  for (int64_t t = 0; t < count;) {
    const int64_t run = std::min(count - t, page_tokens - t % page_tokens);
    std::memcpy(Row(seq_id, layer, t), src + t * hidden_,
                static_cast<size_t>(run * hidden_) * sizeof(float));
    t += run;
  }
}

HostSwapTier::HostSwapTier(int64_t layers, int64_t hidden, int64_t page_tokens,
                           int64_t max_host_pages)
    : layers_(layers), hidden_(hidden), page_tokens_(page_tokens),
      max_pages_(max_host_pages) {
  assert(layers_ >= 1 && hidden_ >= 1 && page_tokens_ >= 1 && max_pages_ >= 0);
}

bool HostSwapTier::CanHold(int64_t tokens) const {
  if (max_pages_ <= 0) {
    return true;
  }
  return used_pages_ + PagesForTokens(tokens, page_tokens_) <= max_pages_;
}

namespace {

// FNV-1a over the raw bytes of [begin, end) floats. Cheap, deterministic,
// and sensitive to any single flipped bit — all this tier needs to tell
// "restored bit-exactly" from "rotted at rest".
uint64_t ChecksumSpan(const float* data, size_t count) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < count * sizeof(float); ++i) {
    h = (h ^ bytes[i]) * 0x100000001b3ull;
  }
  return h;
}

}  // namespace

void HostSwapTier::SwapOut(int64_t seq_id, const PagedKvCache& cache, int64_t tokens) {
  assert(tokens > 0);
  assert(entries_.count(seq_id) == 0);
  Entry& entry = entries_[seq_id];
  entry.tokens = tokens;
  entry.rows.resize(static_cast<size_t>(layers_));
  entry.checksums.resize(static_cast<size_t>(layers_));
  const int64_t pages = PagesForTokens(tokens, page_tokens_);
  for (int64_t layer = 0; layer < layers_; ++layer) {
    auto& rows = entry.rows[static_cast<size_t>(layer)];
    rows.resize(static_cast<size_t>(tokens * hidden_));
    cache.GatherRows(seq_id, layer, tokens, rows.data());
    auto& sums = entry.checksums[static_cast<size_t>(layer)];
    sums.resize(static_cast<size_t>(pages));
    for (int64_t p = 0; p < pages; ++p) {
      const int64_t begin = p * page_tokens_;
      const int64_t span = std::min(page_tokens_, tokens - begin) * hidden_;
      sums[static_cast<size_t>(p)] =
          ChecksumSpan(rows.data() + begin * hidden_, static_cast<size_t>(span));
    }
  }
  used_pages_ += pages;
}

bool HostSwapTier::SwapIn(int64_t seq_id, PagedKvCache& cache) {
  const auto it = entries_.find(seq_id);
  assert(it != entries_.end());
  const Entry& entry = it->second;
  const int64_t pages = PagesForTokens(entry.tokens, page_tokens_);
  for (int64_t layer = 0; layer < layers_; ++layer) {
    const auto& rows = entry.rows[static_cast<size_t>(layer)];
    const auto& sums = entry.checksums[static_cast<size_t>(layer)];
    for (int64_t p = 0; p < pages; ++p) {
      const int64_t begin = p * page_tokens_;
      const int64_t span = std::min(page_tokens_, entry.tokens - begin) * hidden_;
      if (ChecksumSpan(rows.data() + begin * hidden_,
                       static_cast<size_t>(span)) != sums[static_cast<size_t>(p)]) {
        // Corrupt at rest: restore nothing, drop the entry, let the engine
        // recompute. Verification happens before any ScatterRows so the
        // device cache never sees a partial restore.
        ++corruptions_detected_;
        used_pages_ -= pages;
        entries_.erase(it);
        return false;
      }
    }
  }
  for (int64_t layer = 0; layer < layers_; ++layer) {
    cache.ScatterRows(seq_id, layer, entry.tokens,
                      entry.rows[static_cast<size_t>(layer)].data());
  }
  used_pages_ -= pages;
  entries_.erase(it);
  return true;
}

bool HostSwapTier::CorruptEntry(int64_t seq_id, uint64_t salt) {
  const auto it = entries_.find(seq_id);
  if (it == entries_.end()) {
    return false;
  }
  Entry& entry = it->second;
  // Deterministic target: layer, float, and bit all derived from the salt.
  const size_t layer = static_cast<size_t>(salt % static_cast<uint64_t>(layers_));
  auto& rows = entry.rows[layer];
  const size_t idx = static_cast<size_t>((salt >> 8) % rows.size());
  const int bit = static_cast<int>((salt >> 40) % 32);
  uint32_t raw;
  std::memcpy(&raw, &rows[idx], sizeof(raw));
  raw ^= 1u << bit;
  std::memcpy(&rows[idx], &raw, sizeof(raw));
  return true;
}

bool HostSwapTier::Drop(int64_t seq_id) {
  const auto it = entries_.find(seq_id);
  if (it == entries_.end()) {
    return false;
  }
  used_pages_ -= PagesForTokens(it->second.tokens, page_tokens_);
  entries_.erase(it);
  return true;
}

int64_t HostSwapTier::Tokens(int64_t seq_id) const {
  const auto it = entries_.find(seq_id);
  return it == entries_.end() ? 0 : it->second.tokens;
}

}  // namespace serving
}  // namespace samoyeds
