#include "src/serving/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/obs/tracer.h"

namespace samoyeds {
namespace serving {

int64_t PagesForTokens(int64_t tokens, int64_t page_tokens) {
  assert(page_tokens >= 1);
  if (tokens <= 0) {
    return 0;
  }
  return (tokens + page_tokens - 1) / page_tokens;
}

KvPageAllocator::KvPageAllocator(const KvCacheConfig& config) : config_(config) {
  assert(config_.page_tokens >= 1);
  assert(config_.total_pages >= 0);
}

int64_t KvPageAllocator::PagesToExtend(int64_t seq_id, int64_t tokens) const {
  const auto it = seqs_.find(seq_id);
  const int64_t have = it == seqs_.end() ? 0 : it->second.tokens;
  return PagesForTokens(have + tokens, config_.page_tokens) -
         PagesForTokens(have, config_.page_tokens);
}

int32_t KvPageAllocator::AcquirePage() {
  if (!free_list_.empty()) {
    const int32_t page = free_list_.back();
    free_list_.pop_back();
    return page;
  }
  assert(!bounded() || minted_ < config_.total_pages);
  return static_cast<int32_t>(minted_++);
}

bool KvPageAllocator::Extend(int64_t seq_id, int64_t tokens) {
  assert(tokens >= 0);
  const int64_t need = PagesToExtend(seq_id, tokens);
  if (bounded() && need > free_pages()) {
    return false;  // all-or-nothing: no partial allocation
  }
  SequenceState& seq = seqs_[seq_id];
  for (int64_t i = 0; i < need; ++i) {
    seq.pages.push_back(AcquirePage());
  }
  seq.tokens += tokens;
  used_pages_ += need;
  cached_tokens_ += tokens;
  // Allocation-grain sample (the engine also samples once per step): at
  // full detail the counter track shows every page-table mutation.
  if (need > 0) {
    obs::TraceCounter("kv", "allocator_pages", obs::TraceDetail::kFull, used_pages_);
  }
  return true;
}

void KvPageAllocator::Free(int64_t seq_id) {
  const auto it = seqs_.find(seq_id);
  if (it == seqs_.end()) {
    return;
  }
  // Pages return in reverse acquisition order so a LIFO free list hands the
  // same ids back to the next sequence — deterministic replay across runs.
  free_list_.insert(free_list_.end(), it->second.pages.rbegin(), it->second.pages.rend());
  used_pages_ -= static_cast<int64_t>(it->second.pages.size());
  cached_tokens_ -= it->second.tokens;
  seqs_.erase(it);
  obs::TraceCounter("kv", "allocator_pages", obs::TraceDetail::kFull, used_pages_);
}

void KvPageAllocator::Reset() {
  seqs_.clear();
  free_list_.clear();
  minted_ = 0;
  used_pages_ = 0;
  cached_tokens_ = 0;
}

int64_t KvPageAllocator::SequenceTokens(int64_t seq_id) const {
  const auto it = seqs_.find(seq_id);
  return it == seqs_.end() ? 0 : it->second.tokens;
}

const std::vector<int32_t>& KvPageAllocator::SequencePages(int64_t seq_id) const {
  return seqs_.at(seq_id).pages;
}

int64_t KvPageAllocator::SlotOf(int64_t seq_id, int64_t token) const {
  const SequenceState& seq = seqs_.at(seq_id);
  assert(token >= 0 && token < seq.tokens);
  const int64_t page = seq.pages[static_cast<size_t>(token / config_.page_tokens)];
  return page * config_.page_tokens + token % config_.page_tokens;
}

PagedKvCache::PagedKvCache(const KvCacheConfig& config, int64_t layers, int64_t hidden)
    : alloc_(config), layers_(layers), hidden_(hidden), arena_(static_cast<size_t>(layers)) {
  assert(layers >= 1 && hidden >= 1);
}

bool PagedKvCache::Extend(int64_t seq_id, int64_t tokens) {
  if (!alloc_.Extend(seq_id, tokens)) {
    return false;
  }
  // Arenas track pages actually minted, not the configured bound — a large
  // --max-pages budget must not preallocate gigabytes up front.
  const size_t slots =
      static_cast<size_t>(alloc_.minted_pages() * alloc_.page_tokens() * hidden_);
  if (!arena_.empty() && arena_[0].size() < slots) {
    for (auto& layer : arena_) {
      layer.resize(slots);
    }
  }
  return true;
}

float* PagedKvCache::Row(int64_t seq_id, int64_t layer, int64_t token) {
  return arena_[static_cast<size_t>(layer)].data() + alloc_.SlotOf(seq_id, token) * hidden_;
}

const float* PagedKvCache::Row(int64_t seq_id, int64_t layer, int64_t token) const {
  return arena_[static_cast<size_t>(layer)].data() + alloc_.SlotOf(seq_id, token) * hidden_;
}

void PagedKvCache::GatherRows(int64_t seq_id, int64_t layer, int64_t count, float* dst) const {
  // Copy page-contiguous runs instead of row-at-a-time: rows of one page are
  // adjacent in the arena, so the gather is page_tokens rows per memcpy.
  const int64_t page_tokens = alloc_.page_tokens();
  for (int64_t t = 0; t < count;) {
    const int64_t run = std::min(count - t, page_tokens - t % page_tokens);
    std::memcpy(dst + t * hidden_, Row(seq_id, layer, t),
                static_cast<size_t>(run * hidden_) * sizeof(float));
    t += run;
  }
}

}  // namespace serving
}  // namespace samoyeds
