#include "src/serving/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "src/tensor/bf16.h"

namespace samoyeds {
namespace serving {

const char* RequestStatusName(RequestStatus s) {
  switch (s) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kRunning:
      return "running";
    case RequestStatus::kFinished:
      return "finished";
    case RequestStatus::kRejected:
      return "rejected";
  }
  return "?";
}

ServingEngine::ServingEngine(std::vector<SamoyedsDecoderLayerWeights> layers,
                             const EngineConfig& config)
    : layers_(std::move(layers)),
      config_(config),
      hidden_(static_cast<int64_t>(layers_.empty() ? 0 : layers_.front().attn_norm_gamma.size())),
      scheduler_(config.scheduler),
      cache_(KvCacheConfig{config.scheduler.page_tokens, config.scheduler.max_pages},
             static_cast<int64_t>(layers_.size()), hidden_),
      pool_(config.threads) {
  assert(!layers_.empty());
  assert(hidden_ % config_.heads == 0);
  assert(config_.scheduler.page_tokens >= 1);
}

bool ServingEngine::Submit(Request request) {
  if (!known_ids_.insert(request.id).second) {
    return false;  // duplicate id: leave the original request's state alone
  }
  if (!request.ShapeValid(hidden_)) {
    RequestResult& result = results_[request.id];
    result.status = RequestStatus::kRejected;
    result.reason = "malformed request (bad prompt/decode/input shape)";
    metrics_.OnReject(request.id);
    return false;
  }
  queue_.Push(std::move(request));
  return true;
}

ResidentSnapshot ServingEngine::Resident(int64_t growth_pages) const {
  ResidentSnapshot snap;
  snap.sequences = static_cast<int64_t>(running_.size());
  snap.used_pages = cache_.allocator().used_pages() + growth_pages;
  for (int64_t id : running_) {
    const int64_t total = sequences_.at(id).request.total_tokens();
    snap.tokens += total;
    snap.reserved_pages += PagesForTokens(total, config_.scheduler.page_tokens);
  }
  return snap;
}

int64_t ServingEngine::DecodeGrowthPages() const {
  int64_t pages = 0;
  for (int64_t id : running_) {
    pages += cache_.allocator().PagesToExtend(id, 1);
  }
  return pages;
}

void ServingEngine::Preempt(int64_t id) {
  Sequence& seq = sequences_.at(id);
  cache_.Free(id);
  Request request = std::move(seq.request);
  sequences_.erase(id);
  running_.erase(std::find(running_.begin(), running_.end(), id));
  metrics_.OnPreempt(id, step_);
  // Partial outputs are discarded with the Sequence: readmission recomputes
  // the whole prefix, which reproduces the same rows (per-row compute is
  // independent of batch composition).
  scheduler_.Requeue(std::move(request));
}

MatrixF ServingEngine::ForwardBatch(const AssembledBatch& batch) {
  MatrixF h = batch.rows;
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    const SamoyedsDecoderLayerWeights& w = layers_[layer];

    // Attention sub-block, per sequence: normed new rows extend the paged
    // cached prefix (gathered through the page table); causal attention over
    // the full prefix yields the new rows' outputs. Sequences are
    // independent — and own disjoint pages — so they fan out over the pool.
    MatrixF h1 = h;  // residual base
    for (size_t s = 0; s < batch.slices.size(); ++s) {
      const BatchSlice& slice = batch.slices[s];
      pool_.Submit([this, &h, &h1, &w, slice, layer] {
        MatrixF x_new(slice.row_count, hidden_);
        for (int64_t r = 0; r < slice.row_count; ++r) {
          for (int64_t c = 0; c < hidden_; ++c) {
            x_new(r, c) = h(slice.row_begin + r, c);
          }
        }
        const MatrixF normed_new = RmsNorm(x_new, w.attn_norm_gamma);

        const int64_t prefix = slice.position_begin;
        MatrixF full(prefix + slice.row_count, hidden_);
        cache_.GatherRows(slice.request_id, static_cast<int64_t>(layer), prefix, full.data());
        std::copy(normed_new.data(), normed_new.data() + normed_new.size(),
                  full.data() + prefix * hidden_);

        const MatrixF attn = AttentionForward(full, w.attention, config_.heads);
        for (int64_t r = 0; r < slice.row_count; ++r) {
          for (int64_t c = 0; c < hidden_; ++c) {
            h1(slice.row_begin + r, c) += attn(prefix + r, c);
          }
          std::copy(normed_new.row(r).begin(), normed_new.row(r).end(),
                    cache_.Row(slice.request_id, static_cast<int64_t>(layer), prefix + r));
        }
      });
    }
    pool_.WaitIdle();

    // MoE sub-block, whole batch: one routing plan covers every sequence's
    // tokens, so each expert runs once per iteration over its tile-split
    // SEL slices.
    MatrixF normed = RmsNorm(h1, w.moe_norm_gamma);
    RoundMatrixToBf16(normed);
    const RoutingPlan plan = Route(normed, w.moe.router_gate, config_.top_k);
    metrics_.OnRoutingPlan(plan);
    if (config_.autotune) {
      ResolveTileConfig(w.moe, plan);
    }
    ParallelMoeForwardSamoyeds(pool_, normed, w.moe, plan, config_.activation, moe_ws_,
                               moe_out_);
    MatrixAxpy(1.0f, moe_out_, h1);
    h = std::move(h1);
  }
  return h;
}

void ServingEngine::ResolveTileConfig(const SamoyedsMoeLayerWeights& moe,
                                      const RoutingPlan& plan) {
  assert(!moe.experts.empty());
  // This layer's SSMM shape: every expert projection is (intermediate x
  // hidden) against this batch's token panel; the SEL length that drives
  // tile efficiency is the hottest expert's token count.
  const SamoyedsMatrix& gate = moe.experts.front().gate;
  const int64_t selected = std::max<int64_t>(1, plan.MaxTokensPerExpert());
  const std::array<int64_t, 4> key{gate.rows, gate.cols, plan.tokens, selected};
  auto it = autotune_cache_.find(key);
  const bool cache_hit = it != autotune_cache_.end();
  if (!cache_hit) {
    const GemmShape shape{gate.rows, gate.cols, plan.tokens};
    it = autotune_cache_
             .emplace(key, AutotuneSsmm(shape, selected, gate.config, DefaultDevice()))
             .first;
  }
  metrics_.OnAutotune(it->second.default_ms, it->second.simulated_ms, cache_hit);
}

bool ServingEngine::Step() {
  const SchedulerConfig& sched_cfg = config_.scheduler;

  // 1. Ingress: requests whose arrival step has come due join the scheduler.
  for (Request& r : queue_.DrainArrived(step_)) {
    metrics_.OnArrival(r.id, step_, r.prompt_len, r.max_new_tokens);
    scheduler_.Enqueue(std::move(r));
  }

  // 2. Preemption: under a bounded page pool with eviction enabled, make sure
  // every resident can append this iteration's decode row. Victims are
  // lowest-priority, then youngest — and may be the grower itself, in which
  // case it simply sits out this batch from the queue head. A lone resident
  // always fits (admission rejects lifetimes beyond the pool), so this
  // terminates with at least one survivor.
  int64_t growth_pages = DecodeGrowthPages();
  if (sched_cfg.max_pages > 0 && sched_cfg.preempt) {
    while (!running_.empty() &&
           cache_.allocator().used_pages() + growth_pages > sched_cfg.max_pages) {
      std::vector<VictimCandidate> candidates;
      candidates.reserve(running_.size());
      for (int64_t id : running_) {
        const Sequence& seq = sequences_.at(id);
        candidates.push_back(VictimCandidate{id, seq.request.priority, seq.admit_seq});
      }
      Preempt(candidates[Scheduler::PickVictim(candidates)].id);
      growth_pages = DecodeGrowthPages();
    }
  }

  // 3. Admission under the iteration token budget and the resident-token or
  // page-accounting cap.
  const int64_t decode_rows = static_cast<int64_t>(running_.size());
  AdmissionDecision decision = scheduler_.Admit(decode_rows, Resident(growth_pages));
  for (Rejection& rejection : decision.rejected) {
    RequestResult& result = results_[rejection.request.id];
    result.status = RequestStatus::kRejected;
    result.reason = rejection.reason;
    metrics_.OnReject(rejection.request.id);
  }
  for (Request& r : decision.admitted) {
    const int64_t id = r.id;
    Sequence seq;
    seq.request = std::move(r);
    seq.admit_seq = admit_counter_++;
    sequences_.emplace(id, std::move(seq));
    running_.push_back(id);
    metrics_.OnAdmit(id, step_);
  }

  // 4. Assemble the iteration batch: decode rows first, then prefills; every
  // sequence's page table is extended to cover its new rows up front so the
  // forward's parallel tasks never mutate allocator state.
  std::vector<BatchAssembler::Contribution> parts;
  std::vector<Sequence*> seq_of_slice;
  for (int64_t id : running_) {
    Sequence& seq = sequences_.at(id);
    const bool is_prefill = seq.consumed == 0;
    BatchAssembler::Contribution p;
    p.request_id = id;
    p.source = &seq.request.inputs;
    p.row_begin = seq.consumed;
    p.row_count = is_prefill ? seq.request.prompt_len : 1;
    p.is_prefill = is_prefill;
    parts.push_back(p);
    seq_of_slice.push_back(&seq);
  }

  if (parts.empty()) {
    // Idle: fast-forward to the next trace arrival, or report drained.
    const int64_t next = queue_.NextArrivalStep();
    if (next < 0) {
      return false;
    }
    step_ = next;
    return true;
  }

  for (const BatchAssembler::Contribution& p : parts) {
    // Cannot fail: decode growth was reserved by the preemption pass and
    // admitted prompts were checked against the page budget.
    const bool ok = cache_.Extend(p.request_id, p.row_count);
    assert(ok);
    (void)ok;
  }

  const AssembledBatch batch = BatchAssembler::Assemble(parts, hidden_);

  // 5. One forward over the whole batch.
  const auto t0 = std::chrono::steady_clock::now();
  const MatrixF out = ForwardBatch(batch);
  const double forward_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  // 6. Scatter outputs back, advance sequences, retire finished ones.
  StepMetrics sm;
  sm.step = step_;
  sm.batch_rows = batch.total_rows();
  sm.running_sequences = static_cast<int64_t>(running_.size());
  sm.kv_used_pages = cache_.allocator().used_pages();
  sm.kv_frag_tokens = cache_.allocator().FragmentationWaste();
  sm.wall_ms = forward_ms;

  std::vector<int64_t> still_running;
  for (size_t s = 0; s < batch.slices.size(); ++s) {
    const BatchSlice& slice = batch.slices[s];
    Sequence& seq = *seq_of_slice[s];
    (slice.is_prefill ? sm.prefill_rows : sm.decode_rows) += slice.row_count;
    for (int64_t r = 0; r < slice.row_count; ++r) {
      const auto row = out.row(slice.row_begin + r);
      seq.out_rows.insert(seq.out_rows.end(), row.begin(), row.end());
    }
    seq.consumed += slice.row_count;
    if (slice.is_prefill) {
      metrics_.OnFirstOutput(slice.request_id, step_);
    }
    if (seq.consumed == seq.request.total_tokens()) {
      RequestResult& result = results_[slice.request_id];
      result.status = RequestStatus::kFinished;
      result.outputs =
          MatrixF::FromRowMajor(seq.consumed, hidden_, std::move(seq.out_rows));
      metrics_.OnFinish(slice.request_id, step_);
      cache_.Free(slice.request_id);
      sequences_.erase(slice.request_id);
    } else {
      still_running.push_back(slice.request_id);
    }
  }
  running_ = std::move(still_running);

  metrics_.OnStep(sm);
  ++step_;
  return true;
}

int64_t ServingEngine::RunUntilDrained(int64_t max_steps) {
  int64_t iterations = 0;
  while (Step()) {
    ++iterations;
    if (max_steps > 0 && iterations >= max_steps) {
      break;
    }
  }
  return iterations;
}

RequestStatus ServingEngine::Status(int64_t id) const {
  if (auto it = results_.find(id); it != results_.end()) {
    return it->second.status;
  }
  if (sequences_.count(id) != 0) {
    return RequestStatus::kRunning;
  }
  return RequestStatus::kQueued;
}

const RequestResult* ServingEngine::Result(int64_t id) const {
  const auto it = results_.find(id);
  return it == results_.end() ? nullptr : &it->second;
}

}  // namespace serving
}  // namespace samoyeds
